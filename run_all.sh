#!/bin/bash
# Regenerates every table and figure of the paper, plus ablations and
# the in-order extension. Outputs land in results/. SSIM_QUICK=1 for a
# fast smoke pass; budgets tuned for a single-core box.
#
#   ./run_all.sh         # the full artifact set
#   ./run_all.sh --deep  # additionally runs the deep bench tier
#                        # (./ci.sh deep): full-grid thread-scaling
#                        # curve with efficiency gates, 8-backend
#                        # fleet scaling, journal kill-and-resume
#                        # chaos, and the 10k-connection load story,
#                        # folded into BENCH_parallel.json
set -u -o pipefail
DEEP=0
if [ "${1:-}" = "--deep" ]; then DEEP=1; shift; fi
mkdir -p results
# Gate through the shared CI script (the same stages the workflow
# runs): rustfmt-clean, clippy-clean, release build — before any
# experiment budget is spent.
./ci.sh fmt || exit 1
./ci.sh clippy || exit 1
./ci.sh build || exit 1
# Assembler front-end gate: corpus assembles + halts through the CLI,
# native workloads re-emit to identical streams, parser fuzz smoke.
./ci.sh asm || exit 1
# Every run emits machine-readable pipeline metrics by default
# (results/METRICS_<bin>.json); export SSIM_METRICS=0 to opt out.
SSIM_METRICS="${SSIM_METRICS:-json}"
run() {
  b="$1"; shift
  echo "[$(date +%H:%M:%S)] running $b"
  env SSIM_METRICS="$SSIM_METRICS" "$@" cargo run --release -q -p ssim-bench --bin "$b" > "results/$b.txt" 2>&1 \
    || { echo "$b FAILED (see results/$b.txt)"; exit 1; }
}
run table1_baseline_ipc       SSIM_EDS_INSTR=1500000
run fig3_branch_mpki          SSIM_PROFILE_INSTR=2000000 SSIM_EDS_INSTR=1500000
run table3_sfg_nodes          SSIM_PROFILE_INSTR=2000000
run fig6_ipc_epc              SSIM_PROFILE_INSTR=2500000 SSIM_EDS_INSTR=2000000
run fig4_sfg_order            SSIM_PROFILE_INSTR=2000000 SSIM_EDS_INSTR=1200000
run fig5_delayed_update       SSIM_PROFILE_INSTR=2000000 SSIM_EDS_INSTR=1200000
run fig7_hls_comparison       SSIM_PROFILE_INSTR=2000000 SSIM_EDS_INSTR=1500000
run sec41_convergence         SSIM_PROFILE_INSTR=2000000
run fig8_phases               SSIM_EDS_INSTR=1200000
run table4_relative_accuracy  SSIM_PROFILE_INSTR=1500000 SSIM_EDS_INSTR=800000
run sec46_design_space        SSIM_PROFILE_INSTR=1500000 SSIM_EDS_INSTR=600000
run cheetah_sweep             SSIM_PROFILE_INSTR=1500000
run ablation_fifo_size        SSIM_QUICK=1 SSIM_PROFILE_INSTR=1500000 SSIM_EDS_INSTR=1000000 SSIM_WORKLOADS=gcc,parser,gzip,perlbmk
run ablation_dep_cap          SSIM_QUICK=1 SSIM_PROFILE_INSTR=1500000 SSIM_EDS_INSTR=1000000
run ablation_reduction_factor SSIM_QUICK=1 SSIM_PROFILE_INSTR=1500000 SSIM_EDS_INSTR=1000000
run ext_inorder               SSIM_QUICK=1 SSIM_PROFILE_INSTR=1500000 SSIM_EDS_INSTR=1000000
run synth_speed               SSIM_QUICK=1
run sim_speed                 SSIM_QUICK=1
# Experiment service: end-to-end smoke (loopback ephemeral port, small
# sweep checked bit-exact against direct library calls, metrics
# endpoint, clean drain-on-shutdown), its benchmark, then the fleet
# coordinator's smoke (3 backends under seeded fault injection) and
# benchmark. The benches write results/BENCH_serve.json and
# results/BENCH_fleet.json for perf_report to fold in.
serve() {
  b="ssim-serve-${*// /-}"
  echo "[$(date +%H:%M:%S)] running $b"
  env SSIM_METRICS="$SSIM_METRICS" SSIM_QUICK=1 \
    cargo run --release -q -p ssim-serve --bin ssim-serve -- "$@" > "results/$b.txt" 2>&1 \
    || { echo "serve $* FAILED (see results/$b.txt)"; exit 1; }
}
serve smoke
serve bench
serve fleet smoke
serve fleet bench
# Gateway + load story: open-loop loadgen through a gateway over
# fault-injecting backends with the zero-lost/zero-duplicated ack gate;
# writes results/BENCH_load.json for perf_report's "load" section.
./ci.sh load || exit 1
# Surrogate-guided design-space planner vs exhaustive truth on the
# quick §4.6 space; writes results/BENCH_dse.json for perf_report.
run dse                       SSIM_QUICK=1
# Thread-scaling curve over the quick §4.6 grid (byte-identity across
# thread counts asserted; speedup gate enforced on multi-core hosts);
# writes results/BENCH_scaling.json for perf_report's "scaling" section.
run scaling                   SSIM_QUICK=1 SSIM_THREADS=2
run perf_report               SSIM_QUICK=1
# Deep tier (--deep): rerun scaling on the full grid with the
# efficiency-gated thread curve, extend the fleet to 8 backends, and
# refold — overwrites the quick curves in BENCH_parallel.json.
if [ "$DEEP" = 1 ]; then
  echo "[$(date +%H:%M:%S)] running deep bench tier (./ci.sh deep)"
  ./ci.sh deep || exit 1
fi
echo "[$(date +%H:%M:%S)] all experiments complete"
