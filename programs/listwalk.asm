; listwalk — pointer-chasing linked-list traversal.
;
; Builds a 512-node singly linked list whose nodes are threaded in
; full-period LCG order (x -> 5x + 3 mod 512), so successive hops jump
; around the 8 KiB node arena. Each round walks the whole cycle,
; summing integer payloads and folding them into a floating-point
; accumulator — serial address-dependent loads are the defining trait.

.name "listwalk"
.mem 1048576
.const ROUNDS 3000
.const BASE 4096
.const N 512
.const MASK 511
.const RESULT 65536

    li r1, ROUNDS
    ; ---- build: node[x] = { next: &node[(5x+3) & MASK], payload: x }
    li r2, 0               ; x
    li r3, N
build:
    slli r4, r2, 4
    li r5, BASE
    add r4, r4, r5         ; &node[x]
    slli r6, r2, 2
    add r6, r6, r2         ; 5x
    addi r6, r6, 3
    andi r6, r6, MASK      ; next index
    slli r7, r6, 4
    add r7, r7, r5
    st r7, 0(r4)           ; next pointer
    st r2, 8(r4)           ; payload
    mv r2, r6
    addi r3, r3, -1
    bne r3, r0, build
round:
    li r4, BASE            ; p = &node[0]
    li r5, 0               ; sum
    li r3, N
    fcvt f1, r0            ; acc = 0.0
walk:
    ld r6, 8(r4)           ; payload
    add r5, r5, r6
    fcvt f2, r6
    fadd f1, f1, f2
    ld r4, 0(r4)           ; chase the pointer
    addi r3, r3, -1
    bne r3, r0, walk
    fsqrt f1, f1
    li r8, RESULT
    st r5, 0(r8)
    fst f1, 8(r8)
    addi r1, r1, -1
    bne r1, r0, round
    halt
