; bytecode — a stack-machine interpreter inner loop.
;
; A 13-byte bytecode program (a multiply-and-count-down loop) runs to
; completion each round. Dispatch is a first-class jump table (`.table`
; + `jr`), the classic hard case for control-flow modeling: one static
; indirect branch whose dynamic targets spread over eight handlers.
;
; Bytecode ops: 0 PUSHI imm8 · 1 ADD · 2 SUB · 3 DUP · 4 JNZ ip8 ·
; 5 END · 6 MUL · 7 DROP.

.name "bytecode"
.mem 1048576
.const ROUNDS 400
.const PROG 4096
.const STACK 8192
.table 2048 op_pushi op_add op_sub op_dup op_jnz op_end op_mul op_drop
; PUSHI 200; loop: PUSHI 1; SUB; DUP; DUP; MUL; DROP; DUP; JNZ loop; END
.bytes 4096 0x00 0xc8 0x00 0x01 0x02 0x03 0x03 0x06 0x07 0x03 0x04 0x02 0x05

    li r1, ROUNDS
round:
    li r10, 0              ; ip
    li r11, STACK          ; sp (grows up; push = store, then +8)
fetch:
    li r6, PROG
    add r6, r6, r10
    lb r2, 0(r6)           ; opcode
    slli r3, r2, 3
    ld r4, 2048(r3)        ; handler PC from the jump table
    jr r4

op_pushi:
    li r6, PROG
    add r6, r6, r10
    lb r2, 1(r6)
    st r2, 0(r11)
    addi r11, r11, 8
    addi r10, r10, 2
    jmp fetch
op_add:
    addi r11, r11, -8
    ld r2, 0(r11)
    ld r3, -8(r11)
    add r3, r3, r2
    st r3, -8(r11)
    addi r10, r10, 1
    jmp fetch
op_sub:
    addi r11, r11, -8
    ld r2, 0(r11)
    ld r3, -8(r11)
    sub r3, r3, r2
    st r3, -8(r11)
    addi r10, r10, 1
    jmp fetch
op_mul:
    addi r11, r11, -8
    ld r2, 0(r11)
    ld r3, -8(r11)
    mul r3, r3, r2
    st r3, -8(r11)
    addi r10, r10, 1
    jmp fetch
op_dup:
    ld r2, -8(r11)
    st r2, 0(r11)
    addi r11, r11, 8
    addi r10, r10, 1
    jmp fetch
op_drop:
    addi r11, r11, -8
    addi r10, r10, 1
    jmp fetch
op_jnz:
    addi r11, r11, -8
    ld r2, 0(r11)          ; condition
    li r6, PROG
    add r6, r6, r10
    lb r3, 1(r6)           ; target ip
    addi r10, r10, 2
    beq r2, r0, fetch
    mv r10, r3
    jmp fetch
op_end:
    addi r1, r1, -1
    bne r1, r0, round
    halt
