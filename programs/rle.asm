; rle — run-length compression kernel.
;
; Each round refills a 4 KiB source buffer with runs of slowly-varying
; bytes (a xorshift stream occasionally breaks a run), then encodes it
; as (value, length) pairs. Exercises byte loads/stores, data-dependent
; run-break branches, and a small call/ret flush helper.
;
; ROUNDS is overridable from the harness (AsmOptions::define), so the
; workload driver can run it unbounded under an instruction budget.

.name "rle"
.mem 1048576
.const ROUNDS 40
.const SRC 4096
.const DST 16384
.const LEN 4096

    li r1, ROUNDS          ; rounds remaining
    li r9, 0x9e3779b9      ; refill seed
round:
    ; ---- refill: src[i] = ((i >> 4) + run_break) & 0xff ------------
    li r2, 0               ; i
    mv r10, r9             ; x = seed
fill:
    srli r3, r2, 4         ; run index
    slli r4, r10, 13       ; xorshift64 step
    xor r10, r10, r4
    srli r4, r10, 7
    xor r10, r10, r4
    slli r4, r10, 17
    xor r10, r10, r4
    andi r4, r10, 0x1f
    slti r5, r4, 2         ; ~6% of bytes break the run
    add r3, r3, r5
    andi r3, r3, 0xff
    li r6, SRC
    add r6, r6, r2
    sb r3, 0(r6)
    addi r2, r2, 1
    li r6, LEN
    blt r2, r6, fill
    ; ---- encode ----------------------------------------------------
    li r2, 1               ; read index (0 consumed below)
    li r7, DST             ; write pointer
    li r6, SRC
    lb r3, 0(r6)           ; current run value
    li r4, 1               ; current run length
scan:
    li r6, LEN
    bge r2, r6, last
    li r6, SRC
    add r6, r6, r2
    lb r5, 0(r6)
    addi r2, r2, 1
    beq r5, r3, extend
    call flush             ; run broke: emit (value, length)
    mv r3, r5
    li r4, 1
    jmp scan
extend:
    addi r4, r4, 1
    jmp scan
last:
    call flush
    addi r9, r9, 0x61c88647
    addi r1, r1, -1
    bne r1, r0, round
    halt

flush:                     ; emit (r3, r4) at r7, advance r7
    sb r3, 0(r7)
    st r4, 8(r7)
    addi r7, r7, 16
    ret
