#!/bin/bash
set -u
mkdir -p results
cargo build --release -q -p ssim-bench || exit 1
run() { b="$1"; shift; echo "[$(date +%H:%M:%S)] $b"; env "$@" cargo run --release -q -p ssim-bench --bin "$b" > "results/$b.txt" 2>&1; }
run fig6_ipc_epc             SSIM_PROFILE_INSTR=1500000 SSIM_EDS_INSTR=1000000
run fig4_sfg_order           SSIM_PROFILE_INSTR=1500000 SSIM_EDS_INSTR=800000
run fig5_delayed_update      SSIM_PROFILE_INSTR=1500000 SSIM_EDS_INSTR=800000
run fig7_hls_comparison      SSIM_PROFILE_INSTR=1500000 SSIM_EDS_INSTR=1000000
run table3_sfg_nodes         SSIM_PROFILE_INSTR=1000000
run sec41_convergence        SSIM_QUICK=1 SSIM_PROFILE_INSTR=1500000
run fig8_phases              SSIM_QUICK=1
run table4_relative_accuracy SSIM_QUICK=1
run sec46_design_space       SSIM_QUICK=1
run ablation_fifo_size       SSIM_QUICK=1 SSIM_PROFILE_INSTR=1200000 SSIM_EDS_INSTR=800000 SSIM_WORKLOADS=gcc,parser,gzip,perlbmk
run ablation_dep_cap         SSIM_QUICK=1 SSIM_PROFILE_INSTR=1200000 SSIM_EDS_INSTR=800000
run ablation_reduction_factor SSIM_QUICK=1 SSIM_PROFILE_INSTR=1200000 SSIM_EDS_INSTR=800000
run ext_inorder              SSIM_QUICK=1 SSIM_PROFILE_INSTR=1200000 SSIM_EDS_INSTR=800000
echo "[$(date +%H:%M:%S)] complete"
