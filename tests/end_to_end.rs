//! End-to-end integration: profile → generate → simulate for every
//! workload in the suite, on a scaled-down budget.

use ssim::prelude::*;

fn quick_profile(name: &str, machine: &MachineConfig) -> (StatisticalProfile, SyntheticTrace) {
    let program = ssim::workloads::by_name(name)
        .expect("known workload")
        .program();
    let p = profile(
        &program,
        &ProfileConfig::new(machine)
            .skip(500_000)
            .instructions(300_000),
    );
    let t = p.generate(20, 1);
    (p, t)
}

#[test]
fn every_workload_flows_through_the_pipeline() {
    let machine = MachineConfig::baseline();
    for w in ssim::workloads::all() {
        let (p, t) = quick_profile(w.name(), &machine);
        assert!(
            p.instructions() > 250_000,
            "{}: profile too short",
            w.name()
        );
        assert!(p.sfg().node_count() > 0, "{}: empty SFG", w.name());
        assert!(!t.is_empty(), "{}: empty synthetic trace", w.name());
        let r = simulate_trace(&t, &machine);
        assert_eq!(
            r.instructions,
            t.len() as u64,
            "{}: trace must fully commit",
            w.name()
        );
        let ipc = r.ipc();
        assert!(
            ipc > 0.05 && ipc <= 8.0,
            "{}: implausible synthetic IPC {ipc}",
            w.name()
        );
    }
}

#[test]
fn trace_length_scales_inversely_with_r() {
    let machine = MachineConfig::baseline();
    let program = ssim::workloads::by_name("crafty").unwrap().program();
    let p = profile(
        &program,
        &ProfileConfig::new(&machine)
            .skip(100_000)
            .instructions(400_000),
    );
    let t10 = p.generate(10, 1);
    let t100 = p.generate(100, 1);
    let ratio = t10.len() as f64 / t100.len().max(1) as f64;
    assert!(
        (6.0..16.0).contains(&ratio),
        "R scaling broken: ratio {ratio}"
    );
}

#[test]
fn synthetic_ipc_is_stable_across_seeds() {
    let machine = MachineConfig::baseline();
    let (p, _) = quick_profile("perlbmk", &machine);
    let ipcs: Vec<f64> = (0..5)
        .map(|seed| simulate_trace(&p.generate(20, seed), &machine).ipc())
        .collect();
    let s: Summary = ipcs.iter().copied().collect();
    assert!(
        s.cov() < 0.06,
        "synthetic IPC should converge across seeds (§4.1), CoV = {}",
        s.cov()
    );
}

#[test]
fn power_model_attaches_to_both_simulators() {
    let machine = MachineConfig::baseline();
    let program = ssim::workloads::by_name("eon").unwrap().program();
    let p = profile(
        &program,
        &ProfileConfig::new(&machine)
            .skip(500_000)
            .instructions(200_000),
    );
    let ss = simulate_trace(&p.generate(10, 1), &machine);
    let mut eds = ExecSim::new(&machine, &program);
    eds.skip(500_000);
    let eds = eds.run(200_000);

    let model = PowerModel::new(&machine);
    let ss_epc = model.evaluate(&ss.activity).epc();
    let eds_epc = model.evaluate(&eds.activity).epc();
    assert!(ss_epc > 0.0 && eds_epc > 0.0);
    // Both estimates live in the same ballpark (well under 2x apart).
    let err = absolute_error(ss_epc, eds_epc);
    assert!(
        err < 0.5,
        "EPC prediction wildly off: {ss_epc} vs {eds_epc}"
    );
}

#[test]
fn sfg_order_k_is_respected_end_to_end() {
    let machine = MachineConfig::baseline();
    let program = ssim::workloads::by_name("gcc").unwrap().program();
    for k in 0..=3 {
        let p = profile(
            &program,
            &ProfileConfig::new(&machine)
                .order(k)
                .skip(500_000)
                .instructions(150_000),
        );
        assert_eq!(p.k(), k);
        let t = p.generate(20, 1);
        assert!(!t.is_empty(), "k={k}: empty trace");
        let r = simulate_trace(&t, &machine);
        assert!(r.ipc() > 0.05, "k={k}: IPC {}", r.ipc());
    }
}
