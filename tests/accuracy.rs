//! Accuracy integration tests: statistical simulation must track the
//! execution-driven reference, absolutely and relatively.
//!
//! Budgets are kept small so the suite runs quickly; the bench harness
//! (`crates/bench`) reproduces the paper's full numbers.

use ssim::prelude::*;

/// Profile + EDS over the same window, on a few representative
/// workloads (one cache-bound, one branch-bound, one FP).
fn compare(name: &str, machine: &MachineConfig, n: u64) -> (f64, f64) {
    let program = ssim::workloads::by_name(name)
        .expect("known workload")
        .program();
    let p = profile(
        &program,
        &ProfileConfig::new(machine).skip(4_000_000).instructions(n),
    );
    let ss = simulate_trace(&p.generate(10, 1), machine);
    let mut eds = ExecSim::new(machine, &program);
    eds.skip(4_000_000);
    let eds = eds.run(n);
    (ss.ipc(), eds.ipc())
}

#[test]
fn absolute_ipc_error_is_bounded() {
    let machine = MachineConfig::baseline();
    for name in ["crafty", "twolf", "eon"] {
        let (ss, eds) = compare(name, &machine, 600_000);
        let err = absolute_error(ss, eds);
        assert!(
            err < 0.20,
            "{name}: statistical {ss:.3} vs EDS {eds:.3} — error {:.1}% too large",
            err * 100.0
        );
    }
}

#[test]
fn relative_trend_window_size() {
    // The paper's headline use case (§4.5): predicting the *trend* when
    // an architectural parameter moves.
    let machine = MachineConfig::baseline();
    let small = machine.clone().with_window(16);
    let name = "vortex";
    let program = ssim::workloads::by_name(name).unwrap().program();
    let p = profile(
        &program,
        &ProfileConfig::new(&machine)
            .skip(4_000_000)
            .instructions(600_000),
    );
    let trace = p.generate(10, 1);

    let ss_base = simulate_trace(&trace, &machine);
    let ss_small = simulate_trace(&trace, &small);
    let mut e = ExecSim::new(&machine, &program);
    e.skip(4_000_000);
    let eds_base = e.run(600_000);
    let mut e = ExecSim::new(&small, &program);
    e.skip(4_000_000);
    let eds_small = e.run(600_000);

    // Shrinking the window 128 -> 16 must hurt in both worlds...
    assert!(eds_small.ipc() < eds_base.ipc());
    assert!(ss_small.ipc() < ss_base.ipc());
    // ...and by a similar relative amount.
    let re = relative_error(
        MetricPair {
            ss: ss_base.ipc(),
            eds: eds_base.ipc(),
        },
        MetricPair {
            ss: ss_small.ipc(),
            eds: eds_small.ipc(),
        },
    );
    assert!(
        re < 0.15,
        "window-size trend error {:.1}% too large",
        re * 100.0
    );
}

#[test]
fn perfect_structures_remove_their_stalls() {
    let mut machine = MachineConfig::baseline();
    machine.perfect_caches = true;
    machine.perfect_bpred = true;
    let (ss, eds) = compare("parser", &machine, 400_000);
    // With no locality events, the only limits are dependences and
    // width — both modeled statistically. Errors should be small.
    let err = absolute_error(ss, eds);
    assert!(err < 0.15, "perfect-structure error {:.1}%", err * 100.0);
    assert!(eds > 1.0, "perfect parser should run fast, got {eds}");
}

#[test]
fn delayed_update_improves_mpki_fidelity() {
    // Figure 3's claim, as a regression test: the delayed-update
    // profile's misprediction rate is at least as close to EDS as the
    // immediate-update profile's.
    let machine = MachineConfig::baseline();
    let name = "parser";
    let program = ssim::workloads::by_name(name).unwrap().program();
    let eds = {
        let mut e = ExecSim::new(&machine, &program);
        e.skip(4_000_000);
        e.run(600_000)
    };
    let del = profile(
        &program,
        &ProfileConfig::new(&machine)
            .skip(4_000_000)
            .instructions(600_000)
            .branch_mode(BranchProfileMode::Delayed),
    );
    let imm = profile(
        &program,
        &ProfileConfig::new(&machine)
            .skip(4_000_000)
            .instructions(600_000)
            .branch_mode(BranchProfileMode::Immediate),
    );
    let eds_mpki = eds.mpki();
    let d = (del.branch_mpki() - eds_mpki).abs();
    let i = (imm.branch_mpki() - eds_mpki).abs();
    assert!(
        d <= i + 0.5,
        "delayed ({:.2}) must track EDS ({eds_mpki:.2}) at least as well as immediate ({:.2})",
        del.branch_mpki(),
        imm.branch_mpki()
    );
}
