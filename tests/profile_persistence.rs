//! Integration test: profiles round-trip through the binary format and
//! remain fully usable artifacts.

use ssim::prelude::*;

#[test]
fn saved_profile_drives_identical_design_exploration() {
    let machine = MachineConfig::baseline();
    let program = ssim::workloads::by_name("vpr").unwrap().program();
    let p = profile(
        &program,
        &ProfileConfig::new(&machine)
            .skip(1_000_000)
            .instructions(300_000),
    );

    let mut bytes = Vec::new();
    p.save(&mut bytes).expect("in-memory save succeeds");
    assert!(bytes.len() > 1_000, "profile should have substance");
    let restored = StatisticalProfile::load(&mut bytes.as_slice()).expect("load succeeds");

    // The restored profile must drive *identical* downstream results for
    // any machine configuration.
    for cfg in [
        machine.clone(),
        machine.clone().with_window(32),
        machine.clone().with_width(2),
    ] {
        let (ta, tb) = (p.generate(12, 5), restored.generate(12, 5));
        assert_eq!(ta.instrs(), tb.instrs());
        let (ra, rb) = (simulate_trace(&ta, &cfg), simulate_trace(&tb, &cfg));
        assert_eq!(ra.cycles, rb.cycles);
        assert_eq!(ra.instructions, rb.instructions);
    }
}

#[test]
fn anti_dep_profiles_round_trip() {
    let machine = MachineConfig::baseline().in_order();
    let program = ssim::workloads::by_name("gcc").unwrap().program();
    let p = profile(
        &program,
        &ProfileConfig::new(&machine)
            .anti_deps(true)
            .skip(1_000_000)
            .instructions(150_000),
    );
    let mut bytes = Vec::new();
    p.save(&mut bytes).unwrap();
    let restored = StatisticalProfile::load(&mut bytes.as_slice()).unwrap();
    let (ta, tb) = (p.generate(10, 2), restored.generate(10, 2));
    assert_eq!(ta.instrs(), tb.instrs());
    assert!(ta
        .instrs()
        .iter()
        .any(|i| i.anti_dep.iter().any(|d| d.is_some())));
}

#[test]
fn profiles_survive_the_filesystem() {
    let machine = MachineConfig::baseline();
    let program = ssim::workloads::by_name("crafty").unwrap().program();
    let p = profile(
        &program,
        &ProfileConfig::new(&machine)
            .skip(500_000)
            .instructions(100_000),
    );
    let dir = std::env::temp_dir().join("ssim-profile-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("crafty.ssimprf");
    {
        let mut f = std::fs::File::create(&path).unwrap();
        p.save(&mut f).unwrap();
    }
    let mut f = std::fs::File::open(&path).unwrap();
    let restored = StatisticalProfile::load(&mut f).unwrap();
    assert_eq!(restored.context_count(), p.context_count());
    std::fs::remove_file(&path).ok();
}
