//! Integration tests for the in-order / anti-dependency extension
//! (the paper's §2.1.1 future-work note).

use ssim::prelude::*;

#[test]
fn in_order_machine_is_slower_than_out_of_order() {
    let ooo = MachineConfig::baseline();
    let ino = MachineConfig::baseline().in_order();
    let program = ssim::workloads::by_name("crafty").unwrap().program();
    let run = |cfg: &MachineConfig| {
        let mut sim = ExecSim::new(cfg, &program);
        sim.skip(1_000_000);
        sim.run(200_000)
    };
    let fast = run(&ooo);
    let slow = run(&ino);
    assert!(
        slow.ipc() < fast.ipc(),
        "in-order {} must trail out-of-order {}",
        slow.ipc(),
        fast.ipc()
    );
    assert!(slow.ipc() > 0.05, "in-order machine still makes progress");
}

#[test]
fn anti_dep_profiles_record_waw_war() {
    let machine = MachineConfig::baseline().in_order();
    let program = ssim::workloads::by_name("bzip2").unwrap().program();
    let p = profile(
        &program,
        &ProfileConfig::new(&machine)
            .anti_deps(true)
            .skip(2_500_000)
            .instructions(200_000),
    );
    let tracked: u64 = p
        .contexts()
        .flat_map(|(_, s)| s.slots.iter())
        .map(|s| s.waw.total() + s.war.total())
        .sum();
    assert!(
        tracked > 100_000,
        "anti-dependency distributions must fill, got {tracked}"
    );

    // And the generated trace carries them.
    let trace = p.generate(10, 1);
    let with_anti = trace
        .instrs()
        .iter()
        .filter(|i| i.anti_dep.iter().any(|d| d.is_some()))
        .count();
    assert!(
        with_anti * 2 > trace.len(),
        "most instructions rewrite recently-touched registers, got {with_anti}/{}",
        trace.len()
    );
}

#[test]
fn raw_only_profiles_leave_anti_deps_empty() {
    let machine = MachineConfig::baseline();
    let program = ssim::workloads::by_name("eon").unwrap().program();
    let p = profile(
        &program,
        &ProfileConfig::new(&machine)
            .skip(1_000_000)
            .instructions(100_000),
    );
    for (_, s) in p.contexts() {
        for slot in &s.slots {
            assert!(slot.waw.is_empty() && slot.war.is_empty());
        }
    }
    let trace = p.generate(10, 1);
    assert!(trace.instrs().iter().all(|i| i.anti_dep == [None, None]));
}

#[test]
fn synthetic_in_order_simulation_tracks_eds() {
    let machine = MachineConfig::baseline().in_order();
    let program = ssim::workloads::by_name("twolf").unwrap().program();
    let mut sim = ExecSim::new(&machine, &program);
    sim.skip(4_000_000);
    let eds = sim.run(400_000);
    let p = profile(
        &program,
        &ProfileConfig::new(&machine)
            .anti_deps(true)
            .skip(4_000_000)
            .instructions(400_000),
    );
    let ss = simulate_trace(&p.generate(10, 1), &machine);
    let err = absolute_error(ss.ipc(), eds.ipc());
    assert!(
        err < 0.25,
        "in-order statistical simulation too far off: SS {} vs EDS {} ({:.1}%)",
        ss.ipc(),
        eds.ipc(),
        err * 100.0
    );
}
