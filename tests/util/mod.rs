//! Shared helpers for integration tests across the workspace.
//!
//! Timing discipline: tests never sleep for a fixed interval and hope —
//! they poll an observable condition with [`wait_until`] under one
//! configurable budget, and long generative suites pace themselves with
//! [`deadline`]/[`expired`]. `SSIM_TEST_TIMEOUT_MS` scales every
//! deadline in the workspace at once (slow CI runners raise it; the
//! default is generous on purpose because it is a *ceiling*, not a
//! wait — polling returns the moment the condition holds). The
//! `flake_guard` test in `crates/serve/tests` enforces the discipline
//! mechanically over every test source in the workspace.
//!
//! Consumers pull this file in by path, so there is exactly one copy:
//!
//! ```ignore
//! #[path = "../../../tests/util/mod.rs"]
//! mod util;
//! ```

// Each test binary compiles its own copy of this module and uses a
// subset of it.
#![allow(dead_code)]

use std::time::{Duration, Instant};

/// The suite-wide timeout budget: `SSIM_TEST_TIMEOUT_MS`, default 30 s.
pub fn timeout_ms() -> u64 {
    std::env::var("SSIM_TEST_TIMEOUT_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(30_000)
}

/// Polls `cond` every 2 ms until it holds, panicking with `what` after
/// [`timeout_ms`] elapses. Returns as soon as the condition is true, so
/// a raised timeout never slows a healthy run.
pub fn wait_until(what: &str, mut cond: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_millis(timeout_ms());
    while !cond() {
        assert!(
            Instant::now() < deadline,
            "timed out after {} ms waiting for: {what}",
            timeout_ms()
        );
        std::thread::sleep(Duration::from_millis(2));
    }
}

/// A deadline `frac` of the way through the [`timeout_ms`] budget,
/// measured from now. Generative tests (property suites over planner
/// runs, fuzz-ish loops) check it between cases so a slow runner sheds
/// coverage instead of timing out — each case stays deterministic, only
/// the case *count* adapts.
pub fn deadline(frac: f64) -> Instant {
    Instant::now() + Duration::from_millis((timeout_ms() as f64 * frac) as u64)
}

/// Whether a [`deadline`] has passed.
pub fn expired(d: Instant) -> bool {
    Instant::now() >= d
}
