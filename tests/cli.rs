//! End-to-end tests of the `ssim` command-line tool, driving the real
//! binary via `CARGO_BIN_EXE_ssim`.

use std::process::Command;

fn ssim(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_ssim"))
        .args(args)
        .output()
        .expect("ssim binary runs")
}

#[test]
fn list_names_the_whole_suite() {
    let out = ssim(&["list"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    for w in ssim::workloads::all() {
        assert!(text.contains(w.name()), "missing {}", w.name());
    }
}

#[test]
fn help_prints_usage_and_unknown_commands_fail() {
    let out = ssim(&["help"]);
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("USAGE"));

    let out = ssim(&["frobnicate"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));
}

#[test]
fn profile_info_simulate_explore_pipeline() {
    let dir = std::env::temp_dir().join("ssim-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let prf = dir.join("crafty.prf");
    let prf_s = prf.to_str().unwrap();

    let out = ssim(&[
        "profile", "crafty", "-o", prf_s, "--instr", "200000", "--skip", "200000",
    ]);
    assert!(
        out.status.success(),
        "profile failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(prf.exists());

    let out = ssim(&["info", prf_s]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("instructions:   200000"), "{text}");
    assert!(text.contains("hottest contexts"));

    let out = ssim(&["simulate", prf_s, "--r", "10", "--ruu", "64"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("IPC:"), "{text}");
    assert!(text.contains("EDP:"), "{text}");

    let out = ssim(&["explore", prf_s, "--ruu", "16,64", "--width", "2,8"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("EDP-optimal"), "{text}");

    std::fs::remove_file(&prf).ok();
}

#[test]
fn missing_arguments_are_reported() {
    let out = ssim(&["profile", "crafty"]); // no -o
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("-o"));

    let out = ssim(&["info", "/nonexistent/path.prf"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot open"));

    let out = ssim(&["profile", "nonesuch", "-o", "/tmp/x.prf"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown workload"));
}
