//! Cross-crate consistency checks: the substrates must agree with each
//! other where their models overlap.

use ssim::prelude::*;
use ssim::uarch::Unit;

/// The profiler and the EDS see the same functional stream, the same
/// cache geometry and the same predictor: their observed rates must
/// agree closely over the same window.
#[test]
fn profiler_and_eds_agree_on_locality_rates() {
    let machine = MachineConfig::baseline();
    let program = ssim::workloads::by_name("twolf").unwrap().program();
    let skip = 4_000_000u64;
    let n = 500_000u64;

    let p = profile(
        &program,
        &ProfileConfig::new(&machine).skip(skip).instructions(n),
    );
    let mut e = ExecSim::new(&machine, &program);
    e.skip(skip);
    let eds = e.run(n);

    // Aggregate the profile's per-context load miss probabilities.
    let (mut trials, mut misses) = (0u64, 0u64);
    for (_, s) in p.contexts() {
        for slot in &s.slots {
            if let Some(d) = &slot.dcache {
                trials += d.l1.trials();
                misses += d.l1.events();
            }
        }
    }
    let profiled = misses as f64 / trials.max(1) as f64;
    let eds_rate = eds.cache.l1d_load_miss_rate;
    assert!(
        (profiled - eds_rate).abs() < 0.10,
        "L1D rates diverge: profile {profiled:.3} vs EDS {eds_rate:.3}"
    );

    // MPKI agreement (delayed update was designed for exactly this).
    assert!(
        (p.branch_mpki() - eds.mpki()).abs() < 6.0,
        "MPKI diverges: profile {:.2} vs EDS {:.2}",
        p.branch_mpki(),
        eds.mpki()
    );
}

/// The functional machine and the EDS commit the same instructions.
#[test]
fn eds_commits_the_functional_stream() {
    let machine = MachineConfig::baseline();
    let program = ssim::workloads::by_name("crafty")
        .unwrap()
        .program_with_rounds(200);
    // Count the functional stream.
    let functional = ssim::func::Machine::new(&program).count() as u64;
    let eds = ExecSim::new(&machine, &program).run(u64::MAX);
    assert_eq!(
        eds.instructions, functional,
        "EDS must commit exactly the program"
    );
}

/// Power evaluation consumes activity from either simulator without
/// caring which produced it, and activity totals are consistent with
/// instruction counts.
#[test]
fn activity_counters_are_consistent() {
    let machine = MachineConfig::baseline();
    let program = ssim::workloads::by_name("gzip").unwrap().program();
    let mut e = ExecSim::new(&machine, &program);
    e.skip(1_000_000);
    let r = e.run(300_000);

    let dispatch = r.activity.unit(Unit::Dispatch).accesses;
    // Dispatch >= committed (wrong-path instructions dispatch too).
    assert!(
        dispatch >= r.instructions,
        "{dispatch} < {}",
        r.instructions
    );
    // Fetch >= dispatch (everything dispatched was fetched).
    assert!(r.activity.unit(Unit::Fetch).accesses >= dispatch);
    // Committed loads+stores accessed the D-cache at least once each.
    assert!(r.activity.unit(Unit::DCache).accesses > 0);
    assert_eq!(r.activity.cycles(), r.cycles);
}

/// Config builders preserve the Table 2 baseline semantics across
/// crates (bpred scaling, hierarchy scaling, machine validation).
#[test]
fn scaled_configs_stay_valid() {
    let base = MachineConfig::baseline();
    for f in [0.25, 0.5, 2.0, 4.0] {
        let mut cfg = base.clone();
        cfg.bpred = cfg.bpred.scaled(f);
        cfg.hierarchy = cfg.hierarchy.scaled(f);
        cfg.validate();
        // The scaled machine must still simulate.
        let program = ssim::workloads::by_name("eon").unwrap().program();
        let mut e = ExecSim::new(&cfg, &program);
        e.skip(500_000);
        let r = e.run(50_000);
        assert!(r.ipc() > 0.05, "factor {f}: IPC {}", r.ipc());
    }
}
