//! Integration tests for the HLS and SimPoint baselines against the
//! main framework.

use ssim::baselines::{hls::HlsModel, simpoint};
use ssim::prelude::*;

#[test]
fn sfg_beats_hls_on_a_structured_workload() {
    // Figure 7's claim in miniature: the SFG model, which keeps
    // per-block structure, predicts IPC better than HLS's global
    // distributions on a workload with strong per-block behaviour.
    let machine = MachineConfig::baseline();
    let name = "gcc";
    let program = ssim::workloads::by_name(name).unwrap().program();
    let skip = 4_000_000;
    let n = 600_000;

    let mut e = ExecSim::new(&machine, &program);
    e.skip(skip);
    let eds = e.run(n);

    let p = profile(
        &program,
        &ProfileConfig::new(&machine).skip(skip).instructions(n),
    );
    let sfg_trace = p.generate(10, 1);
    let sfg = simulate_trace(&sfg_trace, &machine);

    let hls = HlsModel::profile(&program, &machine, skip, n);
    let hls_trace = hls.generate(sfg_trace.len(), 1);
    let hls = simulate_trace(&hls_trace, &machine);

    let sfg_err = absolute_error(sfg.ipc(), eds.ipc());
    let hls_err = absolute_error(hls.ipc(), eds.ipc());
    assert!(
        sfg_err < hls_err + 0.02,
        "SFG ({:.3}, err {:.1}%) should beat HLS ({:.3}, err {:.1}%) vs EDS {:.3}",
        sfg.ipc(),
        sfg_err * 100.0,
        hls.ipc(),
        hls_err * 100.0,
        eds.ipc()
    );
}

#[test]
fn hls_pipeline_runs_for_every_workload() {
    let machine = MachineConfig::baseline();
    for w in ssim::workloads::all() {
        let program = w.program();
        let m = HlsModel::profile(&program, &machine, 500_000, 150_000);
        let t = m.generate(20_000, 2);
        let r = simulate_trace(&t, &machine);
        assert!(
            r.ipc() > 0.05 && r.ipc() <= 8.0,
            "{}: HLS IPC {}",
            w.name(),
            r.ipc()
        );
    }
}

#[test]
fn simpoint_weights_and_estimates_are_sane() {
    let machine = MachineConfig::baseline();
    let program = ssim::workloads::by_name("bzip2").unwrap().program();
    let cfg = simpoint::SimPointConfig {
        interval_len: 150_000,
        intervals: 10,
        max_k: 4,
        seed: 11,
    };
    let points = simpoint::choose(&program, &cfg, 0);
    assert!(!points.is_empty());
    let weight: f64 = points.iter().map(|p| p.weight).sum();
    assert!((weight - 1.0).abs() < 1e-9);
    let ipc = simpoint::estimate_ipc(&program, &machine, &points, &cfg, 0);
    assert!(ipc > 0.1 && ipc < 8.0, "SimPoint IPC {ipc}");
}

#[test]
fn simpoint_tracks_full_eds() {
    let machine = MachineConfig::baseline();
    let program = ssim::workloads::by_name("crafty").unwrap().program();
    let skip = 4_000_000u64;
    let stream = 1_200_000u64;
    let cfg = simpoint::SimPointConfig {
        interval_len: 150_000,
        intervals: (stream / 150_000) as usize,
        max_k: 4,
        seed: 5,
    };
    let mut e = ExecSim::new(&machine, &program);
    e.skip(skip);
    let eds = e.run(stream);
    let points = simpoint::choose(&program, &cfg, skip);
    let sp = simpoint::estimate_ipc(&program, &machine, &points, &cfg, skip);
    let err = absolute_error(sp, eds.ipc());
    assert!(
        err < 0.15,
        "SimPoint {sp:.3} vs EDS {:.3}: err {:.1}%",
        eds.ipc(),
        err * 100.0
    );
}
