//! Design-space exploration with statistical simulation (the paper's
//! §4.6 use case, scaled down for an example).
//!
//! One profiling pass per workload; then every (RUU, width) design
//! point is evaluated with a cheap synthetic-trace simulation, and the
//! EDP-optimal design is reported.
//!
//! Run with:
//! ```text
//! cargo run --release -p ssim --example design_space [workload]
//! ```

use ssim::prelude::*;

fn main() {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "twolf".to_string());
    let workload = ssim::workloads::by_name(&name).expect("known workload");
    let program = workload.program();
    let baseline = MachineConfig::baseline();

    // Profile once: the microarchitecture-independent characteristics
    // and the locality events for the baseline caches/predictor.
    let profile = profile(
        &program,
        &ProfileConfig::new(&baseline)
            .skip(4_000_000)
            .instructions(2_000_000),
    );
    let trace = profile.generate(20, 7);
    println!(
        "{}: profiled {} instructions, exploring with a {}-instruction synthetic trace",
        workload.name(),
        profile.instructions(),
        trace.len()
    );
    println!();
    println!(
        "{:>6} {:>6} {:>8} {:>10} {:>10}",
        "RUU", "width", "IPC", "EPC", "EDP"
    );

    let mut best: Option<(f64, usize, usize)> = None;
    for ruu in [16, 32, 64, 128] {
        for width in [2, 4, 8] {
            let cfg = baseline.clone().with_window(ruu).with_width(width);
            let r = simulate_trace(&trace, &cfg);
            let breakdown = PowerModel::new(&cfg).evaluate(&r.activity);
            let edp = breakdown.edp(r.ipc());
            println!(
                "{:>6} {:>6} {:>8.3} {:>10.2} {:>10.2}",
                ruu,
                width,
                r.ipc(),
                breakdown.epc(),
                edp
            );
            if best.is_none_or(|(b, _, _)| edp < b) {
                best = Some((edp, ruu, width));
            }
        }
    }
    let (edp, ruu, width) = best.expect("non-empty design space");
    println!();
    println!("EDP-optimal design: RUU {ruu}, width {width} (EDP {edp:.2})");
}
