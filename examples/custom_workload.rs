//! Profiling a user-written program: build your own workload with the
//! assembler DSL and run it through the full statistical-simulation
//! pipeline.
//!
//! The example implements a small histogram kernel (data-dependent
//! stores into a table) and shows how its statistical profile exposes
//! program structure: basic blocks, transition probabilities and
//! dependency distances.
//!
//! Run with:
//! ```text
//! cargo run --release -p ssim --example custom_workload
//! ```

use ssim::isa::{Assembler, Reg};
use ssim::prelude::*;

/// Builds a histogram kernel: count 4-bit symbol frequencies of a
/// pseudo-random buffer, then find the argmax bucket.
fn build_program() -> ssim::isa::Program {
    let mut a = Assembler::new("histogram");
    let buf_len: i64 = 1 << 16;
    let buf = a.alloc(buf_len as u64) as i64;
    let hist = a.alloc_words(16) as i64;

    let (i, x, t0, t1, t2) = (Reg::R1, Reg::R2, Reg::R3, Reg::R4, Reg::R5);
    let (best, besti, rounds) = (Reg::R6, Reg::R7, Reg::R29);

    // Fill the buffer with xorshift bytes.
    a.li(x, 0x2545_f491_4f6c_dd1du64 as i64);
    a.li(i, 0);
    let fill = a.here_label();
    a.slli(t0, x, 13);
    a.xor(x, x, t0);
    a.srli(t0, x, 7);
    a.xor(x, x, t0);
    a.slli(t0, x, 17);
    a.xor(x, x, t0);
    a.add(t0, Reg::R0, i);
    a.addi(t0, t0, buf);
    a.sb(t0, 0, x);
    a.addi(i, i, 1);
    a.li(t0, buf_len);
    a.blt(i, t0, fill);

    a.li(rounds, 1 << 30);
    let round = a.here_label();
    // Histogram pass.
    a.li(i, 0);
    let count = a.here_label();
    a.li(t0, buf);
    a.add(t0, t0, i);
    a.lb(t1, t0, 0);
    a.andi(t1, t1, 15);
    a.slli(t1, t1, 3);
    a.li(t2, hist);
    a.add(t2, t2, t1);
    a.ld(t0, t2, 0);
    a.addi(t0, t0, 1);
    a.st(t2, 0, t0);
    a.addi(i, i, 1);
    a.li(t0, buf_len);
    a.blt(i, t0, count);
    // Argmax pass (data-dependent branch).
    a.li(i, 0);
    a.li(best, -1);
    let scan = a.here_label();
    let not_better = a.label();
    a.slli(t0, i, 3);
    a.li(t1, hist);
    a.add(t1, t1, t0);
    a.ld(t2, t1, 0);
    a.bge(best, t2, not_better);
    a.mv(best, t2);
    a.mv(besti, i);
    a.bind(not_better).unwrap();
    a.addi(i, i, 1);
    a.slti(t0, i, 16);
    a.bne(t0, Reg::R0, scan);
    a.addi(rounds, rounds, -1);
    a.bne(rounds, Reg::R0, round);
    a.halt();
    a.finish().expect("histogram kernel assembles")
}

fn main() {
    let program = build_program();
    let machine = MachineConfig::baseline();

    let profile = profile(
        &program,
        &ProfileConfig::new(&machine)
            .skip(600_000)
            .instructions(1_000_000),
    );
    println!(
        "profile: {} instructions, {} SFG nodes, {} contexts, branch MPKI {:.2}",
        profile.instructions(),
        profile.sfg().node_count(),
        profile.context_count(),
        profile.branch_mpki()
    );

    // Show the hottest contexts and their terminal-branch behaviour.
    let mut contexts: Vec<_> = profile.contexts().collect();
    contexts.sort_by_key(|(_, s)| std::cmp::Reverse(s.occurrence));
    println!("\nhottest contexts:");
    for (ctx, stats) in contexts.iter().take(5) {
        let branch = stats
            .branch
            .as_ref()
            .map(|b| format!("taken {:.2}", b.taken.probability()))
            .unwrap_or_else(|| "no branch".to_string());
        println!(
            "  block@pc{:<6} x{:<8} {} instrs, {}",
            ctx.current(),
            stats.occurrence,
            stats.slots.len(),
            branch
        );
    }

    let trace = profile.generate(10, 99);
    let ss = simulate_trace(&trace, &machine);
    let mut eds = ExecSim::new(&machine, &program);
    eds.skip(600_000);
    let eds = eds.run(1_000_000);
    println!(
        "\nIPC: EDS {:.3} vs statistical {:.3} ({:.1}% error)",
        eds.ipc(),
        ss.ipc(),
        100.0 * absolute_error(ss.ipc(), eds.ipc())
    );
}
