//! Profiles as artifacts: save a statistical profile to disk, reload it
//! in a "later session", and validate that the regenerated synthetic
//! trace still carries the program's statistics.
//!
//! Run with:
//! ```text
//! cargo run --release -p ssim --example profile_artifacts [workload]
//! ```

use ssim::core::validate_trace;
use ssim::prelude::*;

fn main() -> std::io::Result<()> {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "vortex".to_string());
    let workload = ssim::workloads::by_name(&name).expect("known workload");
    let machine = MachineConfig::baseline();
    let program = workload.program();

    // --- session 1: the expensive pass; persist the result. ---
    let p = profile(
        &program,
        &ProfileConfig::new(&machine)
            .skip(4_000_000)
            .instructions(1_500_000),
    );
    let path = std::env::temp_dir().join(format!("{name}.ssimprf"));
    {
        let mut f = std::fs::File::create(&path)?;
        p.save(&mut f)?;
    }
    let bytes = std::fs::metadata(&path)?.len();
    println!(
        "saved {} -> {} ({} bytes for {} profiled instructions, {:.1} bits/instr)",
        name,
        path.display(),
        bytes,
        p.instructions(),
        bytes as f64 * 8.0 / p.instructions() as f64
    );

    // --- session 2: reload and explore without touching the program. ---
    let restored = {
        let mut f = std::fs::File::open(&path)?;
        StatisticalProfile::load(&mut f)?
    };
    let trace = restored.generate(20, 7);
    let report = validate_trace(&restored, &trace);
    println!("regenerated trace: {} instructions", trace.len());
    println!("fidelity: {report}");
    println!("max divergence: {:.4}", report.max_divergence());

    for (label, cfg) in [
        ("baseline", machine.clone()),
        ("half window", machine.clone().with_window(64)),
        ("narrow", machine.clone().with_width(4)),
    ] {
        let r = simulate_trace(&trace, &cfg);
        println!("{label:<12} IPC {:.3}", r.ipc());
    }
    std::fs::remove_file(&path).ok();
    Ok(())
}
