//! Quickstart: predict a workload's IPC and power with statistical
//! simulation and compare against the execution-driven reference.
//!
//! Run with:
//! ```text
//! cargo run --release -p ssim --example quickstart [workload]
//! ```

use ssim::prelude::*;

fn main() {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "gzip".to_string());
    let workload = ssim::workloads::by_name(&name).unwrap_or_else(|| {
        eprintln!(
            "unknown workload {name:?}; available: {}",
            ssim::workloads::all()
                .iter()
                .map(|w| w.name())
                .collect::<Vec<_>>()
                .join(", ")
        );
        std::process::exit(1);
    });

    let machine = MachineConfig::baseline(); // the paper's Table 2
    let program = workload.program();
    println!("workload: {} ({})", workload.name(), workload.spec_analog());

    // --- statistical simulation: one profiling pass... ---
    let profile = profile(
        &program,
        &ProfileConfig::new(&machine)
            .skip(4_000_000)
            .instructions(2_000_000),
    );
    println!(
        "profiled {} instructions: SFG order {} with {} nodes, {} contexts",
        profile.instructions(),
        profile.k(),
        profile.sfg().node_count(),
        profile.context_count()
    );

    // --- ...then a tiny synthetic trace stands in for the program. ---
    let trace = profile.generate(20, 42);
    let ss = simulate_trace(&trace, &machine);
    println!("synthetic trace: {} instructions", trace.len());

    // --- the execution-driven reference (slow path). ---
    let mut eds = ExecSim::new(&machine, &program);
    eds.skip(4_000_000);
    let eds = eds.run(2_000_000);

    // --- power, from the same activity counters for both. ---
    let power = PowerModel::new(&machine);
    let ss_epc = power.evaluate(&ss.activity).epc();
    let eds_epc = power.evaluate(&eds.activity).epc();

    println!();
    println!(
        "              {:>12} {:>12} {:>8}",
        "EDS", "statistical", "error"
    );
    println!(
        "IPC           {:>12.3} {:>12.3} {:>7.1}%",
        eds.ipc(),
        ss.ipc(),
        100.0 * absolute_error(ss.ipc(), eds.ipc())
    );
    println!(
        "EPC (W/cyc)   {:>12.2} {:>12.2} {:>7.1}%",
        eds_epc,
        ss_epc,
        100.0 * absolute_error(ss_epc, eds_epc)
    );
    println!(
        "cycles        {:>12} {:>12}   ({}x fewer simulated instructions)",
        eds.cycles,
        ss.cycles,
        eds.instructions / ss.instructions.max(1)
    );
}
