//! Phase behaviour: statistical simulation vs SimPoint (the paper's
//! §4.4 study, scaled down).
//!
//! A long reference stream is characterised three ways: one statistical
//! profile over the whole stream, one profile per sample, and SimPoint
//! phase-based execution-driven sampling. All are compared against full
//! execution-driven simulation of the stream.
//!
//! Run with:
//! ```text
//! cargo run --release -p ssim --example phase_sampling [workload]
//! ```

use ssim::baselines::simpoint;
use ssim::prelude::*;

fn main() {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "bzip2".to_string());
    let workload = ssim::workloads::by_name(&name).expect("known workload");
    let program = workload.program();
    let machine = MachineConfig::baseline();

    let skip = 4_000_000u64;
    let stream = 4_000_000u64; // the "reference stream"
    let samples = 4u64;

    // Ground truth: EDS over the whole stream.
    let mut eds = ExecSim::new(&machine, &program);
    eds.skip(skip);
    let eds = eds.run(stream);
    println!(
        "{}: reference EDS IPC {:.3} over {}M instructions",
        name,
        eds.ipc(),
        stream / 1_000_000
    );

    // (a) one profile over the full stream.
    let p = profile(
        &program,
        &ProfileConfig::new(&machine).skip(skip).instructions(stream),
    );
    let one = simulate_trace(&p.generate(40, 1), &machine).ipc();

    // (b) one profile per sample, averaged.
    let per = stream / samples;
    let mut acc = 0.0;
    for s in 0..samples {
        let p = profile(
            &program,
            &ProfileConfig::new(&machine)
                .skip(skip)
                .warm(s * per)
                .instructions(per),
        );
        acc += simulate_trace(&p.generate(40, 1), &machine).ipc();
    }
    let many = acc / samples as f64;

    // (c) SimPoint.
    let sp_cfg = simpoint::SimPointConfig {
        interval_len: 500_000,
        intervals: (stream / 500_000) as usize,
        max_k: 5,
        seed: 1,
    };
    let points = simpoint::choose(&program, &sp_cfg, skip);
    let sp = simpoint::estimate_ipc(&program, &machine, &points, &sp_cfg, skip);

    println!();
    println!("{:<34} {:>8} {:>8}", "technique", "IPC", "error");
    for (label, ipc) in [
        ("statistical, 1 profile".to_string(), one),
        (format!("statistical, {samples} sample profiles"), many),
        (format!("SimPoint, {} points", points.len()), sp),
    ] {
        println!(
            "{:<34} {:>8.3} {:>7.1}%",
            label,
            ipc,
            100.0 * absolute_error(ipc, eds.ipc())
        );
    }
}
