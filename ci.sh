#!/bin/bash
# The canonical CI gate. Every check .github/workflows/ci.yml runs maps
# to a stage of this script, and run_all.sh front-loads the same stages,
# so CI can never disagree with a developer box: if `./ci.sh` passes
# locally, the workflow's check jobs pass too.
#
#   ./ci.sh            # everything (fmt, clippy, build, test, smoke)
#   ./ci.sh fmt        # rustfmt, check only
#   ./ci.sh clippy     # clippy, warnings are errors
#   ./ci.sh build      # release build, all targets
#   ./ci.sh test       # full test suite
#   ./ci.sh smoke      # serve + fleet loopback end-to-end, the
#                      # fused-engine identity/throughput bench, and the
#                      # 2-thread sweep-scaling smoke (SSIM_QUICK)
#   ./ci.sh asm        # assembler front-end: corpus assembles through
#                      # the real CLI, native workloads re-emit to
#                      # identical streams, parser fuzz smoke
#   ./ci.sh dse        # surrogate-guided planner vs exhaustive truth
#                      # on the real §4.6 space (SSIM_QUICK)
#   ./ci.sh deep       # deep bench tier (not part of `all`; manual or
#                      # nightly): full §4.6 thread-scaling curve with
#                      # parallel-efficiency gates, 8-backend fleet
#                      # scaling, and a perf_report fold of both
set -euo pipefail

stage() { echo "[ci $(date +%H:%M:%S)] $*"; }

do_fmt() {
  stage "cargo fmt --check"
  cargo fmt --check
}

do_clippy() {
  stage "cargo clippy --all-targets -- -D warnings"
  cargo clippy --all-targets -- -D warnings
}

do_build() {
  stage "cargo build --release"
  cargo build --release
}

do_test() {
  stage "cargo test -q"
  cargo test -q
}

do_smoke() {
  # Loopback end-to-end: single server bit-exact vs direct library
  # calls, then the 3-backend fleet under seeded fault injection.
  stage "ssim-serve smoke"
  SSIM_QUICK=1 cargo run --release -q -p ssim-serve -- smoke
  stage "ssim-serve fleet smoke"
  SSIM_QUICK=1 cargo run --release -q -p ssim-serve -- fleet smoke
  # Fused generate-and-simulate engine: asserts bit-identical SimResults
  # across reference / unfused / fused in-measurement, so a divergence
  # fails CI loudly rather than skewing a recorded speedup.
  stage "sim_speed (fused engine identity)"
  SSIM_QUICK=1 cargo run --release -q -p ssim-bench --bin sim_speed
  # Thread-scaling smoke over the quick §4.6 grid at 2 threads:
  # asserts byte-identity across thread counts and (on multi-core
  # hosts) gates speedup(2) >= SSIM_MIN_SPEEDUP2; single-core hosts
  # record the curve without enforcing.
  stage "scaling (2-thread sweep smoke)"
  SSIM_QUICK=1 SSIM_THREADS=2 cargo run --release -q -p ssim-bench --bin scaling
}

do_asm() {
  # Assembler front-end gate. Three layers: every shipped corpus
  # program assembles (and bounded-runs) through the real CLI; the
  # differential harness proves the native workloads re-emit through
  # text to byte-identical programs and dynamic streams; a deterministic
  # fuzz pass (token soup + mutated corpus) proves the parser returns
  # diagnostics instead of panicking.
  stage "ssim-asm build --run (corpus assembles and halts)"
  cargo run --release -q -p ssim-asm --bin ssim-asm -- \
    build --define ROUNDS=2 --run 5000000 programs/*.asm
  stage "asm differential (native workloads re-emit identically)"
  cargo test --release -q -p ssim-workloads --test asm_differential
  stage "asm fuzz smoke (deterministic soup + corpus mutation)"
  cargo test --release -q -p ssim-asm --test fuzz
}

do_dse() {
  # Surrogate-guided DSE planner against exhaustive ground truth on the
  # real §4.6 space: asserts the budget, Pareto-gap, stratum-error and
  # byte-determinism gates internally, and writes
  # results/BENCH_dse.json for perf_report to fold in.
  stage "dse (planner vs exhaustive, quick space)"
  mkdir -p results
  SSIM_QUICK=1 cargo run --release -q -p ssim-bench --bin dse
}

do_deep() {
  # Deep bench tier — the full §4.6 design space across the
  # threads={1,4,8,16} curve (parallel efficiency gated at threads=4 on
  # hosts with >= 4 cores) and the fleet's backends={1,3,8} scaling
  # curve, folded into results/BENCH_parallel.json. Too heavy for the
  # per-push gate: run manually or from the nightly/dispatch CI job.
  stage "scaling (deep: full grid, threads={1,4,8,16})"
  mkdir -p results
  SSIM_DEEP=1 cargo run --release -q -p ssim-bench --bin scaling
  stage "fleet bench (deep: backends={1,3,8})"
  SSIM_DEEP=1 SSIM_QUICK=1 cargo run --release -q -p ssim-serve -- fleet bench
  stage "perf_report (fold deep curves)"
  SSIM_QUICK=1 cargo run --release -q -p ssim-bench --bin perf_report
}

case "${1:-all}" in
  fmt)    do_fmt ;;
  clippy) do_clippy ;;
  build)  do_build ;;
  test)   do_test ;;
  smoke)  do_smoke ;;
  asm)    do_asm ;;
  dse)    do_dse ;;
  deep)   do_deep ;;
  all)
    do_fmt
    do_clippy
    do_build
    do_test
    do_asm
    do_smoke
    do_dse
    stage "all stages passed"
    ;;
  *)
    echo "usage: ./ci.sh [fmt|clippy|build|test|smoke|asm|dse|deep|all]" >&2
    exit 2
    ;;
esac
