#!/bin/bash
# The canonical CI gate. Every check .github/workflows/ci.yml runs maps
# to a stage of this script, and run_all.sh front-loads the same stages,
# so CI can never disagree with a developer box: if `./ci.sh` passes
# locally, the workflow's check jobs pass too.
#
#   ./ci.sh            # everything (fmt, clippy, build, test, asm,
#                      # smoke, dse, load)
#   ./ci.sh fmt        # rustfmt, check only
#   ./ci.sh clippy     # clippy, warnings are errors
#   ./ci.sh build      # release build, all targets
#   ./ci.sh test       # full test suite
#   ./ci.sh smoke      # serve + fleet loopback end-to-end, the
#                      # fused-engine identity/throughput bench, and the
#                      # 2-thread sweep-scaling smoke (SSIM_QUICK)
#   ./ci.sh asm        # assembler front-end: corpus assembles through
#                      # the real CLI, native workloads re-emit to
#                      # identical streams, parser fuzz smoke
#   ./ci.sh dse        # surrogate-guided planner vs exhaustive truth
#                      # on the real §4.6 space (SSIM_QUICK)
#   ./ci.sh load       # loadgen chaos gate: open-loop load through a
#                      # gateway over fault-injecting backends, zero
#                      # lost/duplicated acks (SSIM_QUICK)
#   ./ci.sh deep       # deep bench tier (not part of `all`; manual or
#                      # nightly): full §4.6 thread-scaling curve with
#                      # parallel-efficiency gates, 8-backend fleet
#                      # scaling, the journal kill-and-resume chaos
#                      # test, the 10k-connection load story, and a
#                      # perf_report fold of all of it
set -euo pipefail

stage() { echo "[ci $(date +%H:%M:%S)] $*"; }

do_fmt() {
  stage "cargo fmt --check"
  cargo fmt --check
}

do_clippy() {
  stage "cargo clippy --all-targets -- -D warnings"
  cargo clippy --all-targets -- -D warnings
}

do_build() {
  stage "cargo build --release"
  cargo build --release
}

do_test() {
  stage "cargo test -q"
  cargo test -q
}

do_smoke() {
  # Loopback end-to-end: single server bit-exact vs direct library
  # calls, then the 3-backend fleet under seeded fault injection.
  stage "ssim-serve smoke"
  SSIM_QUICK=1 cargo run --release -q -p ssim-serve -- smoke
  stage "ssim-serve fleet smoke"
  SSIM_QUICK=1 cargo run --release -q -p ssim-serve -- fleet smoke
  # Fused generate-and-simulate engine: asserts bit-identical SimResults
  # across reference / unfused / fused in-measurement, so a divergence
  # fails CI loudly rather than skewing a recorded speedup.
  stage "sim_speed (fused engine identity)"
  SSIM_QUICK=1 cargo run --release -q -p ssim-bench --bin sim_speed
  # Thread-scaling smoke over the quick §4.6 grid at 2 threads:
  # asserts byte-identity across thread counts and (on multi-core
  # hosts) gates speedup(2) >= SSIM_MIN_SPEEDUP2; single-core hosts
  # record the curve without enforcing.
  stage "scaling (2-thread sweep smoke)"
  SSIM_QUICK=1 SSIM_THREADS=2 cargo run --release -q -p ssim-bench --bin scaling
}

do_asm() {
  # Assembler front-end gate. Three layers: every shipped corpus
  # program assembles (and bounded-runs) through the real CLI; the
  # differential harness proves the native workloads re-emit through
  # text to byte-identical programs and dynamic streams; a deterministic
  # fuzz pass (token soup + mutated corpus) proves the parser returns
  # diagnostics instead of panicking.
  stage "ssim-asm build --run (corpus assembles and halts)"
  cargo run --release -q -p ssim-asm --bin ssim-asm -- \
    build --define ROUNDS=2 --run 5000000 programs/*.asm
  stage "asm differential (native workloads re-emit identically)"
  cargo test --release -q -p ssim-workloads --test asm_differential
  stage "asm fuzz smoke (deterministic soup + corpus mutation)"
  cargo test --release -q -p ssim-asm --test fuzz
}

do_dse() {
  # Surrogate-guided DSE planner against exhaustive ground truth on the
  # real §4.6 space: asserts the budget, Pareto-gap, stratum-error and
  # byte-determinism gates internally, and writes
  # results/BENCH_dse.json for perf_report to fold in.
  stage "dse (planner vs exhaustive, quick space)"
  mkdir -p results
  SSIM_QUICK=1 cargo run --release -q -p ssim-bench --bin dse
}

# Shared body of the load stages: three fault-injecting backends, a
# gateway over them, and the open-loop loadgen with its zero-lost /
# zero-duplicated ack gate. Runs in a subshell so the EXIT trap always
# reaps the servers and the temp dir, pass or fail. Scale comes from
# the caller's SSIM_QUICK / SSIM_DEEP (and the SSIM_LOAD_* knobs).
run_loadgen() (
  set -euo pipefail
  tmp="$(mktemp -d)"
  pids=()
  trap '[ "${#pids[@]}" -gt 0 ] && kill "${pids[@]}" 2>/dev/null; rm -rf "$tmp"' EXIT
  # Thousands of concurrent sockets need headroom over the default
  # soft fd limit (best effort — the hard limit is the ceiling).
  ulimit -n "$(ulimit -Hn)" 2>/dev/null || true
  SSIM_FAULT_PLAN="drop:0.05,delay:1ms@7" target/release/ssim-serve serve \
    --addr 127.0.0.1:0 --port-file "$tmp/b0.port" --workers 2 >"$tmp/b0.log" 2>&1 &
  pids+=($!)
  SSIM_FAULT_PLAN="reject:0.1@11" target/release/ssim-serve serve \
    --addr 127.0.0.1:0 --port-file "$tmp/b1.port" --workers 2 >"$tmp/b1.log" 2>&1 &
  pids+=($!)
  target/release/ssim-serve serve \
    --addr 127.0.0.1:0 --port-file "$tmp/b2.port" --workers 2 >"$tmp/b2.log" 2>&1 &
  pids+=($!)
  for _ in $(seq 1 300); do
    [ -f "$tmp/b0.port" ] && [ -f "$tmp/b1.port" ] && [ -f "$tmp/b2.port" ] && break
    sleep 0.1
  done
  [ -f "$tmp/b2.port" ] || { echo "backends never wrote their port files" >&2; exit 1; }
  target/release/ssim-serve gateway --addr 127.0.0.1:0 --port-file "$tmp/gw.port" \
    "$(cat "$tmp/b0.port")" "$(cat "$tmp/b1.port")" "$(cat "$tmp/b2.port")" \
    >"$tmp/gw.log" 2>&1 &
  pids+=($!)
  for _ in $(seq 1 300); do [ -f "$tmp/gw.port" ] && break; sleep 0.1; done
  [ -f "$tmp/gw.port" ] || { echo "gateway never wrote its port file" >&2; exit 1; }
  mkdir -p results
  target/release/loadgen "$(cat "$tmp/gw.port")"
)

do_load() {
  # The chaos/load gate: a gateway over backends that drop, delay and
  # reject must still lose or duplicate zero acknowledgements under
  # 1k-connection open-loop load. Writes results/BENCH_load.json.
  do_build
  stage "loadgen (gateway over chaos backends, SSIM_QUICK)"
  SSIM_QUICK=1 run_loadgen
}

do_deep() {
  # Deep bench tier — the full §4.6 design space across the
  # threads={1,4,8,16} curve (parallel efficiency gated at threads=4 on
  # hosts with >= 4 cores), the fleet's backends={1,3,8} scaling
  # curve, the journal kill-and-resume chaos test, and the
  # 10k-connection load story, folded into results/BENCH_parallel.json.
  # Too heavy for the per-push gate: run manually or from the
  # nightly/dispatch CI job.
  do_build
  stage "scaling (deep: full grid, threads={1,4,8,16})"
  mkdir -p results
  SSIM_DEEP=1 cargo run --release -q -p ssim-bench --bin scaling
  stage "fleet bench (deep: backends={1,3,8})"
  SSIM_DEEP=1 SSIM_QUICK=1 cargo run --release -q -p ssim-serve -- fleet bench
  stage "journal chaos (SIGKILL mid-sweep, resume, byte-identical digest)"
  target/release/ssim-serve journal-chaos
  stage "loadgen (deep: 10k connections)"
  SSIM_DEEP=1 run_loadgen
  stage "perf_report (fold deep curves)"
  SSIM_QUICK=1 cargo run --release -q -p ssim-bench --bin perf_report
}

case "${1:-all}" in
  fmt)    do_fmt ;;
  clippy) do_clippy ;;
  build)  do_build ;;
  test)   do_test ;;
  smoke)  do_smoke ;;
  asm)    do_asm ;;
  dse)    do_dse ;;
  load)   do_load ;;
  deep)   do_deep ;;
  all)
    do_fmt
    do_clippy
    do_build
    do_test
    do_asm
    do_smoke
    do_dse
    do_load
    stage "all stages passed"
    ;;
  *)
    echo "usage: ./ci.sh [fmt|clippy|build|test|smoke|asm|dse|load|deep|all]" >&2
    exit 2
    ;;
esac
