#!/bin/bash
# The canonical CI gate. Every check .github/workflows/ci.yml runs maps
# to a stage of this script, and run_all.sh front-loads the same stages,
# so CI can never disagree with a developer box: if `./ci.sh` passes
# locally, the workflow's check jobs pass too.
#
#   ./ci.sh            # everything (fmt, clippy, build, test, smoke)
#   ./ci.sh fmt        # rustfmt, check only
#   ./ci.sh clippy     # clippy, warnings are errors
#   ./ci.sh build      # release build, all targets
#   ./ci.sh test       # full test suite
#   ./ci.sh smoke      # serve + fleet loopback end-to-end, plus the
#                      # fused-engine identity/throughput bench (SSIM_QUICK)
#   ./ci.sh dse        # surrogate-guided planner vs exhaustive truth
#                      # on the real §4.6 space (SSIM_QUICK)
set -euo pipefail

stage() { echo "[ci $(date +%H:%M:%S)] $*"; }

do_fmt() {
  stage "cargo fmt --check"
  cargo fmt --check
}

do_clippy() {
  stage "cargo clippy --all-targets -- -D warnings"
  cargo clippy --all-targets -- -D warnings
}

do_build() {
  stage "cargo build --release"
  cargo build --release
}

do_test() {
  stage "cargo test -q"
  cargo test -q
}

do_smoke() {
  # Loopback end-to-end: single server bit-exact vs direct library
  # calls, then the 3-backend fleet under seeded fault injection.
  stage "ssim-serve smoke"
  SSIM_QUICK=1 cargo run --release -q -p ssim-serve -- smoke
  stage "ssim-serve fleet smoke"
  SSIM_QUICK=1 cargo run --release -q -p ssim-serve -- fleet smoke
  # Fused generate-and-simulate engine: asserts bit-identical SimResults
  # across reference / unfused / fused in-measurement, so a divergence
  # fails CI loudly rather than skewing a recorded speedup.
  stage "sim_speed (fused engine identity)"
  SSIM_QUICK=1 cargo run --release -q -p ssim-bench --bin sim_speed
}

do_dse() {
  # Surrogate-guided DSE planner against exhaustive ground truth on the
  # real §4.6 space: asserts the budget, Pareto-gap, stratum-error and
  # byte-determinism gates internally, and writes
  # results/BENCH_dse.json for perf_report to fold in.
  stage "dse (planner vs exhaustive, quick space)"
  mkdir -p results
  SSIM_QUICK=1 cargo run --release -q -p ssim-bench --bin dse
}

case "${1:-all}" in
  fmt)    do_fmt ;;
  clippy) do_clippy ;;
  build)  do_build ;;
  test)   do_test ;;
  smoke)  do_smoke ;;
  dse)    do_dse ;;
  all)
    do_fmt
    do_clippy
    do_build
    do_test
    do_smoke
    do_dse
    stage "all stages passed"
    ;;
  *)
    echo "usage: ./ci.sh [fmt|clippy|build|test|smoke|dse|all]" >&2
    exit 2
    ;;
esac
