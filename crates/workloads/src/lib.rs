//! Benchmark programs for the ssim framework.
//!
//! The paper evaluates on ten SPEC CINT2000 benchmarks (Table 1). Those
//! Alpha binaries are not redistributable, so this crate provides ten
//! programs written in the ssim mini-ISA, **one per SPEC archetype**,
//! each a real algorithm chosen to echo its namesake's dynamic
//! behaviour:
//!
//! | name      | SPEC analog | algorithm | character |
//! |-----------|-------------|-----------|-----------|
//! | `bzip2`   | 256.bzip2   | run-length + move-to-front coding | tight integer loops, data-dependent run lengths |
//! | `crafty`  | 186.crafty  | bitboard evaluation + hash probes | shift/mask logic, table lookups |
//! | `eon`     | 252.eon     | ray-marching renderer | floating-point heavy, predictable loops |
//! | `gcc`     | 176.gcc     | token state machine, hundreds of handlers | huge static footprint, irregular control flow |
//! | `gzip`    | 164.gzip    | LZ77 hash-chain match finder | string compares, hash-chain walks |
//! | `parser`  | 197.parser  | recursive-descent expression parser | recursion, hard-to-predict branches |
//! | `perlbmk` | 253.perlbmk | bytecode interpreter | indirect-branch dispatch |
//! | `twolf`   | 300.twolf   | simulated-annealing placement | random access, data-dependent accept branch |
//! | `vortex`  | 255.vortex  | hashed object store | pointer chasing, call-heavy |
//! | `vpr`     | 175.vpr     | BFS maze router | queue-driven grid walks |
//!
//! Every builder takes a `rounds` parameter; the default keeps programs
//! running for billions of instructions so experiments can simply take
//! the first *N* dynamic instructions.
//!
//! Alongside the native suite, [`corpus`] exposes the textual program
//! corpus (`programs/*.asm`, assembled through `ssim-asm`) as
//! first-class workloads; [`by_name`] resolves both sets.
//!
//! # Examples
//!
//! ```
//! use ssim_workloads::{all, by_name};
//! use ssim_func::Machine;
//!
//! assert_eq!(all().len(), 10);
//! let w = by_name("gzip").unwrap();
//! let program = w.program_with_rounds(1);
//! let executed = Machine::new(&program).take(10_000).count();
//! assert!(executed > 100);
//! ```

mod corpus;
mod programs;
mod util;

pub use corpus::{corpus, CORPUS_SOURCES};

use ssim_isa::Program;

/// One benchmark in the suite.
#[derive(Debug, Clone, Copy)]
pub struct Workload {
    name: &'static str,
    spec_analog: &'static str,
    description: &'static str,
    build: fn(u64) -> Program,
    default_rounds: u64,
}

impl Workload {
    /// The workload's short name (`"gzip"`, `"parser"`, …).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The SPEC CINT2000 benchmark this workload stands in for.
    pub fn spec_analog(&self) -> &'static str {
        self.spec_analog
    }

    /// A one-line description of the algorithm.
    pub fn description(&self) -> &'static str {
        self.description
    }

    /// Builds the program with the default (effectively unbounded)
    /// round count.
    pub fn program(&self) -> Program {
        (self.build)(self.default_rounds)
    }

    /// Builds the program with a specific outer-loop round count
    /// (useful for short, terminating runs in tests).
    pub fn program_with_rounds(&self, rounds: u64) -> Program {
        (self.build)(rounds)
    }
}

/// Effectively-unbounded round count used by [`Workload::program`].
const UNBOUNDED_ROUNDS: u64 = 1 << 40;

/// The full ten-benchmark suite, in the paper's Table 1 order.
pub fn all() -> &'static [Workload] {
    static SUITE: [Workload; 10] = [
        Workload {
            name: "bzip2",
            spec_analog: "256.bzip2",
            description: "run-length encoding + move-to-front over a compressible buffer",
            build: programs::bzip2::build,
            default_rounds: UNBOUNDED_ROUNDS,
        },
        Workload {
            name: "crafty",
            spec_analog: "186.crafty",
            description: "bitboard attack evaluation with transposition-table probes",
            build: programs::crafty::build,
            default_rounds: UNBOUNDED_ROUNDS,
        },
        Workload {
            name: "eon",
            spec_analog: "252.eon",
            description: "sphere-field ray-marching renderer",
            build: programs::eon::build,
            default_rounds: UNBOUNDED_ROUNDS,
        },
        Workload {
            name: "gcc",
            spec_analog: "176.gcc",
            description: "token-driven state machine with hundreds of distinct handlers",
            build: programs::gcc::build,
            default_rounds: UNBOUNDED_ROUNDS,
        },
        Workload {
            name: "gzip",
            spec_analog: "164.gzip",
            description: "LZ77 hash-chain longest-match search",
            build: programs::gzip::build,
            default_rounds: UNBOUNDED_ROUNDS,
        },
        Workload {
            name: "parser",
            spec_analog: "197.parser",
            description: "recursive-descent parser over a random token stream",
            build: programs::parser::build,
            default_rounds: UNBOUNDED_ROUNDS,
        },
        Workload {
            name: "perlbmk",
            spec_analog: "253.perlbmk",
            description: "stack-machine bytecode interpreter with jump-table dispatch",
            build: programs::perlbmk::build,
            default_rounds: UNBOUNDED_ROUNDS,
        },
        Workload {
            name: "twolf",
            spec_analog: "300.twolf",
            description: "simulated-annealing cell placement on a large grid",
            build: programs::twolf::build,
            default_rounds: UNBOUNDED_ROUNDS,
        },
        Workload {
            name: "vortex",
            spec_analog: "255.vortex",
            description: "hashed object store with linked-bucket traversal",
            build: programs::vortex::build,
            default_rounds: UNBOUNDED_ROUNDS,
        },
        Workload {
            name: "vpr",
            spec_analog: "175.vpr",
            description: "breadth-first maze routing on an obstacle grid",
            build: programs::vpr::build,
            default_rounds: UNBOUNDED_ROUNDS,
        },
    ];
    &SUITE
}

/// Looks a workload up by name, across the paper suite and the
/// textual corpus ([`corpus`]).
pub fn by_name(name: &str) -> Option<&'static Workload> {
    all().iter().chain(corpus().iter()).find(|w| w.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_ten_unique_names() {
        let names: Vec<_> = all().iter().map(|w| w.name()).collect();
        assert_eq!(names.len(), 10);
        let mut sorted = names.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 10);
    }

    #[test]
    fn lookup_by_name() {
        assert!(by_name("twolf").is_some());
        assert_eq!(by_name("twolf").unwrap().spec_analog(), "300.twolf");
        assert!(by_name("nonesuch").is_none());
    }
}
