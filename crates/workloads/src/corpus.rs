//! The textual program corpus: `.asm` sources under `programs/`,
//! assembled on demand through `ssim-asm`.
//!
//! These are first-class workloads — same [`Workload`] surface as the
//! ten native SPEC-archetype programs, flowing through the profiler,
//! synthetic generation and simulation unchanged — but they are born as
//! text, so they also exercise the whole assembler front-end every time
//! the suite runs. The sources are embedded at compile time
//! (`include_str!`), and each declares `.const ROUNDS`, which
//! [`Workload::program_with_rounds`] overrides via
//! [`ssim_asm::AsmOptions::define`].

use crate::{Workload, UNBOUNDED_ROUNDS};
use ssim_asm::AsmOptions;
use ssim_isa::Program;

/// The embedded corpus sources, `(name, source)`, in suite order.
pub const CORPUS_SOURCES: &[(&str, &str)] = &[
    ("rle", include_str!("../../../programs/rle.asm")),
    ("bytecode", include_str!("../../../programs/bytecode.asm")),
    ("listwalk", include_str!("../../../programs/listwalk.asm")),
];

fn build(name: &str, rounds: u64) -> Program {
    let (_, src) = CORPUS_SOURCES
        .iter()
        .find(|(n, _)| *n == name)
        .expect("corpus source is embedded");
    // ROUNDS caps at i64::MAX in the .const namespace; the unbounded
    // sentinel (1 << 40) fits comfortably.
    let opts = AsmOptions::new().define("ROUNDS", i64::try_from(rounds).unwrap_or(i64::MAX));
    ssim_asm::assemble_with(src, &opts)
        .unwrap_or_else(|d| panic!("embedded corpus program {name} failed to assemble:\n{d}"))
}

fn build_rle(rounds: u64) -> Program {
    build("rle", rounds)
}
fn build_bytecode(rounds: u64) -> Program {
    build("bytecode", rounds)
}
fn build_listwalk(rounds: u64) -> Program {
    build("listwalk", rounds)
}

/// The textual corpus, as workloads. Kept separate from [`crate::all`]
/// (whose ten-benchmark shape is pinned by the paper's Table 1);
/// [`crate::by_name`] resolves both sets.
pub fn corpus() -> &'static [Workload] {
    static CORPUS: [Workload; 3] = [
        Workload {
            name: "rle",
            spec_analog: "corpus/.asm",
            description: "run-length compression kernel assembled from programs/rle.asm",
            build: build_rle,
            default_rounds: UNBOUNDED_ROUNDS,
        },
        Workload {
            name: "bytecode",
            spec_analog: "corpus/.asm",
            description: "stack-machine interpreter loop assembled from programs/bytecode.asm",
            build: build_bytecode,
            default_rounds: UNBOUNDED_ROUNDS,
        },
        Workload {
            name: "listwalk",
            spec_analog: "corpus/.asm",
            description: "pointer-chasing list walk assembled from programs/listwalk.asm",
            build: build_listwalk,
            default_rounds: UNBOUNDED_ROUNDS,
        },
    ];
    &CORPUS
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::by_name;

    #[test]
    fn corpus_has_three_programs_resolvable_by_name() {
        assert_eq!(corpus().len(), 3);
        for w in corpus() {
            assert_eq!(by_name(w.name()).unwrap().name(), w.name());
            assert_eq!(w.spec_analog(), "corpus/.asm");
        }
        assert_eq!(
            crate::all().len(),
            10,
            "corpus must not join the paper suite"
        );
    }

    #[test]
    fn rounds_override_reaches_the_const() {
        // ROUNDS controls the outer loop, so 1 round must execute far
        // fewer instructions than 3.
        let w = by_name("rle").unwrap();
        let one = ssim_func::Machine::new(&w.program_with_rounds(1)).count();
        let three = ssim_func::Machine::new(&w.program_with_rounds(3)).count();
        assert!(one > 1_000, "one round still does real work: {one}");
        assert!(three > 2 * one, "rounds scale the run: {one} vs {three}");
    }
}
