//! Shared assembly idioms used by the workload programs.

use ssim_isa::{Assembler, Reg};

/// The software stack pointer register used by recursive workloads.
pub const SP: Reg = Reg::R30;

/// Reserves a `size`-byte software stack and points [`SP`] at its top.
///
/// Call once at program start, before any [`push_link`].
pub fn init_stack(a: &mut Assembler, size: u64) {
    let base = a.alloc(size);
    a.li(SP, (base + size) as i64);
}

/// Function prologue for routines that call or recurse: pushes the link
/// register onto the software stack.
pub fn push_link(a: &mut Assembler) {
    a.addi(SP, SP, -8);
    a.st(SP, 0, Reg::LINK);
}

/// Matching epilogue: pops the link register and returns.
pub fn pop_link_ret(a: &mut Assembler) {
    a.ld(Reg::LINK, SP, 0);
    a.addi(SP, SP, 8);
    a.ret();
}

/// Emits one xorshift64 PRNG step: `x = xorshift(x)`, clobbering `t`.
///
/// `x` must be seeded nonzero.
pub fn xorshift(a: &mut Assembler, x: Reg, t: Reg) {
    a.slli(t, x, 13);
    a.xor(x, x, t);
    a.srli(t, x, 7);
    a.xor(x, x, t);
    a.slli(t, x, 17);
    a.xor(x, x, t);
}

/// Emits the outer benchmark loop header: `rounds` iterations counted in
/// `counter`. Returns the loop-top label; close with [`round_loop_end`].
pub fn round_loop_begin(a: &mut Assembler, counter: Reg, rounds: u64) -> ssim_isa::Label {
    a.li(counter, rounds as i64);
    a.here_label()
}

/// Closes the outer benchmark loop: decrements `counter`, branches back
/// to `top` while positive, then halts.
pub fn round_loop_end(a: &mut Assembler, counter: Reg, top: ssim_isa::Label) {
    a.addi(counter, counter, -1);
    a.bne(counter, Reg::R0, top);
    a.halt();
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssim_func::Machine;

    #[test]
    fn xorshift_produces_varied_values() {
        let mut a = Assembler::new("t");
        a.li(Reg::R1, 0x9E37_79B9);
        for _ in 0..3 {
            xorshift(&mut a, Reg::R1, Reg::R2);
        }
        a.halt();
        let program = a.finish().unwrap();
        let mut m = Machine::new(&program);
        while m.step().is_some() {}
        let v = m.reg(Reg::R1);
        assert_ne!(v, 0);
        assert_ne!(v, 0x9E37_79B9);
    }

    #[test]
    fn stack_push_pop_round_trips() {
        let mut a = Assembler::new("t");
        init_stack(&mut a, 1 << 12);
        let func = a.label();
        a.call(func);
        a.halt();
        a.bind(func).unwrap();
        push_link(&mut a);
        a.li(Reg::R1, 5);
        pop_link_ret(&mut a);
        let program = a.finish().unwrap();
        let mut m = Machine::new(&program);
        while m.step().is_some() {}
        assert!(m.halted());
        assert_eq!(m.reg(Reg::R1), 5);
    }

    #[test]
    fn round_loop_runs_requested_times() {
        let mut a = Assembler::new("t");
        let top = round_loop_begin(&mut a, Reg::R9, 7);
        a.addi(Reg::R1, Reg::R1, 1);
        round_loop_end(&mut a, Reg::R9, top);
        let program = a.finish().unwrap();
        let mut m = Machine::new(&program);
        while m.step().is_some() {}
        assert_eq!(m.reg(Reg::R1), 7);
    }
}
