//! `crafty` archetype: bitboard attack evaluation with transposition-
//! table probes.
//!
//! Mirrors 186.crafty's character: long chains of shift/mask/popcount
//! integer logic over 64-bit "bitboards", frequent small-table lookups,
//! and a hashed transposition table whose probe hit/miss branch is
//! data-dependent.

use crate::util;
use ssim_isa::{Assembler, Program, Reg};

/// Transposition-table entries (two words each).
const TT_ENTRIES: i64 = 1 << 15;

/// Builds the program; `rounds` outer evaluation passes.
pub fn build(rounds: u64) -> Program {
    let mut a = Assembler::new("crafty");
    // 64 precomputed "attack mask" words plus a transposition table.
    let masks = a.alloc_words(64) as i64;
    let tt = a.alloc_words(2 * TT_ENTRIES as u64) as i64;

    let (board, occ, sq) = (Reg::R1, Reg::R2, Reg::R3);
    let (t0, t1, t2, t3) = (Reg::R4, Reg::R5, Reg::R6, Reg::R7);
    let (score, x, bit) = (Reg::R8, Reg::R9, Reg::R10);
    let (hash, probe, hits) = (Reg::R11, Reg::R12, Reg::R13);
    let (pop, mask) = (Reg::R14, Reg::R15);
    let rounds_reg = Reg::R29;

    // ---- init: fill the attack-mask table with mixed constants ----
    a.li(x, 0x8f0c_a3d5_7b21_e964u64 as i64);
    a.li(sq, 0);
    let init_top = a.here_label();
    util::xorshift(&mut a, x, t0);
    a.slli(t1, sq, 3);
    a.li(t2, masks);
    a.add(t2, t2, t1);
    a.st(t2, 0, x);
    a.addi(sq, sq, 1);
    a.slti(t1, sq, 64);
    a.bne(t1, Reg::R0, init_top);

    a.li(board, 0x00ff_0000_0000_ff00u64 as i64);
    a.li(occ, 0xffff_0000_0000_ffffu64 as i64);

    // ---- outer rounds: evaluate all 64 squares ----
    let round_top = util::round_loop_begin(&mut a, rounds_reg, rounds);
    a.li(sq, 0);
    a.li(score, 0);
    let sq_top = a.here_label();
    // bit = 1 << sq
    a.li(t0, 1);
    a.sll(bit, t0, sq);
    // Skip empty squares: branch on data-dependent occupancy.
    let next_sq = a.label();
    a.and(t0, board, bit);
    a.beq(t0, Reg::R0, next_sq);
    // mask = masks[sq] & occ (pseudo attack set)
    a.slli(t1, sq, 3);
    a.li(t2, masks);
    a.add(t2, t2, t1);
    a.ld(mask, t2, 0);
    a.and(mask, mask, occ);
    // popcount(mask) via Kernighan's loop (data-dependent trip count).
    a.li(pop, 0);
    a.mv(t0, mask);
    let pop_top = a.here_label();
    let pop_done = a.label();
    a.beq(t0, Reg::R0, pop_done);
    a.addi(t1, t0, -1);
    a.and(t0, t0, t1);
    a.addi(pop, pop, 1);
    a.jmp(pop_top);
    a.bind(pop_done).unwrap();
    a.add(score, score, pop);
    // Transposition-table probe: hash the (board, sq) pair.
    a.xor(hash, board, mask);
    a.slli(t0, sq, 5);
    a.xor(hash, hash, t0);
    a.mul(hash, hash, hash); // squaring mixes bits further
    a.srli(t0, hash, 17);
    a.xor(hash, hash, t0);
    a.andi(t1, hash, TT_ENTRIES - 1);
    a.slli(t1, t1, 4); // 16 bytes per entry
    a.li(t2, tt);
    a.add(probe, t2, t1);
    a.ld(t3, probe, 0);
    let tt_miss = a.label();
    let tt_done = a.label();
    a.bne(t3, hash, tt_miss);
    a.addi(hits, hits, 1); // hit: reuse stored score
    a.ld(t3, probe, 8);
    a.add(score, score, t3);
    a.jmp(tt_done);
    a.bind(tt_miss).unwrap(); // miss: store the entry
    a.st(probe, 0, hash);
    a.st(probe, 8, pop);
    a.bind(tt_done).unwrap();
    // Evolve the board so successive rounds differ.
    a.bind(next_sq).unwrap();
    a.addi(sq, sq, 1);
    a.slti(t0, sq, 64);
    a.bne(t0, Reg::R0, sq_top);
    // Rotate board and occupancy: the state orbit is periodic, so
    // transposition probes start hitting after one full cycle.
    a.slli(t0, board, 1);
    a.srli(t1, board, 63);
    a.or(board, t0, t1);
    a.slli(t0, occ, 3);
    a.srli(t1, occ, 61);
    a.or(occ, t0, t1);

    util::round_loop_end(&mut a, rounds_reg, round_top);
    a.finish().expect("crafty program assembles")
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssim_func::Machine;

    #[test]
    fn terminates_and_scores() {
        let program = build(50);
        let mut m = Machine::new(&program);
        let mut n = 0u64;
        while m.step().is_some() {
            n += 1;
            assert!(n < 10_000_000, "runaway");
        }
        assert!(m.halted());
        assert!(n > 10_000);
    }

    #[test]
    fn transposition_table_eventually_hits() {
        let program = build(3000);
        let mut m = Machine::new(&program);
        for _ in 0..2_000_000 {
            if m.step().is_none() {
                break;
            }
        }
        assert!(m.reg(Reg::R13) > 0, "expected TT hits after many rounds");
    }
}
