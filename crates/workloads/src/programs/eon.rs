//! `eon` archetype: a sphere-field ray-marching renderer.
//!
//! Mirrors 252.eon's character: floating-point dominated inner loops
//! (multiply/add/sqrt/divide), mostly predictable control flow, and a
//! small data footprint (the framebuffer is write-mostly).

use crate::util;
use ssim_isa::{Assembler, FReg, Program, Reg};

/// Framebuffer edge length (pixels).
const WIDTH: i64 = 64;

/// Builds the program; `rounds` rendered frames.
pub fn build(rounds: u64) -> Program {
    let mut a = Assembler::new("eon");
    let framebuf = a.alloc_words((WIDTH * WIDTH) as u64) as i64;

    let (px, py, iter) = (Reg::R1, Reg::R2, Reg::R3);
    let (t0, t1) = (Reg::R4, Reg::R5);
    let (fb, frame) = (Reg::R6, Reg::R7);
    let rounds_reg = Reg::R29;
    // FP roles.
    let (ox, oy, oz) = (FReg::F1, FReg::F2, FReg::F3); // ray position
    let (dx, dy, dz) = (FReg::F4, FReg::F5, FReg::F6); // ray direction
    let (dist, total) = (FReg::F7, FReg::F8);
    let (f0, f1, f2) = (FReg::F9, FReg::F10, FReg::F11);
    let (half, eps, far, cell) = (FReg::F12, FReg::F13, FReg::F14, FReg::F15);
    let scale = FReg::F16;

    a.li(fb, framebuf);
    a.fconst(half, 0.5);
    a.fconst(eps, 0.05);
    a.fconst(far, 20.0);
    a.fconst(cell, 4.0);
    a.fconst(scale, 1.0 / WIDTH as f64);

    let round_top = util::round_loop_begin(&mut a, rounds_reg, rounds);
    a.li(py, 0);
    let row_top = a.here_label();
    a.li(px, 0);
    let col_top = a.here_label();

    // Ray setup: origin at (px*s, py*s, 0), direction (~0.3, ~0.2, 1)/|d|.
    a.fcvt(dx, px);
    a.fmul(ox, dx, scale);
    a.fcvt(dy, py);
    a.fmul(oy, dy, scale);
    a.fcvt(oz, frame);
    a.fmul(oz, oz, eps); // frames advance the camera slowly
    a.fmul(dx, ox, half);
    a.fmul(dy, oy, half);
    a.fconst(dz, 1.0);
    // Normalise: len = sqrt(dx^2 + dy^2 + 1), d /= len.
    a.fmul(f0, dx, dx);
    a.fmul(f1, dy, dy);
    a.fadd(f0, f0, f1);
    a.fadd(f0, f0, dz);
    a.fsqrt(f0, f0);
    a.fdiv(dx, dx, f0);
    a.fdiv(dy, dy, f0);
    a.fdiv(dz, dz, f0);

    // March: distance to a repeating sphere lattice, step by the
    // estimate, stop when close (hit) or past the far plane (miss).
    a.fsub(total, total, total); // total = 0
    a.li(iter, 0);
    let march_top = a.here_label();
    let march_hit = a.label();
    let march_done = a.label();
    // q = fract-ish: q = o - cell*floor-ish(o/cell) - cell/2, per axis,
    // approximated with integer truncation (positive coordinates only).
    a.fdiv(f0, ox, cell);
    a.fcvti(t0, f0);
    a.fcvt(f0, t0);
    a.fmul(f0, f0, cell);
    a.fsub(f0, ox, f0); // f0 = ox mod cell
    a.fmul(f1, oy, half);
    a.fmul(f2, oz, half);
    // dist = sqrt(f0^2 + f1^2 + f2^2) - 1.0 (sphere radius 1)
    a.fmul(f0, f0, f0);
    a.fmul(f1, f1, f1);
    a.fadd(f0, f0, f1);
    a.fmul(f2, f2, f2);
    a.fadd(f0, f0, f2);
    a.fsqrt(dist, f0);
    a.fconst(f1, 1.0);
    a.fsub(dist, dist, f1);
    a.fblt(dist, eps, march_hit); // close enough: hit
                                  // Advance the ray: o += d * dist.
    a.fmul(f0, dx, dist);
    a.fadd(ox, ox, f0);
    a.fmul(f0, dy, dist);
    a.fadd(oy, oy, f0);
    a.fmul(f0, dz, dist);
    a.fadd(oz, oz, f0);
    a.fadd(total, total, dist);
    a.fbge(total, far, march_done); // escaped
    a.addi(iter, iter, 1);
    a.slti(t0, iter, 48);
    a.bne(t0, Reg::R0, march_top);
    a.jmp(march_done);
    a.bind(march_hit).unwrap();
    a.addi(iter, iter, 100); // shade hits differently
    a.bind(march_done).unwrap();

    // Store the iteration count as the pixel value.
    a.li(t0, WIDTH);
    a.mul(t0, py, t0);
    a.add(t0, t0, px);
    a.slli(t0, t0, 3);
    a.add(t1, fb, t0);
    a.st(t1, 0, iter);

    a.addi(px, px, 1);
    a.li(t0, WIDTH);
    a.blt(px, t0, col_top);
    a.addi(py, py, 1);
    a.li(t0, WIDTH);
    a.blt(py, t0, row_top);
    a.addi(frame, frame, 1);

    util::round_loop_end(&mut a, rounds_reg, round_top);
    a.finish().expect("eon program assembles")
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssim_func::Machine;

    #[test]
    fn renders_a_frame() {
        let program = build(1);
        let mut m = Machine::new(&program);
        let mut n = 0u64;
        while m.step().is_some() {
            n += 1;
            assert!(n < 30_000_000, "runaway");
        }
        assert!(m.halted());
        assert!(n > 100_000, "a frame is substantial work, got {n}");
    }
}
