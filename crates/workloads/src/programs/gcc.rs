//! `gcc` archetype: a token-driven state machine with hundreds of
//! distinct handler blocks.
//!
//! Mirrors 176.gcc's character: an unusually large *static* code
//! footprint (the paper's Table 3 shows gcc's SFG is 20–60× bigger than
//! the other benchmarks'), irregular control flow spread over many basic
//! blocks, and noticeable instruction-cache and BTB pressure. The
//! builder procedurally emits `HANDLERS` structurally distinct handler
//! blocks selected through a two-stage dispatch (jump table + nested
//! compare chains).

use crate::util;
use ssim_isa::{Assembler, Label, Program, Reg};

/// Number of distinct handler blocks to generate.
const HANDLERS: usize = 384;
/// Token ring buffer length (words).
const TOKENS: i64 = 4096;

/// Builds the program; `rounds` passes over the token stream.
pub fn build(rounds: u64) -> Program {
    let mut a = Assembler::new("gcc");
    let tokens = a.alloc_words(TOKENS as u64) as i64;
    let symtab = a.alloc_words(1 << 12) as i64;

    let (i, tok, acc) = (Reg::R1, Reg::R2, Reg::R3);
    let (t0, t1, t2) = (Reg::R4, Reg::R5, Reg::R6);
    let (x, state) = (Reg::R7, Reg::R8);
    let (tokbase, symbase) = (Reg::R9, Reg::R10);
    let rounds_reg = Reg::R29;

    a.li(tokbase, tokens);
    a.li(symbase, symtab);

    // ---- init: token stream with a skewed distribution ----
    a.li(x, 0x51ed_270b_9143_8ac7u64 as i64);
    a.li(i, 0);
    let init_top = a.here_label();
    util::xorshift(&mut a, x, t0);
    // Token streams from real front-ends are bursty: with probability
    // 3/4 the previous token repeats (same construct continuing),
    // otherwise a fresh skewed draw — min of two draws biases toward
    // small token values. Draws are shifted right first so the signed
    // remainder always sees a non-negative operand.
    let fresh = a.label();
    let chosen = a.label();
    a.andi(t0, x, 3);
    a.beq(t0, Reg::R0, fresh);
    a.mv(t2, tok); // repeat the previous token
    a.jmp(chosen);
    a.bind(fresh).unwrap();
    a.li(t1, HANDLERS as i64);
    a.srli(t2, x, 1);
    a.rem(t2, t2, t1);
    a.srli(t0, x, 23);
    a.rem(t0, t0, t1);
    let keep = a.label();
    a.blt(t2, t0, keep);
    a.mv(t2, t0);
    a.bind(keep).unwrap();
    a.bind(chosen).unwrap();
    a.mv(tok, t2);
    a.slli(t0, i, 3);
    a.add(t0, tokbase, t0);
    a.st(t0, 0, t2);
    a.addi(i, i, 1);
    a.li(t0, TOKENS);
    a.blt(i, t0, init_top);

    // ---- handler labels and dispatch table ----
    // First-stage dispatch: jump table over tok / 8 (HANDLERS/8 groups);
    // second stage: compare chain over tok % 8 inside each group.
    let handler_labels: Vec<Label> = (0..HANDLERS).map(|_| a.label()).collect();
    let group_labels: Vec<Label> = (0..HANDLERS / 8).map(|_| a.label()).collect();
    let table = a.jump_table(&group_labels) as i64;

    let round_top = util::round_loop_begin(&mut a, rounds_reg, rounds);
    a.li(i, 0);
    a.li(state, 0);
    let scan_top = a.here_label();
    let after_handler = a.label();
    // Load the next token.
    a.slli(t0, i, 3);
    a.add(t0, tokbase, t0);
    a.ld(tok, t0, 0);
    // Stage 1: indirect jump to the token's group.
    a.srli(t1, tok, 3);
    a.slli(t1, t1, 3);
    a.li(t2, table);
    a.add(t2, t2, t1);
    a.ld(t1, t2, 0);
    a.jr(t1);

    // Stage 2 + handlers, generated per group.
    for (g, group) in group_labels.iter().enumerate() {
        a.bind(*group).unwrap();
        a.andi(t0, tok, 7);
        // Compare chain: 8 members per group.
        for member in 0..8usize {
            let h = handler_labels[g * 8 + member];
            if member < 7 {
                a.li(t1, member as i64);
                a.beq(t0, t1, h);
            } else {
                a.jmp(h); // last member is the fall-through
            }
        }
    }

    // Handler bodies: structurally varied so each is a distinct set of
    // basic blocks with its own instruction mix.
    for (h, label) in handler_labels.iter().enumerate() {
        a.bind(*label).unwrap();
        let variant = h % 6;
        let salt = (h as i64).wrapping_mul(0x9e37) & 0xffff;
        match variant {
            0 => {
                // Symbol-table read/modify/write.
                a.xori(t0, tok, salt);
                a.andi(t0, t0, (1 << 12) - 1);
                a.slli(t0, t0, 3);
                a.add(t0, symbase, t0);
                a.ld(t1, t0, 0);
                a.addi(t1, t1, 1);
                a.st(t0, 0, t1);
                a.add(acc, acc, t1);
            }
            1 => {
                // Pure ALU chain.
                a.slli(t0, tok, 2);
                a.xori(t0, t0, salt);
                a.add(acc, acc, t0);
                a.srli(t1, acc, 7);
                a.xor(acc, acc, t1);
            }
            2 => {
                // Conditional state update (extra branch).
                let skip = a.label();
                a.andi(t0, acc, 1);
                a.beq(t0, Reg::R0, skip);
                a.addi(state, state, 1);
                a.bind(skip).unwrap();
                a.add(acc, acc, state);
            }
            3 => {
                // Multiply/divide heavy.
                a.ori(t0, tok, 1);
                a.mul(t1, t0, t0);
                a.addi(t2, tok, 3);
                a.div(t1, t1, t2);
                a.add(acc, acc, t1);
            }
            4 => {
                // Double symbol-table probe.
                a.addi(t0, tok, salt);
                a.andi(t0, t0, (1 << 12) - 1);
                a.slli(t0, t0, 3);
                a.add(t0, symbase, t0);
                a.ld(t1, t0, 0);
                a.xori(t2, tok, 0x55);
                a.andi(t2, t2, (1 << 12) - 1);
                a.slli(t2, t2, 3);
                a.add(t2, symbase, t2);
                a.ld(t2, t2, 0);
                a.add(acc, acc, t1);
                a.add(acc, acc, t2);
            }
            _ => {
                // State-machine transition with a short loop.
                a.andi(t0, tok, 3);
                a.addi(t0, t0, 1);
                let spin = a.here_label();
                a.add(acc, acc, state);
                a.addi(t0, t0, -1);
                a.bne(t0, Reg::R0, spin);
                a.xori(state, state, salt & 7);
            }
        }
        a.jmp(after_handler);
    }

    a.bind(after_handler).unwrap();
    a.addi(i, i, 1);
    a.li(t0, TOKENS);
    a.blt(i, t0, scan_top);

    util::round_loop_end(&mut a, rounds_reg, round_top);
    a.finish().expect("gcc program assembles")
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssim_func::Machine;

    #[test]
    fn has_large_static_footprint() {
        let program = build(1);
        assert!(
            program.len() > 3_000,
            "gcc archetype needs a big code image, got {}",
            program.len()
        );
    }

    #[test]
    fn terminates_and_touches_many_pcs() {
        let program = build(1);
        let mut m = Machine::new(&program);
        let mut pcs = std::collections::HashSet::new();
        let mut n = 0u64;
        while let Some(e) = m.step() {
            pcs.insert(e.pc);
            n += 1;
            assert!(n < 20_000_000, "runaway");
        }
        assert!(m.halted());
        assert!(
            pcs.len() > 1_500,
            "expected broad code coverage, got {} PCs",
            pcs.len()
        );
    }
}
