//! `gzip` archetype: LZ77 longest-match search with hash chains.
//!
//! Mirrors 164.gzip's character: a hash of the next 3 bytes indexes a
//! head table; candidate positions are walked through a chain table
//! while byte-by-byte string comparison loops run with data-dependent
//! trip counts.

use crate::util;
use ssim_isa::{Assembler, Program, Reg};

/// Input window size in bytes (must be a power of two).
const WINDOW: i64 = 64 * 1024;
/// Hash-head table entries.
const HEADS: i64 = 1 << 13;
/// Maximum chain walk length per position.
const MAX_CHAIN: i64 = 8;
/// Maximum match length.
const MAX_MATCH: i64 = 64;

/// Builds the program; `rounds` compression passes over the window.
pub fn build(rounds: u64) -> Program {
    let mut a = Assembler::new("gzip");
    let window = a.alloc(WINDOW as u64) as i64;
    let heads = a.alloc_words(HEADS as u64) as i64;
    let chains = a.alloc_words(WINDOW as u64) as i64; // prev-position per offset

    let (pos, hash, cand) = (Reg::R1, Reg::R2, Reg::R3);
    let (t0, t1, t2, t3) = (Reg::R4, Reg::R5, Reg::R6, Reg::R7);
    let (x, best, len) = (Reg::R8, Reg::R9, Reg::R10);
    let (win, hd, ch) = (Reg::R11, Reg::R12, Reg::R13);
    let (depth, emitted, limit) = (Reg::R14, Reg::R15, Reg::R16);
    let rounds_reg = Reg::R29;

    a.li(win, window);
    a.li(hd, heads);
    a.li(ch, chains);

    // ---- init: compressible text in the window ----
    // With probability 3/4 the byte copies the one `LAG` positions back
    // (long literal repeats, like natural text); otherwise a fresh
    // 16-symbol draw. This yields the long matches and predictable
    // compare loops real gzip inputs exhibit.
    const LAG: i64 = 24;
    a.li(x, 0x243f_6a88_85a3_08d3u64 as i64);
    a.li(t3, 0);
    let init_top = a.here_label();
    util::xorshift(&mut a, x, t0);
    a.andi(t1, x, 15); // fresh symbol
    let have_byte = a.label();
    a.andi(t0, x, 3);
    a.beq(t0, Reg::R0, have_byte); // 1/4: keep the fresh draw
    a.slti(t0, t3, LAG);
    a.bne(t0, Reg::R0, have_byte); // too early to copy
    a.add(t0, win, t3);
    a.lb(t1, t0, -LAG); // copy from LAG bytes back
    a.bind(have_byte).unwrap();
    a.add(t0, win, t3);
    a.sb(t0, 0, t1);
    a.addi(t3, t3, 1);
    a.li(t0, WINDOW);
    a.blt(t3, t0, init_top);

    // ---- outer rounds ----
    let round_top = util::round_loop_begin(&mut a, rounds_reg, rounds);
    // Clear hash heads (sentinel: 0 = empty; position 0 is never a
    // candidate, an acceptable approximation).
    a.li(t0, 0);
    let clear_top = a.here_label();
    a.slli(t1, t0, 3);
    a.add(t1, hd, t1);
    a.st(t1, 0, Reg::R0);
    a.addi(t0, t0, 1);
    a.li(t1, HEADS);
    a.blt(t0, t1, clear_top);

    a.li(pos, 0);
    a.li(emitted, 0);
    a.li(limit, WINDOW - MAX_MATCH - 8);
    let scan_top = a.here_label();
    // hash = ((w[pos] << 10) ^ (w[pos+1] << 5) ^ w[pos+2]) & (HEADS-1)
    a.add(t0, win, pos);
    a.lb(t1, t0, 0);
    a.slli(hash, t1, 10);
    a.lb(t1, t0, 1);
    a.slli(t1, t1, 5);
    a.xor(hash, hash, t1);
    a.lb(t1, t0, 2);
    a.xor(hash, hash, t1);
    a.andi(hash, hash, HEADS - 1);
    // cand = heads[hash]; heads[hash] = pos; chains[pos] = cand.
    a.slli(t0, hash, 3);
    a.add(t0, hd, t0);
    a.ld(cand, t0, 0);
    a.st(t0, 0, pos);
    a.slli(t1, pos, 3);
    a.add(t1, ch, t1);
    a.st(t1, 0, cand);

    // Walk the chain looking for the longest match.
    a.li(best, 0);
    a.li(depth, 0);
    let chain_top = a.here_label();
    let chain_done = a.label();
    a.beq(cand, Reg::R0, chain_done); // empty slot
    a.bge(cand, pos, chain_done); // stale entry from a previous round
    a.li(t0, MAX_CHAIN);
    a.bge(depth, t0, chain_done);
    // Compare window[cand..] with window[pos..].
    a.li(len, 0);
    let cmp_top = a.here_label();
    let cmp_done = a.label();
    a.add(t0, win, cand);
    a.add(t0, t0, len);
    a.lb(t1, t0, 0);
    a.add(t0, win, pos);
    a.add(t0, t0, len);
    a.lb(t2, t0, 0);
    a.bne(t1, t2, cmp_done);
    a.addi(len, len, 1);
    a.li(t0, MAX_MATCH);
    a.blt(len, t0, cmp_top);
    a.bind(cmp_done).unwrap();
    let not_better = a.label();
    a.bge(best, len, not_better);
    a.mv(best, len);
    a.bind(not_better).unwrap();
    // Follow the chain.
    a.slli(t0, cand, 3);
    a.add(t0, ch, t0);
    a.ld(cand, t0, 0);
    a.addi(depth, depth, 1);
    a.jmp(chain_top);
    a.bind(chain_done).unwrap();

    // Emit: long matches skip ahead, otherwise a literal.
    let literal = a.label();
    let advanced = a.label();
    a.slti(t0, best, 3);
    a.bne(t0, Reg::R0, literal);
    a.add(pos, pos, best); // match: skip best bytes
    a.addi(emitted, emitted, 1);
    a.jmp(advanced);
    a.bind(literal).unwrap();
    a.addi(pos, pos, 1);
    a.addi(emitted, emitted, 1);
    a.bind(advanced).unwrap();
    a.blt(pos, limit, scan_top);

    util::round_loop_end(&mut a, rounds_reg, round_top);
    a.finish().expect("gzip program assembles")
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssim_func::Machine;

    #[test]
    fn compresses_the_window() {
        let program = build(1);
        let mut m = Machine::new(&program);
        let mut n = 0u64;
        while m.step().is_some() {
            n += 1;
            assert!(n < 120_000_000, "runaway");
        }
        assert!(m.halted());
        let emitted = m.reg(Reg::R15);
        assert!(emitted > 0);
        // Matches must actually occur: emitted symbols < window positions.
        assert!(
            (emitted as i64) < WINDOW - MAX_MATCH - 8,
            "no compression happened: emitted = {emitted}"
        );
    }
}
