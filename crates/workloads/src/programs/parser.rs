//! `parser` archetype: a recursive-descent expression parser.
//!
//! Mirrors 197.parser's character: deep call/return activity, recursion
//! through a software stack, and branch behaviour driven by an
//! essentially random token stream — the hardest benchmark for the
//! paper's IPC prediction (Figure 6 shows parser's largest error) and
//! one of the most mispredict-heavy.
//!
//! The token stream is a syntactically valid random expression sequence
//! generated at build time; the assembly parses it with the grammar
//!
//! ```text
//! expr   := term (('+' | '-') term)*
//! term   := factor (('*' | '/') factor)*
//! factor := NUM | '(' expr ')'
//! ```

use crate::util;
use ssim_isa::{Assembler, Program, Reg};

/// Token kinds (low 3 bits of each token word).
const NUM: u64 = 0;
const PLUS: u64 = 1;
const MINUS: u64 = 2;
const MUL: u64 = 3;
const DIV: u64 = 4;
const LPAREN: u64 = 5;
const RPAREN: u64 = 6;
const SEP: u64 = 7;

/// Approximate token stream length.
const TOKENS: usize = 24 * 1024;
/// Maximum parenthesis nesting depth in generated expressions.
const MAX_DEPTH: u32 = 10;

/// Generates a valid random token stream: expressions separated by SEP.
fn generate_tokens() -> Vec<u64> {
    let mut rng = 0x6a09_e667_f3bc_c909u64;
    let mut next = move || {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        rng
    };
    let mut out = Vec::with_capacity(TOKENS + 64);

    fn factor(out: &mut Vec<u64>, next: &mut impl FnMut() -> u64, depth: u32) {
        if depth < MAX_DEPTH && next().is_multiple_of(4) {
            out.push(LPAREN);
            expr(out, next, depth + 1);
            out.push(RPAREN);
        } else {
            let value = next() % 1000;
            out.push(NUM | (value << 3));
        }
    }
    fn term(out: &mut Vec<u64>, next: &mut impl FnMut() -> u64, depth: u32) {
        factor(out, next, depth);
        while next() % 10 < 3 {
            out.push(if next().is_multiple_of(3) { DIV } else { MUL });
            factor(out, next, depth);
        }
    }
    fn expr(out: &mut Vec<u64>, next: &mut impl FnMut() -> u64, depth: u32) {
        term(out, next, depth);
        while next() % 10 < 4 {
            out.push(if next().is_multiple_of(2) {
                PLUS
            } else {
                MINUS
            });
            term(out, next, depth);
        }
    }

    while out.len() < TOKENS {
        expr(&mut out, &mut next, 0);
        out.push(SEP);
    }
    out
}

/// Builds the program; `rounds` full parses of the token stream.
pub fn build(rounds: u64) -> Program {
    let stream = generate_tokens();
    let ntokens = stream.len() as i64;

    let mut a = Assembler::new("parser");
    util::init_stack(&mut a, 128 << 10);
    let tokens = a.alloc_words(stream.len() as u64) as i64;
    a.words(tokens as u64, &stream)
        .expect("token stream fits in memory");

    // Register roles (preserved across the recursive routines by
    // construction: each routine only clobbers temporaries and rv).
    let (ci, cur, rv) = (Reg::R17, Reg::R18, Reg::R20);
    let (t0, t1) = (Reg::R4, Reg::R5);
    let (tokbase, ntok, sum) = (Reg::R21, Reg::R22, Reg::R23);
    let rounds_reg = Reg::R29;
    let sp = util::SP;

    a.li(tokbase, tokens);
    a.li(ntok, ntokens);

    let advance = a.label();
    let parse_expr = a.label();
    let parse_term = a.label();
    let parse_factor = a.label();

    // ---- main ----
    let round_top = util::round_loop_begin(&mut a, rounds_reg, rounds);
    a.li(ci, 0);
    a.call(advance); // prime `cur`
    let exprs_top = a.here_label();
    a.call(parse_expr);
    a.add(sum, sum, rv);
    // After an expression, `cur` is SEP; if tokens remain, advance past
    // it and parse the next expression.
    let round_done = a.label();
    a.bge(ci, ntok, round_done);
    a.call(advance);
    a.jmp(exprs_top);
    a.bind(round_done).unwrap();
    util::round_loop_end(&mut a, rounds_reg, round_top);

    // ---- advance: cur = tokens[ci]; ci += 1 (leaf) ----
    a.bind(advance).unwrap();
    a.slli(t0, ci, 3);
    a.add(t0, tokbase, t0);
    a.ld(cur, t0, 0);
    a.addi(ci, ci, 1);
    a.ret();

    // ---- parse_expr ----
    a.bind(parse_expr).unwrap();
    util::push_link(&mut a);
    a.call(parse_term);
    let expr_loop = a.here_label();
    let expr_done = a.label();
    let expr_minus = a.label();
    let expr_combine_add = a.label();
    a.andi(t0, cur, 7);
    a.li(t1, PLUS as i64);
    a.beq(t0, t1, expr_combine_add);
    a.li(t1, MINUS as i64);
    a.beq(t0, t1, expr_minus);
    a.jmp(expr_done);
    a.bind(expr_combine_add).unwrap();
    a.addi(sp, sp, -8);
    a.st(sp, 0, rv);
    a.call(advance);
    a.call(parse_term);
    a.ld(t0, sp, 0);
    a.addi(sp, sp, 8);
    a.add(rv, t0, rv);
    a.jmp(expr_loop);
    a.bind(expr_minus).unwrap();
    a.addi(sp, sp, -8);
    a.st(sp, 0, rv);
    a.call(advance);
    a.call(parse_term);
    a.ld(t0, sp, 0);
    a.addi(sp, sp, 8);
    a.sub(rv, t0, rv);
    a.jmp(expr_loop);
    a.bind(expr_done).unwrap();
    util::pop_link_ret(&mut a);

    // ---- parse_term ----
    a.bind(parse_term).unwrap();
    util::push_link(&mut a);
    a.call(parse_factor);
    let term_loop = a.here_label();
    let term_done = a.label();
    let term_div = a.label();
    let term_combine_mul = a.label();
    a.andi(t0, cur, 7);
    a.li(t1, MUL as i64);
    a.beq(t0, t1, term_combine_mul);
    a.li(t1, DIV as i64);
    a.beq(t0, t1, term_div);
    a.jmp(term_done);
    a.bind(term_combine_mul).unwrap();
    a.addi(sp, sp, -8);
    a.st(sp, 0, rv);
    a.call(advance);
    a.call(parse_factor);
    a.ld(t0, sp, 0);
    a.addi(sp, sp, 8);
    a.mul(rv, t0, rv);
    a.jmp(term_loop);
    a.bind(term_div).unwrap();
    a.addi(sp, sp, -8);
    a.st(sp, 0, rv);
    a.call(advance);
    a.call(parse_factor);
    a.ld(t0, sp, 0);
    a.addi(sp, sp, 8);
    a.div(rv, t0, rv);
    a.jmp(term_loop);
    a.bind(term_done).unwrap();
    util::pop_link_ret(&mut a);

    // ---- parse_factor ----
    a.bind(parse_factor).unwrap();
    util::push_link(&mut a);
    let factor_num = a.label();
    let factor_done = a.label();
    a.andi(t0, cur, 7);
    a.li(t1, LPAREN as i64);
    a.bne(t0, t1, factor_num);
    a.call(advance); // consume '('
    a.call(parse_expr);
    a.call(advance); // consume ')'
    a.jmp(factor_done);
    a.bind(factor_num).unwrap();
    a.srli(rv, cur, 3);
    a.call(advance);
    a.bind(factor_done).unwrap();
    util::pop_link_ret(&mut a);

    a.finish().expect("parser program assembles")
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssim_func::Machine;

    #[test]
    fn generated_stream_is_balanced() {
        let tokens = generate_tokens();
        let mut depth: i64 = 0;
        for t in &tokens {
            match t & 7 {
                LPAREN => depth += 1,
                RPAREN => {
                    depth -= 1;
                    assert!(depth >= 0);
                }
                _ => {}
            }
        }
        assert_eq!(depth, 0, "parentheses must balance");
        assert_eq!(tokens.last().copied().map(|t| t & 7), Some(SEP));
    }

    #[test]
    fn parses_the_stream_repeatedly() {
        let program = build(2);
        let mut m = Machine::new(&program);
        let mut n = 0u64;
        while m.step().is_some() {
            n += 1;
            assert!(n < 40_000_000, "runaway");
        }
        assert!(m.halted());
        assert!(n > 200_000, "parsing must be substantial, got {n}");
    }
}
