//! `perlbmk` archetype: a stack-machine bytecode interpreter.
//!
//! Mirrors 253.perlbmk's character: an interpreter dispatch loop whose
//! **indirect branch** (jump-table dispatch) is the dominant control
//! hazard, plus stack and variable traffic in memory. The interpreted
//! bytecode is generated at build time with stack-depth bookkeeping so
//! the VM never underflows.

use crate::util;
use ssim_isa::{Assembler, Label, Program, Reg};

// Bytecode opcodes (low byte of each code word; the argument sits in the
// higher bits).
const OP_PUSHC: u64 = 0;
const OP_LOAD: u64 = 1;
const OP_STORE: u64 = 2;
const OP_ADD: u64 = 3;
const OP_SUB: u64 = 4;
const OP_MUL: u64 = 5;
const OP_XOR: u64 = 6;
const OP_AND: u64 = 7;
const OP_SHL1: u64 = 8;
const OP_DUP: u64 = 9;
const OP_DROP: u64 = 10;
const OP_SWAP: u64 = 11;
const OP_INC: u64 = 12;
const OP_JNZ: u64 = 13; // pop; skip next op if odd
const OP_JMP: u64 = 14; // skip next op
const OP_END: u64 = 15;
const NUM_OPS: usize = 16;

/// Bytecode program length in ops (approximate).
const CODE_LEN: usize = 12 * 1024;
/// Interpreter variable count.
const VARS: u64 = 64;

/// Generates a valid bytecode program (stack depth never negative,
/// every skippable slot after JNZ/JMP is the depth-neutral INC).
fn generate_bytecode() -> Vec<u64> {
    let mut rng = 0xb7e1_5162_8aed_2a6bu64;
    let mut next = move || {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        rng
    };
    let mut code = Vec::with_capacity(CODE_LEN + 40);
    let mut depth: u32 = 0;
    while code.len() < CODE_LEN {
        let r = next();
        let arg = next();
        let var = arg % VARS;
        let choice = r % 100;
        match choice {
            // Pushes.
            0..=21 if depth < 14 => {
                code.push(OP_PUSHC | ((arg % 4096) << 8));
                depth += 1;
            }
            22..=39 if depth < 14 => {
                code.push(OP_LOAD | (var << 8));
                depth += 1;
            }
            // Binary arithmetic.
            40..=67 if depth >= 2 => {
                let op = match choice % 5 {
                    0 => OP_ADD,
                    1 => OP_SUB,
                    2 => OP_MUL,
                    3 => OP_XOR,
                    _ => OP_AND,
                };
                code.push(op);
                depth -= 1;
            }
            // Unary / stack shuffles.
            68..=73 if depth >= 1 => code.push(OP_SHL1),
            74..=78 if (1..14).contains(&depth) => {
                code.push(OP_DUP);
                depth += 1;
            }
            79..=83 if depth >= 2 => code.push(OP_SWAP),
            84..=88 if depth >= 1 => {
                code.push(OP_STORE | (var << 8));
                depth -= 1;
            }
            89..=92 if depth >= 1 => {
                code.push(OP_DROP);
                depth -= 1;
            }
            // Control: conditional/unconditional skip of one INC.
            93..=96 if depth >= 1 => {
                code.push(OP_JNZ);
                code.push(OP_INC | (var << 8));
                depth -= 1;
            }
            97 => {
                code.push(OP_JMP);
                code.push(OP_INC | (var << 8));
            }
            _ => code.push(OP_INC | (var << 8)),
        }
    }
    // Drain the stack and terminate.
    while depth > 0 {
        code.push(OP_DROP);
        depth -= 1;
    }
    code.push(OP_END);
    code
}

/// Builds the program; `rounds` full interpretations of the bytecode.
pub fn build(rounds: u64) -> Program {
    let bytecode = generate_bytecode();

    let mut a = Assembler::new("perlbmk");
    let code = a.alloc_words(bytecode.len() as u64) as i64;
    a.words(code as u64, &bytecode)
        .expect("bytecode fits in memory");
    let vars = a.alloc_words(VARS) as i64;
    let vm_stack = a.alloc_words(64) as i64;

    let (ip, w, op, arg) = (Reg::R1, Reg::R2, Reg::R3, Reg::R4);
    let (t0, t1, t2) = (Reg::R5, Reg::R6, Reg::R7);
    let (codebase, varbase, vsp) = (Reg::R8, Reg::R9, Reg::R28);
    let rounds_reg = Reg::R29;

    a.li(codebase, code);
    a.li(varbase, vars);

    let handlers: Vec<Label> = (0..NUM_OPS).map(|_| a.label()).collect();
    let table = a.jump_table(&handlers) as i64;

    let round_top = util::round_loop_begin(&mut a, rounds_reg, rounds);
    a.li(ip, 0);
    a.li(vsp, vm_stack + 64 * 8); // empty descending stack
    let round_end = a.label();

    // ---- dispatch loop ----
    let dispatch = a.here_label();
    a.slli(t0, ip, 3);
    a.add(t0, codebase, t0);
    a.ld(w, t0, 0);
    a.addi(ip, ip, 1);
    a.andi(op, w, 0xff);
    a.srli(arg, w, 8);
    a.slli(t1, op, 3);
    a.li(t2, table);
    a.add(t1, t2, t1);
    a.ld(t1, t1, 0);
    a.jr(t1); // THE interpreter indirect branch

    // ---- handlers ----
    // PUSHC: *--vsp = arg
    a.bind(handlers[OP_PUSHC as usize]).unwrap();
    a.addi(vsp, vsp, -8);
    a.st(vsp, 0, arg);
    a.jmp(dispatch);
    // LOAD: *--vsp = vars[arg]
    a.bind(handlers[OP_LOAD as usize]).unwrap();
    a.slli(t0, arg, 3);
    a.add(t0, varbase, t0);
    a.ld(t1, t0, 0);
    a.addi(vsp, vsp, -8);
    a.st(vsp, 0, t1);
    a.jmp(dispatch);
    // STORE: vars[arg] = *vsp++
    a.bind(handlers[OP_STORE as usize]).unwrap();
    a.ld(t1, vsp, 0);
    a.addi(vsp, vsp, 8);
    a.slli(t0, arg, 3);
    a.add(t0, varbase, t0);
    a.st(t0, 0, t1);
    a.jmp(dispatch);
    // Binary ops: b = pop, a = top, top = a OP b.
    for (opcode, f) in [
        (OP_ADD, 0u8),
        (OP_SUB, 1),
        (OP_MUL, 2),
        (OP_XOR, 3),
        (OP_AND, 4),
    ] {
        a.bind(handlers[opcode as usize]).unwrap();
        a.ld(t0, vsp, 0);
        a.ld(t1, vsp, 8);
        a.addi(vsp, vsp, 8);
        match f {
            0 => a.add(t2, t1, t0),
            1 => a.sub(t2, t1, t0),
            2 => a.mul(t2, t1, t0),
            3 => a.xor(t2, t1, t0),
            _ => a.and(t2, t1, t0),
        }
        a.st(vsp, 0, t2);
        a.jmp(dispatch);
    }
    // SHL1: top <<= 1
    a.bind(handlers[OP_SHL1 as usize]).unwrap();
    a.ld(t0, vsp, 0);
    a.slli(t0, t0, 1);
    a.st(vsp, 0, t0);
    a.jmp(dispatch);
    // DUP
    a.bind(handlers[OP_DUP as usize]).unwrap();
    a.ld(t0, vsp, 0);
    a.addi(vsp, vsp, -8);
    a.st(vsp, 0, t0);
    a.jmp(dispatch);
    // DROP
    a.bind(handlers[OP_DROP as usize]).unwrap();
    a.addi(vsp, vsp, 8);
    a.jmp(dispatch);
    // SWAP
    a.bind(handlers[OP_SWAP as usize]).unwrap();
    a.ld(t0, vsp, 0);
    a.ld(t1, vsp, 8);
    a.st(vsp, 0, t1);
    a.st(vsp, 8, t0);
    a.jmp(dispatch);
    // INC: vars[arg] += 1
    a.bind(handlers[OP_INC as usize]).unwrap();
    a.slli(t0, arg, 3);
    a.add(t0, varbase, t0);
    a.ld(t1, t0, 0);
    a.addi(t1, t1, 1);
    a.st(t0, 0, t1);
    a.jmp(dispatch);
    // JNZ: pop; skip next op if odd (data-dependent).
    a.bind(handlers[OP_JNZ as usize]).unwrap();
    a.ld(t0, vsp, 0);
    a.addi(vsp, vsp, 8);
    a.andi(t0, t0, 1);
    let no_skip = a.label();
    a.beq(t0, Reg::R0, no_skip);
    a.addi(ip, ip, 1);
    a.bind(no_skip).unwrap();
    a.jmp(dispatch);
    // JMP: skip next op unconditionally.
    a.bind(handlers[OP_JMP as usize]).unwrap();
    a.addi(ip, ip, 1);
    a.jmp(dispatch);
    // END: round finished.
    a.bind(handlers[OP_END as usize]).unwrap();
    a.jmp(round_end);

    a.bind(round_end).unwrap();
    util::round_loop_end(&mut a, rounds_reg, round_top);
    a.finish().expect("perlbmk program assembles")
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssim_func::Machine;
    use ssim_isa::InstrClass;

    #[test]
    fn bytecode_is_stack_safe() {
        let code = generate_bytecode();
        let mut depth: i64 = 0;
        let mut i = 0;
        while i < code.len() {
            let op = code[i] & 0xff;
            match op {
                OP_PUSHC | OP_LOAD | OP_DUP => depth += 1,
                OP_STORE | OP_DROP | OP_JNZ => depth -= 1,
                op if (OP_ADD..=OP_AND).contains(&op) => depth -= 1,
                OP_END => break,
                _ => {}
            }
            assert!(depth >= 0, "stack underflow at op {i}");
            assert!(depth <= 16, "stack overflow at op {i}");
            i += 1;
        }
        assert_eq!(code[code.len() - 1] & 0xff, OP_END);
    }

    #[test]
    fn interpreter_is_indirect_branch_dominated() {
        let program = build(1);
        let mut indirect = 0u64;
        let mut total = 0u64;
        for e in Machine::new(&program).take(500_000) {
            total += 1;
            if e.class() == InstrClass::IndirectBranch {
                indirect += 1;
            }
        }
        assert!(total > 100_000);
        let frac = indirect as f64 / total as f64;
        assert!(
            frac > 0.05,
            "dispatch should dominate, indirect frac = {frac}"
        );
    }
}
