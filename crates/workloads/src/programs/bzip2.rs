//! `bzip2` archetype: run-length encoding followed by move-to-front
//! coding over a compressible byte buffer.
//!
//! Mirrors 256.bzip2's character: tight integer byte loops whose trip
//! counts depend on the data (run lengths), sequential memory streaming
//! with good spatial locality, and a small hot table (the MTF list).

use crate::util;
use ssim_isa::{Assembler, Program, Reg};

/// Input buffer size in bytes.
const SIZE: i64 = 192 * 1024;

/// Builds the program; `rounds` outer compression passes.
pub fn build(rounds: u64) -> Program {
    let mut a = Assembler::new("bzip2");
    let input = a.alloc(SIZE as u64) as i64;
    let output = a.alloc(2 * SIZE as u64) as i64;
    let mtf = a.alloc(16) as i64; // 16-symbol move-to-front list (bytes)

    // Register roles.
    let (i, c, run, k) = (Reg::R1, Reg::R2, Reg::R3, Reg::R4);
    let (t0, t1, t2) = (Reg::R5, Reg::R6, Reg::R7);
    let (x, cur, size) = (Reg::R8, Reg::R9, Reg::R10);
    let (inp, out, sum) = (Reg::R11, Reg::R12, Reg::R13);
    let (j, idx, b) = (Reg::R14, Reg::R15, Reg::R16);
    let rounds_reg = Reg::R29;

    a.li(size, SIZE);
    a.li(inp, input);
    a.li(out, output);

    // ---- init: fill the input with runs of 4-bit symbols ----
    a.li(x, 0x1234_5678_9abc_def1u64 as i64);
    a.li(i, 0);
    a.li(cur, 0);
    let init_top = a.here_label();
    util::xorshift(&mut a, x, t0);
    a.andi(t1, x, 7);
    let keep = a.label();
    a.bne(t1, Reg::R0, keep); // 1-in-8 chance: pick a new symbol
    a.srli(cur, x, 8);
    a.andi(cur, cur, 15);
    a.bind(keep).unwrap();
    a.add(t2, inp, i);
    a.sb(t2, 0, cur);
    a.addi(i, i, 1);
    a.blt(i, size, init_top);

    // ---- outer rounds ----
    let round_top = util::round_loop_begin(&mut a, rounds_reg, rounds);

    // RLE pass: scan input, emit (symbol, run-length) pairs.
    a.li(j, 0);
    a.li(k, 0);
    let rle_top = a.here_label();
    a.add(t0, inp, j);
    a.lb(c, t0, 0);
    a.li(run, 1);
    let run_top = a.here_label();
    let run_done = a.label();
    a.add(t0, j, run);
    a.bge(t0, size, run_done); // end of buffer
    a.add(t1, inp, t0);
    a.lb(t2, t1, 0);
    a.bne(t2, c, run_done); // run broken
    a.addi(run, run, 1);
    a.slti(t1, run, 255);
    a.bne(t1, Reg::R0, run_top); // run capped at 255
    a.bind(run_done).unwrap();
    a.add(t0, out, k);
    a.sb(t0, 0, c);
    a.sb(t0, 1, run);
    a.addi(k, k, 2);
    a.add(j, j, run);
    a.blt(j, size, rle_top);

    // Reset the MTF list to the identity permutation 0..16.
    a.li(t0, 0);
    let mtf_init_top = a.here_label();
    a.li(t1, mtf);
    a.add(t1, t1, t0);
    a.sb(t1, 0, t0);
    a.addi(t0, t0, 1);
    a.slti(t1, t0, 16);
    a.bne(t1, Reg::R0, mtf_init_top);

    // MTF pass over the RLE symbols (every other output byte).
    a.li(j, 0);
    a.li(sum, 0);
    let mtf_top = a.here_label();
    a.add(t0, out, j);
    a.lb(b, t0, 0);
    a.andi(b, b, 15);
    // Linear search for b in the MTF list.
    a.li(idx, 0);
    let search_top = a.here_label();
    let found = a.label();
    a.li(t0, mtf);
    a.add(t0, t0, idx);
    a.lb(t1, t0, 0);
    a.beq(t1, b, found);
    a.addi(idx, idx, 1);
    a.slti(t0, idx, 16);
    a.bne(t0, Reg::R0, search_top);
    a.li(idx, 15); // defensive: symbol always present
    a.bind(found).unwrap();
    a.add(sum, sum, idx);
    // Shift list entries [0, idx) up by one, then put b at the front.
    let shift_done = a.label();
    a.mv(t2, idx);
    let shift_top = a.here_label();
    a.beq(t2, Reg::R0, shift_done);
    a.li(t0, mtf);
    a.add(t0, t0, t2);
    a.lb(t1, t0, -1);
    a.sb(t0, 0, t1);
    a.addi(t2, t2, -1);
    a.jmp(shift_top);
    a.bind(shift_done).unwrap();
    a.li(t0, mtf);
    a.sb(t0, 0, b);
    a.addi(j, j, 2);
    a.blt(j, k, mtf_top);

    util::round_loop_end(&mut a, rounds_reg, round_top);
    a.finish().expect("bzip2 program assembles")
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssim_func::Machine;

    #[test]
    fn terminates_and_does_work() {
        let program = build(1);
        let mut m = Machine::new(&program);
        let mut n = 0u64;
        while m.step().is_some() {
            n += 1;
            assert!(n < 60_000_000, "runaway");
        }
        assert!(m.halted());
        // The checksum register accumulated MTF indices.
        assert!(m.reg(Reg::R13) > 0, "MTF checksum must be positive");
    }
}
