//! `twolf` archetype: simulated-annealing cell placement.
//!
//! Mirrors 300.twolf's character: scattered random reads over a grid
//! larger than the L2 cache, a data-dependent accept/reject branch
//! driven by a decaying temperature, and swap stores on acceptance.

use crate::util;
use ssim_isa::{Assembler, Program, Reg};

/// Grid cells (power of two). 256K cells × 8 B = 2 MiB, exceeding the
/// baseline 1 MiB L2.
const CELLS: i64 = 1 << 18;
/// Annealing steps per round.
const STEPS: i64 = 40_000;

/// Builds the program; `rounds` annealing sweeps.
pub fn build(rounds: u64) -> Program {
    let mut a = Assembler::new("twolf");
    let grid = a.alloc_words(CELLS as u64) as i64;

    let (i, j, step) = (Reg::R1, Reg::R2, Reg::R3);
    let (t0, t1, t2, t3) = (Reg::R4, Reg::R5, Reg::R6, Reg::R7);
    let (x, temp, accepted) = (Reg::R8, Reg::R9, Reg::R10);
    let (gridbase, ai, aj) = (Reg::R11, Reg::R12, Reg::R13);
    let (vi, vj, delta) = (Reg::R14, Reg::R15, Reg::R16);
    let (ni, nj, sign) = (Reg::R17, Reg::R18, Reg::R19);
    let rounds_reg = Reg::R29;

    a.li(gridbase, grid);

    // ---- init: fill the grid with pseudo-random weights ----
    a.li(x, 0x0932_4dfa_11c8_73ebu64 as i64);
    a.li(i, 0);
    let init_top = a.here_label();
    util::xorshift(&mut a, x, t0);
    a.andi(t1, x, 0xffff);
    a.slli(t0, i, 3);
    a.add(t0, gridbase, t0);
    a.st(t0, 0, t1);
    a.addi(i, i, 1);
    a.li(t0, CELLS);
    a.blt(i, t0, init_top);

    // ---- outer rounds ----
    let round_top = util::round_loop_begin(&mut a, rounds_reg, rounds);
    a.li(step, 0);
    a.li(temp, 1 << 15); // temperature resets each round
    let step_top = a.here_label();
    // Pick two random cells.
    util::xorshift(&mut a, x, t0);
    a.andi(i, x, CELLS - 1);
    a.srli(t0, x, 24);
    a.andi(j, t0, CELLS - 1);
    // Load their values and a neighbour of each.
    a.slli(ai, i, 3);
    a.add(ai, gridbase, ai);
    a.ld(vi, ai, 0);
    a.slli(aj, j, 3);
    a.add(aj, gridbase, aj);
    a.ld(vj, aj, 0);
    a.addi(t0, i, 1);
    a.andi(t0, t0, CELLS - 1);
    a.slli(t0, t0, 3);
    a.add(t0, gridbase, t0);
    a.ld(ni, t0, 0);
    a.addi(t0, j, 1);
    a.andi(t0, t0, CELLS - 1);
    a.slli(t0, t0, 3);
    a.add(t0, gridbase, t0);
    a.ld(nj, t0, 0);
    // Cost delta: |vj-ni| + |vi-nj| - |vi-ni| - |vj-nj| (swap effect on
    // neighbour affinity). abs() is branchless (sign-mask idiom, as a
    // compiler would emit) so the only data-dependent branch is the
    // accept/reject decision.
    macro_rules! absdiff {
        ($dst:ident, $p:ident, $q:ident, $sign:ident) => {{
            a.sub($dst, $p, $q);
            a.srai($sign, $dst, 63);
            a.xor($dst, $dst, $sign);
            a.sub($dst, $dst, $sign);
        }};
    }
    absdiff!(t0, vj, ni, sign);
    absdiff!(t1, vi, nj, sign);
    a.add(delta, t0, t1);
    absdiff!(t2, vi, ni, sign);
    absdiff!(t3, vj, nj, sign);
    a.sub(delta, delta, t2);
    a.sub(delta, delta, t3);
    // Accept if delta < temp (unpredictable while temp is mid-range).
    let reject = a.label();
    a.bge(delta, temp, reject);
    a.st(ai, 0, vj); // swap
    a.st(aj, 0, vi);
    a.addi(accepted, accepted, 1);
    a.bind(reject).unwrap();
    // Cool down: temp -= temp >> 12 (slow exponential decay).
    a.srai(t0, temp, 12);
    a.sub(temp, temp, t0);
    a.addi(step, step, 1);
    a.li(t0, STEPS);
    a.blt(step, t0, step_top);

    util::round_loop_end(&mut a, rounds_reg, round_top);
    a.finish().expect("twolf program assembles")
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssim_func::Machine;

    #[test]
    fn anneals_with_mixed_accepts() {
        let program = build(1);
        let mut m = Machine::new(&program);
        let mut n = 0u64;
        while m.step().is_some() {
            n += 1;
            assert!(n < 30_000_000, "runaway");
        }
        assert!(m.halted());
        let accepted = m.reg(Reg::R10) as i64;
        assert!(accepted > 0, "some moves must be accepted");
        assert!(
            accepted < STEPS,
            "some moves must be rejected, accepted={accepted}"
        );
    }
}
