//! The ten benchmark program builders.
//!
//! Each submodule exposes `build(rounds) -> Program`. All programs share
//! the same shape: an initialisation phase (executed once) followed by
//! an outer loop of `rounds` work rounds, so callers can either bound
//! execution by rounds or simply take the first *N* dynamic
//! instructions of an effectively unbounded run.

pub mod bzip2;
pub mod crafty;
pub mod eon;
pub mod gcc;
pub mod gzip;
pub mod parser;
pub mod perlbmk;
pub mod twolf;
pub mod vortex;
pub mod vpr;

#[cfg(test)]
mod tests {
    use crate::all;
    use ssim_func::Machine;
    use ssim_isa::InstrClass;
    use std::collections::BTreeMap;

    /// Every workload must terminate cleanly when given few rounds.
    #[test]
    fn all_workloads_terminate_with_bounded_rounds() {
        for w in all() {
            let program = w.program_with_rounds(2);
            let mut m = Machine::new(&program);
            let mut steps = 0u64;
            while m.step().is_some() {
                steps += 1;
                assert!(
                    steps < 80_000_000,
                    "{} did not halt within 80M instructions",
                    w.name()
                );
            }
            assert!(m.halted(), "{} must halt", w.name());
            assert!(steps > 1_000, "{} ran only {steps} instructions", w.name());
        }
    }

    /// Every workload must sustain an unbounded run long enough for
    /// profiling (no early halt within 2M instructions).
    #[test]
    fn all_workloads_sustain_long_runs() {
        for w in all() {
            let program = w.program();
            let n = Machine::new(&program).take(2_000_000).count();
            assert_eq!(n, 2_000_000, "{} halted early", w.name());
        }
    }

    /// Workloads must be deterministic: two runs produce identical
    /// streams.
    #[test]
    fn workloads_are_deterministic() {
        for w in all() {
            let program = w.program();
            let a: Vec<_> = Machine::new(&program)
                .take(50_000)
                .map(|e| (e.pc, e.mem_addr))
                .collect();
            let b: Vec<_> = Machine::new(&program)
                .take(50_000)
                .map(|e| (e.pc, e.mem_addr))
                .collect();
            assert_eq!(a, b, "{} is nondeterministic", w.name());
        }
    }

    /// The suite must exhibit diverse instruction mixes: perlbmk has
    /// indirect branches, eon is FP-heavy, everything has loads and
    /// conditional branches.
    #[test]
    fn suite_mixes_are_diverse() {
        let mut mixes: BTreeMap<&str, BTreeMap<InstrClass, u64>> = BTreeMap::new();
        for w in all() {
            let program = w.program();
            let mut mix = BTreeMap::new();
            // Skip the initialisation phase (buffer filling is
            // store-only), like the paper skips each benchmark's warmup.
            for e in Machine::new(&program).skip(4_000_000).take(500_000) {
                *mix.entry(e.class()).or_insert(0) += 1;
            }
            mixes.insert(w.name(), mix);
        }
        for (name, mix) in &mixes {
            assert!(
                mix.get(&InstrClass::Load).copied().unwrap_or(0) > 0,
                "{name}: no loads"
            );
            assert!(
                mix.get(&InstrClass::IntCondBranch).copied().unwrap_or(0) > 0,
                "{name}: no branches"
            );
        }
        let indirect = mixes["perlbmk"]
            .get(&InstrClass::IndirectBranch)
            .copied()
            .unwrap_or(0);
        assert!(
            indirect > 10_000,
            "perlbmk must be dispatch-dominated, got {indirect}"
        );
        let fp: u64 = [
            InstrClass::FpAlu,
            InstrClass::FpMul,
            InstrClass::FpDiv,
            InstrClass::FpSqrt,
        ]
        .iter()
        .map(|c| mixes["eon"].get(c).copied().unwrap_or(0))
        .sum();
        assert!(fp > 100_000, "eon must be FP-heavy, got {fp}");
        let stores = mixes["twolf"].get(&InstrClass::Store).copied().unwrap_or(0);
        assert!(stores > 1_000, "twolf must store, got {stores}");
    }
}
