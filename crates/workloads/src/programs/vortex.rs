//! `vortex` archetype: a hashed object store with linked buckets.
//!
//! Mirrors 255.vortex's character: pointer chasing through linked
//! structures spread over a multi-megabyte heap, a call-structured hot
//! path (hash → lookup → touch), and read-mostly traffic with regular
//! updates.

use crate::util;
use ssim_isa::{Assembler, Program, Reg};

/// Number of stored objects (each 4 words = 32 B). 128K × 32 B = 4 MiB.
const OBJECTS: i64 = 1 << 17;
/// Hash bucket heads (power of two).
const BUCKETS: i64 = 1 << 12;
/// Lookups per round.
const LOOKUPS: i64 = 20_000;
/// Object field offsets (bytes).
const F_KEY: i64 = 0;
const F_VALUE: i64 = 8;
const F_NEXT: i64 = 16;

/// Builds the program; `rounds` query batches.
pub fn build(rounds: u64) -> Program {
    let mut a = Assembler::new("vortex");
    util::init_stack(&mut a, 64 << 10);
    let heap = a.alloc((OBJECTS * 32) as u64) as i64;
    let buckets = a.alloc_words(BUCKETS as u64) as i64;

    let (i, key, node) = (Reg::R1, Reg::R2, Reg::R3);
    let (t0, t1, t2) = (Reg::R4, Reg::R5, Reg::R6);
    let (x, hits, misses) = (Reg::R7, Reg::R8, Reg::R9);
    let (heapbase, bktbase, hash) = (Reg::R10, Reg::R11, Reg::R12);
    let (q, found) = (Reg::R13, Reg::R14);
    let rounds_reg = Reg::R29;

    a.li(heapbase, heap);
    a.li(bktbase, buckets);

    let hash_fn = a.label();
    let lookup_fn = a.label();

    // ---- init: build all objects and thread them into buckets ----
    // Object k gets key = k * 2654435761 mod 2^32 (Knuth multiplicative),
    // so keys are scattered but reproducible at query time.
    a.li(i, 0);
    let init_top = a.here_label();
    a.li(t0, 2654435761);
    a.mul(key, i, t0);
    a.srli(key, key, 3);
    a.slli(t1, key, 3);
    a.srli(t1, t1, 3); // keep keys positive small-ish
    a.mv(key, t1);
    // node address = heap + i*32
    a.slli(node, i, 5);
    a.add(node, heapbase, node);
    a.st(node, F_KEY, key);
    a.st(node, F_VALUE, i);
    // bucket index = hash(key)
    a.mv(q, key);
    a.call(hash_fn); // hash in `hash`
    a.slli(t0, hash, 3);
    a.add(t0, bktbase, t0);
    a.ld(t1, t0, 0); // old head
    a.st(node, F_NEXT, t1);
    a.st(t0, 0, node); // head = node
    a.addi(i, i, 1);
    a.li(t0, OBJECTS);
    a.blt(i, t0, init_top);
    let main_start = a.label();
    a.jmp(main_start);

    // ---- hash_fn: hash = mix(q) & (BUCKETS-1) (leaf) ----
    a.bind(hash_fn).unwrap();
    a.srli(t2, q, 9);
    a.xor(hash, q, t2);
    a.li(t2, 0x9e37_79b9);
    a.mul(hash, hash, t2);
    a.srli(t2, hash, 13);
    a.xor(hash, hash, t2);
    a.andi(hash, hash, BUCKETS - 1);
    a.ret();

    // ---- lookup_fn: walk bucket chain for `q`; found=node or 0 ----
    a.bind(lookup_fn).unwrap();
    util::push_link(&mut a);
    a.call(hash_fn);
    a.slli(t0, hash, 3);
    a.add(t0, bktbase, t0);
    a.ld(found, t0, 0);
    let walk_top = a.here_label();
    let walk_done = a.label();
    let walk_next = a.label();
    a.beq(found, Reg::R0, walk_done); // chain exhausted
    a.ld(t1, found, F_KEY);
    a.bne(t1, q, walk_next);
    a.jmp(walk_done); // key matches
    a.bind(walk_next).unwrap();
    a.ld(found, found, F_NEXT);
    a.jmp(walk_top);
    a.bind(walk_done).unwrap();
    util::pop_link_ret(&mut a);

    // ---- main: random queries, mostly present keys ----
    a.bind(main_start).unwrap();
    a.li(x, 0x3c6e_f372_fe94_f82bu64 as i64);
    let round_top = util::round_loop_begin(&mut a, rounds_reg, rounds);
    a.li(i, 0);
    let query_top = a.here_label();
    util::xorshift(&mut a, x, t0);
    // 7/8 of queries use a key that exists (recompute object k's key);
    // 1/8 use a random probe that usually misses.
    a.andi(t0, x, 7);
    let probe_random = a.label();
    let do_lookup = a.label();
    a.beq(t0, Reg::R0, probe_random);
    a.srli(t1, x, 8);
    a.andi(t1, t1, OBJECTS - 1);
    a.li(t2, 2654435761);
    a.mul(q, t1, t2);
    a.srli(q, q, 3);
    a.slli(t2, q, 3);
    a.srli(q, t2, 3);
    a.jmp(do_lookup);
    a.bind(probe_random).unwrap();
    a.srli(q, x, 17);
    a.bind(do_lookup).unwrap();
    a.call(lookup_fn);
    let miss = a.label();
    let next_query = a.label();
    a.beq(found, Reg::R0, miss);
    a.addi(hits, hits, 1);
    a.ld(t0, found, F_VALUE); // touch the object
    a.addi(t0, t0, 1);
    a.st(found, F_VALUE, t0);
    a.jmp(next_query);
    a.bind(miss).unwrap();
    a.addi(misses, misses, 1);
    a.bind(next_query).unwrap();
    a.addi(i, i, 1);
    a.li(t0, LOOKUPS);
    a.blt(i, t0, query_top);

    util::round_loop_end(&mut a, rounds_reg, round_top);
    a.finish().expect("vortex program assembles")
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssim_func::Machine;

    #[test]
    fn queries_mostly_hit() {
        let program = build(1);
        let mut m = Machine::new(&program);
        let mut n = 0u64;
        while m.step().is_some() {
            n += 1;
            assert!(n < 60_000_000, "runaway");
        }
        assert!(m.halted());
        let hits = m.reg(Reg::R8);
        let misses = m.reg(Reg::R9);
        assert_eq!(hits + misses, LOOKUPS as u64);
        assert!(
            hits > misses,
            "present keys dominate: {hits} hits vs {misses} misses"
        );
    }
}
