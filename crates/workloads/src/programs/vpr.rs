//! `vpr` archetype: breadth-first maze routing on an obstacle grid.
//!
//! Mirrors 175.vpr's character: wavefront expansion driven by an
//! in-memory work queue, four bounds/obstacle/visited checks per
//! expanded cell, and a working set (visited stamps + queue) streaming
//! through the data cache.

use crate::util;
use ssim_isa::{Assembler, Program, Reg};

/// Grid edge (power of two).
const W: i64 = 256;
/// Total cells.
const CELLS: i64 = W * W;

/// Builds the program; `rounds` routed nets.
pub fn build(rounds: u64) -> Program {
    let mut a = Assembler::new("vpr");
    let obstacles = a.alloc(CELLS as u64) as i64; // bytes: 1 = blocked
    let visited = a.alloc_words(CELLS as u64) as i64; // round stamps
    let queue = a.alloc_words(CELLS as u64) as i64;

    let (cell, nbr, stamp) = (Reg::R1, Reg::R2, Reg::R3);
    let (t0, t1, t2) = (Reg::R4, Reg::R5, Reg::R6);
    let (x, head, tail) = (Reg::R7, Reg::R8, Reg::R9);
    let (obs, vis, qbase) = (Reg::R10, Reg::R11, Reg::R12);
    let (src, sink, explored) = (Reg::R13, Reg::R14, Reg::R15);
    let (col, routed) = (Reg::R16, Reg::R17);
    let rounds_reg = Reg::R29;

    a.li(obs, obstacles);
    a.li(vis, visited);
    a.li(qbase, queue);

    // ---- init: structured maze (walls with doorways) ----
    // Routing fabrics are regular, not random: every 8th row is a wall
    // with one doorway per 8-column span, plus a light random sprinkle
    // (1/64) of blockages. Obstacle checks are therefore mostly
    // predictable, like real routing graphs.
    a.li(x, 0x4528_21e6_38d0_1377_u64 as i64);
    a.li(t0, 0);
    let init_top = a.here_label();
    util::xorshift(&mut a, x, t1);
    a.li(t2, 0);
    let decided = a.label();
    let sprinkle = a.label();
    // row = t0 >> 8; wall rows have (row & 7) == 0.
    a.srli(t1, t0, 8);
    a.andi(t1, t1, 7);
    a.bne(t1, Reg::R0, sprinkle);
    // Doorway: column where (col & 7) == ((row >> 3) & 7).
    a.srli(t1, t0, 11);
    a.andi(t1, t1, 7);
    a.andi(cell, t0, 7); // col & 7 (cell is free during init)
    a.beq(cell, t1, decided); // doorway stays open
    a.li(t2, 1);
    a.jmp(decided);
    a.bind(sprinkle).unwrap();
    a.andi(t1, x, 63);
    a.bne(t1, Reg::R0, decided);
    a.li(t2, 1);
    a.bind(decided).unwrap();
    a.add(t1, obs, t0);
    a.sb(t1, 0, t2);
    a.addi(t0, t0, 1);
    a.li(t1, CELLS);
    a.blt(t0, t1, init_top);

    // ---- outer rounds: route one net per round ----
    a.li(stamp, 0);
    let round_top = util::round_loop_begin(&mut a, rounds_reg, rounds);
    a.addi(stamp, stamp, 1);
    util::xorshift(&mut a, x, t0);
    a.andi(src, x, CELLS - 1);
    a.srli(t0, x, 20);
    a.andi(sink, t0, CELLS - 1);
    a.li(head, 0);
    a.li(tail, 0);
    // Seed the wavefront.
    a.slli(t0, src, 3);
    a.add(t0, vis, t0);
    a.st(t0, 0, stamp);
    a.st(qbase, 0, src);
    a.addi(tail, tail, 1);

    let bfs_top = a.here_label();
    let bfs_done = a.label();
    let bfs_found = a.label();
    a.bge(head, tail, bfs_done); // queue empty: unroutable
    a.slli(t0, head, 3);
    a.add(t0, qbase, t0);
    a.ld(cell, t0, 0);
    a.addi(head, head, 1);
    a.beq(cell, sink, bfs_found);
    a.andi(col, cell, W - 1);

    // Expand the four neighbours; each arm is generated separately.
    for dir in 0..4u8 {
        let skip = a.label();
        match dir {
            0 => {
                // West: col > 0.
                a.beq(col, Reg::R0, skip);
                a.addi(nbr, cell, -1);
            }
            1 => {
                // East: col < W-1.
                a.li(t0, W - 1);
                a.bge(col, t0, skip);
                a.addi(nbr, cell, 1);
            }
            2 => {
                // North: row > 0.
                a.li(t0, W);
                a.blt(cell, t0, skip);
                a.addi(nbr, cell, -W);
            }
            _ => {
                // South: row < W-1.
                a.li(t0, CELLS - W);
                a.bge(cell, t0, skip);
                a.addi(nbr, cell, W);
            }
        }
        // Blocked?
        a.add(t0, obs, nbr);
        a.lb(t1, t0, 0);
        a.bne(t1, Reg::R0, skip);
        // Already visited this round?
        a.slli(t0, nbr, 3);
        a.add(t0, vis, t0);
        a.ld(t1, t0, 0);
        a.beq(t1, stamp, skip);
        // Mark and enqueue.
        a.st(t0, 0, stamp);
        a.slli(t1, tail, 3);
        a.add(t1, qbase, t1);
        a.st(t1, 0, nbr);
        a.addi(tail, tail, 1);
        a.bind(skip).unwrap();
    }
    a.jmp(bfs_top);

    a.bind(bfs_found).unwrap();
    a.addi(routed, routed, 1);
    a.bind(bfs_done).unwrap();
    a.add(explored, explored, head);

    util::round_loop_end(&mut a, rounds_reg, round_top);
    a.finish().expect("vpr program assembles")
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssim_func::Machine;

    #[test]
    fn routes_nets() {
        let program = build(12);
        let mut m = Machine::new(&program);
        let mut n = 0u64;
        while m.step().is_some() {
            n += 1;
            assert!(n < 80_000_000, "runaway");
        }
        assert!(m.halted());
        assert!(m.reg(Reg::R15) > 0, "wavefronts must explore cells");
        assert!(
            m.reg(Reg::R17) > 0,
            "at least one net should route in 12 tries"
        );
    }
}
