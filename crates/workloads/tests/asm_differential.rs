//! Differential harness: the textual assembler against the native
//! generators.
//!
//! Every native workload is re-emitted as canonical `.asm` text
//! (`Program::to_asm`) and fed back through `ssim_asm::assemble`. The
//! result must be *the same program* — equal as a value (name, code,
//! memory size, initial data) — and, as a belt-and-braces check on the
//! semantics of that equality, the functional machine must produce an
//! identical dynamic instruction stream from both images. This pins the
//! emitter, the parser and the `Assembler` lowering to one another: a
//! divergence in any of the three fails here with the first differing
//! record.

use ssim_asm::assemble;
use ssim_func::Machine;
use ssim_workloads::{all, corpus};

/// Dynamic instructions to compare per workload. Enough to get out of
/// warm-up and through several outer-loop rounds, small enough to keep
/// the suite quick.
const STREAM_LEN: usize = 200_000;

#[test]
fn native_workloads_reassemble_to_identical_programs() {
    for w in all() {
        let native = w.program_with_rounds(50);
        let text = native.to_asm();
        let back =
            assemble(&text).unwrap_or_else(|d| panic!("{}: re-assembly failed:\n{d}", w.name()));
        assert_eq!(
            back,
            native,
            "{}: textual round-trip changed the program",
            w.name()
        );
    }
}

#[test]
fn native_workloads_reassemble_to_identical_streams() {
    for w in all() {
        let native = w.program_with_rounds(50);
        let back = assemble(&native.to_asm())
            .unwrap_or_else(|d| panic!("{}: re-assembly failed:\n{d}", w.name()));
        let mut a = Machine::new(&native);
        let mut b = Machine::new(&back);
        for i in 0..STREAM_LEN {
            let (ra, rb) = (a.next(), b.next());
            assert_eq!(
                ra,
                rb,
                "{}: dynamic streams diverge at instruction {i}",
                w.name()
            );
            if ra.is_none() {
                break; // both halted
            }
        }
    }
}

/// The corpus is a fixed point too: assemble → emit → assemble is
/// stable, and the emitted canonical text keeps the dynamic stream.
#[test]
fn corpus_workloads_survive_reemission() {
    for w in corpus() {
        let p = w.program_with_rounds(5);
        let back = assemble(&p.to_asm())
            .unwrap_or_else(|d| panic!("{}: re-assembly failed:\n{d}", w.name()));
        assert_eq!(back, p, "{}: re-emission changed the program", w.name());
        let executed: Vec<_> = Machine::new(&p).take(STREAM_LEN).collect();
        let replayed: Vec<_> = Machine::new(&back).take(STREAM_LEN).collect();
        assert_eq!(executed, replayed, "{}: stream changed", w.name());
    }
}
