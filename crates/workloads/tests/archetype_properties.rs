//! Behavioural assertions per workload archetype: each program must
//! actually exhibit the character its SPEC namesake is chosen for.

use ssim_cache::CapacitySweep;
use ssim_func::Machine;
use ssim_isa::InstrClass;
use std::collections::BTreeMap;

const SKIP: usize = 4_000_000;
const SAMPLE: usize = 500_000;

fn mix_of(name: &str) -> (BTreeMap<InstrClass, u64>, u64) {
    let w = ssim_workloads::by_name(name).expect("known workload");
    let program = w.program();
    let mut mix = BTreeMap::new();
    let mut total = 0;
    for e in Machine::new(&program).skip(SKIP).take(SAMPLE) {
        *mix.entry(e.class()).or_insert(0u64) += 1;
        total += 1;
    }
    (mix, total)
}

fn frac(mix: &BTreeMap<InstrClass, u64>, total: u64, classes: &[InstrClass]) -> f64 {
    classes
        .iter()
        .map(|c| mix.get(c).copied().unwrap_or(0))
        .sum::<u64>() as f64
        / total.max(1) as f64
}

#[test]
fn eon_is_floating_point_dominated() {
    let (mix, total) = mix_of("eon");
    let fp = frac(
        &mix,
        total,
        &[
            InstrClass::FpAlu,
            InstrClass::FpMul,
            InstrClass::FpDiv,
            InstrClass::FpSqrt,
            InstrClass::FpCondBranch,
        ],
    );
    assert!(fp > 0.25, "eon fp fraction {fp}");
}

#[test]
fn perlbmk_dispatches_indirectly() {
    let (mix, total) = mix_of("perlbmk");
    let ind = frac(&mix, total, &[InstrClass::IndirectBranch]);
    assert!(ind > 0.05, "perlbmk indirect fraction {ind}");
}

#[test]
fn vortex_is_load_heavy() {
    let (mix, total) = mix_of("vortex");
    let loads = frac(&mix, total, &[InstrClass::Load]);
    assert!(loads > 0.20, "vortex load fraction {loads}");
}

#[test]
fn twolf_stores_regularly() {
    let (mix, total) = mix_of("twolf");
    let stores = frac(&mix, total, &[InstrClass::Store]);
    assert!(stores > 0.01, "twolf store fraction {stores}");
}

#[test]
fn gcc_touches_a_large_static_footprint() {
    let w = ssim_workloads::by_name("gcc").unwrap();
    let program = w.program();
    let pcs: std::collections::HashSet<usize> = Machine::new(&program)
        .skip(SKIP)
        .take(SAMPLE)
        .map(|e| e.pc)
        .collect();
    assert!(pcs.len() > 1_000, "gcc touched only {} PCs", pcs.len());
    // And the others stay small by comparison.
    let small = ssim_workloads::by_name("twolf").unwrap().program();
    let small_pcs: std::collections::HashSet<usize> = Machine::new(&small)
        .skip(SKIP)
        .take(SAMPLE)
        .map(|e| e.pc)
        .collect();
    assert!(
        pcs.len() > 5 * small_pcs.len(),
        "gcc {} vs twolf {}",
        pcs.len(),
        small_pcs.len()
    );
}

/// Working-set separation, measured with the single-pass capacity
/// sweep: twolf's data working set must dwarf bzip2's.
#[test]
fn working_sets_are_diverse() {
    let miss_at = |name: &str, blocks: usize| -> f64 {
        let program = ssim_workloads::by_name(name).unwrap().program();
        // 512 blocks x 64B = 32KB fully-associative reference cache.
        let mut sweep = CapacitySweep::new(64, 512);
        for e in Machine::new(&program).skip(SKIP).take(SAMPLE) {
            if let Some(addr) = e.mem_addr {
                sweep.access(addr);
            }
        }
        sweep.miss_rate(blocks)
    };
    let bzip2 = miss_at("bzip2", 512);
    let twolf = miss_at("twolf", 512);
    assert!(
        twolf > bzip2 + 0.10,
        "twolf ({twolf:.3}) must thrash where bzip2 ({bzip2:.3}) fits"
    );
}

/// Branch behaviour diversity: parser mispredict-prone, crafty tame.
/// (Measured architecturally: taken-rate entropy as a cheap proxy is
/// not enough, so use actual direction flip rates.)
#[test]
fn branch_volatility_is_diverse() {
    let flip_rate = |name: &str| -> f64 {
        let program = ssim_workloads::by_name(name).unwrap().program();
        let mut last: std::collections::HashMap<usize, bool> = Default::default();
        let (mut flips, mut branches) = (0u64, 0u64);
        for e in Machine::new(&program).skip(SKIP).take(SAMPLE) {
            if e.instr.op.is_conditional_branch() {
                branches += 1;
                if let Some(prev) = last.insert(e.pc, e.taken) {
                    if prev != e.taken {
                        flips += 1;
                    }
                }
            }
        }
        flips as f64 / branches.max(1) as f64
    };
    let parser = flip_rate("parser");
    let crafty = flip_rate("crafty");
    assert!(
        parser > crafty,
        "parser branches ({parser:.3}) should flip more than crafty's ({crafty:.3})"
    );
}
