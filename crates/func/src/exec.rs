//! Dynamic-instruction records.

use ssim_isa::{Instr, InstrClass};

/// One dynamically executed instruction.
///
/// Produced by [`Machine::step`](crate::Machine::step); carries
/// everything downstream consumers (profilers, the execution-driven
/// pipeline) need without touching architectural state again.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Executed {
    /// PC (instruction index) of this instruction.
    pub pc: usize,
    /// A copy of the static instruction.
    pub instr: Instr,
    /// PC of the next dynamic instruction.
    pub next_pc: usize,
    /// For control instructions: whether the transfer was taken.
    /// Unconditional transfers are always taken; non-control
    /// instructions report `false`.
    pub taken: bool,
    /// Effective byte address for loads and stores.
    pub mem_addr: Option<u64>,
}

impl Executed {
    /// The instruction's semantic class.
    pub fn class(&self) -> InstrClass {
        self.instr.class()
    }

    /// Whether this instruction transfers control.
    pub fn is_control(&self) -> bool {
        self.instr.is_control()
    }
}
