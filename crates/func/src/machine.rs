//! The architectural interpreter.

use crate::exec::Executed;
use ssim_isa::{FReg, Opcode, Program, Reg, RegId};
use std::fmt;

/// An execution fault: control left the program's code.
///
/// Trusted workloads never fault (their jump tables are assembler-
/// resolved), so [`Machine::step`] turns faults into panics. Untrusted
/// text programs submitted over the wire are executed through
/// [`Machine::try_step`] / [`Machine::run_fuel`] instead, where a fault
/// is an ordinary, reportable value — a hostile `jr` can reject a
/// submission but never kill a server worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecFault {
    /// PC of the faulting instruction (or the out-of-range PC itself).
    pub pc: usize,
    /// What went wrong.
    pub kind: FaultKind,
}

/// The kinds of [`ExecFault`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The PC ran off the end of the code without a `Halt`.
    PcOffEnd,
    /// A `Ret`/`Jr` targeted a PC outside the code.
    IndirectOutOfRange {
        /// The out-of-range target.
        target: usize,
    },
}

impl fmt::Display for ExecFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            FaultKind::PcOffEnd => write!(f, "pc {} ran off the end of the code", self.pc),
            FaultKind::IndirectOutOfRange { target } => write!(
                f,
                "indirect transfer at pc {} targets {}, outside the code",
                self.pc, target
            ),
        }
    }
}

impl std::error::Error for ExecFault {}

/// Result of [`Machine::run_fuel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FuelOutcome {
    /// The program executed `Halt` within the budget.
    Halted {
        /// Instructions executed before the halt.
        executed: u64,
    },
    /// The budget ran out with the program still running.
    OutOfFuel,
    /// Execution faulted.
    Fault(ExecFault),
}

/// Architectural state of one program execution.
///
/// See the [crate documentation](crate) for an overview and an example.
///
/// # Memory model
///
/// Data memory is a flat byte array whose size must be a power of two;
/// effective addresses are masked into range (wrapping), so stray
/// pointers in a workload can never fault the simulator.
#[derive(Debug, Clone)]
pub struct Machine<'p> {
    program: &'p Program,
    regs: [u64; Reg::COUNT],
    fregs: [f64; FReg::COUNT],
    mem: Vec<u8>,
    mask: u64,
    pc: usize,
    icount: u64,
    halted: bool,
}

impl<'p> Machine<'p> {
    /// Creates a machine with fresh architectural state for `program`.
    ///
    /// # Panics
    ///
    /// Panics if the program's memory size is not a power of two.
    pub fn new(program: &'p Program) -> Self {
        let size = program.mem_size();
        assert!(size.is_power_of_two(), "memory size must be a power of two");
        Machine {
            program,
            regs: [0; Reg::COUNT],
            fregs: [0.0; FReg::COUNT],
            mem: program.initial_memory(),
            mask: size as u64 - 1,
            pc: program.entry(),
            icount: 0,
            halted: false,
        }
    }

    /// The program being executed.
    pub fn program(&self) -> &'p Program {
        self.program
    }

    /// Current program counter.
    pub fn pc(&self) -> usize {
        self.pc
    }

    /// Number of instructions executed so far (`Halt` excluded).
    pub fn icount(&self) -> u64 {
        self.icount
    }

    /// Whether the program has halted.
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// Reads an integer register.
    pub fn reg(&self, r: Reg) -> u64 {
        self.regs[r.index()]
    }

    /// Reads a floating-point register.
    pub fn freg(&self, f: FReg) -> f64 {
        self.fregs[f.index()]
    }

    /// Reads one little-endian u64 from data memory (wrapping).
    pub fn load64(&self, addr: u64) -> u64 {
        let mut bytes = [0u8; 8];
        for (i, b) in bytes.iter_mut().enumerate() {
            *b = self.mem[((addr + i as u64) & self.mask) as usize];
        }
        u64::from_le_bytes(bytes)
    }

    fn store64(&mut self, addr: u64, value: u64) {
        for (i, b) in value.to_le_bytes().iter().enumerate() {
            self.mem[((addr + i as u64) & self.mask) as usize] = *b;
        }
    }

    fn write_reg(&mut self, r: Reg, value: u64) {
        if r != Reg::ZERO {
            self.regs[r.index()] = value;
        }
    }

    fn int_src(&self, id: Option<RegId>) -> u64 {
        match id {
            Some(RegId::Int(r)) => self.reg(r),
            _ => 0,
        }
    }

    fn fp_src(&self, id: Option<RegId>) -> f64 {
        match id {
            Some(RegId::Fp(f)) => self.freg(f),
            _ => 0.0,
        }
    }

    /// Executes one instruction.
    ///
    /// Returns `None` once the machine has halted (executing `Halt`
    /// halts the machine without emitting a record — the dynamic stream
    /// contains only "real" instructions).
    ///
    /// # Panics
    ///
    /// Panics if control transfers outside the program's code (a
    /// malformed jump table or a return past the entry frame), or if the
    /// PC runs off the end of the code without a `Halt`. Use
    /// [`Machine::try_step`] to observe those faults as values instead.
    pub fn step(&mut self) -> Option<Executed> {
        self.try_step().unwrap_or_else(|fault| panic!("{fault}"))
    }

    /// Executes up to `fuel` instructions (a sandbox budget).
    ///
    /// Never panics on program behaviour: faults come back as
    /// [`FuelOutcome::Fault`]. This is the pre-flight check `ssim-serve`
    /// runs on submitted programs — execution is deterministic, so a
    /// clean fuelled run proves the same prefix cannot fault when the
    /// profiler replays it.
    pub fn run_fuel(&mut self, fuel: u64) -> FuelOutcome {
        let start = self.icount;
        loop {
            if self.icount - start >= fuel {
                return if self.halted {
                    FuelOutcome::Halted {
                        executed: self.icount - start,
                    }
                } else {
                    FuelOutcome::OutOfFuel
                };
            }
            match self.try_step() {
                Ok(Some(_)) => {}
                Ok(None) => {
                    return FuelOutcome::Halted {
                        executed: self.icount - start,
                    }
                }
                Err(fault) => return FuelOutcome::Fault(fault),
            }
        }
    }

    /// Executes one instruction, reporting faults as values.
    ///
    /// Returns `Ok(None)` once the machine has halted, and
    /// `Err(ExecFault)` if control leaves the code (the machine also
    /// halts, so subsequent calls return `Ok(None)`).
    #[allow(clippy::too_many_lines)] // one arm per opcode; splitting obscures
    pub fn try_step(&mut self) -> Result<Option<Executed>, ExecFault> {
        if self.halted {
            return Ok(None);
        }
        let pc = self.pc;
        let Some(&instr) = self.program.instr(pc) else {
            self.halted = true;
            return Err(ExecFault {
                pc,
                kind: FaultKind::PcOffEnd,
            });
        };
        let a = self.int_src(instr.srcs[0]);
        let b = self.int_src(instr.srcs[1]);
        let fa = self.fp_src(instr.srcs[0]);
        let fb = self.fp_src(instr.srcs[1]);
        let imm = instr.imm;
        let mut next_pc = pc + 1;
        let mut taken = false;
        let mut mem_addr = None;

        macro_rules! wr {
            ($v:expr) => {
                match instr.dest {
                    Some(RegId::Int(r)) => self.write_reg(r, $v),
                    _ => unreachable!("integer destination expected"),
                }
            };
        }
        macro_rules! fwr {
            ($v:expr) => {
                match instr.dest {
                    Some(RegId::Fp(f)) => self.fregs[f.index()] = $v,
                    _ => unreachable!("fp destination expected"),
                }
            };
        }
        macro_rules! branch {
            ($cond:expr) => {{
                if $cond {
                    taken = true;
                    next_pc = instr.target.expect("branch target resolved at assembly");
                }
            }};
        }

        match instr.op {
            Opcode::Add => wr!(a.wrapping_add(b)),
            Opcode::Sub => wr!(a.wrapping_sub(b)),
            Opcode::And => wr!(a & b),
            Opcode::Or => wr!(a | b),
            Opcode::Xor => wr!(a ^ b),
            Opcode::Sll => wr!(a.wrapping_shl(b as u32 & 63)),
            Opcode::Srl => wr!(a.wrapping_shr(b as u32 & 63)),
            Opcode::Sra => wr!(((a as i64).wrapping_shr(b as u32 & 63)) as u64),
            Opcode::Slt => wr!(u64::from((a as i64) < (b as i64))),
            Opcode::Sltu => wr!(u64::from(a < b)),
            Opcode::AddI => wr!(a.wrapping_add(imm as u64)),
            Opcode::AndI => wr!(a & imm as u64),
            Opcode::OrI => wr!(a | imm as u64),
            Opcode::XorI => wr!(a ^ imm as u64),
            Opcode::SllI => wr!(a.wrapping_shl(imm as u32 & 63)),
            Opcode::SrlI => wr!(a.wrapping_shr(imm as u32 & 63)),
            Opcode::SraI => wr!(((a as i64).wrapping_shr(imm as u32 & 63)) as u64),
            Opcode::SltI => wr!(u64::from((a as i64) < imm)),
            Opcode::Nop => {}
            Opcode::Mul => wr!(a.wrapping_mul(b)),
            Opcode::Div => wr!(if b == 0 {
                u64::MAX
            } else {
                ((a as i64).wrapping_div(b as i64)) as u64
            }),
            Opcode::Rem => wr!(if b == 0 {
                a
            } else {
                ((a as i64).wrapping_rem(b as i64)) as u64
            }),
            Opcode::Ld => {
                let addr = a.wrapping_add(imm as u64) & self.mask;
                mem_addr = Some(addr);
                wr!(self.load64(addr));
            }
            Opcode::Lb => {
                let addr = a.wrapping_add(imm as u64) & self.mask;
                mem_addr = Some(addr);
                wr!(u64::from(self.mem[addr as usize]));
            }
            Opcode::St => {
                let addr = a.wrapping_add(imm as u64) & self.mask;
                mem_addr = Some(addr);
                self.store64(addr, b);
            }
            Opcode::Sb => {
                let addr = a.wrapping_add(imm as u64) & self.mask;
                mem_addr = Some(addr);
                self.mem[addr as usize] = b as u8;
            }
            Opcode::FLd => {
                let addr = a.wrapping_add(imm as u64) & self.mask;
                mem_addr = Some(addr);
                let bits = self.load64(addr);
                fwr!(f64::from_bits(bits));
            }
            Opcode::FSt => {
                let addr = a.wrapping_add(imm as u64) & self.mask;
                mem_addr = Some(addr);
                self.store64(addr, fb.to_bits());
            }
            Opcode::Beq => branch!(a == b),
            Opcode::Bne => branch!(a != b),
            Opcode::Blt => branch!((a as i64) < (b as i64)),
            Opcode::Bge => branch!((a as i64) >= (b as i64)),
            Opcode::Bltu => branch!(a < b),
            Opcode::Bgeu => branch!(a >= b),
            Opcode::FBeq => branch!(fa == fb),
            Opcode::FBlt => branch!(fa < fb),
            Opcode::FBge => branch!(fa >= fb),
            Opcode::Jmp => {
                taken = true;
                next_pc = instr.target.expect("jump target resolved at assembly");
            }
            Opcode::Call => {
                taken = true;
                self.write_reg(Reg::LINK, (pc + 1) as u64);
                next_pc = instr.target.expect("call target resolved at assembly");
            }
            Opcode::Ret | Opcode::Jr => {
                taken = true;
                let t = a as usize;
                if t >= self.program.len() {
                    self.halted = true;
                    return Err(ExecFault {
                        pc,
                        kind: FaultKind::IndirectOutOfRange { target: t },
                    });
                }
                next_pc = t;
            }
            Opcode::Fadd => fwr!(fa + fb),
            Opcode::Fsub => fwr!(fa - fb),
            Opcode::Fmul => fwr!(fa * fb),
            Opcode::Fdiv => fwr!(fa / fb),
            Opcode::Fmin => fwr!(fa.min(fb)),
            Opcode::Fmax => fwr!(fa.max(fb)),
            Opcode::Fsqrt => fwr!(fa.abs().sqrt()),
            Opcode::Fabs => fwr!(fa.abs()),
            Opcode::Fneg => fwr!(-fa),
            Opcode::Fcvt => fwr!(a as i64 as f64),
            Opcode::Fcvti => wr!((fa as i64) as u64),
            Opcode::Halt => {
                self.halted = true;
                return Ok(None);
            }
        }

        self.pc = next_pc;
        self.icount += 1;
        Ok(Some(Executed {
            pc,
            instr,
            next_pc,
            taken,
            mem_addr,
        }))
    }
}

impl Iterator for Machine<'_> {
    type Item = Executed;

    fn next(&mut self) -> Option<Executed> {
        self.step()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssim_isa::Assembler;

    fn run(asm: Assembler) -> Machine<'static> {
        let program = Box::leak(Box::new(asm.finish().unwrap()));
        let mut m = Machine::new(program);
        while m.step().is_some() {}
        m
    }

    #[test]
    fn arithmetic_and_logic() {
        let mut a = Assembler::new("t");
        a.li(Reg::R1, 7);
        a.li(Reg::R2, 3);
        a.add(Reg::R3, Reg::R1, Reg::R2);
        a.sub(Reg::R4, Reg::R1, Reg::R2);
        a.mul(Reg::R5, Reg::R1, Reg::R2);
        a.div(Reg::R6, Reg::R1, Reg::R2);
        a.rem(Reg::R7, Reg::R1, Reg::R2);
        a.xor(Reg::R8, Reg::R1, Reg::R2);
        a.slt(Reg::R9, Reg::R2, Reg::R1);
        a.halt();
        let m = run(a);
        assert_eq!(m.reg(Reg::R3), 10);
        assert_eq!(m.reg(Reg::R4), 4);
        assert_eq!(m.reg(Reg::R5), 21);
        assert_eq!(m.reg(Reg::R6), 2);
        assert_eq!(m.reg(Reg::R7), 1);
        assert_eq!(m.reg(Reg::R8), 4);
        assert_eq!(m.reg(Reg::R9), 1);
    }

    #[test]
    fn r0_is_hardwired_zero() {
        let mut a = Assembler::new("t");
        a.li(Reg::R0, 99);
        a.add(Reg::R1, Reg::R0, Reg::R0);
        a.halt();
        let m = run(a);
        assert_eq!(m.reg(Reg::R0), 0);
        assert_eq!(m.reg(Reg::R1), 0);
    }

    #[test]
    fn division_by_zero_semantics() {
        let mut a = Assembler::new("t");
        a.li(Reg::R1, 42);
        a.div(Reg::R2, Reg::R1, Reg::R0);
        a.rem(Reg::R3, Reg::R1, Reg::R0);
        a.halt();
        let m = run(a);
        assert_eq!(m.reg(Reg::R2), u64::MAX);
        assert_eq!(m.reg(Reg::R3), 42);
    }

    #[test]
    fn memory_round_trip() {
        let mut a = Assembler::new("t");
        let buf = a.alloc_words(2);
        a.li(Reg::R1, buf as i64);
        a.li(Reg::R2, 0xdead_beef);
        a.st(Reg::R1, 8, Reg::R2);
        a.ld(Reg::R3, Reg::R1, 8);
        a.sb(Reg::R1, 0, Reg::R2);
        a.lb(Reg::R4, Reg::R1, 0);
        a.halt();
        let m = run(a);
        assert_eq!(m.reg(Reg::R3), 0xdead_beef);
        assert_eq!(m.reg(Reg::R4), 0xef);
    }

    #[test]
    fn fp_operations() {
        let mut a = Assembler::new("t");
        a.li(Reg::R1, 9);
        a.fcvt(FReg::F1, Reg::R1);
        a.fsqrt(FReg::F2, FReg::F1);
        a.fconst(FReg::F3, 0.5);
        a.fmul(FReg::F4, FReg::F2, FReg::F3);
        a.fcvti(Reg::R2, FReg::F2);
        a.halt();
        let m = run(a);
        assert_eq!(m.freg(FReg::F2), 3.0);
        assert_eq!(m.freg(FReg::F4), 1.5);
        assert_eq!(m.reg(Reg::R2), 3);
    }

    #[test]
    fn call_and_ret() {
        let mut a = Assembler::new("t");
        let func = a.label();
        a.call(func); // pc 0
        a.halt(); // pc 1
        a.bind(func).unwrap(); // pc 2
        a.li(Reg::R1, 11);
        a.ret();
        let program = a.finish().unwrap();
        let mut m = Machine::new(&program);
        let recs: Vec<_> = m.by_ref().collect();
        assert_eq!(m.reg(Reg::R1), 11);
        assert_eq!(m.reg(Reg::LINK), 1);
        assert!(m.halted());
        // call, li, ret
        assert_eq!(recs.len(), 3);
        assert!(recs[0].taken);
        assert_eq!(recs[2].next_pc, 1);
    }

    #[test]
    fn jump_table_dispatch() {
        let mut a = Assembler::new("t");
        let (case0, case1, done) = (a.label(), a.label(), a.label());
        let table = a.jump_table(&[case0, case1]);
        a.li(Reg::R1, 1); // select case 1
        a.slli(Reg::R2, Reg::R1, 3);
        a.addi(Reg::R2, Reg::R2, table as i64);
        a.ld(Reg::R3, Reg::R2, 0);
        a.jr(Reg::R3);
        a.bind(case0).unwrap();
        a.li(Reg::R4, 100);
        a.jmp(done);
        a.bind(case1).unwrap();
        a.li(Reg::R4, 200);
        a.bind(done).unwrap();
        a.halt();
        let m = run(a);
        assert_eq!(m.reg(Reg::R4), 200);
    }

    #[test]
    fn branch_records_taken_and_not_taken() {
        let mut a = Assembler::new("t");
        let skip = a.label();
        a.li(Reg::R1, 1);
        a.beq(Reg::R1, Reg::R0, skip); // not taken
        a.bne(Reg::R1, Reg::R0, skip); // taken
        a.nop(); // skipped
        a.bind(skip).unwrap();
        a.halt();
        let program = a.finish().unwrap();
        let recs: Vec<_> = Machine::new(&program).collect();
        assert_eq!(recs.len(), 3);
        assert!(!recs[1].taken);
        assert_eq!(recs[1].next_pc, 2);
        assert!(recs[2].taken);
        assert_eq!(recs[2].next_pc, 4);
    }

    #[test]
    fn memory_addresses_are_masked() {
        let mut a = Assembler::new("t");
        a.set_mem_size(1 << 12);
        a.li(Reg::R1, (1 << 12) + 24); // wraps to 24
        a.li(Reg::R2, 7);
        a.st(Reg::R1, 0, Reg::R2);
        a.li(Reg::R3, 24);
        a.ld(Reg::R4, Reg::R3, 0);
        a.halt();
        let m = run(a);
        assert_eq!(m.reg(Reg::R4), 7);
    }

    #[test]
    fn halt_emits_no_record() {
        let mut a = Assembler::new("t");
        a.nop();
        a.halt();
        let program = a.finish().unwrap();
        let mut m = Machine::new(&program);
        assert!(m.step().is_some());
        assert!(m.step().is_none());
        assert!(m.halted());
        assert_eq!(m.icount(), 1);
        assert!(m.step().is_none(), "step after halt stays halted");
    }

    #[test]
    fn try_step_reports_indirect_fault_and_halts() {
        let mut a = Assembler::new("t");
        a.li(Reg::R1, 9999);
        a.jr(Reg::R1);
        a.halt();
        let program = a.finish().unwrap();
        let mut m = Machine::new(&program);
        assert!(m.try_step().unwrap().is_some());
        let fault = m.try_step().unwrap_err();
        assert_eq!(
            fault,
            ExecFault {
                pc: 1,
                kind: FaultKind::IndirectOutOfRange { target: 9999 },
            }
        );
        assert!(
            fault.to_string().contains("targets 9999"),
            "fault display names the target: {fault}"
        );
        assert!(m.halted(), "a fault halts the machine");
        assert!(m.try_step().unwrap().is_none());
    }

    #[test]
    fn run_fuel_halts_runs_dry_and_faults() {
        // Halts within budget.
        let mut a = Assembler::new("t");
        a.nop();
        a.nop();
        a.halt();
        let program = a.finish().unwrap();
        let mut m = Machine::new(&program);
        assert_eq!(m.run_fuel(100), FuelOutcome::Halted { executed: 2 });
        assert_eq!(m.run_fuel(100), FuelOutcome::Halted { executed: 0 });

        // Runs out of fuel mid-loop, then finishes on a refill.
        let mut a = Assembler::new("t");
        let top = a.here_label();
        a.addi(Reg::R1, Reg::R1, 1);
        a.li(Reg::R2, 50);
        a.blt(Reg::R1, Reg::R2, top);
        a.halt();
        let program = a.finish().unwrap();
        let mut m = Machine::new(&program);
        assert_eq!(m.run_fuel(10), FuelOutcome::OutOfFuel);
        assert_eq!(m.icount(), 10, "fuel is an exact instruction budget");
        assert!(matches!(m.run_fuel(1_000), FuelOutcome::Halted { .. }));

        // Faults surface as values, not panics.
        let mut a = Assembler::new("t");
        a.li(Reg::R1, 1234);
        a.jr(Reg::R1);
        a.halt();
        let program = a.finish().unwrap();
        let mut m = Machine::new(&program);
        let FuelOutcome::Fault(fault) = m.run_fuel(100) else {
            panic!("expected a fault");
        };
        assert_eq!(fault.kind, FaultKind::IndirectOutOfRange { target: 1234 });
    }
}
