//! Functional (architectural) simulation of ssim programs.
//!
//! [`Machine`] interprets a [`Program`](ssim_isa::Program) at the
//! architectural level: registers, data memory and the program counter,
//! with no timing. Each [`Machine::step`] returns an [`Executed`] record
//! — the dynamic instruction together with its resolved control-flow
//! outcome and effective memory address.
//!
//! This is the equivalent of SimpleScalar's `sim-safe`: the paper's
//! statistical profiler (its `sim-bpred`/`sim-cache` extensions, §2.1.2)
//! consumes exactly this dynamic instruction stream, and the
//! execution-driven simulator in `ssim-uarch` uses `Machine` as its
//! correct-path oracle.
//!
//! # Examples
//!
//! ```
//! use ssim_isa::{Assembler, Reg};
//! use ssim_func::Machine;
//!
//! # fn main() -> Result<(), ssim_isa::AsmError> {
//! let mut a = Assembler::new("count");
//! let top = a.here_label();
//! a.addi(Reg::R1, Reg::R1, 1);
//! a.li(Reg::R2, 5);
//! a.blt(Reg::R1, Reg::R2, top);
//! a.halt();
//! let program = a.finish()?;
//!
//! let mut m = Machine::new(&program);
//! let executed: Vec<_> = m.by_ref().collect();
//! assert!(m.halted());
//! assert_eq!(m.reg(Reg::R1), 5);
//! assert_eq!(executed.len(), 15); // 5 iterations x 3 instructions
//! # Ok(())
//! # }
//! ```

mod exec;
mod machine;

pub use exec::Executed;
pub use machine::{ExecFault, FaultKind, FuelOutcome, Machine};
