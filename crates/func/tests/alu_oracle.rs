//! Differential test: random straight-line ALU programs executed by
//! the machine must match a direct Rust evaluation of the same
//! operations.

use proptest::prelude::*;
use ssim_func::Machine;
use ssim_isa::{Assembler, Reg};

#[derive(Debug, Clone, Copy)]
enum Op {
    Add(u8, u8, u8),
    Sub(u8, u8, u8),
    And(u8, u8, u8),
    Or(u8, u8, u8),
    Xor(u8, u8, u8),
    Sll(u8, u8, u8),
    Srl(u8, u8, u8),
    Sra(u8, u8, u8),
    Slt(u8, u8, u8),
    Mul(u8, u8, u8),
    Div(u8, u8, u8),
    Rem(u8, u8, u8),
    AddI(u8, u8, i32),
    SllI(u8, u8, u8),
    Li(u8, i32),
}

fn reg(i: u8) -> Reg {
    // Use r1..r28 (leave r0 hardwired, r29-31 conventions alone).
    Reg::new(1 + (i % 28))
}

fn op_strategy() -> impl Strategy<Value = Op> {
    let r = any::<u8>();
    prop_oneof![
        (r, r, r).prop_map(|(a, b, c)| Op::Add(a, b, c)),
        (r, r, r).prop_map(|(a, b, c)| Op::Sub(a, b, c)),
        (r, r, r).prop_map(|(a, b, c)| Op::And(a, b, c)),
        (r, r, r).prop_map(|(a, b, c)| Op::Or(a, b, c)),
        (r, r, r).prop_map(|(a, b, c)| Op::Xor(a, b, c)),
        (r, r, r).prop_map(|(a, b, c)| Op::Sll(a, b, c)),
        (r, r, r).prop_map(|(a, b, c)| Op::Srl(a, b, c)),
        (r, r, r).prop_map(|(a, b, c)| Op::Sra(a, b, c)),
        (r, r, r).prop_map(|(a, b, c)| Op::Slt(a, b, c)),
        (r, r, r).prop_map(|(a, b, c)| Op::Mul(a, b, c)),
        (r, r, r).prop_map(|(a, b, c)| Op::Div(a, b, c)),
        (r, r, r).prop_map(|(a, b, c)| Op::Rem(a, b, c)),
        (r, r, any::<i32>()).prop_map(|(a, b, i)| Op::AddI(a, b, i)),
        (r, r, 0u8..64).prop_map(|(a, b, s)| Op::SllI(a, b, s)),
        (r, any::<i32>()).prop_map(|(a, i)| Op::Li(a, i)),
    ]
}

/// Evaluates the op sequence directly over a 32-register file.
fn oracle(ops: &[Op]) -> [u64; 32] {
    let mut r = [0u64; 32];
    let idx = |i: u8| 1 + (i as usize % 28);
    for op in ops {
        let (d, v) = match *op {
            Op::Add(d, a, b) => (d, r[idx(a)].wrapping_add(r[idx(b)])),
            Op::Sub(d, a, b) => (d, r[idx(a)].wrapping_sub(r[idx(b)])),
            Op::And(d, a, b) => (d, r[idx(a)] & r[idx(b)]),
            Op::Or(d, a, b) => (d, r[idx(a)] | r[idx(b)]),
            Op::Xor(d, a, b) => (d, r[idx(a)] ^ r[idx(b)]),
            Op::Sll(d, a, b) => (d, r[idx(a)].wrapping_shl(r[idx(b)] as u32 & 63)),
            Op::Srl(d, a, b) => (d, r[idx(a)].wrapping_shr(r[idx(b)] as u32 & 63)),
            Op::Sra(d, a, b) => (
                d,
                ((r[idx(a)] as i64).wrapping_shr(r[idx(b)] as u32 & 63)) as u64,
            ),
            Op::Slt(d, a, b) => (d, u64::from((r[idx(a)] as i64) < (r[idx(b)] as i64))),
            Op::Mul(d, a, b) => (d, r[idx(a)].wrapping_mul(r[idx(b)])),
            Op::Div(d, a, b) => {
                let bv = r[idx(b)];
                let v = if bv == 0 {
                    u64::MAX
                } else {
                    ((r[idx(a)] as i64).wrapping_div(bv as i64)) as u64
                };
                (d, v)
            }
            Op::Rem(d, a, b) => {
                let bv = r[idx(b)];
                let v = if bv == 0 {
                    r[idx(a)]
                } else {
                    ((r[idx(a)] as i64).wrapping_rem(bv as i64)) as u64
                };
                (d, v)
            }
            Op::AddI(d, a, i) => (d, r[idx(a)].wrapping_add(i as i64 as u64)),
            Op::SllI(d, a, s) => (d, r[idx(a)].wrapping_shl(u32::from(s) & 63)),
            Op::Li(d, i) => (d, i as i64 as u64),
        };
        r[idx(d)] = v;
    }
    r
}

fn emit(a: &mut Assembler, op: &Op) {
    match *op {
        Op::Add(d, x, y) => a.add(reg(d), reg(x), reg(y)),
        Op::Sub(d, x, y) => a.sub(reg(d), reg(x), reg(y)),
        Op::And(d, x, y) => a.and(reg(d), reg(x), reg(y)),
        Op::Or(d, x, y) => a.or(reg(d), reg(x), reg(y)),
        Op::Xor(d, x, y) => a.xor(reg(d), reg(x), reg(y)),
        Op::Sll(d, x, y) => a.sll(reg(d), reg(x), reg(y)),
        Op::Srl(d, x, y) => a.srl(reg(d), reg(x), reg(y)),
        Op::Sra(d, x, y) => a.sra(reg(d), reg(x), reg(y)),
        Op::Slt(d, x, y) => a.slt(reg(d), reg(x), reg(y)),
        Op::Mul(d, x, y) => a.mul(reg(d), reg(x), reg(y)),
        Op::Div(d, x, y) => a.div(reg(d), reg(x), reg(y)),
        Op::Rem(d, x, y) => a.rem(reg(d), reg(x), reg(y)),
        Op::AddI(d, x, i) => a.addi(reg(d), reg(x), i64::from(i)),
        Op::SllI(d, x, s) => a.slli(reg(d), reg(x), i64::from(s)),
        Op::Li(d, i) => a.li(reg(d), i64::from(i)),
    }
}

proptest! {
    #[test]
    fn machine_matches_oracle(ops in prop::collection::vec(op_strategy(), 1..200)) {
        let mut a = Assembler::new("alu-oracle");
        for op in &ops {
            emit(&mut a, op);
        }
        a.halt();
        let program = a.finish().expect("straight-line program assembles");
        let mut m = Machine::new(&program);
        while m.step().is_some() {}
        prop_assert!(m.halted());
        let want = oracle(&ops);
        for i in 1..29u8 {
            let r = Reg::new(i);
            prop_assert_eq!(
                m.reg(r),
                want[i as usize],
                "register r{} diverged",
                i
            );
        }
    }
}
