//! Property-based tests for the functional simulator, driven by the
//! real workload programs.

use proptest::prelude::*;
use ssim_func::Machine;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Execution is deterministic and every record is internally
    /// consistent (control instructions report taken-ness and targets;
    /// memory instructions report addresses inside memory).
    #[test]
    fn stream_records_are_consistent(widx in 0usize..10, take in 1_000usize..40_000) {
        let w = ssim_workloads::all()[widx];
        let program = w.program();
        let mask = program.mem_size() as u64 - 1;
        let mut prev_next = program.entry();
        for e in Machine::new(&program).take(take) {
            // The stream is sequential: this PC is the previous next_pc.
            prop_assert_eq!(e.pc, prev_next);
            prev_next = e.next_pc;
            if e.is_control() {
                if e.instr.op.is_unconditional() {
                    prop_assert!(e.taken);
                }
                if !e.taken {
                    prop_assert_eq!(e.next_pc, e.pc + 1);
                }
            } else {
                prop_assert!(!e.taken);
                prop_assert_eq!(e.next_pc, e.pc + 1);
            }
            match e.class() {
                ssim_isa::InstrClass::Load | ssim_isa::InstrClass::Store => {
                    let addr = e.mem_addr.expect("memory op has an address");
                    prop_assert!(addr <= mask);
                }
                _ => prop_assert!(e.mem_addr.is_none()),
            }
        }
    }

    /// Two fresh machines produce byte-identical streams.
    #[test]
    fn machines_are_deterministic(widx in 0usize..10) {
        let w = ssim_workloads::all()[widx];
        let program = w.program();
        let a: Vec<_> = Machine::new(&program).take(20_000).collect();
        let b: Vec<_> = Machine::new(&program).take(20_000).collect();
        prop_assert_eq!(a, b);
    }
}
