//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! The build environment for this workspace has no network access, so the
//! real `proptest` cannot be fetched. This crate implements the subset of
//! its API the workspace's property tests use:
//!
//! - the [`proptest!`] macro (with optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` header),
//! - [`prop_assert!`] / [`prop_assert_eq!`],
//! - strategies: integer/float ranges, tuples, [`strategy::Just`],
//!   [`arbitrary::any`], [`collection::vec`], `prop_map`, and
//!   [`prop_oneof!`],
//! - a deterministic [`test_runner::TestRunner`] seeded per test name
//!   and case index (override the case count with `PROPTEST_CASES`).
//!
//! Differences from the real crate: no shrinking (a failing case prints
//! its inputs verbatim), and no persistence of failing seeds. Generation
//! is deterministic per (test name, case index), so failures reproduce
//! exactly on rerun.

pub mod test_runner {
    use std::fmt;

    /// Default number of cases per property (the real crate uses 256;
    /// this shim trades a little coverage for test-suite latency).
    pub const DEFAULT_CASES: u32 = 64;

    /// Runtime configuration for a `proptest!` block.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(DEFAULT_CASES);
            ProptestConfig { cases }
        }
    }

    /// Failure raised by `prop_assert!`-family macros.
    #[derive(Debug)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        pub fn fail(msg: String) -> Self {
            TestCaseError(msg)
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Deterministic per-case RNG (SplitMix64-seeded xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        pub fn from_seed(seed: u64) -> Self {
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            TestRng {
                s: [next(), next(), next(), next()],
            }
        }

        pub fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        /// Uniform in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform in `[0, n)`; `n` must be non-zero.
        pub fn below(&mut self, n: u64) -> u64 {
            ((self.next_u64() as u128 * n as u128) >> 64) as u64
        }
    }

    /// Drives the cases of one property test.
    pub struct TestRunner {
        config: ProptestConfig,
        seed: u64,
    }

    impl TestRunner {
        pub fn new(config: ProptestConfig, name: &str) -> Self {
            // FNV-1a over the test name gives a stable per-test seed.
            let mut seed = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                seed ^= b as u64;
                seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRunner { config, seed }
        }

        pub fn cases(&self) -> u32 {
            self.config.cases
        }

        pub fn rng_for(&self, case: u32) -> TestRng {
            TestRng::from_seed(self.seed ^ ((case as u64) << 32 | case as u64))
        }
    }
}

pub mod strategy {
    use super::test_runner::TestRng;
    use std::fmt::Debug;
    use std::ops::{Range, RangeInclusive};
    use std::rc::Rc;

    /// A source of values for one property-test argument.
    ///
    /// Unlike the real crate there is no value tree / shrinking: a
    /// strategy simply samples a value from an RNG.
    pub trait Strategy {
        type Value: Debug;

        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(self))
        }
    }

    /// Type-erased strategy, used by `prop_oneof!`.
    pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T: Debug> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            self.0.sample(rng)
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Debug, Clone, Copy)]
    pub struct Just<T>(pub T);

    impl<T: Clone + Debug> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// `s.prop_map(f)` adapter.
    #[derive(Clone, Copy)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Uniform choice among boxed alternatives (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T: Debug> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.arms.len() as u64) as usize;
            self.arms[i].sample(rng)
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo.wrapping_add(rng.below(span + 1) as $t)
                }
            }
        )*};
    }

    impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.next_f64() * (self.end - self.start)
        }
    }

    impl Strategy for RangeInclusive<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            let (lo, hi) = (*self.start(), *self.end());
            lo + rng.next_f64() * (hi - lo)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($s:ident/$v:ident),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($s,)+) = self;
                    ($($s.sample(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A / a, B / b);
    impl_tuple_strategy!(A / a, B / b, C / c);
    impl_tuple_strategy!(A / a, B / b, C / c, D / d);
    impl_tuple_strategy!(A / a, B / b, C / c, D / d, E / e);
    impl_tuple_strategy!(A / a, B / b, C / c, D / d, E / e, F / f);
}

pub mod arbitrary {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::fmt::Debug;
    use std::marker::PhantomData;

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary: Debug + Sized {
        fn arbitrary_sample(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_sample(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for u128 {
        fn arbitrary_sample(rng: &mut TestRng) -> Self {
            (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
        }
    }

    impl Arbitrary for i128 {
        fn arbitrary_sample(rng: &mut TestRng) -> Self {
            u128::arbitrary_sample(rng) as i128
        }
    }

    impl Arbitrary for bool {
        fn arbitrary_sample(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy returned by [`any`]. `Copy` regardless of `T`, matching
    /// the real crate's reusable `any::<T>()` handles.
    pub struct Any<T>(PhantomData<fn() -> T>);

    impl<T> Clone for Any<T> {
        fn clone(&self) -> Self {
            *self
        }
    }

    impl<T> Copy for Any<T> {}

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary_sample(rng)
        }
    }

    /// The canonical strategy for `T`'s full value range.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive bounds for a generated collection's length.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span + 1) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// `prop::collection::vec(element, size)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Everything the tests import via `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Mirror of the real crate's `prelude::prop` module shortcut.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Defines property tests. Supports an optional
/// `#![proptest_config(...)]` header followed by any number of
/// `#[test] fn name(arg in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!(
            (<$crate::test_runner::ProptestConfig as ::std::default::Default>::default())
            $($rest)*
        );
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let runner =
                $crate::test_runner::TestRunner::new(config, concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..runner.cases() {
                let mut __rng = runner.rng_for(__case);
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)+
                let __inputs = format!(
                    concat!($(stringify!($arg), " = {:?}, ",)+),
                    $(&$arg),+
                );
                let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(e) = __result {
                    panic!(
                        "property {} failed at case {}/{}:\n  {}\n  inputs: {}",
                        stringify!($name),
                        __case,
                        runner.cases(),
                        e,
                        __inputs
                    );
                }
            }
        }
        $crate::__proptest_items!(($cfg) $($rest)*);
    };
}

/// `assert!` that reports through the proptest failure path.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// `assert_eq!` that reports through the proptest failure path.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                    stringify!($left),
                    stringify!($right),
                    __l,
                    __r
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    }};
}

/// `assert_ne!` that reports through the proptest failure path.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `{} != {}`\n  both: {:?}",
                    stringify!($left),
                    stringify!($right),
                    __l
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    }};
}

/// Uniform choice among several strategies yielding the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3u32..17, y in 0usize..=4, f in -2.0f64..2.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y <= 4);
            prop_assert!((-2.0..2.0).contains(&f));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(10))]

        /// Doc comments and config headers both parse.
        #[test]
        fn tuples_and_maps_compose(
            v in prop::collection::vec((any::<bool>(), 0u64..5), 1..20),
            z in (0u32..3).prop_map(|n| n * 2),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 20);
            prop_assert!(v.iter().all(|&(_, n)| n < 5));
            prop_assert_eq!(z % 2, 0);
        }
    }

    proptest! {
        #[test]
        fn oneof_and_just_cover_all_arms(
            picks in prop::collection::vec(prop_oneof![Just(1u8), Just(2u8), Just(3u8)], 200..201)
        ) {
            for p in &picks {
                prop_assert!((1..=3).contains(p));
            }
            for want in 1u8..=3 {
                prop_assert!(picks.contains(&want), "arm {} never sampled", want);
            }
        }
    }

    #[test]
    fn same_name_same_values() {
        let runner = crate::test_runner::TestRunner::new(
            crate::test_runner::ProptestConfig::with_cases(1),
            "stable",
        );
        let mut a = runner.rng_for(0);
        let mut b = runner.rng_for(0);
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
