//! Cycle-level superscalar out-of-order processor simulation.
//!
//! This crate is the framework's `sim-outorder` equivalent: a
//! configurable superscalar, out-of-order pipeline with an instruction
//! fetch queue (IFQ), a register update unit (RUU — unified issue
//! window + reorder buffer, SimpleScalar style), a load/store queue
//! (LSQ), functional-unit pools, a hybrid branch predictor and a
//! two-level cache hierarchy.
//!
//! Two simulators share one pipeline:
//!
//! * [`ExecSim`] — **execution-driven** simulation (EDS): the reference
//!   simulator. It executes a real program through
//!   [`ssim_func::Machine`] as its correct-path oracle, predicts
//!   branches, fetches and dispatches wrong-path instructions after
//!   mispredictions, and drives live cache/TLB models.
//! * the **synthetic trace simulator** in `ssim-core` — reuses
//!   [`Core`] (the backend: dispatch/issue/writeback/commit) but feeds
//!   it statistically generated instructions whose cache and branch
//!   behaviour is pre-assigned, per §2.3 of the paper.
//!
//! Both emit the same [`SimResult`] (IPC, occupancies, branch/cache
//! statistics) and the same [`ActivityCounters`], which the
//! `ssim-power` crate turns into energy estimates.
//!
//! # Examples
//!
//! ```no_run
//! use ssim_uarch::{ExecSim, MachineConfig};
//!
//! let config = MachineConfig::baseline(); // the paper's Table 2
//! let workload = ssim_workloads::by_name("gzip").unwrap();
//! let program = workload.program();
//! let result = ExecSim::new(&config, &program).run(1_000_000);
//! println!("IPC = {:.3}", result.ipc());
//! ```

mod activity;
mod backend;
mod config;
mod exec;
mod result;

pub use activity::{ActivityCounters, Unit, UnitActivity};
pub use backend::{BranchResolution, Core, CoreScratch, DispatchInstr, DispatchOutcome, MemKind};
pub use config::{FuConfig, LatencyConfig, MachineConfig};
pub use exec::ExecSim;
pub use result::{BranchStats, OccupancyMeter, SimResult};
