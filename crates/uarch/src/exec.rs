//! The execution-driven simulator (EDS) — the reference machine.

use crate::activity::Unit;
use crate::backend::{BranchResolution, Core, DispatchInstr, DispatchOutcome, MemKind};
use crate::config::MachineConfig;
use crate::result::{BranchStats, OccupancyMeter, SimResult};
use ssim_bpred::{classify, BranchKind, BranchOutcome, HybridPredictor, Prediction};
use ssim_cache::Hierarchy;
use ssim_func::Machine;
use ssim_isa::{pc_to_addr, Instr, Program, RegId};
use std::collections::VecDeque;

/// One instruction waiting in the instruction fetch queue.
#[derive(Debug, Clone, Copy)]
struct IfqEntry {
    di: DispatchInstr,
    update: Option<BpredUpdate>,
    mispredict_marker: bool,
}

/// Deferred predictor training, applied at dispatch (the paper's
/// speculative-update-at-dispatch assumption, §2.1.3).
#[derive(Debug, Clone, Copy)]
struct BpredUpdate {
    pc: usize,
    kind: BranchKind,
    taken: bool,
    target: usize,
    pred: Prediction,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FetchMode {
    /// Fetching the correct path through the functional oracle.
    Correct,
    /// Fetching the misspeculated path from the static program image;
    /// `None` means the wrong-path PC is unknown (indirect branch with
    /// no BTB target) and fetch is stalled until recovery.
    WrongPath(Option<usize>),
}

#[derive(Debug, Clone, Copy)]
struct PendingRecovery {
    /// Backend sequence number of the mispredicted branch (known once
    /// dispatched).
    seq: Option<u64>,
    /// RAS pointer checkpoint taken right after the branch's own lookup.
    ras: (usize, usize),
}

/// Execution-driven simulation of a program on the configured machine.
///
/// This is the framework's `sim-outorder`: the correct path is executed
/// through [`ssim_func::Machine`]; branches are predicted with the
/// hybrid predictor; on a misprediction, real wrong-path instructions
/// are fetched (polluting caches and occupying pipeline resources, with
/// stale-register load addresses) until the branch resolves at
/// writeback.
///
/// See the [crate docs](crate) for an example.
#[derive(Debug)]
pub struct ExecSim<'a, 'p> {
    cfg: &'a MachineConfig,
    program: &'p Program,
    machine: Machine<'p>,
    bpred: HybridPredictor,
    hierarchy: Hierarchy,
    core: Core<'a>,
    ifq: VecDeque<IfqEntry>,
    ifq_meter: OccupancyMeter,
    branch_stats: BranchStats,
    fetch_stall_until: u64,
    mode: FetchMode,
    pending: Option<PendingRecovery>,
    oracle_done: bool,
    mem_mask: u64,
}

impl<'a, 'p> ExecSim<'a, 'p> {
    /// Creates a simulator for `program` on machine `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(cfg: &'a MachineConfig, program: &'p Program) -> Self {
        cfg.validate();
        ExecSim {
            cfg,
            program,
            machine: Machine::new(program),
            bpred: HybridPredictor::new(&cfg.bpred),
            hierarchy: Hierarchy::new(&cfg.hierarchy),
            core: Core::new(cfg),
            ifq: VecDeque::with_capacity(cfg.ifq_size),
            ifq_meter: OccupancyMeter::new(),
            branch_stats: BranchStats::default(),
            fetch_stall_until: 0,
            mode: FetchMode::Correct,
            pending: None,
            oracle_done: false,
            mem_mask: program.mem_size() as u64 - 1,
        }
    }

    /// Fast-forwards the architectural oracle by `n` instructions
    /// without simulating timing (used to skip initialisation phases).
    pub fn skip(&mut self, n: u64) -> &mut Self {
        for _ in 0..n {
            if self.machine.step().is_none() {
                self.oracle_done = true;
                break;
            }
        }
        self
    }

    /// Fast-forwards `n` instructions while *warming* the caches, TLBs
    /// and branch predictor functionally (in order, immediate update),
    /// without simulating timing.
    ///
    /// Sampling techniques (SimPoint, §4.4) need this: a representative
    /// interval simulated from cold locality structures would be biased
    /// by compulsory misses.
    pub fn warm_skip(&mut self, n: u64) -> &mut Self {
        for _ in 0..n {
            let Some(exec) = self.machine.step() else {
                self.oracle_done = true;
                break;
            };
            if !self.cfg.perfect_caches {
                self.hierarchy.access_instr(pc_to_addr(exec.pc));
                if let Some(addr) = exec.mem_addr {
                    if exec.instr.class() == ssim_isa::InstrClass::Load {
                        self.hierarchy.access_load(addr);
                    } else {
                        self.hierarchy.access_data(addr);
                    }
                }
            }
            if !self.cfg.perfect_bpred {
                if let Some(kind) = BranchKind::from_opcode(exec.instr.op) {
                    let pred = self.bpred.lookup(exec.pc, kind);
                    self.bpred
                        .update(exec.pc, kind, exec.taken, exec.next_pc, &pred);
                }
            }
        }
        self
    }

    /// Runs until `max_instructions` have committed (or the program
    /// ends) and returns the collected statistics.
    ///
    /// # Panics
    ///
    /// Panics if the pipeline stops making forward progress (an
    /// internal invariant violation).
    pub fn run(mut self, max_instructions: u64) -> SimResult {
        let mut last_progress = (0u64, 0u64); // (cycle, committed)
        loop {
            let committed = self.core.committed();
            if committed >= max_instructions
                || (self.oracle_done && self.core.is_empty() && self.ifq.is_empty())
            {
                break;
            }
            if let Some(seq) = self.core.cycle() {
                self.recover(seq);
            }
            self.dispatch();
            self.fetch();
            self.core.advance();

            let now = self.core.now();
            if committed > last_progress.1 {
                last_progress = (now, committed);
            }
            assert!(
                now - last_progress.0 < 500_000,
                "pipeline deadlock at cycle {now} (committed {committed})"
            );
        }
        let cycles = self.core.now().max(1);
        let instructions = self.core.committed();
        let (mut activity, ruu, lsq) = self.core.finish();
        activity.set_cycles(cycles);
        SimResult {
            instructions,
            cycles,
            ruu_occupancy: ruu.mean(),
            lsq_occupancy: lsq.mean(),
            ifq_occupancy: self.ifq_meter.mean(),
            branch: self.branch_stats,
            cache: self.hierarchy.stats(),
            activity,
        }
    }

    // ---- pipeline recovery ------------------------------------------------

    fn recover(&mut self, seq: u64) {
        let pending = self
            .pending
            .take()
            .expect("a resolution implies a pending recovery");
        debug_assert_eq!(
            pending.seq,
            Some(seq),
            "only one mispredict can be outstanding"
        );
        self.core.squash_after(seq);
        self.ifq.clear();
        self.bpred.ras_restore(pending.ras);
        self.mode = FetchMode::Correct;
        self.fetch_stall_until = self.core.now() + self.cfg.redirect_latency;
    }

    // ---- dispatch ----------------------------------------------------------

    fn dispatch(&mut self) {
        while let Some(entry) = self.ifq.front() {
            match self.core.try_dispatch(entry.di) {
                DispatchOutcome::Dispatched(seq) => {
                    let entry = self.ifq.pop_front().expect("front exists");
                    if let Some(u) = entry.update {
                        self.bpred.update(u.pc, u.kind, u.taken, u.target, &u.pred);
                        let now = self.core.now();
                        self.core.activity_mut().record(Unit::Bpred, now);
                    }
                    if entry.mispredict_marker {
                        let p = self.pending.as_mut().expect("mispredict implies pending");
                        p.seq = Some(seq);
                    }
                }
                DispatchOutcome::Stalled => break,
            }
        }
    }

    // ---- fetch ---------------------------------------------------------------

    /// Charges the instruction-fetch memory access; returns the stall in
    /// cycles caused by misses.
    fn fetch_access(&mut self, pc: usize) -> u64 {
        let now = self.core.now();
        self.core.activity_mut().record(Unit::Fetch, now);
        if self.cfg.perfect_caches {
            return 0;
        }
        let out = self.hierarchy.access_instr(pc_to_addr(pc));
        self.core.activity_mut().record(Unit::ICache, now);
        self.core.activity_mut().record(Unit::Itlb, now);
        let mut stall = 0;
        if out.l1_miss {
            self.core.activity_mut().record(Unit::L2, now);
            stall += if out.l2_miss {
                self.cfg.lat.mem
            } else {
                self.cfg.lat.l2_hit
            };
        }
        if out.tlb_miss {
            stall += self.cfg.lat.tlb_miss;
        }
        stall
    }

    /// Resolves a data access: returns (load latency, dependence
    /// address). `is_load` selects load-rate accounting: wrong-path
    /// loads evolve the cache state but are excluded from the
    /// correct-path load miss rate.
    fn data_access(&mut self, addr: u64, is_load: bool) -> (u64, u64) {
        let now = self.core.now();
        if self.cfg.perfect_caches {
            return (1 + self.cfg.lat.l1d_hit, addr >> 3);
        }
        let out = if is_load {
            self.hierarchy.access_load(addr)
        } else {
            self.hierarchy.access_data(addr)
        };
        self.core.activity_mut().record(Unit::Dtlb, now);
        let mut lat = if out.l1_miss {
            self.core.activity_mut().record(Unit::L2, now);
            if out.l2_miss {
                self.cfg.lat.mem
            } else {
                self.cfg.lat.l2_hit
            }
        } else {
            self.cfg.lat.l1d_hit
        };
        if out.tlb_miss {
            lat += self.cfg.lat.tlb_miss;
        }
        // +1 for address generation; stores don't carry a latency.
        (1 + lat, addr >> 3)
    }

    fn build_dispatch(
        &mut self,
        instr: &Instr,
        mem_addr: Option<u64>,
        wrong_path: bool,
    ) -> DispatchInstr {
        let mut srcs = [None, None];
        for (i, s) in instr.sources().enumerate().take(2) {
            srcs[i] = Some(s);
        }
        let (mem, mem_dep_addr) = match (instr.class(), mem_addr) {
            (ssim_isa::InstrClass::Load, Some(addr)) => {
                let (lat, dep) = self.data_access(addr, !wrong_path);
                (Some(MemKind::Load { latency: lat }), Some(dep))
            }
            (ssim_isa::InstrClass::Store, Some(addr)) => {
                // Stores evolve the cache state (write-allocate) exactly
                // like the profiler's in-order pass, but their latency is
                // hidden by the store buffer.
                if !self.cfg.perfect_caches {
                    let now = self.core.now();
                    let out = self.hierarchy.access_data(addr);
                    self.core.activity_mut().record(Unit::Dtlb, now);
                    if out.l1_miss {
                        self.core.activity_mut().record(Unit::L2, now);
                    }
                }
                (Some(MemKind::Store), Some(addr >> 3))
            }
            _ => (None, None),
        };
        let mem_dep_addr = if std::env::var("SSIM_NO_MEMDEP").is_ok() {
            None
        } else {
            mem_dep_addr
        };
        DispatchInstr {
            class: Some(instr.class()),
            srcs,
            dep_dists: [None, None],
            dest: instr.dest,
            mem,
            mem_dep_addr,
            branch: BranchResolution::None,
            wrong_path,
            // EDS resolves WAW/WAR hazards through the backend's own
            // register tables; distances are a synthetic-mode input.
            anti_dep_dists: [None, None],
        }
    }

    fn fetch(&mut self) {
        let now = self.core.now();
        if now < self.fetch_stall_until {
            self.ifq_meter.sample(self.ifq.len() as u64);
            return;
        }
        let mut budget = self.cfg.fetch_width();
        while budget > 0 && self.ifq.len() < self.cfg.ifq_size {
            let stop = match self.mode {
                FetchMode::Correct => self.fetch_correct(),
                FetchMode::WrongPath(pc) => self.fetch_wrong(pc),
            };
            budget -= 1;
            if stop {
                break;
            }
        }
        self.ifq_meter.sample(self.ifq.len() as u64);
    }

    /// Fetches one correct-path instruction; returns `true` if fetch
    /// must stop for this cycle.
    fn fetch_correct(&mut self) -> bool {
        let Some(exec) = self.machine.step() else {
            self.oracle_done = true;
            return true;
        };
        let now = self.core.now();
        let stall = self.fetch_access(exec.pc);
        if stall > 0 {
            self.fetch_stall_until = now + stall;
        }
        let mut di = self.build_dispatch(&exec.instr, exec.mem_addr, false);
        let mut update = None;
        let mut mispredict_marker = false;
        let mut stop = stall > 0;

        if let Some(kind) = BranchKind::from_opcode(exec.instr.op) {
            self.branch_stats.branches += 1;
            if exec.taken {
                self.branch_stats.taken += 1;
            }
            if self.cfg.perfect_bpred {
                self.branch_stats.correct += 1;
                // A taken branch still ends the fetch group.
                stop |= exec.taken;
            } else {
                self.core.activity_mut().record(Unit::Bpred, now);
                let pred = self.bpred.lookup(exec.pc, kind);
                let outcome = classify(kind, &pred, exec.taken, exec.next_pc);
                update = Some(BpredUpdate {
                    pc: exec.pc,
                    kind,
                    taken: exec.taken,
                    target: exec.next_pc,
                    pred,
                });
                match outcome {
                    BranchOutcome::Correct => {
                        self.branch_stats.correct += 1;
                        stop |= pred.taken;
                    }
                    BranchOutcome::FetchRedirect => {
                        self.branch_stats.redirects += 1;
                        self.fetch_stall_until = now + stall + self.cfg.fetch_redirect_penalty;
                        stop = true;
                    }
                    BranchOutcome::Mispredict => {
                        self.branch_stats.mispredicts += 1;
                        di.branch = BranchResolution::Mispredict;
                        mispredict_marker = true;
                        // Where does the wrong path start? The predicted
                        // target if the direction was (wrongly) taken —
                        // falling back to the decoded target for direct
                        // branches — or the fall-through otherwise.
                        let wrong_pc = if pred.taken {
                            pred.target.or(exec.instr.target)
                        } else {
                            Some(exec.pc + 1)
                        };
                        self.pending = Some(PendingRecovery {
                            seq: None,
                            ras: self.bpred.ras_checkpoint(),
                        });
                        self.mode = FetchMode::WrongPath(wrong_pc);
                        stop = true;
                    }
                }
            }
        }
        self.ifq.push_back(IfqEntry {
            di,
            update,
            mispredict_marker,
        });
        stop
    }

    /// Fetches one wrong-path instruction; returns `true` if fetch must
    /// stop for this cycle.
    fn fetch_wrong(&mut self, pc: Option<usize>) -> bool {
        let Some(pc) = pc else {
            return true; // unknown wrong-path target: stall until recovery
        };
        let Some(instr) = self.program.instr(pc).copied() else {
            self.mode = FetchMode::WrongPath(None);
            return true; // ran off the code image
        };
        let now = self.core.now();
        let stall = self.fetch_access(pc);
        if stall > 0 {
            self.fetch_stall_until = now + stall;
        }
        // Stale-register address approximation for wrong-path memory
        // accesses (the oracle's architectural values stand in for the
        // values a real pipeline would have had in flight).
        let mem_addr = match instr.class() {
            ssim_isa::InstrClass::Load | ssim_isa::InstrClass::Store => {
                let base = match instr.srcs[0] {
                    Some(RegId::Int(r)) => self.machine.reg(r),
                    _ => 0,
                };
                Some(base.wrapping_add(instr.imm as u64) & self.mem_mask)
            }
            _ => None,
        };
        let di = self.build_dispatch(&instr, mem_addr, true);
        let mut stop = stall > 0;

        let mut next = pc + 1;
        if let Some(kind) = BranchKind::from_opcode(instr.op) {
            if self.cfg.perfect_bpred {
                // Perfect prediction has no opinion on the wrong path;
                // fall through.
            } else {
                self.core.activity_mut().record(Unit::Bpred, now);
                let pred = self.bpred.lookup(pc, kind);
                if pred.taken {
                    stop = true;
                    match pred.target.or(instr.target) {
                        Some(t) => next = t,
                        None => {
                            self.ifq.push_back(IfqEntry {
                                di,
                                update: None,
                                mispredict_marker: false,
                            });
                            self.mode = FetchMode::WrongPath(None);
                            return true;
                        }
                    }
                }
            }
        }
        self.mode = FetchMode::WrongPath(Some(next));
        self.ifq.push_back(IfqEntry {
            di,
            update: None,
            mispredict_marker: false,
        });
        stop
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssim_isa::{Assembler, Reg};

    fn loop_program(iters: i64) -> Program {
        let mut a = Assembler::new("loop");
        let (i, n, acc) = (Reg::R1, Reg::R2, Reg::R3);
        a.li(n, iters);
        let top = a.here_label();
        a.addi(i, i, 1);
        a.add(acc, acc, i);
        a.xori(acc, acc, 3);
        a.blt(i, n, top);
        a.halt();
        a.finish().unwrap()
    }

    #[test]
    fn simple_loop_reaches_decent_ipc() {
        let program = loop_program(20_000);
        let result = ExecSim::new(&MachineConfig::baseline(), &program).run(u64::MAX);
        assert!(result.instructions > 79_000, "got {}", result.instructions);
        let ipc = result.ipc();
        // The loop has a 2-op dependence chain per iteration and a
        // well-predicted back edge: IPC should be comfortably above 1.
        assert!(ipc > 1.0, "IPC {ipc} too low for a trivial loop");
        assert!(ipc <= 8.0, "IPC {ipc} exceeds machine width");
    }

    #[test]
    fn perfect_flags_only_improve_performance() {
        let program = loop_program(10_000);
        let base = ExecSim::new(&MachineConfig::baseline(), &program).run(u64::MAX);
        let mut cfg = MachineConfig::baseline();
        cfg.perfect_caches = true;
        cfg.perfect_bpred = true;
        let perfect = ExecSim::new(&cfg, &program).run(u64::MAX);
        assert!(
            perfect.ipc() >= base.ipc() * 0.99,
            "perfect structures can't hurt"
        );
        assert_eq!(perfect.branch.mispredicts, 0);
    }

    #[test]
    fn branch_stats_track_the_loop_branch() {
        let program = loop_program(5_000);
        let result = ExecSim::new(&MachineConfig::baseline(), &program).run(u64::MAX);
        assert!(result.branch.branches >= 5_000);
        assert!(result.branch.taken >= 4_999);
        // A biased loop branch is nearly always predicted.
        let rate = result.branch.mispredicts as f64 / result.branch.branches as f64;
        assert!(rate < 0.05, "mispredict rate {rate} too high for a loop");
    }

    #[test]
    fn narrow_machine_is_slower() {
        let program = loop_program(10_000);
        let wide = ExecSim::new(&MachineConfig::baseline(), &program).run(u64::MAX);
        let narrow_cfg = MachineConfig::baseline().with_width(2);
        let narrow = ExecSim::new(&narrow_cfg, &program).run(u64::MAX);
        assert!(
            narrow.ipc() <= wide.ipc() + 0.01,
            "narrow {} vs wide {}",
            narrow.ipc(),
            wide.ipc()
        );
    }

    #[test]
    fn skip_fast_forwards_without_cycles() {
        let program = loop_program(10_000);
        let cfg = MachineConfig::baseline();
        let mut sim = ExecSim::new(&cfg, &program);
        sim.skip(1_000);
        let result = sim.run(u64::MAX);
        assert!(
            result.instructions < 40_000 - 900,
            "skipped instructions don't commit"
        );
    }

    #[test]
    fn mispredict_heavy_code_runs_and_recovers() {
        // Data-dependent branch on a PRNG bit: ~50% mispredicts.
        let mut a = Assembler::new("coin");
        let (x, i, n, t, acc) = (Reg::R1, Reg::R2, Reg::R3, Reg::R4, Reg::R5);
        a.li(x, 0x12345);
        a.li(n, 4_000);
        let top = a.here_label();
        let skip = a.label();
        a.slli(t, x, 13);
        a.xor(x, x, t);
        a.srli(t, x, 7);
        a.xor(x, x, t);
        a.slli(t, x, 17);
        a.xor(x, x, t);
        a.andi(t, x, 1);
        a.beq(t, Reg::R0, skip);
        a.addi(acc, acc, 1);
        a.bind(skip).unwrap();
        a.addi(i, i, 1);
        a.blt(i, n, top);
        a.halt();
        let program = a.finish().unwrap();
        let result = ExecSim::new(&MachineConfig::baseline(), &program).run(u64::MAX);
        assert!(result.instructions > 30_000);
        let rate = result.branch.mispredicts as f64 / result.branch.branches as f64;
        assert!(
            rate > 0.10,
            "coin-flip branch must mispredict, rate = {rate}"
        );
        // And the machine must slow down accordingly.
        assert!(result.ipc() < 4.0, "IPC {} implausibly high", result.ipc());
    }

    #[test]
    fn icache_pressure_reduces_ipc() {
        let program = loop_program(10_000);
        let base = ExecSim::new(&MachineConfig::baseline(), &program).run(u64::MAX);
        let mut tiny = MachineConfig::baseline();
        // Shrink L1I to 64 bytes, 1-way: every block fights.
        tiny.hierarchy.l1i = ssim_cache::CacheConfig::new(64, 1, 32);
        let pressured = ExecSim::new(&tiny, &program).run(u64::MAX);
        // The loop fits in two blocks; with round-robin conflict this
        // may still hit, so just require it not to be faster.
        assert!(pressured.ipc() <= base.ipc() + 0.01);
    }
}
