//! The shared out-of-order pipeline backend: dispatch, issue,
//! writeback, commit.
//!
//! [`Core`] models a SimpleScalar-style register update unit (RUU): a
//! unified issue window and reorder buffer, plus a load/store queue.
//! Dependencies are expressed either through architectural registers
//! (execution-driven simulation renames them internally) or through
//! **dependency distances** (synthetic trace simulation, §2.2 step 4 of
//! the paper); both resolve to producer *sequence numbers* at dispatch.

use crate::activity::{ActivityCounters, Unit};
use crate::config::MachineConfig;
use crate::result::OccupancyMeter;
use ssim_isa::{InstrClass, RegId};
use std::collections::VecDeque;

/// Memory behaviour of a dispatched instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemKind {
    /// A load with its full execute latency (address generation +
    /// memory access) already resolved.
    Load {
        /// Total execute latency in cycles.
        latency: u64,
    },
    /// A store (executes as address generation; data is written to the
    /// cache at commit).
    Store,
}

/// How a control instruction resolves at writeback.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BranchResolution {
    /// Not a branch, or predicted correctly: no pipeline action.
    #[default]
    None,
    /// Mispredicted: the core reports the branch's sequence number when
    /// it resolves so the driver can squash and redirect fetch.
    Mispredict,
}

/// One instruction handed to the backend.
#[derive(Debug, Clone, Copy, Default)]
pub struct DispatchInstr {
    /// Semantic class (selects functional unit and latency).
    pub class: Option<InstrClass>,
    /// Architectural source registers (execution-driven mode).
    pub srcs: [Option<RegId>; 2],
    /// Dependency distances (synthetic mode): operand *p* depends on the
    /// instruction `dist` positions earlier in the dispatch stream.
    pub dep_dists: [Option<u32>; 2],
    /// Architectural destination register (execution-driven mode).
    pub dest: Option<RegId>,
    /// Memory behaviour.
    pub mem: Option<MemKind>,
    /// Word-granularity effective address, for store→load dependence
    /// detection (execution-driven mode).
    pub mem_dep_addr: Option<u64>,
    /// Branch resolution behaviour at writeback.
    pub branch: BranchResolution,
    /// Whether this instruction is from a misspeculated path (occupies
    /// resources but never commits and never triggers recovery).
    pub wrong_path: bool,
    /// Synthetic-mode anti-dependency distances `(WAW, WAR)`, used only
    /// when the machine models register hazards without renaming
    /// (`MachineConfig::model_anti_deps`).
    pub anti_dep_dists: [Option<u32>; 2],
}

/// Result of a dispatch attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DispatchOutcome {
    /// Accepted; the instruction got this sequence number.
    Dispatched(u64),
    /// Structural stall: RUU (or LSQ, for memory operations) full.
    Stalled,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Waiting,
    Issued { done: u64 },
    Done,
}

#[derive(Debug, Clone)]
struct Entry {
    seq: u64,
    class: InstrClass,
    deps: [Option<u64>; 2],
    anti_deps: [Option<u64>; 2],
    mem_dep: Option<u64>,
    dest: Option<RegId>,
    prev_writer: Option<u64>,
    mem: Option<MemKind>,
    mem_addr: Option<u64>,
    state: State,
    branch: BranchResolution,
    wrong_path: bool,
}

/// The out-of-order backend shared by execution-driven and synthetic
/// simulation.
///
/// Drive it one cycle at a time:
///
/// 1. [`Core::cycle`] — writeback (wakeup), issue, commit; returns the
///    sequence number of a correct-path mispredicted branch that
///    resolved this cycle, if any;
/// 2. on a resolution, call [`Core::squash_after`] and redirect fetch;
/// 3. [`Core::try_dispatch`] up to `decode_width` instructions;
/// 4. [`Core::advance`] to start the next cycle.
#[derive(Debug, Clone)]
pub struct Core<'a> {
    cfg: &'a MachineConfig,
    entries: VecDeque<Entry>,
    front_seq: u64,
    next_seq: u64,
    lsq_used: usize,
    dispatched_this_cycle: usize,
    cycle: u64,
    committed: u64,
    rename: [Option<u64>; RegId::DENSE_COUNT],
    last_reader: [Option<u64>; RegId::DENSE_COUNT],
    activity: ActivityCounters,
    ruu_meter: OccupancyMeter,
    lsq_meter: OccupancyMeter,
}

impl<'a> Core<'a> {
    /// Creates an empty backend for `cfg`, borrowing the configuration
    /// for the core's lifetime (sweeps build thousands of cores per
    /// config; cloning the config per core was measurable).
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see
    /// [`MachineConfig::validate`]).
    pub fn new(cfg: &'a MachineConfig) -> Self {
        cfg.validate();
        Core {
            cfg,
            entries: VecDeque::with_capacity(cfg.ruu_size),
            front_seq: 0,
            next_seq: 0,
            lsq_used: 0,
            dispatched_this_cycle: 0,
            cycle: 0,
            committed: 0,
            rename: [None; RegId::DENSE_COUNT],
            last_reader: [None; RegId::DENSE_COUNT],
            activity: ActivityCounters::new(),
            ruu_meter: OccupancyMeter::new(),
            lsq_meter: OccupancyMeter::new(),
        }
    }

    /// Current cycle number.
    pub fn now(&self) -> u64 {
        self.cycle
    }

    /// Correct-path instructions committed so far.
    pub fn committed(&self) -> u64 {
        self.committed
    }

    /// In-flight instructions (RUU occupancy).
    pub fn in_flight(&self) -> usize {
        self.entries.len()
    }

    /// Whether the backend holds no instructions.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Mutable access to the shared activity counters (the fetch-side
    /// driver records its own units here).
    pub fn activity_mut(&mut self) -> &mut ActivityCounters {
        &mut self.activity
    }

    fn execute_latency(&self, e: &Entry) -> u64 {
        let lat = &self.cfg.lat;
        match e.mem {
            Some(MemKind::Load { latency }) => latency,
            Some(MemKind::Store) => 1,
            None => match e.class {
                InstrClass::IntAlu | InstrClass::IntCondBranch | InstrClass::IndirectBranch => {
                    lat.int_alu
                }
                InstrClass::IntMul => lat.int_mul,
                InstrClass::IntDiv => lat.int_div,
                InstrClass::FpAlu | InstrClass::FpCondBranch => lat.fp_alu,
                InstrClass::FpMul => lat.fp_mul,
                InstrClass::FpDiv => lat.fp_div,
                InstrClass::FpSqrt => lat.fp_sqrt,
                InstrClass::Load | InstrClass::Store => 1,
            },
        }
    }

    fn fu_pool(class: InstrClass, mem: Option<MemKind>) -> usize {
        if mem.is_some() {
            return 1; // load/store ports
        }
        match class {
            InstrClass::Load | InstrClass::Store => 1,
            InstrClass::IntAlu | InstrClass::IntCondBranch | InstrClass::IndirectBranch => 0,
            InstrClass::IntMul | InstrClass::IntDiv => 2,
            InstrClass::FpAlu | InstrClass::FpCondBranch => 3,
            InstrClass::FpMul | InstrClass::FpDiv | InstrClass::FpSqrt => 4,
        }
    }

    fn dep_satisfied(&self, dep: Option<u64>) -> bool {
        match dep {
            None => true,
            Some(seq) => {
                if seq < self.front_seq {
                    return true; // committed (or squashed) long ago
                }
                match self.entries.get((seq - self.front_seq) as usize) {
                    Some(e) => e.state == State::Done,
                    None => true, // produced by a squashed instruction
                }
            }
        }
    }

    /// Runs writeback, issue and commit for the current cycle.
    ///
    /// Returns the sequence number of the oldest correct-path
    /// mispredicted branch that resolved this cycle; the driver must
    /// respond with [`Core::squash_after`] and a fetch redirect.
    pub fn cycle(&mut self) -> Option<u64> {
        let now = self.cycle;
        let mut resolved = None;

        // ---- writeback: complete finished executions, wake dependents.
        for i in 0..self.entries.len() {
            let e = &mut self.entries[i];
            if let State::Issued { done } = e.state {
                if done <= now {
                    e.state = State::Done;
                    self.activity.record(Unit::Ruu, now);
                    if e.dest.is_some() {
                        self.activity.record(Unit::RegFile, now);
                    }
                    if e.branch == BranchResolution::Mispredict && !e.wrong_path {
                        resolved.get_or_insert(e.seq);
                    }
                }
            }
        }

        // ---- issue: oldest-first selection under width and FU limits.
        let mut issued = 0;
        let mut fu_used = [0usize; 5];
        let fu_limits = [
            self.cfg.fu.int_alu,
            self.cfg.fu.ld_st,
            self.cfg.fu.int_muldiv,
            self.cfg.fu.fp_add,
            self.cfg.fu.fp_muldiv,
        ];
        for i in 0..self.entries.len() {
            if issued >= self.cfg.issue_width {
                break;
            }
            let e = &self.entries[i];
            if e.state != State::Waiting {
                continue;
            }
            let pool = Self::fu_pool(e.class, e.mem);
            if fu_used[pool] >= fu_limits[pool] {
                if self.cfg.in_order_issue {
                    break; // structural hazard stalls an in-order pipe
                }
                continue;
            }
            if !(self.dep_satisfied(e.deps[0])
                && self.dep_satisfied(e.deps[1])
                && self.dep_satisfied(e.anti_deps[0])
                && self.dep_satisfied(e.anti_deps[1])
                && self.dep_satisfied(e.mem_dep))
            {
                if self.cfg.in_order_issue {
                    break; // program-order issue: stall behind the head
                }
                continue;
            }
            let latency = self.execute_latency(e);
            let class = e.class;
            let is_mem = e.mem.is_some();
            let is_load = matches!(e.mem, Some(MemKind::Load { .. }));
            let e = &mut self.entries[i];
            e.state = State::Issued {
                done: now + latency,
            };
            issued += 1;
            fu_used[pool] += 1;
            self.activity.record(Unit::Issue, now);
            if is_mem {
                self.activity.record(Unit::Lsq, now);
                if is_load {
                    self.activity.record(Unit::DCache, now);
                }
            }
            match class {
                InstrClass::FpAlu
                | InstrClass::FpMul
                | InstrClass::FpDiv
                | InstrClass::FpSqrt
                | InstrClass::FpCondBranch => self.activity.record(Unit::FpAlu, now),
                InstrClass::Load | InstrClass::Store => {}
                _ => self.activity.record(Unit::IntAlu, now),
            }
        }

        // ---- commit: in-order retirement of completed instructions.
        let mut retired = 0;
        while retired < self.cfg.commit_width {
            match self.entries.front() {
                // Wrong-path instructions never retire: when one reaches
                // the head, its mispredicted branch has already resolved
                // (same cycle) and the driver is about to squash it.
                Some(e) if e.wrong_path => break,
                Some(e) if e.state == State::Done => {
                    let is_store = matches!(e.mem, Some(MemKind::Store));
                    let is_mem = e.mem.is_some();
                    let e = self.entries.pop_front().expect("front exists");
                    self.front_seq = e.seq + 1;
                    if is_mem {
                        self.lsq_used -= 1;
                    }
                    if is_store {
                        self.activity.record(Unit::DCache, now);
                    }
                    self.activity.record(Unit::Ruu, now);
                    self.committed += 1;
                    retired += 1;
                }
                _ => break,
            }
        }

        // ---- occupancy sampling.
        self.ruu_meter.sample(self.entries.len() as u64);
        self.lsq_meter.sample(self.lsq_used as u64);

        resolved
    }

    /// Attempts to dispatch one instruction into the RUU/LSQ.
    ///
    /// At most `decode_width` instructions are accepted per cycle;
    /// further attempts stall.
    pub fn try_dispatch(&mut self, instr: DispatchInstr) -> DispatchOutcome {
        if self.dispatched_this_cycle >= self.cfg.decode_width {
            return DispatchOutcome::Stalled;
        }
        if self.entries.len() >= self.cfg.ruu_size {
            return DispatchOutcome::Stalled;
        }
        let is_mem = instr.mem.is_some();
        if is_mem && self.lsq_used >= self.cfg.lsq_size {
            return DispatchOutcome::Stalled;
        }
        let seq = self.next_seq;
        let now = self.cycle;
        let class = instr.class.unwrap_or(InstrClass::IntAlu);

        // Resolve register dependencies through the rename map, or
        // dependency distances through sequence arithmetic.
        let mut deps = [None, None];
        for (p, slot) in deps.iter_mut().enumerate() {
            *slot = match (instr.srcs[p], instr.dep_dists[p]) {
                (Some(reg), _) => self.rename[reg.dense_index()],
                // A distance of zero would be a self-dependence; the
                // synthetic generator never emits it, but guard anyway.
                (None, Some(0)) => None,
                (None, Some(dist)) => seq.checked_sub(u64::from(dist)),
                (None, None) => None,
            };
        }

        // WAW/WAR hazards (machines without register renaming): the
        // write must wait for the previous writer and the previous
        // readers of its destination; synthetic mode supplies distances.
        let mut anti_deps = [None, None];
        if self.cfg.model_anti_deps {
            if let Some(d) = instr.dest {
                anti_deps[0] = self.rename[d.dense_index()]; // WAW
                anti_deps[1] = self.last_reader[d.dense_index()]; // WAR
            }
            for (i, slot) in anti_deps.iter_mut().enumerate() {
                if slot.is_none() {
                    *slot = match instr.anti_dep_dists[i] {
                        Some(0) | None => None,
                        Some(dist) => seq.checked_sub(u64::from(dist)),
                    };
                }
            }
            for src in instr.srcs.iter().flatten() {
                self.last_reader[src.dense_index()] = Some(seq);
            }
        }

        // Store→load memory dependence: a load depends on the youngest
        // older store to the same word that is still in flight, and
        // receives its value through the store buffer (forwarding) —
        // 1-cycle data latency instead of a cache access.
        let mut mem = instr.mem;
        let mem_dep = match (instr.mem, instr.mem_dep_addr) {
            (Some(MemKind::Load { .. }), Some(addr)) => {
                let fwd = self
                    .entries
                    .iter()
                    .rev()
                    .find(|e| matches!(e.mem, Some(MemKind::Store)) && e.mem_addr == Some(addr))
                    .map(|e| (e.seq, e.state == State::Done));
                match fwd {
                    Some((seq, done)) => {
                        mem = Some(MemKind::Load { latency: 2 });
                        (!done).then_some(seq)
                    }
                    None => None,
                }
            }
            _ => None,
        };

        // Rename-map update with an undo log for squash recovery.
        let mut prev_writer = None;
        if let Some(d) = instr.dest {
            let slot = &mut self.rename[d.dense_index()];
            prev_writer = *slot;
            *slot = Some(seq);
        }

        self.entries.push_back(Entry {
            seq,
            class,
            deps,
            anti_deps,
            mem_dep,
            dest: instr.dest,
            prev_writer,
            mem,
            mem_addr: instr.mem_dep_addr,
            state: State::Waiting,
            branch: instr.branch,
            wrong_path: instr.wrong_path,
        });
        self.next_seq += 1;
        if is_mem {
            self.lsq_used += 1;
        }
        self.dispatched_this_cycle += 1;
        self.activity.record(Unit::Dispatch, now);
        self.activity.record(Unit::Ruu, now);
        self.activity.record_n(
            Unit::RegFile,
            now,
            instr.srcs.iter().flatten().count() as u64,
        );
        if is_mem {
            self.activity.record(Unit::Lsq, now);
        }
        DispatchOutcome::Dispatched(seq)
    }

    /// Squashes every instruction younger than `seq`, unwinding the
    /// rename map. Returns the number of squashed instructions.
    pub fn squash_after(&mut self, seq: u64) -> usize {
        let mut squashed = 0;
        while let Some(back) = self.entries.back() {
            if back.seq <= seq {
                break;
            }
            let e = self.entries.pop_back().expect("back exists");
            if let Some(d) = e.dest {
                self.rename[d.dense_index()] = e.prev_writer;
            }
            if e.mem.is_some() {
                self.lsq_used -= 1;
            }
            squashed += 1;
        }
        self.next_seq = seq + 1;
        // Reader tracking must not survive the squash: sequence numbers
        // are reused, so a stale reader entry would alias a *future*
        // instruction and (under in-order issue) deadlock the pipe.
        for slot in &mut self.last_reader {
            if slot.is_some_and(|s| s > seq) {
                *slot = None;
            }
        }
        squashed
    }

    /// Advances to the next cycle.
    pub fn advance(&mut self) {
        self.cycle += 1;
        self.dispatched_this_cycle = 0;
    }

    /// Finalises counters and hands back activity + occupancy meters.
    pub fn finish(mut self) -> (ActivityCounters, OccupancyMeter, OccupancyMeter) {
        self.activity.set_cycles(self.cycle);
        (self.activity, self.ruu_meter, self.lsq_meter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> MachineConfig {
        let mut c = MachineConfig::baseline();
        c.decode_width = 4;
        c.issue_width = 4;
        c.commit_width = 4;
        c.ruu_size = 8;
        c.lsq_size = 4;
        c
    }

    fn alu() -> DispatchInstr {
        DispatchInstr {
            class: Some(InstrClass::IntAlu),
            ..Default::default()
        }
    }

    fn alu_rw(dest: RegId, src: RegId) -> DispatchInstr {
        DispatchInstr {
            class: Some(InstrClass::IntAlu),
            srcs: [Some(src), None],
            dest: Some(dest),
            ..Default::default()
        }
    }

    fn run_empty(core: &mut Core) -> u64 {
        let start = core.now();
        while !core.is_empty() {
            core.cycle();
            core.advance();
            assert!(core.now() - start < 10_000, "backend deadlocked");
        }
        core.now() - start
    }

    #[test]
    fn single_instruction_commits() {
        let cfg = small_cfg();
        let mut core = Core::new(&cfg);
        assert!(matches!(
            core.try_dispatch(alu()),
            DispatchOutcome::Dispatched(0)
        ));
        run_empty(&mut core);
        assert_eq!(core.committed(), 1);
    }

    #[test]
    fn dependent_chain_serialises() {
        let r1 = RegId::Int(ssim_isa::Reg::R1);
        let r2 = RegId::Int(ssim_isa::Reg::R2);
        // Chain of 6 dependent 1-cycle ALU ops: takes ~6 cycles.
        let cfg = small_cfg();
        let mut core = Core::new(&cfg);
        core.try_dispatch(alu_rw(r1, r2));
        for _ in 0..5 {
            core.advance();
            core.cycle();
            core.try_dispatch(alu_rw(r1, r1));
        }
        let cycles = run_empty(&mut core);
        assert_eq!(core.committed(), 6);
        assert!(cycles >= 2, "dependences must serialise execution");

        // Independent ops: finish much faster in a 4-wide core.
        let cfg = small_cfg();
        let mut core = Core::new(&cfg);
        for _ in 0..4 {
            core.try_dispatch(alu());
        }
        let fast = run_empty(&mut core);
        assert!(fast <= cycles, "independent ops should not be slower");
        assert_eq!(core.committed(), 4);
    }

    #[test]
    fn decode_width_limits_dispatch() {
        let cfg = small_cfg();
        let mut core = Core::new(&cfg);
        for i in 0..4 {
            assert!(
                matches!(core.try_dispatch(alu()), DispatchOutcome::Dispatched(s) if s == i),
                "first four dispatch"
            );
        }
        assert_eq!(core.try_dispatch(alu()), DispatchOutcome::Stalled);
        core.advance();
        assert!(matches!(
            core.try_dispatch(alu()),
            DispatchOutcome::Dispatched(4)
        ));
    }

    #[test]
    fn ruu_capacity_stalls_dispatch() {
        let mut cfg = small_cfg();
        cfg.ruu_size = 2;
        cfg.lsq_size = 2;
        let mut core = Core::new(&cfg);
        assert!(matches!(
            core.try_dispatch(alu()),
            DispatchOutcome::Dispatched(_)
        ));
        assert!(matches!(
            core.try_dispatch(alu()),
            DispatchOutcome::Dispatched(_)
        ));
        assert_eq!(core.try_dispatch(alu()), DispatchOutcome::Stalled);
    }

    #[test]
    fn lsq_capacity_stalls_memory_ops_only() {
        let mut cfg = small_cfg();
        cfg.lsq_size = 1;
        let mut core = Core::new(&cfg);
        let load = DispatchInstr {
            class: Some(InstrClass::Load),
            mem: Some(MemKind::Load { latency: 2 }),
            ..Default::default()
        };
        assert!(matches!(
            core.try_dispatch(load),
            DispatchOutcome::Dispatched(_)
        ));
        assert_eq!(core.try_dispatch(load), DispatchOutcome::Stalled);
        assert!(matches!(
            core.try_dispatch(alu()),
            DispatchOutcome::Dispatched(_)
        ));
    }

    #[test]
    fn long_latency_load_delays_commit() {
        let cfg = small_cfg();
        let mut core = Core::new(&cfg);
        let load = DispatchInstr {
            class: Some(InstrClass::Load),
            mem: Some(MemKind::Load { latency: 150 }),
            ..Default::default()
        };
        core.try_dispatch(load);
        let cycles = run_empty(&mut core);
        assert!(cycles >= 150, "memory latency must show up, took {cycles}");
    }

    #[test]
    fn mispredicted_branch_reports_and_squash_cleans() {
        let cfg = small_cfg();
        let mut core = Core::new(&cfg);
        let br = DispatchInstr {
            class: Some(InstrClass::IntCondBranch),
            branch: BranchResolution::Mispredict,
            ..Default::default()
        };
        let DispatchOutcome::Dispatched(bseq) = core.try_dispatch(br) else {
            panic!("dispatches")
        };
        // Wrong-path fill.
        let wp = DispatchInstr {
            class: Some(InstrClass::IntAlu),
            wrong_path: true,
            ..alu()
        };
        core.try_dispatch(wp);
        core.try_dispatch(wp);
        let mut resolved = None;
        for _ in 0..10 {
            if let Some(seq) = core.cycle() {
                resolved = Some(seq);
                break;
            }
            core.advance();
        }
        assert_eq!(resolved, Some(bseq));
        let squashed = core.squash_after(bseq);
        assert_eq!(squashed, 2);
        // The branch itself either committed in the resolving cycle or
        // is still in flight; either way only it retires.
        run_empty(&mut core);
        assert_eq!(core.committed(), 1);
    }

    #[test]
    fn squash_unwinds_rename_map() {
        let r1 = RegId::Int(ssim_isa::Reg::R1);
        let r9 = RegId::Int(ssim_isa::Reg::R9);
        let mut cfg = small_cfg();
        cfg.decode_width = 8;
        cfg.issue_width = 8;
        let mut core = Core::new(&cfg);
        // Producer of r1 (seq 0), then a "branch" (seq 1), then a
        // wrong-path overwrite of r1 (seq 2).
        core.try_dispatch(alu_rw(r1, r9));
        core.try_dispatch(alu());
        core.try_dispatch(DispatchInstr {
            wrong_path: true,
            ..alu_rw(r1, r9)
        });
        core.squash_after(1);
        // A new consumer of r1 must depend on seq 0, not on the squashed
        // seq 2 — which would otherwise alias the next dispatched seq.
        let DispatchOutcome::Dispatched(seq) = core.try_dispatch(alu_rw(r9, r1)) else {
            panic!("dispatches")
        };
        assert_eq!(seq, 2, "sequence numbers are reused after squash");
        // Drain: if the dep pointed at the squashed entry the consumer
        // would wait on itself and deadlock.
        run_empty(&mut core);
        assert_eq!(core.committed(), 3);
    }

    #[test]
    fn dep_distance_resolves_to_earlier_seq() {
        let cfg = small_cfg();
        let mut core = Core::new(&cfg);
        // seq 0: long divide producing (synthetically) a value.
        core.try_dispatch(DispatchInstr {
            class: Some(InstrClass::IntDiv),
            ..Default::default()
        });
        // seq 1: depends on distance 1 => seq 0.
        core.try_dispatch(DispatchInstr {
            class: Some(InstrClass::IntAlu),
            dep_dists: [Some(1), None],
            ..Default::default()
        });
        let cycles = run_empty(&mut core);
        assert!(
            cycles >= 20,
            "consumer must wait for the divide, took {cycles}"
        );
    }

    #[test]
    fn store_to_load_same_word_serialises() {
        let cfg = small_cfg();
        let mut core = Core::new(&cfg);
        let store = DispatchInstr {
            class: Some(InstrClass::Store),
            mem: Some(MemKind::Store),
            mem_dep_addr: Some(64),
            // Make the store wait on a divide so it stays not-done.
            dep_dists: [Some(1), None],
            ..Default::default()
        };
        core.try_dispatch(DispatchInstr {
            class: Some(InstrClass::IntDiv),
            ..Default::default()
        });
        core.try_dispatch(store);
        let load = DispatchInstr {
            class: Some(InstrClass::Load),
            mem: Some(MemKind::Load { latency: 2 }),
            mem_dep_addr: Some(64),
            ..Default::default()
        };
        core.try_dispatch(load);
        let cycles = run_empty(&mut core);
        assert!(
            cycles >= 20,
            "load must wait behind the aliasing store, took {cycles}"
        );
    }

    #[test]
    fn fu_pool_limits_throughput() {
        let mut cfg = small_cfg();
        cfg.decode_width = 8;
        cfg.issue_width = 8;
        cfg.ruu_size = 16;
        cfg.fu.fp_muldiv = 1;
        let mut core = Core::new(&cfg);
        for _ in 0..4 {
            core.try_dispatch(DispatchInstr {
                class: Some(InstrClass::FpDiv),
                ..Default::default()
            });
        }
        let cycles = run_empty(&mut core);
        // One fp divider: 4 divides must start on 4 different cycles.
        assert!(
            cycles >= 4 + 12,
            "pool limit must serialise issues, took {cycles}"
        );
    }

    #[test]
    fn in_order_issue_blocks_behind_the_head() {
        // Head: long divide. Behind it: an independent ALU op. Out of
        // order the ALU finishes early; in order it waits for the head
        // to issue first (same cycle is fine) but the *third* op behind
        // a stalled head must wait.
        let mut cfg = small_cfg();
        cfg.in_order_issue = true;
        let mut core = Core::new(&cfg);
        // A divide that waits on a (missing-producer) distance handled
        // as ready — instead make the second op depend on the divide so
        // the head is a genuine stall for op 3.
        core.try_dispatch(DispatchInstr {
            class: Some(InstrClass::IntDiv),
            ..Default::default()
        });
        core.try_dispatch(DispatchInstr {
            class: Some(InstrClass::IntAlu),
            dep_dists: [Some(1), None],
            ..Default::default()
        });
        core.try_dispatch(alu());
        let in_order_cycles = run_empty(&mut core);

        let ooo_cfg = small_cfg();
        let mut ooo = Core::new(&ooo_cfg);
        ooo.try_dispatch(DispatchInstr {
            class: Some(InstrClass::IntDiv),
            ..Default::default()
        });
        ooo.try_dispatch(DispatchInstr {
            class: Some(InstrClass::IntAlu),
            dep_dists: [Some(1), None],
            ..Default::default()
        });
        ooo.try_dispatch(alu());
        let ooo_cycles = run_empty(&mut ooo);
        assert!(
            in_order_cycles >= ooo_cycles,
            "{in_order_cycles} < {ooo_cycles}"
        );
    }

    #[test]
    fn waw_hazard_serialises_without_renaming() {
        let r1 = RegId::Int(ssim_isa::Reg::R1);
        let r2 = RegId::Int(ssim_isa::Reg::R2);
        let run = |anti: bool| -> u64 {
            let mut cfg = small_cfg();
            cfg.model_anti_deps = anti;
            let mut core = Core::new(&cfg);
            // Divide writing r1, then an independent ALU also writing r1:
            // with renaming they overlap; without, WAW serialises.
            core.try_dispatch(DispatchInstr {
                class: Some(InstrClass::IntDiv),
                dest: Some(r1),
                srcs: [Some(r2), None],
                ..Default::default()
            });
            core.try_dispatch(DispatchInstr {
                class: Some(InstrClass::IntAlu),
                dest: Some(r1),
                srcs: [Some(r2), None],
                ..Default::default()
            });
            run_empty(&mut core)
        };
        assert!(
            run(true) > run(false),
            "WAW must cost cycles without renaming"
        );
    }

    #[test]
    fn war_hazard_serialises_without_renaming() {
        let r1 = RegId::Int(ssim_isa::Reg::R1);
        let r3 = RegId::Int(ssim_isa::Reg::R3);
        let run = |anti: bool| -> u64 {
            let mut cfg = small_cfg();
            cfg.model_anti_deps = anti;
            let mut core = Core::new(&cfg);
            // A slow reader of r1 followed by a writer of r1 (WAR).
            core.try_dispatch(DispatchInstr {
                class: Some(InstrClass::IntDiv),
                dest: Some(r3),
                srcs: [Some(r1), None],
                ..Default::default()
            });
            core.try_dispatch(DispatchInstr {
                class: Some(InstrClass::IntAlu),
                dest: Some(r1),
                ..Default::default()
            });
            run_empty(&mut core)
        };
        assert!(
            run(true) > run(false),
            "WAR must cost cycles without renaming"
        );
    }

    #[test]
    fn synthetic_anti_dep_distances_serialise() {
        let mut cfg = small_cfg();
        cfg.model_anti_deps = true;
        let mut core = Core::new(&cfg);
        core.try_dispatch(DispatchInstr {
            class: Some(InstrClass::IntDiv),
            ..Default::default()
        });
        core.try_dispatch(DispatchInstr {
            class: Some(InstrClass::IntAlu),
            anti_dep_dists: [Some(1), None],
            ..Default::default()
        });
        let cycles = run_empty(&mut core);
        assert!(
            cycles >= 20,
            "synthetic WAW distance must bind, took {cycles}"
        );
    }

    #[test]
    fn occupancy_meters_accumulate() {
        let cfg = small_cfg();
        let mut core = Core::new(&cfg);
        core.try_dispatch(alu());
        run_empty(&mut core);
        let (activity, ruu, _lsq) = core.finish();
        assert!(ruu.mean() > 0.0);
        assert!(activity.unit(Unit::Dispatch).accesses == 1);
        assert!(
            activity.unit(Unit::Ruu).accesses >= 2,
            "dispatch + writeback + commit"
        );
    }
}
