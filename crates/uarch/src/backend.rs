//! The shared out-of-order pipeline backend: dispatch, issue,
//! writeback, commit.
//!
//! [`Core`] models a SimpleScalar-style register update unit (RUU): a
//! unified issue window and reorder buffer, plus a load/store queue.
//! Dependencies are expressed either through architectural registers
//! (execution-driven simulation renames them internally) or through
//! **dependency distances** (synthetic trace simulation, §2.2 step 4 of
//! the paper); both resolve to producer *sequence numbers* at dispatch.

use crate::activity::{ActivityCounters, Unit};
use crate::config::MachineConfig;
use crate::result::OccupancyMeter;
use ssim_isa::{InstrClass, RegId};

/// Memory behaviour of a dispatched instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemKind {
    /// A load with its full execute latency (address generation +
    /// memory access) already resolved.
    Load {
        /// Total execute latency in cycles.
        latency: u64,
    },
    /// A store (executes as address generation; data is written to the
    /// cache at commit).
    Store,
}

/// How a control instruction resolves at writeback.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BranchResolution {
    /// Not a branch, or predicted correctly: no pipeline action.
    #[default]
    None,
    /// Mispredicted: the core reports the branch's sequence number when
    /// it resolves so the driver can squash and redirect fetch.
    Mispredict,
}

/// One instruction handed to the backend.
#[derive(Debug, Clone, Copy, Default)]
pub struct DispatchInstr {
    /// Semantic class (selects functional unit and latency).
    pub class: Option<InstrClass>,
    /// Architectural source registers (execution-driven mode).
    pub srcs: [Option<RegId>; 2],
    /// Dependency distances (synthetic mode): operand *p* depends on the
    /// instruction `dist` positions earlier in the dispatch stream.
    pub dep_dists: [Option<u32>; 2],
    /// Architectural destination register (execution-driven mode).
    pub dest: Option<RegId>,
    /// Memory behaviour.
    pub mem: Option<MemKind>,
    /// Word-granularity effective address, for store→load dependence
    /// detection (execution-driven mode).
    pub mem_dep_addr: Option<u64>,
    /// Branch resolution behaviour at writeback.
    pub branch: BranchResolution,
    /// Whether this instruction is from a misspeculated path (occupies
    /// resources but never commits and never triggers recovery).
    pub wrong_path: bool,
    /// Synthetic-mode anti-dependency distances `(WAW, WAR)`, used only
    /// when the machine models register hazards without renaming
    /// (`MachineConfig::model_anti_deps`).
    pub anti_dep_dists: [Option<u32>; 2],
}

/// Result of a dispatch attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DispatchOutcome {
    /// Accepted; the instruction got this sequence number.
    Dispatched(u64),
    /// Structural stall: RUU (or LSQ, for memory operations) full.
    Stalled,
}

// Per-entry "hot words" — `state | pool << 2 | aux << 8` — the only
// per-entry data the issue scan touches until an instruction is
// actually ready (eight entries per cache line, one load and compare to
// skip). The aux field holds the memoised wakeup cycle while Waiting
// and the scheduled completion cycle while Issued.
const HOT_STATE: u64 = 0b11;
const HOT_WAITING: u64 = 0;
const HOT_ISSUED: u64 = 1;
const HOT_DONE: u64 = 2;
const HOT_POOL_SHIFT: u32 = 2;
const HOT_AUX_SHIFT: u32 = 8;

// Per-entry flag bits (the `flags` array), precomputed at dispatch so
// the issue/writeback/commit loops decide everything from one byte.
const F_WRONG_PATH: u8 = 1 << 0;
const F_MEM: u8 = 1 << 1;
const F_LOAD: u8 = 1 << 2;
const F_STORE: u8 = 1 << 3;
const F_DEST: u8 = 1 << 4;
/// Correct-path mispredicted branch: reports resolution at writeback.
const F_RESOLVES: u8 = 1 << 5;
const F_INT: u8 = 1 << 6;
const F_FP: u8 = 1 << 7;

/// Absent-dependency sentinel in the `deps` arrays (sequence numbers
/// stay far below it for any realistic run length).
const NO_SEQ: u64 = u64::MAX;

#[inline]
fn enc(seq: Option<u64>) -> u64 {
    seq.unwrap_or(NO_SEQ)
}

#[inline]
fn dec(seq: u64) -> Option<u64> {
    (seq != NO_SEQ).then_some(seq)
}

/// Completion timing-wheel size (a power of two): one slot per upcoming
/// cycle, so writeback drains exactly one slot per cycle instead of
/// paying heap maintenance per instruction. Latencies beyond one turn
/// are rare; their records re-arm each turn until due.
const WHEEL_SLOTS: usize = 1024;
const WHEEL_MASK: u64 = WHEEL_SLOTS as u64 - 1;

/// Tag bit on a wheel record's sequence field marking a *wakeup* record
/// (re-admit a sleeping Waiting entry to the ready set) rather than a
/// completion record. Sequence numbers stay far below bit 63.
const REC_WAKE: u64 = 1 << 63;

/// Reusable working memory for [`Core`].
///
/// Sweeps build one core per design point; reusing the window arrays
/// and the completion wheel across points keeps the hot loop off the
/// allocator. Obtain one from [`Core::finish_reuse`] and hand it to the
/// next core via [`Core::with_scratch`].
#[derive(Debug, Default)]
pub struct CoreScratch {
    hot: Vec<u64>,
    lat: Vec<u64>,
    deps: Vec<[u64; 5]>,
    flags: Vec<u8>,
    dest: Vec<u16>,
    prev_writer: Vec<u64>,
    mem_addr: Vec<u64>,
    ready: Vec<u64>,
    wheel: Vec<Vec<(u64, u64)>>,
}

/// The out-of-order backend shared by execution-driven and synthetic
/// simulation.
///
/// The instruction window is stored structure-of-arrays: entries live
/// at `seq & mask` in parallel preallocated arrays (the window is at
/// most `ruu_size` wide and the capacity is the next power of two, so
/// live sequence numbers never collide). Commit and squash are pure
/// index arithmetic on the `front_seq..next_seq` window — no queue
/// churn, no per-entry moves — and the whole window footprint is a few
/// cache-resident kilobytes.
///
/// Drive it one cycle at a time:
///
/// 1. [`Core::cycle`] — writeback (wakeup), issue, commit; returns the
///    sequence number of a correct-path mispredicted branch that
///    resolved this cycle, if any;
/// 2. on a resolution, call [`Core::squash_after`] and redirect fetch;
/// 3. [`Core::try_dispatch`] up to `decode_width` instructions;
/// 4. [`Core::advance`] to start the next cycle.
#[derive(Debug, Clone)]
pub struct Core<'a> {
    cfg: &'a MachineConfig,
    /// Packed state words, indexed by `seq & mask` (see [`HOT_STATE`]).
    hot: Vec<u64>,
    /// Execute latency, resolved once at dispatch (after store→load
    /// forwarding may have rewritten the memory behaviour).
    lat: Vec<u64>,
    /// Producer sequence numbers per entry —
    /// `[dep0, dep1, waw, war, mem_dep]`, [`NO_SEQ`] when absent.
    /// Satisfied slots are destructively cleared by the issue scan.
    deps: Vec<[u64; 5]>,
    /// Per-entry flag byte (see [`F_MEM`] and friends).
    flags: Vec<u8>,
    /// Destination register dense index (valid when [`F_DEST`]).
    dest: Vec<u16>,
    /// Rename-map undo value for the destination ([`NO_SEQ`] = none).
    prev_writer: Vec<u64>,
    /// Store address for store→load dependence detection ([`NO_SEQ`]
    /// when absent or not a store).
    mem_addr: Vec<u64>,
    /// Index mask for all window arrays (capacity − 1).
    mask: u64,
    /// Issued-but-not-complete instructions as `(done, seq)` records on
    /// a timing wheel indexed by `done & WHEEL_MASK`; writeback drains
    /// one slot per cycle. Records are validated lazily against the
    /// live entry (sequence numbers are reused after a squash).
    wheel: Vec<Vec<(u64, u64)>>,
    /// Occupancy bitmap over the timing wheel (one bit per slot): the
    /// quiet-cycle probe finds the next completion with a handful of
    /// word scans instead of walking 1024 slots. Bits are set on every
    /// arm and cleared when a drain leaves the slot empty; a stale bit
    /// (squashed record) costs one spurious wake, never a missed one.
    wheel_bits: [u64; WHEEL_SLOTS / 64],
    /// Ready bitmap (out-of-order configs): one bit per window slot,
    /// set when the entry is Waiting and its memoised wakeup has been
    /// reached — the only entries the issue scan examines. Blocked
    /// probes clear the bit and schedule a tagged wakeup record on the
    /// wheel, so sleeping entries cost nothing per cycle.
    ready: Vec<u64>,
    /// Whether the ready-bitmap scheduler is active (out-of-order
    /// issue). In-order pipes gate issue on the oldest Waiting entry —
    /// including sleeping ones — so they use a linear prefix scan.
    event_sched: bool,
    /// In-order scan hint: every entry below it is Issued or Done.
    first_waiting: usize,
    front_seq: u64,
    next_seq: u64,
    lsq_used: usize,
    dispatched_this_cycle: usize,
    cycle: u64,
    committed: u64,
    rename: [Option<u64>; RegId::DENSE_COUNT],
    last_reader: [Option<u64>; RegId::DENSE_COUNT],
    activity: ActivityCounters,
    ruu_meter: OccupancyMeter,
    lsq_meter: OccupancyMeter,
    /// `cycle()`'s verdict on the cycle it just ran: `0` if anything
    /// happened (writeback, issue or commit), otherwise the earliest
    /// future cycle at which the core could possibly act (see
    /// [`Core::quiet_until`]).
    quiet_until: u64,
}

impl<'a> Core<'a> {
    /// Creates an empty backend for `cfg`, borrowing the configuration
    /// for the core's lifetime (sweeps build thousands of cores per
    /// config; cloning the config per core was measurable).
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see
    /// [`MachineConfig::validate`]).
    pub fn new(cfg: &'a MachineConfig) -> Self {
        Self::with_scratch(cfg, CoreScratch::default())
    }

    /// Like [`Core::new`], but reuses previously allocated working
    /// memory (see [`CoreScratch`]).
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see
    /// [`MachineConfig::validate`]).
    pub fn with_scratch(cfg: &'a MachineConfig, scratch: CoreScratch) -> Self {
        cfg.validate();
        let CoreScratch {
            mut hot,
            mut lat,
            mut deps,
            mut flags,
            mut dest,
            mut prev_writer,
            mut mem_addr,
            mut ready,
            mut wheel,
        } = scratch;
        // Stale array contents need no clearing: every read is gated on
        // membership in the `front_seq..next_seq` window, and dispatch
        // rewrites an entry's slots before it can enter the window.
        let cap = cfg.ruu_size.next_power_of_two().max(64).max(hot.len());
        hot.resize(cap, 0);
        lat.resize(cap, 0);
        deps.resize(cap, [NO_SEQ; 5]);
        flags.resize(cap, 0);
        dest.resize(cap, 0);
        prev_writer.resize(cap, NO_SEQ);
        mem_addr.resize(cap, NO_SEQ);
        // A drained run always leaves the ready bitmap empty (issue and
        // squash both clear bits), so reuse needs no re-zeroing.
        ready.resize(cap / 64, 0);
        if wheel.len() != WHEEL_SLOTS {
            wheel = vec![Vec::new(); WHEEL_SLOTS];
        } else {
            for slot in &mut wheel {
                slot.clear();
            }
        }
        Core {
            cfg,
            hot,
            lat,
            deps,
            flags,
            dest,
            prev_writer,
            mem_addr,
            mask: cap as u64 - 1,
            ready,
            event_sched: !cfg.in_order_issue,
            wheel,
            wheel_bits: [0; WHEEL_SLOTS / 64],
            first_waiting: 0,
            front_seq: 0,
            next_seq: 0,
            lsq_used: 0,
            dispatched_this_cycle: 0,
            cycle: 0,
            committed: 0,
            rename: [None; RegId::DENSE_COUNT],
            last_reader: [None; RegId::DENSE_COUNT],
            activity: ActivityCounters::new(),
            ruu_meter: OccupancyMeter::new(),
            lsq_meter: OccupancyMeter::new(),
            quiet_until: 0,
        }
    }

    /// Current cycle number.
    pub fn now(&self) -> u64 {
        self.cycle
    }

    /// Correct-path instructions committed so far.
    pub fn committed(&self) -> u64 {
        self.committed
    }

    /// In-flight instructions (RUU occupancy).
    pub fn in_flight(&self) -> usize {
        (self.next_seq - self.front_seq) as usize
    }

    /// Whether the backend holds no instructions.
    pub fn is_empty(&self) -> bool {
        self.front_seq == self.next_seq
    }

    /// Mutable access to the shared activity counters (the fetch-side
    /// driver records its own units here).
    pub fn activity_mut(&mut self) -> &mut ActivityCounters {
        &mut self.activity
    }

    fn execute_latency(cfg: &MachineConfig, class: InstrClass, mem: Option<MemKind>) -> u64 {
        let lat = &cfg.lat;
        match mem {
            Some(MemKind::Load { latency }) => latency,
            Some(MemKind::Store) => 1,
            None => match class {
                InstrClass::IntAlu | InstrClass::IntCondBranch | InstrClass::IndirectBranch => {
                    lat.int_alu
                }
                InstrClass::IntMul => lat.int_mul,
                InstrClass::IntDiv => lat.int_div,
                InstrClass::FpAlu | InstrClass::FpCondBranch => lat.fp_alu,
                InstrClass::FpMul => lat.fp_mul,
                InstrClass::FpDiv => lat.fp_div,
                InstrClass::FpSqrt => lat.fp_sqrt,
                InstrClass::Load | InstrClass::Store => 1,
            },
        }
    }

    fn fu_pool(class: InstrClass, mem: Option<MemKind>) -> usize {
        if mem.is_some() {
            return 1; // load/store ports
        }
        match class {
            InstrClass::Load | InstrClass::Store => 1,
            InstrClass::IntAlu | InstrClass::IntCondBranch | InstrClass::IndirectBranch => 0,
            InstrClass::IntMul | InstrClass::IntDiv => 2,
            InstrClass::FpAlu | InstrClass::FpCondBranch => 3,
            InstrClass::FpMul | InstrClass::FpDiv | InstrClass::FpSqrt => 4,
        }
    }

    /// Schedules a completion record on the timing wheel.
    #[inline]
    fn arm(&mut self, done: u64, seq: u64) {
        let slot = (done & WHEEL_MASK) as usize;
        self.wheel[slot].push((done, seq));
        self.wheel_bits[slot / 64] |= 1u64 << (slot % 64);
    }

    /// The next cycle strictly after `now` whose wheel slot holds any
    /// record (`u64::MAX` if the wheel is empty). A slot may hold only
    /// far-future records; waking on it is harmless — the drain re-arms
    /// them and the following probe looks further ahead.
    fn next_wheel_event(&self, now: u64) -> u64 {
        let start = ((now + 1) & WHEEL_MASK) as usize;
        let words = self.wheel_bits.len();
        let (w0, b0) = (start / 64, start % 64);
        let first = self.wheel_bits[w0] >> b0;
        if first != 0 {
            return now + 1 + u64::from(first.trailing_zeros());
        }
        for j in 1..=words {
            let w = self.wheel_bits[(w0 + j) % words];
            if w != 0 {
                let base = now + 1 + (64 - b0 as u64) + (j as u64 - 1) * 64;
                return base + u64::from(w.trailing_zeros());
            }
        }
        u64::MAX
    }

    /// If the cycle just run by [`Core::cycle`] was completely quiet —
    /// no writeback, no issue, no commit — returns a cycle strictly
    /// before which the core provably cannot act: the minimum of the
    /// next timing-wheel completion and the smallest memoised wakeup
    /// over the Waiting window (every Waiting entry's hot word is read
    /// by the scan whenever nothing issues, so the bound is exact and
    /// free). The driver may fast-forward to it with
    /// [`Core::skip_quiet`]; in the skipped cycles an unskipped run
    /// would memo-skip every entry and change nothing, so results stay
    /// bit-identical. `Some(u64::MAX)` means no event is pending at all.
    pub fn quiet_until(&self) -> Option<u64> {
        (self.quiet_until != 0).then_some(self.quiet_until)
    }

    /// Fast-forwards over `k` provably quiet cycles, recording the
    /// occupancy samples those cycles would have produced.
    pub fn skip_quiet(&mut self, k: u64) {
        self.ruu_meter.sample_n(self.in_flight() as u64, k);
        self.lsq_meter.sample_n(self.lsq_used as u64, k);
        self.cycle += k;
    }

    /// Records the per-unit activity of one instruction issuing.
    #[inline]
    fn issue_activity(&mut self, idx: usize, now: u64) {
        let f = self.flags[idx];
        self.activity.record(Unit::Issue, now);
        if f & F_MEM != 0 {
            self.activity.record(Unit::Lsq, now);
            if f & F_LOAD != 0 {
                self.activity.record(Unit::DCache, now);
            }
        }
        if f & F_FP != 0 {
            self.activity.record(Unit::FpAlu, now);
        } else if f & F_INT != 0 {
            self.activity.record(Unit::IntAlu, now);
        }
    }

    /// Probes one dependency slot: `None` if satisfied, otherwise a
    /// cycle before which it cannot possibly become satisfied. An
    /// issued producer completes exactly at its scheduled writeback. A
    /// still-waiting producer is older than its consumer, so the
    /// oldest-first scan already passed it this cycle and left it
    /// Waiting: it issues no earlier than `now + 1` — or than its own
    /// memoised wakeup — plus its execute latency. Chaining through the
    /// producer's wakeup propagates exact dependence-chain depths across
    /// the window in a single scan.
    #[inline]
    fn dep_bound(&self, seq: u64, now: u64) -> Option<u64> {
        if seq < self.front_seq || seq >= self.next_seq {
            // Absent, long committed, or produced by a squashed
            // instruction ([`NO_SEQ`] is above any live sequence).
            return None;
        }
        let idx = (seq & self.mask) as usize;
        let h = self.hot[idx];
        match h & HOT_STATE {
            HOT_DONE => None,
            HOT_ISSUED => Some(h >> HOT_AUX_SHIFT),
            _ => {
                let wake = h >> HOT_AUX_SHIFT;
                Some(wake.max(now + 1) + self.lat[idx].max(1))
            }
        }
    }

    /// Runs writeback, issue and commit for the current cycle.
    ///
    /// Returns the sequence number of the oldest correct-path
    /// mispredicted branch that resolved this cycle; the driver must
    /// respond with [`Core::squash_after`] and a fetch redirect.
    pub fn cycle(&mut self) -> Option<u64> {
        let now = self.cycle;
        let mut resolved: Option<u64> = None;
        let mut active = false;
        // Earliest cycle any currently-Waiting entry could issue; only
        // consulted when the whole cycle turns out quiet.
        let mut min_wake = u64::MAX;

        // ---- writeback: complete the executions falling due now.
        // The wheel slot for `now` holds every record scheduled for this
        // cycle. A record only completes an entry if that entry is still
        // live, still Issued, and carries this record's exact completion
        // time — anything else is a stale record for a squashed (and
        // possibly reused) sequence number, which its own record will
        // complete when it falls due. A record whose latency exceeded
        // one wheel turn lands here early and re-arms itself.
        let slot = (now & WHEEL_MASK) as usize;
        if !self.wheel[slot].is_empty() {
            let mut due = std::mem::take(&mut self.wheel[slot]);
            self.wheel_bits[slot / 64] &= !(1u64 << (slot % 64));
            for &(done, rec) in due.iter() {
                if done > now {
                    // Re-arms land in this same slot (done ≡ now mod
                    // the wheel size), one turn or more ahead.
                    self.arm(done, rec);
                    continue;
                }
                let seq = rec & !REC_WAKE;
                if seq < self.front_seq || seq >= self.next_seq {
                    continue;
                }
                let idx = (seq & self.mask) as usize;
                let h = self.hot[idx];
                if rec & REC_WAKE != 0 {
                    // Wakeup record: re-admit a sleeping entry to the
                    // ready set. A stale record (squashed-and-reused
                    // sequence number) at worst wakes an entry before
                    // its own record falls due; the probe re-blocks it.
                    // Setting a bit is not activity — the probe at this
                    // cycle decides whether anything actually issues.
                    if h & HOT_STATE == HOT_WAITING {
                        self.ready[idx / 64] |= 1u64 << (idx % 64);
                    }
                    continue;
                }
                if h & HOT_STATE != HOT_ISSUED || h >> HOT_AUX_SHIFT != done {
                    continue;
                }
                self.hot[idx] = HOT_DONE;
                active = true;
                let f = self.flags[idx];
                self.activity.record(Unit::Ruu, now);
                if f & F_DEST != 0 {
                    self.activity.record(Unit::RegFile, now);
                }
                if f & F_RESOLVES != 0 {
                    resolved = Some(resolved.map_or(seq, |r| r.min(seq)));
                }
            }
            due.clear();
            // Keep the allocation if nothing re-armed into this slot.
            if self.wheel[slot].is_empty() {
                self.wheel[slot] = due;
            }
        }

        // ---- issue: oldest-first selection under width and FU limits.
        let mut issued = 0;
        let mut fu_used = [0usize; 5];
        let fu_limits = [
            self.cfg.fu.int_alu,
            self.cfg.fu.ld_st,
            self.cfg.fu.int_muldiv,
            self.cfg.fu.fp_add,
            self.cfg.fu.fp_muldiv,
        ];
        if self.event_sched {
            // Event-driven selection: only ready entries are examined.
            // Bits are set at dispatch and by wakeup records falling
            // due; a blocked probe puts the entry to sleep — clears the
            // bit and schedules a wakeup at the probe's bound — so
            // stalled entries cost nothing per cycle. Every set bit
            // belongs to a live Waiting entry (issue, squash and wakeup
            // validation maintain this), and the window occupies a
            // contiguous circular index range, so scanning the bitmap
            // circularly from the window head visits entries in
            // sequence order: oldest-first priority is preserved.
            let words = self.ready.len();
            let front_idx = (self.front_seq & self.mask) as usize;
            let (w0, b0) = (front_idx / 64, front_idx % 64);
            'scan: for step in 0..=words {
                let w = (w0 + step) % words;
                let mut bits = self.ready[w];
                if step == 0 {
                    bits &= !0u64 << b0;
                } else if step == words {
                    // The wrapped-around remainder of the first word.
                    bits &= (1u64 << b0) - 1;
                }
                while bits != 0 {
                    if issued >= self.cfg.issue_width {
                        break 'scan;
                    }
                    let b = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    let idx = w * 64 + b;
                    let h = self.hot[idx];
                    debug_assert_eq!(h & HOT_STATE, HOT_WAITING);
                    let pool = ((h >> HOT_POOL_SHIFT) & 0x7) as usize;
                    if fu_used[pool] >= fu_limits[pool] {
                        // Keep the bit: with a zero-unit pool this is
                        // the only wake source, and re-examining every
                        // cycle preserves the deadlock watchdog.
                        min_wake = now + 1;
                        continue;
                    }
                    // Probe the five dependency slots. A satisfied slot
                    // is cleared for good: `Done` is terminal until
                    // commit, and a producer is always older than its
                    // consumer so no squash can remove one while its
                    // consumer survives. Unsatisfied slots yield a
                    // completion lower bound.
                    let mut slots = self.deps[idx];
                    let mut blocked = false;
                    let mut bound = 0;
                    for slot in &mut slots {
                        match self.dep_bound(*slot, now) {
                            None => *slot = NO_SEQ,
                            Some(lb) => {
                                blocked = true;
                                bound = bound.max(lb);
                            }
                        }
                    }
                    let off = idx.wrapping_sub(front_idx) as u64 & self.mask;
                    let seq = self.front_seq + off;
                    if blocked {
                        // Sleep until the bound: clear the ready bit,
                        // memoise the bound (dependants chain through
                        // it) and schedule the wakeup.
                        self.ready[w] &= !(1u64 << b);
                        self.deps[idx] = slots;
                        self.hot[idx] = HOT_WAITING
                            | ((pool as u64) << HOT_POOL_SHIFT)
                            | (bound << HOT_AUX_SHIFT);
                        self.arm(bound, seq | REC_WAKE);
                        continue;
                    }
                    self.ready[w] &= !(1u64 << b);
                    let latency = self.lat[idx].max(1);
                    let done = now + latency;
                    self.hot[idx] =
                        HOT_ISSUED | ((pool as u64) << HOT_POOL_SHIFT) | (done << HOT_AUX_SHIFT);
                    self.arm(done, seq);
                    active = true;
                    issued += 1;
                    fu_used[pool] += 1;
                    self.issue_activity(idx, now);
                }
            }
        } else {
            // Program-order issue: the oldest Waiting entry gates all
            // younger ones — including entries the bitmap would have
            // asleep — so the in-order pipe scans linearly past the
            // Issued/Done prefix and stops at the first entry that
            // cannot issue.
            let len = self.in_flight();
            let mut i = self.first_waiting.min(len);
            while i < len && issued < self.cfg.issue_width {
                let idx = ((self.front_seq + i as u64) & self.mask) as usize;
                let h = self.hot[idx];
                if h & HOT_STATE != HOT_WAITING {
                    i += 1;
                    continue;
                }
                // Wakeup memo: an earlier probe proved this entry
                // cannot issue before the memoised cycle.
                if (h >> HOT_AUX_SHIFT) > now {
                    min_wake = min_wake.min(h >> HOT_AUX_SHIFT);
                    break;
                }
                let pool = ((h >> HOT_POOL_SHIFT) & 0x7) as usize;
                if fu_used[pool] >= fu_limits[pool] {
                    // Structural hazard stalls the in-order pipe.
                    min_wake = now + 1;
                    break;
                }
                let mut slots = self.deps[idx];
                let mut blocked = false;
                let mut bound = 0;
                for slot in &mut slots {
                    match self.dep_bound(*slot, now) {
                        None => *slot = NO_SEQ,
                        Some(lb) => {
                            blocked = true;
                            bound = bound.max(lb);
                        }
                    }
                }
                if blocked {
                    min_wake = min_wake.min(bound);
                    self.deps[idx] = slots;
                    self.hot[idx] =
                        HOT_WAITING | ((pool as u64) << HOT_POOL_SHIFT) | (bound << HOT_AUX_SHIFT);
                    break;
                }
                let latency = self.lat[idx].max(1);
                let done = now + latency;
                self.hot[idx] =
                    HOT_ISSUED | ((pool as u64) << HOT_POOL_SHIFT) | (done << HOT_AUX_SHIFT);
                self.arm(done, self.front_seq + i as u64);
                active = true;
                issued += 1;
                fu_used[pool] += 1;
                self.issue_activity(idx, now);
                i += 1;
            }
            // Everything below the stopping point is Issued or Done.
            self.first_waiting = i;
        }

        // ---- commit: in-order retirement of completed instructions.
        let mut retired = 0;
        while retired < self.cfg.commit_width && self.front_seq < self.next_seq {
            let idx = (self.front_seq & self.mask) as usize;
            let f = self.flags[idx];
            // Wrong-path instructions never retire: when one reaches
            // the head, its mispredicted branch has already resolved
            // (same cycle) and the driver is about to squash it.
            if f & F_WRONG_PATH != 0 || self.hot[idx] & HOT_STATE != HOT_DONE {
                break;
            }
            if f & F_MEM != 0 {
                self.lsq_used -= 1;
            }
            if f & F_STORE != 0 {
                self.activity.record(Unit::DCache, now);
            }
            self.activity.record(Unit::Ruu, now);
            self.front_seq += 1;
            self.committed += 1;
            active = true;
            retired += 1;
        }
        self.first_waiting = self.first_waiting.saturating_sub(retired);

        self.quiet_until = if active {
            0
        } else {
            min_wake.min(self.next_wheel_event(now))
        };

        // ---- occupancy sampling.
        self.ruu_meter.sample(self.in_flight() as u64);
        self.lsq_meter.sample(self.lsq_used as u64);

        resolved
    }

    /// Whether the next [`Core::try_dispatch`] is certain to stall on
    /// decode width or window capacity. (An LSQ-full stall additionally
    /// depends on the instruction itself, so a `false` here is not a
    /// dispatch guarantee.) Lets a driver skip building the candidate
    /// instruction when the core cannot take it anyway.
    #[inline]
    pub fn dispatch_blocked(&self) -> bool {
        self.dispatched_this_cycle >= self.cfg.decode_width || self.in_flight() >= self.cfg.ruu_size
    }

    /// Attempts to dispatch one instruction into the RUU/LSQ.
    ///
    /// At most `decode_width` instructions are accepted per cycle;
    /// further attempts stall.
    pub fn try_dispatch(&mut self, instr: DispatchInstr) -> DispatchOutcome {
        if self.dispatched_this_cycle >= self.cfg.decode_width {
            return DispatchOutcome::Stalled;
        }
        if self.in_flight() >= self.cfg.ruu_size {
            return DispatchOutcome::Stalled;
        }
        let is_mem = instr.mem.is_some();
        if is_mem && self.lsq_used >= self.cfg.lsq_size {
            return DispatchOutcome::Stalled;
        }
        let seq = self.next_seq;
        let now = self.cycle;
        let class = instr.class.unwrap_or(InstrClass::IntAlu);
        let idx = (seq & self.mask) as usize;

        // Resolve register dependencies through the rename map, or
        // dependency distances through sequence arithmetic.
        let mut deps = [NO_SEQ; 5];
        for (p, slot) in deps[..2].iter_mut().enumerate() {
            *slot = match (instr.srcs[p], instr.dep_dists[p]) {
                (Some(reg), _) => enc(self.rename[reg.dense_index()]),
                // A distance of zero would be a self-dependence; the
                // synthetic generator never emits it, but guard anyway.
                (None, Some(0)) => NO_SEQ,
                (None, Some(dist)) => enc(seq.checked_sub(u64::from(dist))),
                (None, None) => NO_SEQ,
            };
        }

        // WAW/WAR hazards (machines without register renaming): the
        // write must wait for the previous writer and the previous
        // readers of its destination; synthetic mode supplies distances.
        if self.cfg.model_anti_deps {
            if let Some(d) = instr.dest {
                deps[2] = enc(self.rename[d.dense_index()]); // WAW
                deps[3] = enc(self.last_reader[d.dense_index()]); // WAR
            }
            for (i, dist) in instr.anti_dep_dists.iter().enumerate() {
                if deps[2 + i] == NO_SEQ {
                    deps[2 + i] = match dist {
                        Some(0) | None => NO_SEQ,
                        Some(d) => enc(seq.checked_sub(u64::from(*d))),
                    };
                }
            }
            for src in instr.srcs.iter().flatten() {
                self.last_reader[src.dense_index()] = Some(seq);
            }
        }

        // Store→load memory dependence: a load depends on the youngest
        // older store to the same word that is still in flight, and
        // receives its value through the store buffer (forwarding) —
        // 1-cycle data latency instead of a cache access.
        let mut mem = instr.mem;
        if let (Some(MemKind::Load { .. }), Some(addr)) = (instr.mem, instr.mem_dep_addr) {
            let mut s = self.next_seq;
            while s > self.front_seq {
                s -= 1;
                let pi = (s & self.mask) as usize;
                if self.flags[pi] & F_STORE != 0 && self.mem_addr[pi] == addr {
                    mem = Some(MemKind::Load { latency: 2 });
                    if self.hot[pi] & HOT_STATE != HOT_DONE {
                        deps[4] = s;
                    }
                    break;
                }
            }
        }

        // Rename-map update with an undo log for squash recovery.
        let mut f = 0u8;
        let mut dest_idx = 0u16;
        let mut prev = NO_SEQ;
        if let Some(d) = instr.dest {
            let slot = &mut self.rename[d.dense_index()];
            prev = enc(*slot);
            *slot = Some(seq);
            dest_idx = d.dense_index() as u16;
            f |= F_DEST;
        }
        f |= match mem {
            Some(MemKind::Load { .. }) => F_MEM | F_LOAD,
            Some(MemKind::Store) => F_MEM | F_STORE,
            None => 0,
        };
        if instr.wrong_path {
            f |= F_WRONG_PATH;
        }
        if instr.branch == BranchResolution::Mispredict && !instr.wrong_path {
            f |= F_RESOLVES;
        }
        f |= match class {
            InstrClass::FpAlu
            | InstrClass::FpMul
            | InstrClass::FpDiv
            | InstrClass::FpSqrt
            | InstrClass::FpCondBranch => F_FP,
            InstrClass::Load | InstrClass::Store => 0,
            _ => F_INT,
        };

        self.first_waiting = self.first_waiting.min(self.in_flight());
        if self.event_sched {
            self.ready[idx / 64] |= 1u64 << (idx % 64);
        }
        let pool = Self::fu_pool(class, mem) as u64;
        self.hot[idx] = HOT_WAITING | (pool << HOT_POOL_SHIFT);
        self.lat[idx] = Self::execute_latency(self.cfg, class, mem);
        self.deps[idx] = deps;
        self.flags[idx] = f;
        self.dest[idx] = dest_idx;
        self.prev_writer[idx] = prev;
        self.mem_addr[idx] = match (f & F_STORE != 0, instr.mem_dep_addr) {
            (true, Some(a)) => a,
            _ => NO_SEQ,
        };
        self.next_seq += 1;
        if is_mem {
            self.lsq_used += 1;
        }
        self.dispatched_this_cycle += 1;
        self.activity.record(Unit::Dispatch, now);
        self.activity.record(Unit::Ruu, now);
        self.activity.record_n(
            Unit::RegFile,
            now,
            instr.srcs.iter().flatten().count() as u64,
        );
        if is_mem {
            self.activity.record(Unit::Lsq, now);
        }
        DispatchOutcome::Dispatched(seq)
    }

    /// Squashes every instruction younger than `seq`, unwinding the
    /// rename map. Returns the number of squashed instructions.
    pub fn squash_after(&mut self, seq: u64) -> usize {
        let mut squashed = 0;
        while self.next_seq > seq + 1 && self.next_seq > self.front_seq {
            self.next_seq -= 1;
            let idx = (self.next_seq & self.mask) as usize;
            let f = self.flags[idx];
            if f & F_DEST != 0 {
                self.rename[self.dest[idx] as usize] = dec(self.prev_writer[idx]);
            }
            if f & F_MEM != 0 {
                self.lsq_used -= 1;
            }
            self.ready[idx / 64] &= !(1u64 << (idx % 64));
            squashed += 1;
        }
        self.first_waiting = self.first_waiting.min(self.in_flight());
        // Reader tracking must not survive the squash: sequence numbers
        // are reused, so a stale reader entry would alias a *future*
        // instruction and (under in-order issue) deadlock the pipe.
        for slot in &mut self.last_reader {
            if slot.is_some_and(|s| s > seq) {
                *slot = None;
            }
        }
        squashed
    }

    /// Advances to the next cycle.
    pub fn advance(&mut self) {
        self.cycle += 1;
        self.dispatched_this_cycle = 0;
    }

    /// Finalises counters and hands back activity + occupancy meters.
    pub fn finish(self) -> (ActivityCounters, OccupancyMeter, OccupancyMeter) {
        let (activity, ruu, lsq, _) = self.finish_reuse();
        (activity, ruu, lsq)
    }

    /// Like [`Core::finish`], but also returns the core's working
    /// memory for reuse by a later [`Core::with_scratch`].
    pub fn finish_reuse(
        mut self,
    ) -> (
        ActivityCounters,
        OccupancyMeter,
        OccupancyMeter,
        CoreScratch,
    ) {
        self.activity.set_cycles(self.cycle);
        (
            self.activity,
            self.ruu_meter,
            self.lsq_meter,
            CoreScratch {
                hot: self.hot,
                lat: self.lat,
                deps: self.deps,
                flags: self.flags,
                dest: self.dest,
                prev_writer: self.prev_writer,
                mem_addr: self.mem_addr,
                ready: self.ready,
                wheel: self.wheel,
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> MachineConfig {
        let mut c = MachineConfig::baseline();
        c.decode_width = 4;
        c.issue_width = 4;
        c.commit_width = 4;
        c.ruu_size = 8;
        c.lsq_size = 4;
        c
    }

    fn alu() -> DispatchInstr {
        DispatchInstr {
            class: Some(InstrClass::IntAlu),
            ..Default::default()
        }
    }

    fn alu_rw(dest: RegId, src: RegId) -> DispatchInstr {
        DispatchInstr {
            class: Some(InstrClass::IntAlu),
            srcs: [Some(src), None],
            dest: Some(dest),
            ..Default::default()
        }
    }

    fn run_empty(core: &mut Core) -> u64 {
        let start = core.now();
        while !core.is_empty() {
            core.cycle();
            core.advance();
            assert!(core.now() - start < 10_000, "backend deadlocked");
        }
        core.now() - start
    }

    #[test]
    fn single_instruction_commits() {
        let cfg = small_cfg();
        let mut core = Core::new(&cfg);
        assert!(matches!(
            core.try_dispatch(alu()),
            DispatchOutcome::Dispatched(0)
        ));
        run_empty(&mut core);
        assert_eq!(core.committed(), 1);
    }

    #[test]
    fn dependent_chain_serialises() {
        let r1 = RegId::Int(ssim_isa::Reg::R1);
        let r2 = RegId::Int(ssim_isa::Reg::R2);
        // Chain of 6 dependent 1-cycle ALU ops: takes ~6 cycles.
        let cfg = small_cfg();
        let mut core = Core::new(&cfg);
        core.try_dispatch(alu_rw(r1, r2));
        for _ in 0..5 {
            core.advance();
            core.cycle();
            core.try_dispatch(alu_rw(r1, r1));
        }
        let cycles = run_empty(&mut core);
        assert_eq!(core.committed(), 6);
        assert!(cycles >= 2, "dependences must serialise execution");

        // Independent ops: finish much faster in a 4-wide core.
        let cfg = small_cfg();
        let mut core = Core::new(&cfg);
        for _ in 0..4 {
            core.try_dispatch(alu());
        }
        let fast = run_empty(&mut core);
        assert!(fast <= cycles, "independent ops should not be slower");
        assert_eq!(core.committed(), 4);
    }

    #[test]
    fn decode_width_limits_dispatch() {
        let cfg = small_cfg();
        let mut core = Core::new(&cfg);
        for i in 0..4 {
            assert!(
                matches!(core.try_dispatch(alu()), DispatchOutcome::Dispatched(s) if s == i),
                "first four dispatch"
            );
        }
        assert_eq!(core.try_dispatch(alu()), DispatchOutcome::Stalled);
        core.advance();
        assert!(matches!(
            core.try_dispatch(alu()),
            DispatchOutcome::Dispatched(4)
        ));
    }

    #[test]
    fn ruu_capacity_stalls_dispatch() {
        let mut cfg = small_cfg();
        cfg.ruu_size = 2;
        cfg.lsq_size = 2;
        let mut core = Core::new(&cfg);
        assert!(matches!(
            core.try_dispatch(alu()),
            DispatchOutcome::Dispatched(_)
        ));
        assert!(matches!(
            core.try_dispatch(alu()),
            DispatchOutcome::Dispatched(_)
        ));
        assert_eq!(core.try_dispatch(alu()), DispatchOutcome::Stalled);
    }

    #[test]
    fn lsq_capacity_stalls_memory_ops_only() {
        let mut cfg = small_cfg();
        cfg.lsq_size = 1;
        let mut core = Core::new(&cfg);
        let load = DispatchInstr {
            class: Some(InstrClass::Load),
            mem: Some(MemKind::Load { latency: 2 }),
            ..Default::default()
        };
        assert!(matches!(
            core.try_dispatch(load),
            DispatchOutcome::Dispatched(_)
        ));
        assert_eq!(core.try_dispatch(load), DispatchOutcome::Stalled);
        assert!(matches!(
            core.try_dispatch(alu()),
            DispatchOutcome::Dispatched(_)
        ));
    }

    #[test]
    fn long_latency_load_delays_commit() {
        let cfg = small_cfg();
        let mut core = Core::new(&cfg);
        let load = DispatchInstr {
            class: Some(InstrClass::Load),
            mem: Some(MemKind::Load { latency: 150 }),
            ..Default::default()
        };
        core.try_dispatch(load);
        let cycles = run_empty(&mut core);
        assert!(cycles >= 150, "memory latency must show up, took {cycles}");
    }

    #[test]
    fn mispredicted_branch_reports_and_squash_cleans() {
        let cfg = small_cfg();
        let mut core = Core::new(&cfg);
        let br = DispatchInstr {
            class: Some(InstrClass::IntCondBranch),
            branch: BranchResolution::Mispredict,
            ..Default::default()
        };
        let DispatchOutcome::Dispatched(bseq) = core.try_dispatch(br) else {
            panic!("dispatches")
        };
        // Wrong-path fill.
        let wp = DispatchInstr {
            class: Some(InstrClass::IntAlu),
            wrong_path: true,
            ..alu()
        };
        core.try_dispatch(wp);
        core.try_dispatch(wp);
        let mut resolved = None;
        for _ in 0..10 {
            if let Some(seq) = core.cycle() {
                resolved = Some(seq);
                break;
            }
            core.advance();
        }
        assert_eq!(resolved, Some(bseq));
        let squashed = core.squash_after(bseq);
        assert_eq!(squashed, 2);
        // The branch itself either committed in the resolving cycle or
        // is still in flight; either way only it retires.
        run_empty(&mut core);
        assert_eq!(core.committed(), 1);
    }

    #[test]
    fn squash_unwinds_rename_map() {
        let r1 = RegId::Int(ssim_isa::Reg::R1);
        let r9 = RegId::Int(ssim_isa::Reg::R9);
        let mut cfg = small_cfg();
        cfg.decode_width = 8;
        cfg.issue_width = 8;
        let mut core = Core::new(&cfg);
        // Producer of r1 (seq 0), then a "branch" (seq 1), then a
        // wrong-path overwrite of r1 (seq 2).
        core.try_dispatch(alu_rw(r1, r9));
        core.try_dispatch(alu());
        core.try_dispatch(DispatchInstr {
            wrong_path: true,
            ..alu_rw(r1, r9)
        });
        core.squash_after(1);
        // A new consumer of r1 must depend on seq 0, not on the squashed
        // seq 2 — which would otherwise alias the next dispatched seq.
        let DispatchOutcome::Dispatched(seq) = core.try_dispatch(alu_rw(r9, r1)) else {
            panic!("dispatches")
        };
        assert_eq!(seq, 2, "sequence numbers are reused after squash");
        // Drain: if the dep pointed at the squashed entry the consumer
        // would wait on itself and deadlock.
        run_empty(&mut core);
        assert_eq!(core.committed(), 3);
    }

    #[test]
    fn dep_distance_resolves_to_earlier_seq() {
        let cfg = small_cfg();
        let mut core = Core::new(&cfg);
        // seq 0: long divide producing (synthetically) a value.
        core.try_dispatch(DispatchInstr {
            class: Some(InstrClass::IntDiv),
            ..Default::default()
        });
        // seq 1: depends on distance 1 => seq 0.
        core.try_dispatch(DispatchInstr {
            class: Some(InstrClass::IntAlu),
            dep_dists: [Some(1), None],
            ..Default::default()
        });
        let cycles = run_empty(&mut core);
        assert!(
            cycles >= 20,
            "consumer must wait for the divide, took {cycles}"
        );
    }

    #[test]
    fn store_to_load_same_word_serialises() {
        let cfg = small_cfg();
        let mut core = Core::new(&cfg);
        let store = DispatchInstr {
            class: Some(InstrClass::Store),
            mem: Some(MemKind::Store),
            mem_dep_addr: Some(64),
            // Make the store wait on a divide so it stays not-done.
            dep_dists: [Some(1), None],
            ..Default::default()
        };
        core.try_dispatch(DispatchInstr {
            class: Some(InstrClass::IntDiv),
            ..Default::default()
        });
        core.try_dispatch(store);
        let load = DispatchInstr {
            class: Some(InstrClass::Load),
            mem: Some(MemKind::Load { latency: 2 }),
            mem_dep_addr: Some(64),
            ..Default::default()
        };
        core.try_dispatch(load);
        let cycles = run_empty(&mut core);
        assert!(
            cycles >= 20,
            "load must wait behind the aliasing store, took {cycles}"
        );
    }

    #[test]
    fn fu_pool_limits_throughput() {
        let mut cfg = small_cfg();
        cfg.decode_width = 8;
        cfg.issue_width = 8;
        cfg.ruu_size = 16;
        cfg.fu.fp_muldiv = 1;
        let mut core = Core::new(&cfg);
        for _ in 0..4 {
            core.try_dispatch(DispatchInstr {
                class: Some(InstrClass::FpDiv),
                ..Default::default()
            });
        }
        let cycles = run_empty(&mut core);
        // One fp divider: 4 divides must start on 4 different cycles.
        assert!(
            cycles >= 4 + 12,
            "pool limit must serialise issues, took {cycles}"
        );
    }

    #[test]
    fn in_order_issue_blocks_behind_the_head() {
        // Head: long divide. Behind it: an independent ALU op. Out of
        // order the ALU finishes early; in order it waits for the head
        // to issue first (same cycle is fine) but the *third* op behind
        // a stalled head must wait.
        let mut cfg = small_cfg();
        cfg.in_order_issue = true;
        let mut core = Core::new(&cfg);
        // A divide that waits on a (missing-producer) distance handled
        // as ready — instead make the second op depend on the divide so
        // the head is a genuine stall for op 3.
        core.try_dispatch(DispatchInstr {
            class: Some(InstrClass::IntDiv),
            ..Default::default()
        });
        core.try_dispatch(DispatchInstr {
            class: Some(InstrClass::IntAlu),
            dep_dists: [Some(1), None],
            ..Default::default()
        });
        core.try_dispatch(alu());
        let in_order_cycles = run_empty(&mut core);

        let ooo_cfg = small_cfg();
        let mut ooo = Core::new(&ooo_cfg);
        ooo.try_dispatch(DispatchInstr {
            class: Some(InstrClass::IntDiv),
            ..Default::default()
        });
        ooo.try_dispatch(DispatchInstr {
            class: Some(InstrClass::IntAlu),
            dep_dists: [Some(1), None],
            ..Default::default()
        });
        ooo.try_dispatch(alu());
        let ooo_cycles = run_empty(&mut ooo);
        assert!(
            in_order_cycles >= ooo_cycles,
            "{in_order_cycles} < {ooo_cycles}"
        );
    }

    #[test]
    fn waw_hazard_serialises_without_renaming() {
        let r1 = RegId::Int(ssim_isa::Reg::R1);
        let r2 = RegId::Int(ssim_isa::Reg::R2);
        let run = |anti: bool| -> u64 {
            let mut cfg = small_cfg();
            cfg.model_anti_deps = anti;
            let mut core = Core::new(&cfg);
            // Divide writing r1, then an independent ALU also writing r1:
            // with renaming they overlap; without, WAW serialises.
            core.try_dispatch(DispatchInstr {
                class: Some(InstrClass::IntDiv),
                dest: Some(r1),
                srcs: [Some(r2), None],
                ..Default::default()
            });
            core.try_dispatch(DispatchInstr {
                class: Some(InstrClass::IntAlu),
                dest: Some(r1),
                srcs: [Some(r2), None],
                ..Default::default()
            });
            run_empty(&mut core)
        };
        assert!(
            run(true) > run(false),
            "WAW must cost cycles without renaming"
        );
    }

    #[test]
    fn war_hazard_serialises_without_renaming() {
        let r1 = RegId::Int(ssim_isa::Reg::R1);
        let r3 = RegId::Int(ssim_isa::Reg::R3);
        let run = |anti: bool| -> u64 {
            let mut cfg = small_cfg();
            cfg.model_anti_deps = anti;
            let mut core = Core::new(&cfg);
            // A slow reader of r1 followed by a writer of r1 (WAR).
            core.try_dispatch(DispatchInstr {
                class: Some(InstrClass::IntDiv),
                dest: Some(r3),
                srcs: [Some(r1), None],
                ..Default::default()
            });
            core.try_dispatch(DispatchInstr {
                class: Some(InstrClass::IntAlu),
                dest: Some(r1),
                ..Default::default()
            });
            run_empty(&mut core)
        };
        assert!(
            run(true) > run(false),
            "WAR must cost cycles without renaming"
        );
    }

    #[test]
    fn synthetic_anti_dep_distances_serialise() {
        let mut cfg = small_cfg();
        cfg.model_anti_deps = true;
        let mut core = Core::new(&cfg);
        core.try_dispatch(DispatchInstr {
            class: Some(InstrClass::IntDiv),
            ..Default::default()
        });
        core.try_dispatch(DispatchInstr {
            class: Some(InstrClass::IntAlu),
            anti_dep_dists: [Some(1), None],
            ..Default::default()
        });
        let cycles = run_empty(&mut core);
        assert!(
            cycles >= 20,
            "synthetic WAW distance must bind, took {cycles}"
        );
    }

    #[test]
    fn occupancy_meters_accumulate() {
        let cfg = small_cfg();
        let mut core = Core::new(&cfg);
        core.try_dispatch(alu());
        run_empty(&mut core);
        let (activity, ruu, _lsq) = core.finish();
        assert!(ruu.mean() > 0.0);
        assert!(activity.unit(Unit::Dispatch).accesses == 1);
        assert!(
            activity.unit(Unit::Ruu).accesses >= 2,
            "dispatch + writeback + commit"
        );
    }
}
