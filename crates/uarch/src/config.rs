//! Machine configuration (the paper's Table 2).

use ssim_bpred::BpredConfig;
use ssim_cache::HierarchyConfig;

/// Functional-unit pool sizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FuConfig {
    /// Integer ALUs (also execute branches).
    pub int_alu: usize,
    /// Load/store ports.
    pub ld_st: usize,
    /// Floating-point adders (also fp compares/branches).
    pub fp_add: usize,
    /// Integer multiply/divide units.
    pub int_muldiv: usize,
    /// Floating-point multiply/divide units.
    pub fp_muldiv: usize,
}

impl FuConfig {
    /// Table 2: 8 integer ALUs, 4 load/store units, 2 fp adders,
    /// 2 integer and 2 fp mult/div units.
    pub fn baseline() -> Self {
        FuConfig {
            int_alu: 8,
            ld_st: 4,
            fp_add: 2,
            int_muldiv: 2,
            fp_muldiv: 2,
        }
    }
}

/// Operation and memory latencies in cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyConfig {
    /// L1 data-cache hit (load-use) latency.
    pub l1d_hit: u64,
    /// Latency of a load hitting in the unified L2.
    pub l2_hit: u64,
    /// Round-trip main-memory latency.
    pub mem: u64,
    /// Extra cycles charged for a TLB miss (software walk).
    pub tlb_miss: u64,
    /// Integer ALU operations.
    pub int_alu: u64,
    /// Integer multiply.
    pub int_mul: u64,
    /// Integer divide.
    pub int_div: u64,
    /// Floating-point add/compare/convert.
    pub fp_alu: u64,
    /// Floating-point multiply.
    pub fp_mul: u64,
    /// Floating-point divide.
    pub fp_div: u64,
    /// Floating-point square root.
    pub fp_sqrt: u64,
}

impl LatencyConfig {
    /// Table 2 latencies (2-cycle L1D, 20-cycle L2, 150-cycle memory)
    /// with SimpleScalar's default operation latencies.
    pub fn baseline() -> Self {
        LatencyConfig {
            l1d_hit: 2,
            l2_hit: 20,
            mem: 150,
            tlb_miss: 30,
            int_alu: 1,
            int_mul: 3,
            int_div: 20,
            fp_alu: 2,
            fp_mul: 4,
            fp_div: 12,
            fp_sqrt: 24,
        }
    }
}

/// The full machine configuration.
///
/// [`MachineConfig::baseline`] reproduces the paper's Table 2; the
/// design-space experiments perturb individual fields from there.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineConfig {
    /// Decode/dispatch width (instructions per cycle from IFQ to RUU).
    pub decode_width: usize,
    /// Fetch speed multiplier: fetch width = `decode_width * fetch_speed`.
    pub fetch_speed: usize,
    /// Issue width (instructions entering execution per cycle).
    pub issue_width: usize,
    /// Commit width (instructions retiring per cycle).
    pub commit_width: usize,
    /// Instruction fetch queue capacity.
    pub ifq_size: usize,
    /// Register update unit (unified window + ROB) capacity.
    pub ruu_size: usize,
    /// Load/store queue capacity.
    pub lsq_size: usize,
    /// Cycles between a misprediction resolving at writeback and fetch
    /// resuming on the correct path. Together with pipeline refill this
    /// yields the paper's ~14-cycle effective misprediction penalty.
    pub redirect_latency: u64,
    /// Fetch bubble for a BTB miss with a correct direction (target
    /// computed at decode) — the paper's "fetch redirection".
    pub fetch_redirect_penalty: u64,
    /// Functional-unit pools.
    pub fu: FuConfig,
    /// Operation/memory latencies.
    pub lat: LatencyConfig,
    /// Branch predictor sizing.
    pub bpred: BpredConfig,
    /// Cache/TLB hierarchy sizing.
    pub hierarchy: HierarchyConfig,
    /// Model every cache/TLB access as a hit (Figure 4/5 experiments).
    pub perfect_caches: bool,
    /// Model every branch as correctly predicted (Figure 4 experiment).
    pub perfect_bpred: bool,
    /// Issue instructions strictly in program order (the paper's
    /// future-work extension for in-order cores; §2.1.1).
    pub in_order_issue: bool,
    /// Honour write-after-write and write-after-read register hazards
    /// (no renaming). The paper's out-of-order model removes them
    /// ("dynamically removed through register renaming"); enabling this
    /// models a machine without enough physical registers.
    pub model_anti_deps: bool,
}

impl MachineConfig {
    /// The paper's Table 2 baseline: 8-wide out-of-order core, 32-entry
    /// IFQ, 128-entry RUU, 32-entry LSQ, hybrid predictor, 8 KB/16 KB L1
    /// caches with a 1 MB unified L2.
    pub fn baseline() -> Self {
        MachineConfig {
            decode_width: 8,
            fetch_speed: 2,
            issue_width: 8,
            commit_width: 8,
            ifq_size: 32,
            ruu_size: 128,
            lsq_size: 32,
            redirect_latency: 9,
            fetch_redirect_penalty: 2,
            fu: FuConfig::baseline(),
            lat: LatencyConfig::baseline(),
            bpred: BpredConfig::baseline(),
            hierarchy: HierarchyConfig::baseline(),
            perfect_caches: false,
            perfect_bpred: false,
            in_order_issue: false,
            model_anti_deps: false,
        }
    }

    /// Fetch width in instructions per cycle.
    pub fn fetch_width(&self) -> usize {
        self.decode_width * self.fetch_speed
    }

    /// Builder-style override of the processor width (decode = issue =
    /// commit), as swept in Table 4.
    pub fn with_width(mut self, width: usize) -> Self {
        self.decode_width = width;
        self.issue_width = width;
        self.commit_width = width;
        self
    }

    /// Builder-style override of the window (RUU) size with the paper's
    /// §4.5 convention that the LSQ is half the RUU.
    pub fn with_window(mut self, ruu: usize) -> Self {
        self.ruu_size = ruu;
        self.lsq_size = (ruu / 2).max(1);
        self
    }

    /// Builder-style override of the IFQ size.
    pub fn with_ifq(mut self, ifq: usize) -> Self {
        self.ifq_size = ifq;
        self
    }

    /// Builder-style in-order variant: program-order issue with WAW and
    /// WAR hazards honoured (no renaming).
    pub fn in_order(mut self) -> Self {
        self.in_order_issue = true;
        self.model_anti_deps = true;
        self
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics if any width or structure size is zero, or if the LSQ is
    /// larger than the RUU (the paper's §4.6 constraint).
    pub fn validate(&self) {
        assert!(self.decode_width > 0, "decode width must be positive");
        assert!(self.issue_width > 0, "issue width must be positive");
        assert!(self.commit_width > 0, "commit width must be positive");
        assert!(self.fetch_speed > 0, "fetch speed must be positive");
        assert!(self.ifq_size > 0, "IFQ must be positive");
        assert!(self.ruu_size > 0, "RUU must be positive");
        assert!(self.lsq_size > 0, "LSQ must be positive");
        assert!(self.lsq_size <= self.ruu_size, "LSQ may not exceed the RUU");
    }
}

impl Default for MachineConfig {
    fn default() -> Self {
        Self::baseline()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_matches_table2() {
        let c = MachineConfig::baseline();
        assert_eq!(c.decode_width, 8);
        assert_eq!(c.fetch_width(), 16);
        assert_eq!(c.ifq_size, 32);
        assert_eq!(c.ruu_size, 128);
        assert_eq!(c.lsq_size, 32);
        assert_eq!(c.fu.int_alu, 8);
        assert_eq!(c.lat.mem, 150);
        c.validate();
    }

    #[test]
    fn builders_adjust_linked_fields() {
        let c = MachineConfig::baseline()
            .with_window(64)
            .with_width(4)
            .with_ifq(8);
        assert_eq!(c.ruu_size, 64);
        assert_eq!(c.lsq_size, 32);
        assert_eq!(c.issue_width, 4);
        assert_eq!(c.commit_width, 4);
        assert_eq!(c.ifq_size, 8);
        c.validate();
    }

    #[test]
    #[should_panic(expected = "LSQ may not exceed")]
    fn oversized_lsq_rejected() {
        let mut c = MachineConfig::baseline();
        c.lsq_size = 256;
        c.validate();
    }
}
