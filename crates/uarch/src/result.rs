//! Simulation results and statistics.

use crate::activity::ActivityCounters;
use ssim_cache::HierarchyStats;

/// A per-cycle occupancy accumulator (mean structure occupancy).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OccupancyMeter {
    sum: u64,
    samples: u64,
}

impl OccupancyMeter {
    /// Creates an empty meter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one per-cycle occupancy sample.
    #[inline]
    pub fn sample(&mut self, occupancy: u64) {
        self.sum += occupancy;
        self.samples += 1;
    }

    /// Records `n` consecutive cycles at the same occupancy — exactly
    /// `n` [`OccupancyMeter::sample`] calls. Lets the simulator account
    /// for skipped quiet cycles without walking them.
    #[inline]
    pub fn sample_n(&mut self, occupancy: u64, n: u64) {
        self.sum += occupancy * n;
        self.samples += n;
    }

    /// Mean occupancy over all sampled cycles (`0.0` with no samples).
    pub fn mean(&self) -> f64 {
        if self.samples == 0 {
            0.0
        } else {
            self.sum as f64 / self.samples as f64
        }
    }

    /// Number of samples (cycles).
    pub fn samples(&self) -> u64 {
        self.samples
    }
}

/// Branch behaviour observed over a run (correct path only).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BranchStats {
    /// Control-transfer instructions executed.
    pub branches: u64,
    /// Taken control transfers.
    pub taken: u64,
    /// Correct predictions (direction and target).
    pub correct: u64,
    /// Fetch redirections (§2.1.2: BTB miss, direction correct).
    pub redirects: u64,
    /// Full mispredictions.
    pub mispredicts: u64,
}

impl BranchStats {
    /// Mispredictions per 1,000 instructions, the Figure 3 metric.
    pub fn mpki(&self, instructions: u64) -> f64 {
        if instructions == 0 {
            0.0
        } else {
            self.mispredicts as f64 * 1000.0 / instructions as f64
        }
    }
}

/// The outcome of one simulation run (execution-driven or synthetic).
///
/// Equality is exact (bit-level on the floating-point fields): the
/// fused-vs-unfused equivalence suite compares entire results with
/// `==`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SimResult {
    /// Correct-path instructions committed.
    pub instructions: u64,
    /// Elapsed cycles.
    pub cycles: u64,
    /// Mean RUU occupancy.
    pub ruu_occupancy: f64,
    /// Mean LSQ occupancy.
    pub lsq_occupancy: f64,
    /// Mean IFQ occupancy.
    pub ifq_occupancy: f64,
    /// Branch statistics.
    pub branch: BranchStats,
    /// Cache miss rates observed during the run (zeroes for synthetic
    /// simulation, which models no caches).
    pub cache: HierarchyStats,
    /// Per-unit activity for power modeling.
    pub activity: ActivityCounters,
}

impl SimResult {
    /// Instructions retired per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// Branch mispredictions per 1,000 committed instructions.
    pub fn mpki(&self) -> f64 {
        self.branch.mpki(self.instructions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meter_means() {
        let mut m = OccupancyMeter::new();
        assert_eq!(m.mean(), 0.0);
        m.sample(2);
        m.sample(4);
        assert_eq!(m.mean(), 3.0);
        assert_eq!(m.samples(), 2);
    }

    #[test]
    fn ipc_and_mpki() {
        let r = SimResult {
            instructions: 1000,
            cycles: 500,
            branch: BranchStats {
                mispredicts: 5,
                ..Default::default()
            },
            ..Default::default()
        };
        assert_eq!(r.ipc(), 2.0);
        assert_eq!(r.mpki(), 5.0);
        let empty = SimResult::default();
        assert_eq!(empty.ipc(), 0.0);
        assert_eq!(empty.mpki(), 0.0);
    }
}
