//! Per-unit activity accounting for power modeling.

/// A microarchitectural unit whose activity is tracked for the Wattch-
/// style power model (`ssim-power`).
///
/// The set mirrors the units the paper's Table 4 reports power for:
/// fetch, dispatch and issue logic, RUU, LSQ, branch predictor, caches,
/// TLBs, register file and function units.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Unit {
    /// Fetch engine + IFQ.
    Fetch,
    /// Branch-direction tables, BTB and RAS.
    Bpred,
    /// L1 instruction cache.
    ICache,
    /// Instruction TLB.
    Itlb,
    /// Decode/rename logic.
    Dispatch,
    /// Register update unit (window + ROB).
    Ruu,
    /// Load/store queue.
    Lsq,
    /// Issue selection logic and result buses.
    Issue,
    /// Architectural register file.
    RegFile,
    /// Integer ALUs (incl. multiply/divide).
    IntAlu,
    /// Floating-point units.
    FpAlu,
    /// L1 data cache.
    DCache,
    /// Data TLB.
    Dtlb,
    /// Unified L2 cache.
    L2,
}

impl Unit {
    /// All tracked units, in a stable order.
    pub const ALL: [Unit; 14] = [
        Unit::Fetch,
        Unit::Bpred,
        Unit::ICache,
        Unit::Itlb,
        Unit::Dispatch,
        Unit::Ruu,
        Unit::Lsq,
        Unit::Issue,
        Unit::RegFile,
        Unit::IntAlu,
        Unit::FpAlu,
        Unit::DCache,
        Unit::Dtlb,
        Unit::L2,
    ];

    /// Dense index in `0..14` (discriminants follow the declaration
    /// order of [`Unit::ALL`]; a unit test pins the correspondence).
    #[inline]
    pub const fn index(self) -> usize {
        self as usize
    }
}

/// Activity of one unit: total accesses, and how many cycles saw at
/// least one access.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UnitActivity {
    /// Total accesses over the run.
    pub accesses: u64,
    /// Cycles in which the unit was accessed at least once.
    pub used_cycles: u64,
}

/// Activity counters for all units over a simulation run.
///
/// The Wattch `cc3` clock-gating model needs, per cycle, the fraction of
/// a unit's ports in use — and `0.1 × Pmax` when idle. Summing the
/// per-cycle linear term over the run gives exactly
/// `Pmax × accesses / ports`, so tracking `(accesses, used_cycles)` per
/// unit is sufficient and O(1) per access.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ActivityCounters {
    units: [UnitActivity; Unit::ALL.len()],
    last_used: [u64; Unit::ALL.len()],
    cycles: u64,
}

impl ActivityCounters {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        ActivityCounters {
            units: Default::default(),
            last_used: [u64::MAX; Unit::ALL.len()],
            cycles: 0,
        }
    }

    /// Records one access to `unit` during `cycle`.
    #[inline]
    pub fn record(&mut self, unit: Unit, cycle: u64) {
        self.record_n(unit, cycle, 1);
    }

    /// Records `n` accesses to `unit` during `cycle`.
    #[inline]
    pub fn record_n(&mut self, unit: Unit, cycle: u64, n: u64) {
        if n == 0 {
            return;
        }
        let i = unit.index();
        self.units[i].accesses += n;
        if self.last_used[i] != cycle {
            self.last_used[i] = cycle;
            self.units[i].used_cycles += 1;
        }
    }

    /// Sets the total cycle count of the run (call once at the end).
    pub fn set_cycles(&mut self, cycles: u64) {
        self.cycles = cycles;
    }

    /// Total cycles of the run.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Activity of one unit.
    pub fn unit(&self, unit: Unit) -> UnitActivity {
        self.units[unit.index()]
    }

    /// Cycles in which `unit` performed no access.
    pub fn idle_cycles(&self, unit: Unit) -> u64 {
        self.cycles.saturating_sub(self.unit(unit).used_cycles)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_are_dense_and_unique() {
        for (i, u) in Unit::ALL.iter().enumerate() {
            assert_eq!(u.index(), i);
        }
    }

    #[test]
    fn used_cycles_counted_once_per_cycle() {
        let mut a = ActivityCounters::new();
        a.record(Unit::Ruu, 5);
        a.record(Unit::Ruu, 5);
        a.record(Unit::Ruu, 6);
        a.set_cycles(10);
        let u = a.unit(Unit::Ruu);
        assert_eq!(u.accesses, 3);
        assert_eq!(u.used_cycles, 2);
        assert_eq!(a.idle_cycles(Unit::Ruu), 8);
    }

    #[test]
    fn record_n_zero_is_noop() {
        let mut a = ActivityCounters::new();
        a.record_n(Unit::Lsq, 1, 0);
        assert_eq!(a.unit(Unit::Lsq), UnitActivity::default());
    }

    #[test]
    fn cycle_zero_counts_as_used() {
        let mut a = ActivityCounters::new();
        a.record(Unit::Fetch, 0);
        assert_eq!(a.unit(Unit::Fetch).used_cycles, 1);
    }
}
