//! Property-based tests for the out-of-order backend: arbitrary
//! well-formed instruction streams must drain without deadlock and
//! conserve instructions.

use proptest::prelude::*;
use ssim_isa::InstrClass;
use ssim_uarch::{BranchResolution, Core, DispatchInstr, DispatchOutcome, MachineConfig, MemKind};

/// A simplified instruction description the strategy generates.
#[derive(Debug, Clone, Copy)]
struct Gen {
    class_pick: u8,
    dep1: u32,
    dep2: u32,
    load_latency: u64,
}

fn to_instr(g: &Gen) -> DispatchInstr {
    let class = match g.class_pick % 6 {
        0 => InstrClass::IntAlu,
        1 => InstrClass::Load,
        2 => InstrClass::Store,
        3 => InstrClass::IntMul,
        4 => InstrClass::FpAlu,
        _ => InstrClass::IntCondBranch,
    };
    let mem = match class {
        InstrClass::Load => Some(MemKind::Load {
            latency: 1 + g.load_latency % 160,
        }),
        InstrClass::Store => Some(MemKind::Store),
        _ => None,
    };
    DispatchInstr {
        class: Some(class),
        srcs: [None, None],
        dep_dists: [
            (!g.dep1.is_multiple_of(40)).then_some(g.dep1 % 40),
            (!g.dep2.is_multiple_of(64)).then_some(g.dep2 % 64),
        ],
        dest: None,
        mem,
        mem_dep_addr: None,
        branch: BranchResolution::None,
        wrong_path: false,
        anti_dep_dists: [None, None],
    }
}

fn gen_strategy() -> impl Strategy<Value = Gen> {
    (any::<u8>(), any::<u32>(), any::<u32>(), any::<u64>()).prop_map(
        |(class_pick, dep1, dep2, load_latency)| Gen {
            class_pick,
            dep1,
            dep2,
            load_latency,
        },
    )
}

fn small_config(ruu: usize, width: usize) -> MachineConfig {
    let mut cfg = MachineConfig::baseline();
    cfg.ruu_size = ruu;
    cfg.lsq_size = (ruu / 2).max(1);
    cfg.decode_width = width;
    cfg.issue_width = width;
    cfg.commit_width = width;
    cfg
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Any stream of well-formed instructions drains completely, with
    /// every instruction committing exactly once.
    #[test]
    fn backend_never_deadlocks(
        instrs in prop::collection::vec(gen_strategy(), 1..300),
        ruu in 2usize..32,
        width in 1usize..8,
    ) {
        let cfg = small_config(ruu, width);
        let mut core = Core::new(&cfg);
        let mut sent = 0usize;
        let mut cycles_guard = 0u64;
        while sent < instrs.len() || !core.is_empty() {
            core.cycle();
            while sent < instrs.len() {
                match core.try_dispatch(to_instr(&instrs[sent])) {
                    DispatchOutcome::Dispatched(_) => sent += 1,
                    DispatchOutcome::Stalled => break,
                }
            }
            core.advance();
            cycles_guard += 1;
            prop_assert!(cycles_guard < 500_000, "deadlock suspected");
            prop_assert!(core.in_flight() <= ruu, "RUU overflow");
        }
        prop_assert_eq!(core.committed(), instrs.len() as u64);
    }

    /// Squashing after an arbitrary prefix preserves the prefix and
    /// removes the suffix; the survivors still drain.
    #[test]
    fn squash_conserves_prefix(
        instrs in prop::collection::vec(gen_strategy(), 2..60),
        cut in 0usize..59,
    ) {
        let cut = cut % instrs.len();
        let cfg = small_config(64, 8);
        let mut core = Core::new(&cfg);
        let mut seqs = Vec::new();
        let mut sent = 0;
        // Dispatch everything (advancing cycles as needed).
        let mut guard = 0;
        while sent < instrs.len() {
            match core.try_dispatch(to_instr(&instrs[sent])) {
                DispatchOutcome::Dispatched(s) => {
                    seqs.push(s);
                    sent += 1;
                }
                DispatchOutcome::Stalled => {
                    core.cycle();
                    core.advance();
                }
            }
            guard += 1;
            prop_assert!(guard < 100_000);
        }
        // Advancing cycles during dispatch may already have committed
        // part of the prefix (commits are in order, oldest first).
        let already_committed = core.committed() as usize;
        let before = core.in_flight();
        let removed = core.squash_after(seqs[cut]);
        let prefix_in_flight = (cut + 1).saturating_sub(already_committed.min(cut + 1));
        prop_assert_eq!(removed, before - prefix_in_flight);
        prop_assert_eq!(core.in_flight(), prefix_in_flight);
        // Survivors drain and commit.
        let mut guard = 0u64;
        while !core.is_empty() {
            core.cycle();
            core.advance();
            guard += 1;
            prop_assert!(guard < 500_000, "post-squash deadlock");
        }
        // Everything up to the cut retires exactly once; if commits ran
        // past the cut before the squash, those extras stay committed.
        prop_assert_eq!(
            core.committed(),
            (cut + 1).max(already_committed) as u64
        );
    }

    /// More resources never hurt: a wider/deeper machine finishes a
    /// fixed stream in no more cycles than a narrower one.
    #[test]
    fn monotone_in_resources(instrs in prop::collection::vec(gen_strategy(), 20..150)) {
        let run = |ruu: usize, width: usize| -> u64 {
            let cfg = small_config(ruu, width);
            let mut core = Core::new(&cfg);
            let mut sent = 0usize;
            while sent < instrs.len() || !core.is_empty() {
                core.cycle();
                while sent < instrs.len() {
                    match core.try_dispatch(to_instr(&instrs[sent])) {
                        DispatchOutcome::Dispatched(_) => sent += 1,
                        DispatchOutcome::Stalled => break,
                    }
                }
                core.advance();
            }
            core.now()
        };
        let narrow = run(8, 2);
        let wide = run(32, 8);
        prop_assert!(wide <= narrow, "wide {wide} vs narrow {narrow}");
    }
}
