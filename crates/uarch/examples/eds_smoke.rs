//! Smoke-run the execution-driven simulator over the whole suite and
//! print IPC, branch and cache behaviour (a quick Table 1 sanity check).
//!
//! Run with: `cargo run --release -p ssim-uarch --example eds_smoke`

use ssim_uarch::{ExecSim, MachineConfig};
use std::time::Instant;

fn main() {
    let cfg = MachineConfig::baseline();
    let n: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2_000_000);
    println!(
        "{:<10} {:>6} {:>8} {:>8} {:>8} {:>9} {:>10}",
        "workload", "IPC", "MPKI", "L1D%", "L1I%", "cycles", "Minstr/s"
    );
    for w in ssim_workloads::all() {
        let program = w.program();
        let mut sim = ExecSim::new(&cfg, &program);
        sim.skip(4_000_000);
        let start = Instant::now();
        let r = sim.run(n);
        let dt = start.elapsed().as_secs_f64();
        println!(
            "{:<10} {:>6.3} {:>8.2} {:>8.2} {:>8.2} {:>9} {:>10.2}",
            w.name(),
            r.ipc(),
            r.mpki(),
            r.cache.l1d_miss_rate * 100.0,
            r.cache.l1i_miss_rate * 100.0,
            r.cycles,
            r.instructions as f64 / dt / 1e6,
        );
    }
}
