//! The HLS statistical workload model (Oskin et al., ISCA 2000).
//!
//! HLS models a workload with **global** distributions only: an
//! instruction mix, a basic-block size distribution (sampled as a
//! normal), overall branch predictability and overall cache miss
//! rates. One hundred synthetic basic blocks are generated up front and
//! wired into a random graph; the synthetic trace walks that graph.
//! Contrast with the SFG of `ssim-core`, which conditions *every*
//! characteristic on the basic block and its execution history.
//!
//! The generated trace is simulated on the same synthetic-trace
//! simulator as the SFG traces, so Figure 7's comparison isolates the
//! workload model.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use ssim_bpred::{classify, BranchKind, BranchOutcome, HybridPredictor};
use ssim_cache::Hierarchy;
use ssim_core::{BranchFlags, DataFlags, SyntheticInstr, SyntheticOutcome, SyntheticTrace};
use ssim_func::Machine;
use ssim_isa::{pc_to_addr, InstrClass, Program, Reg, RegId};
use ssim_stats::{Histogram, ProbCounter};
use ssim_uarch::MachineConfig;

/// Number of synthetic basic blocks in the HLS graph (the published
/// HLS value).
pub const HLS_BLOCKS: usize = 100;

/// Global workload statistics measured by one profiling pass.
#[derive(Debug, Clone)]
pub struct HlsModel {
    /// Instruction-mix occurrence counts, indexed by
    /// [`InstrClass::index`].
    mix: [u64; 12],
    /// Basic-block size distribution (summarised as mean/std).
    block_mean: f64,
    block_std: f64,
    /// Global dependency-distance distributions per operand position.
    dep: [Histogram; 2],
    /// Global branch statistics.
    taken: ProbCounter,
    correct: u64,
    redirect: u64,
    mispredict: u64,
    /// Global cache statistics.
    l1i: ProbCounter,
    l2i: ProbCounter,
    itlb: ProbCounter,
    l1d: ProbCounter,
    l2d: ProbCounter,
    dtlb: ProbCounter,
    instructions: u64,
}

impl HlsModel {
    /// Profiles `program` with the machine's locality structures,
    /// gathering only HLS's global statistics.
    ///
    /// Branch characteristics use immediate update (HLS predates the
    /// delayed-update insight).
    pub fn profile(program: &Program, machine: &MachineConfig, skip: u64, n: u64) -> Self {
        let mut m = Machine::new(program);
        for _ in 0..skip {
            if m.step().is_none() {
                break;
            }
        }
        let mut bpred = HybridPredictor::new(&machine.bpred);
        let mut hierarchy = Hierarchy::new(&machine.hierarchy);

        let mut model = HlsModel {
            mix: [0; 12],
            block_mean: 0.0,
            block_std: 0.0,
            dep: [Histogram::new(), Histogram::new()],
            taken: ProbCounter::new(),
            correct: 0,
            redirect: 0,
            mispredict: 0,
            l1i: ProbCounter::new(),
            l2i: ProbCounter::new(),
            itlb: ProbCounter::new(),
            l1d: ProbCounter::new(),
            l2d: ProbCounter::new(),
            dtlb: ProbCounter::new(),
            instructions: 0,
        };
        let mut block_sizes = Histogram::new();
        let mut current_block = 0u32;
        let mut last_writer = [0u64; RegId::DENSE_COUNT];
        let mut has_writer = [false; RegId::DENSE_COUNT];
        let mut idx = 0u64;

        for exec in m.take(n as usize) {
            model.instructions += 1;
            idx += 1;
            model.mix[exec.instr.class().index()] += 1;
            current_block += 1;
            for (p, src) in exec.instr.sources().enumerate().take(2) {
                if src == RegId::Int(Reg::ZERO) {
                    continue;
                }
                let i = src.dense_index();
                let dist = if has_writer[i] {
                    idx - last_writer[i]
                } else {
                    0
                };
                model.dep[p].record(if dist <= 512 { dist as u32 } else { 0 });
            }
            if let Some(dest) = exec.instr.dest {
                last_writer[dest.dense_index()] = idx;
                has_writer[dest.dense_index()] = true;
            }
            let iout = hierarchy.access_instr(pc_to_addr(exec.pc));
            model.l1i.record(iout.l1_miss);
            if iout.l1_miss {
                model.l2i.record(iout.l2_miss);
            }
            model.itlb.record(iout.tlb_miss);
            if let Some(addr) = exec.mem_addr {
                let dout = if exec.instr.class() == InstrClass::Load {
                    hierarchy.access_load(addr)
                } else {
                    hierarchy.access_data(addr)
                };
                if exec.instr.class() == InstrClass::Load {
                    model.l1d.record(dout.l1_miss);
                    if dout.l1_miss {
                        model.l2d.record(dout.l2_miss);
                    }
                    model.dtlb.record(dout.tlb_miss);
                }
            }
            if let Some(kind) = BranchKind::from_opcode(exec.instr.op) {
                let pred = bpred.lookup(exec.pc, kind);
                let outcome = classify(kind, &pred, exec.taken, exec.next_pc);
                bpred.update(exec.pc, kind, exec.taken, exec.next_pc, &pred);
                model.taken.record(exec.taken);
                match outcome {
                    BranchOutcome::Correct => model.correct += 1,
                    BranchOutcome::FetchRedirect => model.redirect += 1,
                    BranchOutcome::Mispredict => model.mispredict += 1,
                }
                block_sizes.record(current_block);
                current_block = 0;
            }
        }
        model.block_mean = block_sizes.mean().unwrap_or(4.0);
        let mut var = 0.0;
        for (v, c) in block_sizes.iter() {
            var += c as f64 * (v as f64 - model.block_mean).powi(2);
        }
        model.block_std = (var / block_sizes.total().max(1) as f64).sqrt();
        model
    }

    /// Instructions profiled.
    pub fn instructions(&self) -> u64 {
        self.instructions
    }

    /// Mean profiled basic-block size.
    pub fn block_mean(&self) -> f64 {
        self.block_mean
    }

    /// Generates an HLS synthetic trace of roughly `target_len`
    /// instructions.
    ///
    /// One hundred basic blocks are built from the global
    /// distributions, wired into a random graph (each block has a
    /// taken-successor and a fall-through successor) and walked.
    ///
    /// # Panics
    ///
    /// Panics if the model was profiled over an empty stream.
    pub fn generate(&self, target_len: usize, seed: u64) -> SyntheticTrace {
        assert!(self.instructions > 0, "profile something first");
        let mut rng = SmallRng::seed_from_u64(seed);

        // Split the mix into branch and non-branch classes.
        let classes = InstrClass::ALL;
        let body_total: u64 = classes
            .iter()
            .filter(|c| !c.is_control())
            .map(|c| self.mix[c.index()])
            .sum();
        let branch_total: u64 = classes
            .iter()
            .filter(|c| c.is_control())
            .map(|c| self.mix[c.index()])
            .sum();
        let draw_class = |rng: &mut SmallRng, control: bool| -> InstrClass {
            let total = if control { branch_total } else { body_total };
            if total == 0 {
                return if control {
                    InstrClass::IntCondBranch
                } else {
                    InstrClass::IntAlu
                };
            }
            let mut point = rng.gen_range(0..total);
            for c in classes {
                if c.is_control() != control {
                    continue;
                }
                let n = self.mix[c.index()];
                if point < n {
                    return c;
                }
                point -= n;
            }
            unreachable!("mix covers the draw")
        };

        // Build the hundred blocks: sizes from a normal approximation
        // (Box–Muller), instructions from the global mix.
        struct HBlock {
            instrs: Vec<InstrClass>,
            taken_succ: usize,
            fall_succ: usize,
        }
        let mut blocks = Vec::with_capacity(HLS_BLOCKS);
        for _ in 0..HLS_BLOCKS {
            let (u1, u2): (f64, f64) = (rng.gen::<f64>().max(1e-12), rng.gen());
            let gauss = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
            let size = (self.block_mean + self.block_std * gauss).round().max(1.0) as usize;
            let mut instrs: Vec<InstrClass> =
                (1..size).map(|_| draw_class(&mut rng, false)).collect();
            instrs.push(draw_class(&mut rng, true));
            blocks.push(HBlock {
                instrs,
                taken_succ: rng.gen_range(0..HLS_BLOCKS),
                fall_succ: rng.gen_range(0..HLS_BLOCKS),
            });
        }

        // Walk the graph emitting flags from the global distributions.
        let branch_totals = self.correct + self.redirect + self.mispredict;
        let mut trace = SyntheticTrace::default();
        let mut at = 0usize;
        while trace.len() < target_len {
            let block = &blocks[at];
            let n = block.instrs.len();
            for (i, &class) in block.instrs.iter().enumerate() {
                let mut si = SyntheticInstr {
                    class,
                    dep: [None, None],
                    l1i_miss: rng.gen::<f64>() < self.l1i.probability(),
                    l2i_miss: false,
                    itlb_miss: rng.gen::<f64>() < self.itlb.probability(),
                    dmem: None,
                    branch: None,
                    anti_dep: [None, None],
                };
                si.l2i_miss = si.l1i_miss && rng.gen::<f64>() < self.l2i.probability();
                // Dependencies from the global distributions, retried to
                // avoid branch/store producers (same rule as the SFG
                // generator).
                for p in 0..2 {
                    if self.dep[p].is_empty() {
                        continue;
                    }
                    for _ in 0..100 {
                        let d = self.dep[p].sample_with(rng.gen()).unwrap_or(0);
                        if d == 0 {
                            break;
                        }
                        if let Some(src) = trace.len().checked_sub(d as usize) {
                            if trace.instrs()[src].class.has_dest() {
                                si.dep[p] = Some(d);
                                break;
                            }
                        } else {
                            break;
                        }
                    }
                }
                if class == InstrClass::Load {
                    let l1 = rng.gen::<f64>() < self.l1d.probability();
                    si.dmem = Some(DataFlags {
                        l1_miss: l1,
                        l2_miss: l1 && rng.gen::<f64>() < self.l2d.probability(),
                        tlb_miss: rng.gen::<f64>() < self.dtlb.probability(),
                    });
                }
                let mut taken = false;
                if i + 1 == n {
                    taken = rng.gen::<f64>() < self.taken.probability();
                    let outcome = if branch_totals == 0 {
                        SyntheticOutcome::Correct
                    } else {
                        let point = rng.gen_range(0..branch_totals);
                        if point < self.correct {
                            SyntheticOutcome::Correct
                        } else if point < self.correct + self.redirect {
                            SyntheticOutcome::FetchRedirect
                        } else {
                            SyntheticOutcome::Mispredict
                        }
                    };
                    si.branch = Some(BranchFlags { taken, outcome });
                }
                trace.push(si);
                if i + 1 == n {
                    at = if taken {
                        block.taken_succ
                    } else {
                        block.fall_succ
                    };
                }
            }
        }
        trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssim_core::simulate_trace;

    fn model() -> HlsModel {
        let program = ssim_workloads::by_name("gzip").unwrap().program();
        HlsModel::profile(&program, &MachineConfig::baseline(), 1_000_000, 400_000)
    }

    #[test]
    fn profiles_global_statistics() {
        let m = model();
        assert!(m.instructions() > 300_000);
        assert!(m.block_mean() > 1.0 && m.block_mean() < 64.0);
    }

    #[test]
    fn generates_and_simulates() {
        let m = model();
        let t = m.generate(50_000, 3);
        assert!(t.len() >= 50_000);
        let r = simulate_trace(&t, &MachineConfig::baseline());
        assert!(r.ipc() > 0.05 && r.ipc() < 8.0);
    }

    #[test]
    fn generation_is_seeded() {
        let m = model();
        assert_eq!(
            m.generate(10_000, 5).instrs(),
            m.generate(10_000, 5).instrs()
        );
        assert_ne!(
            m.generate(10_000, 5).instrs(),
            m.generate(10_000, 6).instrs()
        );
    }
}
