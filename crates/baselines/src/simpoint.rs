//! SimPoint phase sampling (Sherwood et al., ASPLOS 2002).
//!
//! The paper compares statistical simulation against SimPoint
//! (Figure 8, Table 1): the dynamic stream is split into fixed-size
//! intervals; each interval is summarised by a **basic-block vector**
//! (BBV); BBVs are randomly projected to a low dimension and clustered
//! with k-means (k chosen by a Bayesian information criterion); one
//! representative interval per cluster is then simulated with the
//! execution-driven simulator and the results combined with cluster
//! weights.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use ssim_func::Machine;
use ssim_isa::Program;
use ssim_uarch::{ExecSim, MachineConfig};
use std::collections::HashMap;

/// Dimensionality of the random projection (SimPoint's default is 15).
pub const PROJECTED_DIMS: usize = 15;

/// One chosen simulation point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimPoint {
    /// Interval index (0-based) into the profiled stream.
    pub interval: usize,
    /// Weight of this point's phase (fraction of intervals).
    pub weight: f64,
}

/// Configuration for phase analysis.
#[derive(Debug, Clone, Copy)]
pub struct SimPointConfig {
    /// Instructions per interval.
    pub interval_len: u64,
    /// Number of intervals to analyse.
    pub intervals: usize,
    /// Maximum clusters to consider.
    pub max_k: usize,
    /// RNG seed for projection and k-means initialisation.
    pub seed: u64,
}

impl Default for SimPointConfig {
    fn default() -> Self {
        SimPointConfig {
            interval_len: 1_000_000,
            intervals: 20,
            max_k: 6,
            seed: 1,
        }
    }
}

/// Collects per-interval basic-block vectors, already projected to
/// [`PROJECTED_DIMS`] dimensions and normalised.
fn collect_bbvs(program: &Program, cfg: &SimPointConfig, skip: u64) -> Vec<[f64; PROJECTED_DIMS]> {
    let mut machine = Machine::new(program);
    for _ in 0..skip {
        if machine.step().is_none() {
            break;
        }
    }
    // Random projection: each basic block (keyed by start PC) maps to a
    // deterministic pseudo-random +-1 vector derived from its PC.
    let project = |pc: usize| -> [f64; PROJECTED_DIMS] {
        let mut h = pc as u64 ^ 0x9e37_79b9_7f4a_7c15;
        let mut v = [0.0; PROJECTED_DIMS];
        for slot in &mut v {
            h ^= h << 13;
            h ^= h >> 7;
            h ^= h << 17;
            *slot = if h & 1 == 1 { 1.0 } else { -1.0 };
        }
        v
    };
    let mut projections: HashMap<usize, [f64; PROJECTED_DIMS]> = HashMap::new();

    let mut bbvs = Vec::with_capacity(cfg.intervals);
    'outer: for _ in 0..cfg.intervals {
        let mut bbv = [0.0; PROJECTED_DIMS];
        let mut block_start = machine.pc();
        let mut block_len = 0u64;
        let mut count = 0u64;
        while count < cfg.interval_len {
            let Some(exec) = machine.step() else {
                if count == 0 {
                    break 'outer;
                }
                break;
            };
            count += 1;
            block_len += 1;
            if exec.instr.is_control() {
                let p = projections
                    .entry(block_start)
                    .or_insert_with(|| project(block_start));
                for (acc, x) in bbv.iter_mut().zip(p.iter()) {
                    *acc += *x * block_len as f64;
                }
                block_start = exec.next_pc;
                block_len = 0;
            }
        }
        // Normalise to unit L1-ish scale so interval length cancels.
        let norm: f64 = bbv.iter().map(|x| x.abs()).sum::<f64>().max(1e-12);
        for x in &mut bbv {
            *x /= norm;
        }
        bbvs.push(bbv);
        if machine.halted() {
            break;
        }
    }
    bbvs
}

fn kmeans(
    points: &[[f64; PROJECTED_DIMS]],
    k: usize,
    rng: &mut SmallRng,
) -> (Vec<usize>, Vec<[f64; PROJECTED_DIMS]>, f64) {
    let n = points.len();
    let mut centroids: Vec<[f64; PROJECTED_DIMS]> =
        (0..k).map(|_| points[rng.gen_range(0..n)]).collect();
    let mut assign = vec![0usize; n];
    let dist2 = |a: &[f64; PROJECTED_DIMS], b: &[f64; PROJECTED_DIMS]| -> f64 {
        a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
    };
    for _ in 0..50 {
        let mut changed = false;
        for (i, p) in points.iter().enumerate() {
            let best = (0..k)
                .min_by(|&a, &b| {
                    dist2(p, &centroids[a])
                        .partial_cmp(&dist2(p, &centroids[b]))
                        .unwrap()
                })
                .expect("k > 0");
            if assign[i] != best {
                assign[i] = best;
                changed = true;
            }
        }
        let mut sums = vec![[0.0; PROJECTED_DIMS]; k];
        let mut counts = vec![0usize; k];
        for (i, p) in points.iter().enumerate() {
            counts[assign[i]] += 1;
            for (s, x) in sums[assign[i]].iter_mut().zip(p) {
                *s += x;
            }
        }
        for c in 0..k {
            if counts[c] > 0 {
                for s in &mut sums[c] {
                    *s /= counts[c] as f64;
                }
                centroids[c] = sums[c];
            } else {
                centroids[c] = points[rng.gen_range(0..n)];
            }
        }
        if !changed {
            break;
        }
    }
    let sse: f64 = points
        .iter()
        .enumerate()
        .map(|(i, p)| dist2(p, &centroids[assign[i]]))
        .sum();
    (assign, centroids, sse)
}

/// Chooses representative simulation points for `program`.
///
/// Runs k-means for `k = 1..=max_k` and keeps the clustering with the
/// best BIC-style score; the representative of each cluster is the
/// interval closest to its centroid, weighted by cluster population.
pub fn choose(program: &Program, cfg: &SimPointConfig, skip: u64) -> Vec<SimPoint> {
    let bbvs = collect_bbvs(program, cfg, skip);
    if bbvs.is_empty() {
        return Vec::new();
    }
    let n = bbvs.len();
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    // (score, assignment, centroids, k) of the best clustering so far.
    type BestClustering = (f64, Vec<usize>, Vec<[f64; PROJECTED_DIMS]>, usize);
    let mut best: Option<BestClustering> = None;
    for k in 1..=cfg.max_k.min(n) {
        let (assign, centroids, sse) = kmeans(&bbvs, k, &mut rng);
        // BIC-flavoured score: likelihood term + model complexity
        // penalty (simplified spherical-Gaussian form).
        let variance = (sse / n as f64).max(1e-9);
        let score = -(n as f64) * variance.ln() - (k as f64) * (n as f64).ln();
        if best.as_ref().is_none_or(|(s, ..)| score > *s) {
            best = Some((score, assign, centroids, k));
        }
    }
    let (_, assign, centroids, k) = best.expect("at least k = 1 was evaluated");

    let dist2 = |a: &[f64; PROJECTED_DIMS], b: &[f64; PROJECTED_DIMS]| -> f64 {
        a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
    };
    let mut points = Vec::new();
    for (c, centroid) in centroids.iter().enumerate().take(k) {
        let members: Vec<usize> = (0..n).filter(|&i| assign[i] == c).collect();
        if members.is_empty() {
            continue;
        }
        let rep = *members
            .iter()
            .min_by(|&&a, &&b| {
                dist2(&bbvs[a], centroid)
                    .partial_cmp(&dist2(&bbvs[b], centroid))
                    .unwrap()
            })
            .expect("cluster is non-empty");
        points.push(SimPoint {
            interval: rep,
            weight: members.len() as f64 / n as f64,
        });
    }
    points.sort_by_key(|p| p.interval);
    points
}

/// Estimates IPC by execution-driven simulation of the chosen points.
///
/// Each representative interval is simulated in isolation (after
/// fast-forwarding to its start) and the per-point IPCs are combined
/// with the phase weights.
///
/// # Panics
///
/// Panics if `points` is empty.
pub fn estimate_ipc(
    program: &Program,
    machine: &MachineConfig,
    points: &[SimPoint],
    cfg: &SimPointConfig,
    skip: u64,
) -> f64 {
    assert!(!points.is_empty(), "no simulation points chosen");
    let mut ipc = 0.0;
    for p in points {
        let mut sim = ExecSim::new(machine, program);
        // Fast-forward architecturally, but warm the locality
        // structures over the run-up to the interval so the sample is
        // not biased by compulsory misses.
        sim.skip(skip);
        sim.warm_skip(p.interval as u64 * cfg.interval_len);
        let r = sim.run(cfg.interval_len);
        ipc += p.weight * r.ipc();
    }
    ipc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> SimPointConfig {
        SimPointConfig {
            interval_len: 200_000,
            intervals: 10,
            max_k: 4,
            seed: 7,
        }
    }

    #[test]
    fn chooses_weighted_points() {
        let program = ssim_workloads::by_name("bzip2").unwrap().program();
        let points = choose(&program, &cfg(), 0);
        assert!(!points.is_empty());
        assert!(points.len() <= 4);
        let total: f64 = points.iter().map(|p| p.weight).sum();
        assert!((total - 1.0).abs() < 1e-9, "weights sum to 1, got {total}");
        for p in &points {
            assert!(p.interval < 10);
        }
    }

    #[test]
    fn phase_program_gets_multiple_clusters() {
        // bzip2 alternates RLE and MTF phases within a round; with
        // small intervals the BBVs separate.
        let program = ssim_workloads::by_name("bzip2").unwrap().program();
        let points = choose(
            &program,
            &SimPointConfig {
                interval_len: 100_000,
                intervals: 16,
                max_k: 5,
                seed: 3,
            },
            2_200_000, // skip init
        );
        assert!(
            points.len() >= 2,
            "expected phase separation, got {points:?}"
        );
    }

    #[test]
    fn estimates_plausible_ipc() {
        let program = ssim_workloads::by_name("crafty").unwrap().program();
        let c = SimPointConfig {
            interval_len: 150_000,
            intervals: 8,
            max_k: 3,
            seed: 1,
        };
        let points = choose(&program, &c, 0);
        let ipc = estimate_ipc(&program, &MachineConfig::baseline(), &points, &c, 0);
        assert!(ipc > 0.2 && ipc < 8.0, "IPC {ipc}");
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let program = ssim_workloads::by_name("vpr").unwrap().program();
        let a = choose(&program, &cfg(), 0);
        let b = choose(&program, &cfg(), 0);
        assert_eq!(a, b);
    }
}
