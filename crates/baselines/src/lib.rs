//! Baseline techniques the paper compares against.
//!
//! * [`hls`] — the HLS statistical model of Oskin, Chong and Farrens
//!   (ISCA 2000), as characterised in §5 of the Eeckhout et al. paper:
//!   one hundred synthetic basic blocks with normally-distributed
//!   sizes, instructions drawn from the *overall* instruction-mix
//!   distribution (no per-block structure), global branch
//!   predictability and global cache statistics. Comparing it to the
//!   SFG approach isolates the value of control-flow modeling
//!   (Figure 7).
//! * [`simpoint`] — SimPoint phase sampling (Sherwood et al.,
//!   ASPLOS 2002): basic-block vectors per interval, random projection,
//!   k-means with a Bayesian score, and weighted execution-driven
//!   simulation of one representative interval per phase (Figure 8).

pub mod hls;
pub mod simpoint;
