//! The two-level memory hierarchy with a unified L2.

use crate::cache::{Cache, CacheConfig};
use crate::tlb::{Tlb, TlbConfig};

/// Geometry of the full hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HierarchyConfig {
    /// L1 instruction cache.
    pub l1i: CacheConfig,
    /// L1 data cache.
    pub l1d: CacheConfig,
    /// Unified L2 cache.
    pub l2: CacheConfig,
    /// Instruction TLB.
    pub itlb: TlbConfig,
    /// Data TLB.
    pub dtlb: TlbConfig,
}

impl HierarchyConfig {
    /// The paper's Table 2 hierarchy: 8 KB/2-way/32 B L1I,
    /// 16 KB/4-way/32 B L1D, 1 MB/4-way/64 B unified L2,
    /// 32-entry 8-way TLBs with 4 KB pages.
    pub fn baseline() -> Self {
        HierarchyConfig {
            l1i: CacheConfig::new(8 << 10, 2, 32),
            l1d: CacheConfig::new(16 << 10, 4, 32),
            l2: CacheConfig::new(1 << 20, 4, 64),
            itlb: TlbConfig::baseline(),
            dtlb: TlbConfig::baseline(),
        }
    }

    /// Scales all three cache capacities by `factor` (TLBs fixed) — the
    /// Table 4 cache-size sensitivity axis.
    ///
    /// # Panics
    ///
    /// Panics if a scaled geometry is invalid.
    pub fn scaled(&self, factor: f64) -> Self {
        HierarchyConfig {
            l1i: self.l1i.scaled(factor),
            l1d: self.l1d.scaled(factor),
            l2: self.l2.scaled(factor),
            itlb: self.itlb,
            dtlb: self.dtlb,
        }
    }
}

impl Default for HierarchyConfig {
    fn default() -> Self {
        Self::baseline()
    }
}

/// The outcome of one memory access through the hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AccessOutcome {
    /// L1 miss (instruction or data, depending on the access side).
    pub l1_miss: bool,
    /// Unified-L2 miss (only possible when `l1_miss`).
    pub l2_miss: bool,
    /// TLB miss on the access side.
    pub tlb_miss: bool,
}

/// The six locality probabilities of the paper's statistical profile
/// (§2.1.2), as raw miss rates.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct HierarchyStats {
    /// L1 I-cache miss rate.
    pub l1i_miss_rate: f64,
    /// L2 miss rate, instruction accesses only.
    pub l2i_miss_rate: f64,
    /// L1 D-cache miss rate.
    pub l1d_miss_rate: f64,
    /// L2 miss rate, data accesses only.
    pub l2d_miss_rate: f64,
    /// I-TLB miss rate.
    pub itlb_miss_rate: f64,
    /// D-TLB miss rate.
    pub dtlb_miss_rate: f64,
    /// L1 D-cache miss rate over *loads only* (stores usually revisit
    /// lines their loads touched, so the combined rate is diluted;
    /// synthetic-trace validation compares load rates).
    pub l1d_load_miss_rate: f64,
}

/// The composed memory hierarchy.
///
/// L2 is unified: both instruction and data refills access the same
/// structure, but misses are accounted separately by source, as the
/// paper requires ("we make a distinction between L2 cache misses due to
/// instructions and due to data", §2.1.2 footnote).
#[derive(Debug, Clone)]
pub struct Hierarchy {
    l1i: Cache,
    l1d: Cache,
    l2: Cache,
    itlb: Tlb,
    dtlb: Tlb,
    l2i: (u64, u64),   // (accesses, misses) from the instruction side
    l2d: (u64, u64),   // (accesses, misses) from the data side
    loads: (u64, u64), // (accesses, misses) from loads specifically
}

impl Hierarchy {
    /// Builds the hierarchy described by `config`.
    pub fn new(config: &HierarchyConfig) -> Self {
        Hierarchy {
            l1i: Cache::new(config.l1i),
            l1d: Cache::new(config.l1d),
            l2: Cache::new(config.l2),
            itlb: Tlb::new(config.itlb),
            dtlb: Tlb::new(config.dtlb),
            l2i: (0, 0),
            l2d: (0, 0),
            loads: (0, 0),
        }
    }

    /// Fetches the instruction block at byte address `addr`.
    pub fn access_instr(&mut self, addr: u64) -> AccessOutcome {
        let tlb_miss = !self.itlb.access(addr);
        let l1_miss = !self.l1i.access(addr);
        let mut l2_miss = false;
        if l1_miss {
            self.l2i.0 += 1;
            l2_miss = !self.l2.access(addr);
            if l2_miss {
                self.l2i.1 += 1;
            }
        }
        AccessOutcome {
            l1_miss,
            l2_miss,
            tlb_miss,
        }
    }

    /// Performs a *load* access, additionally tracked in the load-only
    /// miss rate.
    pub fn access_load(&mut self, addr: u64) -> AccessOutcome {
        let out = self.access_data(addr);
        self.loads.0 += 1;
        if out.l1_miss {
            self.loads.1 += 1;
        }
        out
    }

    /// Performs a data access (load or store) at byte address `addr`.
    pub fn access_data(&mut self, addr: u64) -> AccessOutcome {
        let tlb_miss = !self.dtlb.access(addr);
        let l1_miss = !self.l1d.access(addr);
        let mut l2_miss = false;
        if l1_miss {
            self.l2d.0 += 1;
            l2_miss = !self.l2.access(addr);
            if l2_miss {
                self.l2d.1 += 1;
            }
        }
        AccessOutcome {
            l1_miss,
            l2_miss,
            tlb_miss,
        }
    }

    /// The six miss rates accumulated so far.
    pub fn stats(&self) -> HierarchyStats {
        let rate = |(a, m): (u64, u64)| if a == 0 { 0.0 } else { m as f64 / a as f64 };
        HierarchyStats {
            l1i_miss_rate: self.l1i.miss_rate(),
            l2i_miss_rate: rate(self.l2i),
            l1d_miss_rate: self.l1d.miss_rate(),
            l2d_miss_rate: rate(self.l2d),
            itlb_miss_rate: self.itlb.miss_rate(),
            dtlb_miss_rate: self.dtlb.miss_rate(),
            l1d_load_miss_rate: rate(self.loads),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_geometry_matches_table2() {
        let c = HierarchyConfig::baseline();
        assert_eq!(c.l1i.size, 8 << 10);
        assert_eq!(c.l1d.assoc, 4);
        assert_eq!(c.l2.block, 64);
        assert_eq!(c.itlb.entries, 32);
    }

    #[test]
    fn l2_only_touched_on_l1_miss() {
        let mut h = Hierarchy::new(&HierarchyConfig::baseline());
        let first = h.access_data(0x1234);
        assert!(first.l1_miss && first.l2_miss && first.tlb_miss);
        let second = h.access_data(0x1234);
        assert!(!second.l1_miss && !second.l2_miss && !second.tlb_miss);
        let s = h.stats();
        assert!((s.l1d_miss_rate - 0.5).abs() < 1e-12);
        assert!(
            (s.l2d_miss_rate - 1.0).abs() < 1e-12,
            "one L2 access, one miss"
        );
    }

    #[test]
    fn unified_l2_shares_capacity_between_sides() {
        let mut h = Hierarchy::new(&HierarchyConfig::baseline());
        // Instruction fetch warms the L2 block at 0x4000.
        h.access_instr(0x4000);
        // A data access to the same block hits in L2 (misses L1D).
        let out = h.access_data(0x4000);
        assert!(out.l1_miss);
        assert!(
            !out.l2_miss,
            "unified L2 was warmed by the instruction side"
        );
    }

    #[test]
    fn l2_miss_accounting_split_by_source() {
        let mut h = Hierarchy::new(&HierarchyConfig::baseline());
        h.access_instr(0x8000);
        h.access_data(0x10_0000);
        let s = h.stats();
        assert!((s.l2i_miss_rate - 1.0).abs() < 1e-12);
        assert!((s.l2d_miss_rate - 1.0).abs() < 1e-12);
        assert!((s.itlb_miss_rate - 1.0).abs() < 1e-12);
        assert!((s.dtlb_miss_rate - 1.0).abs() < 1e-12);
    }

    #[test]
    fn scaling_grows_capacity() {
        let base = HierarchyConfig::baseline();
        let big = base.scaled(2.0);
        assert_eq!(big.l1i.size, 16 << 10);
        assert_eq!(big.l2.size, 2 << 20);
        assert_eq!(big.itlb.entries, base.itlb.entries);
    }
}
