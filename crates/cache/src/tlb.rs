//! Translation lookaside buffers.

/// Geometry of a TLB.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TlbConfig {
    /// Number of entries.
    pub entries: usize,
    /// Associativity.
    pub assoc: usize,
    /// Page size in bytes.
    pub page: usize,
}

impl TlbConfig {
    /// The paper's Table 2 TLBs: 32 entries, 8-way, 4 KB pages.
    pub fn baseline() -> Self {
        TlbConfig {
            entries: 32,
            assoc: 8,
            page: 4 << 10,
        }
    }
}

impl Default for TlbConfig {
    fn default() -> Self {
        Self::baseline()
    }
}

/// A set-associative TLB with LRU replacement.
///
/// Only translation presence is modeled; a miss allocates the page
/// entry.
#[derive(Debug, Clone)]
pub struct Tlb {
    sets: Vec<Vec<(u64, u64)>>,
    assoc: usize,
    set_mask: u64,
    page_shift: u32,
    tick: u64,
    accesses: u64,
    misses: u64,
}

impl Tlb {
    /// Builds a TLB with geometry `config`.
    ///
    /// # Panics
    ///
    /// Panics unless entries/assoc/page are positive powers of two with
    /// `entries % assoc == 0`.
    pub fn new(config: TlbConfig) -> Self {
        assert!(
            config.entries > 0 && config.assoc > 0,
            "TLB parameters must be positive"
        );
        assert!(
            config.entries.is_multiple_of(config.assoc),
            "entries must be divisible by assoc"
        );
        assert!(
            config.page.is_power_of_two(),
            "page size must be a power of two"
        );
        let sets = config.entries / config.assoc;
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        Tlb {
            sets: vec![Vec::with_capacity(config.assoc); sets],
            assoc: config.assoc,
            set_mask: sets as u64 - 1,
            page_shift: config.page.trailing_zeros(),
            tick: 0,
            accesses: 0,
            misses: 0,
        }
    }

    /// Translates the page of byte address `addr`; returns `true` on a
    /// TLB hit. Misses allocate.
    pub fn access(&mut self, addr: u64) -> bool {
        self.tick += 1;
        self.accesses += 1;
        let vpn = addr >> self.page_shift;
        let set_index = (vpn & self.set_mask) as usize;
        let tag = vpn >> self.set_mask.count_ones();
        let tick = self.tick;
        let assoc = self.assoc;
        let set = &mut self.sets[set_index];
        if let Some(e) = set.iter_mut().find(|(t, _)| *t == tag) {
            e.1 = tick;
            return true;
        }
        self.misses += 1;
        if set.len() < assoc {
            set.push((tag, tick));
        } else {
            let victim = set
                .iter_mut()
                .min_by_key(|(_, last)| *last)
                .expect("non-empty set has an LRU victim");
            *victim = (tag, tick);
        }
        false
    }

    /// Total accesses so far.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Total misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Miss rate (`0.0` before any access).
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_page_hits() {
        let mut t = Tlb::new(TlbConfig::baseline());
        assert!(!t.access(0x1000));
        assert!(t.access(0x1ff8), "same 4K page");
        assert!(!t.access(0x2000), "next page misses");
    }

    #[test]
    fn capacity_eviction() {
        // 4 entries, fully associative within 1 set (assoc 4), 4K pages.
        let mut t = Tlb::new(TlbConfig {
            entries: 4,
            assoc: 4,
            page: 4096,
        });
        for p in 0..4u64 {
            t.access(p << 12);
        }
        // All four resident.
        for p in 0..4u64 {
            assert!(t.access(p << 12));
        }
        // A fifth page evicts the LRU (page 0).
        t.access(4 << 12);
        assert!(!t.access(0), "page 0 was evicted");
    }

    #[test]
    fn stats() {
        let mut t = Tlb::new(TlbConfig::baseline());
        t.access(0);
        t.access(0);
        assert_eq!(t.accesses(), 2);
        assert_eq!(t.misses(), 1);
        assert!((t.miss_rate() - 0.5).abs() < 1e-12);
    }
}
