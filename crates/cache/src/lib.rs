//! Cache and TLB models for the ssim framework.
//!
//! Implements the memory-hierarchy structures of the paper's baseline
//! configuration (Table 2): split L1 instruction/data caches, a unified
//! L2, and separate instruction/data TLBs. [`Hierarchy`] composes them
//! and reports the **six locality probabilities** the paper's
//! statistical profile records (§2.1.2): L1 I-cache, L2-instruction,
//! L1 D-cache, L2-data, I-TLB and D-TLB miss rates.
//!
//! All structures are set-associative with true-LRU replacement, like
//! SimpleScalar's `sim-cache`.
//!
//! # Examples
//!
//! ```
//! use ssim_cache::{Cache, CacheConfig};
//!
//! let mut l1 = Cache::new(CacheConfig::new(16 << 10, 4, 32));
//! assert!(!l1.access(0x1000)); // cold miss
//! assert!(l1.access(0x1000)); // hit
//! assert!(l1.access(0x1008)); // same 32-byte block
//! ```

mod cache;
mod hierarchy;
mod sweep;
mod tlb;

pub use cache::{Cache, CacheConfig};
pub use hierarchy::{AccessOutcome, Hierarchy, HierarchyConfig, HierarchyStats};
pub use sweep::{AssocSweep, CapacitySweep};
pub use tlb::{Tlb, TlbConfig};
