//! Single-pass multi-configuration cache simulation (cheetah-style).
//!
//! The paper notes that statistical profiling's need to re-measure
//! cache characteristics per configuration "does not limit its
//! applicability. Indeed, a number of tools exist that measure a wide
//! range of these structures in parallel, e.g., the cheetah simulator
//! which is a single-pass multiple-configuration cache simulator"
//! (§2.1.2, citing Sugumar & Abraham).
//!
//! This module implements the two classic single-pass algorithms:
//!
//! * [`AssocSweep`] — for a fixed set count and block size, LRU caches
//!   are *inclusive* across associativity: a reference that hits at LRU
//!   stack depth `d` within its set hits every cache with
//!   associativity ≥ `d`. One pass yields the miss rate of every
//!   associativity `1..=max` simultaneously.
//! * [`CapacitySweep`] — Mattson's stack algorithm for fully-associative
//!   LRU caches: maintaining one global LRU stack of blocks yields the
//!   miss count for *every* capacity in one pass.
//!
//! # Examples
//!
//! ```
//! use ssim_cache::AssocSweep;
//!
//! let mut sweep = AssocSweep::new(64, 32, 8);
//! for round in 0..4 {
//!     let _ = round;
//!     for block in 0..4u64 {
//!         sweep.access(block * 64 * 32); // 4 conflicting blocks
//!     }
//! }
//! // A direct-mapped or 2-way cache thrashes; 4-way captures the loop.
//! assert!(sweep.miss_rate(4) < sweep.miss_rate(2));
//! assert!(sweep.miss_rate(2) <= sweep.miss_rate(1));
//! ```

/// Single-pass associativity sweep over set-associative LRU caches.
///
/// All simulated caches share `sets` and `block`; one [`AssocSweep::access`]
/// updates every associativity `1..=max_assoc` at once via the LRU
/// stack-depth inclusion property.
#[derive(Debug, Clone)]
pub struct AssocSweep {
    sets: Vec<Vec<u64>>, // per-set LRU stack of tags (front = MRU)
    max_assoc: usize,
    set_mask: u64,
    block_shift: u32,
    /// `depth_hits[d]` = accesses that hit at stack depth `d` (0-based).
    depth_hits: Vec<u64>,
    accesses: u64,
}

impl AssocSweep {
    /// Creates a sweep over associativities `1..=max_assoc` for caches
    /// of `sets` sets and `block`-byte blocks.
    ///
    /// # Panics
    ///
    /// Panics unless `sets` and `block` are powers of two and
    /// `max_assoc > 0`.
    pub fn new(sets: usize, block: usize, max_assoc: usize) -> Self {
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        assert!(block.is_power_of_two(), "block size must be a power of two");
        assert!(max_assoc > 0, "need at least one way");
        AssocSweep {
            sets: vec![Vec::with_capacity(max_assoc); sets],
            max_assoc,
            set_mask: sets as u64 - 1,
            block_shift: block.trailing_zeros(),
            depth_hits: vec![0; max_assoc],
            accesses: 0,
        }
    }

    /// Performs one access; returns the minimum associativity that hits
    /// (`None` if even the `max_assoc`-way cache misses).
    pub fn access(&mut self, addr: u64) -> Option<usize> {
        self.accesses += 1;
        let block_addr = addr >> self.block_shift;
        let set = (block_addr & self.set_mask) as usize;
        let tag = block_addr >> self.set_mask.count_ones();
        let stack = &mut self.sets[set];
        match stack.iter().position(|&t| t == tag) {
            Some(depth) => {
                stack.remove(depth);
                stack.insert(0, tag);
                if depth < self.max_assoc {
                    self.depth_hits[depth] += 1;
                    Some(depth + 1)
                } else {
                    None
                }
            }
            None => {
                stack.insert(0, tag);
                stack.truncate(self.max_assoc);
                None
            }
        }
    }

    /// Total accesses so far.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Misses a cache of associativity `assoc` would have seen.
    ///
    /// # Panics
    ///
    /// Panics if `assoc` is zero or exceeds `max_assoc`.
    pub fn misses(&self, assoc: usize) -> u64 {
        assert!(
            (1..=self.max_assoc).contains(&assoc),
            "associativity out of range"
        );
        let hits: u64 = self.depth_hits[..assoc].iter().sum();
        self.accesses - hits
    }

    /// Miss rate for associativity `assoc` (`0.0` before any access).
    ///
    /// # Panics
    ///
    /// See [`AssocSweep::misses`].
    pub fn miss_rate(&self, assoc: usize) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses(assoc) as f64 / self.accesses as f64
        }
    }
}

/// Mattson's single-pass stack algorithm for fully-associative LRU
/// caches: one pass yields the miss count of every capacity.
#[derive(Debug, Clone, Default)]
pub struct CapacitySweep {
    stack: Vec<u64>, // LRU stack of block addresses (front = MRU)
    block_shift: u32,
    /// `depth_hits[d]` = hits at stack depth `d` (0-based), capped.
    depth_hits: Vec<u64>,
    deep_hits: u64, // hits beyond the tracked depth
    accesses: u64,
    max_depth: usize,
}

impl CapacitySweep {
    /// Creates a sweep for `block`-byte blocks, tracking stack depths up
    /// to `max_blocks` (the largest capacity of interest, in blocks).
    ///
    /// # Panics
    ///
    /// Panics unless `block` is a power of two and `max_blocks > 0`.
    pub fn new(block: usize, max_blocks: usize) -> Self {
        assert!(block.is_power_of_two(), "block size must be a power of two");
        assert!(max_blocks > 0, "need at least one block of capacity");
        CapacitySweep {
            stack: Vec::new(),
            block_shift: block.trailing_zeros(),
            depth_hits: vec![0; max_blocks],
            deep_hits: 0,
            accesses: 0,
            max_depth: max_blocks,
        }
    }

    /// Performs one access, returning the stack distance (`None` for a
    /// cold miss).
    pub fn access(&mut self, addr: u64) -> Option<usize> {
        self.accesses += 1;
        let block = addr >> self.block_shift;
        match self.stack.iter().position(|&b| b == block) {
            Some(depth) => {
                self.stack.remove(depth);
                self.stack.insert(0, block);
                if depth < self.max_depth {
                    self.depth_hits[depth] += 1;
                } else {
                    self.deep_hits += 1;
                }
                Some(depth)
            }
            None => {
                self.stack.insert(0, block);
                // Bound memory: blocks deeper than any capacity of
                // interest can be dropped.
                if self.stack.len() > self.max_depth * 2 {
                    self.stack.truncate(self.max_depth + 1);
                }
                None
            }
        }
    }

    /// Total accesses so far.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Misses a fully-associative LRU cache of `blocks` blocks would
    /// have seen.
    ///
    /// # Panics
    ///
    /// Panics if `blocks` is zero or exceeds the tracked maximum.
    pub fn misses(&self, blocks: usize) -> u64 {
        assert!(
            (1..=self.max_depth).contains(&blocks),
            "capacity out of range"
        );
        let hits: u64 = self.depth_hits[..blocks].iter().sum();
        self.accesses - hits
    }

    /// Miss rate for a capacity of `blocks` blocks.
    ///
    /// # Panics
    ///
    /// See [`CapacitySweep::misses`].
    pub fn miss_rate(&self, blocks: usize) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses(blocks) as f64 / self.accesses as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::{Cache, CacheConfig};

    /// The sweep must agree exactly with N independent LRU caches.
    #[test]
    fn assoc_sweep_matches_individual_caches() {
        let sets = 16;
        let block = 32;
        let max_assoc = 8;
        let mut sweep = AssocSweep::new(sets, block, max_assoc);
        let mut singles: Vec<Cache> = (1..=max_assoc)
            .map(|a| Cache::new(CacheConfig::new(sets * a * block, a, block)))
            .collect();
        // Pseudo-random but reproducible access stream.
        let mut x = 0x9e37_79b9u64;
        for _ in 0..20_000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let addr = x % (1 << 16);
            sweep.access(addr);
            for c in &mut singles {
                c.access(addr);
            }
        }
        for (i, c) in singles.iter().enumerate() {
            assert_eq!(
                sweep.misses(i + 1),
                c.misses(),
                "associativity {} diverged",
                i + 1
            );
        }
    }

    #[test]
    fn assoc_miss_rates_are_monotone() {
        let mut sweep = AssocSweep::new(8, 64, 16);
        let mut x = 1u64;
        for _ in 0..50_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            sweep.access(x % (1 << 20));
        }
        for a in 1..16 {
            assert!(
                sweep.miss_rate(a + 1) <= sweep.miss_rate(a) + 1e-12,
                "LRU inclusion violated at associativity {a}"
            );
        }
    }

    #[test]
    fn capacity_sweep_matches_direct_simulation() {
        let block = 64;
        let mut sweep = CapacitySweep::new(block, 64);
        // Fully-associative LRU cache of 16 blocks = 1024 bytes, 1 set.
        let mut direct = Cache::new(CacheConfig::new(16 * block, 16, block));
        let mut x = 7u64;
        for _ in 0..30_000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let addr = x % (1 << 14);
            sweep.access(addr);
            direct.access(addr);
        }
        assert_eq!(sweep.misses(16), direct.misses());
    }

    #[test]
    fn capacity_miss_rates_are_monotone() {
        let mut sweep = CapacitySweep::new(32, 128);
        let mut x = 3u64;
        for _ in 0..40_000 {
            x = x.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
            sweep.access(x % (1 << 18));
        }
        for b in 1..128 {
            assert!(sweep.miss_rate(b + 1) <= sweep.miss_rate(b) + 1e-12);
        }
    }

    #[test]
    fn sequential_stream_has_pure_cold_misses() {
        let mut sweep = CapacitySweep::new(64, 32);
        for i in 0..1000u64 {
            assert_eq!(sweep.access(i * 64), None, "every block is new");
        }
        assert_eq!(sweep.misses(32), 1000);
    }

    #[test]
    fn tight_loop_fits_when_capacity_suffices() {
        let mut sweep = CapacitySweep::new(64, 32);
        for _ in 0..100 {
            for b in 0..8u64 {
                sweep.access(b * 64);
            }
        }
        // 8 cold misses; everything else hits at depth <= 7.
        assert_eq!(sweep.misses(8), 8);
        assert!(sweep.misses(7) > 8, "7 blocks cannot hold an 8-block loop");
    }
}
