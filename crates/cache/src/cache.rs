//! A set-associative cache with true-LRU replacement.

/// Geometry of one cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size: usize,
    /// Associativity (ways per set).
    pub assoc: usize,
    /// Block (line) size in bytes.
    pub block: usize,
}

impl CacheConfig {
    /// Creates a geometry description.
    ///
    /// # Panics
    ///
    /// Panics unless `size`, `assoc` and `block` are positive,
    /// power-of-two compatible, and `size >= assoc * block`.
    pub fn new(size: usize, assoc: usize, block: usize) -> Self {
        assert!(
            size > 0 && assoc > 0 && block > 0,
            "cache parameters must be positive"
        );
        assert!(block.is_power_of_two(), "block size must be a power of two");
        assert!(
            size.is_multiple_of(assoc * block),
            "size must be divisible by assoc*block"
        );
        let sets = size / (assoc * block);
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        CacheConfig { size, assoc, block }
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.size / (self.assoc * self.block)
    }

    /// Returns a geometry scaled in capacity by `factor` (associativity
    /// and block size are preserved) — the Table 4 cache-size axis.
    ///
    /// # Panics
    ///
    /// Panics if the scaled size is invalid (see [`CacheConfig::new`]).
    pub fn scaled(&self, factor: f64) -> Self {
        let size = (self.size as f64 * factor).round() as usize;
        CacheConfig::new(size, self.assoc, self.block)
    }
}

/// A set-associative, true-LRU cache.
///
/// Only tags are modeled (no data): [`Cache::access`] reports hit/miss
/// and allocates on miss, which is all the locality profiling of the
/// paper requires.
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    /// `tags[set]` holds up to `assoc` (tag, last_use) pairs.
    sets: Vec<Vec<(u64, u64)>>,
    set_mask: u64,
    block_shift: u32,
    tick: u64,
    accesses: u64,
    misses: u64,
}

impl Cache {
    /// Builds a cache with geometry `config`.
    pub fn new(config: CacheConfig) -> Self {
        let sets = config.sets();
        Cache {
            config,
            sets: vec![Vec::with_capacity(config.assoc); sets],
            set_mask: sets as u64 - 1,
            block_shift: config.block.trailing_zeros(),
            tick: 0,
            accesses: 0,
            misses: 0,
        }
    }

    /// The cache's geometry.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Accesses byte address `addr`; returns `true` on a hit.
    ///
    /// Misses allocate the block (LRU victim within the set).
    pub fn access(&mut self, addr: u64) -> bool {
        self.tick += 1;
        self.accesses += 1;
        let block_addr = addr >> self.block_shift;
        let set_index = (block_addr & self.set_mask) as usize;
        let tag = block_addr >> self.set_mask.count_ones();
        let tick = self.tick;
        let assoc = self.config.assoc;
        let set = &mut self.sets[set_index];
        if let Some(e) = set.iter_mut().find(|(t, _)| *t == tag) {
            e.1 = tick;
            return true;
        }
        self.misses += 1;
        if set.len() < assoc {
            set.push((tag, tick));
        } else {
            let victim = set
                .iter_mut()
                .min_by_key(|(_, last)| *last)
                .expect("non-empty set has an LRU victim");
            *victim = (tag, tick);
        }
        false
    }

    /// Whether `addr`'s block is currently resident (no state change).
    pub fn probe(&self, addr: u64) -> bool {
        let block_addr = addr >> self.block_shift;
        let set_index = (block_addr & self.set_mask) as usize;
        let tag = block_addr >> self.set_mask.count_ones();
        self.sets[set_index].iter().any(|(t, _)| *t == tag)
    }

    /// Total accesses so far.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Total misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Miss rate (`0.0` before any access).
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_geometry() {
        let c = CacheConfig::new(8 << 10, 2, 32);
        assert_eq!(c.sets(), 128);
        let big = c.scaled(4.0);
        assert_eq!(big.size, 32 << 10);
        assert_eq!(big.sets(), 512);
    }

    #[test]
    #[should_panic(expected = "divisible")]
    fn bad_geometry_rejected() {
        CacheConfig::new(8 << 10, 3, 32); // 85.33 sets
    }

    #[test]
    fn same_block_hits() {
        let mut c = Cache::new(CacheConfig::new(1024, 2, 64));
        assert!(!c.access(100));
        assert!(c.access(100));
        assert!(c.access(127), "same 64B block");
        assert!(!c.access(128), "next block misses");
    }

    #[test]
    fn lru_within_set() {
        // 2 sets, 2 ways, 16B blocks: addresses 0, 32, 64 map to set 0.
        let mut c = Cache::new(CacheConfig::new(64, 2, 16));
        c.access(0);
        c.access(32);
        c.access(0); // refresh 0; 32 is now LRU
        c.access(64); // evicts 32
        assert!(c.probe(0));
        assert!(!c.probe(32));
        assert!(c.probe(64));
    }

    #[test]
    fn conflict_misses_with_low_associativity() {
        // Direct-mapped: alternating conflicting blocks always miss.
        let mut c = Cache::new(CacheConfig::new(64, 1, 16));
        let mut misses = 0;
        for i in 0..10 {
            let addr = if i % 2 == 0 { 0 } else { 64 }; // same set, different tag
            if !c.access(addr) {
                misses += 1;
            }
        }
        assert_eq!(misses, 10);
    }

    #[test]
    fn stats_accumulate() {
        let mut c = Cache::new(CacheConfig::new(1024, 2, 64));
        c.access(0);
        c.access(0);
        c.access(4096);
        assert_eq!(c.accesses(), 3);
        assert_eq!(c.misses(), 2);
        assert!((c.miss_rate() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn probe_does_not_mutate() {
        let mut c = Cache::new(CacheConfig::new(1024, 2, 64));
        assert!(!c.probe(0));
        assert_eq!(c.accesses(), 0);
        c.access(0);
        assert!(c.probe(0));
        assert_eq!(c.accesses(), 1);
    }
}
