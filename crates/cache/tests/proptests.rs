//! Property-based tests for the cache and TLB models.

use proptest::prelude::*;
use ssim_cache::{Cache, CacheConfig, Hierarchy, HierarchyConfig, Tlb, TlbConfig};

proptest! {
    /// After any access, the block is resident; miss rates stay in
    /// [0, 1]; accesses are counted exactly.
    #[test]
    fn cache_access_invariants(addrs in prop::collection::vec(0u64..1_000_000, 1..500)) {
        let mut c = Cache::new(CacheConfig::new(4 << 10, 2, 32));
        for (i, &a) in addrs.iter().enumerate() {
            c.access(a);
            prop_assert!(c.probe(a), "just-accessed block must be resident");
            prop_assert_eq!(c.accesses(), (i + 1) as u64);
            prop_assert!(c.misses() <= c.accesses());
        }
        prop_assert!((0.0..=1.0).contains(&c.miss_rate()));
    }

    /// A working set no larger than one set's associativity never
    /// conflicts: re-accessing it yields all hits.
    #[test]
    fn within_associativity_never_evicts(base in 0u64..1_000, assoc in 1usize..8) {
        let sets = 16usize;
        let block = 64u64;
        let mut c = Cache::new(CacheConfig::new(sets * assoc * block as usize, assoc, block as usize));
        // `assoc` blocks mapping to the same set.
        let addrs: Vec<u64> =
            (0..assoc as u64).map(|i| (base + i * sets as u64) * block).collect();
        for &a in &addrs {
            c.access(a);
        }
        for &a in &addrs {
            prop_assert!(c.access(a), "address {a:#x} should still be resident");
        }
    }

    /// A bigger cache never has more misses on the same trace.
    #[test]
    fn capacity_monotonicity(addrs in prop::collection::vec(0u64..100_000, 10..400)) {
        let mut small = Cache::new(CacheConfig::new(1 << 10, 2, 32));
        let mut large = Cache::new(CacheConfig::new(16 << 10, 2, 32));
        for &a in &addrs {
            small.access(a);
            large.access(a);
        }
        // Strict inclusion is not a theorem for set-associative LRU,
        // but a 16x capacity gap at equal associativity should never
        // make things substantially worse.
        prop_assert!(large.miss_rate() <= small.miss_rate() + 0.25,
            "16K cache much worse than 1K: {} vs {}", large.miss_rate(), small.miss_rate());
    }

    /// TLB pages are position-independent: any address within a page
    /// hits after any other address in the same page was accessed.
    #[test]
    fn tlb_page_granularity(pages in prop::collection::vec(0u64..64, 1..100), offset in 0u64..4096) {
        let mut t = Tlb::new(TlbConfig { entries: 64, assoc: 8, page: 4096 });
        for &p in &pages {
            t.access(p << 12);
        }
        // With 64 entries and <=64 distinct pages, everything fits.
        let distinct: std::collections::HashSet<_> = pages.iter().collect();
        if distinct.len() <= 8 {
            // Definitely fits within one set's worth per index.
            for &&p in &distinct {
                prop_assert!(t.access((p << 12) + offset));
            }
        }
    }

    /// The unified L2 always sees fewer accesses than L1 misses
    /// generate, and stats stay consistent.
    #[test]
    fn hierarchy_consistency(ops in prop::collection::vec((any::<bool>(), 0u64..5_000_000), 1..400)) {
        let mut h = Hierarchy::new(&HierarchyConfig::baseline());
        for &(is_instr, addr) in &ops {
            let out = if is_instr { h.access_instr(addr) } else { h.access_data(addr) };
            prop_assert!(!out.l2_miss || out.l1_miss, "L2 access implies L1 miss");
        }
        let s = h.stats();
        for rate in [
            s.l1i_miss_rate,
            s.l2i_miss_rate,
            s.l1d_miss_rate,
            s.l2d_miss_rate,
            s.itlb_miss_rate,
            s.dtlb_miss_rate,
            s.l1d_load_miss_rate,
        ] {
            prop_assert!((0.0..=1.0).contains(&rate));
        }
    }
}
