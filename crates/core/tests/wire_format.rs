//! Golden test freezing the v1 profile wire format.
//!
//! The on-disk profile cache (`results/.profile-cache/`) stores
//! serialized profiles across processes and sessions; a silent format
//! change would make every cached artifact unreadable (best case) or
//! misread (worst case). This test serialises a hand-built profile that
//! exercises every record type of the format — SFG nodes with multiple
//! edges, ALU/load/branch slots, dependency and anti-dependency
//! histograms, cache miss counters, terminal branch statistics — and
//! compares the bytes against a committed fixture.
//!
//! If this test fails because you *intentionally* changed the format:
//! bump `VERSION` in `serialize.rs`, keep a loader for v1, and
//! regenerate the fixture with
//! `SSIM_BLESS=1 cargo test -p ssim-core --test wire_format`.

use proptest::prelude::*;
use ssim_core::{
    BranchCtxStats, Context, ContextStats, FxHashMap, Gram, MissStats, Sfg, SlotStats,
    StatisticalProfile,
};
use ssim_isa::InstrClass;
use ssim_stats::ProbCounter;
use std::path::PathBuf;

/// Deterministic, hand-built profile covering the format surface. All
/// containers are serialised in sorted order, so the byte stream is
/// identical on every platform and run.
fn golden_profile() -> StatisticalProfile {
    let mut sfg = Sfg::new(1);
    sfg.import_node(Gram::new(&[1]), 8, vec![(1, 5), (2, 3)]);
    sfg.import_node(Gram::new(&[2]), 3, vec![(1, 3)]);

    let mut contexts = FxHashMap::default();

    // Context 1→1: a three-slot block (ALU, load, conditional branch).
    let mut alu = SlotStats::new(InstrClass::IntAlu, 2);
    alu.dep[0].record_n(1, 4);
    alu.dep[0].record_n(3, 1);
    alu.dep[1].record_n(0, 5);
    alu.waw.record_n(2, 1);
    alu.war.record_n(4, 2);
    alu.icache.l1 = ProbCounter::from_counts(1, 5);
    alu.icache.l2 = ProbCounter::from_counts(0, 1);
    alu.icache.tlb = ProbCounter::from_counts(0, 5);
    let mut ld = SlotStats::new(InstrClass::Load, 1);
    ld.dep[0].record_n(2, 5);
    ld.dcache = Some(MissStats {
        l1: ProbCounter::from_counts(2, 5),
        l2: ProbCounter::from_counts(1, 2),
        tlb: ProbCounter::from_counts(0, 5),
    });
    let mut br = SlotStats::new(InstrClass::IntCondBranch, 2);
    br.dep[0].record_n(1, 5);
    br.dep[1].record_n(2, 5);
    contexts.insert(
        Context::new(&[1], 1),
        ContextStats {
            occurrence: 5,
            slots: vec![alu, ld, br],
            branch: Some(BranchCtxStats {
                taken: ProbCounter::from_counts(4, 5),
                correct: 3,
                redirect: 1,
                mispredict: 1,
            }),
        },
    );

    // Context 1→2: a single-ALU block without a terminal branch.
    contexts.insert(
        Context::new(&[1], 2),
        ContextStats {
            occurrence: 3,
            slots: vec![SlotStats::new(InstrClass::IntAlu, 0)],
            branch: None,
        },
    );

    // Context 2→1: a store block (no destination register).
    let mut st = SlotStats::new(InstrClass::Store, 2);
    st.dep[0].record_n(1, 3);
    st.dep[1].record_n(2, 3);
    contexts.insert(
        Context::new(&[2], 1),
        ContextStats {
            occurrence: 3,
            slots: vec![st],
            branch: None,
        },
    );

    StatisticalProfile::from_parts(sfg, contexts, 33, 5, 1)
}

fn fixture_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/profile_v1.ssimprf")
}

#[test]
fn golden_bytes_are_frozen() {
    let mut bytes = Vec::new();
    golden_profile().save(&mut bytes).unwrap();

    let path = fixture_path();
    if std::env::var("SSIM_BLESS").is_ok_and(|v| v != "0") {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &bytes).unwrap();
        return;
    }
    let golden = std::fs::read(&path)
        .unwrap_or_else(|e| panic!("missing fixture {} ({e}); see module docs", path.display()));
    assert_eq!(
        bytes, golden,
        "profile wire format drifted from the committed v1 fixture; \
         bump VERSION and re-bless if this was intentional"
    );
}

#[test]
fn fixture_header_is_v1() {
    let golden = std::fs::read(fixture_path()).expect("fixture exists");
    assert_eq!(&golden[..8], b"SSIMPRF\0", "magic");
    assert_eq!(
        u32::from_le_bytes(golden[8..12].try_into().unwrap()),
        1,
        "version"
    );
    assert_eq!(
        u32::from_le_bytes(golden[12..16].try_into().unwrap()),
        1,
        "SFG order k"
    );
}

/// Freezes the compiled lowering artifacts — CSR edge tables, packed
/// macro-op words, hot-successor chain layout — via
/// `CompiledSampler::lowering_digest`. The fused engine streams
/// instructions straight off these tables, so silent drift here would
/// change generated traces (and every downstream number) without any
/// serialized byte moving. Like the byte fixture above, an intentional
/// lowering change updates the pinned values in the same commit that
/// justifies it.
#[test]
fn lowering_digest_is_frozen() {
    let p = golden_profile();
    let digests: Vec<u64> = [1u64, 2]
        .iter()
        .map(|&r| p.compile(r).lowering_digest())
        .collect();
    assert_eq!(
        digests,
        vec![0x05ccb047c644d75e, 0x9e6240b9981c6eec],
        "compiled lowering drifted from the pinned digests; update them \
         only with an intentional lowering change (actual: {digests:#018x?})"
    );
}

fn golden_bytes() -> Vec<u8> {
    let mut bytes = Vec::new();
    golden_profile().save(&mut bytes).unwrap();
    bytes
}

proptest! {
    /// Truncating the stream at *any* point yields a clean `io::Error`
    /// — the loader never panics on, and never accepts, a partial
    /// profile. (The on-disk cache relies on this: a torn write must
    /// read as a miss, not as a mangled profile.)
    #[test]
    fn any_truncation_is_a_clean_error(cut_seed in any::<u64>()) {
        let bytes = golden_bytes();
        let cut = (cut_seed % bytes.len() as u64) as usize;
        let err = StatisticalProfile::load(&mut &bytes[..cut]).expect_err("truncated load succeeded");
        prop_assert!(
            matches!(
                err.kind(),
                std::io::ErrorKind::UnexpectedEof | std::io::ErrorKind::InvalidData
            ),
            "unexpected error kind {:?} at cut {cut}",
            err.kind()
        );
    }

    /// Corrupting any single byte never panics or aborts the loader:
    /// it either fails cleanly or produces a profile that still
    /// behaves like a profile (count prefixes are the dangerous case —
    /// they drive preallocation and loop bounds).
    #[test]
    fn any_single_byte_corruption_is_handled(idx_seed in any::<u64>(), mask in 1u8..=255) {
        let mut bytes = golden_bytes();
        let idx = (idx_seed % bytes.len() as u64) as usize;
        bytes[idx] ^= mask;
        let outcome = std::panic::catch_unwind(|| {
            match StatisticalProfile::load(&mut bytes.as_slice()) {
                Err(e) => Some(e.kind()),
                Ok(p) => {
                    // A flip that survives validation must still yield a
                    // usable profile end to end.
                    let _ = p.generate(4, 7);
                    let _ = p.content_hash();
                    None
                }
            }
        });
        prop_assert!(outcome.is_ok(), "loader panicked on byte {idx} ^ {mask:#04x}");
        // Header corruption is always detected outright.
        if idx < 16 {
            prop_assert!(outcome.unwrap().is_some(), "corrupt header accepted (byte {idx})");
        }
    }
}

#[test]
fn fixture_roundtrips_to_equivalent_profile() {
    let golden = std::fs::read(fixture_path()).expect("fixture exists");
    let loaded = StatisticalProfile::load(&mut golden.as_slice()).unwrap();
    let built = golden_profile();
    assert_eq!(loaded.k(), built.k());
    assert_eq!(loaded.instructions(), built.instructions());
    assert_eq!(loaded.branch_lookups(), built.branch_lookups());
    assert_eq!(loaded.context_count(), built.context_count());
    assert_eq!(loaded.sfg().export_nodes(), built.sfg().export_nodes());
    // The strongest equivalence the pipeline cares about: identical
    // synthetic traces from identical seeds.
    let (a, b) = (loaded.generate(1, 5), built.generate(1, 5));
    assert_eq!(a.instrs(), b.instrs());
    assert!(!a.is_empty());
}
