//! The compiled sampling engine's determinism contract: for every
//! `(profile, r, seed)`, the compiled walk produces a trace
//! **instruction-for-instruction identical** to the reference
//! interpreter (`generate_reference`, the original §2.2 implementation).
//!
//! The contract is what lets `generate` run on the compiled tables
//! without perturbing a single published number: same RNG consumption
//! order, same CDF inversion, same start-node selection (the Fenwick
//! prefix search reproduces the interpreter's sorted-order scan), same
//! dead-end and restart handling.

use proptest::prelude::*;
use ssim_core::{profile, BranchProfileMode, ProfileConfig, StatisticalProfile};
use ssim_isa::{Assembler, Program, Reg};
use ssim_uarch::MachineConfig;

/// A small but branchy program driven by the given PRNG seed (xorshift
/// over a table, with a data-dependent skip branch).
fn program(seed: u64) -> Program {
    let mut a = Assembler::new("equiv");
    let buf = a.alloc_words(256);
    let (x, i, n, t0, t1) = (Reg::R1, Reg::R2, Reg::R3, Reg::R4, Reg::R5);
    a.li(x, (seed | 1) as i64);
    a.li(n, 30_000);
    let top = a.here_label();
    let skip = a.label();
    a.slli(t0, x, 13);
    a.xor(x, x, t0);
    a.srli(t0, x, 7);
    a.xor(x, x, t0);
    a.andi(t0, x, 255);
    a.slli(t0, t0, 3);
    a.li(t1, buf as i64);
    a.add(t1, t1, t0);
    a.ld(t0, t1, 0);
    a.addi(t0, t0, 1);
    a.st(t1, 0, t0);
    a.andi(t0, x, 3);
    a.beq(t0, Reg::R0, skip);
    a.addi(i, i, 1);
    a.bind(skip).unwrap();
    a.addi(i, i, 1);
    a.blt(i, n, top);
    a.halt();
    a.finish().unwrap()
}

fn profiled(seed: u64, k: usize) -> StatisticalProfile {
    profile(
        &program(seed),
        &ProfileConfig::new(&MachineConfig::baseline())
            .order(k)
            .branch_mode(BranchProfileMode::Delayed)
            .skip(0)
            .instructions(60_000),
    )
}

/// The headline acceptance test: `generate_compiled` (and therefore
/// `generate`) equals the pre-compilation path across a grid of
/// `(r, seed)` pairs on a profiled workload.
#[test]
fn compiled_equals_reference_across_r_and_seed() {
    for k in [0usize, 1, 2] {
        let p = profiled(7, k);
        for r in [1u64, 5, 15, 50, 400] {
            for seed in [0u64, 1, 7, 12345] {
                let reference = p.generate_reference(r, seed);
                let compiled = p.generate_compiled(r, seed);
                assert_eq!(
                    reference.instrs(),
                    compiled.instrs(),
                    "trace diverged at k={k} r={r} seed={seed}"
                );
                // The public entry point is the compiled path.
                assert_eq!(p.generate(r, seed).instrs(), reference.instrs());
                assert!(!reference.is_empty() || r > p.instructions());
            }
        }
    }
}

/// One lowering serves many seeds: the reusable artifact (the §4.1
/// convergence-run shape) matches per-call compilation and the
/// reference interpreter.
#[test]
fn compiled_artifact_is_reusable_across_seeds() {
    let p = profiled(3, 1);
    let sampler = p.compile(20);
    assert!(sampler.node_count() > 0);
    assert!(sampler.edge_count() > 0);
    for seed in 0..8u64 {
        let from_artifact = sampler.generate(seed);
        assert_eq!(
            from_artifact.instrs(),
            p.generate_reference(20, seed).instrs()
        );
        assert_eq!(from_artifact.instrs(), p.generate(20, seed).instrs());
    }
}

/// The walk-only primitives (no instruction emission) agree field for
/// field: steps, restarts, and the budget-trajectory checksum that
/// pins the two walks to the same restart structure. This isolates the
/// walk subsystem — gram interning, edge pruning, Fenwick start-node
/// selection — from the emit path.
#[test]
fn walk_reports_match_across_r_and_seed() {
    for k in [0usize, 1, 2] {
        let p = profiled(7, k);
        for r in [1u64, 5, 15, 50] {
            let sampler = p.compile(r);
            for seed in [0u64, 1, 7, 12345] {
                let reference = p.walk_reference(r, seed);
                let compiled = sampler.walk(seed);
                assert_eq!(
                    reference, compiled,
                    "walk diverged at k={k} r={r} seed={seed}"
                );
                assert!(reference.steps > 0 || sampler.budget() == 0);
            }
        }
    }
}

/// Reduction beyond every node occurrence yields empty tables on both
/// paths.
#[test]
fn compiled_empty_budget_matches_reference() {
    let p = profiled(1, 1);
    assert!(p.generate_compiled(u64::MAX, 1).is_empty());
    assert!(p.generate_reference(u64::MAX, 1).is_empty());
    assert_eq!(p.compile(u64::MAX).budget(), 0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Equivalence holds for arbitrary workloads, SFG orders, reduction
    /// factors and seeds — the proptest pin demanded by the determinism
    /// contract.
    #[test]
    fn compiled_matches_reference(ws in 0u64..500, k in 0usize..=2, r in 2u64..80, seed in 0u64..1000) {
        let p = profiled(ws, k);
        let reference = p.generate_reference(r, seed);
        let compiled = p.generate_compiled(r, seed);
        prop_assert_eq!(reference.instrs(), compiled.instrs());
    }
}
