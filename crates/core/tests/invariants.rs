//! Statistical invariants of the SFG pipeline.
//!
//! These pin the paper's structural guarantees rather than any one
//! workload's numbers:
//!
//! * outgoing SFG edge probabilities form a distribution (§2.1: the SFG
//!   stores `P[B_n | B_{n-1}…B_{n-k}]` as edge counts over node
//!   occurrences);
//! * dependency distances never exceed the 512 cap (§2.1.1), whether
//!   the profile came from the profiler or was built by hand;
//! * SFG reduction keeps exactly the nodes with `floor(M_i / R) > 0`
//!   and drops the rest with their edges (§2.2 step 1).

use ssim_core::{
    profile, BranchCtxStats, Context, ContextStats, FxHashMap, Gram, ProfileConfig, Sfg, SlotStats,
    StatisticalProfile, MAX_DEP_DISTANCE,
};
use ssim_isa::{Assembler, InstrClass, Reg};
use ssim_uarch::MachineConfig;

/// A small loop with a load, a store and a backward branch — enough to
/// populate several SFG nodes and dependency histograms.
fn profiled_loop() -> StatisticalProfile {
    let mut a = Assembler::new("inv");
    let (i, n, acc, t) = (Reg::R1, Reg::R2, Reg::R3, Reg::R4);
    let buf = a.alloc_words(1 << 10);
    a.li(n, 100_000);
    let top = a.here_label();
    let skip = a.label();
    a.addi(i, i, 1);
    a.andi(t, i, (1 << 10) - 1);
    a.slli(t, t, 3);
    a.li(acc, buf as i64);
    a.add(t, acc, t);
    a.ld(t, t, 0);
    a.andi(t, t, 1);
    a.beq(t, Reg::R0, skip);
    a.st(t, 0, i);
    a.bind(skip).unwrap();
    a.blt(i, n, top);
    a.halt();
    let program = a.finish().unwrap();
    profile(
        &program,
        &ProfileConfig::new(&MachineConfig::baseline())
            .skip(0)
            .instructions(120_000),
    )
}

#[test]
fn sfg_edge_probabilities_sum_to_one() {
    let p = profiled_loop();
    let sfg = p.sfg();
    let nodes = sfg.export_nodes();
    assert!(
        nodes.len() > 1,
        "loop with a conditional should yield several nodes"
    );
    for (raw, occurrence, edges) in &nodes {
        assert!(*occurrence > 0, "recorded nodes always have occurrences");
        // Exact in counts: edge counts partition the node's occurrences.
        let total: u64 = edges.iter().map(|(_, c)| *c).sum();
        assert_eq!(total, *occurrence, "node {raw:#x}");
        // And in probability space, to the paper's semantics.
        let gram = Gram::from_raw(*raw);
        let psum: f64 = edges
            .iter()
            .map(|(b, _)| sfg.transition_probability(gram, *b))
            .sum();
        assert!(
            (psum - 1.0).abs() < 1e-9,
            "node {raw:#x}: outgoing probabilities sum to {psum}"
        );
    }
}

#[test]
fn emitted_dependency_distances_respect_the_cap() {
    let p = profiled_loop();
    let mut deps_seen = 0u64;
    for seed in [1, 7, 42] {
        let t = p.generate(20, seed);
        assert!(!t.is_empty());
        for (i, instr) in t.instrs().iter().enumerate() {
            for d in instr.dep.iter().flatten() {
                deps_seen += 1;
                assert!(*d >= 1, "distance 0 means 'no dependency' and must be None");
                assert!(*d <= MAX_DEP_DISTANCE, "instr {i} has distance {d}");
                assert!(i >= *d as usize, "instr {i} depends on pre-trace instr");
            }
            for d in instr.anti_dep.iter().flatten() {
                assert!(*d <= MAX_DEP_DISTANCE, "instr {i} anti-dep distance {d}");
            }
        }
    }
    assert!(
        deps_seen > 1000,
        "the loop body is dependency-dense, saw {deps_seen}"
    );
}

/// A one-node, one-block profile whose dependency histogram holds all
/// its mass *above* the cap — only constructible by hand or through
/// deserialisation, exactly the surface the generation-side clamp
/// guards.
fn hand_profile_with_deps(dep_values: &[(u32, u64)], occurrence: u64) -> StatisticalProfile {
    let mut sfg = Sfg::new(0);
    sfg.import_node(Gram::empty(), occurrence, vec![(1, occurrence)]);
    let mut slots: Vec<SlotStats> = (0..3)
        .map(|_| SlotStats::new(InstrClass::IntAlu, 0))
        .collect();
    let mut consumer = SlotStats::new(InstrClass::IntAlu, 1);
    for (v, c) in dep_values {
        consumer.dep[0].record_n(*v, *c);
    }
    slots.push(consumer);
    let mut contexts = FxHashMap::default();
    contexts.insert(
        Gram::empty().context_with(1),
        ContextStats {
            occurrence,
            slots,
            branch: None,
        },
    );
    StatisticalProfile::from_parts(sfg, contexts, occurrence * 4, 0, 0)
}

#[test]
fn hand_built_profiles_clamp_out_of_cap_mass_to_512() {
    let p = hand_profile_with_deps(&[(600, 1), (1000, 1)], 2_000);
    let t = p.generate(1, 99);
    assert_eq!(t.len(), 2_000 * 4);
    let mut saw_cap = false;
    for (i, instr) in t.instrs().iter().enumerate() {
        if let Some(d) = instr.dep[0] {
            assert!(d <= MAX_DEP_DISTANCE, "instr {i} distance {d}");
            assert!(i >= d as usize);
            saw_cap |= d == MAX_DEP_DISTANCE;
        }
    }
    assert!(
        saw_cap,
        "mass above the cap must collapse onto {MAX_DEP_DISTANCE}"
    );
}

#[test]
fn reduction_keeps_exactly_floor_m_over_r_nodes() {
    let p = profiled_loop();
    let sfg = p.sfg();
    let nodes = sfg.export_nodes();
    for r in [1, 2, 7, 15, 100, 1_000, u64::MAX] {
        let manual = nodes.iter().filter(|(_, occ, _)| occ / r > 0).count();
        assert_eq!(sfg.reduced_node_count(r), manual, "r = {r}");
    }
    // A reduction factor above every occurrence empties the graph — and
    // the generated trace with it.
    let r_max = nodes.iter().map(|(_, occ, _)| *occ).max().unwrap() + 1;
    assert_eq!(sfg.reduced_node_count(r_max), 0);
    assert!(p.generate(r_max, 1).is_empty());
}

#[test]
fn reduction_boundaries_are_exact() {
    // Occurrences 30 / 15 / 7 at R = 15: floor gives 2, 1, 0 — the
    // third node is empty and must be dropped (§2.2 step 1).
    let mut sfg = Sfg::new(1);
    sfg.import_node(Gram::new(&[1]), 30, vec![(2, 30)]);
    sfg.import_node(Gram::new(&[2]), 15, vec![(3, 15)]);
    sfg.import_node(Gram::new(&[3]), 7, vec![(1, 7)]);
    assert_eq!(sfg.reduced_node_count(15), 2);
    assert_eq!(sfg.reduced_node_count(7), 3);
    assert_eq!(sfg.reduced_node_count(31), 0);
    assert_eq!(sfg.reduced_node_count(1), 3);
}

/// Regression for the dead `2048.min(u32::MAX)` guard: a requested cap
/// above [`MAX_DEP_DISTANCE`] used to pass through the builder
/// unclamped, so the profiler recorded distances in `(512, cap]` that
/// generation then silently collapsed onto exactly 512. The builder and
/// the profiler now clamp, so the profile itself never holds a value
/// past the paper's distribution limit.
#[test]
fn dep_cap_above_512_is_clamped_at_profiling_time() {
    let cfg = ProfileConfig::new(&MachineConfig::baseline()).dep_cap(2048);
    assert_eq!(cfg.dep_cap, MAX_DEP_DISTANCE, "builder must clamp the cap");

    // A loop that keeps consuming a register defined once before the
    // loop: the producer distance grows without bound, far past 512.
    let mut a = Assembler::new("farprod");
    let (base, i, n, t) = (Reg::R1, Reg::R2, Reg::R3, Reg::R4);
    a.li(base, 12345);
    a.li(n, 50_000);
    let top = a.here_label();
    a.addi(i, i, 1);
    a.add(t, base, i); // distance to `li base` grows every iteration
    a.slli(t, t, 1);
    a.blt(i, n, top);
    a.halt();
    let program = a.finish().unwrap();

    let p = profile(&program, &cfg.skip(0).instructions(100_000));
    let mut max_seen = 0u32;
    for (_, stats) in p.contexts() {
        for slot in &stats.slots {
            for hist in &slot.dep {
                if let Some(m) = hist.max() {
                    max_seen = max_seen.max(m);
                }
            }
        }
    }
    assert!(max_seen > 0, "the loop records real dependencies");
    assert!(
        max_seen <= MAX_DEP_DISTANCE,
        "profile recorded distance {max_seen} past the cap"
    );
}

// Silence an unused warning: the golden-format test exercises
// BranchCtxStats and Context; keep the imports honest here too by
// touching them in a tiny smoke check.
#[test]
fn context_packing_roundtrips() {
    let ctx = Context::new(&[4, 5], 6);
    assert_eq!(Context::from_raw(ctx.raw()), ctx);
    assert_eq!(ctx.current(), 6);
    let b = BranchCtxStats::default();
    assert_eq!(b.total(), 0);
}
