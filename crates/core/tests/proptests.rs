//! Property-based tests for the statistical-simulation core.

use proptest::prelude::*;
use ssim_core::{Gram, Sfg};

/// Builds an SFG of order `k` from a block sequence.
fn sfg_from(seq: &[u32], k: usize) -> Sfg {
    let mut sfg = Sfg::new(k);
    let mut state = Gram::empty();
    for &b in seq {
        if state.len() == k {
            sfg.record(state, b);
        }
        state = state.shifted(b, k);
    }
    sfg
}

proptest! {
    /// Transition probabilities out of every node sum to 1.
    #[test]
    fn sfg_transitions_sum_to_one(seq in prop::collection::vec(0u32..8, 5..300), k in 0usize..=3) {
        let sfg = sfg_from(&seq, k);
        let mut state = Gram::empty();
        let mut checked = std::collections::HashSet::new();
        for &b in &seq {
            if state.len() == k && checked.insert(state) {
                let total: f64 = (0u32..8).map(|n| sfg.transition_probability(state, n)).sum();
                // Nodes that were recorded at least once sum to 1.
                if sfg.transition_probability(state, b) > 0.0 {
                    prop_assert!((total - 1.0).abs() < 1e-9, "node sums to {total}");
                }
            }
            state = state.shifted(b, k);
        }
    }

    /// Total occurrence equals the number of recorded transitions.
    #[test]
    fn sfg_occurrence_conservation(seq in prop::collection::vec(0u32..6, 0..200), k in 0usize..=3) {
        let sfg = sfg_from(&seq, k);
        let expected = seq.len().saturating_sub(k) as u64;
        prop_assert_eq!(sfg.total_occurrence(), expected);
    }

    /// Gram shifting maintains exactly the last-k window.
    #[test]
    fn gram_shift_is_last_k_window(seq in prop::collection::vec(0u32..1000, 1..50), k in 0usize..=3) {
        let mut g = Gram::empty();
        for &b in &seq {
            g = g.shifted(b, k);
        }
        let want = &seq[seq.len().saturating_sub(k)..];
        prop_assert_eq!(g, Gram::new(want));
        prop_assert!(g.len() <= k);
    }

    /// Contexts formed from distinct histories are distinct.
    #[test]
    fn contexts_injective(h1 in prop::collection::vec(0u32..100, 0..=3),
                          h2 in prop::collection::vec(0u32..100, 0..=3),
                          cur in 0u32..100) {
        let a = ssim_core::Context::new(&h1, cur);
        let b = ssim_core::Context::new(&h2, cur);
        prop_assert_eq!(a == b, h1 == h2);
        prop_assert_eq!(a.current(), cur);
    }
}

mod packing_and_hashing {
    use super::*;
    use ssim_core::{Context, FxHasher};
    use std::hash::Hasher;

    fn fx_u128(n: u128) -> u64 {
        let mut h = FxHasher::default();
        h.write_u128(n);
        h.finish()
    }

    proptest! {
        /// `raw`/`from_raw` round-trips grams exactly, and the packed
        /// length matches the history length for every block value
        /// (including 0, which only the sentinel bit disambiguates).
        #[test]
        fn gram_raw_round_trip(h in prop::collection::vec(any::<u32>(), 0..=3)) {
            let g = Gram::new(&h);
            prop_assert_eq!(Gram::from_raw(g.raw()), g);
            prop_assert_eq!(g.len(), h.len());
            prop_assert_eq!(g.is_empty(), h.is_empty());
        }

        /// `raw`/`from_raw` round-trips contexts, and `current` recovers
        /// the most recent block regardless of history contents.
        #[test]
        fn context_raw_round_trip(h in prop::collection::vec(any::<u32>(), 0..=3),
                                  cur in any::<u32>()) {
            let c = Context::new(&h, cur);
            prop_assert_eq!(Context::from_raw(c.raw()), c);
            prop_assert_eq!(c.current(), cur);
        }

        /// Shifting a full MAX_K gram keeps the sentinel in range (the
        /// bit-127 edge case) and drops exactly the oldest block.
        #[test]
        fn gram_shift_full_window_keeps_sentinel(h in prop::collection::vec(any::<u32>(), 3..=3),
                                                 b in any::<u32>()) {
            let g = Gram::new(&h).shifted(b, 3);
            prop_assert_eq!(g.len(), 3);
            prop_assert_eq!(g, Gram::new(&[h[1], h[2], b]));
            prop_assert!(g.raw().leading_zeros() >= 127 - 96);
        }

        /// Shifting into a *smaller* k than the gram currently holds
        /// truncates to the last k blocks (order changes mid-walk).
        #[test]
        fn gram_shift_truncates_to_k(h in prop::collection::vec(any::<u32>(), 0..=3),
                                     b in any::<u32>(), k in 0usize..=3) {
            let g = Gram::new(&h).shifted(b, k);
            let mut want: Vec<u32> = h.clone();
            want.push(b);
            let want = &want[want.len() - want.len().min(k)..];
            prop_assert_eq!(g, Gram::new(want));
        }

        /// Histories padded with block id 0 never alias histories of a
        /// different length — the property the sentinel bit exists for.
        #[test]
        fn zero_blocks_do_not_alias_lengths(la in 0usize..=3, lb in 0usize..=3) {
            let a = Gram::new(&vec![0u32; la]);
            let b = Gram::new(&vec![0u32; lb]);
            prop_assert_eq!(a == b, la == lb);
            let ca = Context::new(&vec![0u32; la], 0);
            let cb = Context::new(&vec![0u32; lb], 0);
            prop_assert_eq!(ca == cb, la == lb);
        }

        /// `context_with` agrees with building the context from parts.
        #[test]
        fn context_with_matches_new(h in prop::collection::vec(any::<u32>(), 0..=3),
                                    cur in any::<u32>()) {
            prop_assert_eq!(Gram::new(&h).context_with(cur), Context::new(&h, cur));
        }

        /// The u128 fast path hashes exactly like two word writes (low
        /// word first), and like the 16-byte little-endian `write` path —
        /// so mixed-width call sites agree on the same buckets.
        #[test]
        fn fxhash_u128_matches_word_and_byte_writes(n in any::<u128>()) {
            let mut words = FxHasher::default();
            words.write_u64(n as u64);
            words.write_u64((n >> 64) as u64);
            prop_assert_eq!(fx_u128(n), words.finish());

            let mut bytes = FxHasher::default();
            bytes.write(&n.to_le_bytes());
            prop_assert_eq!(fx_u128(n), bytes.finish());
        }

        /// Each mixing round is a bijection per word, so u128 keys that
        /// differ in only one half can never collide — grams differing
        /// only in old history stay distinct in the map.
        #[test]
        fn fxhash_single_half_never_collides(n in any::<u128>(), d in 1u64..=u64::MAX) {
            let lo_flip = n ^ u128::from(d);
            let hi_flip = n ^ (u128::from(d) << 64);
            prop_assert_ne!(fx_u128(n), fx_u128(lo_flip));
            prop_assert_ne!(fx_u128(n), fx_u128(hi_flip));
        }
    }
}

mod trace_properties {
    use super::*;
    use ssim_core::{profile, BranchProfileMode, ProfileConfig};
    use ssim_isa::{Assembler, Program, Reg};
    use ssim_uarch::MachineConfig;

    /// A small but branchy program driven by the given PRNG seed.
    fn program(seed: u64) -> Program {
        let mut a = Assembler::new("prop");
        let buf = a.alloc_words(256);
        let (x, i, n, t0, t1) = (Reg::R1, Reg::R2, Reg::R3, Reg::R4, Reg::R5);
        a.li(x, (seed | 1) as i64);
        a.li(n, 30_000);
        let top = a.here_label();
        let skip = a.label();
        a.slli(t0, x, 13);
        a.xor(x, x, t0);
        a.srli(t0, x, 7);
        a.xor(x, x, t0);
        a.andi(t0, x, 255);
        a.slli(t0, t0, 3);
        a.li(t1, buf as i64);
        a.add(t1, t1, t0);
        a.ld(t0, t1, 0);
        a.addi(t0, t0, 1);
        a.st(t1, 0, t0);
        a.andi(t0, x, 3);
        a.beq(t0, Reg::R0, skip);
        a.addi(i, i, 1);
        a.bind(skip).unwrap();
        a.addi(i, i, 1);
        a.blt(i, n, top);
        a.halt();
        a.finish().unwrap()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(6))]

        /// Generated traces respect every structural invariant the
        /// synthetic simulator relies on.
        #[test]
        fn generated_traces_are_well_formed(seed in 0u64..1000, k in 0usize..=2, r in 5u64..50) {
            let program = program(seed);
            let p = profile(
                &program,
                &ProfileConfig::new(&MachineConfig::baseline())
                    .order(k)
                    .branch_mode(BranchProfileMode::Delayed)
                    .skip(0)
                    .instructions(60_000),
            );
            let trace = p.generate(r, seed);
            for (i, instr) in trace.instrs().iter().enumerate() {
                // Dependencies point backwards at register producers.
                for d in instr.dep.iter().flatten() {
                    prop_assert!(*d >= 1);
                    prop_assert!(*d as usize <= i, "dep out of range at {i}");
                    let src = i - *d as usize;
                    prop_assert!(trace.instrs()[src].class.has_dest());
                }
                // L2 misses only below L1 misses.
                prop_assert!(!instr.l2i_miss || instr.l1i_miss);
                if let Some(dm) = instr.dmem {
                    prop_assert_eq!(instr.class, ssim_isa::InstrClass::Load);
                    prop_assert!(!dm.l2_miss || dm.l1_miss);
                }
                // Branch flags only on control classes.
                if instr.branch.is_some() {
                    prop_assert!(instr.class.is_control());
                }
            }
        }

        /// The reduction factor bounds the trace length.
        #[test]
        fn trace_length_tracks_reduction(seed in 0u64..500, r in 4u64..64) {
            let program = program(seed);
            let p = profile(
                &program,
                &ProfileConfig::new(&MachineConfig::baseline())
                    .skip(0)
                    .instructions(60_000),
            );
            let trace = p.generate(r, 1);
            let expected = p.instructions() as f64 / r as f64;
            prop_assert!(!trace.is_empty());
            let len = trace.len() as f64;
            prop_assert!(
                len > expected * 0.4 && len < expected * 2.5,
                "len {len} vs expected ~{expected}"
            );
        }

        /// Profiling is deterministic.
        #[test]
        fn profiling_is_deterministic(seed in 0u64..200) {
            let program = program(seed);
            let cfg = ProfileConfig::new(&MachineConfig::baseline()).skip(0).instructions(40_000);
            let a = profile(&program, &cfg);
            let b = profile(&program, &cfg);
            prop_assert_eq!(a.instructions(), b.instructions());
            prop_assert_eq!(a.sfg().node_count(), b.sfg().node_count());
            prop_assert_eq!(a.branch_mpki(), b.branch_mpki());
            let (ta, tb) = (a.generate(10, 3), b.generate(10, 3));
            prop_assert_eq!(ta.instrs(), tb.instrs());
        }
    }
}
