//! The fused engine's determinism contract: for every
//! `(profile, r, seed, machine)`, streaming generation straight into
//! the pipeline ([`ssim_core::simulate_fused`]) produces a [`SimResult`]
//! **bit-identical** — every field, including the float occupancies and
//! activity counters — to materialising the trace and simulating it,
//! and both match the frozen pre-optimisation reference simulator
//! ([`ssim_core::simulate_trace_reference`]).
//!
//! The chain `reference == unfused == fused` is what lets the sweep
//! infrastructure take the fused path without perturbing a single
//! published number.

use proptest::prelude::*;
use ssim_core::{
    profile, simulate_trace, simulate_trace_reference, BranchProfileMode, ProfileConfig, SimEngine,
    StatisticalProfile,
};
use ssim_isa::{Assembler, Program, Reg};
use ssim_uarch::MachineConfig;

/// The machine grid the equivalence chain is checked on: the paper's
/// baseline plus narrower / smaller-window / in-order variants, which
/// stress dispatch stalls, squash depth and issue-order paths
/// differently.
fn machines() -> Vec<MachineConfig> {
    vec![
        MachineConfig::baseline(),
        MachineConfig::baseline()
            .with_width(4)
            .with_window(64)
            .with_ifq(16),
        MachineConfig::baseline().with_width(2).with_window(32),
        MachineConfig::baseline().in_order(),
    ]
}

/// Asserts the full three-way chain on one `(sampler, seed)` point,
/// reusing `engine` across calls exactly like the sweep bins do.
fn assert_chain(
    p: &StatisticalProfile,
    r: u64,
    seed: u64,
    cfg: &MachineConfig,
    engine: &mut SimEngine,
    label: &str,
) {
    let sampler = p.compile(r);
    let trace = sampler.generate(seed);
    let reference = simulate_trace_reference(&trace, cfg);
    let unfused = engine.simulate(&trace, cfg);
    let fused = engine.simulate_fused(&sampler, seed, cfg);
    assert_eq!(
        reference, unfused,
        "unfused diverged from reference at {label}"
    );
    assert_eq!(unfused, fused, "fused diverged from unfused at {label}");
}

/// The headline acceptance test: the chain holds on all ten paper
/// workloads across seeds and machine configurations, with one engine
/// reused for every point.
#[test]
fn fused_matches_unfused_on_all_workloads() {
    let cfgs = machines();
    let mut engine = SimEngine::new();
    for w in ssim_workloads::all() {
        let p = profile(
            &w.program(),
            &ProfileConfig::new(&MachineConfig::baseline())
                .order(1)
                .instructions(60_000),
        );
        let r = (p.instructions() / 4_000).max(1);
        for seed in [1u64, 7] {
            for (c, cfg) in cfgs.iter().enumerate() {
                let label = format!("{} r={r} seed={seed} cfg#{c}", w.name());
                assert_chain(&p, r, seed, cfg, &mut engine, &label);
            }
        }
    }
}

/// Deeper seed and reduction-factor coverage on one branchy workload,
/// including r=1 (no reduction) and a reduction so aggressive that most
/// nodes are pruned (dead ends and restarts dominate the walk).
#[test]
fn fused_matches_unfused_across_r_and_seed() {
    let w = ssim_workloads::by_name("gcc").expect("gcc exists");
    let p = profile(
        &w.program(),
        &ProfileConfig::new(&MachineConfig::baseline())
            .order(1)
            .branch_mode(BranchProfileMode::Delayed)
            .instructions(80_000),
    );
    let cfg = MachineConfig::baseline();
    let mut engine = SimEngine::new();
    for r in [1u64, 5, 40, 300, 2_000] {
        for seed in [0u64, 3, 12345] {
            let label = format!("gcc r={r} seed={seed}");
            assert_chain(&p, r, seed, &cfg, &mut engine, &label);
        }
    }
}

/// A zero-budget sampler (reduction beyond every node occurrence)
/// drains all three paths to the same empty-machine result.
#[test]
fn fused_empty_budget_matches_unfused() {
    let w = ssim_workloads::by_name("gzip").expect("gzip exists");
    let p = profile(
        &w.program(),
        &ProfileConfig::new(&MachineConfig::baseline()).instructions(30_000),
    );
    let cfg = MachineConfig::baseline();
    let mut engine = SimEngine::new();
    assert_chain(&p, u64::MAX, 1, &cfg, &mut engine, "empty budget");
    let fused = engine.simulate_fused(&p.compile(u64::MAX), 1, &cfg);
    assert_eq!(fused.instructions, 0);
    assert_eq!(fused.cycles, 1);
}

/// A small but branchy program driven by the given PRNG seed (xorshift
/// over a table, with a data-dependent skip branch) — the same shape
/// the compiled-sampler equivalence suite uses.
fn program(seed: u64) -> Program {
    let mut a = Assembler::new("equiv");
    let buf = a.alloc_words(256);
    let (x, i, n, t0, t1) = (Reg::R1, Reg::R2, Reg::R3, Reg::R4, Reg::R5);
    a.li(x, (seed | 1) as i64);
    a.li(n, 30_000);
    let top = a.here_label();
    let skip = a.label();
    a.slli(t0, x, 13);
    a.xor(x, x, t0);
    a.srli(t0, x, 7);
    a.xor(x, x, t0);
    a.andi(t0, x, 255);
    a.slli(t0, t0, 3);
    a.li(t1, buf as i64);
    a.add(t1, t1, t0);
    a.ld(t0, t1, 0);
    a.addi(t0, t0, 1);
    a.st(t1, 0, t0);
    a.andi(t0, x, 3);
    a.beq(t0, Reg::R0, skip);
    a.addi(i, i, 1);
    a.bind(skip).unwrap();
    a.addi(i, i, 1);
    a.blt(i, n, top);
    a.halt();
    a.finish().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Equivalence holds for arbitrary workloads, SFG orders, reduction
    /// factors, seeds and machine shapes — the proptest pin demanded by
    /// the determinism contract.
    #[test]
    fn fused_matches_unfused(
        ws in 0u64..500,
        k in 0usize..=2,
        r in 2u64..80,
        seed in 0u64..1000,
        m in 0usize..4,
    ) {
        let p = profile(
            &program(ws),
            &ProfileConfig::new(&MachineConfig::baseline())
                .order(k)
                .branch_mode(BranchProfileMode::Delayed)
                .skip(0)
                .instructions(60_000),
        );
        let cfg = machines().swap_remove(m);
        let sampler = p.compile(r);
        let trace = sampler.generate(seed);
        let mut engine = SimEngine::new();
        let unfused = engine.simulate(&trace, &cfg);
        let fused = engine.simulate_fused(&sampler, seed, &cfg);
        prop_assert_eq!(&simulate_trace_reference(&trace, &cfg), &unfused);
        prop_assert_eq!(&unfused, &fused);
        prop_assert_eq!(&fused, &simulate_trace(&trace, &cfg));
    }
}
