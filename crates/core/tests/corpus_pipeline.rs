//! The textual corpus flows through the full statistical pipeline.
//!
//! The `programs/*.asm` corpus (assembled through `ssim-asm` by
//! `ssim_workloads::corpus`) must be a first-class citizen: each
//! program profiles, generates a synthetic trace, and simulates to a
//! sane IPC — the exact path the native ten-benchmark suite takes.

use ssim_core::{profile, simulate_trace, ProfileConfig};
use ssim_uarch::MachineConfig;
use ssim_workloads::corpus;

#[test]
fn corpus_programs_profile_generate_and_simulate() {
    let cfg = MachineConfig::baseline();
    for w in corpus() {
        let program = w.program();
        let prof = profile(
            &program,
            &ProfileConfig::new(&cfg).skip(10_000).instructions(200_000),
        );
        let trace = prof.generate(10, 42);
        assert!(
            !trace.is_empty(),
            "{}: synthetic trace came out empty",
            w.name()
        );
        let result = simulate_trace(&trace, &cfg);
        let ipc = result.ipc();
        assert!(
            ipc > 0.05 && ipc < 8.0,
            "{}: implausible synthetic IPC {ipc}",
            w.name()
        );
    }
}
