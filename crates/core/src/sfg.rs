//! The statistical flow graph and the statistical profile.

use crate::fxhash::FxHashMap;
use ssim_isa::InstrClass;
use ssim_stats::{Histogram, ProbCounter};

/// A basic block identifier: the block's start PC (dynamic basic blocks
/// are uniquely determined by their start PC, since code is static).
pub type BlockId = u32;

/// A `(k+1)`-gram context: the current basic block plus its `k`
/// predecessors, packed into a `u128` (up to four 32-bit block ids, so
/// `k ≤ 3` — the range the paper evaluates).
///
/// The paper's conditional characteristics
/// `P[· | B_n, B_{n-1}, …, B_{n-k}]` are keyed by exactly this context.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Context(u128);

/// Maximum supported SFG order.
pub const MAX_K: usize = 3;

impl Context {
    /// Packs `history` (oldest first, length `k`) and the current block.
    ///
    /// # Panics
    ///
    /// Panics if `history.len() > MAX_K`.
    pub fn new(history: &[BlockId], current: BlockId) -> Self {
        assert!(history.len() <= MAX_K, "SFG order limited to {MAX_K}");
        let mut packed: u128 = 1; // sentinel bit distinguishes lengths
        for b in history {
            packed = (packed << 32) | u128::from(*b);
        }
        packed = (packed << 32) | u128::from(current);
        Context(packed)
    }

    /// The current (most recent) block of the context.
    pub fn current(&self) -> BlockId {
        (self.0 & 0xffff_ffff) as BlockId
    }

    /// The raw packed representation (profile serialisation).
    pub fn raw(&self) -> u128 {
        self.0
    }

    /// Reconstitutes a context from [`Context::raw`] output.
    pub fn from_raw(raw: u128) -> Self {
        Context(raw)
    }
}

/// A `k`-gram walk state (the last `k` blocks, oldest first).
///
/// These are the *nodes* of the statistical flow graph; edges consume
/// the next block, matching `P[B_n | B_{n-1}..B_{n-k}]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Gram(u128);

impl Gram {
    /// The empty gram (the single node of a 0th-order SFG).
    pub fn empty() -> Self {
        Gram(1)
    }

    /// Packs a history of up to [`MAX_K`] blocks, oldest first.
    ///
    /// # Panics
    ///
    /// Panics if `history.len() > MAX_K`.
    pub fn new(history: &[BlockId]) -> Self {
        assert!(history.len() <= MAX_K, "SFG order limited to {MAX_K}");
        let mut packed: u128 = 1;
        for b in history {
            packed = (packed << 32) | u128::from(*b);
        }
        Gram(packed)
    }

    /// Shifts `block` into the gram, dropping the oldest entry when the
    /// gram already holds `k` blocks.
    pub fn shifted(&self, block: BlockId, k: usize) -> Gram {
        if k == 0 {
            return Gram::empty();
        }
        // Work on the payload without the sentinel so that a full
        // MAX_K-gram cannot shift its sentinel past bit 127.
        let len = self.len().min(k);
        let payload = self.0 & ((1u128 << (32 * len as u32)) - 1);
        let mut packed = (payload << 32) | u128::from(block);
        let new_len = if len + 1 > k {
            packed &= (1u128 << (32 * k as u32)) - 1;
            k
        } else {
            len + 1
        };
        Gram(packed | (1u128 << (32 * new_len as u32)))
    }

    /// Number of blocks held.
    pub fn len(&self) -> usize {
        ((127 - self.0.leading_zeros()) / 32) as usize
    }

    /// Whether the gram is empty (k = 0).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The context formed by appending `block` to this gram.
    pub fn context_with(&self, block: BlockId) -> Context {
        Context((self.0 << 32) | u128::from(block))
    }

    /// The raw packed representation (profile serialisation).
    pub fn raw(&self) -> u128 {
        self.0
    }

    /// Reconstitutes a gram from [`Gram::raw`] output.
    pub fn from_raw(raw: u128) -> Self {
        Gram(raw)
    }
}

/// Miss statistics for one memory structure pair (L1 + L2 + TLB).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MissStats {
    /// L1 miss probability.
    pub l1: ProbCounter,
    /// L2 miss probability (trials = L1 misses).
    pub l2: ProbCounter,
    /// TLB miss probability.
    pub tlb: ProbCounter,
}

/// Per-instruction-slot statistics within a context.
#[derive(Debug, Clone, PartialEq)]
pub struct SlotStats {
    /// The instruction's semantic class (one of the paper's 12).
    pub class: InstrClass,
    /// Number of source register operands.
    pub src_count: u8,
    /// Dependency-distance distribution per operand; distance 0 encodes
    /// "no producer in range" (no dependency).
    pub dep: [Histogram; 2],
    /// Instruction-fetch locality (L1I / L2-instruction / I-TLB).
    pub icache: MissStats,
    /// Data locality for loads (L1D / L2-data / D-TLB).
    pub dcache: Option<MissStats>,
    /// Write-after-write distance distribution (recorded only when the
    /// profile tracks anti-dependencies — the paper's future-work
    /// extension for in-order / register-constrained machines).
    pub waw: Histogram,
    /// Write-after-read distance distribution (see [`SlotStats::waw`]).
    pub war: Histogram,
}

impl SlotStats {
    /// Creates empty statistics for one slot.
    pub fn new(class: InstrClass, src_count: u8) -> Self {
        SlotStats {
            class,
            src_count,
            dep: [Histogram::new(), Histogram::new()],
            icache: MissStats::default(),
            dcache: (class == InstrClass::Load).then(MissStats::default),
            waw: Histogram::new(),
            war: Histogram::new(),
        }
    }
}

/// Terminal-branch statistics of a context (§2.1.2's three branch
/// probabilities).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BranchCtxStats {
    /// Probability the branch is taken.
    pub taken: ProbCounter,
    /// Correct predictions.
    pub correct: u64,
    /// Fetch redirections (BTB miss, correct direction).
    pub redirect: u64,
    /// Full mispredictions.
    pub mispredict: u64,
}

impl BranchCtxStats {
    /// Total recorded branch executions.
    pub fn total(&self) -> u64 {
        self.correct + self.redirect + self.mispredict
    }
}

/// All statistics recorded for one `(k+1)`-gram context.
#[derive(Debug, Clone, PartialEq)]
pub struct ContextStats {
    /// Occurrences of this context in the profiled stream.
    pub occurrence: u64,
    /// Per-instruction statistics (one entry per instruction of the
    /// basic block).
    pub slots: Vec<SlotStats>,
    /// Terminal branch statistics, when the block ends in a control
    /// instruction.
    pub branch: Option<BranchCtxStats>,
}

/// One exported SFG node: `(raw gram, occurrence, sorted edges)` —
/// the stable wire representation used by profile serialisation.
pub type ExportedNode = (u128, u64, Vec<(BlockId, u64)>);

/// The statistical flow graph: nodes are `k`-grams with occurrence
/// counts; edges carry the next-block transition counts.
#[derive(Debug, Clone, Default)]
pub struct Sfg {
    k: usize,
    nodes: FxHashMap<Gram, NodeData>,
}

#[derive(Debug, Clone, Default)]
pub(crate) struct NodeData {
    pub occurrence: u64,
    pub edges: FxHashMap<BlockId, u64>,
}

impl Sfg {
    /// Creates an empty SFG of order `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k > MAX_K`.
    pub fn new(k: usize) -> Self {
        assert!(k <= MAX_K, "SFG order limited to {MAX_K}");
        Sfg {
            k,
            nodes: FxHashMap::default(),
        }
    }

    /// The SFG's order.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Records one observed transition `state --block-->`.
    pub fn record(&mut self, state: Gram, block: BlockId) {
        let node = self.nodes.entry(state).or_default();
        node.occurrence += 1;
        *node.edges.entry(block).or_insert(0) += 1;
    }

    /// Number of nodes (the paper's Table 3 metric). For `k = 0` this
    /// counts the distinct *blocks* (the paper's "no edges" graph keeps
    /// one node per basic block).
    pub fn node_count(&self) -> usize {
        if self.k == 0 {
            self.nodes.get(&Gram::empty()).map_or(0, |n| n.edges.len())
        } else {
            self.nodes.len()
        }
    }

    /// Total recorded transitions (= profiled dynamic basic blocks).
    pub fn total_occurrence(&self) -> u64 {
        self.nodes.values().map(|n| n.occurrence).sum()
    }

    /// Total number of distinct edges across all nodes.
    pub fn edge_count(&self) -> usize {
        self.nodes.values().map(|n| n.edges.len()).sum()
    }

    /// Number of nodes that survive reduction by `r` (§2.2 step 1):
    /// nodes whose occurrence satisfies `floor(M_i / r) > 0`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is zero.
    pub fn reduced_node_count(&self, r: u64) -> usize {
        assert!(r > 0, "reduction factor must be positive");
        self.nodes.values().filter(|n| n.occurrence / r > 0).count()
    }

    /// Transition probability `P[block | state]`, `0.0` if unseen.
    pub fn transition_probability(&self, state: Gram, block: BlockId) -> f64 {
        match self.nodes.get(&state) {
            None => 0.0,
            Some(n) => {
                if n.occurrence == 0 {
                    0.0
                } else {
                    *n.edges.get(&block).unwrap_or(&0) as f64 / n.occurrence as f64
                }
            }
        }
    }

    pub(crate) fn nodes(&self) -> &FxHashMap<Gram, NodeData> {
        &self.nodes
    }

    /// Exports the node list in a stable order (profile serialisation):
    /// `(raw gram, occurrence, sorted edges)`.
    pub fn export_nodes(&self) -> Vec<ExportedNode> {
        let mut out: Vec<_> = self
            .nodes
            .iter()
            .map(|(g, n)| {
                let mut edges: Vec<_> = n.edges.iter().map(|(b, c)| (*b, *c)).collect();
                edges.sort_unstable();
                (g.raw(), n.occurrence, edges)
            })
            .collect();
        out.sort_unstable_by_key(|(g, ..)| *g);
        out
    }

    /// Imports one node (profile deserialisation). Counterpart of
    /// [`Sfg::export_nodes`].
    pub fn import_node(&mut self, gram: Gram, occurrence: u64, edges: Vec<(BlockId, u64)>) {
        let node = self.nodes.entry(gram).or_default();
        node.occurrence += occurrence;
        for (b, c) in edges {
            *node.edges.entry(b).or_insert(0) += c;
        }
    }
}

/// A complete statistical profile: the SFG plus per-context
/// characteristics — everything Figure 1 of the paper lists.
#[derive(Debug, Clone)]
pub struct StatisticalProfile {
    pub(crate) sfg: Sfg,
    pub(crate) contexts: FxHashMap<Context, ContextStats>,
    pub(crate) instructions: u64,
    pub(crate) branch_lookups: u64,
    pub(crate) branch_mispredicts: u64,
}

impl StatisticalProfile {
    /// The SFG order `k`.
    pub fn k(&self) -> usize {
        self.sfg.k()
    }

    /// The underlying statistical flow graph.
    pub fn sfg(&self) -> &Sfg {
        &self.sfg
    }

    /// Number of distinct `(k+1)`-gram contexts.
    pub fn context_count(&self) -> usize {
        self.contexts.len()
    }

    /// Instructions profiled.
    pub fn instructions(&self) -> u64 {
        self.instructions
    }

    /// Total branch-predictor lookups that survived to the update side
    /// during profiling.
    pub fn branch_lookups(&self) -> u64 {
        self.branch_lookups
    }

    /// Branch mispredictions per 1,000 profiled instructions — the
    /// Figure 3 metric, as seen by the profiling scheme.
    pub fn branch_mpki(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.branch_mispredicts as f64 * 1000.0 / self.instructions as f64
        }
    }

    /// Total mispredictions observed by the profiling scheme.
    pub fn branch_mispredict_count(&self) -> u64 {
        self.branch_mispredicts
    }

    /// Reassembles a profile from its parts (deserialisation).
    pub fn from_parts(
        sfg: Sfg,
        contexts: FxHashMap<Context, ContextStats>,
        instructions: u64,
        branch_lookups: u64,
        branch_mispredicts: u64,
    ) -> Self {
        StatisticalProfile {
            sfg,
            contexts,
            instructions,
            branch_lookups,
            branch_mispredicts,
        }
    }

    /// Statistics of one context, if recorded.
    pub fn context(&self, ctx: &Context) -> Option<&ContextStats> {
        self.contexts.get(ctx)
    }

    /// Iterates over all recorded contexts.
    pub fn contexts(&self) -> impl Iterator<Item = (&Context, &ContextStats)> {
        self.contexts.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gram_shift_maintains_window() {
        let g = Gram::empty();
        assert_eq!(g.len(), 0);
        let g = g.shifted(10, 2);
        assert_eq!(g.len(), 1);
        let g = g.shifted(20, 2);
        assert_eq!(g.len(), 2);
        let g = g.shifted(30, 2);
        assert_eq!(g.len(), 2);
        assert_eq!(g, Gram::new(&[20, 30]));
    }

    #[test]
    fn gram_k0_stays_empty() {
        let g = Gram::empty().shifted(5, 0);
        assert!(g.is_empty());
        assert_eq!(g, Gram::empty());
    }

    #[test]
    fn contexts_distinguish_histories() {
        let a = Context::new(&[1], 2);
        let b = Context::new(&[3], 2);
        let c = Context::new(&[], 2);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.current(), 2);
        assert_eq!(c.current(), 2);
    }

    #[test]
    fn context_zero_blocks_distinct_lengths() {
        // Block id 0 must not make (0,0) collide with (0) — the
        // sentinel bit encodes length.
        let one = Context::new(&[], 0);
        let two = Context::new(&[0], 0);
        assert_ne!(one, two);
    }

    #[test]
    fn gram_context_with_matches_context_new() {
        let g = Gram::new(&[7, 9]);
        assert_eq!(g.context_with(4), Context::new(&[7, 9], 4));
    }

    /// The paper's Figure 2 example: sequence AABAABCABC, k = 1.
    #[test]
    fn figure2_first_order_sfg() {
        let (a, b, c) = (1u32, 2u32, 3u32);
        let seq = [a, a, b, a, a, b, c, a, b, c];
        let mut sfg = Sfg::new(1);
        let mut state = Gram::empty();
        for &blk in &seq {
            if !state.is_empty() {
                sfg.record(state, blk);
            }
            state = state.shifted(blk, 1);
        }
        // Node A has occurrence 5 in the figure; we record 4 outgoing
        // transitions (the final C→? edge is missing since A's last
        // occurrence in the figure counts the node, not an edge; our
        // node occurrences count *transitions out*, which is the
        // walkable quantity).
        // Transition probabilities must match the figure: A→A 40%,
        // A→B 60%, B→C 66%, B→A 33%, C→A 100%.
        let ga = Gram::new(&[a]);
        let gb = Gram::new(&[b]);
        let gc = Gram::new(&[c]);
        assert!((sfg.transition_probability(ga, a) - 0.4).abs() < 0.11);
        assert!((sfg.transition_probability(ga, b) - 0.6).abs() < 0.11);
        assert!((sfg.transition_probability(gb, c) - 2.0 / 3.0).abs() < 1e-9);
        assert!((sfg.transition_probability(gb, a) - 1.0 / 3.0).abs() < 1e-9);
        assert!((sfg.transition_probability(gc, a) - 1.0).abs() < 1e-9);
        assert_eq!(sfg.node_count(), 3);
    }

    /// The paper's Figure 2 example, k = 2: five nodes AA AB BA BC CA.
    #[test]
    fn figure2_second_order_sfg() {
        let (a, b, c) = (1u32, 2u32, 3u32);
        let seq = [a, a, b, a, a, b, c, a, b, c];
        let mut sfg = Sfg::new(2);
        let mut state = Gram::empty();
        for &blk in &seq {
            if state.len() == 2 {
                sfg.record(state, blk);
            }
            state = state.shifted(blk, 2);
        }
        assert_eq!(sfg.node_count(), 5);
        let gab = Gram::new(&[a, b]);
        assert!((sfg.transition_probability(gab, a) - 1.0 / 3.0).abs() < 0.2);
        assert!((sfg.transition_probability(gab, c) - 2.0 / 3.0).abs() < 0.2);
        let gaa = Gram::new(&[a, a]);
        assert!((sfg.transition_probability(gaa, b) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn k0_node_count_counts_blocks() {
        let mut sfg = Sfg::new(0);
        sfg.record(Gram::empty(), 5);
        sfg.record(Gram::empty(), 5);
        sfg.record(Gram::empty(), 9);
        assert_eq!(sfg.node_count(), 2);
        assert_eq!(sfg.total_occurrence(), 3);
    }
}
