//! Compiled sampling engine: the §2.2 random walk lowered to dense
//! tables.
//!
//! [`StatisticalProfile::generate_reference`] interprets the reduced
//! SFG on every call: each walk step probes an `FxHashMap<Gram, _>`,
//! every restart rescans the node set, and every distribution draw
//! walks a `BTreeMap`. Synthetic trace generation is the per-design-
//! point inner loop of the methodology, so this module compiles a
//! `(profile, r)` pair **once** into flat arrays and replays them:
//!
//! * **Gram interning** — the reduced node set is sorted and each gram
//!   gets a dense `u32` id; the walk becomes array indexing. Edges are
//!   stored in CSR form with the successor *id* (the gram shift) and
//!   the per-context statistics pointer resolved at compile time.
//! * **Fenwick start-node selection** — restarts draw a start node from
//!   the remaining-occurrence distribution. A binary-indexed tree over
//!   the per-node budgets answers the prefix-sum search in O(log n)
//!   while returning the *exact* node the interpreter's sorted linear
//!   scan would pick (ids are assigned in the same sorted-gram order).
//! * **Compiled histograms** — every per-slot distribution is lowered
//!   to a [`CompiledHistogram`] whose CDF inversion is bit-identical to
//!   `Histogram::sample_with` (see `ssim-stats`).
//!
//! The compiled walk consumes the seeded RNG in exactly the sequence
//! the interpreter does, so traces are **byte-identical** for every
//! `(r, seed)` — pinned by the equivalence tests in
//! `tests/compiled_equivalence.rs`. The artifact borrows nothing from
//! the profile and is `Sync`, so one lowering serves the multi-seed
//! convergence runs of §4.1 and parallel design sweeps.

use crate::fxhash::FxHashMap;
use crate::sfg::{BranchCtxStats, ContextStats, StatisticalProfile};
use crate::synth::{
    BranchFlags, DataFlags, SyntheticInstr, SyntheticOutcome, SyntheticTrace, WalkReport,
    OBS_DEP_CLAMPED, OBS_DEP_RETRIES_EXHAUSTED, OBS_GENERATE_TIME, OBS_INSTRS_EMITTED,
    OBS_NODES_DROPPED, OBS_REDUCED_NODES, OBS_WALK_RESTARTS, OBS_WALK_STEPS,
};
use crate::{DEP_RETRIES, MAX_DEP_DISTANCE};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use ssim_isa::InstrClass;
use ssim_stats::CompiledHistogram;

static OBS_COMPILE_TIME: ssim_obs::TimerStat = ssim_obs::TimerStat::new("sampler.compile_time");
static OBS_TABLE_NODES: ssim_obs::Gauge = ssim_obs::Gauge::new("sampler.nodes");
static OBS_TABLE_EDGES: ssim_obs::Gauge = ssim_obs::Gauge::new("sampler.edges");
static OBS_TABLE_CONTEXTS: ssim_obs::Gauge = ssim_obs::Gauge::new("sampler.contexts");

/// Sentinel edge-context id: the context never materialised during
/// profiling, so traversing the edge emits nothing (mirrors the
/// interpreter's `contexts.get(ctx) == None` early return).
const NO_CONTEXT: u32 = u32::MAX;

/// A Fenwick (binary-indexed) tree over per-node remaining occurrence
/// counts, answering "which node does cumulative point `p` land in"
/// in O(log n) — the interpreter answers the same question with an
/// O(n) scan over the sorted gram list.
#[derive(Debug, Clone)]
struct Fenwick {
    /// 1-based implicit tree; `tree[i]` sums a `lowbit(i)`-sized range.
    tree: Vec<u64>,
}

impl Fenwick {
    /// Builds in O(n) from per-node values.
    fn from_values(values: &[u64]) -> Self {
        let n = values.len();
        let mut tree = vec![0u64; n + 1];
        tree[1..].copy_from_slice(values);
        for i in 1..=n {
            let parent = i + (i & i.wrapping_neg());
            if parent <= n {
                tree[parent] += tree[i];
            }
        }
        Fenwick { tree }
    }

    /// Subtracts `delta` from the value at 0-based index `i`.
    fn sub(&mut self, i: usize, delta: u64) {
        let mut i = i + 1;
        while i < self.tree.len() {
            self.tree[i] -= delta;
            i += i & i.wrapping_neg();
        }
    }

    /// The 0-based index of the first node whose cumulative sum exceeds
    /// `point` — identical to the interpreter's `point < remaining`
    /// scan over nodes in sorted-gram order.
    fn prefix_search(&self, mut point: u64) -> usize {
        let n = self.tree.len() - 1;
        let mut pos = 0usize;
        let mut step = if n == 0 {
            0
        } else {
            1usize << (usize::BITS - 1 - n.leading_zeros())
        };
        while step > 0 {
            let next = pos + step;
            if next <= n && self.tree[next] <= point {
                point -= self.tree[next];
                pos = next;
            }
            step >>= 1;
        }
        pos // 1-based pos, so 0-based index of the *next* node
    }
}

/// Remaining-occurrence bookkeeping for the walk: an exact per-node
/// `remaining` array updated on every step, plus a Fenwick index that
/// is only brought up to date at restart boundaries — the only time it
/// is read. A walk segment between restarts touches few distinct nodes,
/// so deferring turns an O(log n) tree update per step into one per
/// (node, segment) pair, leaving the per-step cost at a bounds check
/// and a decrement.
#[derive(Debug, Clone)]
struct Occupancy {
    remaining: Vec<u64>,
    /// Per-node value the Fenwick tree currently reflects.
    synced: Vec<u64>,
    /// Nodes with `synced != remaining`, each listed once.
    dirty: Vec<u32>,
    tree: Fenwick,
}

impl Occupancy {
    fn new(initial: &[u64]) -> Self {
        Occupancy {
            remaining: initial.to_vec(),
            synced: initial.to_vec(),
            dirty: Vec::with_capacity(16),
            tree: Fenwick::from_values(initial),
        }
    }

    #[inline]
    fn remaining(&self, node: usize) -> u64 {
        self.remaining[node]
    }

    /// Consumes one occurrence (a walk step) without touching the tree.
    #[inline]
    fn consume_one(&mut self, node: usize) {
        if self.synced[node] == self.remaining[node] {
            self.dirty.push(node as u32);
        }
        self.remaining[node] -= 1;
    }

    /// Drains a dead-end node entirely; returns what was left.
    fn drain(&mut self, node: usize) -> u64 {
        let left = self.remaining[node];
        if left > 0 {
            if self.synced[node] == self.remaining[node] {
                self.dirty.push(node as u32);
            }
            self.remaining[node] = 0;
        }
        left
    }

    /// Syncs the tree and picks the node holding cumulative `point` —
    /// restart-time only.
    fn select(&mut self, point: u64) -> usize {
        for i in 0..self.dirty.len() {
            let node = self.dirty[i] as usize;
            self.tree
                .sub(node, self.synced[node] - self.remaining[node]);
            self.synced[node] = self.remaining[node];
        }
        self.dirty.clear();
        self.tree.prefix_search(point)
    }

    /// Σ remaining — the walk's budget invariant (debug assertions).
    fn total(&self) -> u64 {
        self.remaining.iter().sum()
    }
}

/// One CSR edge, interleaved so a walk step touches one record: the
/// cumulative count scanned by [`pick_edge`], the successor node id
/// (the gram shift, resolved at compile time against the reduced node
/// set) and the index into `contexts` ([`NO_CONTEXT`] = emit nothing).
#[derive(Debug, Clone)]
struct CompiledEdge {
    cum: u64,
    target: u32,
    ctx: u32,
}

/// Index of the first edge whose cumulative count exceeds `point` —
/// the same partition point `partition_point(|e| e.cum <= point)`
/// finds, but computed with a branchless accumulation for the small
/// fan-outs that dominate real SFGs: `point` is a fresh random draw
/// every step, so binary-search branches mispredict almost every time,
/// costing more than summing the whole fan.
#[inline]
fn pick_edge(edges: &[CompiledEdge], point: u64) -> usize {
    if edges.len() <= 16 {
        edges.iter().map(|e| usize::from(e.cum <= point)).sum()
    } else {
        edges.partition_point(|e| e.cum <= point)
    }
}

/// One instruction slot's statistics, lowered for the draw hot path.
#[derive(Debug, Clone)]
struct CompiledSlot {
    class: InstrClass,
    src_count: u8,
    /// Precomputed `class.has_dest()` (1/0), pushed into the walk's
    /// sideband producer index.
    has_dest: u8,
    dep: [CompiledHistogram; 2],
    waw: CompiledHistogram,
    war: CompiledHistogram,
    /// (L1I, L2I, I-TLB) miss probabilities.
    icache: [f64; 3],
    /// (L1D, L2D, D-TLB) miss probabilities, loads only.
    dcache: Option<[f64; 3]>,
}

/// Terminal-branch statistics of a context, lowered. Present only when
/// the profile recorded at least one branch execution (`total > 0`), so
/// the emit path's draw is unconditional.
#[derive(Debug, Clone)]
struct CompiledBranch {
    taken: f64,
    correct: u64,
    redirect: u64,
    total: u64,
}

/// All per-context statistics one edge traversal needs.
#[derive(Debug, Clone)]
struct CompiledContext {
    slots: Vec<CompiledSlot>,
    branch: Option<CompiledBranch>,
}

impl CompiledContext {
    fn lower(stats: &ContextStats) -> Self {
        let slots = stats
            .slots
            .iter()
            .map(|s| CompiledSlot {
                class: s.class,
                src_count: s.src_count,
                has_dest: u8::from(s.class.has_dest()),
                dep: [s.dep[0].compile(), s.dep[1].compile()],
                waw: s.waw.compile(),
                war: s.war.compile(),
                icache: [
                    s.icache.l1.probability(),
                    s.icache.l2.probability(),
                    s.icache.tlb.probability(),
                ],
                dcache: s
                    .dcache
                    .as_ref()
                    .map(|d| [d.l1.probability(), d.l2.probability(), d.tlb.probability()]),
            })
            .collect();
        let branch = stats.branch.as_ref().and_then(|b: &BranchCtxStats| {
            let total = b.total();
            (total > 0).then(|| CompiledBranch {
                taken: b.taken.probability(),
                correct: b.correct,
                redirect: b.redirect,
                total,
            })
        });
        CompiledContext { slots, branch }
    }
}

/// A `(profile, r)` pair lowered into dense tables (see the module
/// docs). Build with [`StatisticalProfile::compile`]; generate any
/// number of traces with [`CompiledSampler::generate`].
///
/// # Examples
///
/// ```no_run
/// use ssim_core::{profile, ProfileConfig};
/// use ssim_uarch::MachineConfig;
///
/// let program = ssim_workloads::by_name("gzip").unwrap().program();
/// let p = profile(&program, &ProfileConfig::new(&MachineConfig::baseline()));
/// let sampler = p.compile(100); // lower once ...
/// for seed in 0..10 {
///     let trace = sampler.generate(seed); // ... walk many times
///     assert_eq!(trace.instrs(), p.generate(100, seed).instrs());
/// }
/// ```
#[derive(Debug, Clone)]
pub struct CompiledSampler {
    /// Per-node initial occurrence budget `N_i = floor(M_i / r)`, in
    /// sorted-gram order (the id space).
    initial: Vec<u64>,
    /// CSR row offsets into `edges` (`nodes + 1` entries).
    edge_start: Vec<u32>,
    /// CSR edge records, one 16-byte record per surviving edge — the
    /// cumulative scan and the successor/context lookup hit the same
    /// cache line.
    edges: Vec<CompiledEdge>,
    /// Total outgoing transition count per node (0 = dead end).
    node_total: Vec<u64>,
    /// Lowered per-context statistics, indexed by [`CompiledEdge::ctx`].
    contexts: Vec<CompiledContext>,
    /// Σ `initial` — the walk's occurrence budget.
    budget: u64,
    /// Expected instruction count (plus slack), used to reserve the
    /// trace vector up front.
    instr_hint: usize,
}

impl StatisticalProfile {
    /// Lowers the profile for reduction factor `r` into a reusable
    /// [`CompiledSampler`] (step 1 of §2.2 plus table construction).
    ///
    /// # Panics
    ///
    /// Panics if `r` is zero.
    pub fn compile(&self, r: u64) -> CompiledSampler {
        CompiledSampler::lower(self, r)
    }
}

impl CompiledSampler {
    /// The number of reduced-SFG nodes in the compiled tables.
    pub fn node_count(&self) -> usize {
        self.initial.len()
    }

    /// The number of (post-pruning) edges in the compiled tables.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// The walk's total occurrence budget (trace length in blocks).
    pub fn budget(&self) -> u64 {
        self.budget
    }

    fn lower(profile: &StatisticalProfile, r: u64) -> Self {
        assert!(r > 0, "reduction factor must be positive");
        let _span = OBS_COMPILE_TIME.span();
        let k = profile.sfg.k();

        // ---- intern: reduced grams in sorted order -> dense u32 ids.
        // Sorted-gram order *is* the interpreter's start-node scan
        // order, which makes the Fenwick prefix search below land on
        // the identical node for every cumulative point.
        let mut grams: Vec<_> = profile
            .sfg
            .nodes()
            .iter()
            .filter(|(_, n)| n.occurrence / r > 0)
            .map(|(g, n)| (*g, n))
            .collect();
        grams.sort_unstable_by_key(|(g, _)| *g);
        let id_of: FxHashMap<_, u32> = grams
            .iter()
            .enumerate()
            .map(|(i, (g, _))| (*g, i as u32))
            .collect();
        OBS_NODES_DROPPED.add((profile.sfg.nodes().len() - grams.len()) as u64);
        OBS_REDUCED_NODES.set(grams.len() as u64);

        // ---- edges: CSR rows with targets, contexts and cumulative
        // counts resolved against the reduced node set. An edge from
        // state s labeled b leads to shift(s, b); edges into dropped
        // nodes are pruned (the paper removes all incoming and outgoing
        // edges of removed nodes). The k = 0 graph has a single node
        // and every edge loops back to it, so nothing prunes.
        let mut initial = Vec::with_capacity(grams.len());
        let mut edge_start = Vec::with_capacity(grams.len() + 1);
        let mut node_total = Vec::with_capacity(grams.len());
        let mut edge_records: Vec<CompiledEdge> = Vec::new();
        let mut contexts = Vec::new();
        edge_start.push(0u32);
        for (gram, node) in &grams {
            initial.push(node.occurrence / r);
            // Deterministic edge order for reproducibility (the
            // interpreter sorts by block id the same way).
            let mut edges: Vec<_> = node.edges.iter().collect();
            edges.sort_unstable_by_key(|(b, _)| **b);
            let mut acc = 0u64;
            for (block, count) in edges {
                let Some(&target) = id_of.get(&gram.shifted(*block, k)) else {
                    continue; // pruned: successor fell out of the reduced set
                };
                acc += *count;
                let ctx = match profile.contexts.get(&gram.context_with(*block)) {
                    Some(stats) => {
                        contexts.push(CompiledContext::lower(stats));
                        (contexts.len() - 1) as u32
                    }
                    None => NO_CONTEXT,
                };
                edge_records.push(CompiledEdge {
                    cum: acc,
                    target,
                    ctx,
                });
            }
            node_total.push(acc);
            edge_start.push(edge_records.len() as u32);
        }
        let budget: u64 = initial.iter().sum();

        // Expected trace length in instructions: each node is visited
        // `initial` times, each visit takes edge e with probability
        // count_e / total and emits `slots(ctx_e)` instructions. Used to
        // reserve the trace vector once instead of growing it.
        let mut expected = 0.0f64;
        for node in 0..initial.len() {
            if node_total[node] == 0 {
                continue;
            }
            let (lo, hi) = (edge_start[node] as usize, edge_start[node + 1] as usize);
            let mut prev = 0u64;
            for e in &edge_records[lo..hi] {
                let count = e.cum - prev;
                prev = e.cum;
                let slots = match contexts.get(e.ctx as usize) {
                    Some(c) => c.slots.len(),
                    None => 0,
                };
                expected +=
                    initial[node] as f64 * (count as f64 / node_total[node] as f64) * slots as f64;
            }
        }
        let instr_hint = expected as usize + expected as usize / 8 + 16;

        OBS_TABLE_NODES.set(initial.len() as u64);
        OBS_TABLE_EDGES.set(edge_records.len() as u64);
        OBS_TABLE_CONTEXTS.set(contexts.len() as u64);
        CompiledSampler {
            initial,
            edge_start,
            edges: edge_records,
            node_total,
            contexts,
            budget,
            instr_hint,
        }
    }

    /// Walks the compiled tables without emitting instructions — the
    /// compiled half of the walk-subsystem comparison.
    ///
    /// The RNG stream is start draw + one edge draw per step (no
    /// per-instruction draws), so the visited node sequence differs
    /// from [`CompiledSampler::generate`]'s; what it matches exactly —
    /// steps, restarts and budget-trajectory checksum — is
    /// [`StatisticalProfile::walk_reference`] on the `(r, seed)` this
    /// artifact was lowered for. Unlike the interpreter, each call pays
    /// no reduction: the walk runs straight off the reusable tables.
    pub fn walk(&self, seed: u64) -> WalkReport {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut budget = self.budget;
        let mut report = WalkReport::default();
        if budget == 0 {
            return report;
        }
        let mut occupancy = Occupancy::new(&self.initial);
        'walk: loop {
            report.restarts += 1;
            report.checksum = report.checksum.rotate_left(5) ^ budget;
            if budget == 0 {
                break 'walk;
            }
            let point = rng.gen_range(0..budget);
            let mut node = occupancy.select(point);
            loop {
                if self.node_total[node] == 0 {
                    budget = budget.saturating_sub(occupancy.drain(node));
                    if budget == 0 {
                        break 'walk;
                    }
                    continue 'walk;
                }
                if occupancy.remaining(node) == 0 {
                    continue 'walk;
                }
                occupancy.consume_one(node);
                budget -= 1;
                report.steps += 1;
                let (lo, hi) = (
                    self.edge_start[node] as usize,
                    self.edge_start[node + 1] as usize,
                );
                let row = &self.edges[lo..hi];
                let point = rng.gen_range(0..self.node_total[node]);
                node = row[pick_edge(row, point)].target as usize;
                if budget == 0 {
                    break 'walk;
                }
            }
        }
        report
    }

    /// Generates one synthetic trace by random-walking the compiled
    /// tables (steps 2–9 of §2.2).
    ///
    /// Byte-identical to
    /// [`StatisticalProfile::generate_reference`] for the same
    /// `(r, seed)`: the walk draws from the seeded RNG in exactly the
    /// interpreter's sequence and inverts the same CDFs.
    pub fn generate(&self, seed: u64) -> SyntheticTrace {
        let _span = OBS_GENERATE_TIME.span();
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut budget = self.budget;
        if budget == 0 {
            return SyntheticTrace::default();
        }
        let mut occupancy = Occupancy::new(&self.initial);
        let mut trace = SyntheticTrace::default();
        trace.instrs.reserve(self.instr_hint);
        // Sideband producer index: one byte per emitted instruction
        // (`class.has_dest()`), so dependency-retry probes stay cache-
        // resident instead of striding the 48-byte instruction records.
        let mut has_dest: Vec<u8> = Vec::with_capacity(self.instr_hint);
        let mut walk_steps: u64 = 0;
        let mut walk_restarts: u64 = 0;

        'walk: loop {
            walk_restarts += 1;
            // ---- step 2: pick a start node by remaining occurrence.
            debug_assert_eq!(budget, occupancy.total());
            if budget == 0 {
                break 'walk;
            }
            let point = rng.gen_range(0..budget);
            let mut node = occupancy.select(point);

            // ---- steps 3-9: walk the id space.
            loop {
                if self.node_total[node] == 0 {
                    // Dead end (every outgoing edge was pruned): per the
                    // paper, accessing the node still consumes its
                    // occurrence before restarting at step 1 — otherwise
                    // start-node selection could land here forever.
                    budget = budget.saturating_sub(occupancy.drain(node));
                    if budget == 0 {
                        break 'walk;
                    }
                    continue 'walk;
                }
                if occupancy.remaining(node) == 0 {
                    // Occurrence budget exhausted: restart at step 2.
                    continue 'walk;
                }
                occupancy.consume_one(node);
                budget -= 1;
                walk_steps += 1;
                // Pick an outgoing edge by transition probability.
                let (lo, hi) = (
                    self.edge_start[node] as usize,
                    self.edge_start[node + 1] as usize,
                );
                let row = &self.edges[lo..hi];
                let point = rng.gen_range(0..self.node_total[node]);
                let edge = &row[pick_edge(row, point)];
                if let Some(ctx) = self.contexts.get(edge.ctx as usize) {
                    ctx.emit(&mut trace, &mut has_dest, &mut rng);
                }
                node = edge.target as usize;
                if budget == 0 {
                    break 'walk;
                }
            }
        }
        OBS_WALK_STEPS.add(walk_steps);
        OBS_WALK_RESTARTS.add(walk_restarts);
        OBS_INSTRS_EMITTED.add(trace.len() as u64);
        trace
    }
}

impl CompiledContext {
    /// Emits one basic block's worth of synthetic instructions
    /// (steps 3-8) — the compiled mirror of the interpreter's
    /// `emit_block`, consuming the RNG in the identical sequence.
    fn emit(&self, trace: &mut SyntheticTrace, has_dest: &mut Vec<u8>, rng: &mut SmallRng) {
        let nslots = self.slots.len();
        // One quantile per block occurrence, shared by every operand's
        // first draw: within one dynamic block, dependency distances
        // co-vary, and comonotonic sampling preserves that correlation
        // (see `emit_block` in `synth.rs`).
        let u_block: f64 = rng.gen();
        for (s, slot) in self.slots.iter().enumerate() {
            let mut instr = SyntheticInstr {
                class: slot.class,
                dep: [None, None],
                l1i_miss: false,
                l2i_miss: false,
                itlb_miss: false,
                dmem: None,
                branch: None,
                anti_dep: [None, None],
            };
            // Anti-dependency distances (profiles with anti_deps only).
            for (i, hist) in [&slot.waw, &slot.war].into_iter().enumerate() {
                if !hist.is_empty() {
                    let d = hist.sample_with(rng.gen()).unwrap_or(0);
                    if d > 0 {
                        if d > MAX_DEP_DISTANCE {
                            OBS_DEP_CLAMPED.inc();
                        }
                        instr.anti_dep[i] = Some(d.min(MAX_DEP_DISTANCE));
                    }
                }
            }
            // step 4: dependency distances, retried so the producer is
            // not a branch or store.
            for p in 0..usize::from(slot.src_count.min(2)) {
                let hist = &slot.dep[p];
                if hist.is_empty() {
                    continue;
                }
                let mut chosen = None;
                let mut exhausted = true;
                for attempt in 0..DEP_RETRIES {
                    let u = if attempt == 0 {
                        u_block
                    } else {
                        rng.gen::<f64>()
                    };
                    let d = hist.sample_with(u).expect("non-empty histogram samples");
                    if d == 0 {
                        chosen = None; // "no dependency" mass
                        exhausted = false;
                        break;
                    }
                    if d > MAX_DEP_DISTANCE {
                        // Guards hand-built or deserialized profiles so
                        // the ≤512 invariant holds everywhere.
                        OBS_DEP_CLAMPED.inc();
                    }
                    let d = d.min(MAX_DEP_DISTANCE);
                    let pos = trace.instrs.len();
                    match pos.checked_sub(d as usize) {
                        Some(src) => {
                            // Producer must define a register (not a
                            // branch or store). `has_dest` mirrors the
                            // trace one byte per instruction, so the
                            // probe stays in cache instead of touching
                            // the 48-byte instruction records.
                            if has_dest[src] != 0 {
                                chosen = Some(d);
                                exhausted = false;
                                break;
                            }
                        }
                        None => {
                            // Points before the trace start: drop.
                            chosen = None;
                            exhausted = false;
                            break;
                        }
                    }
                }
                if exhausted {
                    OBS_DEP_RETRIES_EXHAUSTED.inc();
                }
                instr.dep[p] = chosen;
            }
            // step 5: load locality flags.
            if let Some(d) = &slot.dcache {
                let l1_miss = rng.gen::<f64>() < d[0];
                let l2_miss = l1_miss && rng.gen::<f64>() < d[1];
                let tlb_miss = rng.gen::<f64>() < d[2];
                instr.dmem = Some(DataFlags {
                    l1_miss,
                    l2_miss,
                    tlb_miss,
                });
            }
            // step 7: instruction fetch locality flags.
            instr.l1i_miss = rng.gen::<f64>() < slot.icache[0];
            instr.l2i_miss = instr.l1i_miss && rng.gen::<f64>() < slot.icache[1];
            instr.itlb_miss = rng.gen::<f64>() < slot.icache[2];
            // step 6: terminal branch flags.
            if s + 1 == nslots {
                if let Some(b) = &self.branch {
                    let taken = rng.gen::<f64>() < b.taken;
                    let point = rng.gen_range(0..b.total);
                    let outcome = if point < b.correct {
                        SyntheticOutcome::Correct
                    } else if point < b.correct + b.redirect {
                        SyntheticOutcome::FetchRedirect
                    } else {
                        SyntheticOutcome::Mispredict
                    };
                    instr.branch = Some(BranchFlags { taken, outcome });
                }
            }
            trace.instrs.push(instr); // step 8
            has_dest.push(slot.has_dest);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sfg::{Gram, Sfg};

    #[test]
    fn fenwick_prefix_search_matches_linear_scan() {
        let values = [3u64, 0, 5, 1, 0, 2];
        let f = Fenwick::from_values(&values);
        let total: u64 = values.iter().sum();
        for point in 0..total {
            // Reference: first index whose cumulative sum exceeds point.
            let mut p = point;
            let mut want = 0usize;
            for (i, &v) in values.iter().enumerate() {
                if p < v {
                    want = i;
                    break;
                }
                p -= v;
            }
            assert_eq!(f.prefix_search(point), want, "point {point}");
        }
    }

    #[test]
    fn fenwick_sub_keeps_search_consistent() {
        let mut values = vec![4u64, 2, 0, 7, 1];
        let mut f = Fenwick::from_values(&values);
        // Drain in a fixed pattern, checking the search after each op.
        for (i, delta) in [(0usize, 2u64), (3, 7), (0, 2), (4, 1), (1, 2)] {
            f.sub(i, delta);
            values[i] -= delta;
            let total: u64 = values.iter().sum();
            for point in 0..total {
                let mut p = point;
                let mut want = 0usize;
                for (j, &v) in values.iter().enumerate() {
                    if p < v {
                        want = j;
                        break;
                    }
                    p -= v;
                }
                assert_eq!(f.prefix_search(point), want);
            }
        }
    }

    #[test]
    fn fenwick_single_node() {
        let f = Fenwick::from_values(&[5]);
        for point in 0..5 {
            assert_eq!(f.prefix_search(point), 0);
        }
    }

    #[test]
    fn compile_resolves_tables_for_hand_built_sfg() {
        // Figure 2's k = 1 graph: A→{A,B}, B→{A,C}, C→{A}.
        let (a, b, c) = (1u32, 2u32, 3u32);
        let mut sfg = Sfg::new(1);
        sfg.import_node(Gram::new(&[a]), 5, vec![(a, 2), (b, 3)]);
        sfg.import_node(Gram::new(&[b]), 3, vec![(a, 1), (c, 2)]);
        sfg.import_node(Gram::new(&[c]), 2, vec![(a, 2)]);
        let p = StatisticalProfile::from_parts(sfg, FxHashMap::default(), 10, 0, 0);

        let s = p.compile(1);
        assert_eq!(s.node_count(), 3);
        assert_eq!(s.edge_count(), 5);
        assert_eq!(s.budget(), 10);

        // R = 3 drops C (2/3 = 0) and prunes B→C with it.
        let s = p.compile(3);
        assert_eq!(s.node_count(), 2);
        assert_eq!(s.edge_count(), 3);
        assert_eq!(s.budget(), 2);

        // R beyond every occurrence: empty tables, empty trace.
        let s = p.compile(100);
        assert_eq!(s.node_count(), 0);
        assert_eq!(s.budget(), 0);
        assert!(s.generate(1).is_empty());
    }
}
