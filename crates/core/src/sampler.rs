//! Compiled sampling engine: the §2.2 random walk lowered to dense
//! tables.
//!
//! [`StatisticalProfile::generate_reference`] interprets the reduced
//! SFG on every call: each walk step probes an `FxHashMap<Gram, _>`,
//! every restart rescans the node set, and every distribution draw
//! walks a `BTreeMap`. Synthetic trace generation is the per-design-
//! point inner loop of the methodology, so this module compiles a
//! `(profile, r)` pair **once** into flat arrays and replays them:
//!
//! * **Gram interning** — the reduced node set is sorted and each gram
//!   gets a dense `u32` id; the walk becomes array indexing. Edges are
//!   stored in CSR form with the successor *id* (the gram shift) and
//!   the per-context statistics pointer resolved at compile time.
//! * **Fenwick start-node selection** — restarts draw a start node from
//!   the remaining-occurrence distribution. A binary-indexed tree over
//!   the per-node budgets answers the prefix-sum search in O(log n)
//!   while returning the *exact* node the interpreter's sorted linear
//!   scan would pick (ids are assigned in the same sorted-gram order).
//! * **Compiled histograms** — every per-slot distribution is lowered
//!   to a [`CompiledHistogram`] whose CDF inversion is bit-identical to
//!   `Histogram::sample_with` (see `ssim-stats`).
//!
//! The compiled walk consumes the seeded RNG in exactly the sequence
//! the interpreter does, so traces are **byte-identical** for every
//! `(r, seed)` — pinned by the equivalence tests in
//! `tests/compiled_equivalence.rs`. The artifact borrows nothing from
//! the profile and is `Sync`, so one lowering serves the multi-seed
//! convergence runs of §4.1 and parallel design sweeps.

use crate::fxhash::FxHashMap;
use crate::sfg::{BranchCtxStats, ContextStats, StatisticalProfile};
use crate::synth::{
    BranchFlags, DataFlags, SyntheticInstr, SyntheticOutcome, SyntheticTrace, WalkReport,
    OBS_DEP_CLAMPED, OBS_DEP_RETRIES_EXHAUSTED, OBS_GENERATE_TIME, OBS_INSTRS_EMITTED,
    OBS_NODES_DROPPED, OBS_REDUCED_NODES, OBS_WALK_RESTARTS, OBS_WALK_STEPS,
};
use crate::{DEP_RETRIES, MAX_DEP_DISTANCE};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use ssim_isa::InstrClass;
use ssim_stats::CompiledHistogram;

static OBS_COMPILE_TIME: ssim_obs::TimerStat = ssim_obs::TimerStat::new("sampler.compile_time");
static OBS_TABLE_NODES: ssim_obs::Gauge = ssim_obs::Gauge::new("sampler.nodes");
static OBS_TABLE_EDGES: ssim_obs::Gauge = ssim_obs::Gauge::new("sampler.edges");
static OBS_TABLE_CONTEXTS: ssim_obs::Gauge = ssim_obs::Gauge::new("sampler.contexts");

/// Sentinel edge-context id: the context never materialised during
/// profiling, so traversing the edge emits nothing (mirrors the
/// interpreter's `contexts.get(ctx) == None` early return).
const NO_CONTEXT: u32 = u32::MAX;

/// A Fenwick (binary-indexed) tree over per-node remaining occurrence
/// counts, answering "which node does cumulative point `p` land in"
/// in O(log n) — the interpreter answers the same question with an
/// O(n) scan over the sorted gram list.
#[derive(Debug, Clone)]
struct Fenwick {
    /// 1-based implicit tree; `tree[i]` sums a `lowbit(i)`-sized range.
    tree: Vec<u64>,
}

impl Fenwick {
    /// Builds in O(n) from per-node values.
    fn from_values(values: &[u64]) -> Self {
        let n = values.len();
        let mut tree = vec![0u64; n + 1];
        tree[1..].copy_from_slice(values);
        for i in 1..=n {
            let parent = i + (i & i.wrapping_neg());
            if parent <= n {
                tree[parent] += tree[i];
            }
        }
        Fenwick { tree }
    }

    /// Subtracts `delta` from the value at 0-based index `i`.
    fn sub(&mut self, i: usize, delta: u64) {
        let mut i = i + 1;
        while i < self.tree.len() {
            self.tree[i] -= delta;
            i += i & i.wrapping_neg();
        }
    }

    /// The 0-based index of the first node whose cumulative sum exceeds
    /// `point` — identical to the interpreter's `point < remaining`
    /// scan over nodes in sorted-gram order.
    fn prefix_search(&self, mut point: u64) -> usize {
        let n = self.tree.len() - 1;
        let mut pos = 0usize;
        let mut step = if n == 0 {
            0
        } else {
            1usize << (usize::BITS - 1 - n.leading_zeros())
        };
        while step > 0 {
            let next = pos + step;
            if next <= n && self.tree[next] <= point {
                point -= self.tree[next];
                pos = next;
            }
            step >>= 1;
        }
        pos // 1-based pos, so 0-based index of the *next* node
    }
}

/// Remaining-occurrence bookkeeping for the walk: an exact per-node
/// `remaining` array updated on every step, plus a Fenwick index that
/// is only brought up to date at restart boundaries — the only time it
/// is read. A walk segment between restarts touches few distinct nodes,
/// so deferring turns an O(log n) tree update per step into one per
/// (node, segment) pair, leaving the per-step cost at a bounds check
/// and a decrement.
#[derive(Debug, Clone)]
struct Occupancy {
    remaining: Vec<u64>,
    /// Per-node value the Fenwick tree currently reflects.
    synced: Vec<u64>,
    /// Nodes with `synced != remaining`, each listed once.
    dirty: Vec<u32>,
    tree: Fenwick,
}

impl Occupancy {
    fn new(initial: &[u64]) -> Self {
        Occupancy {
            remaining: initial.to_vec(),
            synced: initial.to_vec(),
            dirty: Vec::with_capacity(16),
            tree: Fenwick::from_values(initial),
        }
    }

    #[inline]
    fn remaining(&self, node: usize) -> u64 {
        self.remaining[node]
    }

    /// Consumes one occurrence (a walk step) without touching the tree.
    #[inline]
    fn consume_one(&mut self, node: usize) {
        if self.synced[node] == self.remaining[node] {
            self.dirty.push(node as u32);
        }
        self.remaining[node] -= 1;
    }

    /// Drains a dead-end node entirely; returns what was left.
    fn drain(&mut self, node: usize) -> u64 {
        let left = self.remaining[node];
        if left > 0 {
            if self.synced[node] == self.remaining[node] {
                self.dirty.push(node as u32);
            }
            self.remaining[node] = 0;
        }
        left
    }

    /// Syncs the tree and picks the node holding cumulative `point` —
    /// restart-time only.
    fn select(&mut self, point: u64) -> usize {
        for i in 0..self.dirty.len() {
            let node = self.dirty[i] as usize;
            self.tree
                .sub(node, self.synced[node] - self.remaining[node]);
            self.synced[node] = self.remaining[node];
        }
        self.dirty.clear();
        self.tree.prefix_search(point)
    }

    /// Σ remaining — the walk's budget invariant (debug assertions).
    fn total(&self) -> u64 {
        self.remaining.iter().sum()
    }
}

/// One CSR edge, interleaved so a walk step touches one record: the
/// cumulative count scanned by [`pick_edge`], the successor node id
/// (the gram shift, resolved at compile time against the reduced node
/// set) and the index into `contexts` ([`NO_CONTEXT`] = emit nothing).
#[derive(Debug, Clone)]
struct CompiledEdge {
    cum: u64,
    target: u32,
    ctx: u32,
}

/// Index of the first edge whose cumulative count exceeds `point` —
/// the same partition point `partition_point(|e| e.cum <= point)`
/// finds, but computed with a branchless accumulation for the small
/// fan-outs that dominate real SFGs: `point` is a fresh random draw
/// every step, so binary-search branches mispredict almost every time,
/// costing more than summing the whole fan.
#[inline]
fn pick_edge(edges: &[CompiledEdge], point: u64) -> usize {
    if edges.len() <= 16 {
        edges.iter().map(|e| usize::from(e.cum <= point)).sum()
    } else {
        edges.partition_point(|e| e.cum <= point)
    }
}

/// One instruction slot's statistics, lowered for the draw hot path.
#[derive(Debug, Clone)]
struct CompiledSlot {
    class: InstrClass,
    src_count: u8,
    /// Precomputed `class.has_dest()` (1/0), pushed into the walk's
    /// sideband producer index.
    has_dest: u8,
    dep: [CompiledHistogram; 2],
    waw: CompiledHistogram,
    war: CompiledHistogram,
    /// (L1I, L2I, I-TLB) miss probabilities.
    icache: [f64; 3],
    /// (L1D, L2D, D-TLB) miss probabilities, loads only.
    dcache: Option<[f64; 3]>,
}

/// Terminal-branch statistics of a context, lowered. Present only when
/// the profile recorded at least one branch execution (`total > 0`), so
/// the emit path's draw is unconditional.
#[derive(Debug, Clone)]
struct CompiledBranch {
    taken: f64,
    correct: u64,
    redirect: u64,
    total: u64,
}

/// All per-context statistics one edge traversal needs.
#[derive(Debug, Clone)]
struct CompiledContext {
    slots: Vec<CompiledSlot>,
    branch: Option<CompiledBranch>,
}

/// One instruction slot pre-decoded into a fixed-width record: a packed
/// template word (op class, operand count, destination/dependency/
/// memory flags) plus the per-instruction fetch-miss probabilities.
///
/// The emit hot path reads these 32-byte records sequentially and only
/// dereferences the fat [`CompiledSlot`] (whose histograms live behind
/// pointers) when a flag says a distribution actually has mass — the
/// common all-hits / no-anti-deps block never leaves the macro-op
/// stream.
#[derive(Debug, Clone, Copy)]
struct MacroOp {
    word: u32,
    /// (L1I, L2I, I-TLB) miss probabilities — drawn for every
    /// instruction, so they ride in the record.
    icache: [f64; 3],
}

impl MacroOp {
    const HAS_DEST: u32 = 1 << 6;
    const DEP0: u32 = 1 << 7;
    const DEP1: u32 = 1 << 8;
    const WAW: u32 = 1 << 9;
    const WAR: u32 = 1 << 10;
    const DCACHE: u32 = 1 << 11;

    fn lower(slot: &CompiledSlot) -> Self {
        let mut word = slot.class.index() as u32;
        word |= u32::from(slot.src_count.min(2)) << 4;
        if slot.has_dest != 0 {
            word |= Self::HAS_DEST;
        }
        if !slot.dep[0].is_empty() {
            word |= Self::DEP0;
        }
        if !slot.dep[1].is_empty() {
            word |= Self::DEP1;
        }
        if !slot.waw.is_empty() {
            word |= Self::WAW;
        }
        if !slot.war.is_empty() {
            word |= Self::WAR;
        }
        if slot.dcache.is_some() {
            word |= Self::DCACHE;
        }
        MacroOp {
            word,
            icache: slot.icache,
        }
    }

    #[inline]
    fn class(self) -> InstrClass {
        InstrClass::ALL[(self.word & 0xF) as usize]
    }
    #[inline]
    fn src_count(self) -> usize {
        ((self.word >> 4) & 0x3) as usize
    }
    #[inline]
    fn has_dest_byte(self) -> u8 {
        u8::from(self.word & Self::HAS_DEST != 0)
    }
    #[inline]
    fn dep_nonempty(self, p: usize) -> bool {
        self.word & (Self::DEP0 << p) != 0
    }
    #[inline]
    fn waw(self) -> bool {
        self.word & Self::WAW != 0
    }
    #[inline]
    fn war(self) -> bool {
        self.word & Self::WAR != 0
    }
    #[inline]
    fn any_anti(self) -> bool {
        self.word & (Self::WAW | Self::WAR) != 0
    }
    #[inline]
    fn dcache(self) -> bool {
        self.word & Self::DCACHE != 0
    }
}

/// Where emitted instructions go: a materialising sink (building a
/// [`SyntheticTrace`]) or the fused engine's ring buffer. Positions are
/// absolute stream indices; `has_dest_at` serves the dependency-retry
/// probe, which looks at most [`MAX_DEP_DISTANCE`] instructions back.
///
/// Routing both paths through one emit implementation is what makes the
/// fused engine bit-identical by construction: there is a single RNG
/// consumption order.
pub(crate) trait EmitSink {
    /// Total instructions emitted so far (the absolute stream length).
    fn len(&self) -> usize;
    /// Whether the instruction at absolute position `idx` defines a
    /// register.
    fn has_dest_at(&self, idx: usize) -> bool;
    /// Appends one instruction.
    fn push(&mut self, instr: SyntheticInstr, has_dest: u8);
}

/// [`EmitSink`] that materialises a [`SyntheticTrace`] plus the
/// sideband producer-index bytes.
struct TraceSink<'t> {
    trace: &'t mut SyntheticTrace,
    has_dest: &'t mut Vec<u8>,
}

impl EmitSink for TraceSink<'_> {
    #[inline]
    fn len(&self) -> usize {
        self.trace.instrs.len()
    }
    #[inline]
    fn has_dest_at(&self, idx: usize) -> bool {
        self.has_dest[idx] != 0
    }
    #[inline]
    fn push(&mut self, instr: SyntheticInstr, has_dest: u8) {
        self.trace.instrs.push(instr);
        self.has_dest.push(has_dest);
    }
}

impl CompiledContext {
    fn lower(stats: &ContextStats) -> Self {
        let slots = stats
            .slots
            .iter()
            .map(|s| CompiledSlot {
                class: s.class,
                src_count: s.src_count,
                has_dest: u8::from(s.class.has_dest()),
                dep: [s.dep[0].compile(), s.dep[1].compile()],
                waw: s.waw.compile(),
                war: s.war.compile(),
                icache: [
                    s.icache.l1.probability(),
                    s.icache.l2.probability(),
                    s.icache.tlb.probability(),
                ],
                dcache: s
                    .dcache
                    .as_ref()
                    .map(|d| [d.l1.probability(), d.l2.probability(), d.tlb.probability()]),
            })
            .collect();
        let branch = stats.branch.as_ref().and_then(|b: &BranchCtxStats| {
            let total = b.total();
            (total > 0).then(|| CompiledBranch {
                taken: b.taken.probability(),
                correct: b.correct,
                redirect: b.redirect,
                total,
            })
        });
        CompiledContext { slots, branch }
    }
}

/// A `(profile, r)` pair lowered into dense tables (see the module
/// docs). Build with [`StatisticalProfile::compile`]; generate any
/// number of traces with [`CompiledSampler::generate`].
///
/// # Examples
///
/// ```no_run
/// use ssim_core::{profile, ProfileConfig};
/// use ssim_uarch::MachineConfig;
///
/// let program = ssim_workloads::by_name("gzip").unwrap().program();
/// let p = profile(&program, &ProfileConfig::new(&MachineConfig::baseline()));
/// let sampler = p.compile(100); // lower once ...
/// for seed in 0..10 {
///     let trace = sampler.generate(seed); // ... walk many times
///     assert_eq!(trace.instrs(), p.generate(100, seed).instrs());
/// }
/// ```
#[derive(Debug, Clone)]
pub struct CompiledSampler {
    /// Per-node initial occurrence budget `N_i = floor(M_i / r)`, in
    /// sorted-gram order (the id space).
    initial: Vec<u64>,
    /// CSR row offsets into `edges` (`nodes + 1` entries).
    edge_start: Vec<u32>,
    /// CSR edge records, one 16-byte record per surviving edge — the
    /// cumulative scan and the successor/context lookup hit the same
    /// cache line.
    edges: Vec<CompiledEdge>,
    /// Total outgoing transition count per node (0 = dead end).
    node_total: Vec<u64>,
    /// Lowered per-context statistics, indexed by [`CompiledEdge::ctx`].
    contexts: Vec<CompiledContext>,
    /// Offset of each context's slot templates in `macro_ops`, indexed
    /// by [`CompiledEdge::ctx`].
    macro_start: Vec<u32>,
    /// Flat per-slot macro-op records, physically ordered along greedy
    /// hot-successor chains so consecutive walk steps read consecutive
    /// memory (the aero-JIT trace-layout trick applied to SFG blocks).
    macro_ops: Vec<MacroOp>,
    /// Per-node index of the highest-count outgoing edge
    /// (`u32::MAX` = dead end) — the chain-layout driver.
    hot_succ: Vec<u32>,
    /// Σ `initial` — the walk's occurrence budget.
    budget: u64,
    /// Expected instruction count (plus slack), used to reserve the
    /// trace vector up front.
    instr_hint: usize,
}

impl StatisticalProfile {
    /// Lowers the profile for reduction factor `r` into a reusable
    /// [`CompiledSampler`] (step 1 of §2.2 plus table construction).
    ///
    /// # Panics
    ///
    /// Panics if `r` is zero.
    pub fn compile(&self, r: u64) -> CompiledSampler {
        CompiledSampler::lower(self, r)
    }
}

impl CompiledSampler {
    /// The number of reduced-SFG nodes in the compiled tables.
    pub fn node_count(&self) -> usize {
        self.initial.len()
    }

    /// The number of (post-pruning) edges in the compiled tables.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// The walk's total occurrence budget (trace length in blocks).
    pub fn budget(&self) -> u64 {
        self.budget
    }

    fn lower(profile: &StatisticalProfile, r: u64) -> Self {
        assert!(r > 0, "reduction factor must be positive");
        let _span = OBS_COMPILE_TIME.span();
        let k = profile.sfg.k();

        // ---- intern: reduced grams in sorted order -> dense u32 ids.
        // Sorted-gram order *is* the interpreter's start-node scan
        // order, which makes the Fenwick prefix search below land on
        // the identical node for every cumulative point.
        let mut grams: Vec<_> = profile
            .sfg
            .nodes()
            .iter()
            .filter(|(_, n)| n.occurrence / r > 0)
            .map(|(g, n)| (*g, n))
            .collect();
        grams.sort_unstable_by_key(|(g, _)| *g);
        let id_of: FxHashMap<_, u32> = grams
            .iter()
            .enumerate()
            .map(|(i, (g, _))| (*g, i as u32))
            .collect();
        OBS_NODES_DROPPED.add((profile.sfg.nodes().len() - grams.len()) as u64);
        OBS_REDUCED_NODES.set(grams.len() as u64);

        // ---- edges: CSR rows with targets, contexts and cumulative
        // counts resolved against the reduced node set. An edge from
        // state s labeled b leads to shift(s, b); edges into dropped
        // nodes are pruned (the paper removes all incoming and outgoing
        // edges of removed nodes). The k = 0 graph has a single node
        // and every edge loops back to it, so nothing prunes.
        let mut initial = Vec::with_capacity(grams.len());
        let mut edge_start = Vec::with_capacity(grams.len() + 1);
        let mut node_total = Vec::with_capacity(grams.len());
        let mut edge_records: Vec<CompiledEdge> = Vec::new();
        let mut contexts = Vec::new();
        edge_start.push(0u32);
        for (gram, node) in &grams {
            initial.push(node.occurrence / r);
            // Deterministic edge order for reproducibility (the
            // interpreter sorts by block id the same way).
            let mut edges: Vec<_> = node.edges.iter().collect();
            edges.sort_unstable_by_key(|(b, _)| **b);
            let mut acc = 0u64;
            for (block, count) in edges {
                let Some(&target) = id_of.get(&gram.shifted(*block, k)) else {
                    continue; // pruned: successor fell out of the reduced set
                };
                acc += *count;
                let ctx = match profile.contexts.get(&gram.context_with(*block)) {
                    Some(stats) => {
                        contexts.push(CompiledContext::lower(stats));
                        (contexts.len() - 1) as u32
                    }
                    None => NO_CONTEXT,
                };
                edge_records.push(CompiledEdge {
                    cum: acc,
                    target,
                    ctx,
                });
            }
            node_total.push(acc);
            edge_start.push(edge_records.len() as u32);
        }
        let budget: u64 = initial.iter().sum();

        // Expected trace length in instructions: each node is visited
        // `initial` times, each visit takes edge e with probability
        // count_e / total and emits `slots(ctx_e)` instructions. Used to
        // reserve the trace vector once instead of growing it.
        let mut expected = 0.0f64;
        for node in 0..initial.len() {
            if node_total[node] == 0 {
                continue;
            }
            let (lo, hi) = (edge_start[node] as usize, edge_start[node + 1] as usize);
            let mut prev = 0u64;
            for e in &edge_records[lo..hi] {
                let count = e.cum - prev;
                prev = e.cum;
                let slots = match contexts.get(e.ctx as usize) {
                    Some(c) => c.slots.len(),
                    None => 0,
                };
                expected +=
                    initial[node] as f64 * (count as f64 / node_total[node] as f64) * slots as f64;
            }
        }
        let instr_hint = expected as usize + expected as usize / 8 + 16;

        // ---- macro-op lowering with hot-successor chain layout.
        // Each node's hottest outgoing edge defines its likely dynamic
        // successor; laying the slot templates out along those chains
        // (hottest start nodes first) makes the walk's dominant paths
        // read the macro-op array near-sequentially. Only the *physical
        // placement* of templates is affected — ids, CSR order and the
        // RNG stream are untouched, so generated traces are unchanged.
        let nnodes = initial.len();
        let mut hot_succ = vec![u32::MAX; nnodes];
        for node in 0..nnodes {
            let (lo, hi) = (edge_start[node] as usize, edge_start[node + 1] as usize);
            let mut prev = 0u64;
            let mut best: Option<(u64, usize)> = None;
            for (i, e) in edge_records[lo..hi].iter().enumerate() {
                let count = e.cum - prev;
                prev = e.cum;
                if best.is_none_or(|(c, _)| count > c) {
                    best = Some((count, lo + i));
                }
            }
            if let Some((_, idx)) = best {
                hot_succ[node] = idx as u32;
            }
        }
        let total_slots: usize = contexts.iter().map(|c| c.slots.len()).sum();
        let mut macro_start = vec![u32::MAX; contexts.len()];
        let mut macro_ops: Vec<MacroOp> = Vec::with_capacity(total_slots);
        let mut order: Vec<usize> = (0..nnodes).collect();
        order.sort_by_key(|&n| std::cmp::Reverse(initial[n])); // stable: id ties
        let mut chained = vec![false; nnodes];
        for &start in &order {
            let mut node = start;
            while !chained[node] {
                chained[node] = true;
                let e = hot_succ[node];
                if e == u32::MAX {
                    break;
                }
                let edge = &edge_records[e as usize];
                if edge.ctx != NO_CONTEXT && macro_start[edge.ctx as usize] == u32::MAX {
                    macro_start[edge.ctx as usize] = macro_ops.len() as u32;
                    macro_ops.extend(contexts[edge.ctx as usize].slots.iter().map(MacroOp::lower));
                }
                node = edge.target as usize;
            }
        }
        // Cold contexts (never on a hot chain) follow in id order.
        for (cid, ctx) in contexts.iter().enumerate() {
            if macro_start[cid] == u32::MAX {
                macro_start[cid] = macro_ops.len() as u32;
                macro_ops.extend(ctx.slots.iter().map(MacroOp::lower));
            }
        }
        debug_assert_eq!(macro_ops.len(), total_slots);

        OBS_TABLE_NODES.set(initial.len() as u64);
        OBS_TABLE_EDGES.set(edge_records.len() as u64);
        OBS_TABLE_CONTEXTS.set(contexts.len() as u64);
        CompiledSampler {
            initial,
            edge_start,
            edges: edge_records,
            node_total,
            contexts,
            macro_start,
            macro_ops,
            hot_succ,
            budget,
            instr_hint,
        }
    }

    /// Walks the compiled tables without emitting instructions — the
    /// compiled half of the walk-subsystem comparison.
    ///
    /// The RNG stream is start draw + one edge draw per step (no
    /// per-instruction draws), so the visited node sequence differs
    /// from [`CompiledSampler::generate`]'s; what it matches exactly —
    /// steps, restarts and budget-trajectory checksum — is
    /// [`StatisticalProfile::walk_reference`] on the `(r, seed)` this
    /// artifact was lowered for. Unlike the interpreter, each call pays
    /// no reduction: the walk runs straight off the reusable tables.
    pub fn walk(&self, seed: u64) -> WalkReport {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut budget = self.budget;
        let mut report = WalkReport::default();
        if budget == 0 {
            return report;
        }
        let mut occupancy = Occupancy::new(&self.initial);
        'walk: loop {
            report.restarts += 1;
            report.checksum = report.checksum.rotate_left(5) ^ budget;
            if budget == 0 {
                break 'walk;
            }
            let point = rng.gen_range(0..budget);
            let mut node = occupancy.select(point);
            loop {
                if self.node_total[node] == 0 {
                    budget = budget.saturating_sub(occupancy.drain(node));
                    if budget == 0 {
                        break 'walk;
                    }
                    continue 'walk;
                }
                if occupancy.remaining(node) == 0 {
                    continue 'walk;
                }
                occupancy.consume_one(node);
                budget -= 1;
                report.steps += 1;
                let (lo, hi) = (
                    self.edge_start[node] as usize,
                    self.edge_start[node + 1] as usize,
                );
                let row = &self.edges[lo..hi];
                let point = rng.gen_range(0..self.node_total[node]);
                node = row[pick_edge(row, point)].target as usize;
                if budget == 0 {
                    break 'walk;
                }
            }
        }
        report
    }

    /// Generates one synthetic trace by random-walking the compiled
    /// tables (steps 2–9 of §2.2).
    ///
    /// Byte-identical to
    /// [`StatisticalProfile::generate_reference`] for the same
    /// `(r, seed)`: the walk draws from the seeded RNG in exactly the
    /// interpreter's sequence and inverts the same CDFs. The loop is
    /// one [`StreamGen`] pumped into a materialising sink — the same
    /// code the fused generate-and-simulate engine streams from, so the
    /// two paths cannot drift.
    pub fn generate(&self, seed: u64) -> SyntheticTrace {
        let _span = OBS_GENERATE_TIME.span();
        let mut trace = SyntheticTrace::default();
        if self.budget == 0 {
            return trace;
        }
        trace.instrs.reserve(self.instr_hint);
        // Sideband producer index: one byte per emitted instruction
        // (`class.has_dest()`), so dependency-retry probes stay cache-
        // resident instead of striding the 48-byte instruction records.
        let mut has_dest: Vec<u8> = Vec::with_capacity(self.instr_hint);
        let mut gen = StreamGen::new(self, seed);
        let mut sink = TraceSink {
            trace: &mut trace,
            has_dest: &mut has_dest,
        };
        while gen.pump(&mut sink) {}
        trace
    }

    /// The hot successor of `node`: the target of its highest-count
    /// outgoing edge (ties to the lowest block id), or `None` for dead
    /// ends. This relation drives the physical layout of the macro-op
    /// table.
    pub fn hot_successor(&self, node: usize) -> Option<usize> {
        let e = *self.hot_succ.get(node)?;
        (e != u32::MAX).then(|| self.edges[e as usize].target as usize)
    }

    /// A deterministic digest over every lowered table — node budgets,
    /// CSR edges, macro-op words, chain layout — pinned by the frozen
    /// wire-format tests so accidental changes to the lowering are
    /// caught as test failures, not silent behaviour drift.
    pub fn lowering_digest(&self) -> u64 {
        use std::hash::Hasher;
        let mut h = crate::fxhash::FxHasher::default();
        h.write_u64(self.budget);
        h.write_usize(self.initial.len());
        for &v in &self.initial {
            h.write_u64(v);
        }
        for &v in &self.edge_start {
            h.write_u32(v);
        }
        for e in &self.edges {
            h.write_u64(e.cum);
            h.write_u32(e.target);
            h.write_u32(e.ctx);
        }
        for &v in &self.node_total {
            h.write_u64(v);
        }
        h.write_usize(self.contexts.len());
        for &v in &self.macro_start {
            h.write_u32(v);
        }
        for op in &self.macro_ops {
            h.write_u32(op.word);
            for p in op.icache {
                h.write_u64(p.to_bits());
            }
        }
        for &v in &self.hot_succ {
            h.write_u32(v);
        }
        h.finish()
    }

    /// Emits the block attached to edge-context `ctx_id` into `sink`
    /// ([`NO_CONTEXT`] emits nothing, mirroring the interpreter's miss).
    #[inline]
    pub(crate) fn emit_ctx<S: EmitSink>(&self, ctx_id: u32, sink: &mut S, rng: &mut SmallRng) {
        let Some(ctx) = self.contexts.get(ctx_id as usize) else {
            return;
        };
        let start = self.macro_start[ctx_id as usize] as usize;
        let ops = &self.macro_ops[start..start + ctx.slots.len()];
        ctx.emit_into(ops, sink, rng);
    }
}

/// The §2.2 random walk as a resumable state machine: the same RNG
/// draws, in the same order, as [`CompiledSampler::generate`]'s loop —
/// but pumpable block-by-block, so the fused engine can interleave
/// generation with simulation without materialising the trace.
///
/// States: before a restart (`at_node == false`), at a node mid-walk,
/// or done. The walk-report observability counters are flushed once,
/// when the walk completes.
pub(crate) struct StreamGen<'s> {
    sampler: &'s CompiledSampler,
    rng: SmallRng,
    occupancy: Occupancy,
    budget: u64,
    node: usize,
    at_node: bool,
    done: bool,
    walk_steps: u64,
    walk_restarts: u64,
}

impl<'s> StreamGen<'s> {
    pub(crate) fn new(sampler: &'s CompiledSampler, seed: u64) -> Self {
        let budget = sampler.budget;
        StreamGen {
            sampler,
            rng: SmallRng::seed_from_u64(seed),
            occupancy: Occupancy::new(&sampler.initial),
            budget,
            node: 0,
            at_node: false,
            // A zero-budget walk emits nothing and (like `generate`'s
            // early return) records no walk counters.
            done: budget == 0,
            walk_steps: 0,
            walk_restarts: 0,
        }
    }

    /// Advances the walk until at least one more instruction lands in
    /// `sink` or the walk completes. Returns `false` once the walk is
    /// done (instructions may still have been emitted by the final
    /// call); subsequent calls are no-ops.
    pub(crate) fn pump<S: EmitSink>(&mut self, sink: &mut S) -> bool {
        if self.done {
            return false;
        }
        let start = sink.len();
        loop {
            if !self.at_node {
                // ---- step 2: pick a start node by remaining occurrence.
                self.walk_restarts += 1;
                debug_assert_eq!(self.budget, self.occupancy.total());
                if self.budget == 0 {
                    return self.complete(sink);
                }
                let point = self.rng.gen_range(0..self.budget);
                self.node = self.occupancy.select(point);
                self.at_node = true;
            }
            // ---- steps 3-9: walk the id space.
            let node = self.node;
            if self.sampler.node_total[node] == 0 {
                // Dead end (every outgoing edge was pruned): per the
                // paper, accessing the node still consumes its
                // occurrence before restarting at step 1 — otherwise
                // start-node selection could land here forever.
                self.budget = self.budget.saturating_sub(self.occupancy.drain(node));
                self.at_node = false;
                if self.budget == 0 {
                    return self.complete(sink);
                }
                continue;
            }
            if self.occupancy.remaining(node) == 0 {
                // Occurrence budget exhausted: restart at step 2.
                self.at_node = false;
                continue;
            }
            self.occupancy.consume_one(node);
            self.budget -= 1;
            self.walk_steps += 1;
            // Pick an outgoing edge by transition probability.
            let (lo, hi) = (
                self.sampler.edge_start[node] as usize,
                self.sampler.edge_start[node + 1] as usize,
            );
            let row = &self.sampler.edges[lo..hi];
            let point = self.rng.gen_range(0..self.sampler.node_total[node]);
            let edge = &row[pick_edge(row, point)];
            self.sampler.emit_ctx(edge.ctx, sink, &mut self.rng);
            self.node = edge.target as usize;
            if self.budget == 0 {
                return self.complete(sink);
            }
            if sink.len() > start {
                return true;
            }
        }
    }

    /// Flushes the walk counters exactly once and parks the generator.
    fn complete<S: EmitSink>(&mut self, sink: &S) -> bool {
        self.done = true;
        OBS_WALK_STEPS.add(self.walk_steps);
        OBS_WALK_RESTARTS.add(self.walk_restarts);
        OBS_INSTRS_EMITTED.add(sink.len() as u64);
        false
    }
}

impl CompiledContext {
    /// Emits one basic block's worth of synthetic instructions
    /// (steps 3-8) — the compiled mirror of the interpreter's
    /// `emit_block`, consuming the RNG in the identical sequence.
    ///
    /// `ops` holds this context's pre-decoded slot templates; the fat
    /// [`CompiledSlot`] records are dereferenced only when a template
    /// flag says a histogram has mass to draw from.
    fn emit_into<S: EmitSink>(&self, ops: &[MacroOp], sink: &mut S, rng: &mut SmallRng) {
        let nslots = ops.len();
        // One quantile per block occurrence, shared by every operand's
        // first draw: within one dynamic block, dependency distances
        // co-vary, and comonotonic sampling preserves that correlation
        // (see `emit_block` in `synth.rs`).
        let u_block: f64 = rng.gen();
        for (s, op) in ops.iter().enumerate() {
            let mut instr = SyntheticInstr {
                class: op.class(),
                dep: [None, None],
                l1i_miss: false,
                l2i_miss: false,
                itlb_miss: false,
                dmem: None,
                branch: None,
                anti_dep: [None, None],
            };
            // Anti-dependency distances (profiles with anti_deps only).
            if op.any_anti() {
                let slot = &self.slots[s];
                for (i, (present, hist)) in [(op.waw(), &slot.waw), (op.war(), &slot.war)]
                    .into_iter()
                    .enumerate()
                {
                    if !present {
                        continue;
                    }
                    let d = hist.sample_with(rng.gen()).unwrap_or(0);
                    if d > 0 {
                        if d > MAX_DEP_DISTANCE {
                            OBS_DEP_CLAMPED.inc();
                        }
                        instr.anti_dep[i] = Some(d.min(MAX_DEP_DISTANCE));
                    }
                }
            }
            // step 4: dependency distances, retried so the producer is
            // not a branch or store.
            for p in 0..op.src_count() {
                if !op.dep_nonempty(p) {
                    continue;
                }
                let hist = &self.slots[s].dep[p];
                let mut chosen = None;
                let mut exhausted = true;
                for attempt in 0..DEP_RETRIES {
                    let u = if attempt == 0 {
                        u_block
                    } else {
                        rng.gen::<f64>()
                    };
                    let d = hist.sample_with(u).expect("non-empty histogram samples");
                    if d == 0 {
                        chosen = None; // "no dependency" mass
                        exhausted = false;
                        break;
                    }
                    if d > MAX_DEP_DISTANCE {
                        // Guards hand-built or deserialized profiles so
                        // the ≤512 invariant holds everywhere.
                        OBS_DEP_CLAMPED.inc();
                    }
                    let d = d.min(MAX_DEP_DISTANCE);
                    let pos = sink.len();
                    match pos.checked_sub(d as usize) {
                        Some(src) => {
                            // Producer must define a register (not a
                            // branch or store). The sink answers from a
                            // one-byte-per-instruction sideband index,
                            // so the probe stays in cache instead of
                            // touching the 48-byte instruction records.
                            if sink.has_dest_at(src) {
                                chosen = Some(d);
                                exhausted = false;
                                break;
                            }
                        }
                        None => {
                            // Points before the trace start: drop.
                            chosen = None;
                            exhausted = false;
                            break;
                        }
                    }
                }
                if exhausted {
                    OBS_DEP_RETRIES_EXHAUSTED.inc();
                }
                instr.dep[p] = chosen;
            }
            // step 5: load locality flags.
            if op.dcache() {
                let d = self.slots[s]
                    .dcache
                    .as_ref()
                    .expect("DCACHE flag implies probabilities");
                let l1_miss = rng.gen::<f64>() < d[0];
                let l2_miss = l1_miss && rng.gen::<f64>() < d[1];
                let tlb_miss = rng.gen::<f64>() < d[2];
                instr.dmem = Some(DataFlags {
                    l1_miss,
                    l2_miss,
                    tlb_miss,
                });
            }
            // step 7: instruction fetch locality flags.
            instr.l1i_miss = rng.gen::<f64>() < op.icache[0];
            instr.l2i_miss = instr.l1i_miss && rng.gen::<f64>() < op.icache[1];
            instr.itlb_miss = rng.gen::<f64>() < op.icache[2];
            // step 6: terminal branch flags.
            if s + 1 == nslots {
                if let Some(b) = &self.branch {
                    let taken = rng.gen::<f64>() < b.taken;
                    let point = rng.gen_range(0..b.total);
                    let outcome = if point < b.correct {
                        SyntheticOutcome::Correct
                    } else if point < b.correct + b.redirect {
                        SyntheticOutcome::FetchRedirect
                    } else {
                        SyntheticOutcome::Mispredict
                    };
                    instr.branch = Some(BranchFlags { taken, outcome });
                }
            }
            sink.push(instr, op.has_dest_byte()); // step 8
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sfg::{Gram, Sfg};

    #[test]
    fn fenwick_prefix_search_matches_linear_scan() {
        let values = [3u64, 0, 5, 1, 0, 2];
        let f = Fenwick::from_values(&values);
        let total: u64 = values.iter().sum();
        for point in 0..total {
            // Reference: first index whose cumulative sum exceeds point.
            let mut p = point;
            let mut want = 0usize;
            for (i, &v) in values.iter().enumerate() {
                if p < v {
                    want = i;
                    break;
                }
                p -= v;
            }
            assert_eq!(f.prefix_search(point), want, "point {point}");
        }
    }

    #[test]
    fn fenwick_sub_keeps_search_consistent() {
        let mut values = vec![4u64, 2, 0, 7, 1];
        let mut f = Fenwick::from_values(&values);
        // Drain in a fixed pattern, checking the search after each op.
        for (i, delta) in [(0usize, 2u64), (3, 7), (0, 2), (4, 1), (1, 2)] {
            f.sub(i, delta);
            values[i] -= delta;
            let total: u64 = values.iter().sum();
            for point in 0..total {
                let mut p = point;
                let mut want = 0usize;
                for (j, &v) in values.iter().enumerate() {
                    if p < v {
                        want = j;
                        break;
                    }
                    p -= v;
                }
                assert_eq!(f.prefix_search(point), want);
            }
        }
    }

    #[test]
    fn fenwick_single_node() {
        let f = Fenwick::from_values(&[5]);
        for point in 0..5 {
            assert_eq!(f.prefix_search(point), 0);
        }
    }

    #[test]
    fn compile_resolves_tables_for_hand_built_sfg() {
        // Figure 2's k = 1 graph: A→{A,B}, B→{A,C}, C→{A}.
        let (a, b, c) = (1u32, 2u32, 3u32);
        let mut sfg = Sfg::new(1);
        sfg.import_node(Gram::new(&[a]), 5, vec![(a, 2), (b, 3)]);
        sfg.import_node(Gram::new(&[b]), 3, vec![(a, 1), (c, 2)]);
        sfg.import_node(Gram::new(&[c]), 2, vec![(a, 2)]);
        let p = StatisticalProfile::from_parts(sfg, FxHashMap::default(), 10, 0, 0);

        let s = p.compile(1);
        assert_eq!(s.node_count(), 3);
        assert_eq!(s.edge_count(), 5);
        assert_eq!(s.budget(), 10);

        // R = 3 drops C (2/3 = 0) and prunes B→C with it.
        let s = p.compile(3);
        assert_eq!(s.node_count(), 2);
        assert_eq!(s.edge_count(), 3);
        assert_eq!(s.budget(), 2);

        // R beyond every occurrence: empty tables, empty trace.
        let s = p.compile(100);
        assert_eq!(s.node_count(), 0);
        assert_eq!(s.budget(), 0);
        assert!(s.generate(1).is_empty());
    }
}
