//! Statistical simulation with statistical flow graphs.
//!
//! This crate implements the contribution of *"Control Flow Modeling in
//! Statistical Simulation for Accurate and Efficient Processor Design
//! Studies"* (Eeckhout, Bell, Stougie, De Bosschere, John — ISCA 2004):
//!
//! 1. **Statistical profiling** ([`profile`]) — a single functional
//!    pass over a benchmark builds a [`StatisticalProfile`]: a
//!    **statistical flow graph** (SFG) of order `k` capturing basic-
//!    block transition probabilities, plus per-context
//!    microarchitecture-independent characteristics (instruction
//!    classes, operand counts, RAW dependency-distance distributions
//!    capped at 512) and microarchitecture-dependent locality events
//!    (three branch probabilities, six cache/TLB miss rates). Branch
//!    characteristics are gathered with **delayed update**
//!    ([`BranchProfileMode::Delayed`]): predictor lookups and updates
//!    are separated by an IFQ-sized FIFO with squash-and-refill on
//!    detected mispredictions (§2.1.3 of the paper).
//! 2. **Synthetic trace generation**
//!    ([`StatisticalProfile::generate`]) — the SFG is reduced by a
//!    factor `R` and random-walked per the nine-step algorithm of
//!    §2.2, emitting a [`SyntheticTrace`] of instructions with
//!    pre-assigned dependencies, cache hit/miss flags and branch
//!    outcomes. Generation runs on a **compiled sampling engine**
//!    ([`StatisticalProfile::compile`] → [`CompiledSampler`]): the
//!    reduced SFG and every per-context distribution are lowered once
//!    into dense tables (interned `u32` node ids, CSR edges, Fenwick
//!    start-node selection, flat cumulative histograms) and walked in
//!    O(log n) per draw, byte-identical to the reference interpreter
//!    ([`StatisticalProfile::generate_reference`]).
//! 3. **Synthetic trace simulation** ([`simulate_trace`]) — the trace
//!    drives the same out-of-order pipeline backend as the reference
//!    execution-driven simulator (`ssim_uarch::Core`), modeling
//!    wrong-path resource contention but no caches or predictors
//!    (§2.3).
//!
//! # Examples
//!
//! ```no_run
//! use ssim_core::{profile, simulate_trace, ProfileConfig};
//! use ssim_uarch::MachineConfig;
//!
//! let cfg = MachineConfig::baseline();
//! let program = ssim_workloads::by_name("gzip").unwrap().program();
//!
//! // 1. one profiling pass (functional simulation + caches + bpred)
//! let profile = profile(&program, &ProfileConfig::new(&cfg).instructions(2_000_000));
//!
//! // 2. generate a synthetic trace 100x smaller
//! let trace = profile.generate(100, 42);
//!
//! // 3. simulate it — orders of magnitude faster than EDS
//! let result = simulate_trace(&trace, &cfg);
//! println!("predicted IPC = {:.3}", result.ipc());
//! ```

mod analysis;
pub mod fxhash;
mod profiler;
mod refsim;
mod sampler;
mod serialize;
mod sfg;
mod synth;
mod tracesim;

pub use analysis::{validate_trace, TraceValidation};
pub use fxhash::{FxHashMap, FxHashSet, FxHasher};
pub use profiler::{note_loaded_profile, profile, BranchProfileMode, ProfileConfig};
pub use refsim::simulate_trace_reference;
pub use sampler::CompiledSampler;
pub use sfg::{
    BranchCtxStats, Context, ContextStats, ExportedNode, Gram, MissStats, Sfg, SlotStats,
    StatisticalProfile,
};
pub use synth::{
    BranchFlags, DataFlags, SyntheticInstr, SyntheticOutcome, SyntheticTrace, WalkReport,
};
pub use tracesim::{simulate_fused, simulate_trace, SimEngine};

/// The paper's cap on recorded dependency distances (§2.1.1): "we limit
/// the dependency distribution to 512 which still allows the modeling
/// of a wide range of current and near-future microprocessors."
pub const MAX_DEP_DISTANCE: u32 = 512;

/// The paper's retry bound when drawing a dependency that must not be
/// produced by a branch or store (§2.2 step 4).
pub const DEP_RETRIES: usize = 1000;
