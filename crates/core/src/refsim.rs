//! Frozen reference trace simulator — the executable specification for
//! the optimised engine in [`crate::tracesim`].
//!
//! This module is a deliberate, self-contained copy of the synthetic
//! trace simulator *as it stood before the fused generate-and-simulate
//! engine landed*: a straightforward `VecDeque` RUU with full writeback
//! and issue scans every cycle, driven by a materialised
//! [`SyntheticTrace`]. It plays the same role for the simulator that
//! `generate_reference` plays for the compiled sampler: slow, obvious,
//! and trusted. The equivalence suite asserts that the optimised
//! unfused and fused paths produce a bit-identical [`SimResult`].
//!
//! Do not optimise this module. Only touch it when the *modelled
//! machine* changes, and change [`crate::tracesim`] in lockstep.
//!
//! Only the synthetic-mode subset of the backend is reproduced here:
//! dependencies arrive as distances (never architectural registers),
//! instructions carry no destination registers, and loads never alias
//! stores by address — so the rename map, last-reader tracking and
//! store→load forwarding scan of `ssim_uarch::Core` are structurally
//! dead and omitted. The emitted activity records are identical.
//!
//! Unlike the production path this module records no observability
//! metrics; `SimResult` is unaffected.

use crate::synth::{SyntheticInstr, SyntheticOutcome, SyntheticTrace};
use ssim_isa::InstrClass;
use ssim_uarch::{
    ActivityCounters, BranchResolution, BranchStats, MachineConfig, MemKind, OccupancyMeter,
    SimResult, Unit,
};
use std::collections::VecDeque;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Waiting,
    Issued { done: u64 },
    Done,
}

#[derive(Debug, Clone)]
struct Entry {
    seq: u64,
    class: InstrClass,
    deps: [Option<u64>; 2],
    anti_deps: [Option<u64>; 2],
    mem: Option<MemKind>,
    state: State,
    branch: BranchResolution,
    wrong_path: bool,
}

/// Synthetic-mode instruction handed to the reference backend.
#[derive(Debug, Clone, Copy)]
struct RefDispatch {
    class: InstrClass,
    dep_dists: [Option<u32>; 2],
    anti_dep_dists: [Option<u32>; 2],
    mem: Option<MemKind>,
    branch: BranchResolution,
    wrong_path: bool,
}

/// The pre-optimisation out-of-order backend: full scans every cycle.
struct RefCore<'a> {
    cfg: &'a MachineConfig,
    entries: VecDeque<Entry>,
    front_seq: u64,
    next_seq: u64,
    lsq_used: usize,
    dispatched_this_cycle: usize,
    cycle: u64,
    committed: u64,
    activity: ActivityCounters,
    ruu_meter: OccupancyMeter,
    lsq_meter: OccupancyMeter,
}

impl<'a> RefCore<'a> {
    fn new(cfg: &'a MachineConfig) -> Self {
        cfg.validate();
        RefCore {
            cfg,
            entries: VecDeque::with_capacity(cfg.ruu_size),
            front_seq: 0,
            next_seq: 0,
            lsq_used: 0,
            dispatched_this_cycle: 0,
            cycle: 0,
            committed: 0,
            activity: ActivityCounters::new(),
            ruu_meter: OccupancyMeter::new(),
            lsq_meter: OccupancyMeter::new(),
        }
    }

    fn now(&self) -> u64 {
        self.cycle
    }

    fn committed(&self) -> u64 {
        self.committed
    }

    fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    fn execute_latency(&self, e: &Entry) -> u64 {
        let lat = &self.cfg.lat;
        match e.mem {
            Some(MemKind::Load { latency }) => latency,
            Some(MemKind::Store) => 1,
            None => match e.class {
                InstrClass::IntAlu | InstrClass::IntCondBranch | InstrClass::IndirectBranch => {
                    lat.int_alu
                }
                InstrClass::IntMul => lat.int_mul,
                InstrClass::IntDiv => lat.int_div,
                InstrClass::FpAlu | InstrClass::FpCondBranch => lat.fp_alu,
                InstrClass::FpMul => lat.fp_mul,
                InstrClass::FpDiv => lat.fp_div,
                InstrClass::FpSqrt => lat.fp_sqrt,
                InstrClass::Load | InstrClass::Store => 1,
            },
        }
    }

    fn fu_pool(class: InstrClass, mem: Option<MemKind>) -> usize {
        if mem.is_some() {
            return 1; // load/store ports
        }
        match class {
            InstrClass::Load | InstrClass::Store => 1,
            InstrClass::IntAlu | InstrClass::IntCondBranch | InstrClass::IndirectBranch => 0,
            InstrClass::IntMul | InstrClass::IntDiv => 2,
            InstrClass::FpAlu | InstrClass::FpCondBranch => 3,
            InstrClass::FpMul | InstrClass::FpDiv | InstrClass::FpSqrt => 4,
        }
    }

    fn dep_satisfied(&self, dep: Option<u64>) -> bool {
        match dep {
            None => true,
            Some(seq) => {
                if seq < self.front_seq {
                    return true; // committed (or squashed) long ago
                }
                match self.entries.get((seq - self.front_seq) as usize) {
                    Some(e) => e.state == State::Done,
                    None => true, // produced by a squashed instruction
                }
            }
        }
    }

    fn cycle(&mut self) -> Option<u64> {
        let now = self.cycle;
        let mut resolved = None;

        // ---- writeback: complete finished executions, wake dependents.
        for i in 0..self.entries.len() {
            let e = &mut self.entries[i];
            if let State::Issued { done } = e.state {
                if done <= now {
                    e.state = State::Done;
                    self.activity.record(Unit::Ruu, now);
                    if e.branch == BranchResolution::Mispredict && !e.wrong_path {
                        resolved.get_or_insert(e.seq);
                    }
                }
            }
        }

        // ---- issue: oldest-first selection under width and FU limits.
        let mut issued = 0;
        let mut fu_used = [0usize; 5];
        let fu_limits = [
            self.cfg.fu.int_alu,
            self.cfg.fu.ld_st,
            self.cfg.fu.int_muldiv,
            self.cfg.fu.fp_add,
            self.cfg.fu.fp_muldiv,
        ];
        for i in 0..self.entries.len() {
            if issued >= self.cfg.issue_width {
                break;
            }
            let e = &self.entries[i];
            if e.state != State::Waiting {
                continue;
            }
            let pool = Self::fu_pool(e.class, e.mem);
            if fu_used[pool] >= fu_limits[pool] {
                if self.cfg.in_order_issue {
                    break; // structural hazard stalls an in-order pipe
                }
                continue;
            }
            if !(self.dep_satisfied(e.deps[0])
                && self.dep_satisfied(e.deps[1])
                && self.dep_satisfied(e.anti_deps[0])
                && self.dep_satisfied(e.anti_deps[1]))
            {
                if self.cfg.in_order_issue {
                    break; // program-order issue: stall behind the head
                }
                continue;
            }
            let latency = self.execute_latency(e);
            let class = e.class;
            let is_mem = e.mem.is_some();
            let is_load = matches!(e.mem, Some(MemKind::Load { .. }));
            let e = &mut self.entries[i];
            e.state = State::Issued {
                done: now + latency,
            };
            issued += 1;
            fu_used[pool] += 1;
            self.activity.record(Unit::Issue, now);
            if is_mem {
                self.activity.record(Unit::Lsq, now);
                if is_load {
                    self.activity.record(Unit::DCache, now);
                }
            }
            match class {
                InstrClass::FpAlu
                | InstrClass::FpMul
                | InstrClass::FpDiv
                | InstrClass::FpSqrt
                | InstrClass::FpCondBranch => self.activity.record(Unit::FpAlu, now),
                InstrClass::Load | InstrClass::Store => {}
                _ => self.activity.record(Unit::IntAlu, now),
            }
        }

        // ---- commit: in-order retirement of completed instructions.
        let mut retired = 0;
        while retired < self.cfg.commit_width {
            match self.entries.front() {
                Some(e) if e.wrong_path => break,
                Some(e) if e.state == State::Done => {
                    let is_store = matches!(e.mem, Some(MemKind::Store));
                    let is_mem = e.mem.is_some();
                    let e = self.entries.pop_front().expect("front exists");
                    self.front_seq = e.seq + 1;
                    if is_mem {
                        self.lsq_used -= 1;
                    }
                    if is_store {
                        self.activity.record(Unit::DCache, now);
                    }
                    self.activity.record(Unit::Ruu, now);
                    self.committed += 1;
                    retired += 1;
                }
                _ => break,
            }
        }

        // ---- occupancy sampling.
        self.ruu_meter.sample(self.entries.len() as u64);
        self.lsq_meter.sample(self.lsq_used as u64);

        resolved
    }

    fn try_dispatch(&mut self, instr: RefDispatch) -> Option<u64> {
        if self.dispatched_this_cycle >= self.cfg.decode_width {
            return None;
        }
        if self.entries.len() >= self.cfg.ruu_size {
            return None;
        }
        let is_mem = instr.mem.is_some();
        if is_mem && self.lsq_used >= self.cfg.lsq_size {
            return None;
        }
        let seq = self.next_seq;
        let now = self.cycle;

        let mut deps = [None, None];
        for (p, slot) in deps.iter_mut().enumerate() {
            *slot = match instr.dep_dists[p] {
                Some(0) | None => None,
                Some(dist) => seq.checked_sub(u64::from(dist)),
            };
        }

        let mut anti_deps = [None, None];
        if self.cfg.model_anti_deps {
            for (i, slot) in anti_deps.iter_mut().enumerate() {
                *slot = match instr.anti_dep_dists[i] {
                    Some(0) | None => None,
                    Some(dist) => seq.checked_sub(u64::from(dist)),
                };
            }
        }

        self.entries.push_back(Entry {
            seq,
            class: instr.class,
            deps,
            anti_deps,
            mem: instr.mem,
            state: State::Waiting,
            branch: instr.branch,
            wrong_path: instr.wrong_path,
        });
        self.next_seq += 1;
        if is_mem {
            self.lsq_used += 1;
        }
        self.dispatched_this_cycle += 1;
        self.activity.record(Unit::Dispatch, now);
        self.activity.record(Unit::Ruu, now);
        if is_mem {
            self.activity.record(Unit::Lsq, now);
        }
        Some(seq)
    }

    fn squash_after(&mut self, seq: u64) -> usize {
        let mut squashed = 0;
        while let Some(back) = self.entries.back() {
            if back.seq <= seq {
                break;
            }
            let e = self.entries.pop_back().expect("back exists");
            if e.mem.is_some() {
                self.lsq_used -= 1;
            }
            squashed += 1;
        }
        self.next_seq = seq + 1;
        squashed
    }

    fn advance(&mut self) {
        self.cycle += 1;
        self.dispatched_this_cycle = 0;
    }

    fn finish(mut self) -> (ActivityCounters, OccupancyMeter, OccupancyMeter) {
        self.activity.set_cycles(self.cycle);
        (self.activity, self.ruu_meter, self.lsq_meter)
    }
}

#[derive(Debug, Clone, Copy)]
struct IfqEntry {
    di: RefDispatch,
    is_branch: bool,
    mispredict_marker: bool,
}

struct RefTraceSim<'a, 't> {
    cfg: &'a MachineConfig,
    trace: &'t [SyntheticInstr],
    cursor: usize,
    core: RefCore<'a>,
    ifq: VecDeque<IfqEntry>,
    ifq_meter: OccupancyMeter,
    branch_stats: BranchStats,
    fetch_stall_until: u64,
    wrong_path: Option<usize>,
    pending_seq: Option<u64>,
}

impl<'a, 't> RefTraceSim<'a, 't> {
    fn new(trace: &'t SyntheticTrace, cfg: &'a MachineConfig) -> Self {
        RefTraceSim {
            cfg,
            trace: trace.instrs(),
            cursor: 0,
            core: RefCore::new(cfg),
            ifq: VecDeque::with_capacity(cfg.ifq_size),
            ifq_meter: OccupancyMeter::new(),
            branch_stats: BranchStats::default(),
            fetch_stall_until: 0,
            wrong_path: None,
            pending_seq: None,
        }
    }

    fn run(mut self) -> SimResult {
        let target = self.trace.len() as u64;
        let mut last_progress = (0u64, 0u64);
        loop {
            let committed = self.core.committed();
            if committed >= target
                || (self.cursor >= self.trace.len()
                    && self.core.is_empty()
                    && self.ifq.is_empty()
                    && self.wrong_path.is_none())
            {
                break;
            }
            if let Some(seq) = self.core.cycle() {
                self.recover(seq);
            }
            self.dispatch();
            self.fetch();
            self.core.advance();

            let now = self.core.now();
            if committed > last_progress.1 {
                last_progress = (now, committed);
            }
            assert!(
                now - last_progress.0 < 500_000,
                "reference pipeline deadlock at cycle {now} (committed {committed})"
            );
        }
        let cycles = self.core.now().max(1);
        let instructions = self.core.committed();
        let (mut activity, ruu, lsq) = self.core.finish();
        activity.set_cycles(cycles);
        SimResult {
            instructions,
            cycles,
            ruu_occupancy: ruu.mean(),
            lsq_occupancy: lsq.mean(),
            ifq_occupancy: self.ifq_meter.mean(),
            branch: self.branch_stats,
            cache: Default::default(),
            activity,
        }
    }

    fn recover(&mut self, seq: u64) {
        debug_assert_eq!(self.pending_seq, Some(seq));
        self.pending_seq = None;
        self.core.squash_after(seq);
        self.ifq.clear();
        self.cursor = self
            .wrong_path
            .take()
            .expect("resolution implies wrong-path mode");
        self.fetch_stall_until = self.core.now() + self.cfg.redirect_latency;
    }

    fn dispatch(&mut self) {
        while let Some(entry) = self.ifq.front() {
            match self.core.try_dispatch(entry.di) {
                Some(seq) => {
                    let entry = self.ifq.pop_front().expect("front exists");
                    if entry.is_branch && !entry.di.wrong_path {
                        let now = self.core.now();
                        self.core.activity.record(Unit::Bpred, now);
                    }
                    if entry.mispredict_marker {
                        self.pending_seq = Some(seq);
                    }
                }
                None => break,
            }
        }
    }

    fn load_latency(&self, f: crate::DataFlags) -> u64 {
        let lat = &self.cfg.lat;
        let mut l = if f.l1_miss {
            if f.l2_miss {
                lat.mem
            } else {
                lat.l2_hit
            }
        } else {
            lat.l1d_hit
        };
        if f.tlb_miss {
            l += lat.tlb_miss;
        }
        1 + l // address generation
    }

    fn fetch(&mut self) {
        let now = self.core.now();
        if now < self.fetch_stall_until {
            self.ifq_meter.sample(self.ifq.len() as u64);
            return;
        }
        let mut budget = self.cfg.fetch_width();
        while budget > 0 && self.ifq.len() < self.cfg.ifq_size {
            let Some(instr) = self.trace.get(self.cursor).copied() else {
                break;
            };
            self.cursor += 1;
            let on_wrong_path = self.wrong_path.is_some();
            let stop = self.fetch_one(&instr, on_wrong_path);
            budget -= 1;
            if stop {
                break;
            }
        }
        self.ifq_meter.sample(self.ifq.len() as u64);
    }

    fn fetch_one(&mut self, instr: &SyntheticInstr, wrong_path: bool) -> bool {
        let now = self.core.now();
        self.core.activity.record(Unit::Fetch, now);
        let mut stop = false;

        if !wrong_path {
            self.core.activity.record(Unit::ICache, now);
            self.core.activity.record(Unit::Itlb, now);
            let mut stall = 0;
            if instr.l1i_miss {
                self.core.activity.record(Unit::L2, now);
                stall += if instr.l2i_miss {
                    self.cfg.lat.mem
                } else {
                    self.cfg.lat.l2_hit
                };
            }
            if instr.itlb_miss {
                stall += self.cfg.lat.tlb_miss;
            }
            if stall > 0 {
                self.fetch_stall_until = now + stall;
                stop = true;
            }
        }

        let mem = match (instr.class, instr.dmem, wrong_path) {
            (InstrClass::Load, Some(f), false) => {
                if f.l1_miss {
                    self.core.activity.record(Unit::L2, now);
                }
                self.core.activity.record(Unit::Dtlb, now);
                Some(MemKind::Load {
                    latency: self.load_latency(f),
                })
            }
            (InstrClass::Load, _, _) => Some(MemKind::Load {
                latency: 1 + self.cfg.lat.l1d_hit,
            }),
            (InstrClass::Store, _, _) => Some(MemKind::Store),
            _ => None,
        };

        let mut di = RefDispatch {
            class: instr.class,
            dep_dists: instr.dep,
            anti_dep_dists: instr.anti_dep,
            mem,
            branch: BranchResolution::None,
            wrong_path,
        };

        let mut mispredict_marker = false;
        let is_branch = instr.branch.is_some();
        if let Some(b) = instr.branch {
            self.core.activity.record(Unit::Bpred, now);
            if !wrong_path {
                self.branch_stats.branches += 1;
                if b.taken {
                    self.branch_stats.taken += 1;
                }
                match b.outcome {
                    SyntheticOutcome::Correct => {
                        self.branch_stats.correct += 1;
                        stop |= b.taken;
                    }
                    SyntheticOutcome::FetchRedirect => {
                        self.branch_stats.redirects += 1;
                        self.fetch_stall_until =
                            self.fetch_stall_until.max(now) + self.cfg.fetch_redirect_penalty;
                        stop = true;
                    }
                    SyntheticOutcome::Mispredict => {
                        self.branch_stats.mispredicts += 1;
                        di.branch = BranchResolution::Mispredict;
                        mispredict_marker = true;
                        self.wrong_path = Some(self.cursor);
                        stop = true;
                    }
                }
            } else if b.taken {
                stop = true;
            }
        }

        self.ifq.push_back(IfqEntry {
            di,
            is_branch,
            mispredict_marker,
        });
        stop
    }
}

/// Simulates a synthetic trace on the frozen pre-optimisation pipeline
/// model. Slow and obvious by design; see the module docs.
///
/// # Panics
///
/// Panics if the machine configuration is invalid or the pipeline
/// stops making forward progress.
pub fn simulate_trace_reference(trace: &SyntheticTrace, cfg: &MachineConfig) -> SimResult {
    cfg.validate();
    RefTraceSim::new(trace, cfg).run()
}
