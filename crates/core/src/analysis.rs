//! Trace validation: does a synthetic trace actually carry its
//! profile's statistics?
//!
//! Statistical simulation is only as good as the fidelity of the
//! synthetic trace. [`validate_trace`] compares a generated trace
//! against the profile it came from — instruction mix, branch
//! behaviour, locality rates and dependency-distance moments — and
//! reports the divergences, so regressions in the generator surface as
//! numbers rather than mysterious IPC drift.
//!
//! # Examples
//!
//! ```no_run
//! use ssim_core::{profile, validate_trace, ProfileConfig};
//! use ssim_uarch::MachineConfig;
//!
//! let machine = MachineConfig::baseline();
//! let program = ssim_workloads::by_name("gzip").unwrap().program();
//! let p = profile(&program, &ProfileConfig::new(&machine));
//! let trace = p.generate(100, 1);
//! let report = validate_trace(&p, &trace);
//! assert!(report.max_divergence() < 0.05, "{report}");
//! ```

use crate::sfg::StatisticalProfile;
use crate::synth::{SyntheticOutcome, SyntheticTrace};
use ssim_isa::InstrClass;
use std::fmt;

/// Divergences between a synthetic trace and its source profile.
///
/// All fields are absolute differences of probabilities/fractions in
/// `[0, 1]`, except [`TraceValidation::dep_mean_rel`], which is the
/// relative difference of mean dependency distances.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TraceValidation {
    /// Total-variation distance between instruction-class mixes.
    pub mix_tv: f64,
    /// |taken fraction (trace) − taken fraction (profile)|.
    pub taken_delta: f64,
    /// |misprediction fraction (trace) − (profile)|.
    pub mispredict_delta: f64,
    /// |L1D load miss fraction (trace) − (profile)|.
    pub l1d_delta: f64,
    /// |L1I miss fraction (trace) − (profile)|.
    pub l1i_delta: f64,
    /// Relative difference of mean RAW dependency distances.
    pub dep_mean_rel: f64,
}

impl TraceValidation {
    /// The largest divergence across all dimensions.
    pub fn max_divergence(&self) -> f64 {
        [
            self.mix_tv,
            self.taken_delta,
            self.mispredict_delta,
            self.l1d_delta,
            self.l1i_delta,
            self.dep_mean_rel,
        ]
        .into_iter()
        .fold(0.0, f64::max)
    }
}

impl fmt::Display for TraceValidation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "mix TV {:.4}, taken Δ {:.4}, mispredict Δ {:.4}, L1D Δ {:.4}, \
             L1I Δ {:.4}, dep-mean rel Δ {:.4}",
            self.mix_tv,
            self.taken_delta,
            self.mispredict_delta,
            self.l1d_delta,
            self.l1i_delta,
            self.dep_mean_rel
        )
    }
}

/// Profile-side aggregate statistics (occurrence-weighted).
#[derive(Debug, Default)]
struct Aggregate {
    mix: [f64; 12],
    total: f64,
    taken: f64,
    branches: f64,
    mispredicts: f64,
    l1d_miss: f64,
    loads: f64,
    l1i_miss: f64,
    dep_sum: f64,
    dep_n: f64,
}

fn profile_aggregate(p: &StatisticalProfile) -> Aggregate {
    let mut a = Aggregate::default();
    for (_, stats) in p.contexts() {
        let occ = stats.occurrence as f64;
        for slot in &stats.slots {
            a.mix[slot.class.index()] += occ;
            a.total += occ;
            a.l1i_miss += occ * slot.icache.l1.probability();
            if let Some(d) = &slot.dcache {
                a.loads += occ;
                a.l1d_miss += occ * d.l1.probability();
            }
            for dep in &slot.dep {
                // Value 0 encodes "no dependency": the trace-side mean
                // covers realised dependencies only, so exclude the
                // zero mass here too.
                let real = dep.total().saturating_sub(dep.count(0));
                if real > 0 {
                    let sum: f64 = dep
                        .iter()
                        .filter(|(v, _)| *v > 0)
                        .map(|(v, c)| f64::from(v) * c as f64)
                        .sum();
                    let weight = occ * real as f64 / dep.total() as f64;
                    a.dep_sum += weight * (sum / real as f64);
                    a.dep_n += weight;
                }
            }
        }
        if let Some(b) = &stats.branch {
            let total = b.total() as f64;
            if total > 0.0 {
                a.branches += occ;
                a.taken += occ * b.taken.probability();
                a.mispredicts += occ * (b.mispredict as f64 / total);
            }
        }
    }
    a
}

/// Compares a synthetic trace against the profile that generated it.
///
/// See the [module docs](self) for intent and an example.
pub fn validate_trace(profile: &StatisticalProfile, trace: &SyntheticTrace) -> TraceValidation {
    let agg = profile_aggregate(profile);
    let n = trace.len().max(1) as f64;

    let mut mix = [0.0f64; 12];
    let (mut taken, mut branches, mut mispredicts) = (0.0, 0.0, 0.0);
    let (mut l1d, mut loads, mut l1i) = (0.0, 0.0, 0.0);
    let (mut dep_sum, mut dep_n) = (0.0, 0.0);
    for i in trace.instrs() {
        mix[i.class.index()] += 1.0;
        if i.l1i_miss {
            l1i += 1.0;
        }
        if let Some(d) = i.dmem {
            loads += 1.0;
            if d.l1_miss {
                l1d += 1.0;
            }
        }
        if let Some(b) = i.branch {
            branches += 1.0;
            if b.taken {
                taken += 1.0;
            }
            if b.outcome == SyntheticOutcome::Mispredict {
                mispredicts += 1.0;
            }
        }
        for d in i.dep.iter().flatten() {
            dep_sum += f64::from(*d);
            dep_n += 1.0;
        }
    }

    let mix_tv = if agg.total > 0.0 {
        0.5 * InstrClass::ALL
            .iter()
            .map(|c| (mix[c.index()] / n - agg.mix[c.index()] / agg.total).abs())
            .sum::<f64>()
    } else {
        0.0
    };
    let frac = |num: f64, den: f64| if den > 0.0 { num / den } else { 0.0 };
    let profile_dep_mean = frac(agg.dep_sum, agg.dep_n);
    let trace_dep_mean = frac(dep_sum, dep_n);
    TraceValidation {
        mix_tv,
        taken_delta: (frac(taken, branches) - frac(agg.taken, agg.branches)).abs(),
        mispredict_delta: (frac(mispredicts, branches) - frac(agg.mispredicts, agg.branches)).abs(),
        l1d_delta: (frac(l1d, loads) - frac(agg.l1d_miss, agg.loads)).abs(),
        l1i_delta: (l1i / n - frac(agg.l1i_miss, agg.total)).abs(),
        dep_mean_rel: if profile_dep_mean > 0.0 {
            (trace_dep_mean - profile_dep_mean).abs() / profile_dep_mean
        } else {
            0.0
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiler::{profile, ProfileConfig};
    use ssim_uarch::MachineConfig;

    fn profile_of(name: &str) -> StatisticalProfile {
        let program = ssim_workloads::by_name(name)
            .expect("known workload")
            .program();
        profile(
            &program,
            &ProfileConfig::new(&MachineConfig::baseline())
                .skip(4_000_000)
                .instructions(600_000),
        )
    }

    #[test]
    fn generated_traces_match_their_profiles() {
        for name in ["gzip", "twolf", "perlbmk"] {
            let p = profile_of(name);
            let trace = p.generate(10, 1);
            let v = validate_trace(&p, &trace);
            assert!(
                v.max_divergence() < 0.08,
                "{name}: trace diverges from its profile: {v}"
            );
        }
    }

    #[test]
    fn foreign_traces_are_flagged() {
        let gzip = profile_of("gzip");
        let eon = profile_of("eon");
        // An eon trace (fp-heavy) badly misrepresents gzip's mix.
        let v = validate_trace(&gzip, &eon.generate(10, 1));
        assert!(v.mix_tv > 0.15, "foreign trace should diverge, got {v}");
    }

    #[test]
    fn empty_trace_yields_finite_report() {
        let p = profile_of("crafty");
        let v = validate_trace(&p, &SyntheticTrace::default());
        assert!(v.max_divergence().is_finite());
    }
}
