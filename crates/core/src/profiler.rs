//! Statistical profiling: one functional pass building the profile.

use crate::fxhash::FxHashMap;
use crate::sfg::{BlockId, BranchCtxStats, ContextStats, Gram, Sfg, SlotStats, StatisticalProfile};
use crate::MAX_DEP_DISTANCE;
use ssim_bpred::{classify, BranchKind, BranchOutcome, HybridPredictor, Prediction};
use ssim_cache::Hierarchy;
use ssim_func::{Executed, Machine};
use ssim_isa::{pc_to_addr, InstrClass, Program, Reg, RegId};
use ssim_uarch::MachineConfig;
use std::collections::VecDeque;

// Observability (all no-ops unless SSIM_METRICS enables recording).
// Event totals are accumulated in the locals the profiler already
// keeps and flushed once at the end, so the per-instruction loop is
// untouched even when metrics are on.
static OBS_PROFILE_TIME: ssim_obs::TimerStat = ssim_obs::TimerStat::new("profiler.time");
static OBS_INSTRUCTIONS: ssim_obs::Counter = ssim_obs::Counter::new("profiler.instructions");
static OBS_BRANCH_LOOKUPS: ssim_obs::Counter = ssim_obs::Counter::new("profiler.branch_lookups");
static OBS_MISPREDICTS: ssim_obs::Counter = ssim_obs::Counter::new("profiler.branch_mispredicts");
static OBS_FIFO_SQUASHES: ssim_obs::Counter = ssim_obs::Counter::new("profiler.fifo_squashes");
static OBS_SQUASHED_INSTRS: ssim_obs::Counter =
    ssim_obs::Counter::new("profiler.fifo_squashed_instrs");
static OBS_BLOCKS: ssim_obs::Counter = ssim_obs::Counter::new("profiler.blocks_recorded");
static OBS_SFG_NODES: ssim_obs::Gauge = ssim_obs::Gauge::new("profiler.sfg_nodes");
static OBS_SFG_EDGES: ssim_obs::Gauge = ssim_obs::Gauge::new("profiler.sfg_edges");
static OBS_CONTEXTS: ssim_obs::Gauge = ssim_obs::Gauge::new("profiler.contexts");

/// How branch characteristics are measured during profiling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BranchProfileMode {
    /// The paper's contribution (§2.1.3): lookups and updates separated
    /// by an IFQ-sized FIFO, with squash-and-refill on detected
    /// mispredictions — modeling delayed (speculative-at-dispatch)
    /// update.
    #[default]
    Delayed,
    /// Classic trace-driven profiling: the predictor is updated
    /// immediately after each lookup (the baseline the paper improves
    /// on; used for Figures 3 and 5).
    Immediate,
    /// Every branch is a correct prediction (perfect branch prediction,
    /// used for the Figure 4 SFG-order study).
    Perfect,
}

/// Profiling configuration.
#[derive(Debug, Clone)]
pub struct ProfileConfig {
    /// SFG order `k` (the paper uses `k = 1` after Figure 4).
    pub k: usize,
    /// Branch measurement scheme.
    pub branch_mode: BranchProfileMode,
    /// Model every cache/TLB access as a hit (Figures 4 and 5).
    pub perfect_caches: bool,
    /// Machine whose locality structures are profiled (branch predictor
    /// sizing, cache hierarchy, IFQ size for the delayed-update FIFO).
    pub machine: MachineConfig,
    /// Instructions to skip before profiling (warmup / init phase).
    pub skip: u64,
    /// Instructions to run *after* the skip with live caches and
    /// predictor (immediate update) but without recording, so the
    /// locality structures are warm when measurement starts. Needed
    /// when profiling a sample from the middle of a stream (§4.4).
    pub warm_instructions: u64,
    /// Instructions to profile.
    pub max_instructions: u64,
    /// Record WAW/WAR anti-dependency distances per slot (the paper's
    /// future-work extension for in-order or register-constrained
    /// machines; off by default, matching the paper's RAW-only model).
    pub anti_deps: bool,
    /// Cap on recorded dependency distances (the paper uses 512, which
    /// "still allows the modeling of a wide range of current and
    /// near-future microprocessors" — §2.1.1). Distances beyond the cap
    /// are recorded as "no dependency".
    pub dep_cap: u32,
}

impl ProfileConfig {
    /// A first-order, delayed-update profile of `machine`'s locality
    /// structures over 5M instructions after a 4M-instruction skip.
    pub fn new(machine: &MachineConfig) -> Self {
        ProfileConfig {
            k: 1,
            branch_mode: if machine.perfect_bpred {
                BranchProfileMode::Perfect
            } else {
                BranchProfileMode::Delayed
            },
            perfect_caches: machine.perfect_caches,
            machine: machine.clone(),
            skip: 4_000_000,
            warm_instructions: 0,
            max_instructions: 5_000_000,
            anti_deps: false,
            dep_cap: MAX_DEP_DISTANCE,
        }
    }

    /// Builder-style SFG order.
    pub fn order(mut self, k: usize) -> Self {
        self.k = k;
        self
    }

    /// Builder-style branch mode.
    pub fn branch_mode(mut self, mode: BranchProfileMode) -> Self {
        self.branch_mode = mode;
        self
    }

    /// Builder-style instruction budget.
    pub fn instructions(mut self, n: u64) -> Self {
        self.max_instructions = n;
        self
    }

    /// Builder-style warmup skip.
    pub fn skip(mut self, n: u64) -> Self {
        self.skip = n;
        self
    }

    /// Builder-style structure-warming run-up (see
    /// [`ProfileConfig::warm_instructions`]).
    pub fn warm(mut self, n: u64) -> Self {
        self.warm_instructions = n;
        self
    }

    /// Builder-style dependency-distance cap (see
    /// [`ProfileConfig::dep_cap`]).
    ///
    /// Clamped to [`MAX_DEP_DISTANCE`]: the synthetic generator can
    /// never *emit* a distance beyond that bound, so recording one
    /// during profiling would silently misrepresent the profile (the
    /// out-of-range mass would collapse onto exactly 512 at generation
    /// instead of being drawn as "no dependency").
    pub fn dep_cap(mut self, cap: u32) -> Self {
        self.dep_cap = cap.min(MAX_DEP_DISTANCE);
        self
    }

    /// Builder-style anti-dependency tracking (see
    /// [`ProfileConfig::anti_deps`]).
    pub fn anti_deps(mut self, on: bool) -> Self {
        self.anti_deps = on;
        self
    }
}

/// One instruction in flight through the delayed-update FIFO.
#[derive(Debug, Clone, Copy)]
struct FifoEntry {
    exec: Executed,
    pred: Option<Prediction>,
    ras_checkpoint: (usize, usize),
}

/// In-progress basic block assembly.
#[derive(Debug, Default)]
struct BlockBuilder {
    start: Option<BlockId>,
    slots: Vec<SlotObservation>,
}

/// Everything observed about one dynamic instruction.
#[derive(Debug, Clone, Copy)]
struct SlotObservation {
    class: InstrClass,
    src_count: u8,
    dep: [u32; 2], // 0 = no dependency
    l1i_miss: bool,
    l2i_miss: bool,
    itlb_miss: bool,
    dmem: Option<(bool, bool, bool)>, // load: (l1d, l2d, dtlb) misses
    branch: Option<(bool, BranchOutcome)>,
    anti: [u32; 2], // (WAW, WAR) distances; 0 = none
}

/// Builds a [`StatisticalProfile`] from one functional execution.
///
/// This is the paper's step 1 (Figure 1): functional simulation
/// extended with branch predictors and cache structures, recording the
/// statistical flow graph, the microarchitecture-independent
/// characteristics and the locality events.
///
/// # Panics
///
/// Panics if `cfg.k > 3` or the machine configuration is invalid.
pub fn profile(program: &Program, cfg: &ProfileConfig) -> StatisticalProfile {
    let _span = OBS_PROFILE_TIME.span();
    cfg.machine.validate();
    // Enforced here as well as in the builder: a cap above
    // MAX_DEP_DISTANCE cannot survive generation (distances are clamped
    // there), so honouring it would record unusable mass.
    let dep_cap = u64::from(cfg.dep_cap.min(MAX_DEP_DISTANCE));
    let mut machine = Machine::new(program);
    for _ in 0..cfg.skip {
        if machine.step().is_none() {
            break;
        }
    }

    let mut bpred = HybridPredictor::new(&cfg.machine.bpred);
    let mut hierarchy = Hierarchy::new(&cfg.machine.hierarchy);
    // Warm the locality structures over the run-up window.
    for _ in 0..cfg.warm_instructions {
        let Some(exec) = machine.step() else { break };
        if !cfg.perfect_caches {
            hierarchy.access_instr(pc_to_addr(exec.pc));
            if let Some(addr) = exec.mem_addr {
                if exec.instr.class() == InstrClass::Load {
                    hierarchy.access_load(addr);
                } else {
                    hierarchy.access_data(addr);
                }
            }
        }
        if !matches!(cfg.branch_mode, BranchProfileMode::Perfect) {
            if let Some(kind) = BranchKind::from_opcode(exec.instr.op) {
                let pred = bpred.lookup(exec.pc, kind);
                bpred.update(exec.pc, kind, exec.taken, exec.next_pc, &pred);
            }
        }
    }
    let mut sfg = Sfg::new(cfg.k);
    let mut contexts: FxHashMap<crate::Context, ContextStats> = FxHashMap::default();

    let mut fifo: VecDeque<FifoEntry> = VecDeque::with_capacity(cfg.machine.ifq_size);
    let mut pushback: VecDeque<Executed> = VecDeque::new();
    let fifo_cap = cfg.machine.ifq_size.max(1);

    // RAW dependency tracking: global instruction index of each
    // register's last writer.
    let mut last_writer = [0u64; RegId::DENSE_COUNT];
    let mut has_writer = [false; RegId::DENSE_COUNT];
    let mut last_reader = [0u64; RegId::DENSE_COUNT];
    let mut has_reader = [false; RegId::DENSE_COUNT];
    let mut instr_index: u64 = 0;

    let mut state = Gram::empty();
    let mut block = BlockBuilder::default();
    let mut instructions: u64 = 0;
    let mut branch_lookups: u64 = 0;
    let mut branch_mispredicts: u64 = 0;
    let mut fifo_squashes: u64 = 0;
    let mut fifo_squashed_instrs: u64 = 0;
    let mut remaining = cfg.max_instructions;

    // Flushes the completed block into the SFG + context stats.
    let complete_block = |sfg: &mut Sfg,
                          contexts: &mut FxHashMap<crate::Context, ContextStats>,
                          state: &mut Gram,
                          block: &mut BlockBuilder| {
        let Some(start) = block.start.take() else {
            return;
        };
        let slots = std::mem::take(&mut block.slots);
        // Skip blocks whose history is still shorter than k (the
        // first k blocks of the stream).
        if state.len() == cfg.k {
            sfg.record(*state, start);
            let ctx = state.context_with(start);
            let stats = contexts.entry(ctx).or_insert_with(|| ContextStats {
                occurrence: 0,
                slots: slots
                    .iter()
                    .map(|s| SlotStats::new(s.class, s.src_count))
                    .collect(),
                branch: slots
                    .last()
                    .and_then(|s| s.class.is_control().then(BranchCtxStats::default)),
            });
            stats.occurrence += 1;
            debug_assert_eq!(stats.slots.len(), slots.len(), "blocks are static");
            for (slot, obs) in stats.slots.iter_mut().zip(&slots) {
                for p in 0..usize::from(obs.src_count.min(2)) {
                    slot.dep[p].record(obs.dep[p]);
                }
                if cfg.anti_deps {
                    slot.waw.record(obs.anti[0]);
                    slot.war.record(obs.anti[1]);
                }
                slot.icache.l1.record(obs.l1i_miss);
                if obs.l1i_miss {
                    slot.icache.l2.record(obs.l2i_miss);
                }
                slot.icache.tlb.record(obs.itlb_miss);
                if let (Some(d), Some((l1, l2, tlb))) = (slot.dcache.as_mut(), obs.dmem) {
                    d.l1.record(l1);
                    if l1 {
                        d.l2.record(l2);
                    }
                    d.tlb.record(tlb);
                }
            }
            if let (Some(b), Some(obs)) = (stats.branch.as_mut(), slots.last()) {
                if let Some((taken, outcome)) = obs.branch {
                    b.taken.record(taken);
                    match outcome {
                        BranchOutcome::Correct => b.correct += 1,
                        BranchOutcome::FetchRedirect => b.redirect += 1,
                        BranchOutcome::Mispredict => b.mispredict += 1,
                    }
                }
            }
        }
        *state = state.shifted(start, cfg.k);
    };

    'outer: loop {
        // ---- fill the FIFO (lookups happen on entry with stale state).
        while fifo.len() < fifo_cap {
            let exec = match pushback.pop_front() {
                Some(e) => Some(e),
                None => {
                    if remaining == 0 {
                        None
                    } else {
                        remaining -= 1;
                        machine.step()
                    }
                }
            };
            let Some(exec) = exec else { break };
            let ras_checkpoint = bpred.ras_checkpoint();
            let pred = match (cfg.branch_mode, BranchKind::from_opcode(exec.instr.op)) {
                (BranchProfileMode::Delayed, Some(kind)) => Some(bpred.lookup(exec.pc, kind)),
                _ => None,
            };
            fifo.push_back(FifoEntry {
                exec,
                pred,
                ras_checkpoint,
            });
        }

        // ---- drain one instruction from the FIFO head (update side).
        let Some(entry) = fifo.pop_front() else {
            break 'outer;
        };
        let exec = entry.exec;
        instructions += 1;

        // Microarchitecture-independent: dependency distances.
        instr_index += 1;
        let mut obs = SlotObservation {
            class: exec.instr.class(),
            src_count: exec.instr.src_count() as u8,
            dep: [0, 0],
            l1i_miss: false,
            l2i_miss: false,
            itlb_miss: false,
            dmem: None,
            branch: None,
            anti: [0, 0],
        };
        for (p, src) in exec.instr.sources().enumerate().take(2) {
            // R0 is hardwired zero: no producer.
            if src == RegId::Int(Reg::ZERO) {
                continue;
            }
            let i = src.dense_index();
            if has_writer[i] {
                let dist = instr_index - last_writer[i];
                if dist <= dep_cap {
                    obs.dep[p] = dist as u32;
                }
            }
        }
        if cfg.anti_deps {
            if let Some(dest) = exec.instr.dest {
                let i = dest.dense_index();
                if has_writer[i] {
                    let d = instr_index - last_writer[i];
                    if d <= dep_cap {
                        obs.anti[0] = d as u32;
                    }
                }
                if has_reader[i] {
                    let d = instr_index - last_reader[i];
                    if d <= dep_cap {
                        obs.anti[1] = d as u32;
                    }
                }
            }
            for src in exec.instr.sources() {
                last_reader[src.dense_index()] = instr_index;
                has_reader[src.dense_index()] = true;
            }
        }
        if let Some(dest) = exec.instr.dest {
            last_writer[dest.dense_index()] = instr_index;
            has_writer[dest.dense_index()] = true;
        }

        // Microarchitecture-dependent: cache locality events.
        if !cfg.perfect_caches {
            let iout = hierarchy.access_instr(pc_to_addr(exec.pc));
            obs.l1i_miss = iout.l1_miss;
            obs.l2i_miss = iout.l2_miss;
            obs.itlb_miss = iout.tlb_miss;
            if let Some(addr) = exec.mem_addr {
                if exec.instr.class() == InstrClass::Load {
                    let dout = hierarchy.access_load(addr);
                    obs.dmem = Some((dout.l1_miss, dout.l2_miss, dout.tlb_miss));
                } else {
                    hierarchy.access_data(addr);
                }
            }
        } else if exec.instr.class() == InstrClass::Load {
            obs.dmem = Some((false, false, false));
        }

        // Microarchitecture-dependent: branch behaviour.
        let mut squash = false;
        if let Some(kind) = BranchKind::from_opcode(exec.instr.op) {
            branch_lookups += 1;
            let outcome = match cfg.branch_mode {
                BranchProfileMode::Perfect => BranchOutcome::Correct,
                BranchProfileMode::Immediate => {
                    let pred = bpred.lookup(exec.pc, kind);
                    let outcome = classify(kind, &pred, exec.taken, exec.next_pc);
                    bpred.update(exec.pc, kind, exec.taken, exec.next_pc, &pred);
                    outcome
                }
                BranchProfileMode::Delayed => {
                    let pred = entry.pred.expect("delayed mode predicts on entry");
                    let outcome = classify(kind, &pred, exec.taken, exec.next_pc);
                    bpred.update(exec.pc, kind, exec.taken, exec.next_pc, &pred);
                    if outcome == BranchOutcome::Mispredict {
                        squash = true;
                    }
                    outcome
                }
            };
            if outcome == BranchOutcome::Mispredict {
                branch_mispredicts += 1;
            }
            obs.branch = Some((exec.taken, outcome));
        }

        // ---- squash-and-refill (§2.1.3): discard the stale lookups of
        // everything still in the FIFO and re-insert those instructions.
        if squash {
            fifo_squashes += 1;
            fifo_squashed_instrs += fifo.len() as u64;
            if let Some(first) = fifo.front() {
                bpred.ras_restore(first.ras_checkpoint);
            }
            for e in fifo.drain(..) {
                pushback.push_back(e.exec);
            }
        }

        // ---- basic-block assembly.
        if block.start.is_none() {
            block.start = Some(exec.pc as BlockId);
        }
        block.slots.push(obs);
        // Blocks end at control instructions; very long straight-line
        // runs are split to bound block size.
        if exec.instr.is_control() || block.slots.len() >= 256 {
            complete_block(&mut sfg, &mut contexts, &mut state, &mut block);
        }
    }
    // Drop the trailing partial block: recording it would alias a
    // longer block with the same start PC.

    OBS_INSTRUCTIONS.add(instructions);
    OBS_BRANCH_LOOKUPS.add(branch_lookups);
    OBS_MISPREDICTS.add(branch_mispredicts);
    OBS_FIFO_SQUASHES.add(fifo_squashes);
    OBS_SQUASHED_INSTRS.add(fifo_squashed_instrs);
    OBS_BLOCKS.add(sfg.total_occurrence());
    OBS_SFG_NODES.set(sfg.node_count() as u64);
    OBS_SFG_EDGES.set(sfg.edge_count() as u64);
    OBS_CONTEXTS.set(contexts.len() as u64);

    StatisticalProfile {
        sfg,
        contexts,
        instructions,
        branch_lookups,
        branch_mispredicts,
    }
}

/// Folds a profile that was *loaded* (e.g. from the on-disk cache)
/// rather than rebuilt into the profiler's observability counters, so
/// `profiler.instructions` always reflects the workload budget the
/// profile represents, cache hit or miss.
pub fn note_loaded_profile(p: &StatisticalProfile) {
    OBS_INSTRUCTIONS.add(p.instructions);
    OBS_BRANCH_LOOKUPS.add(p.branch_lookups);
    OBS_MISPREDICTS.add(p.branch_mispredicts);
    OBS_SFG_NODES.set(p.sfg.node_count() as u64);
    OBS_SFG_EDGES.set(p.sfg.edge_count() as u64);
    OBS_CONTEXTS.set(p.contexts.len() as u64);
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssim_isa::Assembler;

    fn loop_program(iters: i64) -> Program {
        let mut a = Assembler::new("p");
        let (i, n, acc, t) = (Reg::R1, Reg::R2, Reg::R3, Reg::R4);
        let buf = a.alloc_words(1024);
        a.li(n, iters);
        let top = a.here_label();
        a.addi(i, i, 1);
        a.andi(t, i, 1023);
        a.slli(t, t, 3);
        a.li(acc, buf as i64);
        a.add(t, acc, t);
        a.ld(t, t, 0);
        a.add(acc, acc, t);
        a.blt(i, n, top);
        a.halt();
        a.finish().unwrap()
    }

    fn quick_cfg(k: usize) -> ProfileConfig {
        ProfileConfig::new(&MachineConfig::baseline())
            .order(k)
            .skip(0)
            .instructions(100_000)
    }

    #[test]
    fn profiles_a_loop() {
        let program = loop_program(20_000);
        let p = profile(&program, &quick_cfg(1));
        assert!(p.instructions() > 90_000);
        assert_eq!(p.k(), 1);
        // One dominant block (the loop body).
        assert!(p.sfg().node_count() >= 1);
        assert!(p.context_count() >= 1);
        // The loop branch is nearly always taken and well predicted.
        let (_, stats) = p
            .contexts()
            .max_by_key(|(_, s)| s.occurrence)
            .expect("at least one context");
        let b = stats.branch.as_ref().expect("loop block ends in a branch");
        assert!(b.taken.probability() > 0.99);
        assert!(b.correct as f64 / b.total() as f64 > 0.95);
        assert_eq!(stats.slots.len(), 8, "loop body has 8 instructions");
    }

    #[test]
    fn dependency_distances_match_the_loop_shape() {
        let program = loop_program(20_000);
        let p = profile(&program, &quick_cfg(1));
        let (_, stats) = p.contexts().max_by_key(|(_, s)| s.occurrence).unwrap();
        // Slot 0 is `addi i, i, 1`: its source (i) was written by the
        // same instruction one iteration (8 instructions) earlier.
        let d = &stats.slots[0].dep[0];
        assert_eq!(d.sample_with(0.5), Some(8));
        // Slot 1 `andi t, i, 1023` depends on slot 0: distance 1.
        let d = &stats.slots[1].dep[0];
        assert_eq!(d.sample_with(0.5), Some(1));
    }

    #[test]
    fn cache_events_recorded_for_loads() {
        let program = loop_program(20_000);
        let p = profile(&program, &quick_cfg(1));
        let (_, stats) = p.contexts().max_by_key(|(_, s)| s.occurrence).unwrap();
        let load_slot = stats
            .slots
            .iter()
            .find(|s| s.class == InstrClass::Load)
            .expect("loop has a load");
        let d = load_slot
            .dcache
            .as_ref()
            .expect("loads carry data-cache stats");
        assert!(d.l1.trials() > 10_000);
        // An 8KB working set fits L1D (16KB): low miss rate.
        assert!(d.l1.probability() < 0.05);
    }

    #[test]
    fn perfect_caches_record_no_misses() {
        let program = loop_program(5_000);
        let mut cfg = quick_cfg(1);
        cfg.perfect_caches = true;
        let p = profile(&program, &cfg);
        for (_, stats) in p.contexts() {
            for slot in &stats.slots {
                assert_eq!(slot.icache.l1.events(), 0);
                if let Some(d) = &slot.dcache {
                    assert_eq!(d.l1.events(), 0);
                }
            }
        }
    }

    #[test]
    fn higher_order_sfg_has_at_least_as_many_nodes() {
        let program = loop_program(30_000);
        let n: Vec<usize> = (0..=3)
            .map(|k| profile(&program, &quick_cfg(k)).sfg().node_count())
            .collect();
        assert!(
            n[0] <= n[1] && n[1] <= n[2] && n[2] <= n[3],
            "node counts {n:?}"
        );
    }

    #[test]
    fn delayed_update_sees_more_mispredicts_than_immediate() {
        // An alternating branch is learnable with immediate update, but
        // with a 32-deep FIFO the two-level predictor's state lags and
        // accuracy drops — exactly the Figure 3 effect.
        let mut a = Assembler::new("alt");
        let (i, n, t) = (Reg::R1, Reg::R2, Reg::R3);
        a.li(n, 50_000);
        let top = a.here_label();
        let skip = a.label();
        a.andi(t, i, 1);
        a.beq(t, Reg::R0, skip);
        a.addi(t, t, 1);
        a.bind(skip).unwrap();
        a.addi(i, i, 1);
        a.blt(i, n, top);
        a.halt();
        let program = a.finish().unwrap();
        let imm = profile(
            &program,
            &quick_cfg(1).branch_mode(BranchProfileMode::Immediate),
        );
        let del = profile(
            &program,
            &quick_cfg(1).branch_mode(BranchProfileMode::Delayed),
        );
        assert!(
            del.branch_mpki() >= imm.branch_mpki(),
            "delayed {} < immediate {}",
            del.branch_mpki(),
            imm.branch_mpki()
        );
    }

    #[test]
    fn perfect_mode_records_zero_mispredicts() {
        let program = loop_program(5_000);
        let p = profile(
            &program,
            &quick_cfg(1).branch_mode(BranchProfileMode::Perfect),
        );
        assert_eq!(p.branch_mpki(), 0.0);
    }
}
