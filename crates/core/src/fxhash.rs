//! FxHash-style hasher for the profiling hot path.
//!
//! Profiling touches the SFG node map and the context-statistics map
//! once per dynamic basic block — tens of millions of lookups per
//! experiment — and every key is a `u128` ([`crate::Gram`] /
//! [`crate::Context`]) or a `u32` block id. `std`'s default SipHash is
//! DoS-resistant but byte-oriented and slow for such fixed-width keys;
//! this multiply-xor hasher (the rustc / Firefox "FxHash" recipe,
//! extended with a two-round `u128` path) hashes a packed gram in a
//! handful of cycles.
//!
//! Not DoS-resistant — keys here come from profiled programs, not from
//! untrusted input. Iteration order remains unspecified, exactly like
//! the default hasher; everything ordering-sensitive (serialisation,
//! trace generation) already sorts before use.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant from the FxHash recipe (derived from the
/// golden ratio, as in Knuth's multiplicative hashing).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// A fast, non-cryptographic hasher for fixed-width integer keys.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_word(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_word(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add_word(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_word(n as u64);
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add_word(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_word(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_word(n);
    }

    #[inline]
    fn write_u128(&mut self, n: u128) {
        self.add_word(n as u64);
        self.add_word((n >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_word(n as u64);
    }
}

/// `HashMap` keyed through [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// `HashSet` keyed through [`FxHasher`].
pub type FxHashSet<T> = std::collections::HashSet<T, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    fn hash_u128(n: u128) -> u64 {
        let mut h = FxHasher::default();
        h.write_u128(n);
        h.finish()
    }

    #[test]
    fn deterministic() {
        assert_eq!(hash_u128(0xdead_beef), hash_u128(0xdead_beef));
    }

    #[test]
    fn distinguishes_halves() {
        // A hasher that ignored the high word would collide every
        // gram/context differing only in old history.
        let lo = 0x1234_5678u128;
        assert_ne!(hash_u128(lo), hash_u128(lo | (1u128 << 64)));
        assert_ne!(hash_u128(0), hash_u128(1u128 << 127));
    }

    #[test]
    fn low_bits_spread_for_sequential_keys() {
        // HashMap uses the low bits for bucket selection; sequential
        // block ids must not land in sequential buckets' worst case.
        let mask = 0xff;
        let mut seen = std::collections::HashSet::new();
        for i in 0u128..256 {
            seen.insert(hash_u128(i) & mask);
        }
        assert!(seen.len() > 128, "only {} distinct low bytes", seen.len());
    }

    #[test]
    fn write_matches_chunked_words() {
        let mut a = FxHasher::default();
        a.write(&0xabcdef12_34567890u64.to_le_bytes());
        let mut b = FxHasher::default();
        b.write_u64(0xabcdef12_34567890);
        assert_eq!(a.finish(), b.finish());
    }
}
