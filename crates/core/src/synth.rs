//! Synthetic trace generation (§2.2 of the paper).

use crate::fxhash::{FxHashMap, FxHashSet};
use crate::sfg::{BlockId, Gram, StatisticalProfile};
use crate::{DEP_RETRIES, MAX_DEP_DISTANCE};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use ssim_isa::InstrClass;

// Observability (all no-ops unless SSIM_METRICS enables recording).
// Walk totals accumulate in locals and flush once per generate() call;
// only the rare clamp/retry events record inline. Shared with the
// compiled walk in `sampler.rs` so both paths report under one name.
pub(crate) static OBS_GENERATE_TIME: ssim_obs::TimerStat = ssim_obs::TimerStat::new("synth.time");
pub(crate) static OBS_WALK_STEPS: ssim_obs::Counter = ssim_obs::Counter::new("synth.walk_steps");
pub(crate) static OBS_WALK_RESTARTS: ssim_obs::Counter =
    ssim_obs::Counter::new("synth.walk_restarts");
pub(crate) static OBS_INSTRS_EMITTED: ssim_obs::Counter =
    ssim_obs::Counter::new("synth.instrs_emitted");
pub(crate) static OBS_NODES_DROPPED: ssim_obs::Counter =
    ssim_obs::Counter::new("synth.nodes_dropped_empty");
pub(crate) static OBS_REDUCED_NODES: ssim_obs::Gauge = ssim_obs::Gauge::new("synth.reduced_nodes");
pub(crate) static OBS_DEP_CLAMPED: ssim_obs::Counter =
    ssim_obs::Counter::new("synth.dep_clamped_512");
pub(crate) static OBS_DEP_RETRIES_EXHAUSTED: ssim_obs::Counter =
    ssim_obs::Counter::new("synth.dep_retries_exhausted");

/// Pre-assigned branch behaviour of a synthetic control instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BranchFlags {
    /// Whether the branch is taken (limits taken branches fetched per
    /// cycle, §2.1.2).
    pub taken: bool,
    /// The pre-assigned prediction outcome.
    pub outcome: SyntheticOutcome,
}

/// The three-way branch outcome carried by a synthetic trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyntheticOutcome {
    /// Correctly predicted.
    Correct,
    /// Fetch redirection (decode-time target fix-up).
    FetchRedirect,
    /// Full misprediction (squash at resolution).
    Mispredict,
}

/// Pre-assigned data-cache behaviour of a synthetic load (§2.2 step 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DataFlags {
    /// L1 D-cache miss.
    pub l1_miss: bool,
    /// Unified-L2 miss (data side).
    pub l2_miss: bool,
    /// D-TLB miss.
    pub tlb_miss: bool,
}

/// One statistically generated instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SyntheticInstr {
    /// Semantic class.
    pub class: InstrClass,
    /// Dependency distances per source operand (`None` = no
    /// dependency); instruction *x* depends on instruction *x − δ*.
    pub dep: [Option<u32>; 2],
    /// L1 I-cache miss on fetch (§2.2 step 7).
    pub l1i_miss: bool,
    /// L2 miss on instruction fetch.
    pub l2i_miss: bool,
    /// I-TLB miss on fetch.
    pub itlb_miss: bool,
    /// Data flags for loads.
    pub dmem: Option<DataFlags>,
    /// Branch flags for the block-terminating control instruction.
    pub branch: Option<BranchFlags>,
    /// Anti-dependency distances `(WAW, WAR)`; present only when the
    /// profile tracked them and the machine models register hazards.
    pub anti_dep: [Option<u32>; 2],
}

/// A [`SyntheticInstr`] packed into one 64-bit word — the fused
/// engine's ring-buffer element.
///
/// The packing is lossless because generation clamps every dependency
/// distance to [`MAX_DEP_DISTANCE`] (= 512, ten bits) and never emits a
/// `Some(0)` distance (zero encodes `None`). Layout:
///
/// | bits  | field                                   |
/// |-------|-----------------------------------------|
/// | 0..4  | instruction class index                 |
/// | 4..14 | `dep[0]` distance (0 = none)            |
/// | 14..24| `dep[1]` distance                       |
/// | 24..34| `anti_dep[0]` (WAW) distance            |
/// | 34..44| `anti_dep[1]` (WAR) distance            |
/// | 44..47| `l1i_miss`, `l2i_miss`, `itlb_miss`     |
/// | 47..51| dmem present, `l1_miss`, `l2_miss`, `tlb_miss` |
/// | 51..53| branch present, `taken`                 |
/// | 53..55| branch outcome (0 correct, 1 redirect, 2 mispredict) |
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct PackedInstr(pub(crate) u64);

impl PackedInstr {
    /// Ten bits per dependency-distance field (distances are 1..=512).
    const DIST_MASK: u64 = 0x3FF;

    pub(crate) fn pack(i: &SyntheticInstr) -> Self {
        debug_assert!(i
            .dep
            .iter()
            .chain(&i.anti_dep)
            .flatten()
            .all(|&d| (1..=MAX_DEP_DISTANCE).contains(&d)));
        let mut w = i.class.index() as u64;
        w |= u64::from(i.dep[0].unwrap_or(0)) << 4;
        w |= u64::from(i.dep[1].unwrap_or(0)) << 14;
        w |= u64::from(i.anti_dep[0].unwrap_or(0)) << 24;
        w |= u64::from(i.anti_dep[1].unwrap_or(0)) << 34;
        w |= u64::from(i.l1i_miss) << 44;
        w |= u64::from(i.l2i_miss) << 45;
        w |= u64::from(i.itlb_miss) << 46;
        if let Some(d) = i.dmem {
            w |= 1 << 47;
            w |= u64::from(d.l1_miss) << 48;
            w |= u64::from(d.l2_miss) << 49;
            w |= u64::from(d.tlb_miss) << 50;
        }
        if let Some(b) = i.branch {
            w |= 1 << 51;
            w |= u64::from(b.taken) << 52;
            let o = match b.outcome {
                SyntheticOutcome::Correct => 0u64,
                SyntheticOutcome::FetchRedirect => 1,
                SyntheticOutcome::Mispredict => 2,
            };
            w |= o << 53;
        }
        PackedInstr(w)
    }

    /// Packs an arbitrary (possibly hand-built) instruction, clamping
    /// dependency distances into the `1..=MAX_DEP_DISTANCE` range the
    /// wire format represents. The generator never emits distances
    /// outside it, so this only affects traces assembled by hand.
    pub(crate) fn pack_clamped(i: &SyntheticInstr) -> Self {
        let clamp = |d: &mut Option<u32>| *d = d.map(|d| d.clamp(1, MAX_DEP_DISTANCE));
        let mut c = *i;
        c.dep.iter_mut().for_each(clamp);
        c.anti_dep.iter_mut().for_each(clamp);
        Self::pack(&c)
    }

    fn dist(self, shift: u64) -> Option<u32> {
        let d = ((self.0 >> shift) & Self::DIST_MASK) as u32;
        (d != 0).then_some(d)
    }

    /// Instruction class.
    #[inline]
    pub(crate) fn class(self) -> InstrClass {
        InstrClass::ALL[(self.0 & 0xF) as usize]
    }

    /// True-dependency distances.
    #[inline]
    pub(crate) fn dep_dists(self) -> [Option<u32>; 2] {
        [self.dist(4), self.dist(14)]
    }

    /// Anti-dependency (WAW, WAR) distances.
    #[inline]
    pub(crate) fn anti_dep_dists(self) -> [Option<u32>; 2] {
        [self.dist(24), self.dist(34)]
    }

    /// L1 instruction-cache miss flag.
    #[inline]
    pub(crate) fn l1i_miss(self) -> bool {
        self.0 & (1 << 44) != 0
    }

    /// L2 miss flag for the instruction fetch.
    #[inline]
    pub(crate) fn l2i_miss(self) -> bool {
        self.0 & (1 << 45) != 0
    }

    /// Instruction-TLB miss flag.
    #[inline]
    pub(crate) fn itlb_miss(self) -> bool {
        self.0 & (1 << 46) != 0
    }

    /// Data-side locality flags, when pre-assigned.
    #[inline]
    pub(crate) fn dmem(self) -> Option<DataFlags> {
        (self.0 & (1 << 47) != 0).then_some(DataFlags {
            l1_miss: self.0 & (1 << 48) != 0,
            l2_miss: self.0 & (1 << 49) != 0,
            tlb_miss: self.0 & (1 << 50) != 0,
        })
    }

    /// Branch flags, when the instruction ends a basic block.
    #[inline]
    pub(crate) fn branch(self) -> Option<BranchFlags> {
        (self.0 & (1 << 51) != 0).then_some(BranchFlags {
            taken: self.0 & (1 << 52) != 0,
            outcome: match (self.0 >> 53) & 0x3 {
                0 => SyntheticOutcome::Correct,
                1 => SyntheticOutcome::FetchRedirect,
                _ => SyntheticOutcome::Mispredict,
            },
        })
    }

    /// Rebuilds the struct form — only the round-trip tests need it;
    /// the simulator reads fields straight off the word.
    #[cfg(test)]
    pub(crate) fn unpack(self) -> SyntheticInstr {
        SyntheticInstr {
            class: self.class(),
            dep: self.dep_dists(),
            anti_dep: self.anti_dep_dists(),
            l1i_miss: self.l1i_miss(),
            l2i_miss: self.l2i_miss(),
            itlb_miss: self.itlb_miss(),
            dmem: self.dmem(),
            branch: self.branch(),
        }
    }
}

/// A statistically generated instruction trace.
///
/// Produced by [`StatisticalProfile::generate`]; consumed by
/// [`simulate_trace`](crate::simulate_trace).
#[derive(Debug, Clone, Default)]
pub struct SyntheticTrace {
    pub(crate) instrs: Vec<SyntheticInstr>,
}

impl SyntheticTrace {
    /// The generated instructions, in trace order.
    pub fn instrs(&self) -> &[SyntheticInstr] {
        &self.instrs
    }

    /// Trace length in instructions.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// Appends one instruction (used by alternative workload models
    /// such as the HLS baseline).
    pub fn push(&mut self, instr: SyntheticInstr) {
        self.instrs.push(instr);
    }
}

impl FromIterator<SyntheticInstr> for SyntheticTrace {
    fn from_iter<I: IntoIterator<Item = SyntheticInstr>>(iter: I) -> Self {
        SyntheticTrace {
            instrs: iter.into_iter().collect(),
        }
    }
}

/// Outcome of a generation-free walk of the reduced SFG — the paper's
/// steps 1-2 loop (start-node selection, occurrence bookkeeping, edge
/// draws) with instruction emission stubbed out.
///
/// Produced by both [`StatisticalProfile::walk_reference`] (the
/// interpreter) and [`CompiledSampler::walk`](crate::CompiledSampler::walk)
/// (the compiled tables); for the same `(r, seed)` the two reports are
/// equal field for field, which the equivalence tests and the
/// `synth_speed` benchmark assert. `checksum` folds the live budget at
/// every restart, so two walks that visit different node sequences
/// cannot produce equal reports by accident.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WalkReport {
    /// Edges traversed (node occurrences consumed by walking).
    pub steps: u64,
    /// Times the walk restarted at step 2 (including the first start).
    pub restarts: u64,
    /// Budget trajectory fold: `rotate_left(5) ^ budget` per restart.
    pub checksum: u64,
}

/// One node of the reduced SFG as the reference interpreter sees it:
/// remaining occurrence plus the cumulative outgoing-edge distribution
/// (parallel arrays, sorted by block id).
struct RNode {
    remaining: u64,
    targets: Vec<BlockId>,
    cumulative: Vec<u64>,
    total: u64,
}

/// Step-1 output shared by [`StatisticalProfile::generate_reference`]
/// and [`StatisticalProfile::walk_reference`]: the occurrence-reduced,
/// edge-pruned SFG, its total occurrence budget, and the sorted gram
/// list that start-node selection scans.
struct ReducedSfg {
    nodes: FxHashMap<Gram, RNode>,
    budget: u64,
    start_grams: Vec<Gram>,
}

impl StatisticalProfile {
    /// Generates a synthetic trace a factor `r` smaller than the
    /// profiled stream, per the nine-step algorithm of §2.2:
    ///
    /// 1. the SFG is *reduced*: node occurrences are divided by `r`
    ///    (`N_i = floor(M_i / r)`) and empty nodes are removed together
    ///    with their edges;
    /// 2. a start node is drawn from the occurrence distribution;
    /// 3. the graph is walked, decrementing occurrences; every visited
    ///    edge emits the corresponding basic block with instruction
    ///    classes, sampled dependency distances (re-drawn up to 1,000
    ///    times if the producer would be a branch or store), sampled
    ///    cache/TLB hit-miss flags and sampled branch outcome flags;
    /// 4. on reaching a node without outgoing edges the walk restarts
    ///    at step 2; the trace ends when the occurrence budget is
    ///    exhausted.
    ///
    /// `seed` makes generation reproducible; the paper's convergence
    /// study (§4.1) varies it.
    ///
    /// Internally the profile is lowered once into a
    /// [`CompiledSampler`](crate::CompiledSampler) and the walk runs off
    /// its dense tables; callers that generate many traces from one
    /// `(profile, r)` pair (the §4.1 multi-seed convergence runs, design
    /// sweeps) should call [`StatisticalProfile::compile`] themselves
    /// and reuse the artifact. The trace is byte-identical to the
    /// reference interpreter ([`StatisticalProfile::generate_reference`])
    /// for every `(r, seed)`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is zero.
    pub fn generate(&self, r: u64, seed: u64) -> SyntheticTrace {
        self.generate_compiled(r, seed)
    }

    /// Lowers the profile for `r` and generates one trace — the
    /// compiled counterpart of [`StatisticalProfile::generate_reference`].
    ///
    /// # Panics
    ///
    /// Panics if `r` is zero.
    pub fn generate_compiled(&self, r: u64, seed: u64) -> SyntheticTrace {
        self.compile(r).generate(seed)
    }

    /// Builds the occurrence-reduced (`N_i = floor(M_i / r)`),
    /// edge-pruned SFG the interpreter walks — step 1 of §2.2. Shared
    /// by [`StatisticalProfile::generate_reference`] and
    /// [`StatisticalProfile::walk_reference`].
    ///
    /// # Panics
    ///
    /// Panics if `r` is zero.
    fn reduce_sfg(&self, r: u64) -> ReducedSfg {
        assert!(r > 0, "reduction factor must be positive");
        let mut reduced: FxHashMap<Gram, RNode> = FxHashMap::default();
        for (gram, node) in self.sfg.nodes() {
            let n = node.occurrence / r;
            if n == 0 {
                continue;
            }
            let mut targets = Vec::with_capacity(node.edges.len());
            let mut cumulative = Vec::with_capacity(node.edges.len());
            let mut acc = 0u64;
            // Deterministic iteration order for reproducibility.
            let mut edges: Vec<_> = node.edges.iter().collect();
            edges.sort_unstable_by_key(|(b, _)| **b);
            for (block, count) in edges {
                acc += *count;
                targets.push(*block);
                cumulative.push(acc);
            }
            reduced.insert(
                *gram,
                RNode {
                    remaining: n,
                    targets,
                    cumulative,
                    total: acc,
                },
            );
        }
        debug_assert_eq!(reduced.len(), self.sfg.reduced_node_count(r));
        // Remove edges leading to removed nodes (the paper removes all
        // incoming and outgoing edges of dropped nodes). An edge from
        // state s labeled b leads to state shift(s, b).
        let k = self.sfg.k();
        let live: FxHashSet<Gram> = reduced.keys().copied().collect();
        for (gram, node) in reduced.iter_mut() {
            if k == 0 {
                break; // the k=0 graph has a single node
            }
            let mut acc = 0u64;
            let mut targets = Vec::new();
            let mut cumulative = Vec::new();
            let mut prev = 0u64;
            for (i, block) in node.targets.iter().enumerate() {
                let count = node.cumulative[i] - prev;
                prev = node.cumulative[i];
                if live.contains(&gram.shifted(*block, k)) {
                    acc += count;
                    targets.push(*block);
                    cumulative.push(acc);
                }
            }
            node.targets = targets;
            node.cumulative = cumulative;
            node.total = acc;
        }
        let budget: u64 = reduced.values().map(|n| n.remaining).sum();
        // Start-node selection scans grams in sorted order — the same
        // order the compiled engine's dense ids are assigned in.
        let start_grams: Vec<Gram> = {
            let mut g: Vec<_> = reduced.keys().copied().collect();
            g.sort_unstable();
            g
        };
        ReducedSfg {
            nodes: reduced,
            budget,
            start_grams,
        }
    }

    /// Walks the reduced SFG without emitting instructions — the
    /// interpreter half of the walk-subsystem comparison.
    ///
    /// The RNG stream is start draw + one edge draw per step (no
    /// per-instruction draws), so the visited node sequence differs
    /// from [`StatisticalProfile::generate_reference`]'s; what it
    /// matches exactly — steps, restarts and budget-trajectory
    /// checksum — is [`CompiledSampler::walk`](crate::CompiledSampler::walk)
    /// on the same `(r, seed)`. Each call pays the full pre-compilation
    /// cost shape: SFG reduction, per-step hash-map probes and the
    /// O(nodes) restart scan.
    ///
    /// # Panics
    ///
    /// Panics if `r` is zero.
    pub fn walk_reference(&self, r: u64, seed: u64) -> WalkReport {
        let mut rng = SmallRng::seed_from_u64(seed);
        let ReducedSfg {
            nodes: mut reduced,
            mut budget,
            start_grams,
        } = self.reduce_sfg(r);
        let mut report = WalkReport::default();
        if budget == 0 {
            return report;
        }
        let k = self.sfg.k();
        'walk: loop {
            report.restarts += 1;
            report.checksum = report.checksum.rotate_left(5) ^ budget;
            if budget == 0 {
                break 'walk;
            }
            let mut point = rng.gen_range(0..budget);
            let mut state = *start_grams.first().expect("non-empty reduced SFG");
            for g in &start_grams {
                let rem = reduced[g].remaining;
                if point < rem {
                    state = *g;
                    break;
                }
                point -= rem;
            }
            loop {
                let Some(node) = reduced.get_mut(&state) else {
                    continue 'walk; // walked into a removed node: restart
                };
                if node.total == 0 {
                    budget = budget.saturating_sub(node.remaining);
                    node.remaining = 0;
                    if budget == 0 {
                        break 'walk;
                    }
                    continue 'walk;
                }
                if node.remaining == 0 {
                    continue 'walk;
                }
                node.remaining -= 1;
                budget -= 1;
                report.steps += 1;
                let point = rng.gen_range(0..node.total);
                let idx = node.cumulative.partition_point(|&c| c <= point);
                state = state.shifted(node.targets[idx], k);
                if budget == 0 {
                    break 'walk;
                }
            }
        }
        report
    }

    /// Reference interpreter for synthetic trace generation: walks the
    /// reduced SFG through hash-map probes and per-draw histogram scans.
    ///
    /// This is the original (pre-compilation) implementation of
    /// [`StatisticalProfile::generate`], kept as the executable
    /// specification the compiled engine is tested against — the
    /// equivalence suite asserts instruction-for-instruction identical
    /// traces — and as the baseline of the `synth_speed` microbenchmark.
    ///
    /// # Panics
    ///
    /// Panics if `r` is zero.
    pub fn generate_reference(&self, r: u64, seed: u64) -> SyntheticTrace {
        assert!(r > 0, "reduction factor must be positive");
        let _span = OBS_GENERATE_TIME.span();
        let mut rng = SmallRng::seed_from_u64(seed);

        // ---- step 1: the reduced SFG.
        let reduced = self.reduce_sfg(r);
        OBS_NODES_DROPPED.add((self.sfg.nodes().len() - reduced.nodes.len()) as u64);
        OBS_REDUCED_NODES.set(reduced.nodes.len() as u64);
        let ReducedSfg {
            nodes: mut reduced,
            mut budget,
            start_grams,
        } = reduced;
        if budget == 0 {
            return SyntheticTrace::default();
        }
        let k = self.sfg.k();

        let mut trace = SyntheticTrace::default();
        let mut walk_steps: u64 = 0;
        let mut walk_restarts: u64 = 0;

        'walk: loop {
            walk_restarts += 1;
            // ---- step 2: pick a start node by remaining occurrence.
            // `budget` tracks Σ remaining exactly — every decrement
            // (walk step or dead-end drain) updates both in lockstep —
            // so no O(nodes) rescan is needed per restart.
            debug_assert_eq!(
                budget,
                reduced.values().map(|n| n.remaining).sum::<u64>(),
                "walk budget drifted from the per-node remaining sum"
            );
            if budget == 0 {
                break 'walk;
            }
            let mut point = rng.gen_range(0..budget);
            let mut state = *start_grams.first().expect("non-empty reduced SFG");
            for g in &start_grams {
                let rem = reduced[g].remaining;
                if point < rem {
                    state = *g;
                    break;
                }
                point -= rem;
            }

            // ---- steps 3-9: walk.
            loop {
                let Some(node) = reduced.get_mut(&state) else {
                    continue 'walk; // walked into a removed node: restart
                };
                if node.total == 0 {
                    // Dead end (every outgoing edge was pruned): per the
                    // paper, accessing the node still consumes its
                    // occurrence before restarting at step 1 — otherwise
                    // start-node selection could land here forever.
                    budget = budget.saturating_sub(node.remaining);
                    node.remaining = 0;
                    if budget == 0 {
                        break 'walk;
                    }
                    continue 'walk;
                }
                if node.remaining == 0 {
                    // The node's occurrence budget is exhausted (paper
                    // step 2 decrements it per access; step 1 restarts).
                    // This also bounds the dwell time in states whose
                    // pruned edge set degenerated to a near-certain
                    // self-loop.
                    continue 'walk;
                }
                node.remaining -= 1;
                budget -= 1;
                walk_steps += 1;
                // Pick an outgoing edge by transition probability.
                let point = rng.gen_range(0..node.total);
                let idx = node.cumulative.partition_point(|&c| c <= point);
                let block = node.targets[idx];
                let ctx = state.context_with(block);
                self.emit_block(&ctx, &mut trace, &mut rng);
                state = state.shifted(block, k);
                if budget == 0 {
                    break 'walk;
                }
            }
        }
        OBS_WALK_STEPS.add(walk_steps);
        OBS_WALK_RESTARTS.add(walk_restarts);
        OBS_INSTRS_EMITTED.add(trace.len() as u64);
        trace
    }

    /// Emits one basic block's worth of synthetic instructions for a
    /// context (steps 3-8).
    fn emit_block(&self, ctx: &crate::Context, trace: &mut SyntheticTrace, rng: &mut SmallRng) {
        let Some(stats) = self.contexts.get(ctx) else {
            return; // context never materialised (cannot happen for live edges)
        };
        let nslots = stats.slots.len();
        // One quantile per block occurrence, shared by every operand's
        // first draw: within one dynamic block, dependency distances
        // co-vary (they all measure "how far back did the previous
        // work happen"), and comonotonic sampling preserves that
        // correlation instead of entangling independent chains.
        let u_block: f64 = rng.gen();
        for (s, slot) in stats.slots.iter().enumerate() {
            let mut instr = SyntheticInstr {
                class: slot.class,
                dep: [None, None],
                l1i_miss: false,
                l2i_miss: false,
                itlb_miss: false,
                dmem: None,
                branch: None,
                anti_dep: [None, None],
            };
            // Anti-dependency distances (profiles with anti_deps only).
            for (i, hist) in [&slot.waw, &slot.war].into_iter().enumerate() {
                if !hist.is_empty() {
                    let d = hist.sample_with(rng.gen()).unwrap_or(0);
                    if d > 0 {
                        if d > MAX_DEP_DISTANCE {
                            OBS_DEP_CLAMPED.inc();
                        }
                        instr.anti_dep[i] = Some(d.min(MAX_DEP_DISTANCE));
                    }
                }
            }
            // step 4: dependency distances, retried so the producer is
            // not a branch or store.
            for p in 0..usize::from(slot.src_count.min(2)) {
                let hist = &slot.dep[p];
                if hist.is_empty() {
                    continue;
                }
                let mut chosen = None;
                let mut exhausted = true;
                for attempt in 0..DEP_RETRIES {
                    let u = if attempt == 0 {
                        u_block
                    } else {
                        rng.gen::<f64>()
                    };
                    let d = hist.sample_with(u).expect("non-empty histogram samples");
                    if d == 0 {
                        chosen = None; // "no dependency" mass
                        exhausted = false;
                        break;
                    }
                    if d > MAX_DEP_DISTANCE {
                        // Profiles built by [`profile`] never record past
                        // the cap; this guards hand-built or deserialized
                        // profiles so the ≤512 invariant holds everywhere.
                        OBS_DEP_CLAMPED.inc();
                    }
                    let d = d.min(MAX_DEP_DISTANCE);
                    let pos = trace.instrs.len();
                    match pos.checked_sub(d as usize) {
                        Some(src) => {
                            // Producer must define a register (not a
                            // branch or store).
                            if trace.instrs[src].class.has_dest() {
                                chosen = Some(d);
                                exhausted = false;
                                break;
                            }
                        }
                        None => {
                            // Points before the trace start: drop.
                            chosen = None;
                            exhausted = false;
                            break;
                        }
                    }
                }
                if exhausted {
                    OBS_DEP_RETRIES_EXHAUSTED.inc();
                }
                instr.dep[p] = chosen;
            }
            // step 5: load locality flags.
            if let Some(d) = &slot.dcache {
                let l1_miss = rng.gen::<f64>() < d.l1.probability();
                let l2_miss = l1_miss && rng.gen::<f64>() < d.l2.probability();
                let tlb_miss = rng.gen::<f64>() < d.tlb.probability();
                instr.dmem = Some(DataFlags {
                    l1_miss,
                    l2_miss,
                    tlb_miss,
                });
            }
            // step 7: instruction fetch locality flags.
            instr.l1i_miss = rng.gen::<f64>() < slot.icache.l1.probability();
            instr.l2i_miss = instr.l1i_miss && rng.gen::<f64>() < slot.icache.l2.probability();
            instr.itlb_miss = rng.gen::<f64>() < slot.icache.tlb.probability();
            // step 6: terminal branch flags.
            if s + 1 == nslots {
                if let Some(b) = &stats.branch {
                    let total = b.total();
                    if total > 0 {
                        let taken = rng.gen::<f64>() < b.taken.probability();
                        let point = rng.gen_range(0..total);
                        let outcome = if point < b.correct {
                            SyntheticOutcome::Correct
                        } else if point < b.correct + b.redirect {
                            SyntheticOutcome::FetchRedirect
                        } else {
                            SyntheticOutcome::Mispredict
                        };
                        instr.branch = Some(BranchFlags { taken, outcome });
                    }
                }
            }
            trace.instrs.push(instr); // step 8
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiler::{profile, BranchProfileMode, ProfileConfig};
    use ssim_isa::{Assembler, Reg};
    use ssim_uarch::MachineConfig;

    fn profiled_loop() -> StatisticalProfile {
        let mut a = Assembler::new("p");
        let (i, n, acc, t) = (Reg::R1, Reg::R2, Reg::R3, Reg::R4);
        let buf = a.alloc_words(1 << 14);
        a.li(n, 100_000);
        let top = a.here_label();
        a.addi(i, i, 1);
        a.andi(t, i, (1 << 14) - 1);
        a.slli(t, t, 3);
        a.li(acc, buf as i64);
        a.add(t, acc, t);
        a.ld(t, t, 0);
        a.st(t, 0, i);
        a.blt(i, n, top);
        a.halt();
        let program = a.finish().unwrap();
        profile(
            &program,
            &ProfileConfig::new(&MachineConfig::baseline())
                .skip(0)
                .instructions(400_000),
        )
    }

    #[test]
    fn packed_instr_roundtrips() {
        let p = profiled_loop();
        let t = p.generate(50, 9);
        assert!(!t.is_empty());
        for i in t.instrs() {
            assert_eq!(PackedInstr::pack(i).unpack(), *i);
        }
        // Extremes the generated trace may not cover.
        let corner = SyntheticInstr {
            class: InstrClass::FpSqrt,
            dep: [Some(MAX_DEP_DISTANCE), Some(1)],
            anti_dep: [Some(7), Some(MAX_DEP_DISTANCE)],
            l1i_miss: true,
            l2i_miss: true,
            itlb_miss: true,
            dmem: Some(DataFlags {
                l1_miss: true,
                l2_miss: false,
                tlb_miss: true,
            }),
            branch: Some(BranchFlags {
                taken: false,
                outcome: SyntheticOutcome::Mispredict,
            }),
        };
        assert_eq!(PackedInstr::pack(&corner).unpack(), corner);
    }

    #[test]
    fn reduction_factor_controls_length() {
        let p = profiled_loop();
        let t100 = p.generate(100, 1);
        let t1000 = p.generate(1000, 1);
        assert!(!t100.is_empty());
        assert!(!t1000.is_empty());
        let ratio = t100.len() as f64 / t1000.len() as f64;
        assert!(
            (5.0..20.0).contains(&ratio),
            "R=100 trace should be ~10x the R=1000 trace, ratio {ratio}"
        );
        // The R=100 trace is ~1/100th of the profiled stream.
        let frac = t100.len() as f64 / p.instructions() as f64;
        assert!((0.005..0.02).contains(&frac), "got {frac}");
    }

    #[test]
    fn generation_is_reproducible_and_seed_sensitive() {
        let p = profiled_loop();
        let a = p.generate(100, 7);
        let b = p.generate(100, 7);
        let c = p.generate(100, 8);
        assert_eq!(a.instrs(), b.instrs());
        assert_ne!(a.instrs(), c.instrs(), "different seeds should differ");
    }

    #[test]
    fn dependencies_never_point_to_branches_or_stores() {
        let p = profiled_loop();
        let t = p.generate(50, 3);
        for (i, instr) in t.instrs().iter().enumerate() {
            for d in instr.dep.iter().flatten() {
                let src = i.checked_sub(*d as usize).expect("deps stay in range");
                assert!(
                    t.instrs()[src].class.has_dest(),
                    "instr {i} depends on a {:?}",
                    t.instrs()[src].class
                );
            }
        }
    }

    #[test]
    fn trace_mix_matches_profile_mix() {
        let p = profiled_loop();
        let t = p.generate(100, 11);
        let loads = t
            .instrs()
            .iter()
            .filter(|i| i.class == InstrClass::Load)
            .count();
        let stores = t
            .instrs()
            .iter()
            .filter(|i| i.class == InstrClass::Store)
            .count();
        let branches = t.instrs().iter().filter(|i| i.branch.is_some()).count();
        // Loop body: 1 load, 1 store, 1 branch out of 8.
        let frac = loads as f64 / t.len() as f64;
        assert!((0.10..0.15).contains(&frac), "load fraction {frac}");
        let frac = stores as f64 / t.len() as f64;
        assert!((0.10..0.15).contains(&frac), "store fraction {frac}");
        let frac = branches as f64 / t.len() as f64;
        assert!((0.10..0.15).contains(&frac), "branch fraction {frac}");
    }

    #[test]
    fn branch_flags_follow_profiled_probabilities() {
        let p = profiled_loop();
        let t = p.generate(50, 5);
        let (mut taken, mut correct, mut total) = (0u64, 0u64, 0u64);
        for i in t.instrs() {
            if let Some(b) = i.branch {
                total += 1;
                taken += u64::from(b.taken);
                correct += u64::from(b.outcome == SyntheticOutcome::Correct);
            }
        }
        assert!(total > 100);
        assert!(taken as f64 / total as f64 > 0.95, "loop branch is taken");
        assert!(
            correct as f64 / total as f64 > 0.9,
            "loop branch predicts well"
        );
    }

    #[test]
    fn zero_budget_profile_yields_empty_trace() {
        let p = profiled_loop();
        // R larger than the block count: everything reduces to zero.
        let t = p.generate(u64::MAX, 1);
        assert!(t.is_empty());
    }

    #[test]
    fn perfect_branch_profile_generates_all_correct() {
        let mut a = Assembler::new("p");
        let (i, n) = (Reg::R1, Reg::R2);
        a.li(n, 50_000);
        let top = a.here_label();
        a.addi(i, i, 1);
        a.blt(i, n, top);
        a.halt();
        let program = a.finish().unwrap();
        let p = profile(
            &program,
            &ProfileConfig::new(&MachineConfig::baseline())
                .skip(0)
                .instructions(100_000)
                .branch_mode(BranchProfileMode::Perfect),
        );
        let t = p.generate(20, 1);
        assert!(t
            .instrs()
            .iter()
            .filter_map(|i| i.branch)
            .all(|b| b.outcome == SyntheticOutcome::Correct));
    }
}
