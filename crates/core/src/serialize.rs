//! Profile persistence: a compact, dependency-free binary format.
//!
//! A statistical profile is a reusable artifact — profile once (the
//! only pass over the full program), explore designs forever. This
//! module gives [`StatisticalProfile`] a versioned binary encoding so
//! profiles can be stored and shared across processes.
//!
//! Format (little-endian throughout): a magic/version header, the SFG
//! (nodes with edge lists), then the per-context characteristics. The
//! loader validates the magic, version, and all internal counts.
//!
//! # Examples
//!
//! ```no_run
//! # fn main() -> std::io::Result<()> {
//! use ssim_core::{profile, ProfileConfig, StatisticalProfile};
//! use ssim_uarch::MachineConfig;
//!
//! let machine = MachineConfig::baseline();
//! let program = ssim_workloads::by_name("gzip").unwrap().program();
//! let p = profile(&program, &ProfileConfig::new(&machine));
//!
//! let mut bytes = Vec::new();
//! p.save(&mut bytes)?;
//! let restored = StatisticalProfile::load(&mut bytes.as_slice())?;
//! assert_eq!(restored.context_count(), p.context_count());
//! # Ok(())
//! # }
//! ```

use crate::sfg::{BranchCtxStats, ContextStats, MissStats, SlotStats, StatisticalProfile};
use crate::{Context, Gram, Sfg};
use ssim_isa::InstrClass;
use ssim_stats::{Histogram, ProbCounter};
use std::io::{self, Read, Write};

const MAGIC: &[u8; 8] = b"SSIMPRF\0";
const VERSION: u32 = 1;

fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}

/// Upper bound on speculative `Vec::with_capacity` from untrusted
/// length prefixes. Real profiles stay far below this; a corrupted
/// count larger than it just grows the vector incrementally until the
/// stream runs out, instead of attempting a giant allocation up front.
const PREALLOC_CAP: usize = 4096;

// ---- primitive writers/readers --------------------------------------

fn w_u32<W: Write>(w: &mut W, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}
fn w_u64<W: Write>(w: &mut W, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}
fn w_u128<W: Write>(w: &mut W, v: u128) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}
fn r_u32<R: Read>(r: &mut R) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}
fn r_u64<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}
fn r_u128<R: Read>(r: &mut R) -> io::Result<u128> {
    let mut b = [0u8; 16];
    r.read_exact(&mut b)?;
    Ok(u128::from_le_bytes(b))
}

fn w_hist<W: Write>(w: &mut W, h: &Histogram) -> io::Result<()> {
    w_u32(w, h.distinct() as u32)?;
    for (v, c) in h.iter() {
        w_u32(w, v)?;
        w_u64(w, c)?;
    }
    Ok(())
}
fn r_hist<R: Read>(r: &mut R) -> io::Result<Histogram> {
    let n = r_u32(r)?;
    let mut h = Histogram::new();
    let mut total = 0u64;
    for _ in 0..n {
        let v = r_u32(r)?;
        let c = r_u64(r)?;
        // A corrupted count whose running sum overflows u64 would panic
        // inside Histogram's accumulator; reject it as bad data instead.
        total = total
            .checked_add(c)
            .ok_or_else(|| bad("histogram counts overflow"))?;
        h.record_n(v, c);
    }
    Ok(h)
}

fn w_prob<W: Write>(w: &mut W, p: &ProbCounter) -> io::Result<()> {
    w_u64(w, p.events())?;
    w_u64(w, p.trials())
}
fn r_prob<R: Read>(r: &mut R) -> io::Result<ProbCounter> {
    let events = r_u64(r)?;
    let trials = r_u64(r)?;
    if events > trials {
        return Err(bad("probability counter with events > trials"));
    }
    Ok(ProbCounter::from_counts(events, trials))
}

fn w_miss<W: Write>(w: &mut W, m: &MissStats) -> io::Result<()> {
    w_prob(w, &m.l1)?;
    w_prob(w, &m.l2)?;
    w_prob(w, &m.tlb)
}
fn r_miss<R: Read>(r: &mut R) -> io::Result<MissStats> {
    Ok(MissStats {
        l1: r_prob(r)?,
        l2: r_prob(r)?,
        tlb: r_prob(r)?,
    })
}

impl StatisticalProfile {
    /// Serialises the profile to `writer` in the versioned binary
    /// format.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn save<W: Write>(&self, writer: &mut W) -> io::Result<()> {
        writer.write_all(MAGIC)?;
        w_u32(writer, VERSION)?;
        w_u32(writer, self.k() as u32)?;
        w_u64(writer, self.instructions())?;
        w_u64(writer, self.branch_lookups())?;
        w_u64(writer, self.branch_mispredict_count())?;

        // SFG nodes.
        let nodes = self.sfg().export_nodes();
        w_u64(writer, nodes.len() as u64)?;
        for (gram, occurrence, edges) in nodes {
            w_u128(writer, gram)?;
            w_u64(writer, occurrence)?;
            w_u32(writer, edges.len() as u32)?;
            for (block, count) in edges {
                w_u32(writer, block)?;
                w_u64(writer, count)?;
            }
        }

        // Contexts.
        let mut contexts: Vec<_> = self.contexts().collect();
        contexts.sort_by_key(|(c, _)| **c);
        w_u64(writer, contexts.len() as u64)?;
        for (ctx, stats) in contexts {
            w_u128(writer, ctx.raw())?;
            w_u64(writer, stats.occurrence)?;
            w_u32(writer, stats.slots.len() as u32)?;
            for slot in &stats.slots {
                w_u32(writer, slot.class.index() as u32)?;
                w_u32(writer, u32::from(slot.src_count))?;
                w_hist(writer, &slot.dep[0])?;
                w_hist(writer, &slot.dep[1])?;
                w_hist(writer, &slot.waw)?;
                w_hist(writer, &slot.war)?;
                w_miss(writer, &slot.icache)?;
                w_u32(writer, u32::from(slot.dcache.is_some()))?;
                if let Some(d) = &slot.dcache {
                    w_miss(writer, d)?;
                }
            }
            w_u32(writer, u32::from(stats.branch.is_some()))?;
            if let Some(b) = &stats.branch {
                w_prob(writer, &b.taken)?;
                w_u64(writer, b.correct)?;
                w_u64(writer, b.redirect)?;
                w_u64(writer, b.mispredict)?;
            }
        }
        Ok(())
    }

    /// A 64-bit content hash of the profile: the FxHash of its
    /// serialized byte stream, computed without materialising the
    /// bytes.
    ///
    /// Two profiles hash equal iff they serialise identically, which
    /// (per the round-trip tests) holds iff they generate identical
    /// synthetic traces. The experiment service uses this as the
    /// profile component of its result-cache keys.
    pub fn content_hash(&self) -> u64 {
        struct HashWriter(crate::fxhash::FxHasher);
        impl Write for HashWriter {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                std::hash::Hasher::write(&mut self.0, buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let mut w = HashWriter(crate::fxhash::FxHasher::default());
        self.save(&mut w).expect("hash writer cannot fail");
        std::hash::Hasher::finish(&w.0)
    }

    /// Deserialises a profile previously written with
    /// [`StatisticalProfile::save`].
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` for wrong magic/version or any structural
    /// inconsistency, and propagates reader I/O errors.
    pub fn load<R: Read>(reader: &mut R) -> io::Result<StatisticalProfile> {
        let mut magic = [0u8; 8];
        reader.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(bad("not an ssim profile (bad magic)"));
        }
        let version = r_u32(reader)?;
        if version != VERSION {
            return Err(bad("unsupported profile version"));
        }
        let k = r_u32(reader)? as usize;
        if k > crate::sfg::MAX_K {
            return Err(bad("profile order exceeds MAX_K"));
        }
        let instructions = r_u64(reader)?;
        let branch_lookups = r_u64(reader)?;
        let branch_mispredicts = r_u64(reader)?;

        let mut sfg = Sfg::new(k);
        let n_nodes = r_u64(reader)?;
        for _ in 0..n_nodes {
            let gram = r_u128(reader)?;
            let occurrence = r_u64(reader)?;
            let n_edges = r_u32(reader)?;
            // Cap the preallocation: `n_edges` is untrusted input, and
            // a corrupted count must fail with InvalidData/EOF on the
            // next read, not abort the process in `with_capacity`.
            let mut edges = Vec::with_capacity((n_edges as usize).min(PREALLOC_CAP));
            let mut total = 0u64;
            for _ in 0..n_edges {
                let block = r_u32(reader)?;
                let count = r_u64(reader)?;
                total = total
                    .checked_add(count)
                    .ok_or_else(|| bad("edge counts overflow"))?;
                edges.push((block, count));
            }
            if total != occurrence {
                return Err(bad("node occurrence does not match edge counts"));
            }
            sfg.import_node(Gram::from_raw(gram), occurrence, edges);
        }

        let mut contexts = crate::fxhash::FxHashMap::default();
        let n_ctx = r_u64(reader)?;
        for _ in 0..n_ctx {
            let ctx = Context::from_raw(r_u128(reader)?);
            let occurrence = r_u64(reader)?;
            let n_slots = r_u32(reader)?;
            let mut slots = Vec::with_capacity((n_slots as usize).min(PREALLOC_CAP));
            for _ in 0..n_slots {
                let class_index = r_u32(reader)? as usize;
                let class = *InstrClass::ALL
                    .get(class_index)
                    .ok_or_else(|| bad("instruction class out of range"))?;
                let src_count = r_u32(reader)?;
                if src_count > 2 {
                    return Err(bad("operand count out of range"));
                }
                let dep0 = r_hist(reader)?;
                let dep1 = r_hist(reader)?;
                let waw = r_hist(reader)?;
                let war = r_hist(reader)?;
                let icache = r_miss(reader)?;
                let has_d = r_u32(reader)? != 0;
                let dcache = if has_d { Some(r_miss(reader)?) } else { None };
                let mut slot = SlotStats::new(class, src_count as u8);
                slot.dep = [dep0, dep1];
                slot.waw = waw;
                slot.war = war;
                slot.icache = icache;
                slot.dcache = dcache;
                slots.push(slot);
            }
            let has_branch = r_u32(reader)? != 0;
            let branch = if has_branch {
                Some(BranchCtxStats {
                    taken: r_prob(reader)?,
                    correct: r_u64(reader)?,
                    redirect: r_u64(reader)?,
                    mispredict: r_u64(reader)?,
                })
            } else {
                None
            };
            contexts.insert(
                ctx,
                ContextStats {
                    occurrence,
                    slots,
                    branch,
                },
            );
        }
        Ok(StatisticalProfile::from_parts(
            sfg,
            contexts,
            instructions,
            branch_lookups,
            branch_mispredicts,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiler::{profile, ProfileConfig};
    use ssim_uarch::MachineConfig;

    fn sample_profile() -> StatisticalProfile {
        let program = {
            use ssim_isa::{Assembler, Reg};
            let mut a = Assembler::new("s");
            let buf = a.alloc_words(64);
            let (i, n, t) = (Reg::R1, Reg::R2, Reg::R3);
            a.li(n, 20_000);
            let top = a.here_label();
            let skip = a.label();
            a.andi(t, i, 63);
            a.slli(t, t, 3);
            a.addi(t, t, buf as i64);
            a.ld(t, t, 0);
            a.andi(t, t, 1);
            a.beq(t, Reg::R0, skip);
            a.addi(i, i, 2);
            a.bind(skip).unwrap();
            a.addi(i, i, 1);
            a.blt(i, n, top);
            a.halt();
            a.finish().unwrap()
        };
        profile(
            &program,
            &ProfileConfig::new(&MachineConfig::baseline())
                .skip(0)
                .instructions(50_000),
        )
    }

    #[test]
    fn roundtrip_preserves_everything_observable() {
        let p = sample_profile();
        let mut bytes = Vec::new();
        p.save(&mut bytes).unwrap();
        let q = StatisticalProfile::load(&mut bytes.as_slice()).unwrap();
        assert_eq!(q.k(), p.k());
        assert_eq!(q.instructions(), p.instructions());
        assert_eq!(q.context_count(), p.context_count());
        assert_eq!(q.sfg().node_count(), p.sfg().node_count());
        assert_eq!(q.branch_mpki(), p.branch_mpki());
        // The ultimate test: both generate identical synthetic traces.
        let (a, b) = (p.generate(10, 9), q.generate(10, 9));
        assert_eq!(a.instrs(), b.instrs());
    }

    #[test]
    fn bad_magic_rejected() {
        let err = StatisticalProfile::load(&mut &b"NOTSSIM0rest"[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_stream_rejected() {
        let p = sample_profile();
        let mut bytes = Vec::new();
        p.save(&mut bytes).unwrap();
        bytes.truncate(bytes.len() / 2);
        assert!(StatisticalProfile::load(&mut bytes.as_slice()).is_err());
    }

    #[test]
    fn corrupted_counts_rejected() {
        let p = sample_profile();
        let mut bytes = Vec::new();
        p.save(&mut bytes).unwrap();
        // Flip a byte in the middle (likely a count somewhere).
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        // Either an explicit InvalidData or a read failure is fine; it
        // must not panic or silently succeed with the same trace.
        match StatisticalProfile::load(&mut bytes.as_slice()) {
            Err(_) => {}
            Ok(q) => {
                let (a, b) = (p.generate(10, 1), q.generate(10, 1));
                assert_ne!(a.instrs(), b.instrs(), "corruption silently ignored");
            }
        }
    }
}
