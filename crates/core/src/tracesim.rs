//! Synthetic trace simulation (§2.3 of the paper).
//!
//! Two entry points share one driver:
//!
//! * [`simulate_trace`] — simulates a materialised [`SyntheticTrace`];
//! * [`simulate_fused`] — streams synthetic instructions straight from
//!   a [`CompiledSampler`] walk into the pipeline through a small ring
//!   buffer, never materialising the trace. Bit-identical to
//!   generate-then-simulate for the same `(sampler, seed, config)`
//!   because both paths run the same emission code
//!   (`sampler::StreamGen`) and the same driver, parameterised only
//!   over where instructions are read from ([`InstrSource`]).
//!
//! Callers running many simulations (design-space sweeps, convergence
//! studies) should hold a [`SimEngine`] and reuse its working memory
//! across runs instead of calling the free functions in a loop.

use crate::sampler::{EmitSink, StreamGen};
use crate::synth::{PackedInstr, SyntheticInstr, SyntheticOutcome, SyntheticTrace};
use crate::CompiledSampler;
use ssim_uarch::{
    BranchResolution, Core, CoreScratch, DispatchInstr, DispatchOutcome, MachineConfig, MemKind,
    OccupancyMeter, SimResult, Unit,
};
// Observability (all no-ops unless SSIM_METRICS enables recording).
// The per-cycle histograms are the one hot-path instrumentation site in
// the pipeline; each record is a single relaxed load when disabled.
static OBS_SIM_TIME: ssim_obs::TimerStat = ssim_obs::TimerStat::new("tracesim.time");
static OBS_INSTRUCTIONS: ssim_obs::Counter = ssim_obs::Counter::new("tracesim.instructions");
static OBS_CYCLES: ssim_obs::Counter = ssim_obs::Counter::new("tracesim.cycles");
static OBS_WRONG_PATH_INJECTED: ssim_obs::Counter =
    ssim_obs::Counter::new("tracesim.wrong_path_injected");
static OBS_WRONG_PATH_SQUASHED: ssim_obs::Counter =
    ssim_obs::Counter::new("tracesim.wrong_path_squashed");
static OBS_FETCH_OCCUPANCY: ssim_obs::LogHistogram =
    ssim_obs::LogHistogram::new("tracesim.fetch_ifq_occupancy");
static OBS_DISPATCH_PER_CYCLE: ssim_obs::LogHistogram =
    ssim_obs::LogHistogram::new("tracesim.dispatch_per_cycle");
static OBS_ISSUE_OCCUPANCY: ssim_obs::LogHistogram =
    ssim_obs::LogHistogram::new("tracesim.issue_window_occupancy");
static OBS_RETIRE_PER_CYCLE: ssim_obs::LogHistogram =
    ssim_obs::LogHistogram::new("tracesim.retire_per_cycle");

/// Simulates a synthetic trace on the configured machine.
///
/// The simulator reuses the out-of-order backend of the
/// execution-driven simulator (`ssim_uarch::Core`) but, per §2.3 of the
/// paper:
///
/// * models **no caches and no branch predictor** — every locality
///   event is pre-assigned in the trace;
/// * on a pre-assigned **misprediction**, keeps fetching subsequent
///   synthetic instructions *as if they were from the incorrect path*
///   (resource contention), squashes them when the branch resolves at
///   writeback, rewinds and re-fetches them as the correct path;
/// * applies the configured memory latencies to the pre-assigned
///   L1/L2/TLB hit-miss flags of loads and instruction fetches;
/// * does **not** let wrong-path instructions touch the caches — their
///   miss flags are ignored while speculative (the paper calls this
///   out as the main difference from execution-driven simulation).
///
/// The returned [`SimResult`] reports zeroed cache statistics (there
/// are no caches) and branch statistics reconstructed from the trace
/// flags.
///
/// # Panics
///
/// Panics if the machine configuration is invalid or the pipeline
/// stops making forward progress.
pub fn simulate_trace(trace: &SyntheticTrace, cfg: &MachineConfig) -> SimResult {
    SimEngine::new().simulate(trace, cfg)
}

/// Generates and simulates in one fused pass: the compiled walk streams
/// instructions directly into the pipeline through a ring buffer, so no
/// [`SyntheticTrace`] is ever materialised.
///
/// The result — every field of [`SimResult`], bit for bit — equals
/// `simulate_trace(&sampler.generate(seed), cfg)`. Generation work is
/// attributed to the `tracesim.time` observability timer here (there is
/// no separate generation phase), so the `synth.time` timer records
/// nothing for fused runs; the `synth.walk_*` counters still do.
///
/// # Panics
///
/// Panics if the machine configuration is invalid or the pipeline
/// stops making forward progress.
pub fn simulate_fused(sampler: &CompiledSampler, seed: u64, cfg: &MachineConfig) -> SimResult {
    SimEngine::new().simulate_fused(sampler, seed, cfg)
}

/// Where the driver reads synthetic instructions from, addressed by
/// absolute trace position. Instructions travel as [`PackedInstr`]
/// words: fetch and dispatch test individual bit fields instead of
/// materialising a [`SyntheticInstr`] per event. `fetch_at` is allowed
/// to *produce* the instruction on demand (the fused path pumps the
/// compiled walk); `retain_from` promises that positions below `idx`
/// will never be fetched again (the rewind cursor can only move
/// forward), letting a streaming source recycle its storage.
trait InstrSource {
    fn fetch_at(&mut self, idx: usize) -> Option<PackedInstr>;
    fn retain_from(&mut self, idx: usize);
}

/// [`InstrSource`] over a trace pre-packed into words (see
/// [`SimEngine::simulate`]).
struct SliceSource<'t> {
    words: &'t [u64],
}

impl InstrSource for SliceSource<'_> {
    #[inline]
    fn fetch_at(&mut self, idx: usize) -> Option<PackedInstr> {
        self.words.get(idx).copied().map(PackedInstr)
    }
    #[inline]
    fn retain_from(&mut self, _idx: usize) {}
}

/// A power-of-two ring of [`PackedInstr`] words addressed by absolute
/// stream index — the fused engine's entire instruction storage.
///
/// `tail..head` is the retained window; the simulator keeps it no wider
/// than the mispredict rewind distance (bounded by IFQ + RUU size plus
/// one fetch group), so in steady state the ring never grows past a few
/// hundred slots and stays cache-resident. `get` masks the absolute
/// index instead of translating it, which keeps every driver-side
/// position (cursor, rewind point) a plain monotone integer.
#[derive(Debug, Default)]
struct InstrRing {
    buf: Vec<u64>,
    /// Absolute index of the oldest retained element.
    tail: usize,
    /// Absolute index one past the newest element.
    head: usize,
}

impl InstrRing {
    const INITIAL_CAPACITY: usize = 1024;

    fn reset(&mut self) {
        self.tail = 0;
        self.head = 0;
    }

    fn head(&self) -> usize {
        self.head
    }

    fn get(&self, idx: usize) -> u64 {
        debug_assert!(
            self.tail <= idx && idx < self.head,
            "ring read at {idx} outside retained window {}..{}",
            self.tail,
            self.head
        );
        self.buf[idx & (self.buf.len() - 1)]
    }

    fn push(&mut self, word: u64) {
        if self.head - self.tail == self.buf.len() {
            self.grow();
        }
        let mask = self.buf.len() - 1;
        self.buf[self.head & mask] = word;
        self.head += 1;
    }

    /// Doubles capacity, re-placing the live window under the new mask.
    fn grow(&mut self) {
        let old = std::mem::take(&mut self.buf);
        let new_len = (old.len() * 2).max(Self::INITIAL_CAPACITY);
        self.buf = vec![0u64; new_len];
        if !old.is_empty() {
            let (old_mask, new_mask) = (old.len() - 1, new_len - 1);
            for idx in self.tail..self.head {
                self.buf[idx & new_mask] = old[idx & old_mask];
            }
        }
    }

    /// Declares positions below `watermark` dead, freeing their slots.
    fn retain_from(&mut self, watermark: usize) {
        self.tail = self.tail.max(watermark.min(self.head));
    }
}

/// [`EmitSink`] writing packed words into the ring plus the sideband
/// producer-index bytes the dependency-retry probe reads.
///
/// The sideband `Vec` is full-length (one byte per emitted instruction,
/// never truncated): the probe looks up to [`crate::MAX_DEP_DISTANCE`]
/// positions back, which can reach below the ring's retained window.
struct RingSink<'r> {
    ring: &'r mut InstrRing,
    has_dest: &'r mut Vec<u8>,
}

impl EmitSink for RingSink<'_> {
    #[inline]
    fn len(&self) -> usize {
        self.has_dest.len()
    }
    #[inline]
    fn has_dest_at(&self, idx: usize) -> bool {
        self.has_dest[idx] != 0
    }
    #[inline]
    fn push(&mut self, instr: SyntheticInstr, has_dest: u8) {
        self.ring.push(PackedInstr::pack(&instr).0);
        self.has_dest.push(has_dest);
    }
}

/// [`InstrSource`] that pumps a compiled walk on demand: `fetch_at`
/// past the generated prefix advances the walk until the position
/// materialises (or the walk ends). Generation order is fixed by the
/// walk, so fetching "early" (the driver's end-of-trace probe) only
/// moves work forward — the RNG stream is untouched.
struct RingSource<'s, 'e> {
    gen: StreamGen<'s>,
    ring: &'e mut InstrRing,
    has_dest: &'e mut Vec<u8>,
}

impl InstrSource for RingSource<'_, '_> {
    fn fetch_at(&mut self, idx: usize) -> Option<PackedInstr> {
        while idx >= self.ring.head() {
            let mut sink = RingSink {
                ring: &mut *self.ring,
                has_dest: &mut *self.has_dest,
            };
            let more = self.gen.pump(&mut sink);
            // The final pump can both emit instructions and report the
            // walk done — check the head again before giving up.
            if !more && idx >= self.ring.head() {
                return None;
            }
        }
        Some(PackedInstr(self.ring.get(idx)))
    }
    #[inline]
    fn retain_from(&mut self, idx: usize) {
        self.ring.retain_from(idx);
    }
}

/// A reusable synthetic-simulation engine.
///
/// Owns every working buffer the simulator needs — the core's RUU
/// entry storage and timing wheel ([`CoreScratch`]) plus the fused
/// path's instruction ring and producer-index sideband — so repeated
/// [`SimEngine::simulate`] / [`SimEngine::simulate_fused`] calls
/// (design-space sweeps simulate thousands of points) allocate nothing
/// after warm-up. A fresh engine per call is exactly the free
/// functions' behaviour; reuse changes no results, only allocation
/// traffic.
#[derive(Debug, Default)]
pub struct SimEngine {
    scratch: CoreScratch,
    ring: InstrRing,
    has_dest: Vec<u8>,
    /// The unfused path's trace, pre-packed into the same word format
    /// the fused ring uses, so both paths share one driver currency.
    packed: Vec<u64>,
}

impl SimEngine {
    /// Creates an engine with empty working buffers.
    pub fn new() -> Self {
        Self::default()
    }

    /// Simulates a materialised trace (see [`simulate_trace`]).
    ///
    /// # Panics
    ///
    /// Panics if the machine configuration is invalid or the pipeline
    /// stops making forward progress.
    pub fn simulate(&mut self, trace: &SyntheticTrace, cfg: &MachineConfig) -> SimResult {
        let scratch = std::mem::take(&mut self.scratch);
        // One packing pass up front; the driver then reads plain words.
        // Hand-built traces may carry dependency distances outside the
        // generator's range — those clamp to `1..=MAX_DEP_DISTANCE`,
        // the range the wire format represents.
        self.packed.clear();
        self.packed.extend(
            trace
                .instrs()
                .iter()
                .map(|i| PackedInstr::pack_clamped(i).0),
        );
        let source = SliceSource {
            words: &self.packed,
        };
        let (result, scratch) = TraceSim::new(cfg, source, scratch).run();
        self.scratch = scratch;
        result
    }

    /// Generates and simulates in one fused pass (see
    /// [`simulate_fused`]).
    ///
    /// # Panics
    ///
    /// Panics if the machine configuration is invalid or the pipeline
    /// stops making forward progress.
    pub fn simulate_fused(
        &mut self,
        sampler: &CompiledSampler,
        seed: u64,
        cfg: &MachineConfig,
    ) -> SimResult {
        self.ring.reset();
        self.has_dest.clear();
        let scratch = std::mem::take(&mut self.scratch);
        let source = RingSource {
            gen: StreamGen::new(sampler, seed),
            ring: &mut self.ring,
            has_dest: &mut self.has_dest,
        };
        let (result, scratch) = TraceSim::new(cfg, source, scratch).run();
        self.scratch = scratch;
        result
    }
}

struct TraceSim<'a, S: InstrSource> {
    cfg: &'a MachineConfig,
    source: S,
    cursor: usize,
    core: Core<'a>,
    /// Next stream position to dispatch. The IFQ holds exactly the
    /// positions `ifq_head..cursor`: fetch appends strictly sequential
    /// positions and a mispredict recovery empties the queue before
    /// rewinding, so the queue is always one contiguous range and two
    /// cursors replace any per-entry storage. Everything dispatch needs
    /// is re-derived from the source by position (see
    /// [`TraceSim::dispatch`]).
    ifq_head: usize,
    ifq_meter: OccupancyMeter,
    branch_stats: ssim_uarch::BranchStats,
    fetch_stall_until: u64,
    /// `Some(rewind_cursor)` while fetching the wrong path: the cursor
    /// to resume from (the instruction right after the mispredicted
    /// branch).
    wrong_path: Option<usize>,
    pending_seq: Option<u64>,
}

impl<'a, S: InstrSource> TraceSim<'a, S> {
    fn new(cfg: &'a MachineConfig, source: S, scratch: CoreScratch) -> Self {
        TraceSim {
            cfg,
            source,
            cursor: 0,
            core: Core::with_scratch(cfg, scratch),
            ifq_head: 0,
            ifq_meter: OccupancyMeter::new(),
            branch_stats: ssim_uarch::BranchStats::default(),
            fetch_stall_until: 0,
            wrong_path: None,
            pending_seq: None,
        }
    }

    /// Current IFQ occupancy (the two-cursor queue's length).
    #[inline]
    fn ifq_len(&self) -> usize {
        self.cursor - self.ifq_head
    }

    fn run(mut self) -> (SimResult, CoreScratch) {
        let _span = OBS_SIM_TIME.span();
        let mut last_progress = (0u64, 0u64);
        loop {
            let committed = self.core.committed();
            // Done when the machine has fully drained and the source is
            // exhausted. (A trace ending in a mispredict never stalls
            // here: resolution and the rewind both happen inside one
            // `cycle()` call, so `wrong_path` is `None` again by the
            // time the drain check can pass.)
            if self.wrong_path.is_none()
                && self.ifq_len() == 0
                && self.core.is_empty()
                && self.source.fetch_at(self.cursor).is_none()
            {
                break;
            }
            if let Some(seq) = self.core.cycle() {
                self.recover(seq);
            }
            let dispatched = self.dispatch();
            let cursor_before = self.cursor;
            self.fetch();
            // Everything below both the rewind point and the dispatch
            // cursor can never be read again (dispatch re-reads the
            // source at `ifq_head..cursor`, and the rewind point can sit
            // on either side of `ifq_head` while the mispredicted branch
            // waits in the queue).
            let watermark = self
                .wrong_path
                .map_or(self.ifq_head, |rw| rw.min(self.ifq_head));
            self.source.retain_from(watermark);
            OBS_DISPATCH_PER_CYCLE.record(dispatched);
            OBS_ISSUE_OCCUPANCY.record(self.core.in_flight() as u64);
            self.core.advance();
            OBS_RETIRE_PER_CYCLE.record(self.core.committed() - committed);
            self.skip_quiet_cycles(dispatched, cursor_before);

            let now = self.core.now();
            if committed > last_progress.1 {
                last_progress = (now, committed);
            }
            assert!(
                now - last_progress.0 < 500_000,
                "synthetic pipeline deadlock at cycle {now} (committed {committed})"
            );
        }
        let cycles = self.core.now().max(1);
        let instructions = self.core.committed();
        OBS_CYCLES.add(cycles);
        OBS_INSTRUCTIONS.add(instructions);
        let (mut activity, ruu, lsq, scratch) = self.core.finish_reuse();
        activity.set_cycles(cycles);
        let result = SimResult {
            instructions,
            cycles,
            ruu_occupancy: ruu.mean(),
            lsq_occupancy: lsq.mean(),
            ifq_occupancy: self.ifq_meter.mean(),
            branch: self.branch_stats,
            cache: Default::default(),
            activity,
        };
        (result, scratch)
    }

    /// Fast-forwards over cycles in which provably nothing can happen.
    ///
    /// The cycle just completed must have been fully idle: the core
    /// reports quiet (no writeback, issue or commit — see
    /// [`Core::quiet_until`]), dispatch moved nothing, and fetch made no
    /// progress. Until the core's bound (or the end of a timed fetch
    /// stall, whichever is sooner) every pipeline stage is blocked for
    /// the same reason it was blocked this cycle, and an unskipped run
    /// would idle through the same cycles touching nothing — so only the
    /// per-cycle occupancy samples and observability histograms need to
    /// be replayed, in one batched step each. Results are bit-identical.
    fn skip_quiet_cycles(&mut self, dispatched: u64, cursor_before: usize) {
        if dispatched != 0 || self.cursor != cursor_before {
            return;
        }
        let Some(bound) = self.core.quiet_until() else {
            return;
        };
        // `advance` already ran: the cycle that produced the quiet
        // verdict is `now - 1`.
        let now = self.core.now();
        let mut wake = bound;
        if now - 1 < self.fetch_stall_until {
            // Fetch wakes on a timer, not a core event.
            wake = wake.min(self.fetch_stall_until);
        }
        if wake == u64::MAX {
            // Nothing pending anywhere: the machine is drained and the
            // main loop's termination check is about to fire.
            return;
        }
        let k = wake.saturating_sub(now);
        if k == 0 {
            return;
        }
        self.core.skip_quiet(k);
        self.ifq_meter.sample_n(self.ifq_len() as u64, k);
        OBS_FETCH_OCCUPANCY.record_n(self.ifq_len() as u64, k);
        OBS_DISPATCH_PER_CYCLE.record_n(0, k);
        OBS_ISSUE_OCCUPANCY.record_n(self.core.in_flight() as u64, k);
        OBS_RETIRE_PER_CYCLE.record_n(0, k);
    }

    fn recover(&mut self, seq: u64) {
        debug_assert_eq!(self.pending_seq, Some(seq));
        self.pending_seq = None;
        let squashed = self.core.squash_after(seq) + self.ifq_len();
        OBS_WRONG_PATH_SQUASHED.add(squashed as u64);
        self.cursor = self
            .wrong_path
            .take()
            .expect("resolution implies wrong-path mode");
        // Emptying the IFQ keeps it a contiguous range across the
        // rewind: the discarded wrong-path positions are re-fetched as
        // the correct path from the new cursor.
        self.ifq_head = self.cursor;
        self.fetch_stall_until = self.core.now() + self.cfg.redirect_latency;
    }

    /// Returns the number of instructions dispatched this cycle.
    ///
    /// Dispatch re-reads each instruction from the source at `ifq_head`
    /// and rebuilds its [`DispatchInstr`] on the spot — everything the
    /// fetch stage knew is a pure function of the instruction's flags
    /// and its stream position: an entry is wrong-path iff it sits at or
    /// past the rewind cursor (fetch turns wrong-path mode on for the
    /// position *after* the mispredicted branch and recovery empties the
    /// queue before turning it off, so fetch-time and dispatch-time
    /// status agree), and the mode-triggering branch itself is exactly
    /// the entry just below the rewind cursor.
    fn dispatch(&mut self) -> u64 {
        let mut dispatched = 0;
        while self.ifq_head < self.cursor {
            if self.core.dispatch_blocked() {
                break;
            }
            let pos = self.ifq_head;
            let w = self
                .source
                .fetch_at(pos)
                .expect("IFQ positions were fetched");
            let wrong_path = self.wrong_path.is_some_and(|rw| pos >= rw);
            let mispredict_marker = self.wrong_path == Some(pos + 1);
            let class = w.class();
            let mem = match (class, w.dmem(), wrong_path) {
                (ssim_isa::InstrClass::Load, Some(f), false) => Some(MemKind::Load {
                    latency: self.load_latency(f),
                }),
                // Wrong-path loads (or flag-less loads) behave as L1 hits.
                (ssim_isa::InstrClass::Load, _, _) => Some(MemKind::Load {
                    latency: 1 + self.cfg.lat.l1d_hit,
                }),
                (ssim_isa::InstrClass::Store, _, _) => Some(MemKind::Store),
                _ => None,
            };
            let di = DispatchInstr {
                class: Some(class),
                srcs: [None, None],
                dep_dists: w.dep_dists(),
                dest: None,
                mem,
                mem_dep_addr: None,
                branch: if mispredict_marker {
                    BranchResolution::Mispredict
                } else {
                    BranchResolution::None
                },
                wrong_path,
                anti_dep_dists: w.anti_dep_dists(),
            };
            match self.core.try_dispatch(di) {
                DispatchOutcome::Dispatched(seq) => {
                    dispatched += 1;
                    self.ifq_head += 1;
                    if w.branch().is_some() && !wrong_path {
                        // The synthetic machine still charges predictor
                        // update activity at dispatch.
                        let now = self.core.now();
                        self.core.activity_mut().record(Unit::Bpred, now);
                    }
                    if mispredict_marker {
                        self.pending_seq = Some(seq);
                    }
                }
                DispatchOutcome::Stalled => break,
            }
        }
        dispatched
    }

    /// Total load latency for pre-assigned flags.
    fn load_latency(&self, f: crate::DataFlags) -> u64 {
        let lat = &self.cfg.lat;
        let mut l = if f.l1_miss {
            if f.l2_miss {
                lat.mem
            } else {
                lat.l2_hit
            }
        } else {
            lat.l1d_hit
        };
        if f.tlb_miss {
            l += lat.tlb_miss;
        }
        1 + l // address generation
    }

    fn fetch(&mut self) {
        let now = self.core.now();
        if now < self.fetch_stall_until {
            self.ifq_meter.sample(self.ifq_len() as u64);
            OBS_FETCH_OCCUPANCY.record(self.ifq_len() as u64);
            return;
        }
        let mut budget = self.cfg.fetch_width();
        while budget > 0 && self.ifq_len() < self.cfg.ifq_size {
            let Some(w) = self.source.fetch_at(self.cursor) else {
                break;
            };
            self.cursor += 1;
            let on_wrong_path = self.wrong_path.is_some();
            let stop = self.fetch_one(w, on_wrong_path);
            budget -= 1;
            if stop {
                break;
            }
        }
        self.ifq_meter.sample(self.ifq_len() as u64);
        OBS_FETCH_OCCUPANCY.record(self.ifq_len() as u64);
    }

    /// Fetches one synthetic instruction (the position just appended to
    /// the IFQ range by the caller); returns `true` if fetch stops for
    /// this cycle. Only stall timing, statistics and activity accounting
    /// happen here — dispatch rebuilds the instruction's pipeline form
    /// from the source when its turn comes.
    fn fetch_one(&mut self, w: PackedInstr, wrong_path: bool) -> bool {
        let now = self.core.now();
        self.core.activity_mut().record(Unit::Fetch, now);
        if wrong_path {
            OBS_WRONG_PATH_INJECTED.inc();
        }
        let mut stop = false;

        // Instruction-fetch locality: the synthetic simulator models no
        // caches, but the pre-assigned flags stall fetch with the
        // configured latencies (§2.3). Wrong-path instructions do not
        // access the caches, so their flags are ignored.
        if !wrong_path {
            self.core.activity_mut().record(Unit::ICache, now);
            self.core.activity_mut().record(Unit::Itlb, now);
            let mut stall = 0;
            if w.l1i_miss() {
                self.core.activity_mut().record(Unit::L2, now);
                stall += if w.l2i_miss() {
                    self.cfg.lat.mem
                } else {
                    self.cfg.lat.l2_hit
                };
            }
            if w.itlb_miss() {
                stall += self.cfg.lat.tlb_miss;
            }
            if stall > 0 {
                self.fetch_stall_until = now + stall;
                stop = true;
            }
            // Correct-path loads touch the data-side structures at fetch.
            if let (ssim_isa::InstrClass::Load, Some(f)) = (w.class(), w.dmem()) {
                if f.l1_miss {
                    self.core.activity_mut().record(Unit::L2, now);
                }
                self.core.activity_mut().record(Unit::Dtlb, now);
            }
        }

        if let Some(b) = w.branch() {
            self.core.activity_mut().record(Unit::Bpred, now);
            if !wrong_path {
                self.branch_stats.branches += 1;
                if b.taken {
                    self.branch_stats.taken += 1;
                }
                match b.outcome {
                    SyntheticOutcome::Correct => {
                        self.branch_stats.correct += 1;
                        stop |= b.taken;
                    }
                    SyntheticOutcome::FetchRedirect => {
                        self.branch_stats.redirects += 1;
                        self.fetch_stall_until =
                            self.fetch_stall_until.max(now) + self.cfg.fetch_redirect_penalty;
                        stop = true;
                    }
                    SyntheticOutcome::Mispredict => {
                        self.branch_stats.mispredicts += 1;
                        // Subsequent trace instructions fill the pipeline
                        // as the wrong path; remember where to rewind.
                        // Dispatch recognises this branch as the resolver
                        // by its position just below the rewind cursor.
                        self.wrong_path = Some(self.cursor);
                        stop = true;
                    }
                }
            } else if b.taken {
                // Wrong-path taken branches still end the fetch group.
                stop = true;
            }
        }

        stop
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{BranchFlags, DataFlags};
    use ssim_isa::InstrClass;

    /// Hand-builds a trace (the generator is exercised elsewhere).
    fn trace_of(instrs: Vec<SyntheticInstr>) -> SyntheticTrace {
        let mut t = SyntheticTrace::default();
        for i in instrs {
            t.push(i);
        }
        t
    }

    fn alu() -> SyntheticInstr {
        SyntheticInstr {
            class: InstrClass::IntAlu,
            dep: [None, None],
            l1i_miss: false,
            l2i_miss: false,
            itlb_miss: false,
            dmem: None,
            branch: None,
            anti_dep: [None, None],
        }
    }

    fn load(flags: DataFlags) -> SyntheticInstr {
        SyntheticInstr {
            class: InstrClass::Load,
            dmem: Some(flags),
            ..alu()
        }
    }

    fn branch(outcome: SyntheticOutcome) -> SyntheticInstr {
        SyntheticInstr {
            class: InstrClass::IntCondBranch,
            branch: Some(BranchFlags {
                taken: true,
                outcome,
            }),
            ..alu()
        }
    }

    #[test]
    fn independent_alus_reach_high_ipc() {
        let t = trace_of(vec![alu(); 50_000]);
        let r = simulate_trace(&t, &MachineConfig::baseline());
        assert_eq!(r.instructions, 50_000);
        assert!(
            r.ipc() > 6.0,
            "8-wide machine on independent ALUs, IPC = {}",
            r.ipc()
        );
    }

    #[test]
    fn dependence_chain_limits_ipc_to_one() {
        let mut i = alu();
        i.dep = [Some(1), None];
        let t = trace_of(vec![i; 20_000]);
        let r = simulate_trace(&t, &MachineConfig::baseline());
        assert!(
            r.ipc() < 1.1,
            "serial chain can't exceed 1 IPC, got {}",
            r.ipc()
        );
    }

    #[test]
    fn memory_misses_slow_the_machine() {
        let hit = trace_of(vec![load(DataFlags::default()); 10_000]);
        let miss = trace_of(vec![
            load(DataFlags {
                l1_miss: true,
                l2_miss: true,
                tlb_miss: false
            });
            10_000
        ]);
        let cfg = MachineConfig::baseline();
        let fast = simulate_trace(&hit, &cfg);
        let slow = simulate_trace(&miss, &cfg);
        assert!(
            slow.cycles > fast.cycles,
            "L2 misses must cost cycles: {} vs {}",
            slow.cycles,
            fast.cycles
        );
    }

    #[test]
    fn mispredicts_cost_cycles_and_rewind_correctly() {
        let mut correct_path = Vec::new();
        let mut mispredicted = Vec::new();
        for _ in 0..2_000 {
            for _ in 0..4 {
                correct_path.push(alu());
                mispredicted.push(alu());
            }
            correct_path.push(branch(SyntheticOutcome::Correct));
            mispredicted.push(branch(SyntheticOutcome::Mispredict));
        }
        let cfg = MachineConfig::baseline();
        let good = simulate_trace(&trace_of(correct_path), &cfg);
        let bad = simulate_trace(&trace_of(mispredicted), &cfg);
        assert_eq!(
            good.instructions, bad.instructions,
            "every instruction still commits"
        );
        assert!(
            bad.cycles as f64 > good.cycles as f64 * 1.5,
            "mispredicts must hurt: {} vs {}",
            bad.cycles,
            good.cycles
        );
        assert_eq!(bad.branch.mispredicts, 2_000);
    }

    #[test]
    fn fetch_redirects_cost_less_than_mispredicts() {
        let build = |outcome| {
            let mut v = Vec::new();
            for _ in 0..2_000 {
                for _ in 0..4 {
                    v.push(alu());
                }
                v.push(branch(outcome));
            }
            trace_of(v)
        };
        let cfg = MachineConfig::baseline();
        let correct = simulate_trace(&build(SyntheticOutcome::Correct), &cfg);
        let redirect = simulate_trace(&build(SyntheticOutcome::FetchRedirect), &cfg);
        let mispredict = simulate_trace(&build(SyntheticOutcome::Mispredict), &cfg);
        assert!(correct.cycles <= redirect.cycles);
        assert!(redirect.cycles < mispredict.cycles);
    }

    #[test]
    fn icache_miss_flags_stall_fetch() {
        let mut missy = alu();
        missy.l1i_miss = true;
        let clean = trace_of(vec![alu(); 5_000]);
        let dirty = trace_of(
            (0..5_000)
                .map(|i| if i % 10 == 0 { missy } else { alu() })
                .collect(),
        );
        let cfg = MachineConfig::baseline();
        let fast = simulate_trace(&clean, &cfg);
        let slow = simulate_trace(&dirty, &cfg);
        assert!(
            slow.cycles > fast.cycles * 3,
            "{} vs {}",
            slow.cycles,
            fast.cycles
        );
    }

    #[test]
    fn empty_trace_is_fine() {
        let r = simulate_trace(&SyntheticTrace::default(), &MachineConfig::baseline());
        assert_eq!(r.instructions, 0);
    }

    #[test]
    fn ring_grows_and_masks_absolute_indices() {
        let mut ring = InstrRing::default();
        for i in 0..5_000u64 {
            ring.push(i);
        }
        assert_eq!(ring.head(), 5_000);
        for i in 0..5_000 {
            assert_eq!(ring.get(i), i as u64);
        }
        // Retention frees slots: pushing past capacity reuses them
        // without growing once the live window stays narrow.
        ring.retain_from(4_990);
        let cap_before = ring.buf.len();
        for i in 5_000..200_000u64 {
            ring.push(i);
            ring.retain_from(i as usize - 8);
            assert_eq!(ring.get(i as usize), i);
            assert_eq!(ring.get(i as usize - 8), i - 8);
        }
        assert_eq!(ring.buf.len(), cap_before, "narrow window must not grow");
        // Backwards watermarks never shrink the retained window.
        let tail = ring.tail;
        ring.retain_from(0);
        assert_eq!(ring.tail, tail);
    }

    #[test]
    fn engine_reuse_matches_fresh_engines() {
        let mut mixed = Vec::new();
        for i in 0..3_000 {
            mixed.push(alu());
            mixed.push(load(DataFlags {
                l1_miss: i % 7 == 0,
                l2_miss: i % 21 == 0,
                tlb_miss: false,
            }));
            mixed.push(branch(if i % 5 == 0 {
                SyntheticOutcome::Mispredict
            } else {
                SyntheticOutcome::Correct
            }));
        }
        let traces = [
            trace_of(mixed),
            trace_of(vec![alu(); 10_000]),
            SyntheticTrace::default(),
        ];
        let cfgs = [
            MachineConfig::baseline(),
            MachineConfig::baseline().with_width(2),
        ];
        let mut engine = SimEngine::new();
        for cfg in &cfgs {
            for t in &traces {
                assert_eq!(engine.simulate(t, cfg), simulate_trace(t, cfg));
            }
        }
    }
}
