//! Synthetic trace simulation (§2.3 of the paper).

use crate::synth::{SyntheticInstr, SyntheticOutcome, SyntheticTrace};
use ssim_uarch::{
    BranchResolution, Core, DispatchInstr, DispatchOutcome, MachineConfig, MemKind, OccupancyMeter,
    SimResult, Unit,
};
use std::collections::VecDeque;

// Observability (all no-ops unless SSIM_METRICS enables recording).
// The per-cycle histograms are the one hot-path instrumentation site in
// the pipeline; each record is a single relaxed load when disabled.
static OBS_SIM_TIME: ssim_obs::TimerStat = ssim_obs::TimerStat::new("tracesim.time");
static OBS_INSTRUCTIONS: ssim_obs::Counter = ssim_obs::Counter::new("tracesim.instructions");
static OBS_CYCLES: ssim_obs::Counter = ssim_obs::Counter::new("tracesim.cycles");
static OBS_WRONG_PATH_INJECTED: ssim_obs::Counter =
    ssim_obs::Counter::new("tracesim.wrong_path_injected");
static OBS_WRONG_PATH_SQUASHED: ssim_obs::Counter =
    ssim_obs::Counter::new("tracesim.wrong_path_squashed");
static OBS_FETCH_OCCUPANCY: ssim_obs::LogHistogram =
    ssim_obs::LogHistogram::new("tracesim.fetch_ifq_occupancy");
static OBS_DISPATCH_PER_CYCLE: ssim_obs::LogHistogram =
    ssim_obs::LogHistogram::new("tracesim.dispatch_per_cycle");
static OBS_ISSUE_OCCUPANCY: ssim_obs::LogHistogram =
    ssim_obs::LogHistogram::new("tracesim.issue_window_occupancy");
static OBS_RETIRE_PER_CYCLE: ssim_obs::LogHistogram =
    ssim_obs::LogHistogram::new("tracesim.retire_per_cycle");

/// Simulates a synthetic trace on the configured machine.
///
/// The simulator reuses the out-of-order backend of the
/// execution-driven simulator (`ssim_uarch::Core`) but, per §2.3 of the
/// paper:
///
/// * models **no caches and no branch predictor** — every locality
///   event is pre-assigned in the trace;
/// * on a pre-assigned **misprediction**, keeps fetching subsequent
///   synthetic instructions *as if they were from the incorrect path*
///   (resource contention), squashes them when the branch resolves at
///   writeback, rewinds and re-fetches them as the correct path;
/// * applies the configured memory latencies to the pre-assigned
///   L1/L2/TLB hit-miss flags of loads and instruction fetches;
/// * does **not** let wrong-path instructions touch the caches — their
///   miss flags are ignored while speculative (the paper calls this
///   out as the main difference from execution-driven simulation).
///
/// The returned [`SimResult`] reports zeroed cache statistics (there
/// are no caches) and branch statistics reconstructed from the trace
/// flags.
///
/// # Panics
///
/// Panics if the machine configuration is invalid or the pipeline
/// stops making forward progress.
pub fn simulate_trace(trace: &SyntheticTrace, cfg: &MachineConfig) -> SimResult {
    cfg.validate();
    TraceSim::new(trace, cfg).run()
}

#[derive(Debug, Clone, Copy)]
struct IfqEntry {
    di: DispatchInstr,
    is_branch: bool,
    mispredict_marker: bool,
}

struct TraceSim<'a, 't> {
    cfg: &'a MachineConfig,
    trace: &'t [SyntheticInstr],
    cursor: usize,
    core: Core<'a>,
    ifq: VecDeque<IfqEntry>,
    ifq_meter: OccupancyMeter,
    branch_stats: ssim_uarch::BranchStats,
    fetch_stall_until: u64,
    /// `Some(rewind_cursor)` while fetching the wrong path: the cursor
    /// to resume from (the instruction right after the mispredicted
    /// branch).
    wrong_path: Option<usize>,
    pending_seq: Option<u64>,
}

impl<'a, 't> TraceSim<'a, 't> {
    fn new(trace: &'t SyntheticTrace, cfg: &'a MachineConfig) -> Self {
        TraceSim {
            cfg,
            trace: trace.instrs(),
            cursor: 0,
            core: Core::new(cfg),
            ifq: VecDeque::with_capacity(cfg.ifq_size),
            ifq_meter: OccupancyMeter::new(),
            branch_stats: ssim_uarch::BranchStats::default(),
            fetch_stall_until: 0,
            wrong_path: None,
            pending_seq: None,
        }
    }

    fn run(mut self) -> SimResult {
        let _span = OBS_SIM_TIME.span();
        let target = self.trace.len() as u64;
        let mut last_progress = (0u64, 0u64);
        loop {
            let committed = self.core.committed();
            if committed >= target
                || (self.cursor >= self.trace.len()
                    && self.core.is_empty()
                    && self.ifq.is_empty()
                    && self.wrong_path.is_none())
            {
                break;
            }
            if let Some(seq) = self.core.cycle() {
                self.recover(seq);
            }
            let dispatched = self.dispatch();
            self.fetch();
            OBS_DISPATCH_PER_CYCLE.record(dispatched);
            OBS_ISSUE_OCCUPANCY.record(self.core.in_flight() as u64);
            self.core.advance();
            OBS_RETIRE_PER_CYCLE.record(self.core.committed() - committed);

            let now = self.core.now();
            if committed > last_progress.1 {
                last_progress = (now, committed);
            }
            assert!(
                now - last_progress.0 < 500_000,
                "synthetic pipeline deadlock at cycle {now} (committed {committed})"
            );
        }
        let cycles = self.core.now().max(1);
        let instructions = self.core.committed();
        OBS_CYCLES.add(cycles);
        OBS_INSTRUCTIONS.add(instructions);
        let (mut activity, ruu, lsq) = self.core.finish();
        activity.set_cycles(cycles);
        SimResult {
            instructions,
            cycles,
            ruu_occupancy: ruu.mean(),
            lsq_occupancy: lsq.mean(),
            ifq_occupancy: self.ifq_meter.mean(),
            branch: self.branch_stats,
            cache: Default::default(),
            activity,
        }
    }

    fn recover(&mut self, seq: u64) {
        debug_assert_eq!(self.pending_seq, Some(seq));
        self.pending_seq = None;
        let squashed = self.core.squash_after(seq) + self.ifq.len();
        OBS_WRONG_PATH_SQUASHED.add(squashed as u64);
        self.ifq.clear();
        self.cursor = self
            .wrong_path
            .take()
            .expect("resolution implies wrong-path mode");
        self.fetch_stall_until = self.core.now() + self.cfg.redirect_latency;
    }

    /// Returns the number of instructions dispatched this cycle.
    fn dispatch(&mut self) -> u64 {
        let mut dispatched = 0;
        while let Some(entry) = self.ifq.front() {
            match self.core.try_dispatch(entry.di) {
                DispatchOutcome::Dispatched(seq) => {
                    dispatched += 1;
                    let entry = self.ifq.pop_front().expect("front exists");
                    if entry.is_branch && !entry.di.wrong_path {
                        // The synthetic machine still charges predictor
                        // update activity at dispatch.
                        let now = self.core.now();
                        self.core.activity_mut().record(Unit::Bpred, now);
                    }
                    if entry.mispredict_marker {
                        self.pending_seq = Some(seq);
                    }
                }
                DispatchOutcome::Stalled => break,
            }
        }
        dispatched
    }

    /// Total load latency for pre-assigned flags.
    fn load_latency(&self, f: crate::DataFlags) -> u64 {
        let lat = &self.cfg.lat;
        let mut l = if f.l1_miss {
            if f.l2_miss {
                lat.mem
            } else {
                lat.l2_hit
            }
        } else {
            lat.l1d_hit
        };
        if f.tlb_miss {
            l += lat.tlb_miss;
        }
        1 + l // address generation
    }

    fn fetch(&mut self) {
        let now = self.core.now();
        if now < self.fetch_stall_until {
            self.ifq_meter.sample(self.ifq.len() as u64);
            OBS_FETCH_OCCUPANCY.record(self.ifq.len() as u64);
            return;
        }
        let mut budget = self.cfg.fetch_width();
        while budget > 0 && self.ifq.len() < self.cfg.ifq_size {
            let Some(instr) = self.trace.get(self.cursor).copied() else {
                break;
            };
            self.cursor += 1;
            let on_wrong_path = self.wrong_path.is_some();
            let stop = self.fetch_one(&instr, on_wrong_path);
            budget -= 1;
            if stop {
                break;
            }
        }
        self.ifq_meter.sample(self.ifq.len() as u64);
        OBS_FETCH_OCCUPANCY.record(self.ifq.len() as u64);
    }

    /// Fetches one synthetic instruction; returns `true` if fetch stops
    /// for this cycle.
    fn fetch_one(&mut self, instr: &SyntheticInstr, wrong_path: bool) -> bool {
        let now = self.core.now();
        self.core.activity_mut().record(Unit::Fetch, now);
        if wrong_path {
            OBS_WRONG_PATH_INJECTED.inc();
        }
        let mut stop = false;

        // Instruction-fetch locality: the synthetic simulator models no
        // caches, but the pre-assigned flags stall fetch with the
        // configured latencies (§2.3). Wrong-path instructions do not
        // access the caches, so their flags are ignored.
        if !wrong_path {
            self.core.activity_mut().record(Unit::ICache, now);
            self.core.activity_mut().record(Unit::Itlb, now);
            let mut stall = 0;
            if instr.l1i_miss {
                self.core.activity_mut().record(Unit::L2, now);
                stall += if instr.l2i_miss {
                    self.cfg.lat.mem
                } else {
                    self.cfg.lat.l2_hit
                };
            }
            if instr.itlb_miss {
                stall += self.cfg.lat.tlb_miss;
            }
            if stall > 0 {
                self.fetch_stall_until = now + stall;
                stop = true;
            }
        }

        // Memory behaviour.
        let mem = match (instr.class, instr.dmem, wrong_path) {
            (ssim_isa::InstrClass::Load, Some(f), false) => {
                if f.l1_miss {
                    self.core.activity_mut().record(Unit::L2, now);
                }
                self.core.activity_mut().record(Unit::Dtlb, now);
                Some(MemKind::Load {
                    latency: self.load_latency(f),
                })
            }
            (ssim_isa::InstrClass::Load, _, _) => {
                // Wrong-path loads (or flag-less loads) behave as L1 hits.
                Some(MemKind::Load {
                    latency: 1 + self.cfg.lat.l1d_hit,
                })
            }
            (ssim_isa::InstrClass::Store, _, _) => Some(MemKind::Store),
            _ => None,
        };

        let mut di = DispatchInstr {
            class: Some(instr.class),
            srcs: [None, None],
            dep_dists: instr.dep,
            dest: None,
            mem,
            mem_dep_addr: None,
            branch: BranchResolution::None,
            wrong_path,
            anti_dep_dists: instr.anti_dep,
        };

        let mut mispredict_marker = false;
        let is_branch = instr.branch.is_some();
        if let Some(b) = instr.branch {
            self.core.activity_mut().record(Unit::Bpred, now);
            if !wrong_path {
                self.branch_stats.branches += 1;
                if b.taken {
                    self.branch_stats.taken += 1;
                }
                match b.outcome {
                    SyntheticOutcome::Correct => {
                        self.branch_stats.correct += 1;
                        stop |= b.taken;
                    }
                    SyntheticOutcome::FetchRedirect => {
                        self.branch_stats.redirects += 1;
                        self.fetch_stall_until =
                            self.fetch_stall_until.max(now) + self.cfg.fetch_redirect_penalty;
                        stop = true;
                    }
                    SyntheticOutcome::Mispredict => {
                        self.branch_stats.mispredicts += 1;
                        di.branch = BranchResolution::Mispredict;
                        mispredict_marker = true;
                        // Subsequent trace instructions fill the pipeline
                        // as the wrong path; remember where to rewind.
                        self.wrong_path = Some(self.cursor);
                        stop = true;
                    }
                }
            } else if b.taken {
                // Wrong-path taken branches still end the fetch group.
                stop = true;
            }
        }

        self.ifq.push_back(IfqEntry {
            di,
            is_branch,
            mispredict_marker,
        });
        stop
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{BranchFlags, DataFlags};
    use ssim_isa::InstrClass;

    /// Hand-builds a trace (the generator is exercised elsewhere).
    fn trace_of(instrs: Vec<SyntheticInstr>) -> SyntheticTrace {
        let mut t = SyntheticTrace::default();
        for i in instrs {
            t.push(i);
        }
        t
    }

    fn alu() -> SyntheticInstr {
        SyntheticInstr {
            class: InstrClass::IntAlu,
            dep: [None, None],
            l1i_miss: false,
            l2i_miss: false,
            itlb_miss: false,
            dmem: None,
            branch: None,
            anti_dep: [None, None],
        }
    }

    fn load(flags: DataFlags) -> SyntheticInstr {
        SyntheticInstr {
            class: InstrClass::Load,
            dmem: Some(flags),
            ..alu()
        }
    }

    fn branch(outcome: SyntheticOutcome) -> SyntheticInstr {
        SyntheticInstr {
            class: InstrClass::IntCondBranch,
            branch: Some(BranchFlags {
                taken: true,
                outcome,
            }),
            ..alu()
        }
    }

    #[test]
    fn independent_alus_reach_high_ipc() {
        let t = trace_of(vec![alu(); 50_000]);
        let r = simulate_trace(&t, &MachineConfig::baseline());
        assert_eq!(r.instructions, 50_000);
        assert!(
            r.ipc() > 6.0,
            "8-wide machine on independent ALUs, IPC = {}",
            r.ipc()
        );
    }

    #[test]
    fn dependence_chain_limits_ipc_to_one() {
        let mut i = alu();
        i.dep = [Some(1), None];
        let t = trace_of(vec![i; 20_000]);
        let r = simulate_trace(&t, &MachineConfig::baseline());
        assert!(
            r.ipc() < 1.1,
            "serial chain can't exceed 1 IPC, got {}",
            r.ipc()
        );
    }

    #[test]
    fn memory_misses_slow_the_machine() {
        let hit = trace_of(vec![load(DataFlags::default()); 10_000]);
        let miss = trace_of(vec![
            load(DataFlags {
                l1_miss: true,
                l2_miss: true,
                tlb_miss: false
            });
            10_000
        ]);
        let cfg = MachineConfig::baseline();
        let fast = simulate_trace(&hit, &cfg);
        let slow = simulate_trace(&miss, &cfg);
        assert!(
            slow.cycles > fast.cycles,
            "L2 misses must cost cycles: {} vs {}",
            slow.cycles,
            fast.cycles
        );
    }

    #[test]
    fn mispredicts_cost_cycles_and_rewind_correctly() {
        let mut correct_path = Vec::new();
        let mut mispredicted = Vec::new();
        for _ in 0..2_000 {
            for _ in 0..4 {
                correct_path.push(alu());
                mispredicted.push(alu());
            }
            correct_path.push(branch(SyntheticOutcome::Correct));
            mispredicted.push(branch(SyntheticOutcome::Mispredict));
        }
        let cfg = MachineConfig::baseline();
        let good = simulate_trace(&trace_of(correct_path), &cfg);
        let bad = simulate_trace(&trace_of(mispredicted), &cfg);
        assert_eq!(
            good.instructions, bad.instructions,
            "every instruction still commits"
        );
        assert!(
            bad.cycles as f64 > good.cycles as f64 * 1.5,
            "mispredicts must hurt: {} vs {}",
            bad.cycles,
            good.cycles
        );
        assert_eq!(bad.branch.mispredicts, 2_000);
    }

    #[test]
    fn fetch_redirects_cost_less_than_mispredicts() {
        let build = |outcome| {
            let mut v = Vec::new();
            for _ in 0..2_000 {
                for _ in 0..4 {
                    v.push(alu());
                }
                v.push(branch(outcome));
            }
            trace_of(v)
        };
        let cfg = MachineConfig::baseline();
        let correct = simulate_trace(&build(SyntheticOutcome::Correct), &cfg);
        let redirect = simulate_trace(&build(SyntheticOutcome::FetchRedirect), &cfg);
        let mispredict = simulate_trace(&build(SyntheticOutcome::Mispredict), &cfg);
        assert!(correct.cycles <= redirect.cycles);
        assert!(redirect.cycles < mispredict.cycles);
    }

    #[test]
    fn icache_miss_flags_stall_fetch() {
        let mut missy = alu();
        missy.l1i_miss = true;
        let clean = trace_of(vec![alu(); 5_000]);
        let dirty = trace_of(
            (0..5_000)
                .map(|i| if i % 10 == 0 { missy } else { alu() })
                .collect(),
        );
        let cfg = MachineConfig::baseline();
        let fast = simulate_trace(&clean, &cfg);
        let slow = simulate_trace(&dirty, &cfg);
        assert!(
            slow.cycles > fast.cycles * 3,
            "{} vs {}",
            slow.cycles,
            fast.cycles
        );
    }

    #[test]
    fn empty_trace_is_fine() {
        let r = simulate_trace(&SyntheticTrace::default(), &MachineConfig::baseline());
        assert_eq!(r.instructions, 0);
    }
}
