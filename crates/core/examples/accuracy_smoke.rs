//! End-to-end accuracy smoke test: profile → generate → simulate vs.
//! execution-driven reference, per workload.
//!
//! Run with: `cargo run --release -p ssim-core --example accuracy_smoke`

use ssim_core::{profile, simulate_trace, ProfileConfig};
use ssim_stats::absolute_error;
use ssim_uarch::{ExecSim, MachineConfig};
use std::time::Instant;

fn main() {
    let cfg = MachineConfig::baseline();
    let profile_n: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(3_000_000);
    let eds_n = profile_n.min(2_000_000);
    println!(
        "{:<10} {:>8} {:>8} {:>7} {:>9} {:>9} {:>8} {:>8}",
        "workload", "EDS-IPC", "SS-IPC", "err%", "trace", "contexts", "prof(s)", "ss(s)"
    );
    let mut errs = Vec::new();
    for w in ssim_workloads::all() {
        let program = w.program();
        let t0 = Instant::now();
        let p = profile(
            &program,
            &ProfileConfig::new(&cfg)
                .skip(4_000_000)
                .instructions(profile_n),
        );
        let prof_time = t0.elapsed().as_secs_f64();
        let trace = p.generate(10, 1);
        let t1 = Instant::now();
        let ss = simulate_trace(&trace, &cfg);
        let ss_time = t1.elapsed().as_secs_f64();
        let mut eds = ExecSim::new(&cfg, &program);
        eds.skip(4_000_000);
        let eds = eds.run(eds_n);
        let err = absolute_error(ss.ipc(), eds.ipc());
        errs.push(err);
        println!(
            "{:<10} {:>8.3} {:>8.3} {:>7.1} {:>9} {:>9} {:>8.1} {:>8.2}",
            w.name(),
            eds.ipc(),
            ss.ipc(),
            err * 100.0,
            trace.len(),
            p.context_count(),
            prof_time,
            ss_time,
        );
        if std::env::var("SSIM_DIAG").is_ok() {
            // Occurrence-weighted aggregate taken probability and block
            // mix from the profile itself, to separate walk bias from
            // flag-sampling bias.
            let mut occ_total = 0u64;
            let mut taken_w = 0.0;
            let mut br_total = 0u64;
            let mut instr_w = 0u64;
            for (_, s) in p.contexts() {
                occ_total += s.occurrence;
                instr_w += s.occurrence * s.slots.len() as u64;
                if let Some(b) = &s.branch {
                    taken_w += s.occurrence as f64 * b.taken.probability();
                    br_total += s.occurrence;
                }
            }
            let mut load_trials = 0u64;
            let mut load_misses = 0u64;
            for (_, s) in p.contexts() {
                for slot in &s.slots {
                    if let Some(d) = &slot.dcache {
                        load_trials += d.l1.trials();
                        load_misses += d.l1.events();
                    }
                }
            }
            let ss_l1d = {
                let mut m = 0u64;
                let mut t = 0u64;
                for i in trace.instrs() {
                    if let Some(f) = i.dmem {
                        t += 1;
                        m += u64::from(f.l1_miss);
                    }
                }
                m as f64 / t.max(1) as f64
            };
            println!(
                "    l1d: eds {:.3} profiled {:.3} trace {:.3}",
                eds.cache.l1d_miss_rate,
                load_misses as f64 / load_trials.max(1) as f64,
                ss_l1d,
            );
            println!(
                "    profile: agg-taken {:.2} avg-block {:.2} blocks {} | trace blocks {} avg-block {:.2}",
                taken_w / br_total.max(1) as f64,
                instr_w as f64 / occ_total.max(1) as f64,
                occ_total,
                ss.branch.branches,
                trace.len() as f64 / ss.branch.branches.max(1) as f64,
            );
            println!(
                "    mpki eds {:>6.2} prof {:>6.2} ss {:>6.2} | ruu {:>5.1}/{:<5.1} lsq {:>4.1}/{:<4.1} ifq {:>4.1}/{:<4.1} | taken eds {:.2} ss {:.2} | redir eds {:.3} ss {:.3}",
                eds.mpki(),
                p.branch_mpki(),
                ss.mpki(),
                eds.ruu_occupancy,
                ss.ruu_occupancy,
                eds.lsq_occupancy,
                ss.lsq_occupancy,
                eds.ifq_occupancy,
                ss.ifq_occupancy,
                eds.branch.taken as f64 / eds.branch.branches.max(1) as f64,
                ss.branch.taken as f64 / ss.branch.branches.max(1) as f64,
                eds.branch.redirects as f64 / eds.branch.branches.max(1) as f64,
                ss.branch.redirects as f64 / ss.branch.branches.max(1) as f64,
            );
        }
    }
    let avg = errs.iter().sum::<f64>() / errs.len() as f64;
    println!("average IPC error: {:.1}%", avg * 100.0);
}
