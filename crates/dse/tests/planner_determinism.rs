//! Property suite for the planner's byte-determinism contract: any
//! `(space, seed, budget)` triple yields byte-identical plans and
//! reports across repeated runs and across worker thread counts.
//!
//! The thread axis is exercised in-process via `PlanConfig::threads`
//! (`Some(1)` vs `Some(4)`), which is exactly what the `SSIM_THREADS`
//! environment setting feeds through `ssim_par::num_threads`; CI
//! additionally runs the whole suite under `SSIM_THREADS=1` and `=4`.
//! Cases are paced with the shared `SSIM_TEST_TIMEOUT_MS` deadline
//! helper: a slow runner sheds case *count*, never determinism.

#[path = "../../../tests/util/mod.rs"]
mod util;

use proptest::prelude::*;
use ssim_dse::{run_adaptive, run_exhaustive, Axis, PlanConfig, Space, SyntheticEvaluator};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// A compact space from generated axis lengths: axis `i` sweeps
/// `len_i` multiples of `4·(i+1)`, the cost proxy is a weighted
/// coordinate sum, and `constrain` adds a §4.6-style coupling between
/// the first two axes (always satisfiable: min axis-1 value `8` ≤
/// `2 ×` min axis-0 value `4`).
fn compact_space(axis_lens: &[usize], constrain: bool) -> Space {
    let axes: Vec<Axis> = axis_lens
        .iter()
        .enumerate()
        .map(|(i, &len)| {
            let step = 4 * (i as u64 + 1);
            let values: Vec<u64> = (1..=len as u64).map(|v| v * step).collect();
            Axis::new(&format!("axis{i}"), &values)
        })
        .collect();
    let constraint = (constrain && axes.len() >= 2)
        .then(|| Arc::new(|c: &[u64]| c[1] <= 2 * c[0]) as ssim_dse::Constraint);
    let cost = Arc::new(|c: &[u64]| {
        c.iter()
            .enumerate()
            .map(|(i, &v)| (i as u64 + 1) * v)
            .sum::<u64>() as f64
    });
    Space::new(axes, constraint, cost)
}

/// One shared deadline for the whole suite (60% of the test budget).
fn suite_deadline() -> Instant {
    static DEADLINE: OnceLock<Instant> = OnceLock::new();
    *DEADLINE.get_or_init(|| util::deadline(0.6))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn adaptive_plans_are_byte_identical_across_runs_and_threads(
        axis_lens in prop::collection::vec(2usize..=5, 2..=4),
        constrain in any::<bool>(),
        seed in any::<u64>(),
        budget in 1usize..=64,
    ) {
        if util::expired(suite_deadline()) {
            return Ok(()); // shed remaining cases on a slow runner
        }
        let space = compact_space(&axis_lens, constrain);
        let eval = SyntheticEvaluator::new(seed ^ 0xD5E);
        let cfg = |threads| PlanConfig {
            seed,
            budget,
            threads: Some(threads),
            ..PlanConfig::default()
        };

        let base = run_adaptive(&space, &cfg(1), &eval);
        let rerun = run_adaptive(&space, &cfg(1), &eval);
        let wide = run_adaptive(&space, &cfg(4), &eval);

        let json = base.to_json();
        prop_assert_eq!(
            &json, &rerun.to_json(),
            "rerun diverged (seed {} budget {})", seed, budget
        );
        prop_assert_eq!(
            &json, &wide.to_json(),
            "thread count changed the plan (seed {} budget {})", seed, budget
        );
        prop_assert_eq!(base.digest(), wide.digest());

        // The report's own accounting must hold for every generated case.
        prop_assert_eq!(base.simulated as usize, budget.min(space.points()));
        prop_assert_eq!(base.evals.len() as u64, base.simulated);
        prop_assert!(base.sims >= base.simulated, "sims below one run per point");
    }

    #[test]
    fn exhaustive_reports_are_byte_identical_across_threads(
        axis_lens in prop::collection::vec(2usize..=4, 2..=3),
        constrain in any::<bool>(),
        seed in any::<u64>(),
    ) {
        if util::expired(suite_deadline()) {
            return Ok(());
        }
        let space = compact_space(&axis_lens, constrain);
        let eval = SyntheticEvaluator::new(seed ^ 0xE0);
        let cfg = |threads| PlanConfig {
            seed,
            budget: space.points(),
            threads: Some(threads),
            ..PlanConfig::default()
        };
        let narrow = run_exhaustive(&space, &cfg(1), &eval);
        let wide = run_exhaustive(&space, &cfg(4), &eval);
        prop_assert_eq!(narrow.to_json(), wide.to_json());
        prop_assert_eq!(narrow.simulated as usize, space.points());
    }
}
