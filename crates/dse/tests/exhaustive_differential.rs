//! Differential suite: the adaptive planner against an exhaustive sweep
//! of a 256-point grid through the same evaluation path.
//!
//! The contract under test, in increasing strength:
//!
//! 1. every point the planner simulates carries the **bit-identical**
//!    response the exhaustive sweep saw (subset property — the planner
//!    selects, it never perturbs);
//! 2. the planner's Pareto frontier **exactly matches** the exhaustive
//!    frontier at a 34% budget (the true frontier alone is 13% of this
//!    grid, so exact capture is a real planning feat, not slack);
//! 3. per-stratum mean IPC lands within the declared error bars (3σ of
//!    the reported standard error, with the acceptance criterion's 2%
//!    relative backstop for tiny-sample strata);
//! 4. budget conservation, stratum coverage, and monotone refinement
//!    (a larger budget's phase 1 is a superset of a smaller one's).

#[path = "../../../tests/util/mod.rs"]
mod util;

use ssim_dse::{
    run_adaptive, run_exhaustive, Axis, PlanConfig, PlanReport, Space, SyntheticEvaluator,
};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// The §4.6-shaped differential grid: window × LSQ × width,
/// `8 × 8 × 4 = 256` points, linear cost proxy.
fn grid() -> Space {
    let axes = vec![
        Axis::new("window", &[8, 16, 24, 32, 48, 64, 96, 128]),
        Axis::new("lsq", &[4, 8, 12, 16, 24, 32, 48, 64]),
        Axis::new("width", &[2, 4, 6, 8]),
    ];
    let cost = Arc::new(|c: &[u64]| (c[0] + 2 * c[1] + 12 * c[2]) as f64);
    Space::new(axes, None, cost)
}

fn evaluator() -> SyntheticEvaluator {
    SyntheticEvaluator::new(3)
}

fn cfg(budget: usize) -> PlanConfig {
    PlanConfig {
        seed: 0x5eed,
        budget,
        // The exhaustive frontier is 34 of 256 points, so frontier
        // capture dominates this grid's planning problem: spend most of
        // the refinement budget on the predicted band.
        pareto_frac: 0.9,
        threads: Some(2),
        ..PlanConfig::default()
    }
}

/// The 34%-budget adaptive run and the exhaustive reference, computed
/// once per process.
fn pair() -> &'static (PlanReport, PlanReport) {
    static PAIR: std::sync::OnceLock<(PlanReport, PlanReport)> = std::sync::OnceLock::new();
    PAIR.get_or_init(|| {
        let space = grid();
        let eval = evaluator();
        let adaptive = run_adaptive(&space, &cfg(88), &eval);
        let exhaustive = run_exhaustive(&space, &cfg(space.points()), &eval);
        (adaptive, exhaustive)
    })
}

#[test]
fn adaptive_is_a_bit_identical_subset_of_exhaustive() {
    let (adaptive, exhaustive) = pair();
    assert_eq!(adaptive.simulated, 88);
    assert_eq!(exhaustive.simulated, 256);
    let reference: BTreeMap<u64, _> = exhaustive.evals.iter().map(|e| (e.id, e)).collect();
    for e in &adaptive.evals {
        let r = reference[&e.id];
        assert_eq!(
            e.cost.to_bits(),
            r.cost.to_bits(),
            "cost differs at {}",
            e.id
        );
        assert_eq!(
            e.response.ipc.to_bits(),
            r.response.ipc.to_bits(),
            "IPC differs at {}",
            e.id
        );
        assert_eq!(
            e.response.mpki.to_bits(),
            r.response.mpki.to_bits(),
            "MPKI differs at {}",
            e.id
        );
        assert_eq!(
            e.response.sims, r.response.sims,
            "early stop differs at {}",
            e.id
        );
    }
}

#[test]
fn pareto_front_matches_exhaustive_exactly() {
    let (adaptive, exhaustive) = pair();
    assert!(!exhaustive.pareto.is_empty());
    assert_eq!(
        adaptive.pareto, exhaustive.pareto,
        "34%-budget frontier must equal the exhaustive frontier"
    );
}

#[test]
fn stratum_means_sit_within_declared_error_bars() {
    let (adaptive, exhaustive) = pair();
    assert_eq!(adaptive.strata.len(), exhaustive.strata.len());
    for (a, e) in adaptive.strata.iter().zip(&exhaustive.strata) {
        assert_eq!(a.id, e.id);
        assert_eq!(a.size, e.size);
        assert!(a.simulated >= 1, "stratum {} never sampled", a.id);
        let err = (a.mean_ipc - e.mean_ipc).abs();
        let bar = (3.0 * a.stderr_ipc).max(0.02 * e.mean_ipc);
        assert!(
            err <= bar,
            "stratum {}: |{} - {}| = {err} exceeds bar {bar} (n = {})",
            a.id,
            a.mean_ipc,
            e.mean_ipc,
            a.simulated
        );
    }
}

#[test]
fn sims_accounting_is_consistent() {
    let (adaptive, exhaustive) = pair();
    for r in [adaptive, exhaustive] {
        let total: u64 = r.evals.iter().map(|e| e.response.sims as u64).sum();
        assert_eq!(r.sims, total);
        assert!(r.sims >= r.simulated * u64::from(evaluator().early.min_runs));
    }
}

#[test]
fn overfull_budget_degenerates_to_the_exhaustive_report() {
    let space = grid();
    let eval = evaluator();
    let full = run_adaptive(&space, &cfg(10_000), &eval);
    let exhaustive = &pair().1;
    assert_eq!(full.simulated, 256, "budget clamps to the space");
    assert_eq!(full.evals, exhaustive.evals);
    assert_eq!(full.pareto, exhaustive.pareto);
    assert_eq!(full.strata, exhaustive.strata);
}

#[test]
fn phase1_refines_monotonically_with_budget() {
    let space = grid();
    let eval = evaluator();
    let shed = util::deadline(0.5);
    let mut prev: BTreeSet<u64> = BTreeSet::new();
    for budget in [16usize, 32, 64, 96, 128] {
        let report = run_adaptive(&space, &cfg(budget), &eval);
        let cur: BTreeSet<u64> = report.phase1.iter().copied().collect();
        assert!(
            prev.is_subset(&cur),
            "budget {budget} dropped phase-1 points: {:?}",
            prev.difference(&cur).collect::<Vec<_>>()
        );
        prev = cur;
        if util::expired(shed) {
            break; // slow runner: keep the budgets already verified
        }
    }
}
