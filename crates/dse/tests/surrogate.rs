//! Surrogate suite: closed-form fixtures with known algebraic answers,
//! plus a frozen-fixture regression that pins exact prediction bits.
//!
//! The closed-form cases check the *math*: a λ=0 ridge interpolates any
//! surface inside its feature span, shrinkage follows the textbook
//! `1/(1+λ)` slope, boosting converges geometrically on a step. The
//! frozen fixture checks the *implementation*: any reordering of a
//! reduction, change of tie-breaking, or libm call would move the
//! prediction bits and trip the pin. Regenerate deliberately with
//! `SSIM_REGEN_FIXTURES=1 cargo test -p ssim-dse --test surrogate`.

use ssim_dse::{big_space, Gbm, Ridge, Surrogate, SurrogateConfig, SyntheticEvaluator};

// ---- closed-form cases ----------------------------------------------

#[test]
fn unregularised_surrogate_interpolates_a_quadratic() {
    // y = 1 + 2u + 3u² is inside the quadratic feature span, so λ = 0
    // ridge (GBM off) must reproduce it — on and off the training grid.
    let truth = |u: f64| 1.0 + 2.0 * u + 3.0 * u * u;
    let units: Vec<Vec<f64>> = [0.0, 0.2, 0.5, 0.8, 1.0].iter().map(|&u| vec![u]).collect();
    let ys: Vec<f64> = units.iter().map(|u| truth(u[0])).collect();
    let cfg = SurrogateConfig {
        ridge_lambda: 0.0,
        gbm_rounds: 0,
        gbm_learning_rate: 0.0,
        ..SurrogateConfig::default()
    };
    let model = Surrogate::fit(&units, &ys, &cfg);
    for u in [0.0, 0.1, 0.35, 0.6, 0.95, 1.0] {
        let err = (model.predict(&[u]) - truth(u)).abs();
        assert!(err < 1e-8, "u = {u}: err = {err}");
    }
    assert!(model.rmse(&units, &ys) < 1e-8);
}

#[test]
fn ridge_shrinkage_follows_one_over_one_plus_lambda() {
    // Two points (±1, ±1): the standardised design has unit variance,
    // so the fitted slope is 1/(1+λ). The Cholesky path computes it as
    // (1/√(1+λ))/√(1+λ) — one extra rounding versus the closed form, so
    // compare to a couple of ulps rather than bits.
    let xs = vec![vec![-1.0], vec![1.0]];
    let ys = [-1.0, 1.0];
    for lambda in [0.0, 1.0, 3.0] {
        let r = Ridge::fit(&xs, &ys, lambda);
        let want = 1.0 / (1.0 + lambda);
        assert_eq!(r.intercept(), 0.0, "λ = {lambda}");
        assert!((r.predict(&[1.0]) - want).abs() < 1e-15, "λ = {lambda}");
        assert!((r.predict(&[-1.0]) + want).abs() < 1e-15, "λ = {lambda}");
    }
}

#[test]
fn constant_feature_columns_are_harmless() {
    // A constant column has zero variance; the unit-scale fallback must
    // keep the solve finite and the informative column fitted.
    let xs = vec![vec![7.0, 0.0], vec![7.0, 1.0], vec![7.0, 2.0]];
    let ys = [0.0, 1.0, 2.0];
    let r = Ridge::fit(&xs, &ys, 0.0);
    for (x, &y) in xs.iter().zip(&ys) {
        assert!((r.predict(x) - y).abs() < 1e-9);
    }
}

#[test]
fn boosting_converges_geometrically_on_a_step() {
    // One split explains the step; at learning rate γ the residual after
    // k rounds is (1-γ)^k of the gap, so 20 rounds at γ = 0.5 land
    // within 2⁻²⁰ of the leaves.
    let xs: Vec<Vec<f64>> = [0.0, 0.25, 0.75, 1.0].iter().map(|&x| vec![x]).collect();
    let ys = [1.0, 1.0, 5.0, 5.0];
    let g = Gbm::fit(&xs, &ys, 20, 0.5);
    assert!((g.predict(&[0.1]) - 1.0).abs() < 1e-4);
    assert!((g.predict(&[0.9]) - 5.0).abs() < 1e-4);
    // Every stump split the same boundary.
    for s in g.stumps() {
        assert_eq!(s.threshold, 0.5);
    }
}

#[test]
fn stump_ties_resolve_to_the_first_feature() {
    // Two identical features offer identical gains; the deterministic
    // scan must keep the first candidate, never the last.
    let xs: Vec<Vec<f64>> = [0.0, 1.0].iter().map(|&x| vec![x, x]).collect();
    let ys = [0.0, 4.0];
    let g = Gbm::fit(&xs, &ys, 1, 1.0);
    assert_eq!(g.stumps().len(), 1);
    assert_eq!(g.stumps()[0].feat, 0);
}

// ---- frozen fixture --------------------------------------------------

/// Probe ids pinned by the fixture (spread across the 4,096-point
/// `big_space(4)`).
const PROBES: [u64; 8] = [0, 5, 81, 777, 1234, 2048, 3333, 4095];

/// Fits the default surrogate on a fixed 64-point training slice of
/// `big_space(4)` and returns the probe predictions.
fn fixture_predictions() -> Vec<(u64, f64)> {
    let space = big_space(4);
    let eval = SyntheticEvaluator::new(11);
    let train: Vec<u64> = space.valid_ids().iter().copied().step_by(64).collect();
    assert_eq!(train.len(), 64);
    let units: Vec<Vec<f64>> = train.iter().map(|&id| space.units(id)).collect();
    let ys: Vec<f64> = train
        .iter()
        .map(|&id| eval.observe_ipc(&space, id, 0))
        .collect();
    let model = Surrogate::fit(&units, &ys, &SurrogateConfig::default());
    PROBES
        .iter()
        .map(|&id| (id, model.predict(&space.units(id))))
        .collect()
}

fn render_fixture(preds: &[(u64, f64)]) -> String {
    let mut out = String::from(
        "# Frozen surrogate predictions: big_space(4), seed-11 synthetic surface,\n\
         # 64-point training slice, default SurrogateConfig. One line per probe:\n\
         # <point id> <f64 bits of the prediction, hex> <decimal, informational>\n",
    );
    for &(id, p) in preds {
        out.push_str(&format!("{id} {:016x} {p}\n", p.to_bits()));
    }
    out
}

#[test]
fn frozen_fixture_pins_prediction_bits() {
    let path = format!(
        "{}/tests/fixtures/surrogate_v1.txt",
        env!("CARGO_MANIFEST_DIR")
    );
    let preds = fixture_predictions();
    let rendered = render_fixture(&preds);
    if std::env::var("SSIM_REGEN_FIXTURES").is_ok() {
        std::fs::create_dir_all(std::path::Path::new(&path).parent().unwrap()).unwrap();
        std::fs::write(&path, &rendered).unwrap();
        return;
    }
    let frozen = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("missing fixture {path} ({e}); regenerate with SSIM_REGEN_FIXTURES=1")
    });
    let mut pinned = Vec::new();
    for line in frozen.lines().filter(|l| !l.starts_with('#')) {
        let mut parts = line.split_whitespace();
        let id: u64 = parts.next().unwrap().parse().unwrap();
        let bits = u64::from_str_radix(parts.next().unwrap(), 16).unwrap();
        pinned.push((id, f64::from_bits(bits)));
    }
    assert_eq!(
        pinned.len(),
        preds.len(),
        "fixture lists a different probe set"
    );
    for ((id, want), (gid, got)) in pinned.iter().zip(&preds) {
        assert_eq!(id, gid, "probe order changed");
        assert_eq!(
            want.to_bits(),
            got.to_bits(),
            "prediction moved at probe {id}: pinned {want}, got {got}\n\
             regenerated fixture would be:\n{rendered}"
        );
    }
}
