//! The adaptive sweep planner: stratified first phase, surrogate fit,
//! variance- and Pareto-guided refinement, deterministic reporting.
//!
//! # Determinism contract
//!
//! For a fixed `(space, PlanConfig, evaluator)` the planner's output is
//! **byte-identical** across runs, machines and thread counts:
//!
//! * every random choice flows from one `splitmix64` stream keyed by
//!   `(seed, salt, stratum, point id)` — no global RNG, no iteration
//!   over hash maps;
//! * batches are evaluated through the order-preserving
//!   [`ssim_par::par_map_with`], so results are merged in input order
//!   no matter the schedule;
//! * allocation uses D'Hondt greedy apportionment, which is
//!   house-monotone: growing the budget only ever **adds** phase-1
//!   points (the `monotone refinement` invariant the tests pin);
//! * all floating-point reductions run in a fixed order, and the report
//!   renders `f64` via Rust's shortest-roundtrip `Display`.
//!
//! The evaluator must be a pure function of `(space, point id)` — the
//! synthetic evaluator keys its noise stream by point id and run index,
//! and the bench evaluator seeds generation per point, so repeated
//! calls can never observe planner state.

use crate::space::{Space, Stratum};
use crate::surrogate::{Surrogate, SurrogateConfig};
use ssim_stats::Summary;
use std::collections::BTreeMap;

static OBS_PLANS: ssim_obs::Counter = ssim_obs::Counter::new("dse.plans");
static OBS_POINTS: ssim_obs::Counter = ssim_obs::Counter::new("dse.points");
static OBS_SIMS: ssim_obs::Counter = ssim_obs::Counter::new("dse.sims");
static OBS_PHASE1: ssim_obs::Counter = ssim_obs::Counter::new("dse.phase1_points");
static OBS_PHASE2: ssim_obs::Counter = ssim_obs::Counter::new("dse.phase2_points");
static OBS_STRATA: ssim_obs::Gauge = ssim_obs::Gauge::new("dse.strata");
static OBS_SPENT: ssim_obs::Gauge = ssim_obs::Gauge::new("dse.budget_spent");
static OBS_SAVED: ssim_obs::Gauge = ssim_obs::Gauge::new("dse.budget_saved");
static OBS_RMSE_PPM: ssim_obs::Gauge = ssim_obs::Gauge::new("dse.surrogate_rmse_ppm");

/// SplitMix64 — the one mixing primitive every planner decision flows
/// from. Stateless: callers key it with whatever identifies the draw.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

// ---- responses and evaluators ---------------------------------------

/// What simulating one design point produced.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Response {
    /// Mean IPC over the early-stop runs.
    pub ipc: f64,
    /// Mean branch MPKI over the early-stop runs.
    pub mpki: f64,
    /// Simulator runs this point consumed (seeds, under early stop).
    pub sims: u32,
}

/// A deterministic design-point evaluator: a pure function of
/// `(space, raw point id)`.
pub trait Evaluator: Sync {
    /// Simulates one point.
    fn eval(&self, space: &Space, id: u64) -> Response;
}

/// Per-point seed early stop — the §4.1 convergence rule packaged for
/// the planner: run seeds until the IPC coefficient of variation falls
/// under `cov_target` (but at least `min_runs`, at most `max_runs`).
/// Reuses [`ssim_stats::Summary`], the same CoV machinery
/// `sec41_convergence` reports with.
#[derive(Debug, Clone, Copy)]
pub struct EarlyStop {
    /// Runs before the CoV rule may stop (≥ 2 for a defined CoV).
    pub min_runs: u32,
    /// Hard per-point run cap.
    pub max_runs: u32,
    /// Stop once `Summary::cov()` is at or under this.
    pub cov_target: f64,
}

impl Default for EarlyStop {
    fn default() -> Self {
        EarlyStop {
            min_runs: 2,
            max_runs: 4,
            cov_target: 0.02,
        }
    }
}

impl EarlyStop {
    /// Drives `observe(run_index)` under the stopping rule; returns the
    /// mean observation and the number of runs consumed.
    pub fn run(&self, mut observe: impl FnMut(u32) -> f64) -> (f64, u32) {
        assert!(self.min_runs >= 1 && self.max_runs >= self.min_runs);
        let mut s = Summary::new();
        let mut runs = 0u32;
        while runs < self.max_runs {
            s.add(observe(runs));
            runs += 1;
            if runs >= self.min_runs && s.cov() <= self.cov_target {
                break;
            }
        }
        (s.mean(), runs)
    }
}

// ---- configuration ---------------------------------------------------

/// Tunables of one planner run.
#[derive(Debug, Clone)]
pub struct PlanConfig {
    /// Root of every random stream.
    pub seed: u64,
    /// Total design points the planner may simulate.
    pub budget: usize,
    /// Share of the budget spent on the stratified first phase.
    pub phase1_frac: f64,
    /// Adaptive refinement rounds after phase 1.
    pub rounds: usize,
    /// Share of each refinement round aimed at the predicted Pareto
    /// band (the rest follows Neyman variance allocation).
    pub pareto_frac: f64,
    /// Relative IPC distance below the predicted frontier envelope that
    /// still counts as a frontier candidate.
    pub pareto_band: f64,
    /// Stratification granularity ([`Space::stratify`]).
    pub bins_per_axis: usize,
    /// Minimum simulated points per stratum (capped by stratum size and
    /// the budget), topped up right after phase 1. `0` disables the
    /// floor. A floor caps the noise of the per-stratum residual
    /// correction behind [`StratumReport::model_ipc`]: a stratum
    /// estimated from one sample inherits that sample's full residual.
    pub stratum_floor: usize,
    /// Surrogate hyper-parameters.
    pub surrogate: SurrogateConfig,
    /// Worker threads for evaluation batches; `None` uses
    /// [`ssim_par::num_threads`] (the `SSIM_THREADS` setting).
    pub threads: Option<usize>,
}

impl Default for PlanConfig {
    fn default() -> Self {
        PlanConfig {
            seed: 0,
            budget: 0,
            phase1_frac: 0.4,
            rounds: 3,
            pareto_frac: 0.5,
            pareto_band: 0.03,
            bins_per_axis: 2,
            stratum_floor: 0,
            surrogate: SurrogateConfig::default(),
            threads: None,
        }
    }
}

// ---- reports ---------------------------------------------------------

/// One simulated point in the report.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalRecord {
    /// Raw point id.
    pub id: u64,
    /// Cost proxy.
    pub cost: f64,
    /// Response.
    pub response: Response,
}

/// Per-stratum estimate with its error bar.
#[derive(Debug, Clone, PartialEq)]
pub struct StratumReport {
    /// Stratum id ([`Stratum::id`]).
    pub id: u64,
    /// Valid points in the stratum.
    pub size: u64,
    /// Points simulated in the stratum.
    pub simulated: u64,
    /// Mean IPC over the simulated points (0 when none).
    pub mean_ipc: f64,
    /// Standard error of the mean (0 when fewer than two samples).
    pub stderr_ipc: f64,
    /// Model-assisted (regression-estimator) stratum mean: the
    /// surrogate's mean prediction over **every** point of the stratum,
    /// corrected by the mean residual on the simulated ones. The
    /// correction uses only the seeded-order draws (phase 1, floor,
    /// variance share, leftover fill) — the Pareto-band picks are an
    /// informative sample and would bias it — falling back to all
    /// simulated points when a stratum has none. Falls back to
    /// `mean_ipc` when no surrogate was fitted; equals the exact mean
    /// for exhaustive runs (full sample ⇒ the correction cancels the
    /// model entirely).
    pub model_ipc: f64,
}

/// One point of the reported Pareto frontier (maximise IPC, minimise
/// the cost proxy).
#[derive(Debug, Clone, PartialEq)]
pub struct ParetoPoint {
    /// Raw point id.
    pub id: u64,
    /// Coordinate tuple.
    pub coords: Vec<u64>,
    /// Cost proxy.
    pub cost: f64,
    /// Measured IPC.
    pub ipc: f64,
}

/// Everything one planner (or exhaustive) run decided and measured.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanReport {
    /// Valid points in the space.
    pub space_points: u64,
    /// Point budget the run was given.
    pub budget: u64,
    /// Points actually simulated (= `min(budget, space_points)`).
    pub simulated: u64,
    /// Simulator runs consumed, including early-stop repeats.
    pub sims: u64,
    /// Phase-1 point ids, ascending (empty for exhaustive runs).
    pub phase1: Vec<u64>,
    /// Per-stratum estimates, by stratum id.
    pub strata: Vec<StratumReport>,
    /// The Pareto frontier over the simulated points, by id.
    pub pareto: Vec<ParetoPoint>,
    /// Surrogate RMSE on its own training set (`None` for exhaustive).
    pub surrogate_train_rmse: Option<f64>,
    /// Prequential RMSE: each refinement point was predicted before it
    /// was simulated; this is the RMSE of those predictions (`None`
    /// when no refinement round ran).
    pub surrogate_holdout_rmse: Option<f64>,
    /// Every simulated point, ascending by id.
    pub evals: Vec<EvalRecord>,
}

impl PlanReport {
    /// Renders the canonical JSON form. Byte-deterministic: map-free
    /// construction, fixed field order, `f64` via shortest-roundtrip
    /// `Display`.
    pub fn to_json(&self) -> String {
        let opt = |v: Option<f64>| match v {
            Some(x) => fmt_f64(x),
            None => "null".to_string(),
        };
        let strata: Vec<String> = self
            .strata
            .iter()
            .map(|s| {
                format!(
                    "{{\"id\": {}, \"size\": {}, \"simulated\": {}, \"mean_ipc\": {}, \
                     \"stderr_ipc\": {}, \"model_ipc\": {}}}",
                    s.id,
                    s.size,
                    s.simulated,
                    fmt_f64(s.mean_ipc),
                    fmt_f64(s.stderr_ipc),
                    fmt_f64(s.model_ipc)
                )
            })
            .collect();
        let pareto: Vec<String> = self
            .pareto
            .iter()
            .map(|p| {
                let coords: Vec<String> = p.coords.iter().map(u64::to_string).collect();
                format!(
                    "{{\"id\": {}, \"coords\": [{}], \"cost\": {}, \"ipc\": {}}}",
                    p.id,
                    coords.join(", "),
                    fmt_f64(p.cost),
                    fmt_f64(p.ipc)
                )
            })
            .collect();
        let evals: Vec<String> = self
            .evals
            .iter()
            .map(|e| {
                format!(
                    "{{\"id\": {}, \"cost\": {}, \"ipc\": {}, \"mpki\": {}, \"sims\": {}}}",
                    e.id,
                    fmt_f64(e.cost),
                    fmt_f64(e.response.ipc),
                    fmt_f64(e.response.mpki),
                    e.response.sims
                )
            })
            .collect();
        let phase1: Vec<String> = self.phase1.iter().map(u64::to_string).collect();
        format!
        (
            "{{\n  \"space_points\": {},\n  \"budget\": {},\n  \"simulated\": {},\n  \"sims\": {},\n  \
             \"phase1\": [{}],\n  \"surrogate_train_rmse\": {},\n  \"surrogate_holdout_rmse\": {},\n  \
             \"strata\": [{}],\n  \"pareto\": [{}],\n  \"evals\": [{}]\n}}\n",
            self.space_points,
            self.budget,
            self.simulated,
            self.sims,
            phase1.join(", "),
            opt(self.surrogate_train_rmse),
            opt(self.surrogate_holdout_rmse),
            strata.join(", "),
            pareto.join(", "),
            evals.join(", "),
        )
    }

    /// FNV-1a digest of [`PlanReport::to_json`] — the value the
    /// determinism tests and the bench compare across runs and thread
    /// counts.
    pub fn digest(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in self.to_json().as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }
}

/// Shortest-roundtrip decimal rendering with NaN/∞ mapped to `null`
/// (JSON has no non-finite numbers; the planner never produces them,
/// but the report must stay parseable if an evaluator does).
fn fmt_f64(x: f64) -> String {
    if x.is_finite() {
        let s = format!("{x}");
        // `Display` omits ".0" for integral values; keep it so the
        // field parses as a float everywhere.
        if s.contains('.') || s.contains('e') || s.contains("inf") {
            s
        } else {
            format!("{s}.0")
        }
    } else {
        "null".to_string()
    }
}

// ---- the Pareto frontier --------------------------------------------

/// The non-dominated subset of `(id, cost, ipc)` points — maximise IPC,
/// minimise cost; domination requires one strict inequality. Returns
/// ids ascending.
pub fn pareto_front(points: &[(u64, f64, f64)]) -> Vec<u64> {
    if points.is_empty() {
        return Vec::new();
    }
    let mut sorted: Vec<&(u64, f64, f64)> = points.iter().collect();
    sorted.sort_by(|a, b| {
        a.1.partial_cmp(&b.1)
            .expect("finite cost")
            .then(b.2.partial_cmp(&a.2).expect("finite ipc"))
            .then(a.0.cmp(&b.0))
    });
    let mut front = Vec::new();
    let mut best_ipc = f64::NEG_INFINITY;
    let mut i = 0;
    while i < sorted.len() {
        // One equal-cost group at a time: only its max-IPC members can
        // be non-dominated, and only if they beat every cheaper point.
        let cost = sorted[i].1;
        let group_max = sorted[i].2; // sorted ipc-descending within cost
        let mut j = i;
        while j < sorted.len() && sorted[j].1 == cost {
            if sorted[j].2 == group_max && group_max > best_ipc {
                front.push(sorted[j].0);
            }
            j += 1;
        }
        best_ipc = best_ipc.max(group_max);
        i = j;
    }
    front.sort_unstable();
    front
}

// ---- the planner -----------------------------------------------------

/// Exhaustively evaluates the whole space through the same batched
/// evaluation path the adaptive planner uses (one [`par_map_with`]
/// fan-out in id order) and reports it in the same shape. This *is*
/// the sweep-bin shape — a flat order-preserving parallel map over
/// every valid point — so differential tests compare two consumers of
/// one evaluation path, not two simulators.
///
/// [`par_map_with`]: ssim_par::par_map_with
pub fn run_exhaustive(space: &Space, cfg: &PlanConfig, eval: &dyn Evaluator) -> PlanReport {
    let ids: Vec<u64> = space.valid_ids().to_vec();
    let strata = space.stratify(cfg.bins_per_axis);
    let responses = eval_batch(space, cfg, eval, &ids);
    let mut evals = BTreeMap::new();
    for (&id, &r) in ids.iter().zip(&responses) {
        evals.insert(id, r);
    }
    report(
        space,
        cfg,
        &strata,
        &evals,
        &std::collections::BTreeSet::new(),
        Vec::new(),
        None,
        None,
        None,
    )
}

/// Runs the adaptive plan: stratified phase 1, then `cfg.rounds` of
/// surrogate-guided refinement, then a deterministic fill of any
/// leftover budget. Simulates exactly `min(budget, space points)`
/// design points.
///
/// # Panics
///
/// Panics when `cfg.budget` is zero.
pub fn run_adaptive(space: &Space, cfg: &PlanConfig, eval: &dyn Evaluator) -> PlanReport {
    assert!(cfg.budget > 0, "planner needs a non-zero budget");
    let n = space.points();
    let budget = cfg.budget.min(n);
    let strata = space.stratify(cfg.bins_per_axis);
    OBS_STRATA.set_max(strata.len() as u64);

    // Per-stratum exploration order: a seeded hash shuffle, fixed for
    // the whole run. Every selection below consumes prefixes of these
    // orders, which is what makes phase 1 monotone in the budget.
    let orders: Vec<Vec<u64>> = strata
        .iter()
        .map(|st| {
            let mut ids: Vec<u64> = st
                .members
                .iter()
                .map(|&pos| space.valid_ids()[pos as usize])
                .collect();
            ids.sort_by_key(|&id| (splitmix64(cfg.seed ^ (st.id << 20) ^ id), id));
            ids
        })
        .collect();
    let mut taken = vec![0usize; strata.len()]; // consumed order prefix

    // ---- phase 1: stratified seeding --------------------------------
    let want1 = ((budget as f64 * cfg.phase1_frac).round() as usize)
        .max(strata.len().min(budget))
        .min(budget);
    let sizes: Vec<u64> = strata.iter().map(|s| s.members.len() as u64).collect();
    let caps: Vec<usize> = strata.iter().map(|s| s.members.len()).collect();
    let quota = apportion(&sizes, &caps, want1, true);
    let mut phase1 = Vec::new();
    for (h, &q) in quota.iter().enumerate() {
        let q = q.min(orders[h].len());
        phase1.extend_from_slice(&orders[h][..q]);
        taken[h] = q;
    }
    phase1.sort_unstable();
    let mut evals: BTreeMap<u64, Response> = BTreeMap::new();
    let responses = eval_batch(space, cfg, eval, &phase1);
    for (&id, &r) in phase1.iter().zip(&responses) {
        evals.insert(id, r);
    }
    OBS_PHASE1.add(phase1.len() as u64);
    // The probability sample: ids drawn from the seeded per-stratum
    // orders (or the uniform leftover fill), as opposed to the
    // informative Pareto-band picks. The model-assisted stratum
    // estimates restrict their residual correction to this set.
    let mut seeded: std::collections::BTreeSet<u64> = phase1.iter().copied().collect();

    // ---- stratum floor ----------------------------------------------
    // Top every stratum up to `stratum_floor` simulated points (as far
    // as size and budget allow) before any adaptive choice, continuing
    // each stratum's seeded order. The floor bounds the variance of the
    // per-stratum residual correction in the final report.
    if cfg.stratum_floor > 0 {
        let mut floor_ids = Vec::new();
        for (h, order) in orders.iter().enumerate() {
            let want = cfg.stratum_floor.min(order.len());
            while taken[h] < want && evals.len() + floor_ids.len() < budget {
                floor_ids.push(order[taken[h]]);
                taken[h] += 1;
            }
        }
        if !floor_ids.is_empty() {
            floor_ids.sort_unstable();
            let responses = eval_batch(space, cfg, eval, &floor_ids);
            for (&id, &r) in floor_ids.iter().zip(&responses) {
                evals.insert(id, r);
            }
            seeded.extend(floor_ids.iter().copied());
            OBS_PHASE1.add(floor_ids.len() as u64);
        }
    }

    // ---- refinement rounds ------------------------------------------
    let mut holdout_sse = 0.0;
    let mut holdout_n = 0u64;
    let mut surrogate = None;
    for round in 0..cfg.rounds {
        let remaining = budget - evals.len();
        if remaining == 0 {
            break;
        }
        let chunk = remaining.div_ceil(cfg.rounds - round).min(remaining);

        // Fit on everything simulated so far.
        let (units, ys): (Vec<Vec<f64>>, Vec<f64>) = evals
            .iter()
            .map(|(&id, r)| (space.units(id), r.ipc))
            .unzip();
        let model = Surrogate::fit(&units, &ys, &cfg.surrogate);

        // Predict the whole space (actual where simulated).
        let ids: Vec<u64> = space.valid_ids().to_vec();
        let threads = cfg.threads.unwrap_or_else(ssim_par::num_threads);
        let preds: Vec<f64> = ssim_par::par_map_with(threads, &ids, |&id| match evals.get(&id) {
            Some(r) => r.ipc,
            None => model.predict(&space.units(id)),
        });

        // Pareto share: unsimulated points within the band under the
        // predicted frontier envelope, nearest-first.
        let k_pareto = ((chunk as f64 * cfg.pareto_frac).round() as usize).min(chunk);
        let all: Vec<(u64, f64, f64)> = ids
            .iter()
            .zip(&preds)
            .map(|(&id, &p)| (id, space.cost(id), p))
            .collect();
        let front = pareto_front(&all);
        let mut env: Vec<(f64, f64)> = front
            .iter()
            .map(|&fid| {
                let k = ids.binary_search(&fid).expect("front id is valid");
                (all[k].1, all[k].2)
            })
            .collect();
        env.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite cost"));
        let mut candidates: Vec<(u64, u64)> = Vec::new(); // (scaled deficit, id)
        for (k, &id) in ids.iter().enumerate() {
            if evals.contains_key(&id) {
                continue;
            }
            let (cost, pred) = (all[k].1, all[k].2);
            let mut best = f64::NEG_INFINITY;
            for &(c, i) in &env {
                if c > cost {
                    break;
                }
                best = best.max(i);
            }
            let deficit = if best <= 0.0 || !best.is_finite() {
                0.0
            } else {
                ((best - pred) / best).max(0.0)
            };
            if deficit <= cfg.pareto_band {
                // Scale to integer so the sort key is total without
                // f64 comparator plumbing; 1e12 keeps full precision
                // for band-sized values.
                candidates.push(((deficit * 1e12) as u64, id));
            }
        }
        candidates.sort_unstable();
        let mut chosen: Vec<u64> = candidates
            .iter()
            .take(k_pareto)
            .map(|&(_, id)| id)
            .collect();

        // Variance share: Neyman allocation (weight N_h · s_h) over the
        // strata, spending each stratum's seeded order. The spread that
        // matters is the spread the model cannot explain, so s_h is the
        // stddev of the **residuals** against this round's surrogate —
        // the allocation that minimises the variance of the
        // model-assisted stratum estimates the report ships.
        let k_var = chunk - chosen.len();
        if k_var > 0 {
            let chosen_set: std::collections::BTreeSet<u64> = chosen.iter().copied().collect();
            let stddev: Vec<f64> = strata
                .iter()
                .map(|st| {
                    let mut s = Summary::new();
                    for &pos in &st.members {
                        let id = space.valid_ids()[pos as usize];
                        if let Some(r) = evals.get(&id) {
                            s.add(r.ipc - model.predict(&space.units(id)));
                        }
                    }
                    if s.count() >= 2 {
                        s.stddev()
                    } else {
                        0.0
                    }
                })
                .collect();
            let headroom: Vec<usize> = strata
                .iter()
                .enumerate()
                .map(|(h, _)| {
                    orders[h][taken[h]..]
                        .iter()
                        .filter(|id| !evals.contains_key(id) && !chosen_set.contains(id))
                        .count()
                })
                .collect();
            let any_variance = stddev.iter().any(|&s| s > 0.0);
            let weights: Vec<u64> = strata
                .iter()
                .enumerate()
                .map(|(h, st)| {
                    if headroom[h] == 0 {
                        return 0;
                    }
                    if any_variance {
                        (st.members.len() as f64 * stddev[h] * 1e9) as u64
                    } else {
                        st.members.len() as u64
                    }
                })
                .collect();
            let mut alloc = apportion(&weights, &headroom, k_var, false);
            for (h, a) in alloc.iter_mut().enumerate() {
                let mut got = 0usize;
                while got < *a && taken[h] < orders[h].len() {
                    let id = orders[h][taken[h]];
                    taken[h] += 1;
                    if !evals.contains_key(&id) && !chosen_set.contains(&id) {
                        chosen.push(id);
                        seeded.insert(id);
                        got += 1;
                    }
                }
            }
        }

        if chosen.is_empty() {
            continue;
        }
        chosen.sort_unstable();
        chosen.truncate(chunk);
        let responses = eval_batch(space, cfg, eval, &chosen);
        for (&id, &r) in chosen.iter().zip(&responses) {
            let k = ids.binary_search(&id).expect("chosen id is valid");
            let e = preds[k] - r.ipc;
            holdout_sse += e * e;
            holdout_n += 1;
            evals.insert(id, r);
        }
        OBS_PHASE2.add(chosen.len() as u64);
        surrogate = Some(model);
    }

    // ---- deterministic fill of any leftover budget -------------------
    if evals.len() < budget {
        let mut rest: Vec<(u64, u64)> = space
            .valid_ids()
            .iter()
            .filter(|id| !evals.contains_key(id))
            .map(|&id| (splitmix64(cfg.seed ^ 0xf11f ^ id), id))
            .collect();
        rest.sort_unstable();
        let mut fill: Vec<u64> = rest
            .iter()
            .take(budget - evals.len())
            .map(|&(_, id)| id)
            .collect();
        fill.sort_unstable();
        let responses = eval_batch(space, cfg, eval, &fill);
        for (&id, &r) in fill.iter().zip(&responses) {
            evals.insert(id, r);
        }
        seeded.extend(fill.iter().copied());
        OBS_PHASE2.add(fill.len() as u64);
    }
    debug_assert_eq!(evals.len(), budget, "budget conservation");

    // Final surrogate for the report: refitted on everything simulated
    // (the per-round models only ever saw a prefix), powering both the
    // training RMSE and the model-assisted stratum estimates.
    let final_model = surrogate.is_some().then(|| {
        let (units, ys): (Vec<Vec<f64>>, Vec<f64>) = evals
            .iter()
            .map(|(&id, r)| (space.units(id), r.ipc))
            .unzip();
        let m = Surrogate::fit(&units, &ys, &cfg.surrogate);
        let rmse = m.rmse(&units, &ys);
        (m, rmse)
    });
    let train_rmse = final_model.as_ref().map(|(_, r)| *r);
    let holdout_rmse = (holdout_n > 0).then(|| (holdout_sse / holdout_n as f64).sqrt());
    if let Some(r) = train_rmse {
        OBS_RMSE_PPM.set_max((r * 1e6) as u64);
    }
    report(
        space,
        cfg,
        &strata,
        &evals,
        &seeded,
        phase1,
        final_model.as_ref().map(|(m, _)| m),
        train_rmse,
        holdout_rmse,
    )
}

/// Evaluates a batch of points through the order-preserving parallel
/// map; `ids` must be sorted so the batch layout is canonical.
fn eval_batch(space: &Space, cfg: &PlanConfig, eval: &dyn Evaluator, ids: &[u64]) -> Vec<Response> {
    debug_assert!(ids.windows(2).all(|w| w[0] < w[1]), "batch ids sorted");
    let threads = cfg.threads.unwrap_or_else(ssim_par::num_threads);
    ssim_par::par_map_with(threads, ids, |&id| eval.eval(space, id))
}

/// Capped greedy D'Hondt apportionment of `seats` over `weights`
/// (award the next seat to the eligible stratum maximising
/// `weight / (seats_held + 1)`, ties to the lowest index; a stratum is
/// eligible while its weight is non-zero and it holds fewer seats than
/// its cap). With `cover` set, the first seats go one-per-eligible-
/// stratum in descending weight order, guaranteeing stratum coverage.
///
/// The award sequence for fixed `(weights, caps, cover)` does not
/// depend on `seats`, so the allocation for `seats = k` is a prefix of
/// the allocation for `seats = k + 1` — the house-monotonicity the
/// `monotone refinement` invariant test relies on.
fn apportion(weights: &[u64], caps: &[usize], seats: usize, cover: bool) -> Vec<usize> {
    assert_eq!(weights.len(), caps.len());
    let mut out = vec![0usize; weights.len()];
    let eligible = |out: &[usize], h: usize| weights[h] > 0 && out[h] < caps[h];
    let mut left = seats;
    if cover {
        let mut by_weight: Vec<usize> = (0..weights.len()).collect();
        by_weight.sort_by_key(|&h| (std::cmp::Reverse(weights[h]), h));
        for h in by_weight {
            if left == 0 {
                break;
            }
            if eligible(&out, h) {
                out[h] += 1;
                left -= 1;
            }
        }
    }
    while left > 0 {
        let mut best: Option<usize> = None;
        for h in 0..weights.len() {
            if !eligible(&out, h) {
                continue;
            }
            // Compare w / (n+1) without division:
            // w_a * (n_b + 1) > w_b * (n_a + 1).
            let better = match best {
                None => true,
                Some(b) => {
                    weights[h] as u128 * (out[b] as u128 + 1)
                        > weights[b] as u128 * (out[h] as u128 + 1)
                }
            };
            if better {
                best = Some(h);
            }
        }
        match best {
            Some(h) => {
                out[h] += 1;
                left -= 1;
            }
            None => break,
        }
    }
    out
}

/// Assembles the final report (shared by adaptive and exhaustive runs)
/// and publishes the planner metric families.
#[allow(clippy::too_many_arguments)]
fn report(
    space: &Space,
    cfg: &PlanConfig,
    strata: &[Stratum],
    evals: &BTreeMap<u64, Response>,
    seeded: &std::collections::BTreeSet<u64>,
    phase1: Vec<u64>,
    model: Option<&Surrogate>,
    train_rmse: Option<f64>,
    holdout_rmse: Option<f64>,
) -> PlanReport {
    let records: Vec<EvalRecord> = evals
        .iter()
        .map(|(&id, &response)| EvalRecord {
            id,
            cost: space.cost(id),
            response,
        })
        .collect();
    let strata_reports: Vec<StratumReport> = strata
        .iter()
        .map(|st| {
            let mut s = Summary::new();
            // Model-assisted accumulators: predictions over the whole
            // stratum, residuals over the simulated subset, both summed
            // in member order (fixed-order f64 reduction).
            let mut pred_sum = 0.0;
            let mut resid_seeded = (0.0, 0u64); // (sum, count) over the probability sample
            let mut resid_all = 0.0;
            for &pos in &st.members {
                let id = space.valid_ids()[pos as usize];
                let pred = model.map(|m| m.predict(&space.units(id)));
                if let Some(p) = pred {
                    pred_sum += p;
                }
                if let Some(r) = evals.get(&id) {
                    s.add(r.ipc);
                    if let Some(p) = pred {
                        resid_all += r.ipc - p;
                        if seeded.contains(&id) {
                            resid_seeded.0 += r.ipc - p;
                            resid_seeded.1 += 1;
                        }
                    }
                }
            }
            let n = s.count();
            let mean_ipc = if n > 0 { s.mean() } else { 0.0 };
            // A fully simulated stratum needs no model: the estimator
            // reduces to the exact mean (and the report must degenerate
            // bit-exactly to the exhaustive one at full budget).
            let model_ipc = match model {
                Some(_) if n < st.members.len() as u64 => {
                    let correction = if resid_seeded.1 > 0 {
                        resid_seeded.0 / resid_seeded.1 as f64
                    } else if n > 0 {
                        resid_all / n as f64
                    } else {
                        0.0
                    };
                    pred_sum / st.members.len() as f64 + correction
                }
                _ => mean_ipc,
            };
            StratumReport {
                id: st.id,
                size: st.members.len() as u64,
                simulated: n,
                mean_ipc,
                stderr_ipc: if n >= 2 {
                    s.stddev() / (n as f64).sqrt()
                } else {
                    0.0
                },
                model_ipc,
            }
        })
        .collect();
    let points: Vec<(u64, f64, f64)> = records
        .iter()
        .map(|e| (e.id, e.cost, e.response.ipc))
        .collect();
    let pareto: Vec<ParetoPoint> = pareto_front(&points)
        .into_iter()
        .map(|id| ParetoPoint {
            id,
            coords: space.coords(id),
            cost: space.cost(id),
            ipc: evals[&id].ipc,
        })
        .collect();
    let sims: u64 = records.iter().map(|e| e.response.sims as u64).sum();
    let simulated = records.len() as u64;

    OBS_PLANS.inc();
    OBS_POINTS.add(simulated);
    OBS_SIMS.add(sims);
    OBS_SPENT.set_max(simulated);
    OBS_SAVED.set_max(space.points() as u64 - simulated);

    PlanReport {
        space_points: space.points() as u64,
        budget: cfg.budget.min(space.points()) as u64,
        simulated,
        sims,
        phase1,
        strata: strata_reports,
        pareto,
        surrogate_train_rmse: train_rmse,
        surrogate_holdout_rmse: holdout_rmse,
        evals: records,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_a_fixed_function() {
        assert_ne!(splitmix64(1), splitmix64(2));
        assert_eq!(splitmix64(42), splitmix64(42));
    }

    #[test]
    fn pareto_front_drops_dominated_points() {
        // (id, cost, ipc): 2 dominates 1 (cheaper, faster); 3 is the
        // expensive-but-fastest corner; 4 is dominated by 3.
        let pts = [(1, 2.0, 1.0), (2, 1.0, 1.5), (3, 3.0, 2.0), (4, 3.0, 1.9)];
        assert_eq!(pareto_front(&pts), vec![2, 3]);
    }

    #[test]
    fn pareto_front_keeps_exact_ties() {
        let pts = [(1, 1.0, 1.0), (2, 1.0, 1.0), (3, 2.0, 0.5)];
        assert_eq!(pareto_front(&pts), vec![1, 2]);
    }

    #[test]
    fn apportionment_is_house_monotone() {
        let weights = [50u64, 30, 20, 1];
        let caps = [40usize, 40, 40, 40];
        for cover in [false, true] {
            let mut prev = vec![0usize; weights.len()];
            for seats in 0..40 {
                let cur = apportion(&weights, &caps, seats, cover);
                assert_eq!(cur.iter().sum::<usize>(), seats);
                for (p, c) in prev.iter().zip(&cur) {
                    assert!(c >= p, "seats={seats} cover={cover}: allocation retracted");
                }
                prev = cur;
            }
        }
    }

    #[test]
    fn cover_reaches_every_stratum_before_doubling_up() {
        let weights = [100u64, 10, 1];
        let caps = [50usize, 50, 50];
        let out = apportion(&weights, &caps, 3, true);
        assert_eq!(out, vec![1, 1, 1]);
    }

    #[test]
    fn capped_apportionment_respects_caps_and_spills() {
        let weights = [100u64, 10, 10];
        let caps = [2usize, 5, 5];
        let out = apportion(&weights, &caps, 8, false);
        assert_eq!(out.iter().sum::<usize>(), 8);
        assert!(out[0] <= 2);
    }

    #[test]
    fn early_stop_obeys_min_and_max() {
        let es = EarlyStop {
            min_runs: 2,
            max_runs: 6,
            cov_target: 0.01,
        };
        // Constant observations converge at min_runs.
        let (mean, runs) = es.run(|_| 1.0);
        assert_eq!((mean, runs), (1.0, 2));
        // Wildly noisy observations exhaust max_runs.
        let (_, runs) = es.run(|i| if i % 2 == 0 { 1.0 } else { 10.0 });
        assert_eq!(runs, 6);
    }
}
