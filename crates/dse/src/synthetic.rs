//! A closed-form design-space response surface with seeded observation
//! noise — the planner's test double and its "millions of points"
//! scaling workload.
//!
//! Simulating a ~10⁶-point space exhaustively is exactly what the
//! planner exists to avoid, so its scaling story needs ground truth
//! that costs nanoseconds per point. The surface here is shaped like
//! the real §4.6 responses: diminishing returns per resource axis
//! (IPC flattens as windows grow), a soft interaction term (width
//! without window buys little), and MPKI that falls as the predictor
//! axis grows.
//!
//! **Determinism.** Noise is keyed by `(seed, point id, run index)`
//! through [`splitmix64`] only — never by call order — so any thread
//! count, batch shape or planner revision observes identical values.
//! The noise shape is a centred Irwin–Hall sum of three uniforms
//! (≈ Gaussian), built from multiplies and adds alone: no `ln`/`cos`,
//! whose last-bit behaviour differs across platform libm builds and
//! would break byte-determinism pins.

use crate::planner::{splitmix64, EarlyStop, Evaluator, Response};
use crate::space::Space;

/// The closed-form evaluator.
#[derive(Debug, Clone)]
pub struct SyntheticEvaluator {
    /// Root of the noise stream (surface shape is seeded separately by
    /// `seed ^ SURFACE_SALT`, so one space supports many noise draws).
    pub seed: u64,
    /// Observation noise scale (stddev of one simulated "run").
    pub noise: f64,
    /// Per-point convergence rule.
    pub early: EarlyStop,
}

const SURFACE_SALT: u64 = 0x5f3c_91a7;

impl SyntheticEvaluator {
    /// A quiet, smooth surface with a mild early-stop rule — the
    /// default test double.
    pub fn new(seed: u64) -> SyntheticEvaluator {
        SyntheticEvaluator {
            seed,
            noise: 0.01,
            early: EarlyStop::default(),
        }
    }

    /// The noise-free IPC of a point: base rate plus per-axis
    /// diminishing returns plus one pairwise interaction, weights drawn
    /// from the seeded surface stream.
    pub fn true_ipc(&self, space: &Space, id: u64) -> f64 {
        let units = space.units(id);
        let mut ipc = 0.7;
        for (a, &u) in units.iter().enumerate() {
            let w = unit_f64(splitmix64(self.seed ^ SURFACE_SALT ^ (a as u64 + 1)));
            // Saturating gain: steep early, flat late — the window/IPC
            // shape every §4.6 sweep shows.
            ipc += (0.3 + 0.5 * w) * u / (u + 0.35);
        }
        if units.len() >= 2 {
            ipc += 0.25 * units[0] * units[1];
        }
        ipc
    }

    /// The noise-free MPKI of a point (falls with the last axis — a
    /// stand-in for predictor sizing).
    pub fn true_mpki(&self, space: &Space, id: u64) -> f64 {
        let units = space.units(id);
        let last = units.last().copied().unwrap_or(0.0);
        12.0 - 8.0 * last / (last + 0.5)
    }

    /// One noisy observation of a point, keyed by `(point, run)`.
    pub fn observe_ipc(&self, space: &Space, id: u64, run: u32) -> f64 {
        self.true_ipc(space, id) + self.noise * noise_draw(self.seed, id, run)
    }
}

impl Evaluator for SyntheticEvaluator {
    fn eval(&self, space: &Space, id: u64) -> Response {
        let (ipc, sims) = self.early.run(|run| self.observe_ipc(space, id, run));
        Response {
            ipc,
            mpki: self.true_mpki(space, id),
            sims,
        }
    }
}

/// Maps a hash word to `[0, 1)`.
fn unit_f64(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// A centred Irwin–Hall(3) draw in `[-1.5, 1.5]`, stddev 0.5 — built
/// from adds and multiplies only, keyed by `(seed, id, run)`.
fn noise_draw(seed: u64, id: u64, run: u32) -> f64 {
    let base = splitmix64(seed ^ id.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ ((run as u64) << 48));
    let mut sum = 0.0;
    for k in 0..3u64 {
        sum += unit_f64(splitmix64(base ^ k));
    }
    sum - 1.5
}

/// The canonical ~1M-point synthetic space: six resource-like axes
/// (`16 × 16 × 16 × 16 × 4 × 4 = 1,048,576` raw points, no
/// constraint), cost growing superlinearly in the first two axes the
/// way window area does.
pub fn million_point_space() -> Space {
    big_space(16)
}

/// The [`million_point_space`] family at reduced radix for quick mode
/// and tests: `k × k × k × k × 4 × 4` points.
pub fn big_space(k: u64) -> Space {
    use crate::space::Axis;
    use std::sync::Arc;
    let wide: Vec<u64> = (1..=k).map(|i| i * 8).collect();
    let narrow: Vec<u64> = (1..=4).map(|i| i * 2).collect();
    let axes = vec![
        Axis::new("window", &wide),
        Axis::new("lsq", &wide),
        Axis::new("ifq", &wide),
        Axis::new("btb", &wide),
        Axis::new("width", &narrow),
        Axis::new("ports", &narrow),
    ];
    let cost = Arc::new(|c: &[u64]| {
        let quad = (c[0] * c[0] + c[1] * c[1]) as f64 / 64.0;
        let linear: u64 = c[2] + c[3] + 16 * (c[4] + c[5]);
        1.0 + quad + linear as f64
    });
    Space::new(axes, None, cost)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observations_are_keyed_not_stateful() {
        let s = big_space(3);
        let e = SyntheticEvaluator::new(7);
        let a = e.observe_ipc(&s, 5, 2);
        // Interleave unrelated observations; the keyed draw must not care.
        let _ = e.observe_ipc(&s, 9, 0);
        let b = e.observe_ipc(&s, 5, 2);
        assert_eq!(a.to_bits(), b.to_bits());
    }

    #[test]
    fn surface_rises_with_resources() {
        let s = big_space(3);
        let e = SyntheticEvaluator::new(7);
        let ids = s.valid_ids();
        let cheap = e.true_ipc(&s, ids[0]);
        let rich = e.true_ipc(&s, *ids.last().unwrap());
        assert!(rich > cheap, "{rich} vs {cheap}");
    }

    #[test]
    fn million_point_space_is_a_million_points() {
        // Construction enumerates validity; keep this test on the real
        // size so the scaling claim stays honest.
        assert_eq!(million_point_space().points(), 1 << 20);
    }
}
