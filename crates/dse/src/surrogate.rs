//! Pure-rust surrogate models for design-point responses.
//!
//! Two deliberately small learners, fitted on the planner's simulated
//! points and asked to rank everything else:
//!
//! * **Ridge regression** over a fixed quadratic feature map of the
//!   per-axis unit coordinates (linear + square + pairwise-product
//!   terms). Solved in closed form via Cholesky on the regularised
//!   normal equations — no iteration, no tolerance knobs, bit-stable
//!   for a fixed input order.
//! * **Gradient-boosted stumps** (optional) on the ridge residuals:
//!   depth-1 regression trees over the raw unit coordinates, a few
//!   dozen rounds with a constant learning rate. Stumps capture the
//!   cliffs a quadratic cannot (e.g. an undersized LSQ throttling an
//!   otherwise wide machine).
//!
//! Everything here is deterministic: candidate splits are scanned in
//! feature order, thresholds ascending, and a new best must improve
//! **strictly**, so ties resolve to the first candidate. The frozen
//! fixture test (`tests/surrogate.rs`) pins exact prediction bits.

/// The base coordinates the feature map expands.
///
/// `Quadratic` feeds the raw unit coordinates straight into the
/// quadratic map below — the right default for smooth responses.
/// `Bottleneck` first augments them with `√u` per axis (saturating
/// resources) and `min(u_i, u_j)` per axis pair: processor IPC is
/// throttled by its scarcest resource, and `min` is exactly the
/// interaction an axis-aligned model cannot build from products. Both
/// expansions are fixed functions of the coordinates — no fitting, no
/// state — so they preserve the planner's determinism contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FeatureMap {
    /// Raw unit coordinates.
    #[default]
    Quadratic,
    /// Units + `√u` + pairwise `min(u_i, u_j)` before the quadratic map.
    Bottleneck,
}

impl FeatureMap {
    /// Expands one unit-coordinate row into the base coordinates.
    pub fn expand(&self, units: &[f64]) -> Vec<f64> {
        match self {
            FeatureMap::Quadratic => units.to_vec(),
            FeatureMap::Bottleneck => {
                let d = units.len();
                let mut out = Vec::with_capacity(2 * d + d * (d - 1) / 2);
                out.extend_from_slice(units);
                out.extend(units.iter().map(|u| u.sqrt()));
                for i in 0..d {
                    for j in (i + 1)..d {
                        out.push(units[i].min(units[j]));
                    }
                }
                out
            }
        }
    }
}

/// The quadratic feature map over per-axis unit coordinates:
/// `[u_0 … u_{d-1}, u_0² … u_{d-1}², u_i·u_j for i < j]`.
pub fn features(units: &[f64]) -> Vec<f64> {
    let d = units.len();
    let mut out = Vec::with_capacity(2 * d + d * (d - 1) / 2);
    out.extend_from_slice(units);
    out.extend(units.iter().map(|u| u * u));
    for i in 0..d {
        for j in (i + 1)..d {
            out.push(units[i] * units[j]);
        }
    }
    out
}

// ---- ridge ----------------------------------------------------------

/// A fitted ridge regressor: standardised features, centred response,
/// closed-form weights.
#[derive(Debug, Clone)]
pub struct Ridge {
    /// Regularisation strength used at fit time.
    pub lambda: f64,
    weights: Vec<f64>,
    intercept: f64,
    feat_mean: Vec<f64>,
    feat_scale: Vec<f64>,
}

impl Ridge {
    /// Fits `(X^T X / n + λI) w = X^T y / n` on standardised features
    /// and a centred response.
    ///
    /// # Panics
    ///
    /// Panics when `xs` is empty or the rows disagree on width.
    pub fn fit(xs: &[Vec<f64>], ys: &[f64], lambda: f64) -> Ridge {
        assert!(
            !xs.is_empty() && xs.len() == ys.len(),
            "empty or ragged fit"
        );
        let n = xs.len() as f64;
        let d = xs[0].len();
        let mut feat_mean = vec![0.0; d];
        for x in xs {
            assert_eq!(x.len(), d, "ragged feature rows");
            for (m, v) in feat_mean.iter_mut().zip(x) {
                *m += v;
            }
        }
        for m in &mut feat_mean {
            *m /= n;
        }
        let mut feat_scale = vec![0.0; d];
        for x in xs {
            for ((s, m), v) in feat_scale.iter_mut().zip(&feat_mean).zip(x) {
                let c = v - m;
                *s += c * c;
            }
        }
        for s in &mut feat_scale {
            // Constant features standardise to zero columns; a unit
            // scale keeps them harmless instead of dividing by zero.
            *s = (*s / n).sqrt();
            if *s == 0.0 {
                *s = 1.0;
            }
        }
        let intercept = ys.iter().sum::<f64>() / n;

        // Normal equations on the standardised design.
        let mut a = vec![0.0; d * d];
        let mut b = vec![0.0; d];
        let mut z = vec![0.0; d];
        for (x, &y) in xs.iter().zip(ys) {
            for k in 0..d {
                z[k] = (x[k] - feat_mean[k]) / feat_scale[k];
            }
            let yc = y - intercept;
            for i in 0..d {
                b[i] += z[i] * yc;
                for j in i..d {
                    a[i * d + j] += z[i] * z[j];
                }
            }
        }
        for i in 0..d {
            for j in i..d {
                let v = a[i * d + j] / n;
                a[i * d + j] = v;
                a[j * d + i] = v;
            }
            a[i * d + i] += lambda;
            b[i] /= n;
        }
        let weights = solve_spd(&mut a, &b, d);
        Ridge {
            lambda,
            weights,
            intercept,
            feat_mean,
            feat_scale,
        }
    }

    /// Predicts one feature row.
    pub fn predict(&self, x: &[f64]) -> f64 {
        let mut y = self.intercept;
        for ((w, m), (s, v)) in self
            .weights
            .iter()
            .zip(&self.feat_mean)
            .zip(self.feat_scale.iter().zip(x))
        {
            y += w * (v - m) / s;
        }
        y
    }

    /// The fitted weights over standardised features (test access).
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// The fitted intercept (the training-response mean).
    pub fn intercept(&self) -> f64 {
        self.intercept
    }
}

/// Solves the symmetric positive-definite system `A w = b` in place by
/// Cholesky. A non-positive pivot (rank-deficient design at λ = 0)
/// falls back once to a tiny fixed jitter on the diagonal, keeping the
/// solve total and deterministic.
fn solve_spd(a: &mut [f64], b: &[f64], d: usize) -> Vec<f64> {
    fn cholesky(a: &[f64], d: usize) -> Option<Vec<f64>> {
        let mut l = vec![0.0; d * d];
        for i in 0..d {
            for j in 0..=i {
                let mut sum = a[i * d + j];
                for k in 0..j {
                    sum -= l[i * d + k] * l[j * d + k];
                }
                if i == j {
                    if sum <= 0.0 {
                        return None;
                    }
                    l[i * d + i] = sum.sqrt();
                } else {
                    l[i * d + j] = sum / l[j * d + j];
                }
            }
        }
        Some(l)
    }
    let l = cholesky(a, d).unwrap_or_else(|| {
        for i in 0..d {
            a[i * d + i] += 1e-10;
        }
        cholesky(a, d).expect("jittered normal matrix is positive definite")
    });
    // Forward then back substitution.
    let mut y = vec![0.0; d];
    for i in 0..d {
        let mut sum = b[i];
        for k in 0..i {
            sum -= l[i * d + k] * y[k];
        }
        y[i] = sum / l[i * d + i];
    }
    let mut w = vec![0.0; d];
    for i in (0..d).rev() {
        let mut sum = y[i];
        for k in (i + 1)..d {
            sum -= l[k * d + i] * w[k];
        }
        w[i] = sum / l[i * d + i];
    }
    w
}

// ---- gradient-boosted stumps ----------------------------------------

/// One depth-1 regression tree: `x[feat] <= threshold ? left : right`.
#[derive(Debug, Clone, PartialEq)]
pub struct Stump {
    /// Split feature index (into the raw unit coordinates).
    pub feat: usize,
    /// Split threshold (midpoint between adjacent training values).
    pub threshold: f64,
    /// Leaf value for `x[feat] <= threshold`.
    pub left: f64,
    /// Leaf value for `x[feat] > threshold`.
    pub right: f64,
}

/// A fitted stump ensemble.
#[derive(Debug, Clone, Default)]
pub struct Gbm {
    stumps: Vec<Stump>,
    learning_rate: f64,
}

impl Gbm {
    /// Fits `rounds` stumps to `ys` by greedy least-squares boosting
    /// with a constant learning rate. Rounds that cannot improve on the
    /// constant fit (all candidate splits tie) stop the ensemble early.
    ///
    /// # Panics
    ///
    /// Panics when `xs` is empty or ragged, or `rounds` is zero with a
    /// non-zero learning rate request — use `Gbm::default()` for "off".
    pub fn fit(xs: &[Vec<f64>], ys: &[f64], rounds: usize, learning_rate: f64) -> Gbm {
        assert!(
            !xs.is_empty() && xs.len() == ys.len(),
            "empty or ragged fit"
        );
        let d = xs[0].len();
        let n = xs.len();
        // Sort point order per feature once; every round reuses it.
        let order: Vec<Vec<u32>> = (0..d)
            .map(|f| {
                let mut idx: Vec<u32> = (0..n as u32).collect();
                idx.sort_by(|&i, &j| {
                    xs[i as usize][f]
                        .partial_cmp(&xs[j as usize][f])
                        .expect("finite features")
                        .then(i.cmp(&j))
                });
                idx
            })
            .collect();
        let mut resid = ys.to_vec();
        let mut stumps = Vec::new();
        for _ in 0..rounds {
            let Some(best) = best_stump(xs, &resid, &order) else {
                break;
            };
            for (r, x) in resid.iter_mut().zip(xs) {
                let leaf = if x[best.feat] <= best.threshold {
                    best.left
                } else {
                    best.right
                };
                *r -= learning_rate * leaf;
            }
            stumps.push(best);
        }
        Gbm {
            stumps,
            learning_rate,
        }
    }

    /// Predicts one raw coordinate row (sum of scaled stump outputs).
    pub fn predict(&self, x: &[f64]) -> f64 {
        self.stumps
            .iter()
            .map(|s| {
                let leaf = if x[s.feat] <= s.threshold {
                    s.left
                } else {
                    s.right
                };
                self.learning_rate * leaf
            })
            .sum()
    }

    /// The fitted stumps (test access).
    pub fn stumps(&self) -> &[Stump] {
        &self.stumps
    }
}

/// The least-squares-best stump over all features and thresholds, or
/// `None` when no split strictly beats the constant fit. One prefix
/// scan per feature over the presorted order; ties keep the first
/// (lowest feature, lowest threshold) candidate.
fn best_stump(xs: &[Vec<f64>], resid: &[f64], order: &[Vec<u32>]) -> Option<Stump> {
    let n = resid.len();
    let total: f64 = resid.iter().sum();
    let mut best: Option<(f64, Stump)> = None;
    for (f, idx) in order.iter().enumerate() {
        let mut left_sum = 0.0;
        for (k, &i) in idx.iter().enumerate().take(n - 1) {
            left_sum += resid[i as usize];
            let v = xs[i as usize][f];
            let v_next = xs[idx[k + 1] as usize][f];
            if v == v_next {
                continue; // can't split between equal values
            }
            let nl = (k + 1) as f64;
            let nr = (n - k - 1) as f64;
            let right_sum = total - left_sum;
            // SSE reduction of the two-mean fit vs the constant fit.
            let gain =
                left_sum * left_sum / nl + right_sum * right_sum / nr - total * total / n as f64;
            let better = match &best {
                None => gain > 1e-12,
                Some((g, _)) => gain > *g,
            };
            if better {
                best = Some((
                    gain,
                    Stump {
                        feat: f,
                        threshold: (v + v_next) / 2.0,
                        left: left_sum / nl,
                        right: right_sum / nr,
                    },
                ));
            }
        }
    }
    best.map(|(_, s)| s)
}

// ---- the combined surrogate -----------------------------------------

/// Hyper-parameters of one surrogate fit.
#[derive(Debug, Clone)]
pub struct SurrogateConfig {
    /// Ridge regularisation strength.
    pub ridge_lambda: f64,
    /// Boosting rounds over the ridge residuals; `0` disables the GBM
    /// stage.
    pub gbm_rounds: usize,
    /// Boosting learning rate.
    pub gbm_learning_rate: f64,
    /// Base-coordinate expansion applied before the quadratic map (and
    /// fed to the stump ensemble as extra split axes).
    pub features: FeatureMap,
}

impl Default for SurrogateConfig {
    fn default() -> Self {
        SurrogateConfig {
            ridge_lambda: 1e-3,
            gbm_rounds: 48,
            gbm_learning_rate: 0.25,
            features: FeatureMap::Quadratic,
        }
    }
}

/// Ridge over quadratic features plus an optional stump ensemble on the
/// residuals, fitted on per-axis unit coordinates (optionally expanded
/// by the configured [`FeatureMap`]).
#[derive(Debug, Clone)]
pub struct Surrogate {
    ridge: Ridge,
    gbm: Option<Gbm>,
    map: FeatureMap,
}

impl Surrogate {
    /// Fits the two stages on `(unit coordinates, response)` pairs.
    pub fn fit(units: &[Vec<f64>], ys: &[f64], cfg: &SurrogateConfig) -> Surrogate {
        let base: Vec<Vec<f64>> = units.iter().map(|u| cfg.features.expand(u)).collect();
        let feats: Vec<Vec<f64>> = base.iter().map(|u| features(u)).collect();
        let ridge = Ridge::fit(&feats, ys, cfg.ridge_lambda);
        let gbm = if cfg.gbm_rounds > 0 && units.len() >= 4 {
            let resid: Vec<f64> = feats
                .iter()
                .zip(ys)
                .map(|(x, &y)| y - ridge.predict(x))
                .collect();
            Some(Gbm::fit(
                &base,
                &resid,
                cfg.gbm_rounds,
                cfg.gbm_learning_rate,
            ))
        } else {
            None
        };
        Surrogate {
            ridge,
            gbm,
            map: cfg.features,
        }
    }

    /// Predicts the response at one unit-coordinate row.
    pub fn predict(&self, units: &[f64]) -> f64 {
        let base = self.map.expand(units);
        let mut y = self.ridge.predict(&features(&base));
        if let Some(g) = &self.gbm {
            y += g.predict(&base);
        }
        y
    }

    /// Root-mean-square error over a `(units, response)` set.
    pub fn rmse(&self, units: &[Vec<f64>], ys: &[f64]) -> f64 {
        assert!(!units.is_empty(), "rmse of empty set");
        let sse: f64 = units
            .iter()
            .zip(ys)
            .map(|(u, &y)| {
                let e = self.predict(u) - y;
                e * e
            })
            .sum();
        (sse / units.len() as f64).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn feature_map_width() {
        assert_eq!(features(&[0.5]).len(), 2);
        assert_eq!(features(&[0.1, 0.2]).len(), 5);
        assert_eq!(features(&[0.1, 0.2, 0.3]).len(), 9);
    }

    #[test]
    fn ridge_recovers_an_exact_line() {
        // y = 3 + 2x over distinct points, λ = 0 → exact interpolation.
        let xs: Vec<Vec<f64>> = [0.0, 0.5, 1.0, 2.0].iter().map(|&x| vec![x]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 + 2.0 * x[0]).collect();
        let r = Ridge::fit(&xs, &ys, 0.0);
        for (x, &y) in xs.iter().zip(&ys) {
            assert!((r.predict(x) - y).abs() < 1e-9, "{} vs {y}", r.predict(x));
        }
    }

    #[test]
    fn gbm_one_round_full_rate_fits_a_step() {
        let xs: Vec<Vec<f64>> = [0.0, 0.25, 0.75, 1.0].iter().map(|&x| vec![x]).collect();
        let ys = [1.0, 1.0, 5.0, 5.0];
        let g = Gbm::fit(&xs, &ys, 1, 1.0);
        assert_eq!(g.stumps().len(), 1);
        let s = &g.stumps()[0];
        assert_eq!(s.threshold, 0.5);
        assert_eq!((s.left, s.right), (1.0, 5.0));
        assert_eq!(g.predict(&[0.1]), 1.0);
        assert_eq!(g.predict(&[0.9]), 5.0);
    }
}
