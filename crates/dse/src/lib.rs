//! # ssim-dse — surrogate-guided design-space exploration
//!
//! The paper's §4.6 study sweeps a 1,792-point design space
//! exhaustively. This crate is the layer that makes much larger spaces
//! affordable: a **sweep planner** that decides *which* points to
//! simulate, spending a fixed point budget where it buys the most
//! information, in the spirit of two-phase stratified sampling (Ekman)
//! and learned performance predictors (Ali & Akram, NPS).
//!
//! The plan has four moves:
//!
//! 1. **Stratify** the space ([`Space::stratify`]): each axis is cut
//!    into coarse bins; a stratum is one cell of that grid.
//! 2. **Seed** every stratum with a cheap first phase (seeded hash
//!    order, house-monotone apportionment by stratum size).
//! 3. **Fit a surrogate** ([`Surrogate`]) — ridge regression over
//!    quadratic features plus optional gradient-boosted stumps — on
//!    the simulated `(config, IPC)` pairs.
//! 4. **Refine adaptively**: each round splits its budget between the
//!    predicted Pareto band (IPC vs a cost proxy) and Neyman
//!    variance allocation across strata, with per-point seed early
//!    stop reusing the §4.1 CoV convergence rule ([`EarlyStop`]).
//!
//! Everything is `std`-only and **byte-deterministic** for a fixed
//! `(space, config, evaluator)` — across runs, machines and
//! `SSIM_THREADS` settings. See the determinism contract in
//! [`planner`] and the test suites under `tests/`.
//!
//! The crate is deliberately simulator-agnostic: an [`Evaluator`] is
//! any pure function of `(space, point id)`. `ssim-bench` provides the
//! real fused-engine evaluator (the `dse` binary); [`synthetic`]
//! provides the closed-form surface used for tests and the
//! million-point scaling runs.

pub mod planner;
pub mod space;
pub mod surrogate;
pub mod synthetic;

pub use planner::{
    pareto_front, run_adaptive, run_exhaustive, splitmix64, EarlyStop, EvalRecord, Evaluator,
    ParetoPoint, PlanConfig, PlanReport, Response, StratumReport,
};
pub use space::{Axis, Constraint, CostFn, Space, Stratum};
pub use surrogate::{features, FeatureMap, Gbm, Ridge, Stump, Surrogate, SurrogateConfig};
pub use synthetic::{big_space, million_point_space, SyntheticEvaluator};
