//! Design spaces: named discrete axes, validity constraints, a cost
//! proxy, and stratification.
//!
//! A design point is a **raw index** into the mixed-radix cross product
//! of the axes (first axis is the most significant digit). Raw indexing
//! keeps a ~10⁶-point space representable as arithmetic plus one
//! `Vec<u32>` of valid positions — no materialised coordinate tuples —
//! while still giving every point a stable identity that survives
//! re-stratification, budget changes and thread counts.

use std::sync::Arc;

/// One named sweep axis with its discrete values in sweep order.
#[derive(Debug, Clone)]
pub struct Axis {
    /// Axis name (e.g. `"ruu"`).
    pub name: String,
    /// The values swept, in the order the exhaustive bins use.
    pub values: Vec<u64>,
}

impl Axis {
    /// An axis from a name and value list.
    ///
    /// # Panics
    ///
    /// Panics on an empty value list.
    pub fn new(name: &str, values: &[u64]) -> Axis {
        assert!(!values.is_empty(), "axis {name} has no values");
        Axis {
            name: name.to_string(),
            values: values.to_vec(),
        }
    }

    /// Maps a value to `[0, 1]` by position between the axis min and
    /// max (single-value axes map to 0). Surrogate features and
    /// synthetic response surfaces share this normalisation.
    pub fn unit(&self, value: u64) -> f64 {
        let min = *self.values.iter().min().expect("non-empty axis");
        let max = *self.values.iter().max().expect("non-empty axis");
        if max == min {
            0.0
        } else {
            (value - min) as f64 / (max - min) as f64
        }
    }
}

/// Validity predicate over a coordinate tuple (e.g. the paper's
/// `lsq <= ruu` constraint in §4.6).
pub type Constraint = Arc<dyn Fn(&[u64]) -> bool + Send + Sync>;

/// Cost proxy over a coordinate tuple: a cheap, simulation-free stand-in
/// for area/power against which the planner trades IPC (the Pareto
/// x-axis).
pub type CostFn = Arc<dyn Fn(&[u64]) -> f64 + Send + Sync>;

/// A discrete design space: axes, an optional validity constraint, and
/// a cost proxy.
#[derive(Clone)]
pub struct Space {
    axes: Vec<Axis>,
    cost: CostFn,
    /// Raw indices of the valid points, ascending.
    valid: Arc<Vec<u64>>,
}

impl std::fmt::Debug for Space {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Space")
            .field("axes", &self.axes)
            .field("points", &self.valid.len())
            .finish()
    }
}

impl Space {
    /// Builds a space, enumerating the valid raw indices once.
    ///
    /// # Panics
    ///
    /// Panics when the axes are empty, the raw product overflows
    /// `u64`, or the constraint rejects every point.
    pub fn new(axes: Vec<Axis>, constraint: Option<Constraint>, cost: CostFn) -> Space {
        assert!(!axes.is_empty(), "space needs at least one axis");
        let raw = axes
            .iter()
            .fold(1u64, |p, a| p.checked_mul(a.values.len() as u64).unwrap());
        let valid: Vec<u64> = match constraint {
            None => (0..raw).collect(),
            Some(c) => {
                let mut coords = vec![0u64; axes.len()];
                (0..raw)
                    .filter(|&id| {
                        decode_into(&axes, id, &mut coords);
                        c(&coords)
                    })
                    .collect()
            }
        };
        assert!(!valid.is_empty(), "constraint rejects the whole space");
        Space {
            axes,
            cost,
            valid: Arc::new(valid),
        }
    }

    /// The axes, in digit order (first = most significant).
    pub fn axes(&self) -> &[Axis] {
        &self.axes
    }

    /// Number of valid design points.
    pub fn points(&self) -> usize {
        self.valid.len()
    }

    /// The valid raw indices, ascending.
    pub fn valid_ids(&self) -> &[u64] {
        &self.valid
    }

    /// Decodes a raw index into its coordinate tuple.
    pub fn coords(&self, id: u64) -> Vec<u64> {
        let mut out = vec![0u64; self.axes.len()];
        decode_into(&self.axes, id, &mut out);
        out
    }

    /// The per-axis `[0, 1]` normalisation of a point ([`Axis::unit`]).
    pub fn units(&self, id: u64) -> Vec<f64> {
        self.coords(id)
            .iter()
            .zip(&self.axes)
            .map(|(&v, a)| a.unit(v))
            .collect()
    }

    /// The cost proxy of a point.
    pub fn cost(&self, id: u64) -> f64 {
        (self.cost)(&self.coords(id))
    }

    /// Assigns every valid point to a stratum: each axis is cut into at
    /// most `bins_per_axis` equal-width position bins, and a stratum is
    /// one cell of the resulting coarse grid. Returns the non-empty
    /// strata sorted by stratum id; each stratum lists positions into
    /// [`Space::valid_ids`], ascending.
    ///
    /// # Panics
    ///
    /// Panics when `bins_per_axis` is zero.
    pub fn stratify(&self, bins_per_axis: usize) -> Vec<Stratum> {
        assert!(bins_per_axis > 0, "need at least one bin per axis");
        let bins: Vec<usize> = self
            .axes
            .iter()
            .map(|a| a.values.len().min(bins_per_axis))
            .collect();
        let mut map = std::collections::BTreeMap::<u64, Vec<u32>>::new();
        let mut coords = vec![0u64; self.axes.len()];
        for (pos, &id) in self.valid.iter().enumerate() {
            decode_into(&self.axes, id, &mut coords);
            let mut sid = 0u64;
            for (ai, axis) in self.axes.iter().enumerate() {
                let vi = axis
                    .values
                    .iter()
                    .position(|&v| v == coords[ai])
                    .expect("decoded value is on the axis");
                let b = vi * bins[ai] / axis.values.len();
                sid = sid * bins[ai] as u64 + b as u64;
            }
            map.entry(sid).or_default().push(pos as u32);
        }
        map.into_iter()
            .map(|(id, members)| Stratum { id, members })
            .collect()
    }
}

/// One cell of the stratification grid.
#[derive(Debug, Clone)]
pub struct Stratum {
    /// Mixed-radix bin id (stable for a fixed `(space, bins_per_axis)`).
    pub id: u64,
    /// Member positions into [`Space::valid_ids`], ascending.
    pub members: Vec<u32>,
}

fn decode_into(axes: &[Axis], id: u64, out: &mut [u64]) {
    let mut rest = id;
    for (ai, axis) in axes.iter().enumerate().rev() {
        let n = axis.values.len() as u64;
        out[ai] = axis.values[(rest % n) as usize];
        rest /= n;
    }
    debug_assert_eq!(rest, 0, "raw index out of range");
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space2() -> Space {
        Space::new(
            vec![Axis::new("a", &[1, 2, 3]), Axis::new("b", &[10, 20])],
            None,
            Arc::new(|c: &[u64]| c[0] as f64 + c[1] as f64),
        )
    }

    #[test]
    fn raw_index_roundtrip_covers_the_product() {
        let s = space2();
        assert_eq!(s.points(), 6);
        let mut seen = std::collections::HashSet::new();
        for &id in s.valid_ids() {
            let c = s.coords(id);
            assert!([1, 2, 3].contains(&c[0]) && [10, 20].contains(&c[1]));
            seen.insert(c);
        }
        assert_eq!(seen.len(), 6);
    }

    #[test]
    fn constraint_filters_points() {
        let s = Space::new(
            vec![Axis::new("ruu", &[8, 16]), Axis::new("lsq", &[8, 16])],
            Some(Arc::new(|c: &[u64]| c[1] <= c[0])),
            Arc::new(|_: &[u64]| 1.0),
        );
        assert_eq!(s.points(), 3); // (8,8), (16,8), (16,16)
        for &id in s.valid_ids() {
            let c = s.coords(id);
            assert!(c[1] <= c[0]);
        }
    }

    #[test]
    fn strata_partition_the_space() {
        let s = space2();
        let strata = s.stratify(2);
        let total: usize = strata.iter().map(|st| st.members.len()).sum();
        assert_eq!(total, s.points());
        let mut ids: Vec<u64> = strata.iter().map(|st| st.id).collect();
        ids.dedup();
        assert_eq!(ids.len(), strata.len(), "stratum ids are unique");
        // Two bins on a 3-value axis × two bins on a 2-value axis.
        assert_eq!(strata.len(), 4);
    }

    #[test]
    fn unit_normalisation_spans_zero_to_one() {
        let a = Axis::new("x", &[8, 16, 32]);
        assert_eq!(a.unit(8), 0.0);
        assert_eq!(a.unit(32), 1.0);
        assert!(a.unit(16) > 0.0 && a.unit(16) < 1.0);
        assert_eq!(Axis::new("one", &[5]).unit(5), 0.0);
    }
}
