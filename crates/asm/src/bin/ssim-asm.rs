//! `ssim-asm` — assemble `.asm` files from the command line.
//!
//! ```text
//! ssim-asm build [--emit] [--run N] [--define NAME=VAL]... <file.asm>...
//! ```
//!
//! `build` assembles each file and prints a one-line summary (name,
//! static instruction count, memory size, initial-data bytes).
//! `--emit` additionally prints the canonical re-emission
//! ([`Program::to_asm`]), `--run N` executes up to `N` instructions on
//! the functional machine and reports the outcome (halted / out of
//! fuel / fault), and `--define NAME=VAL` overrides `.const` values in
//! the source, mirroring [`AsmOptions::define`].

use ssim_asm::{assemble_with, AsmOptions};
use ssim_func::{FuelOutcome, Machine};
use std::io::Write;
use std::process::ExitCode;

/// Print to stdout, tolerating a closed pipe (`ssim-asm ... | head`):
/// a write error is a reader that went away, not a failure.
macro_rules! out {
    ($($arg:tt)*) => {
        let _ = writeln!(std::io::stdout(), $($arg)*);
    };
}

const USAGE: &str = "usage: ssim-asm build [--emit] [--run N] [--define NAME=VAL]... <file.asm>...";

struct Cli {
    emit: bool,
    run: Option<u64>,
    defines: Vec<(String, i64)>,
    files: Vec<String>,
}

fn parse_cli(args: &[String]) -> Result<Cli, String> {
    let mut cli = Cli {
        emit: false,
        run: None,
        defines: Vec::new(),
        files: Vec::new(),
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--emit" => cli.emit = true,
            "--run" => {
                let n = it.next().ok_or("--run needs an instruction budget")?;
                cli.run = Some(n.parse().map_err(|_| format!("bad --run budget {n:?}"))?);
            }
            "--define" => {
                let kv = it.next().ok_or("--define needs NAME=VAL")?;
                let (name, val) = kv
                    .split_once('=')
                    .ok_or_else(|| format!("bad --define {kv:?}, expected NAME=VAL"))?;
                let val: i64 = val
                    .parse()
                    .map_err(|_| format!("bad --define value {val:?}"))?;
                cli.defines.push((name.to_string(), val));
            }
            _ if arg.starts_with('-') => return Err(format!("unknown flag {arg}")),
            _ => cli.files.push(arg.clone()),
        }
    }
    if cli.files.is_empty() {
        return Err("no input files".to_string());
    }
    Ok(cli)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let rest = match args.first().map(String::as_str) {
        Some("build") => &args[1..],
        _ => {
            eprintln!("{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let cli = match parse_cli(rest) {
        Ok(cli) => cli,
        Err(e) => {
            eprintln!("ssim-asm: {e}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };

    let mut opts = AsmOptions::new();
    for (name, val) in &cli.defines {
        opts = opts.define(name.clone(), *val);
    }

    let mut failed = false;
    for file in &cli.files {
        let src = match std::fs::read_to_string(file) {
            Ok(src) => src,
            Err(e) => {
                eprintln!("ssim-asm: {file}: {e}");
                failed = true;
                continue;
            }
        };
        let program = match assemble_with(&src, &opts) {
            Ok(p) => p,
            Err(diag) => {
                eprintln!("{file}: {diag}");
                failed = true;
                continue;
            }
        };
        let data_bytes: usize = program.init_data().iter().map(|(_, b)| b.len()).sum();
        out!(
            "{file}: \"{}\" {} instrs, mem {} B, {} data bytes",
            program.name(),
            program.len(),
            program.mem_size(),
            data_bytes
        );
        if cli.emit {
            let _ = write!(std::io::stdout(), "{program}");
        }
        if let Some(fuel) = cli.run {
            let mut m = Machine::new(&program);
            match m.run_fuel(fuel) {
                FuelOutcome::Halted { executed } => {
                    out!("{file}: halted after {executed} instructions");
                }
                FuelOutcome::OutOfFuel => {
                    out!("{file}: still running after {fuel} instructions");
                }
                FuelOutcome::Fault(fault) => {
                    eprintln!("{file}: fault: {fault}");
                    failed = true;
                }
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
