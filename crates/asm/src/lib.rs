//! `ssim-asm` — the textual assembler front-end for the ssim mini-RISC
//! ISA.
//!
//! The native workloads are Rust generators driving the
//! [`ssim_isa::Assembler`] DSL; this crate opens the same pipeline to
//! *text*: a hand-written lexer and parser for `.asm` files with
//! labels, data directives, dec/hex literals and `;`/`#`/`//` comments,
//! lowered through the very same DSL so textual and native programs
//! are indistinguishable downstream (profiler → synthetic generation →
//! simulation). Errors come back as a single rich [`Diagnostic`] with
//! line/column, a caret snippet and "did you mean" hints.
//!
//! The inverse direction lives in `ssim-isa`: `Program::to_asm()`
//! emits canonical text, and the pair round-trips exactly —
//! `assemble(&p.to_asm()).unwrap() == p` for every assembler-built
//! program.
//!
//! # Examples
//!
//! ```
//! let src = r#"
//! .name "sum"
//! .const LIMIT 10
//!     li r3, LIMIT
//! top:
//!     addi r2, r2, 1
//!     add r1, r1, r2
//!     blt r2, r3, top
//!     halt
//! "#;
//! let p = ssim_asm::assemble(src).expect("assembles");
//! assert_eq!(p.name(), "sum");
//! assert_eq!(p.len(), 5);
//! // Canonical re-emission assembles back to the identical program.
//! assert_eq!(ssim_asm::assemble(&p.to_asm()).unwrap(), p);
//! ```

mod diag;
mod lexer;
mod parser;

pub use diag::{did_you_mean, Diagnostic};
pub use parser::{AsmLimits, AsmOptions, MNEMONICS};

use ssim_isa::Program;

/// Assembles `.asm` source with default options (no constant
/// overrides, generous [`AsmLimits`]).
///
/// # Errors
///
/// Returns the first [`Diagnostic`] encountered, with the offending
/// source line attached.
pub fn assemble(src: &str) -> Result<Program, Diagnostic> {
    assemble_with(src, &AsmOptions::new())
}

/// Assembles `.asm` source with explicit options: constant overrides
/// (`AsmOptions::define`, which win over in-source `.const` defaults —
/// how corpus programs expose a tunable `ROUNDS`) and sandbox
/// [`AsmLimits`].
///
/// # Errors
///
/// See [`assemble`].
pub fn assemble_with(src: &str, opts: &AsmOptions) -> Result<Program, Diagnostic> {
    parser::parse(src, opts).map_err(|mut d| {
        d.source_line = src
            .lines()
            .nth(d.line.saturating_sub(1) as usize)
            .unwrap_or("")
            .to_string();
        d
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssim_isa::{InstrClass, Opcode, Reg};

    #[test]
    fn minimal_program_assembles() {
        let p = assemble("halt").unwrap();
        assert_eq!(p.len(), 1);
        assert_eq!(p.name(), "asm");
        assert_eq!(p.mem_size(), Program::DEFAULT_MEM_SIZE);
    }

    #[test]
    fn store_lowering_matches_the_dsl() {
        let p = assemble("st r5, 8(r4)\nhalt").unwrap();
        let i = p.instr(0).unwrap();
        let mut a = ssim_isa::Assembler::new("asm");
        a.st(Reg::R4, 8, Reg::R5);
        a.halt();
        assert_eq!(&a.finish().unwrap().code()[0], i);
    }

    #[test]
    fn const_overrides_win() {
        let src = ".const ROUNDS 5\nli r1, ROUNDS\nhalt";
        let p = assemble(src).unwrap();
        assert_eq!(p.instr(0).unwrap().imm, 5);
        let p = assemble_with(src, &AsmOptions::new().define("ROUNDS", 99)).unwrap();
        assert_eq!(p.instr(0).unwrap().imm, 99);
    }

    #[test]
    fn jump_table_directive_resolves_pcs() {
        let src = "
.mem 65536
.table 4096 a b
a:  nop
b:  halt
";
        let p = assemble(src).unwrap();
        let mem = p.initial_memory();
        let e0 = u64::from_le_bytes(mem[4096..4104].try_into().unwrap());
        let e1 = u64::from_le_bytes(mem[4104..4112].try_into().unwrap());
        assert_eq!((e0, e1), (0, 1));
    }

    #[test]
    fn typo_suggestions_and_positions() {
        let e = assemble("    addo r1, r0, 10\nhalt").unwrap_err();
        assert_eq!((e.line, e.col, e.len), (1, 5, 4));
        assert_eq!(e.help.as_deref(), Some("did you mean `add`?"));
        assert_eq!(e.source_line, "    addo r1, r0, 10");
        let rendered = e.to_string();
        assert!(rendered.contains("^^^^"));
    }

    #[test]
    fn undefined_label_points_at_first_reference() {
        let e = assemble("top:\n  jmp tpo\n  halt").unwrap_err();
        assert!(e.message.contains("`tpo` is never defined"));
        assert_eq!(e.line, 2);
        assert_eq!(e.help.as_deref(), Some("did you mean `top`?"));
    }

    #[test]
    fn missing_halt_is_a_diagnostic() {
        let e = assemble("nop\nnop").unwrap_err();
        assert!(e.message.contains("no `halt`"));
    }

    #[test]
    fn sandbox_limits_are_enforced() {
        let tight = AsmLimits {
            max_source_bytes: 16,
            ..AsmLimits::default()
        };
        let e = assemble_with(
            "nop\nnop\nnop\nnop\nhalt\n",
            &AsmOptions::new().limits(tight),
        )
        .unwrap_err();
        assert!(e.message.contains("byte limit"), "{}", e.message);

        let tight = AsmLimits {
            max_instructions: 2,
            ..AsmLimits::default()
        };
        let e = assemble_with("nop\nnop\nhalt\n", &AsmOptions::new().limits(tight)).unwrap_err();
        assert!(e.message.contains("instruction limit"), "{}", e.message);

        let tight = AsmLimits {
            max_mem_bytes: 1 << 20,
            ..AsmLimits::default()
        };
        let e =
            assemble_with(".mem 2097152\nhalt\n", &AsmOptions::new().limits(tight)).unwrap_err();
        assert!(e.message.contains("ceiling"), "{}", e.message);
    }

    #[test]
    fn data_bounds_checked_without_overflow() {
        let e = assemble(".mem 4096\n.words 4090 1\nhalt").unwrap_err();
        assert!(e.message.contains("exceeds memory size"));
        // Offsets near u64::MAX must not wrap.
        let e = assemble(".bytes 18446744073709551615 1\nhalt").unwrap_err();
        assert!(e.message.contains("exceeds memory size"));
    }

    #[test]
    fn mem_rules() {
        assert!(assemble(".mem 12345\nhalt").is_err()); // not a power of two
        assert!(assemble(".words 4096 1\n.mem 65536\nhalt").is_err()); // data first
        assert!(assemble(".mem 65536\n.mem 65536\nhalt").is_err()); // twice
    }

    #[test]
    fn classes_flow_through() {
        let p = assemble("fadd f1, f2, f3\nmul r1, r2, r3\nhalt").unwrap();
        assert_eq!(p.instr(0).unwrap().class(), InstrClass::FpAlu);
        assert_eq!(p.instr(1).unwrap().op, Opcode::Mul);
    }

    #[test]
    fn trailing_label_line_is_accepted() {
        let p = assemble("jmp end\nhalt\nend:\n").unwrap();
        assert_eq!(p.instr(0).unwrap().target, Some(2));
    }
}
