//! Parser and lowering: token stream → [`ssim_isa::Assembler`] → `Program`.
//!
//! The grammar is line-oriented; see DESIGN.md §14 for the full
//! reference. In short:
//!
//! ```text
//! line       := labeldef* (directive | instruction)? comment?
//! labeldef   := IDENT ':'
//! directive  := '.name' STRING
//!             | '.mem' INT                  ; power of two, before any data
//!             | '.const' IDENT INT          ; overridable via AsmOptions::define
//!             | '.words' INT INT*           ; offset, little-endian u64 words
//!             | '.bytes' INT INT*           ; offset, byte values 0..=255
//!             | '.table' INT IDENT+         ; offset, label PCs as u64 words
//! instruction:= MNEMONIC operands           ; e.g. `ld r2, 8(r1)`
//! ```
//!
//! Lowering reuses the exact [`Assembler`] emitter methods the native
//! workload generators call, so a textual program and a DSL program
//! describing the same instructions produce *identical* `Program`
//! values — the property the round-trip and differential harnesses
//! pin down.

use crate::diag::{did_you_mean, Diagnostic};
use crate::lexer::{lex, Spanned, Tok};
use ssim_isa::{Assembler, FReg, Label, Program, Reg};
use std::collections::HashMap;

/// Sandbox limits enforced while parsing (all checked *before* the
/// corresponding allocation happens, so a hostile source cannot make
/// the assembler itself blow up).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmLimits {
    /// Maximum accepted source length in bytes.
    pub max_source_bytes: usize,
    /// Maximum static instruction count.
    pub max_instructions: usize,
    /// Maximum total initial-data bytes across all chunks.
    pub max_data_bytes: usize,
    /// Maximum `.mem` data-memory size in bytes.
    pub max_mem_bytes: usize,
}

impl Default for AsmLimits {
    fn default() -> Self {
        AsmLimits {
            max_source_bytes: 8 << 20,
            max_instructions: 1 << 20,
            max_data_bytes: 32 << 20,
            max_mem_bytes: 1 << 30,
        }
    }
}

/// Assembly options: named-constant overrides plus sandbox limits.
///
/// Overrides win over in-source `.const` definitions, which is how the
/// corpus programs expose a tunable `ROUNDS` to the workload harness.
#[derive(Debug, Clone, Default)]
pub struct AsmOptions {
    /// `(name, value)` constant definitions that override `.const`.
    pub defs: Vec<(String, i64)>,
    /// Sandbox limits (generous defaults; `ssim-serve` tightens them).
    pub limits: AsmLimits,
}

impl AsmOptions {
    /// Default options: no overrides, default limits.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a constant override (wins over any in-source `.const`).
    pub fn define(mut self, name: impl Into<String>, value: i64) -> Self {
        self.defs.push((name.into(), value));
        self
    }

    /// Replaces the sandbox limits.
    pub fn limits(mut self, limits: AsmLimits) -> Self {
        self.limits = limits;
        self
    }
}

/// Every mnemonic the parser accepts (canonical opcodes plus the
/// `li`/`mv` pseudo-instructions) — the "did you mean" candidate set.
pub const MNEMONICS: &[&str] = &[
    "add", "sub", "and", "or", "xor", "sll", "srl", "sra", "slt", "sltu", "addi", "andi", "ori",
    "xori", "slli", "srli", "srai", "slti", "li", "mv", "nop", "mul", "div", "rem", "ld", "lb",
    "st", "sb", "fld", "fst", "beq", "bne", "blt", "bge", "bltu", "bgeu", "fbeq", "fblt", "fbge",
    "jmp", "call", "ret", "jr", "fadd", "fsub", "fmin", "fmax", "fabs", "fneg", "fcvt", "fcvti",
    "fmul", "fdiv", "fsqrt", "halt",
];

const DIRECTIVES: &[&str] = &[".name", ".mem", ".const", ".words", ".bytes", ".table"];

/// `(line, col, len)` of the token a deferred diagnostic points at.
type RefSpan = (u32, u32, u32);

/// A deferred `.table`: word-pool byte offset, the label names still
/// to resolve, and the directive's span for diagnostics.
type PendingTable = (u64, Vec<(String, RefSpan)>, RefSpan);

struct LabelEntry {
    label: Label,
    pc: Option<usize>,
    first_ref: Option<RefSpan>,
    def_line: Option<u32>,
}

struct Parser {
    toks: Vec<Spanned>,
    i: usize,
    asm: Assembler,
    limits: AsmLimits,
    labels: HashMap<String, LabelEntry>,
    consts: HashMap<String, i64>,
    locked_consts: Vec<String>,
    tables: Vec<PendingTable>,
    named: bool,
    mem_set: bool,
    mem_size: usize,
    data_emitted: bool,
    data_bytes: usize,
    last_line: u32,
}

/// Parses and lowers `src`. Positions in the returned diagnostic are
/// filled in; the offending `source_line` is attached by the caller
/// (`crate::assemble_with`).
pub fn parse(src: &str, opts: &AsmOptions) -> Result<Program, Diagnostic> {
    if src.len() > opts.limits.max_source_bytes {
        return Err(Diagnostic::new(
            1,
            1,
            1,
            format!(
                "source is {} bytes, over the {}-byte limit",
                src.len(),
                opts.limits.max_source_bytes
            ),
        ));
    }
    let toks = lex(src)?;
    let last_line = toks.last().map_or(1, |t| t.line);
    let mut consts = HashMap::new();
    let mut locked = Vec::new();
    for (name, value) in &opts.defs {
        consts.insert(name.clone(), *value);
        locked.push(name.clone());
    }
    let p = Parser {
        toks,
        i: 0,
        asm: Assembler::new("asm"),
        limits: opts.limits.clone(),
        labels: HashMap::new(),
        consts,
        locked_consts: locked,
        tables: Vec::new(),
        named: false,
        mem_set: false,
        mem_size: Program::DEFAULT_MEM_SIZE,
        data_emitted: false,
        data_bytes: 0,
        last_line,
    };
    p.run()
}

impl Parser {
    // ---- token cursor ---------------------------------------------------

    fn peek(&self) -> Spanned {
        self.toks.get(self.i).cloned().unwrap_or(Spanned {
            tok: Tok::Newline,
            line: self.last_line,
            col: 1,
            len: 1,
        })
    }

    fn next(&mut self) -> Spanned {
        let t = self.peek();
        if self.i < self.toks.len() {
            self.i += 1;
        }
        t
    }

    fn at_end(&self) -> bool {
        self.i >= self.toks.len()
    }

    fn err(&self, at: &Spanned, msg: impl Into<String>) -> Diagnostic {
        Diagnostic::new(at.line, at.col, at.len, msg)
    }

    // ---- driver ---------------------------------------------------------

    fn run(mut self) -> Result<Program, Diagnostic> {
        while !self.at_end() {
            self.statement()?;
        }
        self.resolve_labels_and_tables()?;
        let line = self.last_line;
        self.asm.finish().map_err(|e| match e {
            ssim_isa::AsmError::MissingHalt => {
                Diagnostic::new(line, 1, 1, "program contains no `halt` instruction")
                    .with_help("execution must be able to terminate; add `halt`")
            }
            other => Diagnostic::new(line, 1, 1, format!("assembly failed: {other}")),
        })
    }

    fn statement(&mut self) -> Result<(), Diagnostic> {
        // Leading label definitions: `name:` (several may stack).
        while let Tok::Ident(name) = self.peek().tok.clone() {
            if !matches!(self.toks.get(self.i + 1).map(|t| &t.tok), Some(Tok::Colon)) {
                break;
            }
            let at = self.next(); // ident
            self.next(); // colon
            self.define_label(&name, &at)?;
        }
        let t = self.next();
        match t.tok.clone() {
            Tok::Newline => Ok(()),
            Tok::Directive(word) => {
                self.directive(&word, &t)?;
                self.expect_newline()
            }
            Tok::Ident(word) => {
                self.instruction(&word, &t)?;
                if self.asm.here() > self.limits.max_instructions {
                    return Err(self.err(
                        &t,
                        format!(
                            "program exceeds the static instruction limit ({})",
                            self.limits.max_instructions
                        ),
                    ));
                }
                self.expect_newline()
            }
            _ => Err(self.err(
                &t,
                format!(
                    "expected an instruction, directive or label, found {}",
                    t.tok.describe()
                ),
            )),
        }
    }

    fn expect_newline(&mut self) -> Result<(), Diagnostic> {
        let t = self.next();
        if matches!(t.tok, Tok::Newline) {
            Ok(())
        } else {
            Err(self.err(
                &t,
                format!("expected end of line, found {}", t.tok.describe()),
            ))
        }
    }

    // ---- labels and constants -------------------------------------------

    fn define_label(&mut self, name: &str, at: &Spanned) -> Result<(), Diagnostic> {
        if parse_reg(name).is_some() {
            return Err(self.err(
                at,
                format!("`{name}` is a register name and cannot label code"),
            ));
        }
        let pc = self.asm.here();
        let entry = self.label_entry(name);
        if let Some(prev) = entry.def_line {
            return Err(self
                .err(at, format!("label `{name}` is defined twice"))
                .with_help(format!("first definition is on line {prev}")));
        }
        entry.def_line = Some(at.line);
        entry.pc = Some(pc);
        let label = entry.label;
        self.asm
            .bind(label)
            .expect("parser binds each label at most once");
        Ok(())
    }

    fn label_entry(&mut self, name: &str) -> &mut LabelEntry {
        if !self.labels.contains_key(name) {
            let label = self.asm.label();
            self.labels.insert(
                name.to_string(),
                LabelEntry {
                    label,
                    pc: None,
                    first_ref: None,
                    def_line: None,
                },
            );
        }
        self.labels.get_mut(name).expect("inserted above")
    }

    fn label_ref(&mut self) -> Result<Label, Diagnostic> {
        let t = self.next();
        let Tok::Ident(name) = &t.tok else {
            return Err(self.err(
                &t,
                format!("expected a label name, found {}", t.tok.describe()),
            ));
        };
        if parse_reg(name).is_some() {
            return Err(self.err(&t, format!("`{name}` is a register name, not a label")));
        }
        let span = (t.line, t.col, t.len);
        let entry = self.label_entry(name);
        entry.first_ref.get_or_insert(span);
        Ok(entry.label)
    }

    fn resolve_labels_and_tables(&mut self) -> Result<(), Diagnostic> {
        let defined: Vec<String> = self
            .labels
            .iter()
            .filter(|(_, e)| e.pc.is_some())
            .map(|(n, _)| n.clone())
            .collect();
        // Report the earliest dangling reference for determinism.
        let mut dangling: Option<(&str, RefSpan)> = None;
        for (name, e) in &self.labels {
            if e.pc.is_none() {
                let at = e.first_ref.expect("unreferenced labels are always defined");
                if dangling.is_none_or(|(_, b)| (at.0, at.1) < (b.0, b.1)) {
                    dangling = Some((name, at));
                }
            }
        }
        if let Some((name, (line, col, len))) = dangling {
            let mut d = Diagnostic::new(line, col, len, format!("label `{name}` is never defined"));
            if let Some(s) = did_you_mean(name, defined.iter().map(|s| s.as_str())) {
                d = d.with_help(format!("did you mean `{s}`?"));
            }
            return Err(d);
        }
        for (offset, names, span) in std::mem::take(&mut self.tables) {
            let mut pcs = Vec::with_capacity(names.len());
            for (name, (line, col, len)) in &names {
                let pc = self.labels[name]
                    .pc
                    .expect("dangling labels rejected above");
                let _ = (line, col, len);
                pcs.push(pc as u64);
            }
            let at = Spanned {
                tok: Tok::Newline,
                line: span.0,
                col: span.1,
                len: span.2,
            };
            self.data_chunk(offset, pcs.len() * 8, &at)?;
            self.asm
                .words(offset, &pcs)
                .map_err(|e| self.err(&at, format!("jump table does not fit: {e}")))?;
        }
        Ok(())
    }

    // ---- directives ------------------------------------------------------

    fn directive(&mut self, word: &str, at: &Spanned) -> Result<(), Diagnostic> {
        match word {
            ".name" => {
                let t = self.next();
                let Tok::Str(name) = &t.tok else {
                    return Err(self.err(
                        &t,
                        format!("`.name` takes a quoted string, found {}", t.tok.describe()),
                    ));
                };
                if self.named {
                    return Err(self.err(at, "`.name` appears more than once"));
                }
                self.named = true;
                self.asm.set_name(name.clone());
                Ok(())
            }
            ".mem" => {
                let size = self.expect_u64()?;
                if self.mem_set {
                    return Err(self.err(at, "`.mem` appears more than once"));
                }
                if self.data_emitted {
                    return Err(self
                        .err(at, "`.mem` must come before any data directive")
                        .with_help("data bounds are checked against the declared size"));
                }
                if size < 8 || !size.is_power_of_two() {
                    return Err(self.err(
                        at,
                        format!("memory size {size} is not a power of two (≥ 8)"),
                    ));
                }
                if size > self.limits.max_mem_bytes as u64 {
                    return Err(self.err(
                        at,
                        format!(
                            "memory size {size} exceeds the {}-byte ceiling",
                            self.limits.max_mem_bytes
                        ),
                    ));
                }
                self.mem_set = true;
                self.mem_size = size as usize;
                self.asm.set_mem_size(size as usize);
                Ok(())
            }
            ".const" => {
                let t = self.next();
                let Tok::Ident(name) = t.tok.clone() else {
                    return Err(self.err(
                        &t,
                        format!("`.const` takes a name, found {}", t.tok.describe()),
                    ));
                };
                if parse_reg(&name).is_some() {
                    return Err(self.err(
                        &t,
                        format!("`{name}` is a register name and cannot be a constant"),
                    ));
                }
                let value = self.expect_imm()?;
                if self.locked_consts.iter().any(|n| n == &name) {
                    // An external override (AsmOptions::define) wins;
                    // the in-source default is ignored.
                    return Ok(());
                }
                if self.consts.insert(name.clone(), value).is_some() {
                    return Err(self.err(&t, format!("constant `{name}` is defined twice")));
                }
                Ok(())
            }
            ".words" => {
                let offset = self.expect_u64()?;
                let mut values = Vec::new();
                while !matches!(self.peek().tok, Tok::Newline) {
                    values.push(self.expect_u64()?);
                }
                self.data_chunk(offset, values.len() * 8, at)?;
                self.asm
                    .words(offset, &values)
                    .map_err(|e| self.err(at, format!("{e}")))
            }
            ".bytes" => {
                let offset = self.expect_u64()?;
                let mut bytes = Vec::new();
                while !matches!(self.peek().tok, Tok::Newline) {
                    let t = self.peek();
                    let v = self.expect_u64()?;
                    if v > 255 {
                        return Err(self.err(&t, format!("byte value {v} is out of range 0..=255")));
                    }
                    bytes.push(v as u8);
                }
                self.data_chunk(offset, bytes.len(), at)?;
                self.asm
                    .bytes(offset, &bytes)
                    .map_err(|e| self.err(at, format!("{e}")))
            }
            ".table" => {
                let offset = self.expect_u64()?;
                let mut names = Vec::new();
                while !matches!(self.peek().tok, Tok::Newline) {
                    let t = self.next();
                    let Tok::Ident(name) = t.tok.clone() else {
                        return Err(self.err(
                            &t,
                            format!(
                                "`.table` entries are label names, found {}",
                                t.tok.describe()
                            ),
                        ));
                    };
                    if parse_reg(&name).is_some() {
                        return Err(
                            self.err(&t, format!("`{name}` is a register name, not a label"))
                        );
                    }
                    let span = (t.line, t.col, t.len);
                    self.label_entry(&name).first_ref.get_or_insert(span);
                    names.push((name, span));
                }
                if names.is_empty() {
                    return Err(self.err(at, "`.table` needs at least one label entry"));
                }
                // Reserve the data-budget and bounds now; PCs resolve at
                // the end of the parse.
                self.data_emitted = true;
                self.tables.push((offset, names, (at.line, at.col, at.len)));
                Ok(())
            }
            other => {
                let mut d = self.err(at, format!("unknown directive `{other}`"));
                if let Some(s) = did_you_mean(other, DIRECTIVES.iter().copied()) {
                    d = d.with_help(format!("did you mean `{s}`?"));
                }
                Err(d)
            }
        }
    }

    /// Accounts a data chunk against the sandbox limits and the declared
    /// memory size, with overflow-safe math.
    fn data_chunk(&mut self, offset: u64, len: usize, at: &Spanned) -> Result<(), Diagnostic> {
        self.data_emitted = true;
        self.data_bytes = self.data_bytes.saturating_add(len);
        if self.data_bytes > self.limits.max_data_bytes {
            return Err(self.err(
                at,
                format!(
                    "total initial data exceeds the {}-byte limit",
                    self.limits.max_data_bytes
                ),
            ));
        }
        let mem = self.mem_size as u64;
        let end = offset.checked_add(len as u64);
        if end.is_none() || end.unwrap() > mem {
            return Err(self.err(
                at,
                format!("data chunk at offset {offset} of length {len} exceeds memory size {mem}"),
            ));
        }
        Ok(())
    }

    // ---- instructions ----------------------------------------------------

    fn instruction(&mut self, word: &str, at: &Spanned) -> Result<(), Diagnostic> {
        let m = word.to_ascii_lowercase();
        match m.as_str() {
            "nop" => self.asm.nop(),
            "halt" => self.asm.halt(),
            "ret" => self.asm.ret(),
            "add" | "sub" | "and" | "or" | "xor" | "sll" | "srl" | "sra" | "slt" | "sltu"
            | "mul" | "div" | "rem" => {
                let rd = self.int_reg()?;
                self.comma()?;
                let rs1 = self.int_reg()?;
                self.comma()?;
                let rs2 = self.int_reg()?;
                match m.as_str() {
                    "add" => self.asm.add(rd, rs1, rs2),
                    "sub" => self.asm.sub(rd, rs1, rs2),
                    "and" => self.asm.and(rd, rs1, rs2),
                    "or" => self.asm.or(rd, rs1, rs2),
                    "xor" => self.asm.xor(rd, rs1, rs2),
                    "sll" => self.asm.sll(rd, rs1, rs2),
                    "srl" => self.asm.srl(rd, rs1, rs2),
                    "sra" => self.asm.sra(rd, rs1, rs2),
                    "slt" => self.asm.slt(rd, rs1, rs2),
                    "sltu" => self.asm.sltu(rd, rs1, rs2),
                    "mul" => self.asm.mul(rd, rs1, rs2),
                    "div" => self.asm.div(rd, rs1, rs2),
                    _ => self.asm.rem(rd, rs1, rs2),
                }
            }
            "addi" | "andi" | "ori" | "xori" | "slli" | "srli" | "srai" | "slti" => {
                let rd = self.int_reg()?;
                self.comma()?;
                let rs1 = self.int_reg()?;
                self.comma()?;
                let imm = self.expect_imm()?;
                match m.as_str() {
                    "addi" => self.asm.addi(rd, rs1, imm),
                    "andi" => self.asm.andi(rd, rs1, imm),
                    "ori" => self.asm.ori(rd, rs1, imm),
                    "xori" => self.asm.xori(rd, rs1, imm),
                    "slli" => self.asm.slli(rd, rs1, imm),
                    "srli" => self.asm.srli(rd, rs1, imm),
                    "srai" => self.asm.srai(rd, rs1, imm),
                    _ => self.asm.slti(rd, rs1, imm),
                }
            }
            "li" => {
                let rd = self.int_reg()?;
                self.comma()?;
                let imm = self.expect_imm()?;
                self.asm.li(rd, imm);
            }
            "mv" => {
                let rd = self.int_reg()?;
                self.comma()?;
                let rs = self.int_reg()?;
                self.asm.mv(rd, rs);
            }
            "ld" | "lb" => {
                let rd = self.int_reg()?;
                self.comma()?;
                let (base, imm) = self.mem_operand()?;
                if m == "ld" {
                    self.asm.ld(rd, base, imm);
                } else {
                    self.asm.lb(rd, base, imm);
                }
            }
            "fld" => {
                let fd = self.fp_reg()?;
                self.comma()?;
                let (base, imm) = self.mem_operand()?;
                self.asm.fld(fd, base, imm);
            }
            "st" | "sb" => {
                let value = self.int_reg()?;
                self.comma()?;
                let (base, imm) = self.mem_operand()?;
                if m == "st" {
                    self.asm.st(base, imm, value);
                } else {
                    self.asm.sb(base, imm, value);
                }
            }
            "fst" => {
                let value = self.fp_reg()?;
                self.comma()?;
                let (base, imm) = self.mem_operand()?;
                self.asm.fst(base, imm, value);
            }
            "beq" | "bne" | "blt" | "bge" | "bltu" | "bgeu" => {
                let rs1 = self.int_reg()?;
                self.comma()?;
                let rs2 = self.int_reg()?;
                self.comma()?;
                let l = self.label_ref()?;
                match m.as_str() {
                    "beq" => self.asm.beq(rs1, rs2, l),
                    "bne" => self.asm.bne(rs1, rs2, l),
                    "blt" => self.asm.blt(rs1, rs2, l),
                    "bge" => self.asm.bge(rs1, rs2, l),
                    "bltu" => self.asm.bltu(rs1, rs2, l),
                    _ => self.asm.bgeu(rs1, rs2, l),
                }
            }
            "fbeq" | "fblt" | "fbge" => {
                let fs1 = self.fp_reg()?;
                self.comma()?;
                let fs2 = self.fp_reg()?;
                self.comma()?;
                let l = self.label_ref()?;
                match m.as_str() {
                    "fbeq" => self.asm.fbeq(fs1, fs2, l),
                    "fblt" => self.asm.fblt(fs1, fs2, l),
                    _ => self.asm.fbge(fs1, fs2, l),
                }
            }
            "jmp" => {
                let l = self.label_ref()?;
                self.asm.jmp(l);
            }
            "call" => {
                let l = self.label_ref()?;
                self.asm.call(l);
            }
            "jr" => {
                let rs = self.int_reg()?;
                self.asm.jr(rs);
            }
            "fadd" | "fsub" | "fmul" | "fdiv" | "fmin" | "fmax" => {
                let fd = self.fp_reg()?;
                self.comma()?;
                let fs1 = self.fp_reg()?;
                self.comma()?;
                let fs2 = self.fp_reg()?;
                match m.as_str() {
                    "fadd" => self.asm.fadd(fd, fs1, fs2),
                    "fsub" => self.asm.fsub(fd, fs1, fs2),
                    "fmul" => self.asm.fmul(fd, fs1, fs2),
                    "fdiv" => self.asm.fdiv(fd, fs1, fs2),
                    "fmin" => self.asm.fmin(fd, fs1, fs2),
                    _ => self.asm.fmax(fd, fs1, fs2),
                }
            }
            "fsqrt" | "fabs" | "fneg" => {
                let fd = self.fp_reg()?;
                self.comma()?;
                let fs = self.fp_reg()?;
                match m.as_str() {
                    "fsqrt" => self.asm.fsqrt(fd, fs),
                    "fabs" => self.asm.fabs(fd, fs),
                    _ => self.asm.fneg(fd, fs),
                }
            }
            "fcvt" => {
                let fd = self.fp_reg()?;
                self.comma()?;
                let rs = self.int_reg()?;
                self.asm.fcvt(fd, rs);
            }
            "fcvti" => {
                let rd = self.int_reg()?;
                self.comma()?;
                let fs = self.fp_reg()?;
                self.asm.fcvti(rd, fs);
            }
            other => {
                let mut d = self.err(at, format!("unknown opcode `{other}`"));
                if let Some(s) = did_you_mean(other, MNEMONICS.iter().copied()) {
                    d = d.with_help(format!("did you mean `{s}`?"));
                }
                return Err(d);
            }
        }
        Ok(())
    }

    // ---- operand helpers -------------------------------------------------

    fn comma(&mut self) -> Result<(), Diagnostic> {
        let t = self.next();
        if matches!(t.tok, Tok::Comma) {
            Ok(())
        } else {
            Err(self.err(&t, format!("expected `,`, found {}", t.tok.describe())))
        }
    }

    fn int_reg(&mut self) -> Result<Reg, Diagnostic> {
        let t = self.next();
        match &t.tok {
            Tok::Ident(w) => match parse_reg(w) {
                Some(RegRef::Int(r)) => Ok(r),
                Some(RegRef::Fp(_)) => Err(self.err(
                    &t,
                    format!("expected an integer register (r0–r31), found `{w}`"),
                )),
                None => Err(self.err(
                    &t,
                    format!("expected an integer register (r0–r31), found `{w}`"),
                )),
            },
            other => Err(self.err(
                &t,
                format!(
                    "expected an integer register (r0–r31), found {}",
                    other.describe()
                ),
            )),
        }
    }

    fn fp_reg(&mut self) -> Result<FReg, Diagnostic> {
        let t = self.next();
        match &t.tok {
            Tok::Ident(w) => match parse_reg(w) {
                Some(RegRef::Fp(r)) => Ok(r),
                _ => Err(self.err(
                    &t,
                    format!("expected a floating-point register (f0–f31), found `{w}`"),
                )),
            },
            other => Err(self.err(
                &t,
                format!(
                    "expected a floating-point register (f0–f31), found {}",
                    other.describe()
                ),
            )),
        }
    }

    /// `imm(reg)` addressing: returns `(base, offset)`.
    fn mem_operand(&mut self) -> Result<(Reg, i64), Diagnostic> {
        let imm = self.expect_imm()?;
        let t = self.next();
        if !matches!(t.tok, Tok::LParen) {
            return Err(self.err(
                &t,
                format!(
                    "expected `(` of an `imm(reg)` address, found {}",
                    t.tok.describe()
                ),
            ));
        }
        let base = self.int_reg()?;
        let t = self.next();
        if !matches!(t.tok, Tok::RParen) {
            return Err(self.err(&t, format!("expected `)`, found {}", t.tok.describe())));
        }
        Ok((base, imm))
    }

    /// An immediate: a literal or a `.const`/`define` name. Hex values
    /// up to `u64::MAX` wrap two's-complement into `i64` (so
    /// `0xffffffffffffffff` is `-1`).
    fn expect_imm(&mut self) -> Result<i64, Diagnostic> {
        let t = self.next();
        match &t.tok {
            Tok::Int(v) => Ok(*v as i64),
            Tok::Ident(name) => match self.consts.get(name) {
                Some(v) => Ok(*v),
                None => {
                    let mut d = self.err(
                        &t,
                        format!("unknown constant `{name}` in immediate position"),
                    );
                    if let Some(s) = did_you_mean(name, self.consts.keys().map(|s| s.as_str())) {
                        d = d.with_help(format!("did you mean `{s}`?"));
                    } else {
                        d = d.with_help("declare it with `.const NAME VALUE`");
                    }
                    Err(d)
                }
            },
            other => Err(self.err(
                &t,
                format!(
                    "expected an immediate (number or constant), found {}",
                    other.describe()
                ),
            )),
        }
    }

    /// An unsigned value (offset, word, byte or size): negative values
    /// are interpreted two's-complement (`-1` ⇒ `u64::MAX`) to match
    /// `expect_imm`.
    fn expect_u64(&mut self) -> Result<u64, Diagnostic> {
        self.expect_imm().map(|v| v as u64)
    }
}

enum RegRef {
    Int(Reg),
    Fp(FReg),
}

/// `r0`–`r31` / `f0`–`f31`, case-insensitive; anything else is not a
/// register.
fn parse_reg(word: &str) -> Option<RegRef> {
    let mut chars = word.chars();
    let kind = chars.next()?.to_ascii_lowercase();
    if kind != 'r' && kind != 'f' {
        return None;
    }
    let rest = chars.as_str();
    if rest.is_empty() || !rest.bytes().all(|b| b.is_ascii_digit()) || rest.len() > 2 {
        return None;
    }
    let n: u8 = rest.parse().ok()?;
    if n >= 32 {
        return None;
    }
    Some(if kind == 'r' {
        RegRef::Int(Reg::new(n))
    } else {
        RegRef::Fp(FReg::new(n))
    })
}
