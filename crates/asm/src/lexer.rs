//! Hand-written lexer for `.asm` source.
//!
//! Produces a flat stream of position-stamped tokens. Comments run from
//! `;`, `#` or `//` to end of line; newlines are significant (one
//! statement per line) and are emitted as tokens.

use crate::diag::Diagnostic;

/// A lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// A bare word: mnemonic, register, label or constant name.
    Ident(String),
    /// A `.directive` word (leading dot included).
    Directive(String),
    /// An integer literal (decimal or `0x` hex, optionally negative).
    Int(i128),
    /// A double-quoted string literal (escapes already resolved).
    Str(String),
    /// `,`
    Comma,
    /// `:`
    Colon,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// End of line.
    Newline,
}

impl Tok {
    /// Short human name used in "expected X, found Y" messages.
    pub fn describe(&self) -> String {
        match self {
            Tok::Ident(s) => format!("`{s}`"),
            Tok::Directive(s) => format!("`{s}`"),
            Tok::Int(v) => format!("number `{v}`"),
            Tok::Str(_) => "string literal".into(),
            Tok::Comma => "`,`".into(),
            Tok::Colon => "`:`".into(),
            Tok::LParen => "`(`".into(),
            Tok::RParen => "`)`".into(),
            Tok::Newline => "end of line".into(),
        }
    }
}

/// A token plus its 1-based source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Spanned {
    pub tok: Tok,
    pub line: u32,
    pub col: u32,
    pub len: u32,
}

/// Lexes the whole source, or reports the first lexical error.
///
/// The returned stream always ends with a `Newline` token, so the
/// parser can treat end-of-input uniformly.
pub fn lex(src: &str) -> Result<Vec<Spanned>, Diagnostic> {
    let mut out = Vec::new();
    let mut line_no: u32 = 0;
    for line in src.lines() {
        line_no += 1;
        lex_line(line, line_no, &mut out)?;
        out.push(Spanned {
            tok: Tok::Newline,
            line: line_no,
            col: line.chars().count() as u32 + 1,
            len: 1,
        });
    }
    if out.is_empty() {
        out.push(Spanned {
            tok: Tok::Newline,
            line: 1,
            col: 1,
            len: 1,
        });
    }
    Ok(out)
}

fn lex_line(line: &str, line_no: u32, out: &mut Vec<Spanned>) -> Result<(), Diagnostic> {
    let chars: Vec<char> = line.chars().collect();
    let mut i = 0usize;
    while i < chars.len() {
        let c = chars[i];
        let col = i as u32 + 1;
        match c {
            ' ' | '\t' | '\r' => i += 1,
            ';' | '#' => break,
            '/' if chars.get(i + 1) == Some(&'/') => break,
            ',' => {
                out.push(tok(Tok::Comma, line_no, col, 1));
                i += 1;
            }
            ':' => {
                out.push(tok(Tok::Colon, line_no, col, 1));
                i += 1;
            }
            '(' => {
                out.push(tok(Tok::LParen, line_no, col, 1));
                i += 1;
            }
            ')' => {
                out.push(tok(Tok::RParen, line_no, col, 1));
                i += 1;
            }
            '"' => {
                let (s, consumed) = lex_string(&chars[i..], line_no, col)?;
                out.push(tok(Tok::Str(s), line_no, col, consumed as u32));
                i += consumed;
            }
            '.' => {
                let start = i;
                i += 1;
                while i < chars.len() && is_ident_char(chars[i]) {
                    i += 1;
                }
                let word: String = chars[start..i].iter().collect();
                if word.len() == 1 {
                    return Err(Diagnostic::new(line_no, col, 1, "stray `.`")
                        .with_help("directives look like `.mem 65536`"));
                }
                out.push(tok(Tok::Directive(word), line_no, col, (i - start) as u32));
            }
            '-' | '0'..='9' => {
                let start = i;
                let value = lex_number(&chars, &mut i, line_no, col)?;
                out.push(tok(Tok::Int(value), line_no, col, (i - start) as u32));
            }
            c if is_ident_start(c) => {
                let start = i;
                while i < chars.len() && is_ident_char(chars[i]) {
                    i += 1;
                }
                let word: String = chars[start..i].iter().collect();
                out.push(tok(Tok::Ident(word), line_no, col, (i - start) as u32));
            }
            other => {
                return Err(Diagnostic::new(
                    line_no,
                    col,
                    1,
                    format!("unexpected character `{other}`"),
                ));
            }
        }
    }
    Ok(())
}

fn tok(t: Tok, line: u32, col: u32, len: u32) -> Spanned {
    Spanned {
        tok: t,
        line,
        col,
        len,
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_ascii_alphabetic() || c == '_'
}

fn is_ident_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

fn lex_number(chars: &[char], i: &mut usize, line: u32, col: u32) -> Result<i128, Diagnostic> {
    let start = *i;
    let negative = chars[*i] == '-';
    if negative {
        *i += 1;
        if !matches!(chars.get(*i), Some('0'..='9')) {
            return Err(Diagnostic::new(line, col, 1, "`-` must start a number"));
        }
    }
    let hex = chars.get(*i) == Some(&'0') && matches!(chars.get(*i + 1), Some('x') | Some('X'));
    let mut value: i128 = 0;
    let mut digits = 0usize;
    if hex {
        *i += 2;
        while let Some(&c) = chars.get(*i) {
            if c == '_' {
                *i += 1;
                continue;
            }
            let Some(d) = c.to_digit(16) else { break };
            value = value
                .checked_mul(16)
                .and_then(|v| v.checked_add(d as i128))
                .ok_or_else(|| too_large(chars, start, *i, line, col))?;
            digits += 1;
            *i += 1;
        }
        if digits == 0 {
            return Err(Diagnostic::new(
                line,
                col,
                (*i - start) as u32,
                "hex literal has no digits",
            ));
        }
    } else {
        while let Some(&c) = chars.get(*i) {
            if c == '_' {
                *i += 1;
                continue;
            }
            let Some(d) = c.to_digit(10) else { break };
            value = value
                .checked_mul(10)
                .and_then(|v| v.checked_add(d as i128))
                .ok_or_else(|| too_large(chars, start, *i, line, col))?;
            digits += 1;
            *i += 1;
        }
        debug_assert!(digits > 0, "caller guarantees a leading digit");
    }
    // Reject trailing junk glued to the number (`12abc`).
    if matches!(chars.get(*i), Some(&c) if is_ident_char(c)) {
        return Err(Diagnostic::new(
            line,
            col,
            (*i - start + 1) as u32,
            "malformed numeric literal",
        ));
    }
    if negative {
        value = -value;
    }
    // Everything representable on the wire fits in [i64::MIN, u64::MAX].
    if value < i64::MIN as i128 || value > u64::MAX as i128 {
        return Err(too_large(chars, start, *i, line, col));
    }
    Ok(value)
}

fn too_large(chars: &[char], start: usize, end: usize, line: u32, col: u32) -> Diagnostic {
    let text: String = chars[start..end.min(chars.len())].iter().collect();
    Diagnostic::new(
        line,
        col,
        (end - start).max(1) as u32,
        format!("numeric literal `{text}` is out of range"),
    )
}

fn lex_string(chars: &[char], line: u32, col: u32) -> Result<(String, usize), Diagnostic> {
    debug_assert_eq!(chars[0], '"');
    let mut s = String::new();
    let mut i = 1usize;
    while i < chars.len() {
        match chars[i] {
            '"' => return Ok((s, i + 1)),
            '\\' => {
                match chars.get(i + 1) {
                    Some('"') => s.push('"'),
                    Some('\\') => s.push('\\'),
                    _ => {
                        return Err(Diagnostic::new(
                            line,
                            col + i as u32,
                            2,
                            "unknown string escape (only `\\\"` and `\\\\` are supported)",
                        ));
                    }
                }
                i += 2;
            }
            c => {
                s.push(c);
                i += 1;
            }
        }
    }
    Err(Diagnostic::new(
        line,
        col,
        chars.len() as u32,
        "unterminated string literal",
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|s| s.tok).collect()
    }

    #[test]
    fn basic_instruction_line() {
        assert_eq!(
            toks("addi r1, r0, -5"),
            vec![
                Tok::Ident("addi".into()),
                Tok::Ident("r1".into()),
                Tok::Comma,
                Tok::Ident("r0".into()),
                Tok::Comma,
                Tok::Int(-5),
                Tok::Newline,
            ]
        );
    }

    #[test]
    fn comments_labels_and_addressing() {
        assert_eq!(
            toks("top: ld r2, 8(r1) ; load\n# full-line\n// also"),
            vec![
                Tok::Ident("top".into()),
                Tok::Colon,
                Tok::Ident("ld".into()),
                Tok::Ident("r2".into()),
                Tok::Comma,
                Tok::Int(8),
                Tok::LParen,
                Tok::Ident("r1".into()),
                Tok::RParen,
                Tok::Newline,
                Tok::Newline,
                Tok::Newline,
            ]
        );
    }

    #[test]
    fn hex_underscores_and_strings() {
        assert_eq!(
            toks(".name \"a\\\"b\"\n.mem 0x10_00"),
            vec![
                Tok::Directive(".name".into()),
                Tok::Str("a\"b".into()),
                Tok::Newline,
                Tok::Directive(".mem".into()),
                Tok::Int(0x1000),
                Tok::Newline,
            ]
        );
    }

    #[test]
    fn u64_range_is_accepted_and_beyond_rejected() {
        assert_eq!(
            toks("18446744073709551615"),
            vec![Tok::Int(u64::MAX as i128), Tok::Newline]
        );
        assert!(lex("18446744073709551616").is_err());
        assert!(lex("0x1_0000_0000_0000_0000").is_err());
    }

    #[test]
    fn errors_carry_positions() {
        let e = lex("  addo @").unwrap_err();
        assert_eq!((e.line, e.col), (1, 8));
        let e = lex("\"open").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.message.contains("unterminated"));
        let e = lex("12abc").unwrap_err();
        assert!(e.message.contains("malformed"));
    }
}
