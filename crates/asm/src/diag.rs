//! Rich, source-anchored diagnostics.
//!
//! Every failure mode of the assembler — lexical, syntactic, semantic
//! or a sandbox-limit violation — is reported as one [`Diagnostic`]
//! carrying a 1-based line/column position, the offending source line
//! and a caret span, plus an optional `help:` note ("did you mean
//! `add`?" for opcode typos).

use std::fmt;

/// One assembler diagnostic, anchored to a source position.
///
/// The `Display` rendering mimics rustc:
///
/// ```text
/// error: unknown opcode `addo`
///   --> line 12, column 5
///    |
/// 12 |     addo r1, r0, 10
///    |     ^^^^
///    = help: did you mean `add`?
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// 1-based source line.
    pub line: u32,
    /// 1-based column (in characters).
    pub col: u32,
    /// Caret span width in characters (at least 1).
    pub len: u32,
    /// What went wrong.
    pub message: String,
    /// Optional `help:` note (e.g. a "did you mean" suggestion).
    pub help: Option<String>,
    /// The full text of the offending source line.
    pub source_line: String,
}

impl Diagnostic {
    /// Creates a diagnostic with no help note and no source line
    /// attached (the parser fills `source_line` in before returning).
    pub fn new(line: u32, col: u32, len: u32, message: impl Into<String>) -> Self {
        Diagnostic {
            line,
            col,
            len: len.max(1),
            message: message.into(),
            help: None,
            source_line: String::new(),
        }
    }

    /// Attaches a `help:` note.
    pub fn with_help(mut self, help: impl Into<String>) -> Self {
        self.help = Some(help.into());
        self
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "error: {}", self.message)?;
        let gutter = self.line.to_string();
        let pad = " ".repeat(gutter.len());
        writeln!(f, "{pad}--> line {}, column {}", self.line, self.col)?;
        writeln!(f, "{pad} |")?;
        writeln!(f, "{gutter} | {}", self.source_line)?;
        let indent = (self.col.saturating_sub(1) as usize).min(self.source_line.chars().count());
        writeln!(
            f,
            "{pad} | {}{}",
            " ".repeat(indent),
            "^".repeat(self.len as usize)
        )?;
        if let Some(help) = &self.help {
            writeln!(f, "{pad} = help: {help}")?;
        }
        Ok(())
    }
}

impl std::error::Error for Diagnostic {}

/// Classic Levenshtein distance, capped for early exit.
fn edit_distance(a: &str, b: &str, cap: usize) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.len().abs_diff(b.len()) > cap {
        return cap + 1;
    }
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, &ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let cost = usize::from(ca != cb);
            cur[j + 1] = (prev[j] + cost).min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// The closest candidate within edit distance 2, if any — the engine
/// behind "did you mean `add`?" suggestions.
pub fn did_you_mean<'a>(
    word: &str,
    candidates: impl IntoIterator<Item = &'a str>,
) -> Option<&'a str> {
    let mut best: Option<(usize, &str)> = None;
    for c in candidates {
        let d = edit_distance(word, c, 2);
        if d <= 2 && best.is_none_or(|(bd, _)| d < bd) {
            best = Some((d, c));
        }
    }
    best.map(|(_, c)| c)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn caret_lands_under_the_span() {
        let mut d =
            Diagnostic::new(12, 5, 4, "unknown opcode `addo`").with_help("did you mean `add`?");
        d.source_line = "    addo r1, r0, 10".into();
        let text = d.to_string();
        assert!(text.contains("error: unknown opcode `addo`"));
        assert!(text.contains("12 |     addo r1, r0, 10"));
        assert!(text.contains("   |     ^^^^"));
        assert!(text.contains("help: did you mean `add`?"));
    }

    #[test]
    fn suggestions_respect_the_distance_cap() {
        let ops = ["add", "addi", "sub", "fsqrt"];
        assert_eq!(did_you_mean("addo", ops), Some("add"));
        assert_eq!(did_you_mean("fsqtr", ops), Some("fsqrt"));
        assert_eq!(did_you_mean("zzzzzz", ops), None);
    }

    #[test]
    fn exact_short_words_prefer_closest() {
        assert_eq!(did_you_mean("ad", ["add", "ld"]), Some("add"));
    }
}
