//! Fuzzing the assembler front-end: hostile text must produce
//! diagnostics, never panics.
//!
//! Two generators drive the parser:
//!
//! * **token soup** — random sequences drawn from the assembler's own
//!   vocabulary (mnemonics, directives, registers, labels, literals,
//!   punctuation), which lands far deeper in the parser than raw random
//!   bytes would;
//! * **mutated corpus** — the real `programs/*.asm` files with seeded
//!   byte flips, truncations and line splices, exercising the
//!   recovery paths around almost-valid programs.
//!
//! The in-repo proptest stand-in derives its RNG stream from the test
//! name, so every run (and every CI shard) sees the same cases —
//! failures reproduce deterministically, per the flake-guard rules.

use proptest::prelude::*;
use proptest::test_runner::TestRng;
use ssim_asm::{assemble_with, AsmLimits, AsmOptions, MNEMONICS};

/// Tight limits so fuzz cases that *do* assemble stay cheap.
fn fuzz_opts() -> AsmOptions {
    AsmOptions::new().limits(AsmLimits {
        max_source_bytes: 1 << 20,
        max_instructions: 4096,
        max_data_bytes: 1 << 16,
        max_mem_bytes: 1 << 24,
    })
}

/// The parser either accepts or diagnoses; both are fine. What it may
/// not do is panic — the `proptest!` harness turns one into a failure
/// with the offending source attached.
fn feed(src: &str) {
    let _ = assemble_with(src, &fuzz_opts());
}

const PUNCT: &[&str] = &[",", ":", "(", ")", "\n", "\n", " ", "  "];
const WORDS: &[&str] = &[
    "r0", "r1", "r31", "r32", "f0", "f7", "loop", "x", "_l", "L0", "done",
];
const DIRECTIVES: &[&str] = &[
    ".name", ".mem", ".const", ".words", ".bytes", ".table", ".bogus",
];
const LITERALS: &[&str] = &[
    "0",
    "1",
    "-1",
    "255",
    "4096",
    "0x10",
    "0xffff_ffff_ffff_ffff",
    "18446744073709551615",
    "18446744073709551616",
    "-9223372036854775808",
    "\"s\"",
    "\"unterminated",
];

fn soup_atom(rng: &mut TestRng) -> &'static str {
    let pick =
        |xs: &'static [&'static str], rng: &mut TestRng| xs[rng.below(xs.len() as u64) as usize];
    match rng.below(5) {
        0 => pick(MNEMONICS, rng),
        1 => pick(PUNCT, rng),
        2 => pick(WORDS, rng),
        3 => pick(DIRECTIVES, rng),
        _ => pick(LITERALS, rng),
    }
}

const CORPUS: &[&str] = &[
    include_str!("../../../programs/rle.asm"),
    include_str!("../../../programs/bytecode.asm"),
    include_str!("../../../programs/listwalk.asm"),
];

/// Applies one seeded mutation to a corpus file.
fn mutate(src: &str, rng: &mut TestRng) -> String {
    let mut bytes = src.as_bytes().to_vec();
    match rng.below(4) {
        // Byte flips (possibly producing invalid UTF-8 → lossy text).
        0 => {
            for _ in 0..=rng.below(8) {
                let i = rng.below(bytes.len() as u64) as usize;
                bytes[i] ^= (rng.below(255) + 1) as u8;
            }
        }
        // Truncation mid-file.
        1 => bytes.truncate(rng.below(bytes.len() as u64) as usize),
        // Splice a random line from another corpus file at a random
        // line boundary.
        2 => {
            let other = CORPUS[rng.below(CORPUS.len() as u64) as usize];
            let lines: Vec<&str> = other.lines().collect();
            let line = lines[rng.below(lines.len() as u64) as usize];
            let mut out: Vec<&str> = src.lines().collect();
            let at = rng.below(out.len() as u64 + 1) as usize;
            out.insert(at, line);
            return out.join("\n");
        }
        // Delete a random line (labels and halts vanish).
        _ => {
            let mut out: Vec<&str> = src.lines().collect();
            out.remove(rng.below(out.len() as u64) as usize);
            return out.join("\n");
        }
    }
    String::from_utf8_lossy(&bytes).into_owned()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Token soup: valid vocabulary in random order.
    #[test]
    fn token_soup_never_panics(seed in any::<u64>()) {
        let mut rng = TestRng::from_seed(seed);
        let n = rng.below(120) + 1;
        let mut src = String::new();
        for _ in 0..n {
            src.push_str(soup_atom(&mut rng));
            if rng.below(3) == 0 {
                src.push(' ');
            }
        }
        feed(&src);
    }

    /// Mutated corpus: real programs, lightly damaged.
    #[test]
    fn mutated_corpus_never_panics(seed in any::<u64>()) {
        let mut rng = TestRng::from_seed(seed);
        let base = CORPUS[rng.below(CORPUS.len() as u64) as usize];
        let mut src = base.to_string();
        for _ in 0..=rng.below(3) {
            src = mutate(&src, &mut rng);
        }
        feed(&src);
    }

    /// Raw byte noise (mostly lexer territory).
    #[test]
    fn byte_noise_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        feed(&String::from_utf8_lossy(&bytes));
    }
}

/// A handful of historically nasty shapes, pinned explicitly so they
/// outlive any change to the generators.
#[test]
fn regression_shapes_never_panic() {
    for src in [
        "",
        "\n\n\n",
        ":",
        "x:",
        ".mem 0",
        ".mem 18446744073709551615",
        ".words 18446744073709551615 1",
        ".bytes 4096 256",
        ".table 0 nowhere",
        ".const x 1\n.const x 2",
        "addi r1, r0,",
        "ld r1, (r2)",
        "st 8(r4), r5",
        "beq r1, r2, 12345",
        "jmp",
        "halt extra",
        ".name \"\\q\"",
        "addi r1, r0, 0x",
        "li r1, UNDEFINED_CONST\nhalt",
    ] {
        feed(src);
    }
}
