//! Round-trip: `assemble(p.to_asm()) == p` for DSL-built programs.
//!
//! The emitter (`crates/isa/src/emit.rs`) and the parser lower through
//! the same `Assembler` methods, so re-assembling a canonical emission
//! must reproduce the program image exactly — name, memory size, code
//! (including operand roles and branch targets) and initial-data chunks.
//! These tests pin that contract over every opcode and every data shape.

use ssim_asm::assemble;
use ssim_isa::{Assembler, FReg, Program, Reg};

fn roundtrip(p: &Program) {
    let text = p.to_asm();
    let back = assemble(&text).unwrap_or_else(|d| panic!("re-assembly failed:\n{d}\n--\n{text}"));
    assert_eq!(&back, p, "round-trip changed the program:\n{text}");
}

/// Every opcode in one program: all 3-reg ALU forms, all immediates,
/// loads/stores (byte and word, int and float), every branch, direct
/// and indirect transfers, every FP op, and the pseudo-ops.
#[test]
fn every_opcode_roundtrips() {
    let mut a = Assembler::new("all-ops");
    a.set_mem_size(1 << 16);
    let skip = a.label();
    let sub = a.label();
    let end = a.label();

    a.add(Reg::R1, Reg::R2, Reg::R3);
    a.sub(Reg::R4, Reg::R5, Reg::R6);
    a.and(Reg::R7, Reg::R8, Reg::R9);
    a.or(Reg::R10, Reg::R11, Reg::R12);
    a.xor(Reg::R13, Reg::R14, Reg::R15);
    a.sll(Reg::R16, Reg::R17, Reg::R18);
    a.srl(Reg::R19, Reg::R20, Reg::R21);
    a.sra(Reg::R22, Reg::R23, Reg::R24);
    a.slt(Reg::R25, Reg::R26, Reg::R27);
    a.sltu(Reg::R28, Reg::R29, Reg::R30);
    a.mul(Reg::R31, Reg::R1, Reg::R2);
    a.div(Reg::R3, Reg::R4, Reg::R5);
    a.rem(Reg::R6, Reg::R7, Reg::R8);
    a.addi(Reg::R1, Reg::R2, -5);
    a.andi(Reg::R3, Reg::R4, 0xff);
    a.ori(Reg::R5, Reg::R6, 0x10);
    a.xori(Reg::R7, Reg::R8, 1);
    a.slli(Reg::R9, Reg::R10, 3);
    a.srli(Reg::R11, Reg::R12, 7);
    a.srai(Reg::R13, Reg::R14, 2);
    a.slti(Reg::R15, Reg::R16, 100);
    a.li(Reg::R17, i64::MIN);
    a.mv(Reg::R18, Reg::R17);
    a.nop();
    a.ld(Reg::R1, Reg::R2, 8);
    a.lb(Reg::R3, Reg::R4, -1);
    a.st(Reg::R5, 16, Reg::R6);
    a.sb(Reg::R7, 0, Reg::R8);
    a.fld(FReg::F1, Reg::R9, 24);
    a.fst(Reg::R10, 32, FReg::F2);
    a.beq(Reg::R1, Reg::R2, skip);
    a.bne(Reg::R3, Reg::R4, skip);
    a.blt(Reg::R5, Reg::R6, skip);
    a.bge(Reg::R7, Reg::R8, skip);
    a.bltu(Reg::R9, Reg::R10, skip);
    a.bgeu(Reg::R11, Reg::R12, skip);
    a.fbeq(FReg::F1, FReg::F2, skip);
    a.fblt(FReg::F3, FReg::F4, skip);
    a.fbge(FReg::F5, FReg::F6, skip);
    a.bind(skip).unwrap();
    a.call(sub);
    a.jr(Reg::R20);
    a.bind(sub).unwrap();
    a.fadd(FReg::F1, FReg::F2, FReg::F3);
    a.fsub(FReg::F4, FReg::F5, FReg::F6);
    a.fmul(FReg::F7, FReg::F8, FReg::F9);
    a.fdiv(FReg::F10, FReg::F11, FReg::F12);
    a.fmin(FReg::F13, FReg::F14, FReg::F15);
    a.fmax(FReg::F16, FReg::F17, FReg::F18);
    a.fsqrt(FReg::F19, FReg::F20);
    a.fabs(FReg::F21, FReg::F22);
    a.fneg(FReg::F23, FReg::F24);
    a.fcvt(FReg::F25, Reg::R21);
    a.fcvti(Reg::R22, FReg::F26);
    a.fconst(FReg::F27, -0.125);
    a.ret();
    a.jmp(end);
    a.bind(end).unwrap();
    a.halt();

    roundtrip(&a.finish().unwrap());
}

/// Data chunks survive: word-aligned chunks, ragged byte chunks, a
/// float constant pool, and a jump table all re-assemble byte-for-byte.
#[test]
fn data_shapes_roundtrip() {
    let mut a = Assembler::new("data");
    a.set_mem_size(1 << 14);
    let buf = a.alloc_words(4);
    a.words(buf, &[u64::MAX, 0, 1, 0xdead_beef]).unwrap();
    let raw = a.alloc(5);
    a.bytes(raw, &[0, 1, 2, 254, 255]).unwrap();
    let pool = a.alloc_words(1);
    a.fword(pool, -1.5e300).unwrap();
    let h0 = a.label();
    let h1 = a.label();
    let table = a.jump_table(&[h0, h1, h0]);
    a.li(Reg::R1, table as i64);
    a.ld(Reg::R2, Reg::R1, 0);
    a.jr(Reg::R2);
    a.bind(h0).unwrap();
    a.halt();
    a.bind(h1).unwrap();
    a.halt();

    roundtrip(&a.finish().unwrap());
}

/// Names with characters needing escapes survive the `.name` string.
#[test]
fn escaped_names_roundtrip() {
    let mut a = Assembler::new(r#"we "ird\name"#);
    a.halt();
    roundtrip(&a.finish().unwrap());
}

/// A label bound one past the last instruction (reachable only by
/// branching) survives as the trailing `L<len>:` definition.
#[test]
fn trailing_label_roundtrips() {
    let mut a = Assembler::new("tail");
    let end = a.label();
    a.beq(Reg::R1, Reg::R2, end);
    a.halt();
    a.bind(end).unwrap();
    roundtrip(&a.finish().unwrap());
}

/// The corpus `.asm` files are a fixed point of emit∘assemble:
/// re-assembling the canonical emission reproduces the same program.
#[test]
fn corpus_emissions_are_stable() {
    for src in [
        include_str!("../../../programs/rle.asm"),
        include_str!("../../../programs/bytecode.asm"),
        include_str!("../../../programs/listwalk.asm"),
    ] {
        let p = assemble(src).unwrap_or_else(|d| panic!("corpus program failed:\n{d}"));
        roundtrip(&p);
    }
}
