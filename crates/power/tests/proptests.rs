//! Property-based tests for the power model.

use proptest::prelude::*;
use ssim_power::{PowerModel, IDLE_FRACTION};
use ssim_uarch::{ActivityCounters, MachineConfig, Unit};

fn activity(per_unit: &[(Unit, u64, u64)], cycles: u64) -> ActivityCounters {
    let mut a = ActivityCounters::new();
    for &(unit, accesses, used) in per_unit {
        let used = used.clamp(1, cycles.max(1));
        let per_cycle = (accesses / used).max(1);
        let mut left = accesses;
        for c in 0..used {
            let n = per_cycle.min(left);
            if n == 0 {
                break;
            }
            a.record_n(unit, c, n);
            left -= n;
        }
    }
    a.set_cycles(cycles);
    a
}

proptest! {
    /// EPC is bounded: at least the gated floor of every unit, at most
    /// the total maximum power.
    #[test]
    fn epc_is_bounded(accesses in 0u64..100_000, used in 1u64..1_000, cycles in 1_000u64..10_000) {
        let cfg = MachineConfig::baseline();
        let model = PowerModel::new(&cfg);
        let a = activity(&[(Unit::Ruu, accesses, used), (Unit::DCache, accesses / 2, used)], cycles);
        let b = model.evaluate(&a);
        let floor = IDLE_FRACTION * model.total_pmax();
        prop_assert!(b.epc() >= floor * 0.999, "EPC {} below gated floor {floor}", b.epc());
        prop_assert!(b.epc() <= model.total_pmax() * 1.001, "EPC {} above Pmax", b.epc());
        for unit in Unit::ALL {
            prop_assert!(b.unit(unit) >= 0.0);
            prop_assert!(b.unit(unit) <= model.pmax(unit) * 1.001);
        }
    }

    /// More activity on a unit never lowers its power.
    #[test]
    fn unit_power_monotone(base in 1_000u64..50_000, extra in 0u64..50_000, cycles in 2_000u64..10_000) {
        let cfg = MachineConfig::baseline();
        let model = PowerModel::new(&cfg);
        let used = cycles / 2;
        let low = model.evaluate(&activity(&[(Unit::IntAlu, base, used)], cycles));
        let high = model.evaluate(&activity(&[(Unit::IntAlu, base + extra, used)], cycles));
        prop_assert!(high.unit(Unit::IntAlu) >= low.unit(Unit::IntAlu) - 1e-9);
    }

    /// EDP strictly decreases in IPC for fixed power.
    #[test]
    fn edp_monotone_in_ipc(ipc1 in 0.1f64..8.0, ipc2 in 0.1f64..8.0) {
        let cfg = MachineConfig::baseline();
        let model = PowerModel::new(&cfg);
        let a = activity(&[(Unit::Ruu, 10_000, 1_000)], 5_000);
        let b = model.evaluate(&a);
        let (lo, hi) = if ipc1 < ipc2 { (ipc1, ipc2) } else { (ipc2, ipc1) };
        prop_assert!(b.edp(hi) <= b.edp(lo) + 1e-12);
    }

    /// Scaling structures up never lowers their max power.
    #[test]
    fn pmax_monotone_in_window(ruu in 8usize..256) {
        let base = PowerModel::new(&MachineConfig::baseline().with_window(ruu.max(8)));
        let bigger = PowerModel::new(&MachineConfig::baseline().with_window((ruu * 2).min(512)));
        prop_assert!(bigger.pmax(Unit::Ruu) >= base.pmax(Unit::Ruu));
    }
}
