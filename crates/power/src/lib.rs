//! Wattch-style architectural power modeling.
//!
//! The paper estimates energy per cycle (EPC) with Wattch v1.02 at
//! 0.18 µm / 1.2 GHz, using the most aggressive conditional clock
//! gating (`cc3`): *"a unit that is unused consumes 10% of its max
//! power and a unit that is only used for a fraction x only consumes a
//! fraction x of its max power"* (§3).
//!
//! This crate reproduces that structure:
//!
//! * [`PowerModel::new`] derives a **maximum power** per
//!   microarchitectural unit from the machine configuration with
//!   analytic array/logic scaling formulas (monotone in structure
//!   sizes, the property the Table 4 power-trend experiments rely on);
//! * [`PowerModel::evaluate`] folds the per-unit
//!   [`ActivityCounters`](ssim_uarch::ActivityCounters) gathered by
//!   either simulator through the `cc3` rule into a
//!   [`PowerBreakdown`].
//!
//! Because both the execution-driven and the synthetic-trace simulator
//! emit identical activity counters, one code path produces EPC for
//! both — exactly how the paper attaches Wattch to both simulators
//! (§4.2.3).
//!
//! Absolute watts are calibration constants, not measurements; the
//! experiments only rely on relative trends.
//!
//! # Examples
//!
//! ```no_run
//! use ssim_power::PowerModel;
//! use ssim_uarch::{ExecSim, MachineConfig};
//!
//! let cfg = MachineConfig::baseline();
//! let program = ssim_workloads::by_name("gzip").unwrap().program();
//! let result = ExecSim::new(&cfg, &program).run(500_000);
//! let power = PowerModel::new(&cfg);
//! let breakdown = power.evaluate(&result.activity);
//! println!("EPC = {:.2} W/cycle, EDP = {:.3}",
//!          breakdown.epc(), breakdown.edp(result.ipc()));
//! ```

use ssim_uarch::{ActivityCounters, MachineConfig, Unit};

/// Per-unit maximum power and access-port model for one machine
/// configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerModel {
    pmax: [f64; Unit::ALL.len()],
    ports: [f64; Unit::ALL.len()],
}

/// Fraction of max power burned by an idle (clock-gated) unit — the
/// Wattch `cc3` constant.
pub const IDLE_FRACTION: f64 = 0.1;

fn cache_pmax(bytes: usize) -> f64 {
    // Sub-linear growth in capacity: decoders and wordlines grow with
    // sqrt-ish geometry while bitline energy grows with the accessed
    // row, not total capacity.
    0.5 + 0.9 * (bytes as f64 / 1024.0).powf(0.45)
}

fn array_pmax(entries: usize, scale: f64) -> f64 {
    scale * (entries as f64).powf(0.8)
}

impl PowerModel {
    /// Builds the per-unit max-power model for `cfg`.
    pub fn new(cfg: &MachineConfig) -> Self {
        let mut pmax = [0.0; Unit::ALL.len()];
        let mut ports = [1.0; Unit::ALL.len()];
        let width = cfg.issue_width as f64;

        let set = |pmax: &mut [f64], ports: &mut [f64], u: Unit, p: f64, pt: f64| {
            pmax[u.index()] = p;
            ports[u.index()] = pt;
        };

        set(
            &mut pmax,
            &mut ports,
            Unit::Fetch,
            0.3 + 0.03 * cfg.ifq_size as f64 + 0.05 * cfg.fetch_width() as f64,
            cfg.fetch_width() as f64,
        );
        let dir_entries = cfg.bpred.direction_entries();
        let btb_entries = cfg.bpred.btb_sets * cfg.bpred.btb_assoc;
        set(
            &mut pmax,
            &mut ports,
            Unit::Bpred,
            0.5 + 0.4 * (dir_entries as f64 / 1024.0).sqrt()
                + 0.3 * (btb_entries as f64 / 512.0).sqrt(),
            4.0,
        );
        set(
            &mut pmax,
            &mut ports,
            Unit::ICache,
            cache_pmax(cfg.hierarchy.l1i.size),
            2.0,
        );
        set(&mut pmax, &mut ports, Unit::Itlb, 0.3, 2.0);
        set(
            &mut pmax,
            &mut ports,
            Unit::Dispatch,
            0.25 * cfg.decode_width as f64,
            cfg.decode_width as f64,
        );
        set(
            &mut pmax,
            &mut ports,
            Unit::Ruu,
            0.3 + 0.16 * array_pmax(cfg.ruu_size, 1.0) * (width / 8.0).sqrt(),
            3.0 * width,
        );
        set(
            &mut pmax,
            &mut ports,
            Unit::Lsq,
            0.2 + 0.08 * array_pmax(cfg.lsq_size, 1.0),
            4.0,
        );
        set(
            &mut pmax,
            &mut ports,
            Unit::Issue,
            0.3 + 0.25 * width + 0.01 * cfg.ruu_size as f64,
            width,
        );
        set(
            &mut pmax,
            &mut ports,
            Unit::RegFile,
            1.0 + 0.125 * width,
            3.0 * width,
        );
        set(
            &mut pmax,
            &mut ports,
            Unit::IntAlu,
            0.6 * (cfg.fu.int_alu + cfg.fu.int_muldiv) as f64,
            (cfg.fu.int_alu + cfg.fu.int_muldiv) as f64,
        );
        set(
            &mut pmax,
            &mut ports,
            Unit::FpAlu,
            1.2 * (cfg.fu.fp_add + cfg.fu.fp_muldiv) as f64,
            (cfg.fu.fp_add + cfg.fu.fp_muldiv) as f64,
        );
        set(
            &mut pmax,
            &mut ports,
            Unit::DCache,
            cache_pmax(cfg.hierarchy.l1d.size),
            cfg.fu.ld_st as f64,
        );
        set(&mut pmax, &mut ports, Unit::Dtlb, 0.3, cfg.fu.ld_st as f64);
        set(
            &mut pmax,
            &mut ports,
            Unit::L2,
            cache_pmax(cfg.hierarchy.l2.size),
            1.0,
        );

        PowerModel { pmax, ports }
    }

    /// Maximum power of one unit in watts.
    pub fn pmax(&self, unit: Unit) -> f64 {
        self.pmax[unit.index()]
    }

    /// Sum of all unit maxima (the unconstrained chip power).
    pub fn total_pmax(&self) -> f64 {
        self.pmax.iter().sum()
    }

    /// Applies the `cc3` clock-gating rule to a run's activity,
    /// producing average per-cycle power per unit.
    ///
    /// # Panics
    ///
    /// Panics if `activity` reports zero cycles.
    pub fn evaluate(&self, activity: &ActivityCounters) -> PowerBreakdown {
        let cycles = activity.cycles();
        assert!(cycles > 0, "activity must cover at least one cycle");
        let mut per_unit = [0.0; Unit::ALL.len()];
        for unit in Unit::ALL {
            let i = unit.index();
            let a = activity.unit(unit);
            // Sum over used cycles of (x · Pmax), with x the port
            // utilisation: exactly accesses/ports, clamped so x ≤ 1 on
            // average, and floored at the clock-gating residual (an
            // active cycle can never burn less than an idle one).
            let linear = (a.accesses as f64 / self.ports[i])
                .max(IDLE_FRACTION * a.used_cycles as f64)
                .min(a.used_cycles as f64);
            let idle = activity.idle_cycles(unit) as f64;
            per_unit[i] = self.pmax[i] * (linear + IDLE_FRACTION * idle) / cycles as f64;
        }
        PowerBreakdown { per_unit }
    }
}

/// Average per-cycle power of a run, per unit.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerBreakdown {
    per_unit: [f64; Unit::ALL.len()],
}

impl PowerBreakdown {
    /// Average power of one unit (watts per cycle).
    pub fn unit(&self, unit: Unit) -> f64 {
        self.per_unit[unit.index()]
    }

    /// Energy per cycle: the paper's EPC metric (Figure 6 right,
    /// "Watt/cycle").
    pub fn epc(&self) -> f64 {
        self.per_unit.iter().sum()
    }

    /// Energy-delay product, `EDP = EPC · CPI² = EPC / IPC²` (§4.2.3).
    ///
    /// # Panics
    ///
    /// Panics if `ipc` is not positive.
    pub fn edp(&self, ipc: f64) -> f64 {
        assert!(ipc > 0.0, "EDP needs a positive IPC");
        self.epc() / (ipc * ipc)
    }

    /// The fetch-engine power reported in Table 4 ("fetch unit"):
    /// fetch logic + I-cache.
    pub fn fetch_unit(&self) -> f64 {
        self.unit(Unit::Fetch) + self.unit(Unit::ICache)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn activity_with(unit: Unit, accesses: u64, used: u64, cycles: u64) -> ActivityCounters {
        let mut a = ActivityCounters::new();
        for c in 0..used {
            a.record_n(unit, c, accesses / used.max(1));
        }
        a.set_cycles(cycles);
        a
    }

    #[test]
    fn idle_units_burn_ten_percent() {
        let cfg = MachineConfig::baseline();
        let model = PowerModel::new(&cfg);
        let mut a = ActivityCounters::new();
        a.set_cycles(100);
        let b = model.evaluate(&a);
        for unit in Unit::ALL {
            let expected = IDLE_FRACTION * model.pmax(unit);
            assert!(
                (b.unit(unit) - expected).abs() < 1e-9,
                "{unit:?}: idle power should be 10% of max"
            );
        }
    }

    #[test]
    fn fully_used_unit_burns_full_power() {
        let cfg = MachineConfig::baseline();
        let model = PowerModel::new(&cfg);
        // L2 has 1 port: 1 access per cycle for all 100 cycles = Pmax.
        let a = activity_with(Unit::L2, 100, 100, 100);
        let b = model.evaluate(&a);
        assert!((b.unit(Unit::L2) - model.pmax(Unit::L2)).abs() < 1e-9);
    }

    #[test]
    fn power_monotone_in_activity() {
        let cfg = MachineConfig::baseline();
        let model = PowerModel::new(&cfg);
        let low = model.evaluate(&activity_with(Unit::Ruu, 2000, 500, 1000));
        let high = model.evaluate(&activity_with(Unit::Ruu, 20000, 1000, 1000));
        assert!(high.unit(Unit::Ruu) > low.unit(Unit::Ruu));
        assert!(high.epc() > low.epc());
    }

    #[test]
    fn pmax_monotone_in_structure_sizes() {
        let base = PowerModel::new(&MachineConfig::baseline());
        let big_window = PowerModel::new(&MachineConfig::baseline().with_window(256));
        assert!(big_window.pmax(Unit::Ruu) > base.pmax(Unit::Ruu));

        let mut big_caches = MachineConfig::baseline();
        big_caches.hierarchy = big_caches.hierarchy.scaled(4.0);
        let big_caches = PowerModel::new(&big_caches);
        assert!(big_caches.pmax(Unit::DCache) > base.pmax(Unit::DCache));
        assert!(big_caches.pmax(Unit::L2) > base.pmax(Unit::L2));

        let mut big_bpred = MachineConfig::baseline();
        big_bpred.bpred = big_bpred.bpred.scaled(4.0);
        let big_bpred = PowerModel::new(&big_bpred);
        assert!(big_bpred.pmax(Unit::Bpred) > base.pmax(Unit::Bpred));

        let narrow = PowerModel::new(&MachineConfig::baseline().with_width(2));
        assert!(narrow.pmax(Unit::Issue) < base.pmax(Unit::Issue));
        assert!(narrow.total_pmax() < base.total_pmax());
    }

    #[test]
    fn baseline_total_pmax_is_plausible() {
        let model = PowerModel::new(&MachineConfig::baseline());
        let total = model.total_pmax();
        assert!(
            (20.0..120.0).contains(&total),
            "total Pmax {total} outside a plausible 0.18um envelope"
        );
    }

    #[test]
    fn edp_penalises_low_ipc() {
        let cfg = MachineConfig::baseline();
        let model = PowerModel::new(&cfg);
        let a = activity_with(Unit::Ruu, 500, 500, 1000);
        let b = model.evaluate(&a);
        assert!(b.edp(0.5) > b.edp(2.0));
    }

    #[test]
    #[should_panic(expected = "at least one cycle")]
    fn zero_cycle_activity_rejected() {
        let model = PowerModel::new(&MachineConfig::baseline());
        model.evaluate(&ActivityCounters::new());
    }
}
