//! Pipeline observability: counters, gauges, histograms and timing
//! spans for the statistical-simulation pipeline.
//!
//! The profile → SFG → random-walk → trace-sim pipeline is a chain of
//! stages whose cost and behaviour were previously invisible: one bench
//! JSON at the end, nothing about *where* time and accuracy go. This
//! crate gives every stage a shared, zero-dependency vocabulary:
//!
//! * [`Counter`] — a monotonically increasing `AtomicU64` (events:
//!   instructions profiled, FIFO squashes, cache hits…);
//! * [`Gauge`] — a last-write-wins value (SFG node counts, thread
//!   counts…);
//! * [`LogHistogram`] — a 65-bucket power-of-two histogram for value
//!   distributions (per-cycle queue occupancy, tasks per worker…) with
//!   monotone quantile estimates;
//! * [`TimerStat`] + [`SpanGuard`] — RAII wall-clock spans aggregating
//!   total/max time per stage.
//!
//! All metric types are `const`-constructible so instrumentation sites
//! declare them as `static`s; each registers itself with the global
//! registry on first touch. A process-wide gate — the `SSIM_METRICS`
//! environment variable — keeps the disabled hot path to a single
//! relaxed atomic load and a predictable branch:
//!
//! * unset or `SSIM_METRICS=0` — metrics off (the default; recording is
//!   a no-op);
//! * `SSIM_METRICS=1` — record, and print a human-readable report to
//!   stderr from [`finish`];
//! * `SSIM_METRICS=json` — record, and write
//!   `results/METRICS_<bin>.json` from [`finish`].
//!
//! [`force_enable`] turns recording on programmatically (used by
//! `perf_report`, which always wants stage timings, and by tests).
//!
//! # Examples
//!
//! ```
//! use ssim_obs as obs;
//!
//! static STEPS: obs::Counter = obs::Counter::new("walk.steps");
//!
//! obs::force_enable();
//! STEPS.add(3);
//! STEPS.inc();
//! assert_eq!(STEPS.get(), 4);
//! let snap = obs::snapshot();
//! assert!(snap.counters.iter().any(|(n, v)| *n == "walk.steps" && *v == 4));
//! ```

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering::Relaxed};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

// ---- the gate -------------------------------------------------------

/// How the process exports metrics (from `SSIM_METRICS`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Recording disabled; [`finish`] emits nothing.
    Off,
    /// Recording enabled; [`finish`] prints a text report to stderr.
    Text,
    /// Recording enabled; [`finish`] writes `results/METRICS_<bin>.json`.
    Json,
}

const STATE_UNINIT: u8 = 0;
const STATE_OFF: u8 = 1;
const STATE_ON: u8 = 2;

static STATE: AtomicU8 = AtomicU8::new(STATE_UNINIT);
static MODE: OnceLock<Mode> = OnceLock::new();

fn mode_from_env() -> Mode {
    match std::env::var("SSIM_METRICS") {
        Err(_) => Mode::Off,
        Ok(v) => match v.trim() {
            "" | "0" => Mode::Off,
            "json" | "JSON" => Mode::Json,
            _ => Mode::Text,
        },
    }
}

/// The process's export mode, resolved once from `SSIM_METRICS`.
pub fn mode() -> Mode {
    let m = *MODE.get_or_init(mode_from_env);
    // Keep the fast-path flag coherent with the resolved mode.
    let state = if m == Mode::Off { STATE_OFF } else { STATE_ON };
    let _ = STATE.compare_exchange(STATE_UNINIT, state, Relaxed, Relaxed);
    m
}

/// Whether recording is active. This is the hot-path gate: one relaxed
/// atomic load once the state is resolved.
#[inline]
pub fn enabled() -> bool {
    match STATE.load(Relaxed) {
        STATE_OFF => false,
        STATE_UNINIT => mode() != Mode::Off,
        _ => true,
    }
}

/// Turns recording on regardless of `SSIM_METRICS` (idempotent).
///
/// The export mode keeps whatever `SSIM_METRICS` asked for; if the
/// variable asked for `Off`, [`finish`] still emits nothing, but
/// in-process consumers (e.g. `perf_report` folding stage timings into
/// its own JSON) see live values via [`snapshot`].
pub fn force_enable() {
    let _ = MODE.get_or_init(mode_from_env);
    STATE.store(STATE_ON, Relaxed);
}

// ---- the registry ---------------------------------------------------

#[derive(Default)]
struct Registry {
    counters: Mutex<Vec<&'static Counter>>,
    gauges: Mutex<Vec<&'static Gauge>>,
    histograms: Mutex<Vec<&'static LogHistogram>>,
    timers: Mutex<Vec<&'static TimerStat>>,
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::default)
}

// ---- runtime-named metrics ------------------------------------------

/// Name-interned storage for metrics whose names are only known at
/// runtime (metric *families* indexed per instance — e.g. one gauge per
/// fleet backend). Repeated lookups of the same name return the same
/// instance, so re-creating a consumer never duplicates registry rows.
struct DynMetrics {
    counters: Mutex<std::collections::HashMap<String, &'static Counter>>,
    gauges: Mutex<std::collections::HashMap<String, &'static Gauge>>,
}

fn dyn_metrics() -> &'static DynMetrics {
    static DYN: OnceLock<DynMetrics> = OnceLock::new();
    DYN.get_or_init(|| DynMetrics {
        counters: Mutex::new(std::collections::HashMap::new()),
        gauges: Mutex::new(std::collections::HashMap::new()),
    })
}

/// A counter with a runtime-built name, interned for the process
/// lifetime (the name and the counter are leaked once per distinct
/// name; calling again with the same name returns the same counter).
pub fn dyn_counter(name: &str) -> &'static Counter {
    let mut map = dyn_metrics().counters.lock().unwrap();
    if let Some(c) = map.get(name) {
        return c;
    }
    let leaked: &'static Counter = Box::leak(Box::new(Counter::new(Box::leak(
        name.to_string().into_boxed_str(),
    ))));
    map.insert(name.to_string(), leaked);
    leaked
}

/// A gauge with a runtime-built name, interned like [`dyn_counter`].
pub fn dyn_gauge(name: &str) -> &'static Gauge {
    let mut map = dyn_metrics().gauges.lock().unwrap();
    if let Some(g) = map.get(name) {
        return g;
    }
    let leaked: &'static Gauge = Box::leak(Box::new(Gauge::new(Box::leak(
        name.to_string().into_boxed_str(),
    ))));
    map.insert(name.to_string(), leaked);
    leaked
}

// ---- counter --------------------------------------------------------

/// A named, thread-safe, monotonically increasing counter.
///
/// Declare as a `static`; the counter registers itself on first
/// increment. When metrics are disabled increments are no-ops.
pub struct Counter {
    name: &'static str,
    value: AtomicU64,
    registered: AtomicBool,
}

impl Counter {
    /// A new counter (const — usable in `static` position).
    pub const fn new(name: &'static str) -> Self {
        Counter {
            name,
            value: AtomicU64::new(0),
            registered: AtomicBool::new(false),
        }
    }

    /// The counter's registry name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Adds `n` (no-op while metrics are disabled).
    #[inline]
    pub fn add(&'static self, n: u64) {
        if !enabled() {
            return;
        }
        if !self.registered.load(Relaxed) {
            self.register();
        }
        self.value.fetch_add(n, Relaxed);
    }

    /// Adds one.
    #[inline]
    pub fn inc(&'static self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Relaxed)
    }

    #[cold]
    fn register(&'static self) {
        if !self.registered.swap(true, Relaxed) {
            registry().counters.lock().unwrap().push(self);
        }
    }
}

// ---- gauge ----------------------------------------------------------

/// A named, thread-safe, last-write-wins value (with a `set_max`
/// variant for high-water marks).
pub struct Gauge {
    name: &'static str,
    value: AtomicU64,
    registered: AtomicBool,
}

impl Gauge {
    /// A new gauge (const — usable in `static` position).
    pub const fn new(name: &'static str) -> Self {
        Gauge {
            name,
            value: AtomicU64::new(0),
            registered: AtomicBool::new(false),
        }
    }

    /// The gauge's registry name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Sets the value (no-op while metrics are disabled).
    #[inline]
    pub fn set(&'static self, v: u64) {
        if !enabled() {
            return;
        }
        if !self.registered.load(Relaxed) {
            self.register();
        }
        self.value.store(v, Relaxed);
    }

    /// Adds `n` (for gauges tracking a live population — open
    /// connections, outstanding jobs — updated from many threads with
    /// no shared lock to read-modify-write under).
    #[inline]
    pub fn add(&'static self, n: u64) {
        if !enabled() {
            return;
        }
        if !self.registered.load(Relaxed) {
            self.register();
        }
        self.value.fetch_add(n, Relaxed);
    }

    /// Subtracts `n`, saturating at zero (a decrement racing a reset
    /// must not wrap to 2^64 − n).
    #[inline]
    pub fn sub(&'static self, n: u64) {
        if !enabled() {
            return;
        }
        if !self.registered.load(Relaxed) {
            self.register();
        }
        let mut cur = self.value.load(Relaxed);
        loop {
            let next = cur.saturating_sub(n);
            match self
                .value
                .compare_exchange_weak(cur, next, Relaxed, Relaxed)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Raises the value to `v` if larger (high-water mark).
    #[inline]
    pub fn set_max(&'static self, v: u64) {
        if !enabled() {
            return;
        }
        if !self.registered.load(Relaxed) {
            self.register();
        }
        self.value.fetch_max(v, Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Relaxed)
    }

    #[cold]
    fn register(&'static self) {
        if !self.registered.swap(true, Relaxed) {
            registry().gauges.lock().unwrap().push(self);
        }
    }
}

// ---- log-scale histogram --------------------------------------------

/// Number of buckets: bucket 0 holds value 0, bucket `i ≥ 1` holds
/// values in `[2^(i-1), 2^i)`.
pub const HIST_BUCKETS: usize = 65;

/// A named, thread-safe histogram over `u64` values with power-of-two
/// buckets.
///
/// Log-scale bucketing keeps recording to one `leading_zeros` and one
/// atomic add while still resolving the shape of heavy-tailed
/// distributions (queue occupancies, latencies, task counts). Quantile
/// estimates report the *upper bound* of the containing bucket, which
/// makes them monotone in the requested quantile by construction.
pub struct LogHistogram {
    name: &'static str,
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
    registered: AtomicBool,
}

/// The bucket index of a value.
#[inline]
fn bucket_of(v: u64) -> usize {
    (64 - v.leading_zeros()) as usize
}

/// The largest value a bucket can hold.
fn bucket_upper(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

impl LogHistogram {
    /// A new histogram (const — usable in `static` position).
    pub const fn new(name: &'static str) -> Self {
        LogHistogram {
            name,
            buckets: [const { AtomicU64::new(0) }; HIST_BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
            registered: AtomicBool::new(false),
        }
    }

    /// The histogram's registry name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Records one observation (no-op while metrics are disabled).
    #[inline]
    pub fn record(&'static self, v: u64) {
        if !enabled() {
            return;
        }
        if !self.registered.load(Relaxed) {
            self.register();
        }
        self.buckets[bucket_of(v)].fetch_add(1, Relaxed);
        self.count.fetch_add(1, Relaxed);
        self.sum.fetch_add(v, Relaxed);
        self.max.fetch_max(v, Relaxed);
    }

    /// Records `n` identical observations at once — equivalent to `n`
    /// [`LogHistogram::record`] calls (no-op while metrics are disabled
    /// or `n` is zero). Event-driven simulators use this to account for
    /// runs of provably idle cycles in one step.
    #[inline]
    pub fn record_n(&'static self, v: u64, n: u64) {
        if n == 0 || !enabled() {
            return;
        }
        if !self.registered.load(Relaxed) {
            self.register();
        }
        self.buckets[bucket_of(v)].fetch_add(n, Relaxed);
        self.count.fetch_add(n, Relaxed);
        self.sum.fetch_add(v.wrapping_mul(n), Relaxed);
        self.max.fetch_max(v, Relaxed);
    }

    /// A point-in-time copy of the histogram's state.
    pub fn snapshot(&self) -> HistSnapshot {
        HistSnapshot {
            count: self.count.load(Relaxed),
            sum: self.sum.load(Relaxed),
            max: self.max.load(Relaxed),
            buckets: std::array::from_fn(|i| self.buckets[i].load(Relaxed)),
        }
    }

    #[cold]
    fn register(&'static self) {
        if !self.registered.swap(true, Relaxed) {
            registry().histograms.lock().unwrap().push(self);
        }
    }
}

/// A consistent copy of one [`LogHistogram`].
#[derive(Debug, Clone)]
pub struct HistSnapshot {
    /// Total observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
    /// Largest observed value.
    pub max: u64,
    /// Per-bucket observation counts (see [`HIST_BUCKETS`]).
    pub buckets: [u64; HIST_BUCKETS],
}

impl HistSnapshot {
    /// Mean observed value (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) as the upper bound of the
    /// containing bucket; `None` when the histogram is empty.
    ///
    /// Upper-bound reporting makes the estimate conservative and
    /// monotone: `quantile(a) <= quantile(b)` whenever `a <= b`.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= rank {
                return Some(bucket_upper(i).min(self.max));
            }
        }
        Some(self.max)
    }
}

// ---- timing spans ---------------------------------------------------

/// Aggregated wall-clock statistics of one named pipeline stage.
///
/// [`TimerStat::span`] returns an RAII guard; dropping it adds the
/// elapsed time. While metrics are disabled the guard carries no
/// `Instant` and drop is free.
pub struct TimerStat {
    name: &'static str,
    count: AtomicU64,
    total_ns: AtomicU64,
    max_ns: AtomicU64,
    registered: AtomicBool,
}

impl TimerStat {
    /// A new timer (const — usable in `static` position).
    pub const fn new(name: &'static str) -> Self {
        TimerStat {
            name,
            count: AtomicU64::new(0),
            total_ns: AtomicU64::new(0),
            max_ns: AtomicU64::new(0),
            registered: AtomicBool::new(false),
        }
    }

    /// The timer's registry name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Starts a span; the elapsed time records when the guard drops.
    #[inline]
    pub fn span(&'static self) -> SpanGuard {
        if !enabled() {
            return SpanGuard { inner: None };
        }
        if !self.registered.load(Relaxed) {
            self.register();
        }
        SpanGuard {
            inner: Some((self, Instant::now())),
        }
    }

    /// (count, total nanoseconds, max nanoseconds) recorded so far.
    pub fn get(&self) -> (u64, u64, u64) {
        (
            self.count.load(Relaxed),
            self.total_ns.load(Relaxed),
            self.max_ns.load(Relaxed),
        )
    }

    fn record_ns(&self, ns: u64) {
        self.count.fetch_add(1, Relaxed);
        self.total_ns.fetch_add(ns, Relaxed);
        self.max_ns.fetch_max(ns, Relaxed);
    }

    #[cold]
    fn register(&'static self) {
        if !self.registered.swap(true, Relaxed) {
            registry().timers.lock().unwrap().push(self);
        }
    }
}

/// RAII guard of one [`TimerStat`] span.
pub struct SpanGuard {
    inner: Option<(&'static TimerStat, Instant)>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some((stat, start)) = self.inner.take() {
            let ns = start.elapsed().as_nanos();
            stat.record_ns(u64::try_from(ns).unwrap_or(u64::MAX));
        }
    }
}

// ---- snapshot & export ----------------------------------------------

/// A point-in-time copy of every registered metric, sorted by name.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// `(name, value)` of every registered counter.
    pub counters: Vec<(&'static str, u64)>,
    /// `(name, value)` of every registered gauge.
    pub gauges: Vec<(&'static str, u64)>,
    /// `(name, state)` of every registered histogram.
    pub histograms: Vec<(&'static str, HistSnapshot)>,
    /// `(name, (count, total_ns, max_ns))` of every registered timer.
    pub timers: Vec<(&'static str, (u64, u64, u64))>,
}

impl Snapshot {
    /// Looks up a counter value by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| *v)
    }

    /// Looks up a gauge value by name.
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| *v)
    }

    /// Looks up a timer's total seconds by name.
    pub fn timer_total_s(&self, name: &str) -> Option<f64> {
        self.timers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, (_, total, _))| *total as f64 / 1e9)
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.gauges.is_empty()
            && self.histograms.is_empty()
            && self.timers.is_empty()
    }
}

/// Captures every registered metric.
pub fn snapshot() -> Snapshot {
    let reg = registry();
    let mut s = Snapshot {
        counters: reg
            .counters
            .lock()
            .unwrap()
            .iter()
            .map(|c| (c.name, c.get()))
            .collect(),
        gauges: reg
            .gauges
            .lock()
            .unwrap()
            .iter()
            .map(|g| (g.name, g.get()))
            .collect(),
        histograms: reg
            .histograms
            .lock()
            .unwrap()
            .iter()
            .map(|h| (h.name, h.snapshot()))
            .collect(),
        timers: reg
            .timers
            .lock()
            .unwrap()
            .iter()
            .map(|t| (t.name, t.get()))
            .collect(),
    };
    s.counters.sort_unstable_by_key(|(n, _)| *n);
    s.gauges.sort_unstable_by_key(|(n, _)| *n);
    s.histograms.sort_unstable_by_key(|(n, _)| *n);
    s.timers.sort_unstable_by_key(|(n, _)| *n);
    s
}

/// Zeroes every registered metric (test support: metrics are process
/// globals, so tests that assert exact totals reset first).
pub fn reset() {
    let reg = registry();
    for c in reg.counters.lock().unwrap().iter() {
        c.value.store(0, Relaxed);
    }
    for g in reg.gauges.lock().unwrap().iter() {
        g.value.store(0, Relaxed);
    }
    for h in reg.histograms.lock().unwrap().iter() {
        for b in &h.buckets {
            b.store(0, Relaxed);
        }
        h.count.store(0, Relaxed);
        h.sum.store(0, Relaxed);
        h.max.store(0, Relaxed);
    }
    for t in reg.timers.lock().unwrap().iter() {
        t.count.store(0, Relaxed);
        t.total_ns.store(0, Relaxed);
        t.max_ns.store(0, Relaxed);
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders a snapshot as the `METRICS_<bin>.json` document.
pub fn render_json(bin: &str, s: &Snapshot) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"bin\": \"{}\",\n", json_escape(bin)));

    out.push_str("  \"counters\": {");
    let items: Vec<String> = s
        .counters
        .iter()
        .map(|(n, v)| format!("\n    \"{}\": {v}", json_escape(n)))
        .collect();
    out.push_str(&items.join(","));
    out.push_str(if items.is_empty() { "},\n" } else { "\n  },\n" });

    out.push_str("  \"gauges\": {");
    let items: Vec<String> = s
        .gauges
        .iter()
        .map(|(n, v)| format!("\n    \"{}\": {v}", json_escape(n)))
        .collect();
    out.push_str(&items.join(","));
    out.push_str(if items.is_empty() { "},\n" } else { "\n  },\n" });

    out.push_str("  \"histograms\": {");
    let items: Vec<String> = s
        .histograms
        .iter()
        .map(|(n, h)| {
            let buckets: Vec<String> = h
                .buckets
                .iter()
                .enumerate()
                .filter(|(_, c)| **c > 0)
                .map(|(i, c)| format!("[{}, {c}]", bucket_upper(i)))
                .collect();
            format!(
                "\n    \"{}\": {{\"count\": {}, \"sum\": {}, \"max\": {}, \"mean\": {:.4}, \
                 \"p50\": {}, \"p90\": {}, \"p99\": {}, \"buckets\": [{}]}}",
                json_escape(n),
                h.count,
                h.sum,
                h.max,
                h.mean(),
                h.quantile(0.50).unwrap_or(0),
                h.quantile(0.90).unwrap_or(0),
                h.quantile(0.99).unwrap_or(0),
                buckets.join(", ")
            )
        })
        .collect();
    out.push_str(&items.join(","));
    out.push_str(if items.is_empty() { "},\n" } else { "\n  },\n" });

    out.push_str("  \"timers\": {");
    let items: Vec<String> = s
        .timers
        .iter()
        .map(|(n, (count, total_ns, max_ns))| {
            let total_s = *total_ns as f64 / 1e9;
            let mean_s = if *count == 0 {
                0.0
            } else {
                total_s / *count as f64
            };
            format!(
                "\n    \"{}\": {{\"count\": {count}, \"total_s\": {total_s:.6}, \
                 \"mean_s\": {mean_s:.6}, \"max_s\": {:.6}}}",
                json_escape(n),
                *max_ns as f64 / 1e9,
            )
        })
        .collect();
    out.push_str(&items.join(","));
    out.push_str(if items.is_empty() { "}\n" } else { "\n  }\n" });

    out.push_str("}\n");
    out
}

/// Renders a snapshot as an aligned human-readable report.
pub fn render_text(bin: &str, s: &Snapshot) -> String {
    let mut out = String::new();
    out.push_str(&format!("---- metrics [{bin}] ----\n"));
    for (n, v) in &s.counters {
        out.push_str(&format!("counter {n:<44} {v}\n"));
    }
    for (n, v) in &s.gauges {
        out.push_str(&format!("gauge   {n:<44} {v}\n"));
    }
    for (n, h) in &s.histograms {
        out.push_str(&format!(
            "hist    {n:<44} count={} mean={:.2} p50={} p99={} max={}\n",
            h.count,
            h.mean(),
            h.quantile(0.5).unwrap_or(0),
            h.quantile(0.99).unwrap_or(0),
            h.max
        ));
    }
    for (n, (count, total_ns, max_ns)) in &s.timers {
        out.push_str(&format!(
            "timer   {n:<44} count={count} total={:.3}s max={:.3}s\n",
            *total_ns as f64 / 1e9,
            *max_ns as f64 / 1e9
        ));
    }
    out
}

/// Exports this process's metrics per the [`mode`]:
///
/// * `Off` — nothing;
/// * `Text` — human-readable report on stderr;
/// * `Json` — writes `results/METRICS_<bin>.json` (creating `results/`)
///   and returns the path.
///
/// Every experiment binary calls this once at the end of `main`.
pub fn finish(bin: &str) -> Option<std::path::PathBuf> {
    match mode() {
        Mode::Off => None,
        Mode::Text => {
            eprint!("{}", render_text(bin, &snapshot()));
            None
        }
        Mode::Json => {
            let dir = std::path::Path::new("results");
            let _ = std::fs::create_dir_all(dir);
            let path = dir.join(format!("METRICS_{bin}.json"));
            let doc = render_json(bin, &snapshot());
            match std::fs::write(&path, doc) {
                Ok(()) => {
                    eprintln!("metrics: wrote {}", path.display());
                    Some(path)
                }
                Err(e) => {
                    eprintln!("metrics: failed to write {}: {e}", path.display());
                    None
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        assert_eq!(bucket_upper(0), 0);
        assert_eq!(bucket_upper(1), 1);
        assert_eq!(bucket_upper(2), 3);
        assert_eq!(bucket_upper(64), u64::MAX);
    }

    #[test]
    fn counters_and_gauges_record_when_forced() {
        static C: Counter = Counter::new("test.unit.counter");
        static G: Gauge = Gauge::new("test.unit.gauge");
        force_enable();
        C.add(41);
        C.inc();
        G.set(7);
        G.set_max(3); // lower: no effect
        G.set_max(9);
        assert_eq!(C.get(), 42);
        assert_eq!(G.get(), 9);
        let s = snapshot();
        assert_eq!(s.counter("test.unit.counter"), Some(42));
        assert_eq!(s.gauge("test.unit.gauge"), Some(9));
    }

    #[test]
    fn gauge_deltas_saturate_at_zero() {
        static G: Gauge = Gauge::new("test.unit.gauge_delta");
        force_enable();
        G.add(5);
        G.add(2);
        G.sub(3);
        assert_eq!(G.get(), 4);
        G.sub(100); // saturates, never wraps
        assert_eq!(G.get(), 0);
        G.add(1);
        assert_eq!(G.get(), 1);
    }

    #[test]
    fn histogram_quantiles_are_monotone_and_bounded() {
        static H: LogHistogram = LogHistogram::new("test.unit.hist");
        force_enable();
        for v in [0u64, 1, 1, 3, 9, 200, 4096, 70_000] {
            H.record(v);
        }
        let h = H.snapshot();
        assert!(h.count >= 8);
        assert_eq!(h.max, 70_000);
        let mut prev = 0;
        for pct in 0..=100 {
            let q = h.quantile(pct as f64 / 100.0).unwrap();
            assert!(q >= prev, "quantile not monotone at {pct}%");
            assert!(q <= h.max);
            prev = q;
        }
    }

    #[test]
    fn timer_spans_accumulate() {
        static T: TimerStat = TimerStat::new("test.unit.timer");
        force_enable();
        for _ in 0..3 {
            let _g = T.span();
            std::hint::black_box((0..1000u64).sum::<u64>());
        }
        let (count, total, max) = T.get();
        assert_eq!(count, 3);
        assert!(total > 0);
        assert!(max <= total);
    }

    #[test]
    fn dyn_metrics_are_interned_and_registered() {
        force_enable();
        let a = dyn_counter("test.unit.dyn.backend0.retries");
        let b = dyn_counter("test.unit.dyn.backend0.retries");
        assert!(std::ptr::eq(a, b), "same name must intern to one counter");
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2);
        let g1 = dyn_gauge("test.unit.dyn.backend1.inflight");
        let g2 = dyn_gauge("test.unit.dyn.backend1.inflight");
        assert!(std::ptr::eq(g1, g2));
        g1.add(3);
        g2.sub(1);
        assert_eq!(g1.get(), 2);
        let s = snapshot();
        assert_eq!(s.counter("test.unit.dyn.backend0.retries"), Some(2));
        assert_eq!(s.gauge("test.unit.dyn.backend1.inflight"), Some(2));
        // Distinct names are distinct instances.
        assert!(!std::ptr::eq(
            a,
            dyn_counter("test.unit.dyn.backend1.retries")
        ));
    }

    #[test]
    fn json_rendering_is_well_formed_enough() {
        static C: Counter = Counter::new("test.unit.json_counter");
        force_enable();
        C.inc();
        let doc = render_json("unit", &snapshot());
        assert!(doc.starts_with("{\n"));
        assert!(doc.trim_end().ends_with('}'));
        assert!(doc.contains("\"bin\": \"unit\""));
        assert!(doc.contains("\"test.unit.json_counter\": "));
        assert_eq!(doc.matches('{').count(), doc.matches('}').count());
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }
}
