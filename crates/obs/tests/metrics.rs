//! Metrics-correctness tests: recorded values match ground truth.
//!
//! Each test owns its statics, because the registry is process-global
//! and the test harness runs tests concurrently — asserting on shared
//! names would race.

use ssim_obs as obs;

#[test]
fn counter_totals_survive_concurrent_increments() {
    static C: obs::Counter = obs::Counter::new("test.concurrent_counter");
    obs::force_enable();
    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 25_000;
    std::thread::scope(|s| {
        for _ in 0..THREADS {
            s.spawn(|| {
                for _ in 0..PER_THREAD {
                    C.inc();
                }
            });
        }
    });
    assert_eq!(C.get(), THREADS * PER_THREAD, "lost increments");
    assert_eq!(
        obs::snapshot().counter("test.concurrent_counter"),
        Some(THREADS * PER_THREAD)
    );
}

#[test]
fn histogram_totals_match_ground_truth() {
    static H: obs::LogHistogram = obs::LogHistogram::new("test.hist_totals");
    obs::force_enable();
    let values: Vec<u64> = (0..=1000).collect();
    for &v in &values {
        H.record(v);
    }
    let s = H.snapshot();
    assert_eq!(s.count, values.len() as u64);
    assert_eq!(s.sum, values.iter().sum::<u64>());
    assert_eq!(s.max, 1000);
    assert_eq!(
        s.buckets.iter().sum::<u64>(),
        s.count,
        "every value lands in one bucket"
    );
    // Log-bucketing never loses the order of magnitude: the mean of the
    // recorded 0..=1000 ramp is exactly recoverable from sum/count.
    assert!((s.mean() - 500.0).abs() < 1e-9);
}

#[test]
fn histogram_quantiles_are_monotone_and_bounded() {
    static H: obs::LogHistogram = obs::LogHistogram::new("test.hist_quantiles");
    obs::force_enable();
    // Heavy-tailed on purpose: mostly small values, a few huge ones.
    for _ in 0..900 {
        H.record(3);
    }
    for _ in 0..90 {
        H.record(100);
    }
    for _ in 0..10 {
        H.record(1_000_000);
    }
    let s = H.snapshot();
    let qs = [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0];
    let mut prev = 0u64;
    for q in qs {
        let v = s.quantile(q).expect("non-empty");
        assert!(v >= prev, "quantile({q}) = {v} < previous {prev}");
        assert!(v <= s.max, "quantile({q}) = {v} exceeds the observed max");
        prev = v;
    }
    // The bucket upper bound is a valid over-estimate of the true
    // quantile: the p50 of this distribution is 3, its bucket is [2,4).
    assert!(s.quantile(0.5).unwrap() >= 3);
    assert!(
        s.quantile(0.5).unwrap() < 100,
        "p50 must not leak into the tail"
    );
    assert_eq!(s.quantile(1.0).unwrap(), s.max);
}

#[test]
fn empty_histogram_has_no_quantiles() {
    static H: obs::LogHistogram = obs::LogHistogram::new("test.hist_empty");
    obs::force_enable();
    assert_eq!(H.snapshot().quantile(0.5), None);
    assert_eq!(H.snapshot().mean(), 0.0);
}

#[test]
fn gauge_set_and_high_water_mark() {
    static G: obs::Gauge = obs::Gauge::new("test.gauge");
    obs::force_enable();
    G.set(5);
    G.set_max(3);
    assert_eq!(G.get(), 5, "set_max below current must not lower the gauge");
    G.set_max(9);
    assert_eq!(G.get(), 9);
    G.set(1);
    assert_eq!(G.get(), 1, "set is last-write-wins");
}

#[test]
fn timer_spans_accumulate() {
    static T: obs::TimerStat = obs::TimerStat::new("test.timer");
    obs::force_enable();
    for _ in 0..2 {
        let _span = T.span();
        std::hint::black_box((0..10_000u64).sum::<u64>());
    }
    let (count, total_ns, max_ns) = T.get();
    assert_eq!(count, 2);
    assert!(total_ns > 0);
    assert!(max_ns <= total_ns);
}

#[test]
fn json_render_carries_recorded_metrics() {
    static C: obs::Counter = obs::Counter::new("test.json_counter");
    obs::force_enable();
    C.add(41);
    C.inc();
    let doc = obs::render_json("some_bin", &obs::snapshot());
    assert!(doc.contains("\"bin\": \"some_bin\""));
    assert!(doc.contains("\"test.json_counter\": 42"));
    // Smoke structural checks a consumer relies on.
    assert!(doc.trim_start().starts_with('{') && doc.trim_end().ends_with('}'));
    assert!(doc.contains("\"counters\""));
    assert!(doc.contains("\"histograms\""));
}
