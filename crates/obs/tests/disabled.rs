//! `SSIM_METRICS=0` must emit nothing and record nothing.
//!
//! This lives in its own integration-test file (= its own process): the
//! mode is resolved once per process from the environment, so it cannot
//! share a binary with tests that force-enable recording.

use ssim_obs as obs;

static C: obs::Counter = obs::Counter::new("disabled.counter");
static G: obs::Gauge = obs::Gauge::new("disabled.gauge");
static H: obs::LogHistogram = obs::LogHistogram::new("disabled.hist");
static T: obs::TimerStat = obs::TimerStat::new("disabled.timer");

#[test]
fn disabled_mode_records_and_emits_nothing() {
    std::env::set_var("SSIM_METRICS", "0");
    assert_eq!(obs::mode(), obs::Mode::Off);
    assert!(!obs::enabled());

    C.add(5);
    C.inc();
    G.set(7);
    G.set_max(9);
    H.record(11);
    drop(T.span());

    assert_eq!(C.get(), 0);
    assert_eq!(G.get(), 0);
    assert_eq!(H.snapshot().count, 0);
    assert_eq!(T.get(), (0, 0, 0));

    // Nothing registered, nothing exported, no file written.
    assert!(obs::snapshot().is_empty());
    assert!(obs::finish("disabled_test").is_none());
    assert!(!std::path::Path::new("results/METRICS_disabled_test.json").exists());
}
