//! Property-based tests for the statistics primitives.

use proptest::prelude::*;
use ssim_stats::{Histogram, ProbCounter, Summary};

proptest! {
    /// Sampling at any `u` always returns a value that was recorded.
    #[test]
    fn histogram_sample_is_in_support(values in prop::collection::vec(0u32..64, 1..200), u in 0.0f64..1.5) {
        let h: Histogram = values.iter().copied().collect();
        let s = h.sample_with(u).expect("non-empty histogram samples");
        prop_assert!(values.contains(&s));
    }

    /// Probabilities over the support sum to 1.
    #[test]
    fn histogram_probabilities_sum_to_one(values in prop::collection::vec(0u32..64, 1..200)) {
        let h: Histogram = values.iter().copied().collect();
        let sum: f64 = h.iter().map(|(v, _)| h.probability(v)).sum();
        prop_assert!((sum - 1.0).abs() < 1e-9);
    }

    /// The compiled sampler inverts the CDF exactly like the
    /// interpreter for every histogram and every u, in range or not.
    #[test]
    fn compiled_histogram_matches_interpreter(values in prop::collection::vec(0u32..600, 0..200),
                                              u in -0.5f64..1.5) {
        let h: Histogram = values.iter().copied().collect();
        let c = h.compile();
        prop_assert_eq!(c.sample_with(u), h.sample_with(u));
        prop_assert_eq!(c.total(), h.total());
        prop_assert_eq!(c.is_empty(), h.is_empty());
    }

    /// Total is conserved by merge.
    #[test]
    fn histogram_merge_conserves_total(a in prop::collection::vec(0u32..32, 0..100),
                                       b in prop::collection::vec(0u32..32, 0..100)) {
        let mut ha: Histogram = a.iter().copied().collect();
        let hb: Histogram = b.iter().copied().collect();
        ha.merge(&hb);
        prop_assert_eq!(ha.total(), (a.len() + b.len()) as u64);
    }

    /// The CDF inverse is monotone: larger u never yields a smaller value.
    #[test]
    fn histogram_sampling_is_monotone(values in prop::collection::vec(0u32..64, 1..100),
                                      u1 in 0.0f64..1.0, u2 in 0.0f64..1.0) {
        let h: Histogram = values.iter().copied().collect();
        let (lo, hi) = if u1 <= u2 { (u1, u2) } else { (u2, u1) };
        prop_assert!(h.sample_with(lo).unwrap() <= h.sample_with(hi).unwrap());
    }

    /// Mean lies within [min, max] of the observations.
    #[test]
    fn summary_mean_within_bounds(values in prop::collection::vec(-1e6f64..1e6, 1..300)) {
        let s: Summary = values.iter().copied().collect();
        prop_assert!(s.mean() >= s.min().unwrap() - 1e-6);
        prop_assert!(s.mean() <= s.max().unwrap() + 1e-6);
    }

    /// CoV is scale-invariant for positive scalings.
    #[test]
    fn summary_cov_scale_invariant(values in prop::collection::vec(1.0f64..100.0, 2..100),
                                   scale in 0.5f64..10.0) {
        let s1: Summary = values.iter().copied().collect();
        let s2: Summary = values.iter().map(|v| v * scale).collect();
        prop_assert!((s1.cov() - s2.cov()).abs() < 1e-9);
    }

    /// ProbCounter probability is always in [0, 1].
    #[test]
    fn prob_counter_in_unit_interval(events in prop::collection::vec(any::<bool>(), 0..500)) {
        let mut p = ProbCounter::new();
        for e in &events {
            p.record(*e);
        }
        let prob = p.probability();
        prop_assert!((0.0..=1.0).contains(&prob));
        prop_assert_eq!(p.trials(), events.len() as u64);
    }
}
