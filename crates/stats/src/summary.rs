//! Streaming summary statistics (Welford's algorithm).

/// Streaming mean / variance / coefficient-of-variation accumulator.
///
/// The paper quantifies the convergence of statistical simulation via the
/// coefficient of variation of IPC over 20 differently-seeded synthetic
/// traces (§4.1). `Summary` computes exactly that, using Welford's
/// numerically stable online algorithm.
///
/// # Examples
///
/// ```
/// use ssim_stats::Summary;
///
/// let mut s = Summary::new();
/// s.add(2.0);
/// s.add(4.0);
/// assert_eq!(s.count(), 2);
/// assert!((s.mean() - 3.0).abs() < 1e-12);
/// assert!((s.stddev() - std::f64::consts::SQRT_2).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Summary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn add(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean; `0.0` with no observations.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Sample standard deviation (n−1 denominator); `0.0` with fewer than
    /// two observations.
    pub fn stddev(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            (self.m2 / (self.count - 1) as f64).sqrt()
        }
    }

    /// Coefficient of variation: standard deviation divided by mean
    /// (§4.1 of the paper). Returns `0.0` when the mean is zero.
    pub fn cov(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            self.stddev() / self.mean
        }
    }

    /// Smallest observation; `None` with no observations.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation; `None` with no observations.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }
}

impl FromIterator<f64> for Summary {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = Summary::new();
        for x in iter {
            s.add(x);
        }
        s
    }
}

impl Extend<f64> for Summary {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.add(x);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary() {
        let s = Summary::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.stddev(), 0.0);
        assert_eq!(s.cov(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
    }

    #[test]
    fn single_observation() {
        let s: Summary = [5.0].into_iter().collect();
        assert_eq!(s.count(), 1);
        assert_eq!(s.mean(), 5.0);
        assert_eq!(s.stddev(), 0.0);
        assert_eq!(s.min(), Some(5.0));
        assert_eq!(s.max(), Some(5.0));
    }

    #[test]
    fn known_variance() {
        let s: Summary = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
            .into_iter()
            .collect();
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // Sample variance of that set is 32/7.
        let expected = (32.0f64 / 7.0).sqrt();
        assert!((s.stddev() - expected).abs() < 1e-12);
    }

    #[test]
    fn cov_is_relative_spread() {
        let tight: Summary = [100.0, 101.0, 99.0].into_iter().collect();
        let wide: Summary = [100.0, 150.0, 50.0].into_iter().collect();
        assert!(tight.cov() < wide.cov());
    }

    #[test]
    fn min_max_track_extremes() {
        let mut s = Summary::new();
        s.extend([3.0, -1.0, 7.5]);
        assert_eq!(s.min(), Some(-1.0));
        assert_eq!(s.max(), Some(7.5));
    }

    #[test]
    fn matches_naive_computation_on_larger_input() {
        let xs: Vec<f64> = (0..1000)
            .map(|i| (i as f64 * 0.37).sin() * 10.0 + 50.0)
            .collect();
        let s: Summary = xs.iter().copied().collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (xs.len() - 1) as f64;
        assert!((s.mean() - mean).abs() < 1e-9);
        assert!((s.stddev() - var.sqrt()).abs() < 1e-9);
    }
}
