//! The paper's accuracy metrics.

/// Absolute prediction error of a metric (§4.2 of the paper):
///
/// `AE = |M_SS − M_EDS| / M_EDS`
///
/// where `M_SS` comes from statistical simulation and `M_EDS` from
/// execution-driven simulation.
///
/// # Examples
///
/// ```
/// let e = ssim_stats::absolute_error(1.1, 1.0);
/// assert!((e - 0.1).abs() < 1e-12);
/// ```
///
/// # Panics
///
/// Panics if `eds` is zero (the reference metric must be nonzero).
pub fn absolute_error(ss: f64, eds: f64) -> f64 {
    assert!(eds != 0.0, "reference metric must be nonzero");
    (ss - eds).abs() / eds.abs()
}

/// Relative prediction error when moving from design point `A` to design
/// point `B` (§4.5 of the paper):
///
/// `RE = |(M_B,SS / M_A,SS) − (M_B,EDS / M_A,EDS)| / (M_B,EDS / M_A,EDS)`
///
/// # Examples
///
/// ```
/// use ssim_stats::MetricPair;
///
/// let a = MetricPair { ss: 1.0, eds: 1.0 };
/// let b = MetricPair { ss: 1.21, eds: 1.1 };
/// // SS predicts a 21% gain, EDS says 10%: relative error = 0.11/1.1 = 10%.
/// let re = ssim_stats::relative_error(a, b);
/// assert!((re - 0.1).abs() < 1e-12);
/// ```
///
/// # Panics
///
/// Panics if any of the four metric values is zero.
pub fn relative_error(a: MetricPair, b: MetricPair) -> f64 {
    assert!(
        a.ss != 0.0 && a.eds != 0.0 && b.eds != 0.0,
        "metric values must be nonzero"
    );
    let ss_ratio = b.ss / a.ss;
    let eds_ratio = b.eds / a.eds;
    (ss_ratio - eds_ratio).abs() / eds_ratio.abs()
}

/// A metric measured both by statistical simulation (`ss`) and by
/// execution-driven simulation (`eds`) at one design point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MetricPair {
    /// Value predicted by statistical simulation.
    pub ss: f64,
    /// Value measured by execution-driven (reference) simulation.
    pub eds: f64,
}

impl MetricPair {
    /// Absolute prediction error of this pair.
    ///
    /// # Panics
    ///
    /// Panics if the reference value is zero.
    pub fn absolute_error(&self) -> f64 {
        absolute_error(self.ss, self.eds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absolute_error_is_symmetric_around_reference() {
        assert!((absolute_error(0.9, 1.0) - 0.1).abs() < 1e-12);
        assert!((absolute_error(1.1, 1.0) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn perfect_prediction_has_zero_error() {
        assert_eq!(absolute_error(2.5, 2.5), 0.0);
        let p = MetricPair { ss: 3.0, eds: 3.0 };
        assert_eq!(p.absolute_error(), 0.0);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn absolute_error_rejects_zero_reference() {
        absolute_error(1.0, 0.0);
    }

    #[test]
    fn relative_error_ignores_constant_bias() {
        // SS is consistently 20% high; the *trend* is perfect.
        let a = MetricPair { ss: 1.2, eds: 1.0 };
        let b = MetricPair { ss: 2.4, eds: 2.0 };
        assert!(relative_error(a, b) < 1e-12);
    }

    #[test]
    fn relative_error_detects_wrong_trend() {
        let a = MetricPair { ss: 1.0, eds: 1.0 };
        let b = MetricPair { ss: 1.0, eds: 2.0 }; // EDS doubles, SS flat
        assert!((relative_error(a, b) - 0.5).abs() < 1e-12);
    }
}
