//! Empirical distributions with cumulative-distribution sampling.

use std::collections::BTreeMap;

/// The largest `f64` strictly below `1.0` (one half-ulp under one).
///
/// `sample_with` clamps its uniform input to `[0, UNIT_UPPER]` so that
/// `u = 1.0` maps to the last recorded value. Note `1.0 - f64::EPSILON`
/// is *two* representable values below `1.0`; using it would waste the
/// top half-ulp of the unit interval and force the floating-point
/// fallback more often than the arithmetic requires.
const UNIT_UPPER: f64 = 1.0 - f64::EPSILON / 2.0;

/// An empirical distribution over small non-negative integers.
///
/// The paper stores several characteristics as distributions — most
/// importantly the per-operand dependency-distance distribution
/// `P[D | B_n, B_{n-1}..B_{n-k}]` (§2.1.1), which is capped at 512
/// entries. `Histogram` keeps exact counts in a sorted map so that
/// sampling can walk the cumulative distribution, exactly like step 4 of
/// the synthetic-trace-generation algorithm (§2.2).
///
/// # Examples
///
/// ```
/// use ssim_stats::Histogram;
///
/// let mut h = Histogram::new();
/// for d in [1, 1, 2, 8] {
///     h.record(d);
/// }
/// assert_eq!(h.total(), 4);
/// assert_eq!(h.count(1), 2);
/// // Sampling with u = 0.0 yields the smallest recorded value.
/// assert_eq!(h.sample_with(0.0), Some(1));
/// // Sampling with u close to 1.0 yields the largest recorded value.
/// assert_eq!(h.sample_with(0.999), Some(8));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Histogram {
    counts: BTreeMap<u32, u64>,
    total: u64,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one occurrence of `value`.
    pub fn record(&mut self, value: u32) {
        self.record_n(value, 1);
    }

    /// Records `n` occurrences of `value`.
    pub fn record_n(&mut self, value: u32, n: u64) {
        if n == 0 {
            return;
        }
        *self.counts.entry(value).or_insert(0) += n;
        self.total += n;
    }

    /// Total number of recorded occurrences.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Returns `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Number of occurrences recorded for `value`.
    pub fn count(&self, value: u32) -> u64 {
        self.counts.get(&value).copied().unwrap_or(0)
    }

    /// Number of distinct values recorded.
    pub fn distinct(&self) -> usize {
        self.counts.len()
    }

    /// Empirical probability of `value`.
    ///
    /// Returns `0.0` for an empty histogram.
    pub fn probability(&self, value: u32) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.count(value) as f64 / self.total as f64
        }
    }

    /// Mean of the recorded values, or `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        if self.total == 0 {
            return None;
        }
        let sum: f64 = self.counts.iter().map(|(&v, &c)| v as f64 * c as f64).sum();
        Some(sum / self.total as f64)
    }

    /// Largest recorded value, or `None` if empty.
    pub fn max(&self) -> Option<u32> {
        self.counts.keys().next_back().copied()
    }

    /// Samples a value by inverting the cumulative distribution at `u`.
    ///
    /// `u` is clamped to `[0, 1)`. Returns `None` for an empty histogram.
    /// This is the primitive used by synthetic trace generation: callers
    /// supply a uniform random number and the histogram maps it through
    /// the cumulative distribution function ("using a cumulative
    /// distribution function built up by the occurrence of each node",
    /// §2.2 step 1).
    pub fn sample_with(&self, u: f64) -> Option<u32> {
        if self.total == 0 {
            return None;
        }
        let u = u.clamp(0.0, UNIT_UPPER);
        let target = (u * self.total as f64) as u64;
        let mut acc = 0u64;
        for (&value, &count) in &self.counts {
            acc += count;
            if target < acc {
                return Some(value);
            }
        }
        // Floating-point slack (`u * total` rounding up to `total` for
        // totals beyond 2^52): fall back to the largest value.
        self.counts.keys().next_back().copied()
    }

    /// Lowers the histogram into a [`CompiledHistogram`] whose
    /// [`CompiledHistogram::sample_with`] returns bit-identical results
    /// via binary search instead of a map walk.
    pub fn compile(&self) -> CompiledHistogram {
        let mut values = Vec::with_capacity(self.counts.len());
        let mut cumulative = Vec::with_capacity(self.counts.len());
        let mut acc = 0u64;
        for (&value, &count) in &self.counts {
            acc += count;
            values.push(value);
            cumulative.push(acc);
        }
        debug_assert_eq!(acc, self.total);
        let single = (values.len() == 1).then(|| values[0]);
        let (guide, guide_scale) = if values.len() > GUIDE_MIN_SUPPORT {
            let m = values.len().next_power_of_two() * 2;
            let mut guide = Vec::with_capacity(m);
            for j in 0..m {
                // Smallest target in bucket j (exact in u128).
                let t_lo = (j as u128 * self.total as u128 / m as u128) as u64;
                guide.push(cumulative.partition_point(|&c| c <= t_lo) as u32);
            }
            (guide, m as f64 / self.total as f64)
        } else {
            (Vec::new(), 0.0)
        };
        CompiledHistogram {
            values,
            cumulative,
            total: self.total,
            single,
            guide,
            guide_scale,
        }
    }

    /// Iterates over `(value, count)` pairs in increasing value order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, u64)> + '_ {
        self.counts.iter().map(|(&v, &c)| (v, c))
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (v, c) in other.iter() {
            self.record_n(v, c);
        }
    }
}

impl FromIterator<u32> for Histogram {
    fn from_iter<I: IntoIterator<Item = u32>>(iter: I) -> Self {
        let mut h = Histogram::new();
        for v in iter {
            h.record(v);
        }
        h
    }
}

impl Extend<u32> for Histogram {
    fn extend<I: IntoIterator<Item = u32>>(&mut self, iter: I) {
        for v in iter {
            self.record(v);
        }
    }
}

/// A [`Histogram`] lowered to dense, cache-friendly tables for the
/// sampling hot path.
///
/// [`Histogram::sample_with`] walks a `BTreeMap` — an O(support)
/// pointer-chase per draw. Synthetic trace generation draws from the
/// same frozen distributions millions of times per design point, so the
/// compiled sampling engine lowers each histogram once into parallel
/// sorted `(value, cumulative)` vectors and inverts the CDF with
/// `partition_point`. The inversion computes the *identical* target
/// index from the identical clamp, so for every `u` the compiled and
/// interpreted samplers agree bit for bit (pinned by a property test).
///
/// # Examples
///
/// ```
/// use ssim_stats::Histogram;
///
/// let h: Histogram = [1u32, 1, 2, 8].into_iter().collect();
/// let c = h.compile();
/// for u in [0.0, 0.25, 0.5, 0.999, 1.0] {
///     assert_eq!(c.sample_with(u), h.sample_with(u));
/// }
/// ```
/// Support size above which a [`CompiledHistogram`] carries a guide
/// table; below it a branchless linear count is faster than any lookup.
const GUIDE_MIN_SUPPORT: usize = 16;

#[derive(Debug, Clone, Default, PartialEq)]
pub struct CompiledHistogram {
    values: Vec<u32>,
    cumulative: Vec<u64>,
    total: u64,
    /// The value, when the support is a single point. Kept inline so
    /// the (very common) degenerate draw never dereferences the table
    /// vectors.
    single: Option<u32>,
    /// Inversion guide table ("guide table" / "cutpoint" method): entry
    /// `j` is the partition point for the smallest target in quantile
    /// bucket `j`, so a draw starts its scan at most a couple of
    /// entries from the answer instead of binary-searching. Built only
    /// past [`GUIDE_MIN_SUPPORT`]; `guide.len()` is a power of two with
    /// at least one bucket per support entry.
    guide: Vec<u32>,
    /// `guide.len() as f64 / total as f64`, precomputed for the
    /// target → bucket map.
    guide_scale: f64,
}

impl CompiledHistogram {
    /// Total number of occurrences in the source histogram.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Returns `true` when the source histogram held nothing.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Number of distinct values in the support.
    pub fn distinct(&self) -> usize {
        self.values.len()
    }

    /// Samples by inverting the cumulative distribution at `u`, exactly
    /// like [`Histogram::sample_with`] (same clamp, same target, same
    /// fallback) but in O(log support).
    #[inline]
    pub fn sample_with(&self, u: f64) -> Option<u32> {
        if self.total == 0 {
            return None;
        }
        if let Some(v) = self.single {
            // Degenerate CDF: every quantile inverts to the one value.
            return Some(v);
        }
        let u = u.clamp(0.0, UNIT_UPPER);
        let target = (u * self.total as f64) as u64;
        // `cumulative` is strictly increasing, so the partition point of
        // `c <= target` equals the count of entries satisfying it. At
        // small support a branchless count beats binary search (no
        // data-dependent branches to mispredict); past that, the guide
        // table lands the scan within a couple of entries of the
        // answer, making the draw O(1) in expectation.
        let idx = if self.guide.is_empty() {
            self.cumulative
                .iter()
                .map(|&c| usize::from(c <= target))
                .sum()
        } else {
            // The f64 bucket map can be off by one from the exact u128
            // arithmetic the guide was built with; the two fix-up scans
            // converge on the exact partition point from either side.
            let j = ((target as f64 * self.guide_scale) as usize).min(self.guide.len() - 1);
            let mut idx = self.guide[j] as usize;
            while idx < self.cumulative.len() && self.cumulative[idx] <= target {
                idx += 1;
            }
            while idx > 0 && self.cumulative[idx - 1] > target {
                idx -= 1;
            }
            idx
        };
        match self.values.get(idx) {
            Some(&v) => Some(v),
            // Floating-point slack: same fallback as the interpreter.
            None => self.values.last().copied(),
        }
    }
}

/// An event-probability estimator: `events / trials`.
///
/// Used throughout statistical profiling for the microarchitecture-
/// dependent characteristics of §2.1.2 — branch taken probability,
/// fetch-redirection probability, misprediction probability and the six
/// cache/TLB miss rates.
///
/// # Examples
///
/// ```
/// use ssim_stats::ProbCounter;
///
/// let mut p = ProbCounter::new();
/// p.record(true);
/// p.record(false);
/// p.record(false);
/// p.record(false);
/// assert!((p.probability() - 0.25).abs() < 1e-12);
/// assert_eq!(p.trials(), 4);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProbCounter {
    events: u64,
    trials: u64,
}

impl ProbCounter {
    /// Creates a counter with zero trials.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reconstitutes a counter from raw counts (deserialisation).
    ///
    /// # Panics
    ///
    /// Panics if `events > trials`.
    pub fn from_counts(events: u64, trials: u64) -> Self {
        assert!(events <= trials, "events cannot exceed trials");
        ProbCounter { events, trials }
    }

    /// Records one trial; `event` tells whether the event occurred.
    pub fn record(&mut self, event: bool) {
        self.trials += 1;
        if event {
            self.events += 1;
        }
    }

    /// Number of recorded events.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Number of recorded trials.
    pub fn trials(&self) -> u64 {
        self.trials
    }

    /// Empirical probability of the event; `0.0` with no trials.
    pub fn probability(&self) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            self.events as f64 / self.trials as f64
        }
    }

    /// Merges another counter into this one.
    pub fn merge(&mut self, other: &ProbCounter) {
        self.events += other.events;
        self.trials += other.trials;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_behaves() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.total(), 0);
        assert_eq!(h.sample_with(0.5), None);
        assert_eq!(h.mean(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.probability(0), 0.0);
    }

    #[test]
    fn record_and_count() {
        let mut h = Histogram::new();
        h.record(5);
        h.record(5);
        h.record(9);
        assert_eq!(h.count(5), 2);
        assert_eq!(h.count(9), 1);
        assert_eq!(h.count(1), 0);
        assert_eq!(h.total(), 3);
        assert_eq!(h.distinct(), 2);
        assert_eq!(h.max(), Some(9));
    }

    #[test]
    fn sampling_covers_support_boundaries() {
        let h: Histogram = [2u32, 4, 4, 6].into_iter().collect();
        assert_eq!(h.sample_with(0.0), Some(2));
        assert_eq!(h.sample_with(0.25), Some(4));
        assert_eq!(h.sample_with(0.70), Some(4));
        assert_eq!(h.sample_with(0.80), Some(6));
        assert_eq!(h.sample_with(1.0), Some(6));
        assert_eq!(h.sample_with(2.0), Some(6)); // clamped
        assert_eq!(h.sample_with(-1.0), Some(2)); // clamped
    }

    #[test]
    fn sampling_handles_exact_unit_boundaries() {
        // The clamp bound is one half-ulp below 1.0 — the true largest
        // f64 < 1.0 (1.0 - EPSILON is two representable values down).
        assert_eq!(UNIT_UPPER.to_bits() + 1, 1.0f64.to_bits());

        let h: Histogram = [2u32, 4, 4, 6].into_iter().collect();
        let c = h.compile();
        for (u, want) in [
            (0.0, 2),                // lower boundary: smallest value
            (1.0 - f64::EPSILON, 6), // inside [0, 1): largest value
            (UNIT_UPPER, 6),         // largest f64 < 1.0
            (1.0, 6),                // upper boundary clamps down
        ] {
            assert_eq!(h.sample_with(u), Some(want), "interpreted at u={u}");
            assert_eq!(c.sample_with(u), Some(want), "compiled at u={u}");
        }
        // With the correct clamp the target index stays strictly below
        // the total for every in-range u, so the fallback is reserved
        // for genuine floating-point slack (totals beyond 2^52).
        let target = (UNIT_UPPER * h.total() as f64) as u64;
        assert!(target < h.total());
    }

    #[test]
    fn compiled_histogram_mirrors_interpreter() {
        let h: Histogram = [2u32, 4, 4, 6].into_iter().collect();
        let c = h.compile();
        assert_eq!(c.total(), h.total());
        assert_eq!(c.distinct(), h.distinct());
        assert!(!c.is_empty());
        for i in 0..=1000 {
            let u = i as f64 / 1000.0;
            assert_eq!(c.sample_with(u), h.sample_with(u), "u = {u}");
        }
        assert_eq!(c.sample_with(-1.0), h.sample_with(-1.0));
        assert_eq!(c.sample_with(2.0), h.sample_with(2.0));
        let empty = Histogram::new().compile();
        assert!(empty.is_empty());
        assert_eq!(empty.sample_with(0.5), None);
    }

    #[test]
    fn sampling_matches_probabilities_roughly() {
        let h: Histogram = [1u32, 1, 1, 8].into_iter().collect();
        // Deterministic stratified sampling: quarters of the unit interval.
        let n = 10_000;
        let mut ones = 0;
        for i in 0..n {
            let u = (i as f64 + 0.5) / n as f64;
            if h.sample_with(u) == Some(1) {
                ones += 1;
            }
        }
        let frac = ones as f64 / n as f64;
        assert!((frac - 0.75).abs() < 0.01, "frac = {frac}");
    }

    #[test]
    fn mean_is_weighted() {
        let h: Histogram = [2u32, 2, 8].into_iter().collect();
        assert!((h.mean().unwrap() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a: Histogram = [1u32, 2].into_iter().collect();
        let b: Histogram = [2u32, 3].into_iter().collect();
        a.merge(&b);
        assert_eq!(a.total(), 4);
        assert_eq!(a.count(2), 2);
        assert_eq!(a.count(3), 1);
    }

    #[test]
    fn extend_records_all() {
        let mut h = Histogram::new();
        h.extend([7u32, 7, 7]);
        assert_eq!(h.count(7), 3);
    }

    #[test]
    fn prob_counter_basics() {
        let mut p = ProbCounter::new();
        assert_eq!(p.probability(), 0.0);
        p.record(true);
        p.record(true);
        p.record(false);
        assert_eq!(p.events(), 2);
        assert_eq!(p.trials(), 3);
        assert!((p.probability() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn prob_counter_merge() {
        let mut a = ProbCounter::new();
        a.record(true);
        let mut b = ProbCounter::new();
        b.record(false);
        b.record(false);
        a.merge(&b);
        assert_eq!(a.trials(), 3);
        assert_eq!(a.events(), 1);
    }
}
