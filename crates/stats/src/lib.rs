//! Statistical building blocks for the ssim framework.
//!
//! This crate provides the small set of statistics primitives the
//! statistical-simulation methodology of Eeckhout et al. (ISCA 2004) is
//! built from:
//!
//! * [`Histogram`] — an empirical distribution over small non-negative
//!   integers (used for dependency-distance distributions, basic-block
//!   size distributions, …) supporting cumulative-distribution sampling;
//! * [`CompiledHistogram`] — the same distribution lowered to flat
//!   sorted arrays for O(log support) draws on the synthetic-trace
//!   generation hot path, bit-identical to [`Histogram::sample_with`];
//! * [`ProbCounter`] — an event/total probability estimator (used for
//!   branch taken/misprediction rates and cache miss rates);
//! * [`Summary`] — streaming mean / standard deviation / coefficient of
//!   variation (used for the convergence study of §4.1 of the paper);
//! * [`absolute_error`] / [`relative_error`] — the paper's accuracy
//!   metrics (§4.2 and §4.5).
//!
//! # Examples
//!
//! ```
//! use ssim_stats::{Histogram, Summary};
//!
//! let mut h = Histogram::new();
//! h.record(3);
//! h.record(3);
//! h.record(7);
//! assert_eq!(h.total(), 3);
//! assert!((h.probability(3) - 2.0 / 3.0).abs() < 1e-12);
//!
//! let s: Summary = [1.0, 2.0, 3.0].into_iter().collect();
//! assert!((s.mean() - 2.0).abs() < 1e-12);
//! ```

mod dist;
mod metrics;
mod summary;

pub use dist::{CompiledHistogram, Histogram, ProbCounter};
pub use metrics::{absolute_error, relative_error, MetricPair};
pub use summary::Summary;
