//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment for this workspace has no network access, so the
//! real `rand` 0.8 cannot be fetched. This crate implements exactly the
//! subset of its API the workspace uses — `rngs::SmallRng`,
//! `SeedableRng::seed_from_u64`, `Rng::gen::<f64>()` and
//! `Rng::gen_range(lo..hi)` over the integer types — with the same
//! algorithms the real crate uses on 64-bit targets (xoshiro256++ state
//! seeded through SplitMix64), so streams are deterministic and of the
//! same statistical quality.
//!
//! It is wired in through a `path` entry in `[workspace.dependencies]`;
//! no caller source changes are needed.

use std::ops::Range;

/// Core RNG interface: a source of 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of an RNG from seed material.
pub trait SeedableRng: Sized {
    /// Expand a 64-bit seed into full RNG state via SplitMix64, as the
    /// real crate does for xoshiro-family generators.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Values the `Standard` distribution can produce (`rng.gen()`).
pub trait StandardSample: Sized {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision — the same mapping
    /// rand 0.8 uses for `Standard`.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for u64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

/// Types usable as `gen_range` endpoints.
pub trait SampleUniform: Copy + PartialOrd {
    fn sample_in<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as u128).wrapping_sub(lo as u128);
                // Widening-multiply range reduction (Lemire); the tiny
                // bias at astronomical spans is irrelevant here.
                let r = rng.next_u64() as u128;
                lo.wrapping_add(((r * span) >> 64) as $t)
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize);

/// The user-facing RNG interface.
pub trait Rng: RngCore {
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::standard_sample(self)
    }

    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        assert!(range.start < range.end, "gen_range called with empty range");
        T::sample_in(self, range.start, range.end)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::standard_sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the algorithm behind rand 0.8's `SmallRng` on
    /// 64-bit targets: fast, small state, excellent statistical quality.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        // Inline across crates: every distribution draw funnels through
        // this method, and a call per draw would dominate the compiled
        // sampler's hot loop.
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_across_instances() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<f64>(), b.gen::<f64>());
            assert_eq!(a.gen_range(0u64..1000), b.gen_range(0u64..1000));
        }
    }

    #[test]
    fn seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.gen::<f64>() == b.gen::<f64>()).count();
        assert!(same < 4);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u32..20);
            assert!((10..20).contains(&v));
            let u = rng.gen_range(0usize..3);
            assert!(u < 3);
        }
    }

    #[test]
    fn f64_in_unit_interval_and_well_spread() {
        let mut rng = SmallRng::seed_from_u64(9);
        let n = 10_000;
        let mean: f64 = (0..n)
            .map(|_| {
                let v = rng.gen::<f64>();
                assert!((0.0..1.0).contains(&v));
                v
            })
            .sum::<f64>()
            / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
