//! Branch target buffer.

/// A set-associative branch target buffer with LRU replacement.
///
/// Maps a branch PC to its most recent taken target. A BTB miss on a
/// taken branch causes a *fetch redirection* in the paper's taxonomy
/// (the target becomes known at decode); a BTB miss on an indirect
/// branch is a full misprediction (§2.1.2).
#[derive(Debug, Clone)]
pub struct Btb {
    sets: Vec<Vec<BtbEntry>>,
    assoc: usize,
    lru_tick: u64,
}

#[derive(Debug, Clone, Copy)]
struct BtbEntry {
    pc: usize,
    target: usize,
    last_use: u64,
}

impl Btb {
    /// Creates a BTB with `sets` sets of `assoc` ways.
    ///
    /// # Panics
    ///
    /// Panics if `sets` is not a power of two or `assoc` is zero.
    pub fn new(sets: usize, assoc: usize) -> Self {
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        assert!(assoc > 0, "associativity must be positive");
        Btb {
            sets: vec![Vec::with_capacity(assoc); sets],
            assoc,
            lru_tick: 0,
        }
    }

    fn set_index(&self, pc: usize) -> usize {
        pc & (self.sets.len() - 1)
    }

    /// Looks up the predicted target for the branch at `pc`.
    ///
    /// Updates LRU state (a lookup is a use).
    pub fn lookup(&mut self, pc: usize) -> Option<usize> {
        self.lru_tick += 1;
        let tick = self.lru_tick;
        let set = self.set_index(pc);
        for e in &mut self.sets[set] {
            if e.pc == pc {
                e.last_use = tick;
                return Some(e.target);
            }
        }
        None
    }

    /// Installs or refreshes the mapping `pc → target`.
    pub fn update(&mut self, pc: usize, target: usize) {
        self.lru_tick += 1;
        let tick = self.lru_tick;
        let set_index = self.set_index(pc);
        let assoc = self.assoc;
        let set = &mut self.sets[set_index];
        if let Some(e) = set.iter_mut().find(|e| e.pc == pc) {
            e.target = target;
            e.last_use = tick;
            return;
        }
        let entry = BtbEntry {
            pc,
            target,
            last_use: tick,
        };
        if set.len() < assoc {
            set.push(entry);
        } else {
            let victim = set
                .iter_mut()
                .min_by_key(|e| e.last_use)
                .expect("non-empty set has an LRU victim");
            *victim = entry;
        }
    }

    /// Total capacity in entries.
    pub fn capacity(&self) -> usize {
        self.sets.len() * self.assoc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_hit() {
        let mut btb = Btb::new(16, 2);
        assert_eq!(btb.lookup(100), None);
        btb.update(100, 7);
        assert_eq!(btb.lookup(100), Some(7));
    }

    #[test]
    fn update_overwrites_target() {
        let mut btb = Btb::new(16, 2);
        btb.update(100, 7);
        btb.update(100, 9);
        assert_eq!(btb.lookup(100), Some(9));
    }

    #[test]
    fn lru_evicts_oldest() {
        let mut btb = Btb::new(1, 2);
        btb.update(0, 1);
        btb.update(16, 2);
        // Touch 0 so 16 becomes LRU.
        assert_eq!(btb.lookup(0), Some(1));
        btb.update(32, 3);
        assert_eq!(btb.lookup(16), None, "16 was evicted");
        assert_eq!(btb.lookup(0), Some(1));
        assert_eq!(btb.lookup(32), Some(3));
    }

    #[test]
    fn capacity_reports_total_entries() {
        assert_eq!(Btb::new(128, 4).capacity(), 512);
    }
}
