//! The hybrid predictor and the paper's branch-outcome taxonomy.

use crate::btb::Btb;
use crate::config::BpredConfig;
use crate::ras::ReturnAddressStack;
use crate::tables::{Bimodal, Counter2, TwoLevelLocal};
use ssim_isa::Opcode;

// Observability: lookup/update volume, primarily to expose the
// lookup-update separation of delayed-update profiling (§2.1.3).
static OBS_LOOKUPS: ssim_obs::Counter = ssim_obs::Counter::new("bpred.lookups");
static OBS_UPDATES: ssim_obs::Counter = ssim_obs::Counter::new("bpred.updates");

/// The kind of control transfer, as the predictor sees it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BranchKind {
    /// Conditional branch (integer or floating point).
    Cond,
    /// Unconditional direct jump.
    Jump,
    /// Direct call (pushes the RAS).
    Call,
    /// Return (pops the RAS).
    Ret,
    /// Other indirect branch (jump tables).
    Indirect,
}

impl BranchKind {
    /// Classifies a control-transfer opcode; `None` for non-control
    /// opcodes.
    pub fn from_opcode(op: Opcode) -> Option<BranchKind> {
        use Opcode::*;
        Some(match op {
            Beq | Bne | Blt | Bge | Bltu | Bgeu | FBeq | FBlt | FBge => BranchKind::Cond,
            Jmp => BranchKind::Jump,
            Call => BranchKind::Call,
            Ret => BranchKind::Ret,
            Jr => BranchKind::Indirect,
            _ => return None,
        })
    }

    /// Whether this kind is unconditionally taken.
    pub fn always_taken(self) -> bool {
        !matches!(self, BranchKind::Cond)
    }
}

/// The result of a predictor lookup.
///
/// Carries the component predictions so that the delayed update can
/// train the chooser against what was actually predicted at lookup time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Prediction {
    /// Predicted direction (`true` for all unconditional kinds).
    pub taken: bool,
    /// Predicted target, if the BTB (or RAS, for returns) supplied one.
    pub target: Option<usize>,
    /// Bimodal component direction (conditional branches only).
    pub bimodal_taken: bool,
    /// Two-level local component direction (conditional branches only).
    pub local_taken: bool,
    /// Whether the meta table chose the local component.
    pub chose_local: bool,
}

/// The paper's three-way outcome classification (§2.1.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BranchOutcome {
    /// Direction and target both correct.
    Correct,
    /// Correct direction, but the target had to be computed at decode
    /// (BTB miss on a taken direct branch).
    FetchRedirect,
    /// Wrong direction, or wrong/unknown target for an indirect branch.
    Mispredict,
}

/// Classifies a resolved branch against its prediction.
///
/// Implements §2.1.2 of the paper:
/// * *fetch redirection* — target misprediction (BTB miss) together with
///   a correct taken/not-taken prediction, for direction-predictable
///   branches;
/// * *branch misprediction* — taken/not-taken misprediction for
///   conditional branches, and BTB/RAS target misses for indirect
///   branches.
pub fn classify(kind: BranchKind, pred: &Prediction, taken: bool, target: usize) -> BranchOutcome {
    match kind {
        BranchKind::Cond => {
            if pred.taken != taken {
                BranchOutcome::Mispredict
            } else if taken && pred.target != Some(target) {
                BranchOutcome::FetchRedirect
            } else {
                BranchOutcome::Correct
            }
        }
        BranchKind::Jump | BranchKind::Call => {
            // Direction is trivially known; a missing/wrong BTB target is
            // recomputed at decode: fetch redirection.
            if pred.target == Some(target) {
                BranchOutcome::Correct
            } else {
                BranchOutcome::FetchRedirect
            }
        }
        BranchKind::Ret | BranchKind::Indirect => {
            // Target known only at execute: a miss costs the full
            // misprediction penalty.
            if pred.target == Some(target) {
                BranchOutcome::Correct
            } else {
                BranchOutcome::Mispredict
            }
        }
    }
}

/// The hybrid (bimodal + two-level local, meta-selected) predictor with
/// BTB and RAS — the paper's Table 2 branch predictor.
///
/// See the [crate docs](crate) for the lookup/update protocol.
#[derive(Debug, Clone)]
pub struct HybridPredictor {
    bimodal: Bimodal,
    local: TwoLevelLocal,
    meta: Vec<Counter2>,
    btb: Btb,
    ras: ReturnAddressStack,
}

impl HybridPredictor {
    /// Builds the predictor described by `config`.
    pub fn new(config: &BpredConfig) -> Self {
        HybridPredictor {
            bimodal: Bimodal::new(config.bimodal_entries),
            local: TwoLevelLocal::new(
                config.local_hist_entries,
                config.local_pht_entries,
                config.hist_bits,
            ),
            meta: vec![Counter2::new(); config.meta_entries],
            btb: Btb::new(config.btb_sets, config.btb_assoc),
            ras: ReturnAddressStack::new(config.ras_entries),
        }
    }

    fn meta_index(&self, pc: usize) -> usize {
        pc & (self.meta.len() - 1)
    }

    /// Predicts the branch at `pc`.
    ///
    /// Reads the direction tables and BTB; pushes/pops the RAS for
    /// calls/returns (the RAS is a fetch-side structure and is *not*
    /// subject to delayed update).
    pub fn lookup(&mut self, pc: usize, kind: BranchKind) -> Prediction {
        OBS_LOOKUPS.inc();
        let bimodal_taken = self.bimodal.predict(pc);
        let local_taken = self.local.predict(pc);
        let chose_local = self.meta[self.meta_index(pc)].predict();
        let dir = if chose_local {
            local_taken
        } else {
            bimodal_taken
        };
        let btb_target = self.btb.lookup(pc);

        match kind {
            BranchKind::Cond => Prediction {
                taken: dir,
                target: btb_target,
                bimodal_taken,
                local_taken,
                chose_local,
            },
            BranchKind::Jump | BranchKind::Indirect => Prediction {
                taken: true,
                target: btb_target,
                bimodal_taken,
                local_taken,
                chose_local,
            },
            BranchKind::Call => {
                self.ras.push(pc + 1);
                Prediction {
                    taken: true,
                    target: btb_target,
                    bimodal_taken,
                    local_taken,
                    chose_local,
                }
            }
            BranchKind::Ret => {
                let ras_target = self.ras.pop();
                Prediction {
                    taken: true,
                    target: ras_target,
                    bimodal_taken,
                    local_taken,
                    chose_local,
                }
            }
        }
    }

    /// Trains the predictor with the resolved outcome of the branch at
    /// `pc`.
    ///
    /// `pred` must be the value returned by the matching
    /// [`HybridPredictor::lookup`]; the chooser is trained only when the
    /// two components disagreed.
    pub fn update(
        &mut self,
        pc: usize,
        kind: BranchKind,
        taken: bool,
        target: usize,
        pred: &Prediction,
    ) {
        OBS_UPDATES.inc();
        if kind == BranchKind::Cond {
            self.bimodal.train(pc, taken);
            self.local.train(pc, taken);
            if pred.bimodal_taken != pred.local_taken {
                let i = self.meta_index(pc);
                self.meta[i].train(pred.local_taken == taken);
            }
        }
        // The BTB caches targets of taken control transfers. Returns are
        // predicted by the RAS, so they do not pollute the BTB.
        if taken && kind != BranchKind::Ret {
            self.btb.update(pc, target);
        }
    }

    /// Direct access to the RAS (used by pipeline recovery models).
    pub fn ras_mut(&mut self) -> &mut ReturnAddressStack {
        &mut self.ras
    }

    /// Checkpoints the RAS pointer (see
    /// [`ReturnAddressStack::pointer`]).
    pub fn ras_checkpoint(&self) -> (usize, usize) {
        self.ras.pointer()
    }

    /// Restores a RAS pointer checkpoint after a pipeline squash.
    pub fn ras_restore(&mut self, checkpoint: (usize, usize)) {
        self.ras.set_pointer(checkpoint);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn predictor() -> HybridPredictor {
        HybridPredictor::new(&BpredConfig::baseline())
    }

    #[test]
    fn learns_biased_branch() {
        let mut p = predictor();
        for _ in 0..10 {
            let pred = p.lookup(42, BranchKind::Cond);
            p.update(42, BranchKind::Cond, true, 7, &pred);
        }
        let pred = p.lookup(42, BranchKind::Cond);
        assert!(pred.taken);
        assert_eq!(pred.target, Some(7));
        assert_eq!(
            classify(BranchKind::Cond, &pred, true, 7),
            BranchOutcome::Correct
        );
    }

    #[test]
    fn cold_taken_branch_is_fetch_redirect_when_direction_right() {
        let mut p = predictor();
        // Counters initialise weakly-taken, so direction is right, but the
        // BTB is cold: fetch redirection.
        let pred = p.lookup(42, BranchKind::Cond);
        assert!(pred.taken);
        assert_eq!(pred.target, None);
        assert_eq!(
            classify(BranchKind::Cond, &pred, true, 7),
            BranchOutcome::FetchRedirect
        );
    }

    #[test]
    fn wrong_direction_is_mispredict() {
        let mut p = predictor();
        let pred = p.lookup(42, BranchKind::Cond);
        assert!(pred.taken);
        assert_eq!(
            classify(BranchKind::Cond, &pred, false, 0),
            BranchOutcome::Mispredict
        );
    }

    #[test]
    fn returns_use_the_ras() {
        let mut p = predictor();
        let call_pred = p.lookup(10, BranchKind::Call);
        p.update(10, BranchKind::Call, true, 50, &call_pred);
        let ret_pred = p.lookup(55, BranchKind::Ret);
        assert_eq!(ret_pred.target, Some(11));
        assert_eq!(
            classify(BranchKind::Ret, &ret_pred, true, 11),
            BranchOutcome::Correct
        );
        assert_eq!(
            classify(BranchKind::Ret, &ret_pred, true, 99),
            BranchOutcome::Mispredict
        );
    }

    #[test]
    fn indirect_btb_miss_is_mispredict() {
        let mut p = predictor();
        let pred = p.lookup(30, BranchKind::Indirect);
        assert_eq!(
            classify(BranchKind::Indirect, &pred, true, 12),
            BranchOutcome::Mispredict
        );
        p.update(30, BranchKind::Indirect, true, 12, &pred);
        let pred = p.lookup(30, BranchKind::Indirect);
        assert_eq!(
            classify(BranchKind::Indirect, &pred, true, 12),
            BranchOutcome::Correct
        );
        // Same indirect branch, different target: still a mispredict.
        assert_eq!(
            classify(BranchKind::Indirect, &pred, true, 13),
            BranchOutcome::Mispredict
        );
    }

    #[test]
    fn direct_jump_btb_miss_is_redirect_not_mispredict() {
        let mut p = predictor();
        let pred = p.lookup(20, BranchKind::Jump);
        assert_eq!(
            classify(BranchKind::Jump, &pred, true, 5),
            BranchOutcome::FetchRedirect
        );
        p.update(20, BranchKind::Jump, true, 5, &pred);
        let pred = p.lookup(20, BranchKind::Jump);
        assert_eq!(
            classify(BranchKind::Jump, &pred, true, 5),
            BranchOutcome::Correct
        );
    }

    #[test]
    fn chooser_migrates_to_better_component() {
        let mut p = predictor();
        // Alternating branch: bimodal fails, local succeeds after warmup.
        let mut taken = false;
        for _ in 0..400 {
            let pred = p.lookup(77, BranchKind::Cond);
            p.update(77, BranchKind::Cond, taken, 3, &pred);
            taken = !taken;
        }
        let mut correct = 0;
        for _ in 0..100 {
            let pred = p.lookup(77, BranchKind::Cond);
            if pred.taken == taken {
                correct += 1;
            }
            p.update(77, BranchKind::Cond, taken, 3, &pred);
            taken = !taken;
        }
        assert!(
            correct >= 90,
            "hybrid should learn alternation via local, got {correct}"
        );
    }

    #[test]
    fn branch_kind_from_opcode() {
        assert_eq!(BranchKind::from_opcode(Opcode::Beq), Some(BranchKind::Cond));
        assert_eq!(
            BranchKind::from_opcode(Opcode::FBlt),
            Some(BranchKind::Cond)
        );
        assert_eq!(BranchKind::from_opcode(Opcode::Jmp), Some(BranchKind::Jump));
        assert_eq!(
            BranchKind::from_opcode(Opcode::Call),
            Some(BranchKind::Call)
        );
        assert_eq!(BranchKind::from_opcode(Opcode::Ret), Some(BranchKind::Ret));
        assert_eq!(
            BranchKind::from_opcode(Opcode::Jr),
            Some(BranchKind::Indirect)
        );
        assert_eq!(BranchKind::from_opcode(Opcode::Add), None);
    }
}
