//! Branch prediction structures for the ssim framework.
//!
//! Implements the predictor of the paper's baseline configuration
//! (Table 2): an 8K-entry **hybrid** predictor choosing between an
//! 8K-entry bimodal predictor and an 8K×8K two-level local predictor
//! that XORs the local history with the branch PC, plus a 512-entry
//! 4-way set-associative **BTB** and a 64-entry **return address stack**.
//!
//! The lookup/update split is explicit so that the paper's *delayed
//! update* branch profiling (§2.1.3) can interpose a FIFO between the
//! two: [`HybridPredictor::lookup`] reads predictor state (and
//! speculatively adjusts the RAS, a fetch-stage structure), while
//! [`HybridPredictor::update`] trains the direction tables and the BTB.
//!
//! [`classify`] maps a resolved branch onto the paper's three-way
//! outcome taxonomy (§2.1.2): correct prediction, **fetch redirection**
//! (BTB miss with a correct direction) or **branch misprediction**.
//!
//! # Examples
//!
//! ```
//! use ssim_bpred::{BpredConfig, BranchKind, HybridPredictor};
//!
//! let mut p = HybridPredictor::new(&BpredConfig::baseline());
//! // A loop branch at PC 10, always taken, becomes well predicted.
//! let mut last = None;
//! for _ in 0..100 {
//!     let pred = p.lookup(10, BranchKind::Cond);
//!     p.update(10, BranchKind::Cond, true, 3, &pred);
//!     last = Some(pred);
//! }
//! assert!(last.unwrap().taken);
//! ```

mod btb;
mod config;
mod hybrid;
mod ras;
mod tables;

pub use btb::Btb;
pub use config::BpredConfig;
pub use hybrid::{classify, BranchKind, BranchOutcome, HybridPredictor, Prediction};
pub use ras::ReturnAddressStack;
pub use tables::{Bimodal, Counter2, TwoLevelLocal};
