//! Branch predictor configuration.

/// Sizing of the hybrid predictor, BTB and RAS.
///
/// [`BpredConfig::baseline`] reproduces Table 2 of the paper;
/// [`BpredConfig::scaled`] produces the `base ÷ 4 … base × 4` variants
/// used by the Table 4 predictor-size sensitivity sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BpredConfig {
    /// Entries in the bimodal direction table.
    pub bimodal_entries: usize,
    /// Entries in the level-1 local-history table.
    pub local_hist_entries: usize,
    /// Entries in the level-2 pattern history table.
    pub local_pht_entries: usize,
    /// Local history length in bits.
    pub hist_bits: u32,
    /// Entries in the meta (chooser) table.
    pub meta_entries: usize,
    /// BTB set count.
    pub btb_sets: usize,
    /// BTB associativity.
    pub btb_assoc: usize,
    /// Return-address-stack depth.
    pub ras_entries: usize,
}

impl BpredConfig {
    /// The paper's baseline predictor (Table 2): 8K-entry hybrid
    /// selecting between an 8K bimodal and an 8K×8K two-level local
    /// predictor, 512-entry 4-way BTB, 64-entry RAS.
    pub fn baseline() -> Self {
        BpredConfig {
            bimodal_entries: 8192,
            local_hist_entries: 8192,
            local_pht_entries: 8192,
            hist_bits: 13, // log2(8192): history spans the full PHT index
            meta_entries: 8192,
            btb_sets: 128,
            btb_assoc: 4, // 128 sets x 4 ways = 512 entries
            ras_entries: 64,
        }
    }

    /// Scales every predictor table by `factor` (power of two), keeping
    /// the BTB and RAS fixed — the Table 4 "branch predictor size" axis.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not a positive power of two, or if scaling
    /// down would make a table smaller than 64 entries.
    pub fn scaled(&self, factor: f64) -> Self {
        let scale = |n: usize| -> usize {
            let scaled = (n as f64 * factor).round() as usize;
            assert!(scaled >= 64, "scaled predictor table too small");
            assert!(
                scaled.is_power_of_two(),
                "scaled size must be a power of two"
            );
            scaled
        };
        BpredConfig {
            bimodal_entries: scale(self.bimodal_entries),
            local_hist_entries: scale(self.local_hist_entries),
            local_pht_entries: scale(self.local_pht_entries),
            hist_bits: (scale(self.local_pht_entries) as f64).log2() as u32,
            meta_entries: scale(self.meta_entries),
            btb_sets: self.btb_sets,
            btb_assoc: self.btb_assoc,
            ras_entries: self.ras_entries,
        }
    }

    /// Total direction-table entries (used for power modeling).
    pub fn direction_entries(&self) -> usize {
        self.bimodal_entries + self.local_hist_entries + self.local_pht_entries + self.meta_entries
    }
}

impl Default for BpredConfig {
    fn default() -> Self {
        Self::baseline()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_matches_table2() {
        let c = BpredConfig::baseline();
        assert_eq!(c.bimodal_entries, 8192);
        assert_eq!(c.btb_sets * c.btb_assoc, 512);
        assert_eq!(c.ras_entries, 64);
    }

    #[test]
    fn scaling_halves_and_doubles() {
        let base = BpredConfig::baseline();
        let half = base.scaled(0.5);
        let double = base.scaled(2.0);
        assert_eq!(half.bimodal_entries, 4096);
        assert_eq!(double.bimodal_entries, 16384);
        assert_eq!(
            half.btb_sets, base.btb_sets,
            "BTB unaffected by direction scaling"
        );
        assert_eq!(half.hist_bits, 12);
        assert_eq!(double.hist_bits, 14);
    }
}
