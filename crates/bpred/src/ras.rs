//! Return address stack.

/// A fixed-depth circular return-address stack.
///
/// Calls push their return PC at lookup time; returns pop the predicted
/// target. Overflow wraps around (oldest entries are overwritten),
/// underflow predicts nothing — both matching hardware RAS behaviour.
#[derive(Debug, Clone)]
pub struct ReturnAddressStack {
    stack: Vec<usize>,
    top: usize,
    depth: usize,
}

impl ReturnAddressStack {
    /// Creates a RAS with `entries` slots.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is zero.
    pub fn new(entries: usize) -> Self {
        assert!(entries > 0, "RAS needs at least one entry");
        ReturnAddressStack {
            stack: vec![0; entries],
            top: 0,
            depth: 0,
        }
    }

    /// Pushes a return address (on a call lookup).
    pub fn push(&mut self, return_pc: usize) {
        self.top = (self.top + 1) % self.stack.len();
        self.stack[self.top] = return_pc;
        self.depth = (self.depth + 1).min(self.stack.len());
    }

    /// Pops the predicted return target (on a return lookup), or `None`
    /// if the stack is empty.
    pub fn pop(&mut self) -> Option<usize> {
        if self.depth == 0 {
            return None;
        }
        let value = self.stack[self.top];
        self.top = (self.top + self.stack.len() - 1) % self.stack.len();
        self.depth -= 1;
        Some(value)
    }

    /// Checkpoints the stack pointer as `(top, depth)`.
    ///
    /// Pipeline recovery uses the classic cheap top-of-stack repair:
    /// the pointer is restored after a squash, which recovers the stack
    /// unless wrong-path pushes overwrote live entries.
    pub fn pointer(&self) -> (usize, usize) {
        (self.top, self.depth)
    }

    /// Restores a pointer checkpoint taken with
    /// [`ReturnAddressStack::pointer`].
    pub fn set_pointer(&mut self, checkpoint: (usize, usize)) {
        self.top = checkpoint.0 % self.stack.len();
        self.depth = checkpoint.1.min(self.stack.len());
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.depth
    }

    /// Whether the stack is empty.
    pub fn is_empty(&self) -> bool {
        self.depth == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_pop_lifo() {
        let mut ras = ReturnAddressStack::new(4);
        ras.push(10);
        ras.push(20);
        assert_eq!(ras.pop(), Some(20));
        assert_eq!(ras.pop(), Some(10));
        assert_eq!(ras.pop(), None);
    }

    #[test]
    fn overflow_wraps_keeping_newest() {
        let mut ras = ReturnAddressStack::new(2);
        ras.push(1);
        ras.push(2);
        ras.push(3); // overwrites 1
        assert_eq!(ras.len(), 2);
        assert_eq!(ras.pop(), Some(3));
        assert_eq!(ras.pop(), Some(2));
        assert_eq!(ras.pop(), None);
    }

    #[test]
    fn empty_reports() {
        let mut ras = ReturnAddressStack::new(2);
        assert!(ras.is_empty());
        ras.push(5);
        assert!(!ras.is_empty());
    }
}
