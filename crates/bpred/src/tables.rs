//! Direction-prediction tables: saturating counters, bimodal, two-level
//! local.

/// A 2-bit saturating counter.
///
/// States 0–1 predict not-taken, 2–3 predict taken. Initialised weakly
/// taken (2), matching SimpleScalar's `sim-bpred`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Counter2(u8);

impl Counter2 {
    /// Weakly-taken initial state.
    pub fn new() -> Self {
        Counter2(2)
    }

    /// Current prediction.
    pub fn predict(self) -> bool {
        self.0 >= 2
    }

    /// Trains the counter toward `taken`.
    pub fn train(&mut self, taken: bool) {
        if taken {
            self.0 = (self.0 + 1).min(3);
        } else {
            self.0 = self.0.saturating_sub(1);
        }
    }

    /// Raw state, `0..=3`.
    pub fn state(self) -> u8 {
        self.0
    }
}

impl Default for Counter2 {
    fn default() -> Self {
        Self::new()
    }
}

/// A bimodal predictor: one [`Counter2`] per PC hash bucket.
#[derive(Debug, Clone)]
pub struct Bimodal {
    table: Vec<Counter2>,
}

impl Bimodal {
    /// Creates a bimodal table with `entries` counters.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two.
    pub fn new(entries: usize) -> Self {
        assert!(
            entries.is_power_of_two(),
            "table size must be a power of two"
        );
        Bimodal {
            table: vec![Counter2::new(); entries],
        }
    }

    fn index(&self, pc: usize) -> usize {
        pc & (self.table.len() - 1)
    }

    /// Direction prediction for the branch at `pc`.
    pub fn predict(&self, pc: usize) -> bool {
        self.table[self.index(pc)].predict()
    }

    /// Trains the entry for `pc` toward `taken`.
    pub fn train(&mut self, pc: usize, taken: bool) {
        let i = self.index(pc);
        self.table[i].train(taken);
    }
}

/// A two-level local-history predictor.
///
/// Level 1 holds per-PC branch histories; level 2 is a pattern history
/// table of 2-bit counters indexed by the local history **XORed with the
/// branch's PC** (the paper's Table 2 configuration).
#[derive(Debug, Clone)]
pub struct TwoLevelLocal {
    histories: Vec<u64>,
    pht: Vec<Counter2>,
    hist_mask: u64,
}

impl TwoLevelLocal {
    /// Creates a two-level predictor.
    ///
    /// # Panics
    ///
    /// Panics if either table size is not a power of two or
    /// `hist_bits > 63`.
    pub fn new(hist_entries: usize, pht_entries: usize, hist_bits: u32) -> Self {
        assert!(
            hist_entries.is_power_of_two(),
            "history table size must be a power of two"
        );
        assert!(
            pht_entries.is_power_of_two(),
            "PHT size must be a power of two"
        );
        assert!(hist_bits <= 63, "history too long");
        TwoLevelLocal {
            histories: vec![0; hist_entries],
            pht: vec![Counter2::new(); pht_entries],
            hist_mask: (1u64 << hist_bits) - 1,
        }
    }

    fn hist_index(&self, pc: usize) -> usize {
        pc & (self.histories.len() - 1)
    }

    fn pht_index(&self, pc: usize) -> usize {
        let hist = self.histories[self.hist_index(pc)];
        ((hist ^ pc as u64) & (self.pht.len() as u64 - 1)) as usize
    }

    /// Direction prediction for the branch at `pc`.
    pub fn predict(&self, pc: usize) -> bool {
        self.pht[self.pht_index(pc)].predict()
    }

    /// Trains the PHT entry and shifts the outcome into the local
    /// history.
    pub fn train(&mut self, pc: usize, taken: bool) {
        let pi = self.pht_index(pc);
        self.pht[pi].train(taken);
        let hi = self.hist_index(pc);
        self.histories[hi] = ((self.histories[hi] << 1) | u64::from(taken)) & self.hist_mask;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_saturates() {
        let mut c = Counter2::new();
        assert!(c.predict());
        c.train(false);
        c.train(false);
        c.train(false);
        assert_eq!(c.state(), 0);
        assert!(!c.predict());
        c.train(true);
        assert!(!c.predict(), "one taken from strong-NT is still NT");
        c.train(true);
        assert!(c.predict());
        c.train(true);
        c.train(true);
        assert_eq!(c.state(), 3);
    }

    #[test]
    fn bimodal_learns_direction() {
        let mut b = Bimodal::new(64);
        for _ in 0..4 {
            b.train(5, false);
        }
        assert!(!b.predict(5));
        assert!(b.predict(6), "other entries untouched");
    }

    #[test]
    fn bimodal_aliases_modulo_size() {
        let mut b = Bimodal::new(64);
        for _ in 0..4 {
            b.train(3, false);
        }
        assert!(!b.predict(3 + 64), "PC 67 aliases PC 3 in a 64-entry table");
    }

    #[test]
    fn local_learns_alternating_pattern() {
        // Bimodal cannot learn strict alternation; a local predictor can.
        let mut l = TwoLevelLocal::new(64, 1024, 8);
        let mut taken = false;
        // Warm up.
        for _ in 0..200 {
            l.train(9, taken);
            taken = !taken;
        }
        // Now verify predictions.
        let mut correct = 0;
        for _ in 0..100 {
            if l.predict(9) == taken {
                correct += 1;
            }
            l.train(9, taken);
            taken = !taken;
        }
        assert!(
            correct >= 95,
            "local predictor should master alternation, got {correct}/100"
        );
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_rejected() {
        Bimodal::new(100);
    }
}
