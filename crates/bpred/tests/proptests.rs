//! Property-based tests for the branch-prediction structures.

use proptest::prelude::*;
use ssim_bpred::{classify, BpredConfig, BranchKind, BranchOutcome, HybridPredictor};

fn any_kind() -> impl Strategy<Value = BranchKind> {
    prop_oneof![
        Just(BranchKind::Cond),
        Just(BranchKind::Jump),
        Just(BranchKind::Call),
        Just(BranchKind::Ret),
        Just(BranchKind::Indirect),
    ]
}

proptest! {
    /// Unconditional kinds always predict taken; conditionals always
    /// produce one of the three outcomes consistently with taken-ness.
    #[test]
    fn lookup_and_classify_are_total(
        ops in prop::collection::vec((any_kind(), 0usize..512, any::<bool>(), 0usize..512), 1..400)
    ) {
        let mut p = HybridPredictor::new(&BpredConfig::baseline());
        for (kind, pc, taken, target) in ops {
            let taken = taken || kind.always_taken();
            let pred = p.lookup(pc, kind);
            if kind.always_taken() {
                prop_assert!(pred.taken, "{kind:?} must predict taken");
            }
            let outcome = classify(kind, &pred, taken, target);
            match outcome {
                BranchOutcome::Correct => {
                    if kind == BranchKind::Cond {
                        prop_assert_eq!(pred.taken, taken);
                    }
                }
                BranchOutcome::FetchRedirect => {
                    // Redirects never happen for target-at-execute kinds.
                    prop_assert!(!matches!(kind, BranchKind::Ret | BranchKind::Indirect));
                }
                BranchOutcome::Mispredict => {}
            }
            p.update(pc, kind, taken, target, &pred);
        }
    }

    /// A perfectly biased conditional branch is eventually predicted
    /// with high accuracy, whatever the bias direction.
    #[test]
    fn biased_branches_are_learned(taken in any::<bool>(), pc in 0usize..8192) {
        let mut p = HybridPredictor::new(&BpredConfig::baseline());
        for _ in 0..64 {
            let pred = p.lookup(pc, BranchKind::Cond);
            p.update(pc, BranchKind::Cond, taken, 7, &pred);
        }
        let mut correct = 0;
        for _ in 0..32 {
            let pred = p.lookup(pc, BranchKind::Cond);
            if pred.taken == taken {
                correct += 1;
            }
            p.update(pc, BranchKind::Cond, taken, 7, &pred);
        }
        prop_assert!(correct >= 30, "only {correct}/32 correct");
    }

    /// RAS pointer checkpoints restore the logical stack top.
    #[test]
    fn ras_checkpoint_roundtrip(pushes in prop::collection::vec(0usize..10_000, 0..80),
                                wrong in prop::collection::vec(0usize..10_000, 0..40)) {
        let mut p = HybridPredictor::new(&BpredConfig::baseline());
        for &r in &pushes {
            p.lookup(r, BranchKind::Call);
        }
        let ckpt = p.ras_checkpoint();
        // Wrong-path calls corrupt the stack...
        for &r in &wrong {
            p.lookup(r, BranchKind::Call);
        }
        // ...and the restore brings the pointer back.
        p.ras_restore(ckpt);
        prop_assert_eq!(p.ras_checkpoint(), ckpt);
        if let Some(&last) = pushes.last() {
            if pushes.len() + wrong.len() <= 64 {
                // No overwrite happened within capacity: the top entry
                // is intact.
                let pred = p.lookup(9999, BranchKind::Ret);
                prop_assert_eq!(pred.target, Some(last + 1));
            }
        }
    }
}
