//! Property and stress coverage for the chunked work-stealing scheduler
//! and the sharded build-once cache — the two primitives the sweep hot
//! path leans on for multi-core scaling.

use proptest::prelude::*;
use ssim_par::{par_map_chunked, ShardedCache};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};

proptest! {
    /// Chunked parallel execution is observationally identical to the
    /// serial map — same values, same order — for adversarial per-item
    /// cost profiles (the spin loop makes item cost swing by ~100× in
    /// generated patterns, so completion order scrambles thoroughly).
    #[test]
    fn chunked_matches_serial_under_adversarial_costs(
        costs in prop::collection::vec(0u64..100, 1..400),
        threads in 1usize..12,
        k in 1usize..20,
    ) {
        let f = |(&i, &cost): &(&usize, &u64)| {
            let mut acc = i as u64;
            for step in 0..cost * 50 {
                acc = acc.wrapping_add(step).rotate_left(7);
            }
            (i, acc)
        };
        let indices: Vec<usize> = (0..costs.len()).collect();
        let items: Vec<(&usize, &u64)> = indices.iter().zip(costs.iter()).collect();
        let serial: Vec<(usize, u64)> = items.iter().map(f).collect();
        let parallel = par_map_chunked(threads, k, &items, f);
        prop_assert_eq!(serial, parallel);
    }

    /// Every index is visited exactly once regardless of how the chunk
    /// divisor interacts with thread count and item count.
    #[test]
    fn chunked_visits_each_index_once(
        n in 0usize..600,
        threads in 1usize..16,
        k in 1usize..32,
    ) {
        let hits: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
        let items: Vec<usize> = (0..n).collect();
        par_map_chunked(threads, k, &items, |&i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        for (i, h) in hits.iter().enumerate() {
            prop_assert_eq!(h.load(Ordering::Relaxed), 1, "index {} visited wrong count", i);
        }
    }
}

/// Concurrent same-key hits on a sharded cache all receive the *same*
/// `Arc` (pointer-identical, not merely equal), and the builder runs
/// exactly once per key — the duplicate-build race the global
/// `Mutex<HashMap>` caches used to have.
#[test]
fn sharded_cache_same_key_stress() {
    let cache: ShardedCache<u64, Arc<Vec<u8>>> = ShardedCache::new(16);
    let threads = 12;
    let rounds = 40u64;
    let barrier = Barrier::new(threads);
    let results: Vec<Vec<Arc<Vec<u8>>>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let (cache, barrier) = (&cache, &barrier);
                s.spawn(move || {
                    barrier.wait();
                    // Interleave keys so every key sees many concurrent
                    // first-misses from differently-phased threads.
                    (0..rounds)
                        .map(|r| {
                            let key = (r + t as u64) % rounds;
                            cache.get_or_build(key, || Arc::new(vec![key as u8; 64]))
                        })
                        .collect()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    assert_eq!(
        cache.builds(),
        rounds,
        "a key was built more than once under concurrency"
    );
    // All threads touching one key got the identical allocation
    // (thread 0 visits key `k` at round `k`, so it indexes directly).
    for t in 1..threads {
        for r in 0..rounds as usize {
            let key = (r + t) % rounds as usize;
            assert!(
                Arc::ptr_eq(&results[t][r], &results[0][key]),
                "thread {t} key {key}: distinct Arc for the same key"
            );
        }
    }
}
