//! N-way sharded concurrent cache with per-key build deduplication.
//!
//! The sweep hot path hits two in-process caches on every design point
//! (compiled samplers in `ssim-bench`, results and samplers in
//! `ssim-serve`). A single `Mutex<HashMap>` serialises all of them: at
//! 16 threads the lock is the sweep, not the simulator. This cache
//! splits the key space across `N` independently locked shards, so
//! threads touching different keys never contend, and it fixes the
//! classic duplicate-build race with one [`OnceLock`] cell per key:
//!
//! * a shard lock is held only for map operations (microseconds) —
//!   **never across a build**;
//! * concurrent misses on the *same* key rendezvous on the key's cell,
//!   so the expensive build (profile pass, sampler lowering) runs
//!   exactly once and every caller gets the same value;
//! * concurrent misses on *different* keys build in parallel.
//!
//! The [`ShardedCache::builds`] counter counts builder invocations —
//! regression tests assert it stays at one per distinct key no matter
//! how many threads race.

use std::collections::HashMap;
use std::hash::{BuildHasher, Hash, RandomState};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

type Shard<K, V> = Mutex<HashMap<K, Arc<OnceLock<V>>>>;

/// A concurrent map from `K` to `V` whose values are built at most once
/// per key, sharded `N` ways to keep lock contention off the hot path.
///
/// `V` is cloned out on every access, so it should be cheap to clone —
/// in practice an `Arc<T>` or a small `Copy` struct.
pub struct ShardedCache<K, V> {
    shards: Box<[Shard<K, V>]>,
    hasher: RandomState,
    builds: AtomicU64,
    hits: AtomicU64,
}

/// Default shard count: enough that 16 threads on disjoint keys
/// collide on a shard lock rarely, small enough to stay cache-friendly.
pub const DEFAULT_SHARDS: usize = 32;

impl<K: Eq + Hash, V: Clone> ShardedCache<K, V> {
    /// An empty cache with `shards` shards (rounded up to a power of
    /// two, floored at one).
    pub fn new(shards: usize) -> Self {
        let n = shards.max(1).next_power_of_two();
        ShardedCache {
            shards: (0..n).map(|_| Mutex::new(HashMap::new())).collect(),
            hasher: RandomState::new(),
            builds: AtomicU64::new(0),
            hits: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: &K) -> &Shard<K, V> {
        // Shard count is a power of two, so masking the hash is a
        // uniform shard pick.
        let h = self.hasher.hash_one(key) as usize;
        &self.shards[h & (self.shards.len() - 1)]
    }

    /// Returns the value for `key`, invoking `build` to create it if
    /// (and only if) no caller has built it yet.
    ///
    /// The shard lock is held only to resolve the key's cell; `build`
    /// runs outside every lock. Concurrent callers for the same key
    /// block on the cell until the single build finishes, then all
    /// receive clones of the one value.
    pub fn get_or_build(&self, key: K, build: impl FnOnce() -> V) -> V {
        let cell = {
            let mut map = self.shard(&key).lock().unwrap();
            map.entry(key).or_default().clone()
        };
        let mut built = false;
        let value = cell
            .get_or_init(|| {
                built = true;
                self.builds.fetch_add(1, Ordering::Relaxed);
                build()
            })
            .clone();
        if !built {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        value
    }

    /// The value for `key` if a build has completed; `None` for absent
    /// keys and for builds still in flight.
    pub fn get(&self, key: &K) -> Option<V> {
        let map = self.shard(key).lock().unwrap();
        map.get(key).and_then(|cell| cell.get().cloned())
    }

    /// How many times a builder closure has run — one per distinct key
    /// ever requested, regardless of concurrency.
    pub fn builds(&self) -> u64 {
        self.builds.load(Ordering::Relaxed)
    }

    /// How many `get_or_build` calls were answered without building.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Number of keys present (including builds in flight).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().unwrap().len()).sum()
    }

    /// Whether the cache holds no keys at all.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.lock().unwrap().is_empty())
    }

    /// Drops every entry (in-flight cells stay alive for their current
    /// callers but are no longer reachable through the cache).
    pub fn clear(&self) {
        for s in self.shards.iter() {
            s.lock().unwrap().clear();
        }
    }
}

impl<K: Eq + Hash, V: Clone> Default for ShardedCache<K, V> {
    fn default() -> Self {
        Self::new(DEFAULT_SHARDS)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Barrier;

    #[test]
    fn builds_once_and_shares() {
        let cache: ShardedCache<u32, Arc<u64>> = ShardedCache::new(4);
        let a = cache.get_or_build(7, || Arc::new(42));
        let b = cache.get_or_build(7, || unreachable!("must not rebuild"));
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.builds(), 1);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.get(&7).as_deref(), Some(&42));
        assert_eq!(cache.get(&8), None);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn concurrent_same_key_misses_build_exactly_once() {
        let cache: ShardedCache<u32, Arc<u64>> = ShardedCache::new(8);
        let threads = 16;
        let barrier = Barrier::new(threads);
        let values: Vec<Arc<u64>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    let (cache, barrier) = (&cache, &barrier);
                    s.spawn(move || {
                        barrier.wait();
                        cache.get_or_build(1, || Arc::new(99))
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(cache.builds(), 1, "duplicate-build race: lowered twice");
        assert!(values.iter().all(|v| Arc::ptr_eq(v, &values[0])));
    }

    #[test]
    fn distinct_keys_build_independently() {
        let cache: ShardedCache<usize, usize> = ShardedCache::new(4);
        let built = AtomicUsize::new(0);
        let keys: Vec<usize> = (0..257).collect();
        std::thread::scope(|s| {
            for chunk in keys.chunks(64) {
                let (cache, built) = (&cache, &built);
                s.spawn(move || {
                    for &k in chunk {
                        let v = cache.get_or_build(k, || {
                            built.fetch_add(1, Ordering::Relaxed);
                            k * 2
                        });
                        assert_eq!(v, k * 2);
                    }
                });
            }
        });
        assert_eq!(cache.builds(), keys.len() as u64);
        assert_eq!(built.load(Ordering::Relaxed), keys.len());
        assert_eq!(cache.len(), keys.len());
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn shard_count_is_floored_and_rounded() {
        // Degenerate shard requests must still yield a working cache.
        for n in [0, 1, 3, 5] {
            let cache: ShardedCache<u8, u8> = ShardedCache::new(n);
            assert_eq!(cache.get_or_build(1, || 2), 2);
            assert!(cache.shards.len().is_power_of_two());
        }
    }
}
